(* Standalone experiment runner: `dune exec bin/experiments_main.exe`. *)

let () =
  match Sys.argv with
  | [| _ |] -> Experiments.Registry.run_all ()
  | [| _; "-j"; n |] ->
      Experiments.Registry.run_all ~jobs:(int_of_string n) ()
  | [| _; id |] -> (
      match Experiments.Registry.find id with
      | Some e -> Experiments.Registry.run_one e
      | None ->
          Printf.eprintf "unknown experiment %S (expected E1..E8, A1..A4)\n" id;
          exit 1)
  | _ ->
      Printf.eprintf "usage: %s [-j JOBS | EXPERIMENT-ID]\n" Sys.argv.(0);
      exit 1
