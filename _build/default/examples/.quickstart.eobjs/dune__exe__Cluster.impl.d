examples/cluster.ml: Algos Core Format Printf Workloads
