examples/cluster.mli:
