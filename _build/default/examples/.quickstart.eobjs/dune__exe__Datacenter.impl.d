examples/datacenter.ml: Algos Array Core Format Printf Workloads
