examples/datacenter.mli:
