examples/factory.ml: Algos Array Core Format Printf Workloads
