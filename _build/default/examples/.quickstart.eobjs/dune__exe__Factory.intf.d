examples/factory.mli:
