examples/hardness.ml: Core List Printf Setcover Workloads
