examples/hardness.mli:
