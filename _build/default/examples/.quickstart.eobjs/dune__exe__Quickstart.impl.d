examples/quickstart.ml: Algos Core Format Printf
