examples/quickstart.mli:
