(* License-pool scenario (restricted assignment with class-uniform
   restrictions, Section 3.3.1).

   An HPC site runs commercial simulation codes. Each code (= setup class)
   is licensed for a specific subset of machines, and every machine must
   load the code's environment once before running any of its jobs. All
   jobs of a code have the same machine restrictions — exactly the paper's
   class-uniform restricted assignment, for which Theorem 3.10 gives a
   2-approximation via pseudo-forest rounding of LP-RelaxedRA.

   Run with: dune exec examples/cluster.exe *)

let () =
  let rng = Workloads.Rng.create 12 in
  let site =
    Workloads.Gen.restricted_class_uniform rng ~n:18 ~m:5 ~k:4
      ~size_range:(5.0, 45.0) ~setup_range:(20.0, 60.0) ~min_eligible:2 ()
  in
  Printf.printf "site: %d jobs, %d machines, %d licensed codes\n"
    (Core.Instance.num_jobs site)
    (Core.Instance.num_machines site)
    (Core.Instance.num_classes site);
  Printf.printf "class-uniform restrictions: %b\n\n"
    (Core.Instance.restrict_class_uniform site);

  let lb = Core.Bounds.lower_bound site in
  Printf.printf "combinatorial lower bound: %.1f\n" lb;

  let approx = Algos.Ra_class_uniform.schedule site in
  Printf.printf "2-approx (Theorem 3.10):   makespan %.1f\n"
    approx.Algos.Common.makespan;

  let greedy = Algos.List_scheduling.schedule site in
  Printf.printf "greedy baseline:           makespan %.1f\n"
    greedy.Algos.Common.makespan;

  let exact = Algos.Exact.solve ~node_limit:2_000_000 site in
  if exact.Algos.Exact.optimal then begin
    let opt = exact.Algos.Exact.result.Algos.Common.makespan in
    Printf.printf "exact optimum:             makespan %.1f\n" opt;
    Printf.printf "\nmeasured ratio %.3f (proven bound: 2.0)\n"
      (approx.Algos.Common.makespan /. opt)
  end
  else
    Printf.printf "exact optimum:             (node limit reached)\n";

  Format.printf "@\n2-approximation schedule:@\n%a@." Core.Schedule.pp
    approx.Algos.Common.schedule
