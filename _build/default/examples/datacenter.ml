(* Datacenter data-locality scenario (unrelated machines).

   A batch cluster schedules analytics jobs over heterogeneous nodes (GPU
   boxes, high-memory boxes, plain nodes). Jobs are grouped by input
   dataset: before a node can run any job of a dataset it must fetch and
   cache that dataset — a per-(node, dataset) setup time that depends on
   the node's network attachment. Processing times are genuinely
   unrelated: a GPU job is fast on a GPU node and pathological elsewhere.

   The paper shows this environment cannot be approximated within
   o(log n + log m) (Theorem 3.5), and that LP randomized rounding matches
   the bound (Theorem 3.3). The example runs the full pipeline: LP lower
   bound, randomized rounding, and a greedy baseline.

   Run with: dune exec examples/datacenter.exe *)

let () =
  let rng = Workloads.Rng.create 42 in
  let nodes = 6 and jobs = 24 and datasets = 4 in
  (* node speed-profile factors per "hardware type" *)
  let node_type = Array.init nodes (fun i -> i mod 3) in
  let job_kind = Array.init jobs (fun _ -> Workloads.Rng.int rng 3) in
  let job_class = Array.init jobs (fun j -> if j < datasets then j else Workloads.Rng.int rng datasets) in
  let base = Array.init jobs (fun _ -> Workloads.Rng.float_range rng 10.0 60.0) in
  (* affinity: matching hardware runs at full speed, mismatches pay 3-6x,
     and some combinations are impossible (job needs a GPU) *)
  let p =
    Array.init nodes (fun i ->
        Array.init jobs (fun j ->
            if node_type.(i) = job_kind.(j) then base.(j)
            else if job_kind.(j) = 2 && node_type.(i) <> 2 then infinity
            else base.(j) *. Workloads.Rng.float_range rng 3.0 6.0))
  in
  (* dataset fetch times: nodes 0-1 sit next to the storage rack *)
  let setup_matrix =
    Array.init nodes (fun i ->
        Array.init datasets (fun _ ->
            let near = if i < 2 then 1.0 else 2.5 in
            near *. Workloads.Rng.float_range rng 15.0 30.0))
  in
  let setups = Array.init datasets (fun k -> setup_matrix.(0).(k)) in
  let cluster =
    Core.Instance.unrelated ~setup_matrix ~p ~job_class ~setups ()
  in

  Printf.printf "cluster: %d jobs over %d datasets on %d nodes\n\n" jobs
    datasets nodes;

  let bound = Algos.Lp_um.lower_bound cluster in
  Printf.printf "LP lower bound on OPT: %.1f (from %d LP solves)\n"
    bound.Algos.Lp_um.lower bound.Algos.Lp_um.probes;

  let rounded, stats =
    Algos.Randomized_rounding.round (Workloads.Rng.create 7) cluster
      bound.Algos.Lp_um.solution
  in
  Printf.printf
    "randomized rounding:   makespan %.1f (%d rounds, %d fallback jobs)\n"
    rounded.Algos.Common.makespan stats.Algos.Randomized_rounding.iterations
    stats.Algos.Randomized_rounding.fallback_jobs;

  let greedy = Algos.List_scheduling.schedule cluster in
  Printf.printf "greedy baseline:       makespan %.1f\n\n"
    greedy.Algos.Common.makespan;

  let theory =
    (log (float_of_int jobs) +. log (float_of_int nodes))
    *. bound.Algos.Lp_um.lower
  in
  Printf.printf
    "Theorem 3.3 reference: O(T(ln n + ln m)) here means O(%.1f)\n" theory;
  Format.printf "@\nrounded schedule:@\n%a@." Core.Schedule.pp
    rounded.Algos.Common.schedule
