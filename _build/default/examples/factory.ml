(* Factory changeover scenario (uniformly related machines).

   A metal shop runs 4 CNC mills of different generations (speeds 1x to
   3x). Incoming orders are grouped into product families; switching a mill
   to a new family requires re-fixturing and tool calibration — a setup
   whose duration scales with the mill's speed like the jobs themselves.
   This is exactly the paper's uniformly-related-machines model, and the
   shop wants the last order finished as early as possible (makespan).

   The example compares a setup-oblivious planner (classic LPT balancing
   pure machining times), the Lemma 2.1 planner and the PTAS, across an
   order book where changeovers dominate.

   Run with: dune exec examples/factory.exe *)

let () =
  let rng = Workloads.Rng.create 7 in
  (* 26 orders in 5 product families; machining 5-40 min, changeover
     60-90 min: changeovers dominate. *)
  let n = 26 and families = 5 in
  let sizes =
    Array.init n (fun _ -> Workloads.Rng.float_range rng 5.0 40.0)
  in
  let job_class =
    Array.init n (fun j -> if j < families then j else Workloads.Rng.int rng families)
  in
  let setups =
    Array.init families (fun _ -> Workloads.Rng.float_range rng 60.0 90.0)
  in
  let speeds = [| 1.0; 1.5; 2.0; 3.0 |] in
  let shop = Core.Instance.uniform ~speeds ~sizes ~job_class ~setups in

  Printf.printf "factory: %d orders, %d families, %d mills\n" n families
    (Array.length speeds);
  Printf.printf "volume lower bound: %.1f min\n\n" (Core.Bounds.lower_bound shop);

  let report name (r : Algos.Common.result) =
    Printf.printf "%-28s makespan %7.1f min, %d changeovers\n" name
      r.Algos.Common.makespan
      (Core.Schedule.num_setups r.Algos.Common.schedule)
  in
  report "oblivious LPT (no setups):"
    (Algos.Lpt.setup_oblivious shop);
  report "greedy (setup-aware):" (Algos.List_scheduling.schedule shop);
  report "LPT + placeholders (4.74):" (Algos.Lpt.schedule shop);
  report "PTAS eps=1/2:" (Algos.Uniform_ptas.schedule ~eps:0.5 shop);

  print_newline ();
  let aware = Algos.Lpt.schedule shop in
  Format.printf "Lemma 2.1 plan:@\n%a@." Core.Schedule.pp
    aware.Algos.Common.schedule
