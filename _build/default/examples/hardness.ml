(* Hardness demo (Theorem 3.5): watch the integrality gap grow.

   The F_2^d SetCover family has fractional cover value < 2 but integral
   cover size >= d. Pushing it through the paper's randomized reduction
   yields scheduling instances on which no algorithm can beat
   Ω(log n + log m) — this demo materializes the reduction and prints the
   certified gap for growing d, next to the schedule actually built from
   the greedy cover.

   Run with: dune exec examples/hardness.exe *)

let () =
  let rng = Workloads.Rng.create 5 in
  Printf.printf
    "%3s %6s %6s %8s  %10s %12s %10s\n" "d" "N=m" "K" "jobs" "frac UB"
    "integral LB" "gap";
  List.iter
    (fun d ->
      let cover = Setcover.Cover.gap_instance d in
      let c = List.length (Setcover.Cover.exact cover) in
      let red = Setcover.Reduction.build rng cover ~target:c in
      let _, z = Setcover.Cover.lp_value cover in
      let frac = Setcover.Reduction.fractional_makespan_bound red z in
      let lb = Setcover.Reduction.integral_lower_bound red in
      Printf.printf "%3d %6d %6d %8d  %10.3f %12.3f %10.3f\n" d
        (Setcover.Cover.num_sets cover)
        red.Setcover.Reduction.num_classes
        (Core.Instance.num_jobs red.Setcover.Reduction.instance)
        frac lb (lb /. frac))
    [ 2; 3; 4; 5 ];

  (* For d = 3, also build the Yes-case schedule from the greedy cover and
     show that its makespan matches the setup-count bound. *)
  print_newline ();
  let cover = Setcover.Cover.gap_instance 3 in
  let c = List.length (Setcover.Cover.exact cover) in
  let red = Setcover.Reduction.build rng cover ~target:c in
  let greedy = Setcover.Cover.greedy cover in
  let sched = Setcover.Reduction.schedule_from_cover red greedy in
  Printf.printf "d=3: greedy cover uses %d sets; schedule makespan %g \
                 (= max setups per machine: %d)\n"
    (List.length greedy)
    (Core.Schedule.makespan sched)
    (Setcover.Reduction.setups_makespan_bound red greedy);
  Printf.printf
    "every job has size 0 here, so the makespan is purely setup time —\n\
     the mechanism behind the Ω(log n + log m) lower bound.\n"
