(* Quickstart: build an instance through the public API, schedule it with
   two algorithms and inspect the result.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* Four jobs in two setup classes on two uniformly related machines.
     Machine 1 is twice as fast; switching a machine to a new class costs
     the class's setup time (scaled by the machine speed). *)
  let instance =
    Core.Instance.uniform ~speeds:[| 1.0; 2.0 |]
      ~sizes:[| 4.0; 2.0; 6.0; 2.0 |]
      ~job_class:[| 0; 0; 1; 1 |]
      ~setups:[| 3.0; 1.0 |]
  in
  Format.printf "%a@\n" Core.Instance.pp instance;

  Printf.printf "lower bound on OPT: %g\n"
    (Core.Bounds.lower_bound instance);
  Printf.printf "naive upper bound:  %g\n\n"
    (Core.Bounds.naive_upper_bound instance);

  (* Greedy baseline: assign each job where it finishes first. *)
  let greedy = Algos.List_scheduling.schedule instance in
  Printf.printf "greedy list scheduling: makespan %g\n"
    greedy.Algos.Common.makespan;

  (* Lemma 2.1: LPT after replacing small jobs with setup-sized
     placeholders — a 4.74-approximation in O(n log n). *)
  let lpt = Algos.Lpt.schedule instance in
  Printf.printf "LPT with placeholders:  makespan %g\n"
    lpt.Algos.Common.makespan;

  (* The Section 2 PTAS at eps = 1/2. *)
  let ptas = Algos.Uniform_ptas.schedule ~eps:0.5 instance in
  Printf.printf "PTAS (eps = 1/2):       makespan %g\n"
    ptas.Algos.Common.makespan;

  (* The portfolio runs everything applicable and polishes the winner. *)
  let report = Algos.Portfolio.run instance in
  Printf.printf "portfolio (%s):        makespan %g\n"
    report.Algos.Portfolio.winner
    report.Algos.Portfolio.best.Algos.Common.makespan;

  (* Exact optimum by branch and bound, for reference. *)
  let exact = Algos.Exact.solve instance in
  Printf.printf "exact optimum:          makespan %g\n\n"
    exact.Algos.Exact.result.Algos.Common.makespan;

  Format.printf "optimal schedule:@\n%a@."
    Core.Schedule.pp exact.Algos.Exact.result.Algos.Common.schedule
