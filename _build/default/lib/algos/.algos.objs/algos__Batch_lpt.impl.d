lib/algos/batch_lpt.ml: Array Common Core
