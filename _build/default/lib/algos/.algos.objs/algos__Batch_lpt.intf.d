lib/algos/batch_lpt.mli: Common Core
