lib/algos/common.ml: Array Core Float Printf
