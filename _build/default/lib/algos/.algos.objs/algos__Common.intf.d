lib/algos/common.mli: Core
