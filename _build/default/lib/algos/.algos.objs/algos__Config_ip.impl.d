lib/algos/config_ip.ml: Array Common Core Float Hashtbl List Lp Option Printf Ptas_dp
