lib/algos/config_ip.mli: Common Core
