lib/algos/exact.ml: Array Atomic Common Core Float Fun List List_scheduling Logs
