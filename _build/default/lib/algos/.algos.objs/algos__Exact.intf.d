lib/algos/exact.mli: Atomic Common Core
