lib/algos/exact_ilp.ml: Array Common Core Float Fun List List_scheduling Lp Printf
