lib/algos/exact_ilp.mli: Common Core
