lib/algos/exact_parallel.ml: Atomic Common Core Exact Fun List List_scheduling Parallel
