lib/algos/exact_parallel.mli: Common Core Parallel
