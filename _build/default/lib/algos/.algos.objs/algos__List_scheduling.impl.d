lib/algos/list_scheduling.ml: Array Common Core Printf
