lib/algos/list_scheduling.mli: Common Core
