lib/algos/local_search.ml: Array Common Core Float Hashtbl List Option
