lib/algos/local_search.mli: Common Core
