lib/algos/lp_um.ml: Array Core Logs Lp Printf
