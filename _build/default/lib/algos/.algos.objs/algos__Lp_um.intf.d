lib/algos/lp_um.mli: Core
