lib/algos/lpt.ml: Array Common Core Fun List
