lib/algos/lpt.mli: Common Core
