lib/algos/naive_rounding.ml: Array Common Core Float List Relaxed_lp
