lib/algos/naive_rounding.mli: Common Core
