lib/algos/portfolio.ml: Batch_lpt Common Core Exact List List_scheduling Local_search Lpt Ra_class_uniform Randomized_rounding Um_class_uniform Uniform_ptas Workloads
