lib/algos/portfolio.mli: Common Core
