lib/algos/ptas_dp.ml: Array Core Hashtbl List Option
