lib/algos/ptas_dp.mli: Core
