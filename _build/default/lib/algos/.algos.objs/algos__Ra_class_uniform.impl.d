lib/algos/ra_class_uniform.ml: Array Common Core Float Fun Graphs List Relaxed_lp
