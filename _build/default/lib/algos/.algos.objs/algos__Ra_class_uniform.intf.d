lib/algos/ra_class_uniform.mli: Common Core
