lib/algos/randomized_rounding.ml: Array Common Core Float List Lp_um Workloads
