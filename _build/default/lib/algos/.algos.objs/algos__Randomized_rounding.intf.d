lib/algos/randomized_rounding.mli: Common Core Lp_um Workloads
