lib/algos/relaxed_lp.ml: Array Float Graphs Lp Printf
