lib/algos/relaxed_lp.mli: Graphs
