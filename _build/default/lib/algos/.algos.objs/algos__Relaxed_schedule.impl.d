lib/algos/relaxed_schedule.ml: Array Core Float Fun Hashtbl List Option Queue Speed_groups
