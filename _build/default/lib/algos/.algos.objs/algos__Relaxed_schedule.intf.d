lib/algos/relaxed_schedule.mli: Core
