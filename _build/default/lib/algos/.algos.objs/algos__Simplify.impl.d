lib/algos/simplify.ml: Array Core Float Fun List
