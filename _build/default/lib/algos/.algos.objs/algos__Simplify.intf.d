lib/algos/simplify.mli: Core
