lib/algos/speed_groups.ml: List
