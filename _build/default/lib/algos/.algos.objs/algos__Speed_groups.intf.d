lib/algos/speed_groups.mli:
