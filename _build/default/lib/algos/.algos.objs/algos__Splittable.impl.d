lib/algos/splittable.ml: Array Core Float Fun Graphs List Relaxed_lp
