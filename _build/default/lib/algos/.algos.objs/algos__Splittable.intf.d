lib/algos/splittable.mli: Core
