lib/algos/um_class_uniform.ml: Array Common Core Fun Graphs List Relaxed_lp
