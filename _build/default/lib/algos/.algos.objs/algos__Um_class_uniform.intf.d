lib/algos/um_class_uniform.mli: Common Core
