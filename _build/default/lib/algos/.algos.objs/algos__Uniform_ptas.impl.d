lib/algos/uniform_ptas.ml: Common Core Option Ptas_dp Simplify
