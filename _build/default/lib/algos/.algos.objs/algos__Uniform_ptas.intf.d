lib/algos/uniform_ptas.mli: Common Core
