let schedule instance =
  let speeds =
    match instance.Core.Instance.env with
    | Core.Instance.Identical ->
        Array.make (Core.Instance.num_machines instance) 1.0
    | Core.Instance.Uniform speeds -> Array.copy speeds
    | Core.Instance.Restricted _ | Core.Instance.Unrelated _ ->
        invalid_arg "Batch_lpt: requires identical or uniform machines"
  in
  let kk = Core.Instance.num_classes instance in
  let macro =
    Array.init kk (fun k ->
        let vol = Core.Instance.class_size instance k in
        if Core.Instance.jobs_of_class instance k = [] then 0.0
        else vol +. instance.Core.Instance.setups.(k))
  in
  (* LPT over macro-jobs: largest first onto the machine finishing it
     first. *)
  let order = Array.init kk (fun k -> k) in
  Array.sort (fun a b -> compare (macro.(b), a) (macro.(a), b)) order;
  let m = Array.length speeds in
  let load = Array.make m 0.0 in
  let home = Array.make kk 0 in
  Array.iter
    (fun k ->
      if macro.(k) > 0.0 then begin
        let best = ref 0 and best_finish = ref infinity in
        for i = 0 to m - 1 do
          let finish = load.(i) +. (macro.(k) /. speeds.(i)) in
          if finish < !best_finish then begin
            best := i;
            best_finish := finish
          end
        done;
        load.(!best) <- !best_finish;
        home.(k) <- !best
      end)
    order;
  let assignment =
    Array.map (fun k -> home.(k)) instance.Core.Instance.job_class
  in
  Common.result_of_assignment instance assignment
