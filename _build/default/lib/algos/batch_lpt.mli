(** Wholesale class batching — the other natural heuristic from the OR
    literature on setup times, used as an additional baseline.

    Each class becomes one indivisible macro-job of size
    [s_k + Σ_{j∈k} p_j], and the macro-jobs are scheduled by plain LPT on
    the uniform machines. Setup cost is minimal (exactly one setup per
    class) but a large class can dominate a machine, so — unlike
    Lemma 2.1's placeholder transformation, which splits classes at setup
    granularity — this carries no constant approximation factor. The E7
    comparison shows where each batching extreme wins. *)

val schedule : Core.Instance.t -> Common.result
(** Raises [Invalid_argument] unless the environment is identical or
    uniformly related. *)
