type result = { schedule : Core.Schedule.t; makespan : float }

let result_of_assignment instance assignment =
  let schedule = Core.Schedule.make instance assignment in
  { schedule; makespan = Core.Schedule.makespan schedule }

module Load_tracker = struct
  type t = {
    instance : Core.Instance.t;
    loads : float array;
    has_class : bool array array; (* machine x class *)
    assignment : int array; (* -1 = unassigned *)
  }

  let create instance =
    {
      instance;
      loads = Array.make (Core.Instance.num_machines instance) 0.0;
      has_class =
        Array.make_matrix
          (Core.Instance.num_machines instance)
          (Core.Instance.num_classes instance)
          false;
      assignment = Array.make (Core.Instance.num_jobs instance) (-1);
    }

  let load t i = t.loads.(i)

  let cost_increase t ~machine ~job =
    let p = Core.Instance.ptime t.instance machine job in
    let k = t.instance.Core.Instance.job_class.(job) in
    if t.has_class.(machine).(k) then p
    else p +. Core.Instance.setup_time t.instance machine k

  let add t ~machine ~job =
    if t.assignment.(job) >= 0 then
      invalid_arg "Load_tracker.add: job already assigned";
    let delta = cost_increase t ~machine ~job in
    if delta = infinity then
      invalid_arg "Load_tracker.add: job not eligible on machine";
    t.loads.(machine) <- t.loads.(machine) +. delta;
    t.has_class.(machine).(t.instance.Core.Instance.job_class.(job)) <- true;
    t.assignment.(job) <- machine

  let makespan t = Array.fold_left Float.max 0.0 t.loads

  let assignment t =
    Array.iteri
      (fun j i ->
        if i < 0 then
          invalid_arg
            (Printf.sprintf "Load_tracker.assignment: job %d unassigned" j))
      t.assignment;
    Array.copy t.assignment
end
