(** Shared plumbing for the scheduling algorithms. *)

type result = { schedule : Core.Schedule.t; makespan : float }

val result_of_assignment : Core.Instance.t -> int array -> result
(** Validates the assignment (see {!Core.Schedule.make}) and computes the
    makespan. *)

(** Incremental setup-aware load accounting for greedy algorithms. *)
module Load_tracker : sig
  type t

  val create : Core.Instance.t -> t

  val load : t -> int -> float
  (** Current load of a machine. *)

  val cost_increase : t -> machine:int -> job:int -> float
  (** Processing time of the job on the machine plus its class's setup time
      if the machine does not yet hold that class ([infinity] if
      ineligible). *)

  val add : t -> machine:int -> job:int -> unit
  (** Assign the job. Raises [Invalid_argument] if already assigned or
      ineligible. *)

  val makespan : t -> float

  val assignment : t -> int array
  (** Raises [Invalid_argument] if some job is still unassigned. *)
end
