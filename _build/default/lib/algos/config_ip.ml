let speeds_of instance =
  match instance.Core.Instance.env with
  | Core.Instance.Identical ->
      Array.make (Core.Instance.num_machines instance) 1.0
  | Core.Instance.Uniform speeds -> Array.copy speeds
  | Core.Instance.Restricted _ | Core.Instance.Unrelated _ ->
      invalid_arg "Config_ip: requires identical or uniform machines"

let require_identical instance = ignore (speeds_of instance)

(* Configurations for a machine of the given size budget. *)
let configurations_for_budget ?(config_limit = 50_000) instance ~budget:t =
  let types = Array.of_list (Ptas_dp.item_types instance) in
  let ntypes = Array.length types in
  let type_class = Array.map (fun (k, _, _) -> k) types in
  let type_size = Array.map (fun (_, p, _) -> p) types in
  let counts = Array.map (fun (_, _, jobs) -> List.length jobs) types in
  let setups = instance.Core.Instance.setups in
  let eps = 1e-9 in
  let chosen = Array.make ntypes 0 in
  let class_open = Array.make (Core.Instance.num_classes instance) 0 in
  let configs = ref [] in
  let nconfigs = ref 0 in
  (* The DFS visits every feasible (not only maximal) configuration, so cap
     the total leaf count as well as the kept ones. *)
  let visits = ref 0 in
  (* Cost of adding one item of [ty] given the current class openings. *)
  let marginal ty =
    type_size.(ty)
    +. if class_open.(type_class.(ty)) > 0 then 0.0 else setups.(type_class.(ty))
  in
  let maximal used =
    let blocked = ref true in
    for ty = 0 to ntypes - 1 do
      if chosen.(ty) < counts.(ty) && used +. marginal ty <= t +. eps then
        blocked := false
    done;
    !blocked
  in
  let rec enumerate ty used =
    if ty = ntypes then begin
      incr visits;
      if !visits > 50 * config_limit then
        failwith "Config_ip: configuration enumeration exceeded its budget";
      if maximal used then begin
        incr nconfigs;
        if !nconfigs > config_limit then
          failwith "Config_ip: configuration limit exceeded";
        configs := Array.copy chosen :: !configs
      end
    end
    else begin
      let setup_cost =
        if class_open.(type_class.(ty)) > 0 then 0.0
        else setups.(type_class.(ty))
      in
      let max_fit =
        if t -. used -. setup_cost < -.eps then 0
        else if type_size.(ty) <= 0.0 then counts.(ty)
        else
          max 0
            (min counts.(ty)
               (int_of_float
                  (floor ((t -. used -. setup_cost +. eps) /. type_size.(ty)))))
      in
      for c = max_fit downto 0 do
        chosen.(ty) <- c;
        if c > 0 then
          class_open.(type_class.(ty)) <- class_open.(type_class.(ty)) + 1;
        let used' =
          used
          +. (float_of_int c *. type_size.(ty))
          +. (if c > 0 then setup_cost else 0.0)
        in
        enumerate (ty + 1) used';
        if c > 0 then
          class_open.(type_class.(ty)) <- class_open.(type_class.(ty)) - 1;
        chosen.(ty) <- 0
      done
    end
  in
  enumerate 0 0.0;
  !configs

let configurations ?config_limit instance ~makespan =
  require_identical instance;
  (* budget in size units for a speed-v machine is makespan·v; the
     canonical entry point reports the speed-1 (identical) budget *)
  configurations_for_budget ?config_limit instance ~budget:makespan

type outcome = { result : Common.result; optimal : bool }

let feasible ?config_limit ?(node_limit = 200_000) instance ~makespan:t =
  let speeds = speeds_of instance in
  let types = Array.of_list (Ptas_dp.item_types instance) in
  let ntypes = Array.length types in
  let counts = Array.map (fun (_, _, jobs) -> List.length jobs) types in
  (* one configuration family per distinct speed; machines of equal speed
     are interchangeable, which is the symmetry this solver exploits *)
  let speed_groups = Hashtbl.create 8 in
  Array.iteri
    (fun i v ->
      let machines = Option.value ~default:[] (Hashtbl.find_opt speed_groups v) in
      Hashtbl.replace speed_groups v (i :: machines))
    speeds;
  let groups =
    Hashtbl.fold (fun v machines acc -> (v, machines) :: acc) speed_groups []
    |> List.sort compare
  in
  let lp = Lp.create () in
  (* zv: (config vector, machines of this speed group, variable) *)
  let zv = ref [] in
  List.iter
    (fun (v, machines) ->
      let budget = t *. v in
      let configs =
        configurations_for_budget ?config_limit instance ~budget
      in
      let cap = float_of_int (List.length machines) in
      let terms = ref [] in
      List.iteri
        (fun idx c ->
          let z =
            Lp.add_var ~obj:1.0 ~ub:cap lp (Printf.sprintf "z_%g_%d" v idx)
          in
          terms := (1.0, z) :: !terms;
          zv := (c, machines, z) :: !zv)
        configs;
      if !terms <> [] then Lp.add_constraint lp !terms Lp.Le cap)
    groups;
  let zv = !zv in
  let uncoverable = ref false in
  for ty = 0 to ntypes - 1 do
    if counts.(ty) > 0 && not (List.exists (fun (c, _, _) -> c.(ty) > 0) zv)
    then uncoverable := true
  done;
  if !uncoverable || zv = [] then None
  else begin
    for ty = 0 to ntypes - 1 do
      if counts.(ty) > 0 then
        Lp.add_constraint lp
          (List.filter_map
             (fun (c, _, z) ->
               if c.(ty) > 0 then Some (float_of_int c.(ty), z) else None)
             zv)
          Lp.Ge
          (float_of_int counts.(ty))
    done;
    match Lp.Mip.solve ~node_limit lp ~integer:(List.map (fun (_, _, z) -> z) zv) with
    | Lp.Mip.No_proof -> failwith "Config_ip: node limit exceeded"
    | Lp.Mip.Infeasible -> None
    | Lp.Mip.Optimal { values; _ } ->
        (* instantiate machines per speed group from configuration counts *)
        let remaining = Array.map (fun (_, _, jobs) -> ref jobs) types in
        let assignment = Array.make (Core.Instance.num_jobs instance) (-1) in
        let cursor = Hashtbl.create 8 in
        List.iter
          (fun (v, machines) -> Hashtbl.replace cursor v machines)
          groups;
        List.iter
          (fun (c, machines, z) ->
            let v = speeds.(List.hd machines) in
            let q = int_of_float (Float.round values.(Lp.var_index z)) in
            for _ = 1 to q do
              match Hashtbl.find cursor v with
              | [] -> () (* capacity row prevents this *)
              | machine :: rest ->
                  Hashtbl.replace cursor v rest;
                  for ty = 0 to ntypes - 1 do
                    for _ = 1 to c.(ty) do
                      match !(remaining.(ty)) with
                      | [] -> () (* surplus capacity: covering over-counts *)
                      | j :: rest ->
                          assignment.(j) <- machine;
                          remaining.(ty) := rest
                    done
                  done
            done)
          zv;
        Some (Common.result_of_assignment instance assignment)
  end

let solve ?config_limit ?node_limit ?(rel_tol = 1e-4) instance =
  let (_ : float array) = speeds_of instance in
  let lo = Core.Bounds.lower_bound instance in
  let hi = Core.Bounds.naive_upper_bound instance in
  let probe t = feasible ?config_limit ?node_limit instance ~makespan:t in
  let integral =
    instance.Core.Instance.env = Core.Instance.Identical
    && Array.for_all Float.is_integer instance.Core.Instance.sizes
    && Array.for_all Float.is_integer instance.Core.Instance.setups
  in
  if integral then begin
    let rec bisect lo hi best =
      if hi - lo <= 1 then best
      else begin
        let mid = (lo + hi) / 2 in
        match probe (float_of_int mid) with
        | Some r -> bisect lo mid r
        | None -> bisect mid hi best
      end
    in
    let lo_i = int_of_float (ceil lo) - 1 in
    let hi_i = int_of_float (ceil hi) in
    match probe (float_of_int hi_i) with
    | Some start -> { result = bisect lo_i hi_i start; optimal = true }
    | None ->
        (* the naive bound is always achievable; reaching here means the
           limits fired inside the probe, which raises instead *)
        assert false
  end
  else begin
    match Core.Binary_search.min_feasible ~lo ~hi ~rel_tol probe with
    | Some (_, result) -> { result; optimal = false }
    | None -> assert false
  end
