(** Configuration-IP solver for identical machines.

    The lineage the paper cites for its strongest setup-time PTAS results
    (Jansen–Klein–Maack–Rau, "Empowering the Configuration-IP"): instead
    of assigning jobs, enumerate {e machine configurations} — maximal
    multisets of (class, size) item types whose total size plus setups
    fits the makespan guess — and decide with an integer program how many
    machines run each configuration:

    {v
      Σ_c z_c <= m            (machines available)
      Σ_c z_c · c_ty >= n_ty  (every item type covered)
      z_c ∈ Z≥0
    v}

    Maximality of the enumerated configurations makes the covering form
    complete (surplus capacity is simply left idle), and keeps the
    enumeration small. Feasibility probes plug into the usual integer
    bisection. Identical machines get one configuration family; uniformly
    related machines get one family per distinct speed (machines of equal
    speed are interchangeable — the symmetry this solver exploits and the
    assignment ILP does not). *)

val configurations :
  ?config_limit:int -> Core.Instance.t -> makespan:float -> int array list
(** The maximal feasible configurations as vectors over the instance's
    item types (in {!Ptas_dp.num_item_types} order). Raises [Failure] if
    more than [config_limit] (default [50_000]) configurations arise. *)

val feasible :
  ?config_limit:int ->
  ?node_limit:int ->
  Core.Instance.t ->
  makespan:float ->
  Common.result option
(** A schedule of makespan [<= makespan], or [None] if the configuration
    IP proves none exists. Raises [Invalid_argument] on restricted /
    unrelated environments; [Failure] on enumeration/node-limit blowup. *)

type outcome = { result : Common.result; optimal : bool }

val solve :
  ?config_limit:int -> ?node_limit:int -> ?rel_tol:float ->
  Core.Instance.t -> outcome
(** Integer bisection over the guess (exact for integral identical
    instances; tolerance-bounded otherwise, since uniform speeds make the
    optimum non-integral). *)
