(** Exact makespan minimization by branch and bound.

    Ground truth for the approximation-ratio experiments. Jobs are branched
    in non-increasing size order over all machines, with best-first
    incumbent from list scheduling, volume-based pruning and empty-machine
    symmetry breaking on identical machines. Exponential in the worst case
    — intended for instances with up to roughly 15 jobs. *)

type outcome = {
  result : Common.result;
  optimal : bool;  (** false if the node limit was hit first *)
  nodes : int;  (** branch-and-bound nodes explored *)
}

val solve : ?node_limit:int -> Core.Instance.t -> outcome
(** [node_limit] defaults to 20 million. Raises [Invalid_argument] if some
    job is eligible on no machine. *)

val makespan : ?node_limit:int -> Core.Instance.t -> float
(** Shorthand: [(solve t).result.makespan]; raises [Failure] if optimality
    was not proven within the node limit. *)

(** {1 Low-level search}

    Building block shared with {!Exact_parallel}. *)

type search_result = {
  best_assignment : int array option;
      (** an assignment strictly better than the initial incumbent, if the
          search found one *)
  best_makespan : float;  (** its makespan ([infinity] when [None]) *)
  search_nodes : int;
  complete : bool;
}

val search :
  ?node_limit:int ->
  ?fixed:(int * int) list ->
  shared:float Atomic.t ->
  Core.Instance.t ->
  search_result
(** Depth-first branch and bound over the non-[fixed] jobs, starting from
    the given [(job, machine)] pre-assignments. [shared] holds the
    incumbent makespan: it is read for pruning on every node and updated
    with a CAS min whenever a better schedule completes, so several
    searches can run concurrently against the same incumbent. *)
