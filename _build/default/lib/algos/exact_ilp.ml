type outcome = { result : Common.result; optimal : bool }

(* Build and solve the 0/1 feasibility program for a fixed guess. *)
let probe ?(node_limit = 200_000) instance ~makespan:t =
  let n = Core.Instance.num_jobs instance in
  let m = Core.Instance.num_machines instance in
  let kk = Core.Instance.num_classes instance in
  let job_class = instance.Core.Instance.job_class in
  let lp = Lp.create () in
  let xv = Array.make_matrix m n None in
  let yv = Array.make_matrix m kk None in
  let class_count = Array.make kk 0 in
  Array.iter (fun k -> class_count.(k) <- class_count.(k) + 1) job_class;
  for i = 0 to m - 1 do
    for k = 0 to kk - 1 do
      if Core.Instance.setup_time instance i k <= t && class_count.(k) > 0 then
        yv.(i).(k) <- Some (Lp.add_var ~ub:1.0 lp (Printf.sprintf "y%d_%d" i k))
    done;
    for j = 0 to n - 1 do
      let p = Core.Instance.ptime instance i j in
      if p <= t && yv.(i).(job_class.(j)) <> None then
        xv.(i).(j) <- Some (Lp.add_var ~ub:1.0 lp (Printf.sprintf "x%d_%d" i j))
    done
  done;
  let assignable = ref true in
  for j = 0 to n - 1 do
    let terms = ref [] in
    for i = 0 to m - 1 do
      match xv.(i).(j) with Some v -> terms := (1.0, v) :: !terms | None -> ()
    done;
    if !terms = [] then assignable := false
    else Lp.add_constraint lp !terms Lp.Eq 1.0
  done;
  if not !assignable then Some None (* provably infeasible *)
  else begin
    for i = 0 to m - 1 do
      (* (1) machine load *)
      let terms = ref [] in
      for j = 0 to n - 1 do
        match xv.(i).(j) with
        | Some v -> terms := (Core.Instance.ptime instance i j, v) :: !terms
        | None -> ()
      done;
      for k = 0 to kk - 1 do
        match yv.(i).(k) with
        | Some v -> terms := (Core.Instance.setup_time instance i k, v) :: !terms
        | None -> ()
      done;
      if !terms <> [] then Lp.add_constraint lp !terms Lp.Le t;
      (* (4) aggregated: Σ_{j∈k} x_ij <= |J_k| y_ik *)
      for k = 0 to kk - 1 do
        match yv.(i).(k) with
        | None -> ()
        | Some y ->
            let terms = ref [ (-.float_of_int class_count.(k), y) ] in
            for j = 0 to n - 1 do
              if job_class.(j) = k then
                match xv.(i).(j) with
                | Some x -> terms := (1.0, x) :: !terms
                | None -> ()
            done;
            if List.length !terms > 1 then
              Lp.add_constraint lp !terms Lp.Le 0.0
      done
    done;
    let integer =
      List.concat_map
        (fun row -> List.filter_map Fun.id (Array.to_list row))
        (Array.to_list xv @ Array.to_list yv)
    in
    match Lp.Mip.solve ~node_limit lp ~integer with
    | Lp.Mip.No_proof -> None (* caller translates to Node_limit *)
    | Lp.Mip.Infeasible -> Some None
    | Lp.Mip.Optimal { values; _ } ->
        let assignment = Array.make n (-1) in
        for j = 0 to n - 1 do
          for i = 0 to m - 1 do
            match xv.(i).(j) with
            | Some v ->
                if values.(Lp.var_index v) > 0.5 && assignment.(j) < 0 then
                  assignment.(j) <- i
            | None -> ()
          done
        done;
        Some (Some (Common.result_of_assignment instance assignment))
  end

let feasible ?node_limit instance ~makespan =
  match probe ?node_limit instance ~makespan with
  | None -> failwith "Exact_ilp.feasible: node limit reached"
  | Some answer -> answer

let is_integral instance =
  let ok = ref true in
  let check v = if v < infinity && Float.round v <> v then ok := false in
  for i = 0 to Core.Instance.num_machines instance - 1 do
    for j = 0 to Core.Instance.num_jobs instance - 1 do
      check (Core.Instance.ptime instance i j)
    done;
    for k = 0 to Core.Instance.num_classes instance - 1 do
      check (Core.Instance.setup_time instance i k)
    done
  done;
  !ok

let solve ?(node_limit = 200_000) ?(rel_tol = 1e-4) instance =
  let limited = ref false in
  let run_probe t =
    match probe ~node_limit instance ~makespan:t with
    | None ->
        limited := true;
        None
    | Some answer -> answer
  in
  let lo = Core.Bounds.lower_bound instance in
  let hi = Core.Bounds.naive_upper_bound instance in
  if hi = infinity then invalid_arg "Exact_ilp.solve: job eligible nowhere";
  if is_integral instance then begin
    (* integer bisection: OPT is an integer in [ceil lo, ceil hi] *)
    let rec bisect lo hi best =
      (* invariant: OPT > lo (infeasible), feasible witness at hi = best *)
      if hi - lo <= 1 then best
      else begin
        let mid = (lo + hi) / 2 in
        match run_probe (float_of_int mid) with
        | Some r -> bisect lo mid r
        | None -> bisect mid hi best
      end
    in
    let lo_i = int_of_float (ceil lo) - 1 in
    let hi_i = int_of_float (ceil hi) in
    (* the naive upper bound is integrally achievable *)
    let start =
      match run_probe (float_of_int hi_i) with
      | Some r -> r
      | None -> List_scheduling.schedule instance
    in
    let result = bisect lo_i hi_i start in
    { result; optimal = not !limited }
  end
  else begin
    match
      Core.Binary_search.min_feasible ~lo ~hi ~rel_tol (fun t -> run_probe t)
    with
    | Some (_, result) -> { result; optimal = false }
    | None ->
        (* hi is integrally achievable, so only node limits get here *)
        { result = List_scheduling.schedule instance; optimal = false }
  end
