(** Exact scheduling via the integer program ILP-UM itself.

    The complement to {!Exact}'s assignment enumeration: feasibility of a
    makespan guess [T] is decided by branch and bound on the 0/1 program
    (constraints (1)–(5), with (4) in the aggregated form
    [Σ_{j∈k} x_ij <= |J_k|·y_ik]), and the guess is binary-searched. When
    every processing and setup time is integral — true for all generated
    workloads — the optimum is an integer and the search is exact;
    otherwise the result is within the given relative tolerance. *)

type outcome = {
  result : Common.result;
  optimal : bool;
      (** true iff no MIP node limit fired and the instance was integral,
          so the integer bisection closed the gap exactly *)
}

val feasible :
  ?node_limit:int -> Core.Instance.t -> makespan:float -> Common.result option
(** One probe: a schedule of makespan [<= makespan], or [None] if the MIP
    proves none exists. Raises [Failure] if the node limit fires (neither
    answer would be trustworthy). *)

val solve :
  ?node_limit:int -> ?rel_tol:float -> Core.Instance.t -> outcome
(** [node_limit] (default [200_000]) applies per probe; [rel_tol]
    (default [1e-4]) only matters for non-integral instances. *)
