(** Parallel exact branch and bound (OCaml 5 domains).

    The search tree is split at the root: the first job in branch order is
    fixed to each of its eligible machines and the resulting subtrees are
    explored concurrently on a {!Parallel.Pool}, sharing a single atomic
    incumbent so every domain prunes with the globally best makespan found
    so far. On identical machines the first job's choices are symmetric,
    so the split happens on the first {e two} jobs instead.

    Results are identical to {!Exact.solve} — only wall-clock time and the
    node-visit order differ. *)

type outcome = {
  result : Common.result;
  optimal : bool;  (** false if any subtree hit the node limit *)
  nodes : int;  (** total nodes over all subtrees *)
  subtrees : int;  (** root branches explored in parallel *)
}

val solve :
  ?node_limit:int ->
  ?pool:Parallel.Pool.t ->
  Core.Instance.t ->
  outcome
(** [node_limit] (default 20 million) applies per subtree. Without [pool]
    a temporary pool of {!Parallel.Pool.default_jobs} domains is created
    and shut down. Raises [Invalid_argument] if some job is eligible on no
    machine. *)
