type order = Input | Longest_first | By_class

let min_ptime instance j =
  let best = ref infinity in
  for i = 0 to Core.Instance.num_machines instance - 1 do
    let p = Core.Instance.ptime instance i j in
    if p < !best then best := p
  done;
  !best

let job_order instance order =
  let n = Core.Instance.num_jobs instance in
  let jobs = Array.init n (fun j -> j) in
  (match order with
  | Input -> ()
  | Longest_first ->
      let key = Array.init n (fun j -> min_ptime instance j) in
      Array.sort (fun a b -> compare (key.(b), a) (key.(a), b)) jobs
  | By_class ->
      let volume =
        Array.init (Core.Instance.num_classes instance) (fun k ->
            Core.Instance.class_size instance k)
      in
      let key j =
        let k = instance.Core.Instance.job_class.(j) in
        (* sort by class volume (desc), then class id, then size desc *)
        (-.volume.(k), k, -.instance.Core.Instance.sizes.(j))
      in
      Array.sort (fun a b -> compare (key a) (key b)) jobs);
  jobs

let schedule ?(order = By_class) instance =
  let tracker = Common.Load_tracker.create instance in
  let jobs = job_order instance order in
  Array.iter
    (fun j ->
      let best = ref (-1) and best_load = ref infinity in
      for i = 0 to Core.Instance.num_machines instance - 1 do
        let delta = Common.Load_tracker.cost_increase tracker ~machine:i ~job:j in
        let completion = Common.Load_tracker.load tracker i +. delta in
        if completion < !best_load then begin
          best := i;
          best_load := completion
        end
      done;
      if !best < 0 then
        invalid_arg
          (Printf.sprintf "List_scheduling: job %d is eligible nowhere" j);
      Common.Load_tracker.add tracker ~machine:!best ~job:j)
    jobs;
  Common.result_of_assignment instance (Common.Load_tracker.assignment tracker)
