(** Setup-aware greedy list scheduling.

    The natural baseline heuristic for every machine environment: jobs are
    considered in a fixed order and each goes to the machine where it
    completes earliest, counting the class setup if the machine does not
    yet hold the job's class. *)

type order =
  | Input  (** jobs in index order *)
  | Longest_first  (** non-increasing minimum processing time *)
  | By_class  (** classes grouped together (largest class volume first),
                  sizes non-increasing within a class — usually the
                  strongest variant because it avoids scattering setups *)

val schedule : ?order:order -> Core.Instance.t -> Common.result
(** Raises [Invalid_argument] if some job is eligible on no machine. *)
