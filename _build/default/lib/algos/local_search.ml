type stats = { result : Common.result; moves : int; swaps : int }

(* Mutable view of a schedule with O(1) incremental load edits. *)
type state = {
  instance : Core.Instance.t;
  assignment : int array;
  loads : float array;
  class_count : int array array; (* machine x class: jobs present *)
}

let build instance schedule =
  if not (Core.Schedule.is_valid instance schedule) then
    invalid_arg "Local_search: schedule does not belong to the instance";
  let m = Core.Instance.num_machines instance in
  let kk = Core.Instance.num_classes instance in
  let assignment = Core.Schedule.assignment schedule in
  let loads = Array.make m 0.0 in
  let class_count = Array.make_matrix m kk 0 in
  Array.iteri
    (fun j i ->
      let k = instance.Core.Instance.job_class.(j) in
      loads.(i) <- loads.(i) +. Core.Instance.ptime instance i j;
      if class_count.(i).(k) = 0 then
        loads.(i) <- loads.(i) +. Core.Instance.setup_time instance i k;
      class_count.(i).(k) <- class_count.(i).(k) + 1)
    assignment;
  { instance; assignment; loads; class_count }

(* Load of machine [i] after removing the listed jobs and adding the
   others; job lists are tiny (1-2 elements). *)
let load_after st i ~remove ~add =
  let inst = st.instance in
  let k_of j = inst.Core.Instance.job_class.(j) in
  let delta_count = Hashtbl.create 4 in
  let bump k d =
    Hashtbl.replace delta_count k (d + Option.value ~default:0 (Hashtbl.find_opt delta_count k))
  in
  let load = ref st.loads.(i) in
  List.iter
    (fun j ->
      load := !load -. Core.Instance.ptime inst i j;
      bump (k_of j) (-1))
    remove;
  List.iter
    (fun j ->
      load := !load +. Core.Instance.ptime inst i j;
      bump (k_of j) 1)
    add;
  Hashtbl.iter
    (fun k d ->
      let before = st.class_count.(i).(k) in
      let after = before + d in
      if before > 0 && after = 0 then
        load := !load -. Core.Instance.setup_time inst i k
      else if before = 0 && after > 0 then
        load := !load +. Core.Instance.setup_time inst i k)
    delta_count;
  !load

let apply_move st j target =
  let inst = st.instance in
  let source = st.assignment.(j) in
  let k = inst.Core.Instance.job_class.(j) in
  st.loads.(source) <- load_after st source ~remove:[ j ] ~add:[];
  st.class_count.(source).(k) <- st.class_count.(source).(k) - 1;
  st.loads.(target) <- load_after st target ~remove:[] ~add:[ j ];
  st.class_count.(target).(k) <- st.class_count.(target).(k) + 1;
  st.assignment.(j) <- target

let makespan_if st changed =
  (* max load with the (machine, new load) substitutions in [changed] *)
  let value i =
    match List.assoc_opt i changed with
    | Some l -> l
    | None -> st.loads.(i)
  in
  let worst = ref 0.0 in
  for i = 0 to Array.length st.loads - 1 do
    let l = value i in
    if l > !worst then worst := l
  done;
  !worst

let improve ?(max_steps = 10_000) instance schedule =
  let st = build instance schedule in
  let n = Core.Instance.num_jobs instance in
  let m = Core.Instance.num_machines instance in
  let eps = 1e-9 in
  let moves = ref 0 and swaps = ref 0 in
  let continue = ref true in
  let steps = ref 0 in
  while !continue && !steps < max_steps do
    incr steps;
    let current = Array.fold_left Float.max 0.0 st.loads in
    (* best improving action this sweep *)
    let best = ref None in
    let consider quality action =
      match !best with
      | Some (q, _) when q <= quality +. eps -> ()
      | _ -> if quality < current -. eps then best := Some (quality, action)
    in
    (* moves *)
    for j = 0 to n - 1 do
      let source = st.assignment.(j) in
      for target = 0 to m - 1 do
        if target <> source && Core.Instance.job_eligible instance target j
        then begin
          let ls = load_after st source ~remove:[ j ] ~add:[] in
          let lt = load_after st target ~remove:[] ~add:[ j ] in
          let q = makespan_if st [ (source, ls); (target, lt) ] in
          consider q (`Move (j, target))
        end
      done
    done;
    (* swaps *)
    for j1 = 0 to n - 1 do
      for j2 = j1 + 1 to n - 1 do
        let i1 = st.assignment.(j1) and i2 = st.assignment.(j2) in
        if
          i1 <> i2
          && Core.Instance.job_eligible instance i2 j1
          && Core.Instance.job_eligible instance i1 j2
        then begin
          let l1 = load_after st i1 ~remove:[ j1 ] ~add:[ j2 ] in
          let l2 = load_after st i2 ~remove:[ j2 ] ~add:[ j1 ] in
          let q = makespan_if st [ (i1, l1); (i2, l2) ] in
          consider q (`Swap (j1, j2))
        end
      done
    done;
    match !best with
    | None -> continue := false
    | Some (_, `Move (j, target)) ->
        apply_move st j target;
        incr moves
    | Some (_, `Swap (j1, j2)) ->
        let i1 = st.assignment.(j1) and i2 = st.assignment.(j2) in
        apply_move st j1 i2;
        apply_move st j2 i1;
        incr swaps
  done;
  {
    result = Common.result_of_assignment instance st.assignment;
    moves = !moves;
    swaps = !swaps;
  }

let polish ?max_steps instance (r : Common.result) =
  let improved = improve ?max_steps instance r.Common.schedule in
  if improved.result.Common.makespan < r.Common.makespan then improved.result
  else r
