(** Local-search polishing of schedules.

    Classic OR-style post-processing orthogonal to the paper's guarantees:
    starting from any schedule, repeatedly apply the best improving move
    until none exists. Neighborhoods:

    - {e move}: relocate one job to another machine;
    - {e swap}: exchange two jobs between machines.

    Both evaluate loads with full setup accounting (moving the last job of
    a class off a machine also removes the setup), so the search exploits
    exactly the structure that makes the problem hard. The result is never
    worse than the input; guarantees carried by the input schedule are
    preserved. *)

type stats = {
  result : Common.result;
  moves : int;  (** improving relocations applied *)
  swaps : int;  (** improving exchanges applied *)
}

val improve : ?max_steps:int -> Core.Instance.t -> Core.Schedule.t -> stats
(** Steepest-descent until a local optimum or [max_steps] (default 10_000)
    improvements. Raises [Invalid_argument] if the schedule does not
    belong to the instance. *)

val polish : ?max_steps:int -> Core.Instance.t -> Common.result -> Common.result
(** Convenience wrapper: [improve] on a result, keeping the better of the
    two (they are equal at a local optimum by construction). *)
