type fractional = {
  makespan : float;
  x : float array array;
  y : float array array;
}

let log_src = Logs.Src.create "algos.lp_um" ~doc:"ILP-UM relaxation"

module Log = (val Logs.src_log log_src)

let feasible instance ~makespan:t =
  let n = Core.Instance.num_jobs instance in
  let m = Core.Instance.num_machines instance in
  let kk = Core.Instance.num_classes instance in
  let job_class = instance.Core.Instance.job_class in
  let lp = Lp.create () in
  (* Variables only for pairs that could appear in a schedule of makespan
     t: p_ij <= t (constraint (5)) and s_ik <= t (implied by (1)). *)
  let xv = Array.make_matrix m n None in
  let yv = Array.make_matrix m kk None in
  for i = 0 to m - 1 do
    for k = 0 to kk - 1 do
      if Core.Instance.setup_time instance i k <= t then
        yv.(i).(k) <-
          Some (Lp.add_var ~ub:1.0 lp (Printf.sprintf "y_%d_%d" i k))
    done;
    for j = 0 to n - 1 do
      let p = Core.Instance.ptime instance i j in
      if p <= t && yv.(i).(job_class.(j)) <> None then
        xv.(i).(j) <- Some (Lp.add_var lp (Printf.sprintf "x_%d_%d" i j))
    done
  done;
  (* (2): every job fully assigned *)
  let assignable = ref true in
  for j = 0 to n - 1 do
    let terms = ref [] in
    for i = 0 to m - 1 do
      match xv.(i).(j) with
      | Some v -> terms := (1.0, v) :: !terms
      | None -> ()
    done;
    if !terms = [] then assignable := false
    else Lp.add_constraint lp !terms Lp.Eq 1.0
  done;
  if not !assignable then None
  else begin
    (* (1): machine loads *)
    for i = 0 to m - 1 do
      let terms = ref [] in
      for j = 0 to n - 1 do
        match xv.(i).(j) with
        | Some v -> terms := (Core.Instance.ptime instance i j, v) :: !terms
        | None -> ()
      done;
      for k = 0 to kk - 1 do
        match yv.(i).(k) with
        | Some v ->
            terms := (Core.Instance.setup_time instance i k, v) :: !terms
        | None -> ()
      done;
      if !terms <> [] then Lp.add_constraint lp !terms Lp.Le t
    done;
    (* (4): setups dominate assignments *)
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        match xv.(i).(j) with
        | Some x -> (
            match yv.(i).(job_class.(j)) with
            | Some y -> Lp.add_constraint lp [ (1.0, y); (-1.0, x) ] Lp.Ge 0.0
            | None -> assert false (* x exists only when y does *))
        | None -> ()
      done
    done;
    match Lp.solve lp with
    | Lp.Optimal sol ->
        let x =
          Array.init m (fun i ->
              Array.init n (fun j ->
                  match xv.(i).(j) with
                  | Some v -> Lp.value sol v
                  | None -> 0.0))
        in
        let y =
          Array.init m (fun i ->
              Array.init kk (fun k ->
                  match yv.(i).(k) with
                  | Some v -> Lp.value sol v
                  | None -> 0.0))
        in
        Some { makespan = t; x; y }
    | Lp.Infeasible -> None
    | Lp.Unbounded -> assert false (* feasibility problem, zero objective *)
    | Lp.Aborted -> None
  end

type bound = { lower : float; solution : fractional; probes : int }

let lower_bound ?(rel_tol = 0.02) instance =
  let lo = Core.Bounds.lower_bound instance in
  let hi = Core.Bounds.naive_upper_bound instance in
  if hi = infinity then invalid_arg "Lp_um.lower_bound: job eligible nowhere";
  let probes = ref 0 in
  let max_infeasible = ref lo in
  let probe t =
    incr probes;
    let answer = feasible instance ~makespan:t in
    Log.debug (fun f ->
        f "probe %d: T=%g %s" !probes t
          (match answer with Some _ -> "feasible" | None -> "infeasible"));
    (match answer with
    | None -> if t > !max_infeasible then max_infeasible := t
    | Some _ -> ());
    answer
  in
  match Core.Binary_search.min_feasible ~lo ~hi ~rel_tol probe with
  | Some (_, sol) ->
      { lower = !max_infeasible; solution = sol; probes = !probes }
  | None ->
      (* The naive upper bound is achievable integrally, so the LP cannot
         be infeasible there. *)
      assert false
