(** The LP relaxation of ILP-UM (Section 3, constraints (1)–(5)).

    For a makespan guess [T]:

    - [x_ij >= 0] for eligible pairs with [p_ij <= T]  (constraint (5))
    - [y_ik ∈ [0,1]] for classes with [s_ik <= T]
    - [Σ_j x_ij p_ij + Σ_k y_ik s_ik <= T]  per machine  (1)
    - [Σ_i x_ij = 1] per job  (2)
    - [y_i,k_j >= x_ij] per eligible pair  (4)

    Feasibility of this LP at [T = OPT] is implied by any optimal integral
    schedule, so the smallest feasible [T] lower-bounds the optimum. *)

type fractional = {
  makespan : float;  (** the guess [T] this solution is feasible for *)
  x : float array array;  (** [x.(i).(j)], machine-major; 0 for ineligible *)
  y : float array array;  (** [y.(i).(k)] *)
}

val feasible : Core.Instance.t -> makespan:float -> fractional option
(** Solve the relaxation at a fixed guess. [None] = LP infeasible, hence no
    schedule with makespan [<= makespan] exists. *)

type bound = {
  lower : float;
      (** certified lower bound on the optimal makespan: the largest probe
          that was LP-infeasible (or the combinatorial bound if every probe
          was feasible) *)
  solution : fractional;
      (** fractional solution at the smallest feasible probe *)
  probes : int;  (** LP solves spent *)
}

val lower_bound : ?rel_tol:float -> Core.Instance.t -> bound
(** Binary search for the LP threshold. [rel_tol] defaults to 0.02, i.e.
    [solution.makespan <= (1 + rel_tol) · lower] up to the combinatorial
    bracket. Raises [Invalid_argument] if some job is eligible nowhere. *)
