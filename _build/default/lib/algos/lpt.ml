let approximation_factor = 3.0 *. (1.0 +. (1.0 /. sqrt 3.0))

let speeds_of instance =
  match instance.Core.Instance.env with
  | Core.Instance.Identical ->
      Array.make (Core.Instance.num_machines instance) 1.0
  | Core.Instance.Uniform speeds -> Array.copy speeds
  | Core.Instance.Restricted _ | Core.Instance.Unrelated _ ->
      invalid_arg "Lpt: requires identical or uniformly related machines"

(* Classic LPT for uniform machines on abstract items: sort by
   non-increasing size and put each item on the machine where it finishes
   first. Returns the machine of each item. *)
let lpt_items speeds sizes =
  let m = Array.length speeds in
  let order = Array.init (Array.length sizes) (fun idx -> idx) in
  Array.sort (fun a b -> compare (sizes.(b), a) (sizes.(a), b)) order;
  let load = Array.make m 0.0 in
  let home = Array.make (Array.length sizes) (-1) in
  Array.iter
    (fun item ->
      let best = ref 0 and best_finish = ref infinity in
      for i = 0 to m - 1 do
        let finish = load.(i) +. (sizes.(item) /. speeds.(i)) in
        if finish < !best_finish then begin
          best := i;
          best_finish := finish
        end
      done;
      load.(!best) <- !best_finish;
      home.(item) <- !best)
    order;
  home

let setup_oblivious instance =
  let speeds = speeds_of instance in
  let home = lpt_items speeds instance.Core.Instance.sizes in
  Common.result_of_assignment instance home

(* Items of the transformed instance: either a real (large) job or a
   placeholder standing for a bundle of small jobs of one class. *)
type item = Real of int | Placeholder of int (* class *)

let schedule instance =
  let speeds = speeds_of instance in
  let n = Core.Instance.num_jobs instance in
  let kk = Core.Instance.num_classes instance in
  let sizes = instance.Core.Instance.sizes in
  let setups = instance.Core.Instance.setups in
  let job_class = instance.Core.Instance.job_class in
  (* Split each class's jobs into small (p_j < s_k) and large. *)
  let small_of_class = Array.make kk [] in
  let items = ref [] in
  for j = n - 1 downto 0 do
    let k = job_class.(j) in
    if sizes.(j) < setups.(k) then
      small_of_class.(k) <- j :: small_of_class.(k)
    else items := Real j :: !items
  done;
  let placeholder_count = Array.make kk 0 in
  for k = 0 to kk - 1 do
    let total =
      List.fold_left (fun acc j -> acc +. sizes.(j)) 0.0 small_of_class.(k)
    in
    if total > 0.0 then begin
      let count = int_of_float (ceil (total /. setups.(k))) in
      placeholder_count.(k) <- count;
      for _ = 1 to count do
        items := Placeholder k :: !items
      done
    end
    else if small_of_class.(k) <> [] then begin
      (* zero-size small jobs: keep one placeholder so they have a home *)
      placeholder_count.(k) <- 1;
      items := Placeholder k :: !items
    end
  done;
  let items = Array.of_list !items in
  let item_sizes =
    Array.map
      (fun it ->
        match it with Real j -> sizes.(j) | Placeholder k -> setups.(k))
      items
  in
  let home = lpt_items speeds item_sizes in
  (* Map back: real jobs keep their machine; small jobs greedily fill the
     capacity reserved by their class's placeholders (over-packing each
     machine by at most one job, cf. Lemma 2.3's argument). *)
  let assignment = Array.make n (-1) in
  let capacity = Array.make_matrix (Core.Instance.num_machines instance) kk 0.0 in
  Array.iteri
    (fun idx it ->
      match it with
      | Real j -> assignment.(j) <- home.(idx)
      | Placeholder k ->
          capacity.(home.(idx)).(k) <-
            capacity.(home.(idx)).(k) +. setups.(k))
    items;
  for k = 0 to kk - 1 do
    if small_of_class.(k) <> [] then begin
      let machines_with_capacity =
        List.filter
          (fun i -> capacity.(i).(k) > 0.0)
          (List.init (Core.Instance.num_machines instance) Fun.id)
      in
      let rec fill jobs machines used =
        match (jobs, machines) with
        | [], _ -> ()
        | j :: rest, [ i ] ->
            (* last machine absorbs the remainder *)
            assignment.(j) <- i;
            fill rest machines (used +. sizes.(j))
        | j :: rest, i :: more ->
            if used < capacity.(i).(k) then begin
              assignment.(j) <- i;
              fill rest machines (used +. sizes.(j))
            end
            else fill jobs more 0.0
        | _ :: _, [] -> assert false (* placeholders reserve enough room *)
      in
      fill small_of_class.(k) machines_with_capacity 0.0
    end
  done;
  Common.result_of_assignment instance assignment
