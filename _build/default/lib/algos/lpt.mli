(** LPT with setup placeholders (Lemma 2.1).

    For uniformly related machines, replace each class's jobs smaller than
    its setup size with placeholder jobs of exactly the setup size, run the
    classic LPT rule ignoring classes and setups, then swap the
    placeholders back for the actual small jobs and account for setups.
    Lemma 2.1 shows this is a [3·(1 + 1/√3) ≈ 4.74]-approximation; since
    LPT itself is a [(1 + 1/√3)]-approximation for uniform machines
    (Kovács), the whole pipeline runs in [O(n log n)]. *)

val approximation_factor : float
(** [3 · (1 + 1/√3)]. *)

val schedule : Core.Instance.t -> Common.result
(** Lemma 2.1's algorithm. Raises [Invalid_argument] unless the instance
    has identical or uniformly related machines. *)

val setup_oblivious : Core.Instance.t -> Common.result
(** Baseline for the setup-dominance experiment: plain LPT on the real
    jobs, ignoring setups during placement (they still count in the
    resulting makespan). No approximation guarantee — degrades as setups
    grow, which is exactly what experiment E8 demonstrates. *)
