let schedule_for_guess instance ~makespan:t =
  let m = Core.Instance.num_machines instance in
  let kk = Core.Instance.num_classes instance in
  let jobs_of_class = Array.init kk (Core.Instance.jobs_of_class instance) in
  let class_total = Array.init kk (Core.Instance.class_size instance) in
  let class_max =
    Array.init kk (fun k ->
        List.fold_left
          (fun acc j -> Float.max acc instance.Core.Instance.sizes.(j))
          0.0 jobs_of_class.(k))
  in
  let class_eligible i k = Core.Instance.setup_time instance i k < infinity in
  let workload i k = if class_eligible i k then class_total.(k) else infinity in
  let setup i k = Core.Instance.setup_time instance i k in
  let max_job i k = if class_eligible i k then class_max.(k) else infinity in
  match
    Relaxed_lp.solve ~workload ~setup ~max_job ~num_machines:m ~num_classes:kk
      ~makespan:t
  with
  | None -> None
  | Some sol ->
      let assignment = Array.make (Core.Instance.num_jobs instance) (-1) in
      for k = 0 to kk - 1 do
        let best = ref (-1) and best_x = ref (-1.0) in
        for i = 0 to m - 1 do
          if sol.Relaxed_lp.xbar.(i).(k) > !best_x then begin
            best := i;
            best_x := sol.Relaxed_lp.xbar.(i).(k)
          end
        done;
        List.iter (fun j -> assignment.(j) <- !best) jobs_of_class.(k)
      done;
      Some (Common.result_of_assignment instance assignment)

let schedule ?(rel_tol = 0.02) instance =
  let lo = Core.Bounds.lower_bound instance in
  let hi = Core.Bounds.naive_upper_bound instance in
  if hi = infinity then invalid_arg "Naive_rounding: job eligible nowhere";
  match
    Core.Binary_search.min_feasible ~lo ~hi ~rel_tol (fun t ->
        schedule_for_guess instance ~makespan:t)
  with
  | Some (_, result) -> result
  | None -> assert false
