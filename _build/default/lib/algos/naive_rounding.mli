(** Ablation comparator for the Section 3.3 roundings: round the
    LP-RelaxedRA solution {e without} the pseudo-forest machinery by
    simply assigning every class entirely to its largest-fraction machine.

    This destroys the per-machine "one fractional class" structure of
    Lemma 3.8, so no constant factor holds — a machine can be the argmax
    of many classes at once. The ablation experiment A2 measures how much
    the proper rounding buys. *)

val schedule_for_guess :
  Core.Instance.t -> makespan:float -> Common.result option
(** Same LP and probe semantics as {!Ra_class_uniform.schedule_for_guess},
    but with argmax rounding instead of Lemma 3.8. Requires class-uniform
    restrictions. *)

val schedule : ?rel_tol:float -> Core.Instance.t -> Common.result
(** Dual-approximation driver around the naive probe. *)
