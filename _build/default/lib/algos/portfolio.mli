(** Best-of portfolio: run every algorithm that applies to the instance's
    environment and keep the best schedule.

    The paper's algorithms have incomparable strengths — greedy wins on
    easy average cases, Lemma 2.1 under setup dominance, the LP roundings
    carry the guarantees — so the portfolio inherits the best guarantee
    among its members {e and} the best typical case, at the cost of
    running them all; the winner gets a final {!Local_search} polish
    (which can only improve it). This is the entry point a downstream
    user should reach for first. *)

type report = {
  best : Common.result;
  winner : string;  (** name of the winning algorithm *)
  all : (string * float) list;  (** every attempted algorithm's makespan *)
}

val run :
  ?seed:int ->
  ?eps:float ->
  ?include_exact:bool ->
  Core.Instance.t ->
  report
(** [seed] feeds the randomized rounding (default 1); [eps] the PTAS
    (default 0.5). [include_exact] (default false) adds branch and bound
    with a modest node budget — the incumbent it returns is valid even
    when optimality is not proven. Algorithms whose preconditions fail are
    skipped silently. Raises [Invalid_argument] if some job is eligible
    nowhere (no algorithm can help then). *)
