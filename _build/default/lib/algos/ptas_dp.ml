let speeds_of instance =
  match instance.Core.Instance.env with
  | Core.Instance.Identical ->
      Array.make (Core.Instance.num_machines instance) 1.0
  | Core.Instance.Uniform speeds -> Array.copy speeds
  | Core.Instance.Restricted _ | Core.Instance.Unrelated _ ->
      invalid_arg "Ptas_dp: requires identical or uniform machines"

(* Group jobs into item types: identical (class, size) pairs. Returns the
   types sorted by size descending and, per type, the list of job ids. *)
let item_types instance =
  let n = Core.Instance.num_jobs instance in
  let tbl = Hashtbl.create 16 in
  for j = n - 1 downto 0 do
    let key = (instance.Core.Instance.job_class.(j), instance.Core.Instance.sizes.(j)) in
    let jobs = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (j :: jobs)
  done;
  let types = Hashtbl.fold (fun (k, p) jobs acc -> (k, p, jobs) :: acc) tbl [] in
  List.sort (fun (_, p1, _) (_, p2, _) -> compare p2 p1) types

let num_item_types instance = List.length (item_types instance)

let feasible instance ~makespan:t =
  let speeds = speeds_of instance in
  let m = Array.length speeds in
  let types = Array.of_list (item_types instance) in
  let ntypes = Array.length types in
  let type_class = Array.map (fun (k, _, _) -> k) types in
  let type_size = Array.map (fun (_, p, _) -> p) types in
  let type_jobs = Array.map (fun (_, _, jobs) -> Array.of_list jobs) types in
  let counts0 = Array.map Array.length type_jobs in
  (* quick rejects *)
  let order = Array.init m (fun i -> i) in
  Array.sort (fun a b -> compare (speeds.(b), a) (speeds.(a), b)) order;
  let fastest = speeds.(order.(0)) in
  let reject = ref false in
  Array.iteri
    (fun ty p ->
      if counts0.(ty) > 0 then begin
        let setup = instance.Core.Instance.setups.(type_class.(ty)) in
        if p +. setup > t *. fastest +. 1e-9 then reject := true
      end)
    type_size;
  if !reject then None
  else begin
    (* Remaining capacity after machine position idx (suffix sums). *)
    let suffix_capacity = Array.make (m + 1) 0.0 in
    for idx = m - 1 downto 0 do
      suffix_capacity.(idx) <- suffix_capacity.(idx + 1) +. (t *. speeds.(order.(idx)))
    done;
    let total_size counts =
      let s = ref 0.0 in
      Array.iteri (fun ty c -> s := !s +. (float_of_int c *. type_size.(ty))) counts;
      !s
    in
    let failed = Hashtbl.create 4096 in
    (* Enumerate the ways machine [idx] can take items from [counts]; on
       each complete choice, recurse to the next machine. Returns the
       chosen counts per machine on success. *)
    let eps = 1e-9 in
    let rec solve idx counts =
      if Array.for_all (fun c -> c = 0) counts then Some []
      else if idx = m then None
      else if total_size counts > suffix_capacity.(idx) +. eps then None
      else begin
        let key = (idx, Array.to_list counts) in
        if Hashtbl.mem failed key then None
        else begin
          let budget = t *. speeds.(order.(idx)) in
          let chosen = Array.make ntypes 0 in
          let class_used = Array.make (Core.Instance.num_classes instance) 0 in
          (* DFS over types; larger counts first to pack greedily. *)
          let rec pick ty used =
            if ty = ntypes then begin
              let remaining = Array.mapi (fun t' c -> c - chosen.(t')) counts in
              match solve (idx + 1) remaining with
              | Some rest -> Some (Array.copy chosen :: rest)
              | None -> None
            end
            else begin
              let k = type_class.(ty) in
              (* the budget is in size units (load·v_i <= t·v_i), so the
                 setup contributes its base size s_k *)
              let setup =
                if class_used.(k) > 0 then 0.0
                else instance.Core.Instance.setups.(k)
              in
              let p = type_size.(ty) in
              (* c = 0 is always allowed; c >= 1 requires the setup plus
                 c items to fit the remaining budget *)
              let max_fit =
                if budget -. used -. setup < -.eps then 0
                else if p <= 0.0 then counts.(ty)
                else
                  max 0
                    (min counts.(ty)
                       (int_of_float
                          (floor ((budget -. used -. setup +. eps) /. p))))
              in
              let rec try_count c =
                if c < 0 then None
                else begin
                  chosen.(ty) <- c;
                  if c > 0 then class_used.(k) <- class_used.(k) + 1;
                  let used' =
                    used +. (float_of_int c *. p) +. (if c > 0 then setup else 0.0)
                  in
                  let res = pick (ty + 1) used' in
                  if c > 0 then class_used.(k) <- class_used.(k) - 1;
                  chosen.(ty) <- 0;
                  match res with Some _ -> res | None -> try_count (c - 1)
                end
              in
              try_count max_fit
            end
          in
          match pick 0 0.0 with
          | Some allocation ->
              Some allocation
          | None ->
              Hashtbl.replace failed key ();
              None
        end
      end
    in
    match solve 0 (Array.copy counts0) with
    | None -> None
    | Some allocations ->
        (* allocations.(idx).(ty) = items of type ty on machine order.(idx) *)
        let assignment = Array.make (Core.Instance.num_jobs instance) (-1) in
        let cursor = Array.make ntypes 0 in
        List.iteri
          (fun idx alloc ->
            Array.iteri
              (fun ty c ->
                for _ = 1 to c do
                  assignment.(type_jobs.(ty).(cursor.(ty))) <- order.(idx);
                  cursor.(ty) <- cursor.(ty) + 1
                done)
              alloc)
          allocations;
        (* any leftover would be a bug: solve only succeeds at zero vector *)
        Array.iteri
          (fun ty c -> assert (cursor.(ty) = c))
          counts0;
        Some (Core.Schedule.make instance assignment)
  end
