(** Exact feasibility check for a makespan guess on identical/uniform
    instances, via a memoized dynamic program over multiplicity vectors.

    After the {!Simplify} pipeline, the instance has few distinct
    (class, size) pairs; jobs are interchangeable within a pair. The DP
    walks machines from fastest to slowest, enumerating for each machine
    the sub-multisets (plus implied class setups) that fit into
    [target · v_i], and memoizes the set of remaining multiplicity vectors
    already proven infeasible. This replaces the paper's group-passing
    program with the same state compression minus the hand-off machinery
    (see the substitution note in DESIGN.md); on the rounded instance it is
    exact, which preserves the PTAS guarantee. *)

val feasible : Core.Instance.t -> makespan:float -> Core.Schedule.t option
(** A schedule with [load_i <= makespan · v_i] for every machine, or [None]
    if none exists. Exponential in the number of distinct (class, size)
    pairs; intended for the small rounded instances the PTAS produces.
    Raises [Invalid_argument] on non-identical/uniform environments. *)

val num_item_types : Core.Instance.t -> int
(** Distinct (class, size) pairs — the DP's vector dimension; exposed so
    callers and tests can estimate cost beforehand. *)

val item_types : Core.Instance.t -> (int * float * int list) list
(** The underlying grouping: [(class, size, jobs)] triples sorted by size
    descending. Shared with the configuration-IP solver ({!Config_ip}). *)
