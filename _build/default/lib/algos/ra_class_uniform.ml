let guarantee = 2.0

let check_preconditions instance =
  (match instance.Core.Instance.env with
  | Core.Instance.Identical | Core.Instance.Restricted _ -> ()
  | Core.Instance.Uniform _ | Core.Instance.Unrelated _ ->
      invalid_arg
        "Ra_class_uniform: requires an identical or restricted-assignment \
         instance");
  if not (Core.Instance.restrict_class_uniform instance) then
    invalid_arg "Ra_class_uniform: class eligibility sets are not uniform"

let schedule_for_guess instance ~makespan:t =
  let m = Core.Instance.num_machines instance in
  let kk = Core.Instance.num_classes instance in
  let jobs_of_class = Array.init kk (Core.Instance.jobs_of_class instance) in
  let class_total = Array.init kk (Core.Instance.class_size instance) in
  let class_max =
    Array.init kk (fun k ->
        List.fold_left
          (fun acc j -> Float.max acc instance.Core.Instance.sizes.(j))
          0.0 jobs_of_class.(k))
  in
  (* In the class-uniform restricted environment eligibility is a property
     of (machine, class); a class is available iff its setup is finite. *)
  let class_eligible i k = Core.Instance.setup_time instance i k < infinity in
  let workload i k = if class_eligible i k then class_total.(k) else infinity in
  let setup i k = Core.Instance.setup_time instance i k in
  let max_job i k = if class_eligible i k then class_max.(k) else infinity in
  match
    Relaxed_lp.solve ~workload ~setup ~max_job ~num_machines:m
      ~num_classes:kk ~makespan:t
  with
  | None -> None
  | Some sol ->
      let split = Relaxed_lp.split_solution ~num_machines:m ~num_classes:kk sol in
      let assignment = Array.make (Core.Instance.num_jobs instance) (-1) in
      let assign_class k i =
        List.iter (fun j -> assignment.(j) <- i) jobs_of_class.(k)
      in
      List.iter (fun (k, i) -> assign_class k i) split.Relaxed_lp.integral;
      let kept = Graphs.Pseudoforest.round split.Relaxed_lp.graph in
      let kept_of_class = Array.make kk [] in
      List.iter
        (fun (k, i) -> kept_of_class.(k) <- i :: kept_of_class.(k))
        kept;
      let fractional_classes =
        List.filter
          (fun k -> not (List.mem_assoc k split.Relaxed_lp.integral))
          (List.init kk Fun.id)
      in
      List.iter
        (fun k ->
          let support =
            List.filter (fun i -> sol.Relaxed_lp.xbar.(i).(k) > 1e-7)
              (List.init m Fun.id)
          in
          if support <> [] then begin
            let kept_machines = kept_of_class.(k) in
            let cut =
              List.filter (fun i -> not (List.mem i kept_machines)) support
            in
            (* Lemma 3.8 property 2: at most one cut machine. *)
            let kept_machines =
              if kept_machines = [] then
                (* degenerate fallback: treat the largest-x̄ machine as kept *)
                [ List.fold_left
                    (fun acc i ->
                      if sol.Relaxed_lp.xbar.(i).(k)
                         > sol.Relaxed_lp.xbar.(acc).(k)
                      then i
                      else acc)
                    (List.hd support) support ]
              else kept_machines
            in
            let cut =
              List.filter (fun i -> not (List.mem i kept_machines)) cut
            in
            (* i⁺_k: an arbitrary kept machine, placed last in fill order;
               it additionally receives the cut machine's workload. *)
            let i_plus = List.hd kept_machines in
            let moved =
              List.fold_left
                (fun acc i -> acc +. sol.Relaxed_lp.xbar.(i).(k))
                0.0 cut
            in
            let slot i =
              let base = sol.Relaxed_lp.xbar.(i).(k) *. class_total.(k) in
              if i = i_plus then base +. (moved *. class_total.(k)) else base
            in
            let order =
              List.filter (fun i -> i <> i_plus) kept_machines @ [ i_plus ]
            in
            (* Greedy slot filling: stay on a machine while its reserved
               slot is not exhausted; the last machine absorbs the rest. *)
            let rec fill jobs machines used =
              match (jobs, machines) with
              | [], _ -> ()
              | j :: rest, [ i ] ->
                  assignment.(j) <- i;
                  fill rest machines (used +. instance.Core.Instance.sizes.(j))
              | j :: rest, i :: more ->
                  if used < slot i then begin
                    assignment.(j) <- i;
                    fill rest machines (used +. instance.Core.Instance.sizes.(j))
                  end
                  else fill jobs more 0.0
              | _ :: _, [] -> assert false
            in
            fill jobs_of_class.(k) order 0.0
          end)
        fractional_classes;
      Some (Common.result_of_assignment instance assignment)

let schedule ?(rel_tol = 0.02) instance =
  check_preconditions instance;
  let lo = Core.Bounds.lower_bound instance in
  let hi = Core.Bounds.naive_upper_bound instance in
  if hi = infinity then invalid_arg "Ra_class_uniform: job eligible nowhere";
  match
    Core.Binary_search.min_feasible ~lo ~hi ~rel_tol (fun t ->
        schedule_for_guess instance ~makespan:t)
  with
  | Some (_, result) -> result
  | None ->
      (* The naive upper bound is always achievable, hence LP-feasible. *)
      assert false
