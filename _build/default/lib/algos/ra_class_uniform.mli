(** The 2-approximation for restricted assignment with class-uniform
    restrictions (Section 3.3.1, Theorem 3.10).

    Preconditions: every job of a class has the same eligible machine set
    [M_k] and the same processing time on all of them (identical or
    restricted environment). For a guess [T], solve LP-RelaxedRA, round its
    vertex solution along the pseudo-forest (Lemma 3.8), move the workload
    of each class's single cut machine [i⁻_k] to a kept machine [i⁺_k],
    and greedily fill each reserved slot with the class's actual jobs —
    each machine gains at most one setup plus one job beyond its slot,
    i.e. at most [T] (Lemma 3.9), for a total of [2T]. *)

val guarantee : float
(** 2.0 *)

val schedule_for_guess : Core.Instance.t -> makespan:float -> Common.result option
(** One dual-approximation probe: a schedule of makespan [<= 2·guess], or
    [None] if LP-RelaxedRA is infeasible at the guess (certifying that no
    schedule of makespan [<= guess] exists). *)

val schedule : ?rel_tol:float -> Core.Instance.t -> Common.result
(** Full pipeline with binary search over the guess ([rel_tol] defaults to
    0.02). Raises [Invalid_argument] if the instance is not a
    restricted-assignment instance with class-uniform restrictions. *)
