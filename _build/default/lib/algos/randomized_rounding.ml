type stats = {
  lp_makespan : float;
  lp_lower : float;
  iterations : int;
  fallback_jobs : int;
  lp_probes : int;
}

let round ?(c = 3.0) rng instance (frac : Lp_um.fractional) =
  let n = Core.Instance.num_jobs instance in
  let m = Core.Instance.num_machines instance in
  let kk = Core.Instance.num_classes instance in
  let job_class = instance.Core.Instance.job_class in
  let jobs_of_class = Array.make kk [] in
  for j = n - 1 downto 0 do
    jobs_of_class.(job_class.(j)) <- j :: jobs_of_class.(job_class.(j))
  done;
  let iterations = max 1 (int_of_float (ceil (c *. log (float_of_int (max 2 n))))) in
  let assignment = Array.make n (-1) in
  let unassigned = ref n in
  for _h = 1 to iterations do
    if !unassigned > 0 then
      for i = 0 to m - 1 do
        for k = 0 to kk - 1 do
          let y = frac.Lp_um.y.(i).(k) in
          if y > 1e-12 && Workloads.Rng.float rng < y then
            (* machine i pays a setup for class k this round *)
            List.iter
              (fun j ->
                if assignment.(j) < 0 then begin
                  let p = Float.min 1.0 (frac.Lp_um.x.(i).(j) /. y) in
                  if p > 0.0 && Workloads.Rng.float rng < p then begin
                    assignment.(j) <- i;
                    decr unassigned
                  end
                end)
              jobs_of_class.(k)
        done
      done
  done;
  (* Fallback (step 3 of the paper): cheapest machine per leftover job. *)
  let fallback_jobs = ref 0 in
  for j = 0 to n - 1 do
    if assignment.(j) < 0 then begin
      incr fallback_jobs;
      let best = ref (-1) and best_p = ref infinity in
      for i = 0 to m - 1 do
        if Core.Instance.job_eligible instance i j then begin
          let p = Core.Instance.ptime instance i j in
          if p < !best_p then begin
            best := i;
            best_p := p
          end
        end
      done;
      if !best < 0 then
        invalid_arg "Randomized_rounding: job eligible nowhere";
      assignment.(j) <- !best
    end
  done;
  (* Duplicate assignments/setups (step 4) are impossible here: we record
     only the first machine per job, and [Schedule] counts each class once
     per machine. *)
  let result = Common.result_of_assignment instance assignment in
  ( result,
    {
      lp_makespan = frac.Lp_um.makespan;
      lp_lower = frac.Lp_um.makespan;
      iterations;
      fallback_jobs = !fallback_jobs;
      lp_probes = 0;
    } )

let schedule ?c ?rel_tol rng instance =
  let bound = Lp_um.lower_bound ?rel_tol instance in
  let result, stats = round ?c rng instance bound.Lp_um.solution in
  ( result,
    {
      stats with
      lp_probes = bound.Lp_um.probes;
      lp_lower = bound.Lp_um.lower;
    } )
