(** Randomized rounding for unrelated machines (Section 3.1, Theorem 3.3).

    Starting from an optimal fractional solution of the ILP-UM relaxation
    at guess [T], run [⌈c·ln n⌉] rounds: set up class [k] on machine [i]
    with probability [y*_ik]; under a setup, assign each job [j] of the
    class with probability [x*_ij / y*_ik]. Jobs assigned several times
    keep their first machine; jobs never assigned fall back to
    [argmin_i p_ij]. The result is an
    [O(T (log n + log m))]-approximation with high probability, which the
    paper shows is optimal up to constants unless [NP ⊆ RP]. *)

type stats = {
  lp_makespan : float;  (** the guess [T] the fractional solution used *)
  lp_lower : float;
      (** certified lower bound on the optimum (largest LP-infeasible
          probe); equals [lp_makespan] when rounding a caller-supplied
          fractional solution *)
  iterations : int;  (** rounding rounds performed *)
  fallback_jobs : int;  (** jobs assigned by the argmin fallback *)
  lp_probes : int;  (** LP solves spent in the binary search *)
}

val round :
  ?c:float ->
  Workloads.Rng.t ->
  Core.Instance.t ->
  Lp_um.fractional ->
  Common.result * stats
(** Round a given fractional solution ([c] defaults to 3, the constant in
    the iteration count [⌈c·ln n⌉]). *)

val schedule :
  ?c:float ->
  ?rel_tol:float ->
  Workloads.Rng.t ->
  Core.Instance.t ->
  Common.result * stats
(** Full pipeline: binary-search the smallest LP-feasible guess
    ({!Lp_um.lower_bound}), then round it. *)
