type solution = { makespan : float; xbar : float array array }

let solve ~workload ~setup ~max_job ~num_machines ~num_classes ~makespan:t =
  let lp = Lp.create () in
  let xv = Array.make_matrix num_machines num_classes None in
  for i = 0 to num_machines - 1 do
    for k = 0 to num_classes - 1 do
      let p = workload i k and s = setup i k and big = max_job i k in
      (* (14) and the (16)-style filter; also require t > s so that α_ik is
         finite when the class has positive workload. *)
      if p < infinity && s +. big <= t && (p = 0.0 || t > s) then
        xv.(i).(k) <- Some (Lp.add_var ~ub:1.0 lp (Printf.sprintf "xb_%d_%d" i k))
    done
  done;
  let feasible = ref true in
  (* (12) *)
  for k = 0 to num_classes - 1 do
    let terms = ref [] in
    for i = 0 to num_machines - 1 do
      match xv.(i).(k) with
      | Some v -> terms := (1.0, v) :: !terms
      | None -> ()
    done;
    if !terms = [] then feasible := false
    else Lp.add_constraint lp !terms Lp.Eq 1.0
  done;
  if not !feasible then None
  else begin
    (* (11) *)
    for i = 0 to num_machines - 1 do
      let terms = ref [] in
      for k = 0 to num_classes - 1 do
        match xv.(i).(k) with
        | Some v ->
            let p = workload i k and s = setup i k in
            let alpha = if p <= 0.0 then 1.0 else Float.max 1.0 (p /. (t -. s)) in
            let coeff = p +. (alpha *. s) in
            if coeff > 0.0 then terms := (coeff, v) :: !terms
        | None -> ()
      done;
      if !terms <> [] then Lp.add_constraint lp !terms Lp.Le t
    done;
    match Lp.solve lp with
    | Lp.Optimal sol ->
        let xbar =
          Array.init num_machines (fun i ->
              Array.init num_classes (fun k ->
                  match xv.(i).(k) with
                  | Some v -> Float.min 1.0 (Float.max 0.0 (Lp.value sol v))
                  | None -> 0.0))
        in
        Some { makespan = t; xbar }
    | Lp.Infeasible -> None
    | Lp.Unbounded -> assert false (* all variables are boxed *)
    | Lp.Aborted -> None
  end

type split = {
  integral : (int * int) list;
  graph : Graphs.Pseudoforest.t;
}

let tol = 1e-7

let split_solution ~num_machines ~num_classes sol =
  let graph = Graphs.Pseudoforest.create ~num_classes ~num_machines in
  let integral = ref [] in
  for k = num_classes - 1 downto 0 do
    let home = ref (-1) in
    for i = 0 to num_machines - 1 do
      if sol.xbar.(i).(k) >= 1.0 -. tol then home := i
    done;
    if !home >= 0 then integral := (k, !home) :: !integral
    else
      for i = 0 to num_machines - 1 do
        if sol.xbar.(i).(k) > tol then
          Graphs.Pseudoforest.add_edge graph ~cls:k ~machine:i
      done
  done;
  { integral = !integral; graph }
