(** LP-RelaxedRA (constraints (11)–(14), plus the (16)-style filter), the
    class-granular relaxation shared by both constant-factor special cases
    (Sections 3.3.1 and 3.3.2).

    One variable [x̄_ik] per (machine, class) gives the fraction of class
    [k]'s workload processed on machine [i]:

    - [Σ_k x̄_ik (p̄_ik + α_ik s_ik) <= T] per machine, with
      [α_ik = max(1, p̄_ik / (T - s_ik))]  (11)
    - [Σ_i x̄_ik = 1] per class  (12)
    - [x̄_ik = 0] whenever [s_ik > T], [s_ik + (max job of k on i) > T], or
      [p̄_ik = ∞]  (14)/(16)

    Solutions come from the simplex and are vertices, so their fractional
    support graph is a pseudo-forest (required by {!Graphs.Pseudoforest}). *)

type solution = {
  makespan : float;  (** the guess [T] *)
  xbar : float array array;  (** [xbar.(i).(k)], clamped to [[0, 1]] *)
}

val solve :
  workload:(int -> int -> float) ->
  setup:(int -> int -> float) ->
  max_job:(int -> int -> float) ->
  num_machines:int ->
  num_classes:int ->
  makespan:float ->
  solution option
(** [workload i k] is [p̄_ik] ([infinity] if class [k] cannot run on [i]);
    [setup i k] is [s_ik]; [max_job i k] is the largest single-job
    processing time of class [k] on machine [i] (used by the filter).
    [None] = the LP is infeasible at this guess. *)

type split = {
  integral : (int * int) list;  (** [(class, machine)]: [x̄ ≈ 1] classes *)
  graph : Graphs.Pseudoforest.t;  (** support graph of fractional entries *)
}

val split_solution :
  num_machines:int -> num_classes:int -> solution -> split
(** Classify classes as integral ([x̄_ik >= 1 - tol] somewhere) or
    fractional, and build the bipartite support graph of the strictly
    fractional entries. *)
