type ctx = {
  instance : Core.Instance.t;
  eps : float;
  makespan : float;
  sg : Speed_groups.t;
  speeds : float array;
  upper_group : int array; (* machine -> g with i ∈ M_g \ M_{g+1} *)
  job_group : int array;
  fringe : bool array;
  g_min : int; (* smallest machine group (upper index) *)
  g_max : int; (* largest machine group (upper index), the paper's G *)
}

let make_ctx ~eps ~makespan instance =
  let speeds =
    match instance.Core.Instance.env with
    | Core.Instance.Identical ->
        Array.make (Core.Instance.num_machines instance) 1.0
    | Core.Instance.Uniform speeds -> Array.copy speeds
    | Core.Instance.Restricted _ | Core.Instance.Unrelated _ ->
        invalid_arg "Relaxed_schedule: requires identical or uniform machines"
  in
  let vmin = Array.fold_left Float.min infinity speeds in
  let sg = Speed_groups.create ~eps ~makespan ~vmin in
  (* a machine's two groups are consecutive; its space is accounted at the
     upper one (i ∈ M_g \ M_{g+1} exactly for the upper index) *)
  let upper_group =
    Array.map (fun v -> snd (Speed_groups.groups_of_speed sg v)) speeds
  in
  let n = Core.Instance.num_jobs instance in
  let fringe = Array.make n false in
  let job_group = Array.make n 0 in
  for j = 0 to n - 1 do
    let k = instance.Core.Instance.job_class.(j) in
    let setup = instance.Core.Instance.setups.(k) in
    let size = instance.Core.Instance.sizes.(j) in
    if setup > 0.0 && Speed_groups.is_fringe_job sg ~setup ~size then begin
      fringe.(j) <- true;
      job_group.(j) <- Speed_groups.native_group sg ~size
    end
    else if setup > 0.0 then job_group.(j) <- Speed_groups.core_group sg ~setup
    else begin
      (* zero setup: the class imposes no structure; treat as fringe *)
      fringe.(j) <- true;
      job_group.(j) <- Speed_groups.native_group sg ~size
    end
  done;
  let g_min = Array.fold_left min max_int (Array.map Fun.id upper_group) in
  let g_max = Array.fold_left max min_int (Array.map Fun.id upper_group) in
  {
    instance;
    eps;
    makespan;
    sg;
    speeds;
    upper_group;
    job_group;
    fringe;
    g_min;
    g_max;
  }

let job_group ctx j = ctx.job_group.(j)
let is_fringe ctx j = ctx.fringe.(j)

type t = { home : int option array }

let machine_in_group ctx i g =
  let v = ctx.speeds.(i) in
  Speed_groups.group_lo ctx.sg g <= v && v < Speed_groups.group_hi ctx.sg g

let of_schedule ctx schedule =
  let n = Core.Instance.num_jobs ctx.instance in
  let home = Array.make n None in
  for j = 0 to n - 1 do
    let i = Core.Schedule.machine_of schedule j in
    if machine_in_group ctx i ctx.job_group.(j) then home.(j) <- Some i
  done;
  { home }

let relaxed_loads ctx t =
  let m = Core.Instance.num_machines ctx.instance in
  let kk = Core.Instance.num_classes ctx.instance in
  let inst = ctx.instance in
  let load = Array.make m 0.0 in
  let core_setup = Array.make_matrix m kk false in
  Array.iteri
    (fun j homed ->
      match homed with
      | None -> ()
      | Some i ->
          load.(i) <- load.(i) +. Core.Instance.ptime inst i j;
          if not ctx.fringe.(j) then begin
            let k = inst.Core.Instance.job_class.(j) in
            if not core_setup.(i).(k) then begin
              core_setup.(i).(k) <- true;
              load.(i) <- load.(i) +. Core.Instance.setup_time inst i k
            end
          end)
    t.home;
  load

(* Fractional volume per group: job sizes, plus one setup size per class
   whose core group is g, that has no fringe job at all, and that has at
   least one fractional core job. *)
let fractional_weights ctx t =
  let inst = ctx.instance in
  let kk = Core.Instance.num_classes inst in
  let weights = Hashtbl.create 8 in
  let bump g w =
    Hashtbl.replace weights g (w +. Option.value ~default:0.0 (Hashtbl.find_opt weights g))
  in
  Array.iteri
    (fun j homed ->
      if homed = None then bump ctx.job_group.(j) inst.Core.Instance.sizes.(j))
    t.home;
  let class_has_fringe = Array.make kk false in
  Array.iteri
    (fun j f -> if f then class_has_fringe.(inst.Core.Instance.job_class.(j)) <- true)
    ctx.fringe;
  for k = 0 to kk - 1 do
    if (not class_has_fringe.(k)) && inst.Core.Instance.setups.(k) > 0.0 then begin
      let has_fractional_core =
        List.exists
          (fun j -> (not ctx.fringe.(j)) && t.home.(j) = None)
          (Core.Instance.jobs_of_class inst k)
      in
      if has_fractional_core then
        bump
          (Speed_groups.core_group ctx.sg ~setup:inst.Core.Instance.setups.(k))
          inst.Core.Instance.setups.(k)
    end
  done;
  weights

(* Space condition. Free space is measured in size units (A_i·v_i) because
   W_g is a volume of job sizes. *)
let space_condition_holds ctx t =
  let loads = relaxed_loads ctx t in
  let weights = fractional_weights ctx t in
  let free_at = Hashtbl.create 8 in
  Array.iteri
    (fun i g ->
      let a =
        Float.max 0.0 ((ctx.makespan *. ctx.speeds.(i)) -. (loads.(i) *. ctx.speeds.(i)))
      in
      Hashtbl.replace free_at g
        (a +. Option.value ~default:0.0 (Hashtbl.find_opt free_at g)))
    ctx.upper_group;
  let w g = Option.value ~default:0.0 (Hashtbl.find_opt weights g) in
  let a g = Option.value ~default:0.0 (Hashtbl.find_opt free_at g) in
  (* everything at group indices <= g_min - 2 is released in the first
     step; W_{G-1} and W_G must be empty *)
  let eps = 1e-6 in
  let lowest_weight_group =
    Hashtbl.fold (fun g _ acc -> min g acc) weights ctx.g_min
  in
  (* W_G = W_{G-1} = 0, and nothing may sit above the fastest group either *)
  let ok =
    ref
      (Hashtbl.fold
         (fun g wg acc -> acc && (g <= ctx.g_max - 2 || wg <= eps))
         weights true)
  in
  let r = ref 0.0 in
  for g = ctx.g_min to ctx.g_max do
    let released =
      if g = ctx.g_min then begin
        let sum = ref 0.0 in
        for g' = lowest_weight_group - 2 to g - 2 do
          sum := !sum +. w g'
        done;
        !sum
      end
      else w (g - 2)
    in
    r := Float.max 0.0 (!r +. released -. a g)
  done;
  if !r > eps then ok := false;
  !ok

let is_valid ctx t =
  let ok = ref true in
  Array.iteri
    (fun j homed ->
      match homed with
      | None -> ()
      | Some i ->
          if not (machine_in_group ctx i ctx.job_group.(j)) then ok := false)
    t.home;
  let loads = relaxed_loads ctx t in
  Array.iter
    (fun l -> if l > (ctx.makespan *. 1.000001) +. 1e-9 then ok := false)
    loads;
  !ok && space_condition_holds ctx t

(* --- Direction 2: the constructive conversion --------------------------- *)

type item = { jobs : int list; size : float (* job sizes + container setup *) }

let to_schedule ctx t =
  if not (is_valid ctx t) then
    invalid_arg "Relaxed_schedule.to_schedule: invalid relaxed schedule";
  let inst = ctx.instance in
  let n = Core.Instance.num_jobs inst in
  let kk = Core.Instance.num_classes inst in
  let assignment = Array.make n (-1) in
  Array.iteri
    (fun j homed -> match homed with Some i -> assignment.(j) <- i | None -> ())
    t.home;
  (* machine loads in size units during the greedy fill *)
  let loads = relaxed_loads ctx t in
  let load_size = Array.mapi (fun i l -> l *. ctx.speeds.(i)) loads in
  let class_has_fringe = Array.make kk false in
  Array.iteri
    (fun j f -> if f then class_has_fringe.(inst.Core.Instance.job_class.(j)) <- true)
    ctx.fringe;
  (* fractional jobs by group *)
  let by_group = Hashtbl.create 8 in
  Array.iteri
    (fun j homed ->
      if homed = None then begin
        let g = ctx.job_group.(j) in
        Hashtbl.replace by_group g
          (j :: Option.value ~default:[] (Hashtbl.find_opt by_group g))
      end)
    t.home;
  let lowest_group =
    Hashtbl.fold (fun g _ acc -> min g acc) by_group ctx.g_min
  in
  let postponed_f1 = ref [] in (* (class, jobs) to piggyback on fringe jobs *)
  let sequence = Queue.create () in
  let release jobs =
    (* partition this batch into F1 / F2 (containers) / F3 *)
    let fringe_jobs, core_jobs = List.partition (fun j -> ctx.fringe.(j)) jobs in
    let by_class = Hashtbl.create 8 in
    List.iter
      (fun j ->
        let k = inst.Core.Instance.job_class.(j) in
        Hashtbl.replace by_class k
          (j :: Option.value ~default:[] (Hashtbl.find_opt by_class k)))
      core_jobs;
    (* containers and F1 first, then fringe F3, then big core groups sorted
       by class, mirroring the proof's sequence order *)
    Hashtbl.iter
      (fun k jobs_k ->
        let total =
          List.fold_left (fun acc j -> acc +. inst.Core.Instance.sizes.(j)) 0.0 jobs_k
        in
        let s_k = inst.Core.Instance.setups.(k) in
        if s_k > 0.0 && total <= s_k /. ctx.eps then begin
          if class_has_fringe.(k) then postponed_f1 := (k, jobs_k) :: !postponed_f1
          else Queue.add { jobs = jobs_k; size = total +. s_k } sequence
        end)
      by_class;
    List.iter
      (fun j ->
        Queue.add { jobs = [ j ]; size = inst.Core.Instance.sizes.(j) } sequence)
      fringe_jobs;
    let big_core =
      Hashtbl.fold
        (fun k jobs_k acc ->
          let total =
            List.fold_left (fun acc j -> acc +. inst.Core.Instance.sizes.(j)) 0.0 jobs_k
          in
          let s_k = inst.Core.Instance.setups.(k) in
          if s_k = 0.0 || total > s_k /. ctx.eps then (k, jobs_k) :: acc else acc)
        by_class []
      |> List.sort compare
    in
    List.iter
      (fun (_, jobs_k) ->
        List.iter
          (fun j ->
            Queue.add { jobs = [ j ]; size = inst.Core.Instance.sizes.(j) } sequence)
          jobs_k)
      big_core
  in
  (* walk the machine groups slowest to fastest *)
  for g = ctx.g_min to ctx.g_max do
    let released =
      if g = ctx.g_min then
        List.concat_map
          (fun g' -> Option.value ~default:[] (Hashtbl.find_opt by_group g'))
          (List.init
             (max 0 (g - 2 - (lowest_group - 2) + 1))
             (fun idx -> lowest_group - 2 + idx))
      else Option.value ~default:[] (Hashtbl.find_opt by_group (g - 2))
    in
    release released;
    for i = 0 to Core.Instance.num_machines inst - 1 do
      if ctx.upper_group.(i) = g then begin
        let budget = ctx.makespan *. ctx.speeds.(i) in
        while (not (Queue.is_empty sequence)) && load_size.(i) <= budget do
          let item = Queue.pop sequence in
          List.iter (fun j -> assignment.(j) <- i) item.jobs;
          load_size.(i) <- load_size.(i) +. item.size
        done
      end
    done
  done;
  (* anything left fits nowhere by the space condition; place defensively
     on the fastest machine rather than fail *)
  if not (Queue.is_empty sequence) then begin
    let fastest = ref 0 in
    Array.iteri
      (fun i v -> if v > ctx.speeds.(!fastest) then fastest := i)
      ctx.speeds;
    Queue.iter
      (fun item -> List.iter (fun j -> assignment.(j) <- !fastest) item.jobs)
      sequence;
    Queue.clear sequence
  end;
  (* F1: piggyback each class's small fractional core jobs on a machine
     that hosts a fringe job of the class *)
  List.iter
    (fun (k, jobs_k) ->
      let host = ref (-1) and host_load = ref infinity in
      for j = 0 to n - 1 do
        if
          ctx.fringe.(j)
          && inst.Core.Instance.job_class.(j) = k
          && assignment.(j) >= 0
        then begin
          let i = assignment.(j) in
          if load_size.(i) < !host_load then begin
            host := i;
            host_load := load_size.(i)
          end
        end
      done;
      let i =
        if !host >= 0 then !host
        else begin
          (* no placed fringe job (all of k's fringe jobs fractional and
             swallowed elsewhere is impossible — they are in F3 — but stay
             defensive): cheapest machine *)
          let best = ref 0 in
          Array.iteri
            (fun i' l -> if l < load_size.(!best) then best := i' else ignore l)
            load_size;
          !best
        end
      in
      List.iter (fun j -> assignment.(j) <- i) jobs_k;
      load_size.(i) <-
        load_size.(i)
        +. List.fold_left (fun acc j -> acc +. inst.Core.Instance.sizes.(j)) 0.0 jobs_k)
    !postponed_f1;
  Core.Schedule.make inst assignment
