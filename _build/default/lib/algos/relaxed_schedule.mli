(** Relaxed schedules (Section 2, Lemma 2.8) — the paper's central
    technical object for the PTAS.

    In a relaxed schedule the jobs split into {e integral} jobs, assigned
    to machines of their native group (fringe jobs) or their class's core
    group (core jobs), and {e fractional} jobs, which are only accounted
    for as volume: the {e relaxed load} [L'_i] counts integral jobs plus
    setups for core classes only (fringe setups are ignored), and the
    {e space condition} demands that each group's fractional volume [W_g]
    (plus one setup per fringe-free class with fractional core jobs) fits
    into the leftover space [A_i = max(0, T·v_i - L'_i)] of machines two
    or more groups up, via the reduced accumulated load recursion
    [R_g = max(0, R_{g-1} + W_{g-2} - Σ A_i)] with
    [R_G = W_G = W_{G-1} = 0].

    Lemma 2.8: a makespan-[T] schedule induces a valid relaxed schedule,
    and a valid relaxed schedule converts back to a real schedule of
    makespan [(1+O(ε))·T]. {!to_schedule} implements the proof's
    construction: per-group release of fractional jobs, the
    F1/F2/F3 partition (piggyback on a fringe job / setup container /
    direct greedy), and the small-item greedy sequence fill.

    This module operates on {e simplified} instances (the output of
    {!Simplify}) with identical or uniform machines. *)

type ctx
(** Group structure of an instance at a fixed accuracy and makespan
    guess. *)

val make_ctx : eps:float -> makespan:float -> Core.Instance.t -> ctx
(** Raises [Invalid_argument] for non-identical/uniform environments or
    out-of-range parameters. *)

val job_group : ctx -> int -> int
(** Native group (fringe job) or the class's core group (core job). *)

val is_fringe : ctx -> int -> bool
(** Fringe job: size at least [s_k/δ]. *)

type t = { home : int option array }
(** [home.(j) = Some i]: job [j] is integral on machine [i]; [None]:
    fractional. *)

val of_schedule : ctx -> Core.Schedule.t -> t
(** Direction 1 of Lemma 2.8: keep exactly the jobs sitting on a machine
    of their group; everything else becomes fractional. *)

val relaxed_loads : ctx -> t -> float array
(** [L'_i] (time units): integral processing plus setups of integral core
    classes. *)

val is_valid : ctx -> t -> bool
(** Group membership of every integral job, [L'_i <= T·v_i], and the space
    condition. *)

val to_schedule : ctx -> t -> Core.Schedule.t
(** Direction 2 of Lemma 2.8 (the constructive step). Raises
    [Invalid_argument] if the relaxed schedule is not valid. The result's
    makespan is [(1+O(ε))·T]; the tests bound it by [(1+ε)^4·T]. *)
