type t = {
  simplified : Core.Instance.t;
  target : float;
  eps : float;
  (* reconstruction data *)
  original : Core.Instance.t;
  machine_map : int array; (* simplified machine -> original machine *)
  kept_jobs : int array; (* simplified job index -> original job, for the
                            non-placeholder prefix *)
  small_jobs : int list array; (* class -> original small jobs replaced *)
  placeholder_size : float array; (* class -> ε·s_k before rounding *)
}

(* Gálvez-style rounding: t -> 2^e + ⌈(t - 2^e)/(ε·2^e)⌉·ε·2^e, e = ⌊log t⌋.
   Rounds up by a factor of at most (1+ε). *)
let round_size eps v =
  if v <= 0.0 then v
  else begin
    let e = Float.of_int (int_of_float (floor (Float.log2 v))) in
    let base = 2.0 ** e in
    let step = eps *. base in
    base +. (ceil ((v -. base) /. step) *. step)
  end

let round_speed_down eps ~vmin v =
  let k = floor (log (v /. vmin) /. log (1.0 +. eps)) in
  vmin *. ((1.0 +. eps) ** k)

let simplify ~eps ~makespan:t0 instance =
  if not (eps > 0.0 && eps <= 0.5) then
    invalid_arg "Simplify: eps must be in (0, 1/2]";
  if not (t0 > 0.0) then invalid_arg "Simplify: makespan must be positive";
  let speeds =
    match instance.Core.Instance.env with
    | Core.Instance.Identical ->
        Array.make (Core.Instance.num_machines instance) 1.0
    | Core.Instance.Uniform speeds -> Array.copy speeds
    | Core.Instance.Restricted _ | Core.Instance.Unrelated _ ->
        invalid_arg "Simplify: requires identical or uniform machines"
  in
  let n = Core.Instance.num_jobs instance in
  let kk = Core.Instance.num_classes instance in
  (* Step 1a: drop slow machines. *)
  let vmax = Array.fold_left Float.max 0.0 speeds in
  let m = Array.length speeds in
  let threshold = eps *. vmax /. float_of_int m in
  let machine_map =
    Array.of_list
      (List.filter (fun i -> speeds.(i) >= threshold) (List.init m Fun.id))
  in
  let kept_speeds = Array.map (fun i -> speeds.(i)) machine_map in
  let vmin = Array.fold_left Float.min infinity kept_speeds in
  (* Step 1b: raise tiny sizes. *)
  let floor_size = eps *. vmin *. t0 /. float_of_int (n + kk) in
  let sizes1 =
    Array.map (fun p -> Float.max p floor_size) instance.Core.Instance.sizes
  in
  let setups1 =
    Array.map (fun s -> Float.max s floor_size) instance.Core.Instance.setups
  in
  (* Step 2: placeholders for small jobs. *)
  let job_class = instance.Core.Instance.job_class in
  let small_jobs = Array.make kk [] in
  let kept = ref [] in
  for j = n - 1 downto 0 do
    let k = job_class.(j) in
    if sizes1.(j) <= eps *. setups1.(k) then
      small_jobs.(k) <- j :: small_jobs.(k)
    else kept := j :: !kept
  done;
  let kept_jobs = Array.of_list !kept in
  let placeholder_size = Array.map (fun s -> eps *. s) setups1 in
  let placeholder_count =
    Array.init kk (fun k ->
        let total =
          List.fold_left (fun acc j -> acc +. sizes1.(j)) 0.0 small_jobs.(k)
        in
        if total = 0.0 then if small_jobs.(k) = [] then 0 else 1
        else int_of_float (ceil (total /. placeholder_size.(k))))
  in
  (* Step 3: rounding. *)
  let sizes2 =
    Array.append
      (Array.map (fun j -> round_size eps sizes1.(j)) kept_jobs)
      (Array.concat
         (List.init kk (fun k ->
              Array.make placeholder_count.(k)
                (round_size eps placeholder_size.(k)))))
  in
  let class2 =
    Array.append
      (Array.map (fun j -> job_class.(j)) kept_jobs)
      (Array.concat
         (List.init kk (fun k -> Array.make placeholder_count.(k) k)))
  in
  let setups2 = Array.map (round_size eps) setups1 in
  let speeds2 = Array.map (round_speed_down eps ~vmin) kept_speeds in
  let simplified =
    Core.Instance.uniform ~speeds:speeds2 ~sizes:sizes2 ~job_class:class2
      ~setups:setups2
  in
  let target = ((1.0 +. eps) ** 5.0) *. t0 in
  {
    simplified;
    target;
    eps;
    original = instance;
    machine_map;
    kept_jobs;
    small_jobs;
    placeholder_size;
  }

let simplified t = t.simplified
let target t = t.target

let reconstruct t schedule =
  let n = Core.Instance.num_jobs t.original in
  let kk = Core.Instance.num_classes t.original in
  let assignment = Array.make n (-1) in
  let n_kept = Array.length t.kept_jobs in
  (* Kept jobs: direct mapping through the machine permutation. *)
  for sj = 0 to n_kept - 1 do
    assignment.(t.kept_jobs.(sj)) <-
      t.machine_map.(Core.Schedule.machine_of schedule sj)
  done;
  (* Placeholders reserve capacity per (machine, class); greedily pour the
     actual small jobs back in, over-packing by at most one job each. *)
  let m_orig = Core.Instance.num_machines t.original in
  let capacity = Array.make_matrix m_orig kk 0.0 in
  let n_simpl = Core.Instance.num_jobs t.simplified in
  for sj = n_kept to n_simpl - 1 do
    let k = t.simplified.Core.Instance.job_class.(sj) in
    let i = t.machine_map.(Core.Schedule.machine_of schedule sj) in
    capacity.(i).(k) <- capacity.(i).(k) +. t.placeholder_size.(k)
  done;
  for k = 0 to kk - 1 do
    if t.small_jobs.(k) <> [] then begin
      let machines =
        List.filter
          (fun i -> capacity.(i).(k) > 0.0)
          (List.init m_orig Fun.id)
      in
      let sizes = t.original.Core.Instance.sizes in
      let rec fill jobs machines used =
        match (jobs, machines) with
        | [], _ -> ()
        | j :: rest, [ i ] ->
            assignment.(j) <- i;
            fill rest machines (used +. sizes.(j))
        | j :: rest, i :: more ->
            if used < capacity.(i).(k) then begin
              assignment.(j) <- i;
              fill rest machines (used +. sizes.(j))
            end
            else fill jobs more 0.0
        | _ :: _, [] -> assert false (* placeholders reserve enough room *)
      in
      fill t.small_jobs.(k) machines 0.0
    end
  done;
  Core.Schedule.make t.original assignment
