(** The PTAS simplification pipeline for uniform machines (Section 2,
    Lemmas 2.2–2.4), parameterized by the accuracy [ε] and the current
    makespan guess [T]:

    + drop machines slower than [ε·vmax/m] (their total capacity fits on a
      fastest machine), and raise job/setup sizes below
      [ε·vmin·T/(n+K)] to that threshold  — Lemma 2.2;
    + replace each class's jobs of size [<= ε·s_k] by
      [⌈(Σ sizes)/(ε·s_k)⌉] placeholder jobs of size exactly [ε·s_k]
      — Lemma 2.3;
    + round job and setup sizes up to the grid
      [2^e + i·ε·2^e] (Gálvez et al.) and machine speeds down to powers of
      [(1+ε)·vmin] — Lemma 2.4.

    Chaining the lemmas: a schedule of makespan [T] for the original
    instance yields one of makespan [(1+ε)^5·T] for the simplified
    instance, and a schedule of makespan [T'] for the simplified instance
    converts back to one of makespan [(1+ε)·T'] for the original. *)

type t

val simplified : t -> Core.Instance.t

val target : t -> float
(** The inflated bound [(1+ε)^5·T] that the simplified instance must be
    checked against. *)

val simplify : eps:float -> makespan:float -> Core.Instance.t -> t
(** Raises [Invalid_argument] unless the environment is identical or
    uniform, [0 < eps <= 1/2] and [makespan > 0]. *)

val reconstruct : t -> Core.Schedule.t -> Core.Schedule.t
(** Map a schedule of the simplified instance back to the original
    instance: placeholders are swapped for the actual small jobs
    (over-packing each machine by at most one job per class), removed
    machines come back empty, and rounded sizes/speeds revert — total
    makespan inflation at most [(1+ε)]. *)
