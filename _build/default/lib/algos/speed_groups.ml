type t = { eps : float; delta : float; gamma : float; makespan : float; vmin : float }

let create ~eps ~makespan ~vmin =
  if not (eps > 0.0 && eps <= 0.5) then
    invalid_arg "Speed_groups.create: eps must be in (0, 1/2]";
  if not (makespan > 0.0) then
    invalid_arg "Speed_groups.create: makespan must be positive";
  if not (vmin > 0.0) then
    invalid_arg "Speed_groups.create: vmin must be positive";
  { eps; delta = eps *. eps; gamma = eps ** 3.0; makespan; vmin }

let delta t = t.delta
let gamma t = t.gamma

let group_lo t g = t.vmin /. (t.gamma ** float_of_int (g - 1))
let group_hi t g = t.vmin /. (t.gamma ** float_of_int (g + 1))

let groups_of_speed t v =
  if v < t.vmin then
    invalid_arg "Speed_groups.groups_of_speed: speed below vmin";
  (* v in group g iff v̌_g <= v < v̂_g iff g-1 <= log_{1/γ}(v/vmin) < g+1.
     With x = log_{1/γ}(v/vmin) the valid groups are g ∈ (x-1, x+1], i.e.
     two consecutive integers. Compute via floats, then verify. *)
  let x = log (v /. t.vmin) /. log (1.0 /. t.gamma) in
  let in_group g = group_lo t g <= v && v < group_hi t g in
  let candidates =
    List.filter in_group
      [
        int_of_float (floor x) - 1;
        int_of_float (floor x);
        int_of_float (floor x) + 1;
        int_of_float (floor x) + 2;
      ]
  in
  match candidates with
  | [ g1; g2 ] when g2 = g1 + 1 -> (g1, g2)
  | _ -> assert false (* overlap structure guarantees exactly two *)

let size_category t ~speed p =
  if p < t.eps *. speed *. t.makespan then `Small
  else if p <= speed *. t.makespan then `Big
  else `Huge

let is_core_job t ~setup ~size =
  t.eps *. setup <= size && size < setup /. t.delta

let is_fringe_job t ~setup ~size = size >= setup /. t.delta

let is_core_machine t ~setup ~speed =
  setup <= t.makespan *. speed && t.makespan *. speed < setup /. t.gamma

let is_fringe_machine t ~setup ~speed = t.makespan *. speed >= setup /. t.gamma

(* Smallest g in a small candidate window satisfying both inequalities. *)
let smallest_group_satisfying lo_ok hi_ok hint =
  let x = int_of_float (floor hint) in
  let rec scan g limit =
    if limit = 0 then assert false
    else if lo_ok g && hi_ok g then g
    else scan (g + 1) (limit - 1)
  in
  scan (x - 3) 8

let native_group t ~size =
  if not (size > 0.0) then invalid_arg "Speed_groups.native_group: size <= 0";
  (* smallest group containing every speed for which the size is big:
     v̌_g <= p/T and p/(ε·T) < v̂_g *)
  let lo_ok g = group_lo t g *. t.makespan <= size in
  let hi_ok g = size < t.eps *. group_hi t g *. t.makespan in
  let hint = log (size /. (t.vmin *. t.makespan)) /. log (1.0 /. t.gamma) in
  smallest_group_satisfying lo_ok hi_ok hint

let core_group t ~setup =
  if not (setup > 0.0) then invalid_arg "Speed_groups.core_group: setup <= 0";
  (* smallest group containing every possible core-machine speed of the
     class: v̌_g <= s_k/T and s_k/(γ·T) <= v̂_g *)
  let lo_ok g = group_lo t g *. t.makespan <= setup in
  let hi_ok g = setup <= t.gamma *. group_hi t g *. t.makespan in
  let hint = log (setup /. (t.vmin *. t.makespan)) /. log (1.0 /. t.gamma) in
  smallest_group_satisfying lo_ok hi_ok hint
