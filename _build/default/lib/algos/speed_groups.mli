(** Structural definitions of the Section 2 PTAS: threshold parameters,
    core/fringe jobs and machines, size categories and speed groups.

    With accuracy [ε], the paper sets [δ = ε²] and [γ = ε³] and, for a
    makespan bound [T]:

    - the {e core jobs} of class [k] are those with size
      [ε·s_k <= p < s_k/δ]; bigger jobs are {e fringe jobs};
    - the {e core machines} of class [k] satisfy [s_k <= T·v_i < s_k/γ];
      faster ones are {e fringe machines};
    - a size [p] is {e small} for speed [v] if [p < ε·v·T], {e big} if
      [ε·v·T <= p <= v·T] and {e huge} beyond;
    - {e group} [g] is the speed interval [[v̌_g, v̂_g)] with
      [v̌_g = vmin/γ^(g-1)] and [v̂_g = vmin/γ^(g+1)] — consecutive groups
      overlap so that every speed lies in exactly two groups;
    - the {e native group} of a job and the {e core group} of a class are
      the smallest groups containing {e every} speed for which the job is
      big (resp. every possible core-machine speed of the class). The
      paper states the shorthand inequalities [ε·v̌_g·T <= p < v̂_g·T]
      (resp. [v̌_g·T <= s_k < v̂_g·T]); we implement the containment
      property directly because it is what the surrounding arguments
      (e.g. Remark 2.7) actually use.

    These predicates drive the tests that validate Remarks 2.5–2.7; the
    runnable PTAS itself uses the simplification pipeline plus an exact
    solve of the rounded instance (see DESIGN.md for the substitution
    note). *)

type t

val create : eps:float -> makespan:float -> vmin:float -> t
(** Raises [Invalid_argument] unless [0 < eps <= 1/2], [makespan > 0],
    [vmin > 0]. *)

val delta : t -> float
val gamma : t -> float

val group_lo : t -> int -> float
(** [v̌_g]. *)

val group_hi : t -> int -> float
(** [v̂_g]. *)

val groups_of_speed : t -> float -> int * int
(** The two consecutive groups containing a speed. *)

val size_category : t -> speed:float -> float -> [ `Small | `Big | `Huge ]

val is_core_job : t -> setup:float -> size:float -> bool
(** [ε·s_k <= p < s_k/δ]. (Sizes below [ε·s_k] do not occur in simplified
    instances.) *)

val is_fringe_job : t -> setup:float -> size:float -> bool
(** [p >= s_k/δ]. *)

val is_core_machine : t -> setup:float -> speed:float -> bool
val is_fringe_machine : t -> setup:float -> speed:float -> bool

val native_group : t -> size:float -> int
(** Smallest group [g] with [v̌_g·T <= p] and [p < ε·v̂_g·T], i.e. the
    smallest group containing all speeds for which [p] is big. *)

val core_group : t -> setup:float -> int
(** Smallest group [g] with [v̌_g·T <= s_k] and [s_k <= γ·v̂_g·T], i.e. the
    smallest group containing all possible core-machine speeds of the
    class. *)
