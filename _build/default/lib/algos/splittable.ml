type piece = { machine : int; cls : int; fraction : float }

type t = { pieces : piece list; makespan : float; guess : float }

(* Workload of class k on machine i (time units), infinity if ineligible.
   Well defined in the class-uniform environments. *)
let workload_fn instance =
  let kk = Core.Instance.num_classes instance in
  let jobs_of_class = Array.init kk (Core.Instance.jobs_of_class instance) in
  match instance.Core.Instance.env with
  | Core.Instance.Identical | Core.Instance.Restricted _ ->
      if not (Core.Instance.restrict_class_uniform instance) then
        invalid_arg "Splittable: restrictions are not class-uniform";
      let totals = Array.init kk (Core.Instance.class_size instance) in
      fun i k ->
        if Core.Instance.setup_time instance i k < infinity then totals.(k)
        else infinity
  | Core.Instance.Unrelated _ ->
      if not (Core.Instance.class_uniform_ptimes instance) then
        invalid_arg "Splittable: processing times are not class-uniform";
      fun i k -> (
        match jobs_of_class.(k) with
        | [] -> 0.0
        | j :: _ ->
            let p = Core.Instance.ptime instance i j in
            if p < infinity && Core.Instance.setup_time instance i k < infinity
            then float_of_int (List.length jobs_of_class.(k)) *. p
            else infinity)
  | Core.Instance.Uniform _ ->
      invalid_arg
        "Splittable: uniform machines need per-speed workloads; use the \
         identical environment or class-uniform processing times"

let loads instance pieces =
  let m = Core.Instance.num_machines instance in
  let kk = Core.Instance.num_classes instance in
  let workload = workload_fn instance in
  let load = Array.make m 0.0 in
  let has_setup = Array.make_matrix m kk false in
  List.iter
    (fun { machine; cls; fraction } ->
      load.(machine) <- load.(machine) +. (fraction *. workload machine cls);
      if not has_setup.(machine).(cls) then begin
        has_setup.(machine).(cls) <- true;
        load.(machine) <-
          load.(machine) +. Core.Instance.setup_time instance machine cls
      end)
    pieces;
  load

let is_valid instance pieces =
  let kk = Core.Instance.num_classes instance in
  let sums = Array.make kk 0.0 in
  let ok = ref true in
  List.iter
    (fun { machine; cls; fraction } ->
      if fraction <= 0.0 || fraction > 1.0 +. 1e-9 then ok := false;
      if
        cls < 0 || cls >= kk || machine < 0
        || machine >= Core.Instance.num_machines instance
      then ok := false
      else begin
        if Core.Instance.setup_time instance machine cls = infinity then
          ok := false;
        sums.(cls) <- sums.(cls) +. fraction
      end)
    pieces;
  for k = 0 to kk - 1 do
    if Core.Instance.jobs_of_class instance k <> [] then
      if Float.abs (sums.(k) -. 1.0) > 1e-6 then ok := false
  done;
  !ok

let schedule_for_guess instance ~makespan:t =
  let m = Core.Instance.num_machines instance in
  let kk = Core.Instance.num_classes instance in
  let workload = workload_fn instance in
  let setup i k = Core.Instance.setup_time instance i k in
  (* splittable pieces have no single-job granularity, so the (16)-style
     filter reduces to "the setup alone must fit" *)
  let max_job _ _ = 0.0 in
  match
    Relaxed_lp.solve ~workload ~setup ~max_job ~num_machines:m ~num_classes:kk
      ~makespan:t
  with
  | None -> None
  | Some sol ->
      let split = Relaxed_lp.split_solution ~num_machines:m ~num_classes:kk sol in
      let pieces = ref [] in
      List.iter
        (fun (k, i) ->
          if Core.Instance.jobs_of_class instance k <> [] then
            pieces := { machine = i; cls = k; fraction = 1.0 } :: !pieces)
        split.Relaxed_lp.integral;
      let kept = Graphs.Pseudoforest.round split.Relaxed_lp.graph in
      let kept_of_class = Array.make kk [] in
      List.iter (fun (k, i) -> kept_of_class.(k) <- i :: kept_of_class.(k)) kept;
      for k = 0 to kk - 1 do
        if
          (not (List.mem_assoc k split.Relaxed_lp.integral))
          && Core.Instance.jobs_of_class instance k <> []
        then begin
          let support =
            List.filter
              (fun i -> sol.Relaxed_lp.xbar.(i).(k) > 1e-7)
              (List.init m Fun.id)
          in
          if support <> [] then begin
            let kept_machines =
              if kept_of_class.(k) = [] then
                [ List.fold_left
                    (fun acc i ->
                      if sol.Relaxed_lp.xbar.(i).(k)
                         > sol.Relaxed_lp.xbar.(acc).(k)
                      then i
                      else acc)
                    (List.hd support) support ]
              else kept_of_class.(k)
            in
            let cut =
              List.filter (fun i -> not (List.mem i kept_machines)) support
            in
            let moved =
              List.fold_left
                (fun acc i -> acc +. sol.Relaxed_lp.xbar.(i).(k))
                0.0 cut
            in
            (* the cut fraction (at most one machine, Lemma 3.8) moves to an
               arbitrary kept machine i+_k *)
            let i_plus = List.hd kept_machines in
            List.iter
              (fun i ->
                let fraction =
                  sol.Relaxed_lp.xbar.(i).(k)
                  +. if i = i_plus then moved else 0.0
                in
                if fraction > 1e-9 then
                  pieces := { machine = i; cls = k; fraction } :: !pieces)
              kept_machines
          end
        end
      done;
      let pieces = !pieces in
      let load = loads instance pieces in
      Some
        {
          pieces;
          makespan = Array.fold_left Float.max 0.0 load;
          guess = t;
        }

let schedule ?(rel_tol = 0.02) instance =
  (* force the environment check before searching *)
  let (_ : int -> int -> float) = workload_fn instance in
  let lo = Core.Bounds.lower_bound instance in
  let hi = Core.Bounds.naive_upper_bound instance in
  if hi = infinity then invalid_arg "Splittable: job eligible nowhere";
  match
    Core.Binary_search.min_feasible ~lo ~hi ~rel_tol (fun t ->
        schedule_for_guess instance ~makespan:t)
  with
  | Some (_, result) -> result
  | None -> assert false
