(** The splittable-class model (Correa et al. [5], the source of
    LP-RelaxedRA).

    Section 3.3's LP "is identical to the LP given in [5]", where a class's
    workload may be divided arbitrarily across machines and every machine
    processing a positive fraction pays the class's full setup. This module
    solves that model directly: binary-search the guess, take a vertex of
    LP-RelaxedRA, round it along the pseudo-forest (Lemma 3.8) and emit the
    resulting {e fractional} schedule — no job granularity is lost, so the
    per-machine bound of Lemma 3.9 applies verbatim and the result is a
    2-approximation for the splittable problem.

    Comparing this to {!Ra_class_uniform}/{!Um_class_uniform} isolates what
    the greedy slot-filling step pays for indivisible jobs. *)

type piece = {
  machine : int;
  cls : int;
  fraction : float;  (** share of the class's workload, in (0, 1] *)
}

type t = {
  pieces : piece list;
  makespan : float;
  guess : float;  (** the accepted dual-approximation guess [T] *)
}

val loads : Core.Instance.t -> piece list -> float array
(** Per-machine load of a fractional schedule: workload shares plus one
    setup per (machine, class) with positive fraction. *)

val is_valid : Core.Instance.t -> piece list -> bool
(** Fractions positive, every class's fractions sum to 1, and every piece
    sits on a machine where the class is eligible. *)

val schedule_for_guess : Core.Instance.t -> makespan:float -> t option
(** One probe: a fractional schedule of makespan [<= 2·guess], or [None]
    if LP-RelaxedRA is infeasible at the guess. *)

val schedule : ?rel_tol:float -> Core.Instance.t -> t
(** Full pipeline. Supports identical machines, restricted assignment with
    class-uniform restrictions, and unrelated machines with class-uniform
    processing times (the environments where "the class's workload on
    machine i" is well defined); raises [Invalid_argument] otherwise. *)
