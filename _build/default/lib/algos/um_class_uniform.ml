let guarantee = 3.0

let schedule_for_guess instance ~makespan:t =
  let m = Core.Instance.num_machines instance in
  let kk = Core.Instance.num_classes instance in
  let jobs_of_class = Array.init kk (Core.Instance.jobs_of_class instance) in
  let class_count = Array.map List.length jobs_of_class in
  (* Per-machine, per-class job time (class-uniform by precondition). *)
  let ptime_ik i k =
    match jobs_of_class.(k) with
    | [] -> 0.0
    | j :: _ -> Core.Instance.ptime instance i j
  in
  let class_eligible i k =
    ptime_ik i k < infinity && Core.Instance.setup_time instance i k < infinity
  in
  let workload i k =
    if class_eligible i k then float_of_int class_count.(k) *. ptime_ik i k
    else infinity
  in
  let setup i k = Core.Instance.setup_time instance i k in
  let max_job i k = if class_eligible i k then ptime_ik i k else infinity in
  match
    Relaxed_lp.solve ~workload ~setup ~max_job ~num_machines:m
      ~num_classes:kk ~makespan:t
  with
  | None -> None
  | Some sol ->
      let split = Relaxed_lp.split_solution ~num_machines:m ~num_classes:kk sol in
      let assignment = Array.make (Core.Instance.num_jobs instance) (-1) in
      let assign_class k i =
        List.iter (fun j -> assignment.(j) <- i) jobs_of_class.(k)
      in
      List.iter (fun (k, i) -> assign_class k i) split.Relaxed_lp.integral;
      let kept = Graphs.Pseudoforest.round split.Relaxed_lp.graph in
      let kept_of_class = Array.make kk [] in
      List.iter (fun (k, i) -> kept_of_class.(k) <- i :: kept_of_class.(k)) kept;
      let fractional_classes =
        List.filter
          (fun k -> not (List.mem_assoc k split.Relaxed_lp.integral))
          (List.init kk Fun.id)
      in
      List.iter
        (fun k ->
          let support =
            List.filter (fun i -> sol.Relaxed_lp.xbar.(i).(k) > 1e-7)
              (List.init m Fun.id)
          in
          if support <> [] then begin
            let kept_machines = kept_of_class.(k) in
            let kept_machines =
              if kept_machines = [] then
                [ List.fold_left
                    (fun acc i ->
                      if sol.Relaxed_lp.xbar.(i).(k)
                         > sol.Relaxed_lp.xbar.(acc).(k)
                      then i
                      else acc)
                    (List.hd support) support ]
              else kept_machines
            in
            let cut =
              List.filter (fun i -> not (List.mem i kept_machines)) support
            in
            (* ½-threshold rule on the (single, by Lemma 3.8) cut machine *)
            let big_cut =
              List.find_opt (fun i -> sol.Relaxed_lp.xbar.(i).(k) > 0.5) cut
            in
            match big_cut with
            | Some i_minus -> assign_class k i_minus
            | None ->
                let scale = if cut = [] then 1.0 else 2.0 in
                let slot i = scale *. sol.Relaxed_lp.xbar.(i).(k) *. workload i k in
                let rec fill jobs machines used =
                  match (jobs, machines) with
                  | [], _ -> ()
                  | j :: rest, [ i ] ->
                      assignment.(j) <- i;
                      fill rest machines (used +. ptime_ik i k)
                  | j :: rest, i :: more ->
                      if used < slot i then begin
                        assignment.(j) <- i;
                        fill rest machines (used +. ptime_ik i k)
                      end
                      else fill jobs more 0.0
                  | _ :: _, [] -> assert false
                in
                fill jobs_of_class.(k) kept_machines 0.0
          end)
        fractional_classes;
      Some (Common.result_of_assignment instance assignment)

let schedule ?(rel_tol = 0.02) instance =
  if not (Core.Instance.class_uniform_ptimes instance) then
    invalid_arg "Um_class_uniform: processing times are not class-uniform";
  let lo = Core.Bounds.lower_bound instance in
  let hi = Core.Bounds.naive_upper_bound instance in
  if hi = infinity then invalid_arg "Um_class_uniform: job eligible nowhere";
  match
    Core.Binary_search.min_feasible ~lo ~hi ~rel_tol (fun t ->
        schedule_for_guess instance ~makespan:t)
  with
  | Some (_, result) -> result
  | None -> assert false
