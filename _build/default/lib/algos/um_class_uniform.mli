(** The 3-approximation for unrelated machines with class-uniform
    processing times (Section 3.3.2, Theorem 3.11).

    Precondition: on every machine, all jobs of a class take the same time.
    Same pipeline as {!Ra_class_uniform} with two changes: the LP filter is
    constraint (16) ([x̄_ik = 0] if [s_ik + p_ik > T]), and a cut machine
    [i⁻_k] is handled by the ½-threshold rule — if [x̄ > ½] the whole class
    moves onto [i⁻_k] (cost [<= 2T]); otherwise its fraction is
    redistributed by doubling the kept fractions. Greedy filling then adds
    at most one setup plus one job, [<= T] by (16), per machine: [3T]
    total. The paper also notes a matching lower bound of 2 (unless P=NP). *)

val guarantee : float
(** 3.0 *)

val schedule_for_guess : Core.Instance.t -> makespan:float -> Common.result option
(** One dual-approximation probe: a schedule of makespan [<= 3·guess] or
    [None] (LP infeasible at the guess). *)

val schedule : ?rel_tol:float -> Core.Instance.t -> Common.result
(** Full pipeline with binary search. Raises [Invalid_argument] if
    processing times are not class-uniform. *)
