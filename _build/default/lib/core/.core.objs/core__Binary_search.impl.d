lib/core/binary_search.ml: Float
