lib/core/binary_search.mli:
