lib/core/bounds.ml: Array Float Instance List
