lib/core/instance.ml: Array Format List Option Printf
