lib/core/schedule.ml: Array Float Format Instance Printf
