lib/core/schedule_io.ml: Array Buffer Fun List Printf Schedule String
