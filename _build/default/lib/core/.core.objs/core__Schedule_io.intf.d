lib/core/schedule_io.mli: Instance Schedule
