lib/core/timeline.ml: Array Buffer Bytes Float Format Hashtbl Instance List Option Printf Schedule String
