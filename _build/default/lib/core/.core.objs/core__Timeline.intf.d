lib/core/timeline.mli: Format Instance Schedule
