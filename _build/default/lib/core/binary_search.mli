(** Dual-approximation driver (Hochbaum–Shmoys framework).

    Nearly every algorithm in the paper is phrased as: given a makespan
    guess [T], either build a schedule of makespan [≤ α·T] or certify that
    no schedule of makespan [T] exists. Binary search over [T] then yields
    an [α(1+tol)]-approximation. This module provides that search. *)

val min_feasible :
  lo:float ->
  hi:float ->
  rel_tol:float ->
  (float -> 'a option) ->
  (float * 'a) option
(** [min_feasible ~lo ~hi ~rel_tol probe] assumes [probe] is monotone:
    if [probe t = Some _] and [t' >= t] then [probe t' = Some _]. It
    returns [Some (t, w)] where [t] is within a factor [1 + rel_tol] of the
    smallest feasible guess in [[lo, hi]] and [w = probe t]-witness, or
    [None] if even [hi] is infeasible. The witness returned is the one
    produced at the final (smallest successful) probe.

    Raises [Invalid_argument] if [lo < 0], [hi < lo] or [rel_tol <= 0]. *)

val probes : lo:float -> hi:float -> rel_tol:float -> int
(** Number of probe evaluations [min_feasible] performs in the worst case
    (useful for tests and cost estimates). *)
