let min_cost_of_job t j =
  let k = t.Instance.job_class.(j) in
  let best = ref infinity in
  for i = 0 to Instance.num_machines t - 1 do
    let c = Instance.ptime t i j +. Instance.setup_time t i k in
    if c < !best then best := c
  done;
  !best

let job_bound t =
  let best = ref 0.0 in
  for j = 0 to Instance.num_jobs t - 1 do
    let c = min_cost_of_job t j in
    if c > !best then best := c
  done;
  !best

let volume_bound t =
  let m = Instance.num_machines t in
  match t.Instance.env with
  | Instance.Identical | Instance.Uniform _ ->
      let speed_sum = ref 0.0 in
      for i = 0 to m - 1 do
        speed_sum := !speed_sum +. Instance.speed t i
      done;
      let setup_sum = Array.fold_left ( +. ) 0.0 t.Instance.setups in
      (Instance.total_size t +. setup_sum) /. !speed_sum
  | Instance.Restricted _ | Instance.Unrelated _ ->
      let work = ref 0.0 in
      for j = 0 to Instance.num_jobs t - 1 do
        let best = ref infinity in
        for i = 0 to m - 1 do
          let p = Instance.ptime t i j in
          if p < !best then best := p
        done;
        work := !work +. !best
      done;
      for k = 0 to Instance.num_classes t - 1 do
        if Instance.jobs_of_class t k <> [] then begin
          let best = ref infinity in
          for i = 0 to m - 1 do
            let s = Instance.setup_time t i k in
            if s < !best then best := s
          done;
          work := !work +. !best
        end
      done;
      !work /. float_of_int m

let class_bound t =
  let m = Instance.num_machines t in
  let best = ref 0.0 in
  (match t.Instance.env with
  | Instance.Identical | Instance.Uniform _ ->
      let speeds = Array.init m (Instance.speed t) in
      Array.sort (fun a b -> compare b a) speeds;
      let prefix = Array.make (m + 1) 0.0 in
      for q = 1 to m do
        prefix.(q) <- prefix.(q - 1) +. speeds.(q - 1)
      done;
      for k = 0 to Instance.num_classes t - 1 do
        if Instance.jobs_of_class t k <> [] then begin
          let volume = Instance.class_size t k in
          let setup = t.Instance.setups.(k) in
          let bound_k = ref infinity in
          for q = 1 to m do
            let b = ((float_of_int q *. setup) +. volume) /. prefix.(q) in
            if b < !bound_k then bound_k := b
          done;
          if !bound_k > !best then best := !bound_k
        end
      done
  | Instance.Restricted _ | Instance.Unrelated _ ->
      for k = 0 to Instance.num_classes t - 1 do
        let jobs = Instance.jobs_of_class t k in
        if jobs <> [] then begin
          let min_setup = ref infinity in
          for i = 0 to m - 1 do
            let s = Instance.setup_time t i k in
            if s < !min_setup then min_setup := s
          done;
          let min_work =
            List.fold_left
              (fun acc j ->
                let bp = ref infinity in
                for i = 0 to m - 1 do
                  let p = Instance.ptime t i j in
                  if p < !bp then bp := p
                done;
                acc +. !bp)
              0.0 jobs
          in
          let b = !min_setup +. (min_work /. float_of_int m) in
          if b > !best then best := b
        end
      done);
  !best

let lower_bound t =
  Float.max (class_bound t) (Float.max (job_bound t) (volume_bound t))

let naive_upper_bound t =
  let sum = ref 0.0 in
  for j = 0 to Instance.num_jobs t - 1 do
    sum := !sum +. min_cost_of_job t j
  done;
  !sum
