(** Combinatorial lower and upper bounds on the optimal makespan.

    These bounds bootstrap the dual-approximation binary search and serve as
    conservative baselines when the exact optimum is out of reach. All
    bounds are valid for every machine environment. *)

val job_bound : Instance.t -> float
(** [max_j min_i (p_ij + s_{i,k_j})]: every job must run somewhere, behind
    its class's setup. *)

val volume_bound : Instance.t -> float
(** Work-volume bound. For identical/uniform machines:
    [(Σ_j p_j + Σ_k s_k) / Σ_i v_i] (every class present in a schedule pays
    at least one setup). For restricted/unrelated machines:
    [(Σ_j min_i p_ij + Σ_k min_i s_ik) / m]. *)

val class_bound : Instance.t -> float
(** Per-class spread bound. If class [k] runs on a machine set [M'], then
    [Σ_{i∈M'} v_i·load_i >= |M'|·s_k + p̄_k], so some machine has load at
    least [(q·s_k + p̄_k) / (Σ of the q largest speeds)], minimized over
    [q]. For restricted/unrelated machines the bound degrades to
    [min_i s_ik + (Σ_{j∈k} min_i p_ij)/m]. The result is the maximum over
    classes — often much stronger than {!volume_bound} when one class
    dominates. *)

val lower_bound : Instance.t -> float
(** Best of the above bounds. *)

val naive_upper_bound : Instance.t -> float
(** [Σ_j min_i (p_ij + s_{i,k_j})]: the makespan of placing every job on
    its individually cheapest machine is at most this sum, hence the optimal
    makespan is too. Infinite iff some job is nowhere eligible. *)
