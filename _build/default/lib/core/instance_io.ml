exception Parse_error of string

let float_to_text x = if x = infinity then "inf" else Printf.sprintf "%.17g" x

let row_to_text row = String.concat " " (Array.to_list (Array.map float_to_text row))

let to_string (t : Instance.t) =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let env_name =
    match t.Instance.env with
    | Instance.Identical -> "identical"
    | Instance.Uniform _ -> "uniform"
    | Instance.Restricted _ -> "restricted"
    | Instance.Unrelated _ -> "unrelated"
  in
  add "# setup-scheduling instance";
  add "env %s" env_name;
  add "machines %d" (Instance.num_machines t);
  add "classes %d" (Instance.num_classes t);
  add "setups %s" (row_to_text t.Instance.setups);
  add "jobs %d" (Instance.num_jobs t);
  (match t.Instance.env with
  | Instance.Unrelated _ -> ()
  | Instance.Identical | Instance.Uniform _ | Instance.Restricted _ ->
      add "sizes %s" (row_to_text t.Instance.sizes));
  add "job_class %s"
    (String.concat " " (Array.to_list (Array.map string_of_int t.Instance.job_class)));
  (match t.Instance.env with
  | Instance.Identical -> ()
  | Instance.Uniform speeds -> add "speeds %s" (row_to_text speeds)
  | Instance.Restricted eligible ->
      add "eligible";
      Array.iter
        (fun row ->
          add "%s"
            (String.concat " "
               (Array.to_list (Array.map (fun b -> if b then "1" else "0") row))))
        eligible
  | Instance.Unrelated p ->
      add "ptimes";
      Array.iter (fun row -> add "%s" (row_to_text row)) p;
      (match t.Instance.setup_matrix with
      | None -> ()
      | Some s ->
          add "setup_matrix";
          Array.iter (fun row -> add "%s" (row_to_text row)) s));
  Buffer.contents buf

(* Parsing ------------------------------------------------------------- *)

type line = { num : int; words : string list }

let fail line fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" line s))) fmt

let tokenize text =
  String.split_on_char '\n' text
  |> List.mapi (fun idx l -> (idx + 1, l))
  |> List.filter_map (fun (num, l) ->
         let l =
           match String.index_opt l '#' with
           | Some i -> String.sub l 0 i
           | None -> l
         in
         let words =
           String.split_on_char ' ' l
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun w -> w <> "" && w <> "\r")
         in
         if words = [] then None else Some { num; words })

let parse_float line w =
  match String.lowercase_ascii w with
  | "inf" | "+inf" | "infinity" -> infinity
  | _ -> (
      match float_of_string_opt w with
      | Some x -> x
      | None -> fail line "expected a number, got %S" w)

let parse_int line w =
  match int_of_string_opt w with
  | Some x -> x
  | None -> fail line "expected an integer, got %S" w

let parse_float_row expected line =
  let row = Array.of_list (List.map (parse_float line.num) line.words) in
  if Array.length row <> expected then
    fail line.num "expected %d values, got %d" expected (Array.length row);
  row

let of_string text =
  let lines = tokenize text in
  let env = ref None in
  let machines = ref None in
  let classes = ref None in
  let jobs = ref None in
  let setups = ref None in
  let sizes = ref None in
  let job_class = ref None in
  let speeds = ref None in
  let eligible = ref None in
  let ptimes = ref None in
  let setup_matrix = ref None in
  let need_int name r line rest =
    match rest with
    | [ w ] -> r := Some (parse_int line.num w)
    | _ -> fail line.num "%s expects exactly one integer" name
  in
  let get name r =
    match !r with
    | Some v -> v
    | None -> raise (Parse_error (Printf.sprintf "missing %s declaration" name))
  in
  let take_rows count remaining what =
    let rec go count remaining acc =
      if count = 0 then (List.rev acc, remaining)
      else
        match remaining with
        | [] -> raise (Parse_error (Printf.sprintf "unexpected end of input in %s block" what))
        | line :: rest -> go (count - 1) rest (line :: acc)
    in
    go count remaining []
  in
  let rec consume = function
    | [] -> ()
    | line :: rest -> (
        match line.words with
        | "env" :: [ e ] ->
            (match e with
            | "identical" | "uniform" | "restricted" | "unrelated" -> env := Some e
            | _ -> fail line.num "unknown env %S" e);
            consume rest
        | "machines" :: r ->
            need_int "machines" machines line r;
            consume rest
        | "classes" :: r ->
            need_int "classes" classes line r;
            consume rest
        | "jobs" :: r ->
            need_int "jobs" jobs line r;
            consume rest
        | "setups" :: r ->
            setups := Some (parse_float_row (get "classes" classes) { line with words = r });
            consume rest
        | "sizes" :: r ->
            sizes := Some (parse_float_row (get "jobs" jobs) { line with words = r });
            consume rest
        | "job_class" :: r ->
            let n = get "jobs" jobs in
            if List.length r <> n then fail line.num "job_class expects %d entries" n;
            job_class := Some (Array.of_list (List.map (parse_int line.num) r));
            consume rest
        | "speeds" :: r ->
            speeds := Some (parse_float_row (get "machines" machines) { line with words = r });
            consume rest
        | [ "eligible" ] ->
            let m = get "machines" machines and n = get "jobs" jobs in
            let rows, rest = take_rows m rest "eligible" in
            let parse_row l =
              if List.length l.words <> n then fail l.num "eligible rows need %d flags" n;
              Array.of_list
                (List.map
                   (fun w ->
                     match w with
                     | "0" -> false
                     | "1" -> true
                     | _ -> fail l.num "eligible flags must be 0 or 1, got %S" w)
                   l.words)
            in
            eligible := Some (Array.of_list (List.map parse_row rows));
            consume rest
        | [ "ptimes" ] ->
            let m = get "machines" machines and n = get "jobs" jobs in
            let rows, rest = take_rows m rest "ptimes" in
            ptimes := Some (Array.of_list (List.map (parse_float_row n) rows));
            consume rest
        | [ "setup_matrix" ] ->
            let m = get "machines" machines and kk = get "classes" classes in
            let rows, rest = take_rows m rest "setup_matrix" in
            setup_matrix := Some (Array.of_list (List.map (parse_float_row kk) rows));
            consume rest
        | w :: _ -> fail line.num "unknown keyword %S" w
        | [] -> consume rest)
  in
  consume lines;
  let env = get "env" env in
  let setups = get "setups" setups in
  let job_class = get "job_class" job_class in
  try
    match env with
    | "identical" ->
        Instance.identical ~num_machines:(get "machines" machines)
          ~sizes:(get "sizes" sizes) ~job_class ~setups
    | "uniform" ->
        Instance.uniform ~speeds:(get "speeds" speeds) ~sizes:(get "sizes" sizes)
          ~job_class ~setups
    | "restricted" ->
        Instance.restricted ~eligible:(get "eligible" eligible)
          ~sizes:(get "sizes" sizes) ~job_class ~setups
    | "unrelated" ->
        Instance.unrelated ?setup_matrix:!setup_matrix ~p:(get "ptimes" ptimes)
          ~job_class ~setups ()
    | _ -> assert false
  with Invalid_argument msg -> raise (Parse_error msg)

let to_file path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
