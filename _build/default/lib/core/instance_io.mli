(** Plain-text serialization of instances.

    The format is line-oriented; [#] starts a comment. Keywords:

    {v
    env identical|uniform|restricted|unrelated
    machines <m>            # required for identical/unrelated
    classes <K>
    setups s_0 ... s_{K-1}
    jobs <n>
    sizes p_0 ... p_{n-1}          # not used by env unrelated
    job_class k_0 ... k_{n-1}
    speeds v_0 ... v_{m-1}         # env uniform only
    eligible                       # env restricted: m lines of n 0/1 flags
    ptimes                         # env unrelated: m lines of n floats
    setup_matrix                   # env unrelated, optional: m lines of K floats
    v}

    [inf] (case-insensitive) denotes infinity in [ptimes]/[setup_matrix]. *)

exception Parse_error of string
(** Raised with a human-readable message (including a line number) when the
    input is malformed. *)

val to_string : Instance.t -> string
val of_string : string -> Instance.t

val to_file : string -> Instance.t -> unit
val of_file : string -> Instance.t
