type t = { instance : Instance.t; assignment : int array }

let check_range instance assignment =
  let m = Instance.num_machines instance in
  if Array.length assignment <> Instance.num_jobs instance then
    invalid_arg "Schedule: assignment length must equal number of jobs";
  Array.iteri
    (fun j i ->
      if i < 0 || i >= m then
        invalid_arg
          (Printf.sprintf "Schedule: job %d assigned to machine %d (m = %d)" j
             i m))
    assignment

let unsafe_make instance assignment =
  check_range instance assignment;
  { instance; assignment = Array.copy assignment }

let make instance assignment =
  check_range instance assignment;
  Array.iteri
    (fun j i ->
      if not (Instance.job_eligible instance i j) then
        invalid_arg
          (Printf.sprintf "Schedule: job %d is not eligible on machine %d" j i))
    assignment;
  { instance; assignment = Array.copy assignment }

let assignment t = Array.copy t.assignment
let machine_of t j = t.assignment.(j)

let jobs_of_machine t i =
  let acc = ref [] in
  for j = Array.length t.assignment - 1 downto 0 do
    if t.assignment.(j) = i then acc := j :: !acc
  done;
  !acc

let classes_of_machine t i =
  let inst = t.instance in
  let present = Array.make (Instance.num_classes inst) false in
  Array.iteri
    (fun j mach -> if mach = i then present.(inst.Instance.job_class.(j)) <- true)
    t.assignment;
  let acc = ref [] in
  for k = Array.length present - 1 downto 0 do
    if present.(k) then acc := k :: !acc
  done;
  !acc

let loads t =
  let inst = t.instance in
  let m = Instance.num_machines inst in
  let kk = Instance.num_classes inst in
  let load = Array.make m 0.0 in
  let has_setup = Array.make_matrix m kk false in
  Array.iteri
    (fun j i ->
      load.(i) <- load.(i) +. Instance.ptime inst i j;
      let k = inst.Instance.job_class.(j) in
      if not has_setup.(i).(k) then begin
        has_setup.(i).(k) <- true;
        load.(i) <- load.(i) +. Instance.setup_time inst i k
      end)
    t.assignment;
  load

let load t i = (loads t).(i)
let makespan t = Array.fold_left Float.max 0.0 (loads t)

let num_setups t =
  let inst = t.instance in
  let m = Instance.num_machines inst in
  let kk = Instance.num_classes inst in
  let has_setup = Array.make_matrix m kk false in
  Array.iteri
    (fun j i -> has_setup.(i).(inst.Instance.job_class.(j)) <- true)
    t.assignment;
  Array.fold_left
    (fun acc row -> Array.fold_left (fun a b -> if b then a + 1 else a) acc row)
    0 has_setup

let is_valid instance t =
  Instance.num_jobs instance = Array.length t.assignment
  && Instance.num_machines instance = Instance.num_machines t.instance
  &&
  let ok = ref true in
  Array.iteri
    (fun j i -> if not (Instance.job_eligible instance i j) then ok := false)
    t.assignment;
  !ok

let pp ppf t =
  let m = Instance.num_machines t.instance in
  let load = loads t in
  Format.fprintf ppf "@[<v>schedule (makespan %g):@," (makespan t);
  for i = 0 to m - 1 do
    let jobs = jobs_of_machine t i in
    let classes = classes_of_machine t i in
    Format.fprintf ppf "machine %d: load %g, classes [%a], jobs [%a]@," i
      load.(i)
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
         Format.pp_print_int)
      classes
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
         Format.pp_print_int)
      jobs
  done;
  Format.fprintf ppf "@]"
