(** Schedules: job-to-machine assignments with setup-aware load accounting.

    A schedule for an instance is a total assignment [σ : jobs → machines].
    Machine order within a machine is irrelevant for the makespan because a
    machine batches all jobs of a class behind a single setup. *)

type t

val make : Instance.t -> int array -> t
(** [make instance assignment] validates that [assignment] maps every job to
    an in-range machine on which the job is eligible.
    Raises [Invalid_argument] otherwise. The array is copied. *)

val unsafe_make : Instance.t -> int array -> t
(** Like {!make}, without eligibility checks (the array is still copied and
    range-checked). Used by algorithms that establish validity themselves. *)

val assignment : t -> int array
(** A copy of the underlying assignment. *)

val machine_of : t -> int -> int
(** Machine of a job. *)

val jobs_of_machine : t -> int -> int list
(** Jobs on a machine, in increasing job order. *)

val classes_of_machine : t -> int -> int list
(** Distinct classes with at least one job on the machine, increasing. *)

val load : t -> int -> float
(** [load t i] = total processing time of the jobs on machine [i] plus one
    setup time per distinct class present on [i]. *)

val loads : t -> float array
(** Load of every machine. *)

val makespan : t -> float

val num_setups : t -> int
(** Total number of setups paid across all machines. *)

val is_valid : Instance.t -> t -> bool
(** Does the schedule assign every job of [instance] to an eligible
    machine? Also checks that the schedule was built for an instance of the
    same dimensions. *)

val pp : Format.formatter -> t -> unit
