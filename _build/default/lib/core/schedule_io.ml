exception Parse_error of string

let to_string schedule =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "# setup-scheduling schedule\nschedule\nassignment";
  Array.iter
    (fun i ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int i))
    (Schedule.assignment schedule);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let of_string instance text =
  let lines =
    String.split_on_char '\n' text
    |> List.map (fun l ->
           match String.index_opt l '#' with
           | Some i -> String.sub l 0 i
           | None -> l)
    |> List.concat_map (fun l -> [ String.trim l ])
    |> List.filter (fun l -> l <> "")
  in
  let assignment = ref None in
  List.iter
    (fun line ->
      match String.split_on_char ' ' line |> List.filter (( <> ) "") with
      | [ "schedule" ] -> ()
      | "assignment" :: rest ->
          let parse w =
            match int_of_string_opt w with
            | Some v -> v
            | None -> raise (Parse_error (Printf.sprintf "bad machine id %S" w))
          in
          assignment := Some (Array.of_list (List.map parse rest))
      | w :: _ -> raise (Parse_error (Printf.sprintf "unknown keyword %S" w))
      | [] -> ())
    lines;
  match !assignment with
  | None -> raise (Parse_error "missing assignment line")
  | Some a -> (
      try Schedule.make instance a
      with Invalid_argument msg -> raise (Parse_error msg))

let to_file path schedule =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string schedule))

let of_file instance path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string instance (really_input_string ic len))
