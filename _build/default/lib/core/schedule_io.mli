(** Plain-text serialization of schedules.

    Format (line-oriented, [#] comments):

    {v
    schedule
    assignment i_0 i_1 ... i_{n-1}
    v} *)

exception Parse_error of string

val to_string : Schedule.t -> string
val of_string : Instance.t -> string -> Schedule.t
(** Validates against the instance (job count, eligibility). *)

val to_file : string -> Schedule.t -> unit
val of_file : Instance.t -> string -> Schedule.t
