type event = {
  start : float;
  finish : float;
  kind : [ `Setup of int | `Job of int ];
}

let of_schedule instance schedule =
  let m = Instance.num_machines instance in
  Array.init m (fun i ->
      let jobs = Schedule.jobs_of_machine schedule i in
      let by_class = Hashtbl.create 8 in
      List.iter
        (fun j ->
          let k = instance.Instance.job_class.(j) in
          let old = Option.value ~default:[] (Hashtbl.find_opt by_class k) in
          Hashtbl.replace by_class k (j :: old))
        jobs;
      let classes = List.sort compare (Schedule.classes_of_machine schedule i) in
      let clock = ref 0.0 in
      let events = ref [] in
      List.iter
        (fun k ->
          let setup = Instance.setup_time instance i k in
          events :=
            { start = !clock; finish = !clock +. setup; kind = `Setup k }
            :: !events;
          clock := !clock +. setup;
          let batch = List.rev (Hashtbl.find by_class k) in
          List.iter
            (fun j ->
              let p = Instance.ptime instance i j in
              events :=
                { start = !clock; finish = !clock +. p; kind = `Job j }
                :: !events;
              clock := !clock +. p)
            batch)
        classes;
      List.rev !events)

let to_csv instance schedule =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "machine,kind,id,start,finish\n";
  Array.iteri
    (fun i events ->
      List.iter
        (fun e ->
          let kind, id =
            match e.kind with `Setup k -> ("setup", k) | `Job j -> ("job", j)
          in
          Buffer.add_string buf
            (Printf.sprintf "%d,%s,%d,%.17g,%.17g\n" i kind id e.start
               e.finish))
        events)
    (of_schedule instance schedule);
  Buffer.contents buf

let class_glyph k =
  let alphabet = "abcdefghijklmnopqrstuvwxyz0123456789" in
  alphabet.[k mod String.length alphabet]

let pp_gantt instance ppf schedule =
  let lanes = of_schedule instance schedule in
  let horizon =
    Array.fold_left
      (fun acc events ->
        List.fold_left (fun acc e -> Float.max acc e.finish) acc events)
      0.0 lanes
  in
  let width = 60 in
  let scale t =
    if horizon <= 0.0 then 0
    else int_of_float (Float.round (t /. horizon *. float_of_int width))
  in
  Format.fprintf ppf "@[<v>time 0 .. %g (each column ~ %g)@," horizon
    (horizon /. float_of_int width);
  Array.iteri
    (fun i events ->
      let lane = Bytes.make width '.' in
      List.iter
        (fun e ->
          let a = scale e.start and b = max (scale e.start + 1) (scale e.finish) in
          let glyph =
            match e.kind with
            | `Setup _ -> '#'
            | `Job j -> class_glyph instance.Instance.job_class.(j)
          in
          for c = a to min (width - 1) (b - 1) do
            Bytes.set lane c glyph
          done)
        events;
      Format.fprintf ppf "m%-2d |%s| %g@," i (Bytes.to_string lane)
        (Schedule.load schedule i))
    lanes;
  Format.fprintf ppf "(# = setup, letters = job classes)@]"
