(** Concrete per-machine timelines for a schedule.

    A schedule only fixes the job→machine assignment; the model lets every
    machine process each of its classes as one contiguous batch (setup
    first, then the class's jobs back to back), which is what realizes the
    load [Σ p + Σ setups]. This module materializes that batch order into
    explicit events with start/end times — for Gantt rendering, export, and
    tests that the load accounting matches an executable timeline. *)

type event = {
  start : float;
  finish : float;
  kind : [ `Setup of int  (** class *) | `Job of int  (** job id *) ];
}

val of_schedule : Instance.t -> Schedule.t -> event list array
(** One event list per machine, in execution order: classes in increasing
    class id, each preceded by its setup; jobs within a class in increasing
    job id. The last event of machine [i] finishes exactly at
    [Schedule.load schedule i]. *)

val to_csv : Instance.t -> Schedule.t -> string
(** One CSV row per event: [machine,kind,id,start,finish] where kind is
    [setup] (id = class) or [job]. For spreadsheet/plotting export. *)

val pp_gantt : Instance.t -> Format.formatter -> Schedule.t -> unit
(** ASCII Gantt chart: one row per machine, time flowing right, [#] for
    setup time and letters/digits cycling per class for processing time. *)
