lib/experiments/a1_iterations.ml: Algos Array Exp_common List Printf Stats Workloads
