lib/experiments/a1_iterations.mli: Exp_common
