lib/experiments/a2_pseudoforest.ml: Algos Array Exp_common List Printf Stats Workloads
