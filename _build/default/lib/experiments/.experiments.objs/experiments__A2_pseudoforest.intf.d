lib/experiments/a2_pseudoforest.mli: Exp_common
