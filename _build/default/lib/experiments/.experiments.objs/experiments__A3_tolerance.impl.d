lib/experiments/a3_tolerance.ml: Algos Array Core Exp_common List Printf Stats Workloads
