lib/experiments/a3_tolerance.mli: Exp_common
