lib/experiments/a4_eps.ml: Algos Array Exp_common List Printf Stats Workloads
