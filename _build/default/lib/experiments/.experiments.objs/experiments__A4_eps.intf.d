lib/experiments/a4_eps.mli: Exp_common
