lib/experiments/e1_lpt.ml: Algos Array Exp_common List Printf Stats Workloads
