lib/experiments/e1_lpt.mli: Exp_common
