lib/experiments/e2_ptas.ml: Algos Array Exp_common List Printf Stats Workloads
