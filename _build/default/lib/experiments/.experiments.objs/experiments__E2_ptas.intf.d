lib/experiments/e2_ptas.mli: Exp_common
