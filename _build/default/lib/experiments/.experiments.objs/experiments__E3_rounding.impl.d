lib/experiments/e3_rounding.ml: Algos Array Core Exp_common Float List Printf Stats Workloads
