lib/experiments/e3_rounding.mli: Exp_common
