lib/experiments/e4_gap.ml: Core Exp_common List Printf Setcover Stats
