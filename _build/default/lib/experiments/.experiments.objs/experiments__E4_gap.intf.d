lib/experiments/e4_gap.mli: Exp_common
