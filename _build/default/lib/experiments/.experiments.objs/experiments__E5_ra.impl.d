lib/experiments/e5_ra.ml: Algos Array Exp_common List Printf Stats Workloads
