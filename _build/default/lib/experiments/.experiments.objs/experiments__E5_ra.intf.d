lib/experiments/e5_ra.mli: Exp_common
