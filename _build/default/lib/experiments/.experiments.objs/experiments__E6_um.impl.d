lib/experiments/e6_um.ml: Algos Array Exp_common List Printf Stats Workloads
