lib/experiments/e6_um.mli: Exp_common
