lib/experiments/e7_comparison.ml: Algos Array Core Exp_common List Option Printf Stats Workloads
