lib/experiments/e7_comparison.mli: Exp_common
