lib/experiments/e8_crossover.ml: Algos Array Core Exp_common List Printf Stats Workloads
