lib/experiments/e8_crossover.mli: Exp_common
