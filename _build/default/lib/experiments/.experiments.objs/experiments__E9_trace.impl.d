lib/experiments/e9_trace.ml: Algos Array Core Exp_common List Printf Stats Workloads
