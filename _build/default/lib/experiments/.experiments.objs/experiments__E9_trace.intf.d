lib/experiments/e9_trace.mli: Exp_common
