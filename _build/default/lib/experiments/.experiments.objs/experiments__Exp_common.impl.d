lib/experiments/exp_common.ml: Algos Float Hashtbl Stats Unix Workloads
