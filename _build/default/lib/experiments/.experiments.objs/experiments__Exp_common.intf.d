lib/experiments/exp_common.mli: Core Stats Workloads
