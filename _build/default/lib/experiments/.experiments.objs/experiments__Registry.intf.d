lib/experiments/registry.mli: Exp_common
