lib/experiments/x1_exact_cross.ml: Algos Array Exp_common Float List Printf Stats Workloads
