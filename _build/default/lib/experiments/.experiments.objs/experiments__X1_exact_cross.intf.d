lib/experiments/x1_exact_cross.mli: Exp_common
