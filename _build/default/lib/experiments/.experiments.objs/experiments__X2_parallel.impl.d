lib/experiments/x2_parallel.ml: Algos Array Exp_common Float Fun List Parallel Printf Stats Workloads
