lib/experiments/x2_parallel.mli: Exp_common
