(* A1 — ablation: the constant c in the c·ln n rounding iterations
   (Section 3.1). Lemma 3.1 proves the fallback fires with probability
   <= 1/n^c; too few rounds leave many jobs to the (unbounded) argmin
   fallback, more rounds add load. We sweep c and report fallback counts
   and makespan ratios against the LP lower bound. *)

let trials = 4
let n = 24
let m = 5
let k = 4
let cs = [ 0.25; 0.5; 1.0; 3.0; 6.0 ]

let run () =
  let rng = Exp_common.rng_for "A1" in
  let table =
    Stats.Table.create
      [ "c"; "iterations"; "mean fallback jobs"; "mean ratio"; "max ratio" ]
  in
  (* fixed pool of instances with their LP solutions, shared across c *)
  let pool =
    List.init trials (fun _ ->
        let t = Workloads.Gen.unrelated rng ~n ~m ~k ~ineligible_prob:0.2 () in
        let bound = Algos.Lp_um.lower_bound t in
        (t, bound))
  in
  List.iter
    (fun c ->
      let ratios = ref [] and fallbacks = ref [] and iters = ref 0 in
      List.iter
        (fun (t, bound) ->
          let r, stats =
            Algos.Randomized_rounding.round ~c rng t bound.Algos.Lp_um.solution
          in
          iters := stats.Algos.Randomized_rounding.iterations;
          fallbacks :=
            float_of_int stats.Algos.Randomized_rounding.fallback_jobs
            :: !fallbacks;
          ratios :=
            Exp_common.ratio r.Algos.Common.makespan bound.Algos.Lp_um.lower
            :: !ratios)
        pool;
      Stats.Table.add_row table
        [
          Printf.sprintf "%.2f" c;
          string_of_int !iters;
          Printf.sprintf "%.1f" (Stats.mean (Array.of_list !fallbacks));
          Printf.sprintf "%.3f" (Stats.mean (Array.of_list !ratios));
          Printf.sprintf "%.3f" (Stats.maximum (Array.of_list !ratios));
        ])
    cs;
  table

let experiment =
  {
    Exp_common.id = "A1";
    title = "Ablation: rounding iteration constant c";
    claim =
      "Lemma 3.1: fallback probability <= 1/n^c; small c leaves jobs to the \
       unbounded fallback";
    run;
  }
