(** See the module comment in the implementation and the per-experiment
    index in DESIGN.md. *)

val experiment : Exp_common.t
