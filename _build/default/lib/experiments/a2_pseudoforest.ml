(* A2 — ablation: pseudo-forest rounding (Lemma 3.8) vs naive argmax
   rounding of the same LP solution. Both probes solve the identical
   LP-RelaxedRA; only the rounding differs. The naive variant has no
   constant-factor guarantee and its worst case degrades, while
   Theorem 3.10's rounding stays within 2. *)

let trials = 10

let configs = [ (10, 3, 3); (12, 4, 4); (14, 4, 5) ]

let run () =
  let rng = Exp_common.rng_for "A2" in
  let table =
    Stats.Table.create
      [
        "n"; "m"; "K"; "trials"; "lemma3.8 mean"; "lemma3.8 max";
        "naive mean"; "naive max";
      ]
  in
  List.iter
    (fun (n, m, k) ->
      let proper = ref [] and naive = ref [] in
      for _ = 1 to trials do
        let t = Workloads.Gen.restricted_class_uniform rng ~n ~m ~k () in
        match Exp_common.exact_opt t with
        | None -> ()
        | Some opt ->
            let p = Algos.Ra_class_uniform.schedule t in
            let q = Algos.Naive_rounding.schedule t in
            proper := Exp_common.ratio p.Algos.Common.makespan opt :: !proper;
            naive := Exp_common.ratio q.Algos.Common.makespan opt :: !naive
      done;
      let ps = Array.of_list !proper and qs = Array.of_list !naive in
      Stats.Table.add_row table
        [
          string_of_int n;
          string_of_int m;
          string_of_int k;
          string_of_int (Array.length ps);
          Printf.sprintf "%.3f" (Stats.mean ps);
          Printf.sprintf "%.3f" (Stats.maximum ps);
          Printf.sprintf "%.3f" (Stats.mean qs);
          Printf.sprintf "%.3f" (Stats.maximum qs);
        ])
    configs;
  table

let experiment =
  {
    Exp_common.id = "A2";
    title = "Ablation: Lemma 3.8 rounding vs naive argmax rounding";
    claim =
      "pseudo-forest rounding keeps the factor <= 2; argmax rounding of \
       the same LP does not";
    run;
  }
