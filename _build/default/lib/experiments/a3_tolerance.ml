(* A3 — ablation: binary-search tolerance of the dual approximation. The
   framework converts an α-feasibility-probe into an α(1+tol)
   approximation at log(1/tol) probe cost. We sweep rel_tol for the
   Theorem 3.10 pipeline and report probe counts and achieved ratios:
   coarse tolerances save LP solves at a small, bounded quality cost. *)

let trials = 6
let n = 12
let m = 4
let k = 4
let tolerances = [ 0.2; 0.1; 0.05; 0.02; 0.005 ]

let run () =
  let rng = Exp_common.rng_for "A3" in
  let table =
    Stats.Table.create
      [ "rel_tol"; "max probes"; "mean ratio"; "max ratio" ]
  in
  let pool =
    List.init trials (fun _ ->
        let t = Workloads.Gen.restricted_class_uniform rng ~n ~m ~k () in
        let opt = Exp_common.exact_opt t in
        (t, opt))
  in
  List.iter
    (fun tol ->
      let ratios = ref [] in
      let probes = ref 0 in
      List.iter
        (fun (t, opt) ->
          match opt with
          | None -> ()
          | Some opt ->
              let r = Algos.Ra_class_uniform.schedule ~rel_tol:tol t in
              let lo = Core.Bounds.lower_bound t in
              let hi = Core.Bounds.naive_upper_bound t in
              probes :=
                max !probes (Core.Binary_search.probes ~lo ~hi ~rel_tol:tol);
              ratios := Exp_common.ratio r.Algos.Common.makespan opt :: !ratios)
        pool;
      let rs = Array.of_list !ratios in
      Stats.Table.add_row table
        [
          Printf.sprintf "%.3f" tol;
          string_of_int !probes;
          Printf.sprintf "%.3f" (Stats.mean rs);
          Printf.sprintf "%.3f" (Stats.maximum rs);
        ])
    tolerances;
  table

let experiment =
  {
    Exp_common.id = "A3";
    title = "Ablation: dual-approximation search tolerance";
    claim =
      "the framework trades log(1/tol) feasibility probes for a (1+tol) \
       factor on top of the probe guarantee";
    run;
  }
