(* A4 — ablation: the PTAS accuracy parameter. Shrinking ε tightens the
   guarantee (1+ε)^6(1+ε/4) but grows the rounded instance's size grid and
   hence the DP state space. We sweep ε on a fixed instance pool and
   report ratio, guarantee, item types after simplification, and time. *)

let trials = 6
let n = 8
let m = 3
let k = 2
let epsilons = [ 0.5; 0.375; 0.25; 0.125 ]

let run () =
  let rng = Exp_common.rng_for "A4" in
  let table =
    Stats.Table.create
      [
        "eps"; "guarantee"; "mean ratio"; "max ratio"; "mean item types";
        "mean time (s)";
      ]
  in
  let pool =
    List.init trials (fun _ ->
        let t = Workloads.Gen.uniform rng ~n ~m ~k () in
        (t, Exp_common.exact_opt t))
  in
  List.iter
    (fun eps ->
      let ratios = ref [] and times = ref [] and types = ref [] in
      List.iter
        (fun (t, opt) ->
          match opt with
          | None -> ()
          | Some opt ->
              let r, secs =
                Exp_common.time_it (fun () ->
                    Algos.Uniform_ptas.schedule ~eps t)
              in
              let simp =
                Algos.Simplify.simplify ~eps ~makespan:opt t
              in
              types :=
                float_of_int
                  (Algos.Ptas_dp.num_item_types (Algos.Simplify.simplified simp))
                :: !types;
              times := secs :: !times;
              ratios := Exp_common.ratio r.Algos.Common.makespan opt :: !ratios)
        pool;
      let rs = Array.of_list !ratios in
      Stats.Table.add_row table
        [
          Printf.sprintf "%.3f" eps;
          Printf.sprintf "%.3f" (((1.0 +. eps) ** 6.0) *. (1.0 +. (eps /. 4.0)));
          Printf.sprintf "%.3f" (Stats.mean rs);
          Printf.sprintf "%.3f" (Stats.maximum rs);
          Printf.sprintf "%.1f" (Stats.mean (Array.of_list !types));
          Printf.sprintf "%.4f" (Stats.mean (Array.of_list !times));
        ])
    epsilons;
  table

let experiment =
  {
    Exp_common.id = "A4";
    title = "Ablation: PTAS accuracy parameter";
    claim =
      "smaller eps tightens the guarantee but grows the rounded size grid \
       and the DP cost";
    run;
  }
