(* E1 — Lemma 2.1: LPT with setup placeholders is a 3(1+1/√3) ≈ 4.74
   approximation on uniformly related machines. We measure the empirical
   ratio against the exact optimum on random uniform instances; the paper's
   bound must dominate every measured ratio. *)

let trials = 20

let configs =
  [ (8, 2, 2); (8, 3, 3); (10, 2, 3); (10, 3, 4); (10, 4, 4); (12, 3, 3);
    (12, 4, 5) ]

let run () =
  let rng = Exp_common.rng_for "E1" in
  let table =
    Stats.Table.create
      [ "n"; "m"; "K"; "trials"; "mean ratio"; "max ratio"; "paper bound" ]
  in
  List.iter
    (fun (n, m, k) ->
      let ratios = ref [] in
      for _ = 1 to trials do
        let t = Workloads.Gen.uniform rng ~n ~m ~k ~setup_range:(1.0, 80.0) () in
        match Exp_common.exact_opt t with
        | None -> () (* node limit: skip this draw *)
        | Some opt ->
            let r = Algos.Lpt.schedule t in
            ratios := Exp_common.ratio r.Algos.Common.makespan opt :: !ratios
      done;
      let rs = Array.of_list !ratios in
      Stats.Table.add_row table
        [
          string_of_int n;
          string_of_int m;
          string_of_int k;
          string_of_int (Array.length rs);
          Printf.sprintf "%.3f" (Stats.mean rs);
          Printf.sprintf "%.3f" (Stats.maximum rs);
          Printf.sprintf "%.3f" Algos.Lpt.approximation_factor;
        ])
    configs;
  table

let experiment =
  {
    Exp_common.id = "E1";
    title = "LPT with setup placeholders on uniform machines";
    claim = "Lemma 2.1: makespan <= 3(1+1/sqrt 3) * OPT ~ 4.74 * OPT";
    run;
  }
