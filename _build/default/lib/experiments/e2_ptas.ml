(* E2 — Section 2: the PTAS for uniform machines achieves (1+O(ε))·OPT,
   with running time growing as ε shrinks. We measure both the ratio
   against the exact optimum and the CPU time per instance. *)

let trials = 8

let configs = [ (0.5, 6, 2, 2); (0.5, 8, 3, 2); (0.25, 6, 2, 2); (0.25, 8, 3, 2) ]

let run () =
  let rng = Exp_common.rng_for "E2" in
  let table =
    Stats.Table.create
      [
        "eps"; "n"; "m"; "trials"; "mean ratio"; "max ratio"; "guarantee";
        "mean time (s)";
      ]
  in
  List.iter
    (fun (eps, n, m, k) ->
      let ratios = ref [] and times = ref [] in
      for _ = 1 to trials do
        let t = Workloads.Gen.uniform rng ~n ~m ~k () in
        match Exp_common.exact_opt t with
        | None -> ()
        | Some opt ->
            let r, secs =
              Exp_common.time_it (fun () -> Algos.Uniform_ptas.schedule ~eps t)
            in
            ratios := Exp_common.ratio r.Algos.Common.makespan opt :: !ratios;
            times := secs :: !times
      done;
      let rs = Array.of_list !ratios and ts = Array.of_list !times in
      let guarantee = ((1.0 +. eps) ** 6.0) *. (1.0 +. (eps /. 4.0)) in
      Stats.Table.add_row table
        [
          Printf.sprintf "%.2f" eps;
          string_of_int n;
          string_of_int m;
          string_of_int (Array.length rs);
          Printf.sprintf "%.3f" (Stats.mean rs);
          Printf.sprintf "%.3f" (Stats.maximum rs);
          Printf.sprintf "%.3f" guarantee;
          Printf.sprintf "%.4f" (Stats.mean ts);
        ])
    configs;
  table

let experiment =
  {
    Exp_common.id = "E2";
    title = "PTAS for uniformly related machines";
    claim = "Section 2: makespan <= (1+O(eps)) * OPT; cost grows with 1/eps";
    run;
  }
