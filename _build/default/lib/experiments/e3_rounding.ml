(* E3 — Theorem 3.3: randomized rounding yields O(T(log n + log m)) on
   unrelated machines. We measure the makespan against the LP lower bound
   across a growing (n, m) series; the normalized column
   ratio / (ln n + ln m) must stay bounded by a constant while the raw
   ratio may grow — exactly the theorem's shape. *)

let trials = 3

let configs = [ (10, 3, 3); (20, 5, 4); (30, 6, 5); (40, 8, 6); (60, 10, 8) ]

let run () =
  let rng = Exp_common.rng_for "E3" in
  let table =
    Stats.Table.create
      [
        "n"; "m"; "K"; "trials"; "mean ratio"; "max ratio"; "ln n + ln m";
        "ratio/(ln n+ln m)";
      ]
  in
  List.iter
    (fun (n, m, k) ->
      let ratios = ref [] in
      for _ = 1 to trials do
        let t =
          Workloads.Gen.unrelated rng ~n ~m ~k ~ineligible_prob:0.2 ()
        in
        let r, stats = Algos.Randomized_rounding.schedule rng t in
        let lb =
          (* certified LP lower bound; fall back to combinatorial bound *)
          Float.max stats.Algos.Randomized_rounding.lp_lower
            (Core.Bounds.lower_bound t)
        in
        ratios := Exp_common.ratio r.Algos.Common.makespan lb :: !ratios
      done;
      let rs = Array.of_list !ratios in
      let logs = log (float_of_int n) +. log (float_of_int m) in
      Stats.Table.add_row table
        [
          string_of_int n;
          string_of_int m;
          string_of_int k;
          string_of_int (Array.length rs);
          Printf.sprintf "%.3f" (Stats.mean rs);
          Printf.sprintf "%.3f" (Stats.maximum rs);
          Printf.sprintf "%.3f" logs;
          Printf.sprintf "%.3f" (Stats.mean rs /. logs);
        ])
    configs;
  table

let experiment =
  {
    Exp_common.id = "E3";
    title = "Randomized rounding on unrelated machines";
    claim = "Theorem 3.3: makespan = O(T (log n + log m)) w.h.p.";
    run;
  }
