(* E4 — Theorem 3.5 / Corollary 3.4: the reduction from SetCover produces
   scheduling instances whose integrality gap grows as Ω(log n + log m).
   We use the F_2^d gap family (fractional cover < 2, integral cover >= d)
   and report, per dimension d:

   - an upper bound on the scheduling LP optimum (a feasible fractional
     solution built from the fractional cover and the reduction's random
     permutations), and
   - a certified lower bound on the integral optimum (every class needs at
     least c = exact-cover-size setups, so some machine carries K·c/m),
     plus the makespan of the constructed cover-based schedule.

   The certified gap (integral LB / fractional UB) must grow ~ d/2, i.e.
   logarithmically in n and m. *)

let dims = [ 2; 3; 4; 5 ]

let run () =
  let rng = Exp_common.rng_for "E4" in
  let table =
    Stats.Table.create
      [
        "d"; "N=m"; "K"; "n jobs"; "frac UB"; "integral LB"; "greedy sched";
        "certified gap"; "ln n + ln m";
      ]
  in
  List.iter
    (fun d ->
      let cover = Setcover.Cover.gap_instance d in
      let exact_cover = List.length (Setcover.Cover.exact cover) in
      let red = Setcover.Reduction.build rng cover ~target:exact_cover in
      let _, z = Setcover.Cover.lp_value cover in
      let frac_ub = Setcover.Reduction.fractional_makespan_bound red z in
      let int_lb = Setcover.Reduction.integral_lower_bound red in
      let greedy = Setcover.Cover.greedy cover in
      let constructed = Setcover.Reduction.setups_makespan_bound red greedy in
      let n = Core.Instance.num_jobs red.Setcover.Reduction.instance in
      let m = Core.Instance.num_machines red.Setcover.Reduction.instance in
      Stats.Table.add_row table
        [
          string_of_int d;
          string_of_int m;
          string_of_int red.Setcover.Reduction.num_classes;
          string_of_int n;
          Printf.sprintf "%.3f" frac_ub;
          Printf.sprintf "%.3f" int_lb;
          string_of_int constructed;
          Printf.sprintf "%.3f" (Exp_common.ratio int_lb frac_ub);
          Printf.sprintf "%.3f" (log (float_of_int n) +. log (float_of_int m));
        ])
    dims;
  table

let experiment =
  {
    Exp_common.id = "E4";
    title = "Integrality gap growth on SetCover-derived instances";
    claim =
      "Theorem 3.5 / Cor 3.4: gap = Omega(log n + log m); no o(log) \
       approximation unless NP in RP";
    run;
  }
