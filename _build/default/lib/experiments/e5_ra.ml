(* E5 — Theorem 3.10: the pseudo-forest rounding is a 2-approximation for
   restricted assignment with class-uniform restrictions. Ratios are
   measured against the exact optimum. *)

let trials = 8

let configs = [ (8, 3, 2); (10, 3, 3); (12, 4, 4) ]

let run () =
  let rng = Exp_common.rng_for "E5" in
  let table =
    Stats.Table.create
      [
        "n"; "m"; "K"; "trials"; "mean ratio"; "max ratio"; "paper bound";
        "splittable mean";
      ]
  in
  List.iter
    (fun (n, m, k) ->
      let ratios = ref [] and split_ratios = ref [] in
      for _ = 1 to trials do
        let t = Workloads.Gen.restricted_class_uniform rng ~n ~m ~k () in
        match Exp_common.exact_opt t with
        | None -> ()
        | Some opt ->
            let r = Algos.Ra_class_uniform.schedule t in
            ratios := Exp_common.ratio r.Algos.Common.makespan opt :: !ratios;
            (* the splittable relaxation (Correa et al. [5]) on the same
               instance isolates what job granularity costs *)
            let frac = Algos.Splittable.schedule t in
            split_ratios :=
              Exp_common.ratio frac.Algos.Splittable.makespan opt
              :: !split_ratios
      done;
      let rs = Array.of_list !ratios in
      Stats.Table.add_row table
        [
          string_of_int n;
          string_of_int m;
          string_of_int k;
          string_of_int (Array.length rs);
          Printf.sprintf "%.3f" (Stats.mean rs);
          Printf.sprintf "%.3f" (Stats.maximum rs);
          Printf.sprintf "%.3f" Algos.Ra_class_uniform.guarantee;
          Printf.sprintf "%.3f" (Stats.mean (Array.of_list !split_ratios));
        ])
    configs;
  table

let experiment =
  {
    Exp_common.id = "E5";
    title = "Restricted assignment with class-uniform restrictions";
    claim = "Theorem 3.10: 2-approximation";
    run;
  }
