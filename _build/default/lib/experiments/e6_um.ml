(* E6 — Theorem 3.11: the variant with constraint (16) and the ½-threshold
   rule is a 3-approximation for unrelated machines with class-uniform
   processing times. Ratios are measured against the exact optimum. *)

let trials = 8

let configs = [ (8, 3, 2); (10, 3, 3); (12, 4, 4) ]

let run () =
  let rng = Exp_common.rng_for "E6" in
  let table =
    Stats.Table.create
      [ "n"; "m"; "K"; "trials"; "mean ratio"; "max ratio"; "paper bound" ]
  in
  List.iter
    (fun (n, m, k) ->
      let ratios = ref [] in
      for _ = 1 to trials do
        let t = Workloads.Gen.class_uniform_ptimes rng ~n ~m ~k () in
        match Exp_common.exact_opt t with
        | None -> ()
        | Some opt ->
            let r = Algos.Um_class_uniform.schedule t in
            ratios := Exp_common.ratio r.Algos.Common.makespan opt :: !ratios
      done;
      let rs = Array.of_list !ratios in
      Stats.Table.add_row table
        [
          string_of_int n;
          string_of_int m;
          string_of_int k;
          string_of_int (Array.length rs);
          Printf.sprintf "%.3f" (Stats.mean rs);
          Printf.sprintf "%.3f" (Stats.maximum rs);
          Printf.sprintf "%.3f" Algos.Um_class_uniform.guarantee;
        ])
    configs;
  table

let experiment =
  {
    Exp_common.id = "E6";
    title = "Unrelated machines with class-uniform processing times";
    claim = "Theorem 3.11: 3-approximation (and no better than 2 unless P=NP)";
    run;
  }
