(* E7 — cross-algorithm comparison ("who wins"). For each machine
   environment we draw small instances, compute the exact optimum and
   report each applicable algorithm's mean ratio to it. The expected shape:
   the environment-specific algorithm beats the generic baselines, the
   greedy baseline is decent but unguaranteed, and randomized rounding
   pays its logarithmic factor. *)

let trials = 8
let n = 9
let m = 3
let k = 3

type algo = { name : string; applies : string list; run_algo : Core.Instance.t -> float }

let algos rng =
  [
    {
      name = "list scheduling";
      applies = [ "uniform"; "unrelated"; "ra-uniform"; "cu-ptimes" ];
      run_algo =
        (fun t -> (Algos.List_scheduling.schedule t).Algos.Common.makespan);
    };
    {
      name = "LPT+placeholders";
      applies = [ "uniform" ];
      run_algo = (fun t -> (Algos.Lpt.schedule t).Algos.Common.makespan);
    };
    {
      name = "batch LPT";
      applies = [ "uniform" ];
      run_algo = (fun t -> (Algos.Batch_lpt.schedule t).Algos.Common.makespan);
    };
    {
      name = "PTAS eps=1/2";
      applies = [ "uniform" ];
      run_algo =
        (fun t -> (Algos.Uniform_ptas.schedule ~eps:0.5 t).Algos.Common.makespan);
    };
    {
      name = "rand. rounding";
      applies = [ "uniform"; "unrelated"; "ra-uniform"; "cu-ptimes" ];
      run_algo =
        (fun t ->
          (fst (Algos.Randomized_rounding.schedule rng t)).Algos.Common.makespan);
    };
    {
      name = "2-approx (3.3.1)";
      applies = [ "ra-uniform" ];
      run_algo =
        (fun t -> (Algos.Ra_class_uniform.schedule t).Algos.Common.makespan);
    };
    {
      name = "3-approx (3.3.2)";
      applies = [ "cu-ptimes" ];
      run_algo =
        (fun t -> (Algos.Um_class_uniform.schedule t).Algos.Common.makespan);
    };
  ]

let environments rng =
  [
    ("uniform", fun () -> Workloads.Gen.uniform rng ~n ~m ~k ());
    ("unrelated", fun () -> Workloads.Gen.unrelated rng ~n ~m ~k ());
    ( "ra-uniform",
      fun () -> Workloads.Gen.restricted_class_uniform rng ~n ~m ~k () );
    ("cu-ptimes", fun () -> Workloads.Gen.class_uniform_ptimes rng ~n ~m ~k ());
  ]

let run () =
  let rng = Exp_common.rng_for "E7" in
  let algos = algos rng in
  let envs = environments rng in
  let headers = "algorithm" :: List.map fst envs in
  let table = Stats.Table.create headers in
  (* Draw instances per environment once so all algorithms see the same. *)
  let instances =
    List.map
      (fun (env, gen) ->
        let ts = List.init trials (fun _ -> gen ()) in
        let opts =
          List.map (fun t -> Option.get (Exp_common.exact_opt t)) ts
        in
        (env, List.combine ts opts))
      envs
  in
  List.iter
    (fun algo ->
      let cells =
        List.map
          (fun (env, draws) ->
            if not (List.mem env algo.applies) then "-"
            else begin
              let ratios =
                List.map
                  (fun (t, opt) -> Exp_common.ratio (algo.run_algo t) opt)
                  draws
              in
              Printf.sprintf "%.3f" (Stats.mean (Array.of_list ratios))
            end)
          instances
      in
      Stats.Table.add_row table (algo.name :: cells))
    algos;
  (* exact row: always 1.0 by construction, kept as a sanity anchor *)
  Stats.Table.add_row table
    ("exact (B&B)" :: List.map (fun _ -> "1.000") envs);
  table

let experiment =
  {
    Exp_common.id = "E7";
    title = "Cross-algorithm comparison (mean ratio to OPT)";
    claim =
      "environment-specific algorithms dominate generic baselines in their \
       own environment";
    run;
  }
