(* E8 — setup dominance: the motivation of the model. As the setup scale λ
   grows, a setup-oblivious scheduler (plain LPT that balances job sizes
   and scatters classes) degrades, while the Lemma 2.1 transformation keeps
   classes together. We report both algorithms' ratios to the volume lower
   bound and their head-to-head ratio as λ sweeps from 0.1 to 10. *)

let trials = 8
let n = 30
let m = 3
let k = 4
let scales = [ 0.1; 0.5; 1.0; 2.0; 5.0; 10.0 ]

let run () =
  let rng = Exp_common.rng_for "E8" in
  let table =
    Stats.Table.create
      [
        "setup scale";
        "oblivious/LB";
        "aware/LB";
        "oblivious/aware";
        "greedy/LB";
      ]
  in
  (* one base pool of instances, re-scaled per λ so the sweep is paired *)
  let base =
    List.init trials (fun _ ->
        Workloads.Gen.uniform rng ~n ~m ~k ~setup_range:(10.0, 40.0) ())
  in
  List.iter
    (fun lambda ->
      let obl = ref [] and aware = ref [] and head = ref [] and greedy = ref [] in
      List.iter
        (fun t0 ->
          let t = Core.Instance.scale_setups t0 lambda in
          let lb = Core.Bounds.lower_bound t in
          let o = (Algos.Lpt.setup_oblivious t).Algos.Common.makespan in
          let a = (Algos.Lpt.schedule t).Algos.Common.makespan in
          let g = (Algos.List_scheduling.schedule t).Algos.Common.makespan in
          obl := Exp_common.ratio o lb :: !obl;
          aware := Exp_common.ratio a lb :: !aware;
          head := Exp_common.ratio o a :: !head;
          greedy := Exp_common.ratio g lb :: !greedy)
        base;
      Stats.Table.add_row table
        [
          Printf.sprintf "%.1f" lambda;
          Printf.sprintf "%.3f" (Stats.mean (Array.of_list !obl));
          Printf.sprintf "%.3f" (Stats.mean (Array.of_list !aware));
          Printf.sprintf "%.3f" (Stats.mean (Array.of_list !head));
          Printf.sprintf "%.3f" (Stats.mean (Array.of_list !greedy));
        ])
    scales;
  table

let experiment =
  {
    Exp_common.id = "E8";
    title = "Setup-dominance crossover (uniform machines)";
    claim =
      "setup-aware scheduling dominates setup-oblivious balancing once \
       setups dominate job sizes";
    run;
  }
