(* E9 — applied figure: production-trace workloads (Zipf class popularity,
   batched arrivals, correlated sizes) on uniform machines. The paper's
   motivation section argues that setup awareness matters in production
   systems; this experiment measures the planners a practitioner would
   actually choose between, on the workload shape they would actually see.
   Ratios are to the combinatorial lower bound (instances are too large
   for exact solving), so absolute values overstate the true ratios
   equally for all planners. *)

let trials = 4

let configs = [ (10, 4, 3, 5); (15, 4, 4, 6); (20, 4, 5, 6) ]
(* (batches, jobs_per_batch, m, K) *)

let run () =
  let rng = Exp_common.rng_for "E9" in
  let table =
    Stats.Table.create
      [
        "batches"; "jobs/batch"; "m"; "K"; "greedy(arrival)"; "greedy(class)";
        "LPT+placeholders"; "batch LPT"; "portfolio";
      ]
  in
  List.iter
    (fun (batches, jpb, m, k) ->
      let acc = Array.make 5 [] in
      for _ = 1 to trials do
        let t =
          Workloads.Gen.production_trace rng ~batches ~jobs_per_batch:jpb ~m ~k
            ()
        in
        let lb = Core.Bounds.lower_bound t in
        let record idx ms = acc.(idx) <- Exp_common.ratio ms lb :: acc.(idx) in
        record 0
          (Algos.List_scheduling.schedule ~order:Algos.List_scheduling.Input t)
            .Algos.Common.makespan;
        record 1
          (Algos.List_scheduling.schedule ~order:Algos.List_scheduling.By_class
             t)
            .Algos.Common.makespan;
        record 2 (Algos.Lpt.schedule t).Algos.Common.makespan;
        record 3 (Algos.Batch_lpt.schedule t).Algos.Common.makespan;
        record 4
          (Algos.Portfolio.run t).Algos.Portfolio.best.Algos.Common.makespan
      done;
      let mean idx = Stats.mean (Array.of_list acc.(idx)) in
      Stats.Table.add_row table
        [
          string_of_int batches;
          string_of_int jpb;
          string_of_int m;
          string_of_int k;
          Printf.sprintf "%.3f" (mean 0);
          Printf.sprintf "%.3f" (mean 1);
          Printf.sprintf "%.3f" (mean 2);
          Printf.sprintf "%.3f" (mean 3);
          Printf.sprintf "%.3f" (mean 4);
        ])
    configs;
  table

let experiment =
  {
    Exp_common.id = "E9";
    title = "Production-trace workloads (mean ratio to lower bound)";
    claim =
      "on realistic batched workloads setup-aware planners dominate; the \
       portfolio inherits the best of all members";
    run;
  }
