(** All experiments of the reproduction: the theorem experiments E1-E8 in
    paper order, followed by the ablations A1-A4. *)

val all : Exp_common.t list

val find : string -> Exp_common.t option
(** Lookup by id (case-insensitive), e.g. ["E3"] or ["A2"]. *)

val run_one : Exp_common.t -> unit
(** Print header, claim, table and wall time to stdout. *)

val run_all : ?jobs:int -> unit -> unit
(** Run every experiment and print its table, in registry order. With
    [jobs > 1], tables are computed on a {!Parallel.Pool} — output is
    bit-identical to the sequential run because every experiment seeds its
    own RNG. *)
