(* X1 — infrastructure validation: three independent exact solvers (job
   assignment branch & bound, ILP-UM via MIP, configuration IP) must agree
   on the optimum. Any disagreement would indicate a bug in one of the
   three very different code paths, so this experiment doubles as the
   repository's strongest self-check; the timing columns show how
   differently they scale. *)

let trials = 3

let configs =
  [ ("identical", 8, 3, 3); ("identical", 9, 3, 3); ("unrelated", 8, 3, 3) ]

let run () =
  let rng = Exp_common.rng_for "X1" in
  let table =
    Stats.Table.create
      [
        "env"; "n"; "m"; "K"; "agree"; "B&B (ms)"; "ILP (ms)"; "config-IP (ms)";
      ]
  in
  List.iter
    (fun (env, n, m, k) ->
      let agree = ref true in
      let t_bnb = ref [] and t_ilp = ref [] and t_cfg = ref [] in
      for _ = 1 to trials do
        let t =
          match env with
          | "identical" -> Workloads.Gen.identical rng ~n ~m ~k ()
          | _ -> Workloads.Gen.unrelated rng ~n ~m ~k ()
        in
        let bnb, secs_bnb = Exp_common.time_it (fun () -> Algos.Exact.solve t) in
        t_bnb := secs_bnb :: !t_bnb;
        let reference = bnb.Algos.Exact.result.Algos.Common.makespan in
        let ilp, secs_ilp =
          Exp_common.time_it (fun () -> Algos.Exact_ilp.solve t)
        in
        t_ilp := secs_ilp :: !t_ilp;
        if
          ilp.Algos.Exact_ilp.optimal
          && Float.abs
               (ilp.Algos.Exact_ilp.result.Algos.Common.makespan -. reference)
             > 1e-6
        then agree := false;
        if env = "identical" then begin
          let cfg, secs_cfg =
            Exp_common.time_it (fun () -> Algos.Config_ip.solve t)
          in
          t_cfg := secs_cfg :: !t_cfg;
          if
            Float.abs
              (cfg.Algos.Config_ip.result.Algos.Common.makespan -. reference)
            > 1e-6
          then agree := false
        end
      done;
      let ms xs =
        match xs with
        | [] -> "-"
        | _ -> Printf.sprintf "%.1f" (1000.0 *. Stats.mean (Array.of_list xs))
      in
      Stats.Table.add_row table
        [
          env;
          string_of_int n;
          string_of_int m;
          string_of_int k;
          (if !agree then "yes" else "NO");
          ms !t_bnb;
          ms !t_ilp;
          ms !t_cfg;
        ])
    configs;
  table

let experiment =
  {
    Exp_common.id = "X1";
    title = "Exact-solver cross-validation (B&B vs ILP-UM vs configuration IP)";
    claim = "three independent exact code paths agree on every instance";
    run;
  }
