(* X2 — infrastructure: the domain-parallel branch and bound must
   reproduce the sequential optima, and its wall-clock tracks the
   available cores. Near-identical unrelated machines defeat the
   symmetry breaking, so the trees are genuinely large. Note: on a
   single-core container (Domain.recommended_domain_count = 1, as in the
   recorded runs) the speedup column is necessarily ~1 or slightly below
   (root-split overhead); the agree column is the correctness check and
   the speedup becomes real on multicore hosts. *)

let trials = 3

let configs = [ (13, 4, 3); (14, 4, 3) ]

let run () =
  let rng = Exp_common.rng_for "X2" in
  let table =
    Stats.Table.create
      [
        "n"; "m"; "K"; "agree"; "seq (ms)"; "par (ms)"; "speedup"; "domains";
      ]
  in
  let jobs = Parallel.Pool.default_jobs () in
  let pool = Parallel.Pool.create jobs in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      List.iter
        (fun (n, m, k) ->
          let agree = ref true in
          let seq_t = ref [] and par_t = ref [] in
          for _ = 1 to trials do
            let t =
              Workloads.Gen.unrelated rng ~n ~m ~k ~noise:0.15
                ~machine_factor_range:(0.95, 1.05) ()
            in
            let seq, secs_seq =
              Exp_common.time_it (fun () -> Algos.Exact.solve t)
            in
            let par, secs_par =
              Exp_common.time_it (fun () -> Algos.Exact_parallel.solve ~pool t)
            in
            seq_t := secs_seq :: !seq_t;
            par_t := secs_par :: !par_t;
            if
              Float.abs
                (seq.Algos.Exact.result.Algos.Common.makespan
                -. par.Algos.Exact_parallel.result.Algos.Common.makespan)
              > 1e-9
            then agree := false
          done;
          let mean xs = Stats.mean (Array.of_list xs) in
          Stats.Table.add_row table
            [
              string_of_int n;
              string_of_int m;
              string_of_int k;
              (if !agree then "yes" else "NO");
              Printf.sprintf "%.1f" (1000.0 *. mean !seq_t);
              Printf.sprintf "%.1f" (1000.0 *. mean !par_t);
              Printf.sprintf "%.2f" (mean !seq_t /. Float.max 1e-9 (mean !par_t));
              string_of_int jobs;
            ])
        configs);
  table

let experiment =
  {
    Exp_common.id = "X2";
    title = "Parallel branch-and-bound speedup (shared-incumbent root split)";
    claim = "parallel and sequential optima coincide; speedup tracks available \
       cores (1 in the recorded container)";
    run;
  }
