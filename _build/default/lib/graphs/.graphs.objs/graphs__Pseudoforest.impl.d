lib/graphs/pseudoforest.ml: Array Hashtbl List Option Queue Union_find
