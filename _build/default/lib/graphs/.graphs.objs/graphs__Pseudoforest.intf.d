lib/graphs/pseudoforest.mli:
