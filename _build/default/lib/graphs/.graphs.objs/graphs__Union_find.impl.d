lib/graphs/union_find.ml: Array
