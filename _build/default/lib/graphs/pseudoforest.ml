type edge = { cls : int; machine : int; mutable removed : bool }

type t = {
  num_classes : int;
  num_machines : int;
  mutable edge_list : edge list; (* newest first *)
  mutable nedges : int;
  seen : (int * int, unit) Hashtbl.t;
}

exception Not_pseudoforest

let create ~num_classes ~num_machines =
  if num_classes < 0 || num_machines < 0 then
    invalid_arg "Pseudoforest.create: negative dimension";
  { num_classes; num_machines; edge_list = []; nedges = 0; seen = Hashtbl.create 16 }

let add_edge t ~cls ~machine =
  if cls < 0 || cls >= t.num_classes then
    invalid_arg "Pseudoforest.add_edge: class out of range";
  if machine < 0 || machine >= t.num_machines then
    invalid_arg "Pseudoforest.add_edge: machine out of range";
  if not (Hashtbl.mem t.seen (cls, machine)) then begin
    Hashtbl.add t.seen (cls, machine) ();
    t.edge_list <- { cls; machine; removed = false } :: t.edge_list;
    t.nedges <- t.nedges + 1
  end

let num_edges t = t.nedges

let edges t =
  List.rev_map (fun e -> (e.cls, e.machine)) t.edge_list

(* Node encoding: classes are [0 .. K-1], machines are [K .. K+m-1]. *)
let nnodes t = t.num_classes + t.num_machines
let machine_node t i = t.num_classes + i
let is_class_node t v = v < t.num_classes

let edge_array t = Array.of_list (List.rev t.edge_list)

let adjacency t edges =
  let adj = Array.make (nnodes t) [] in
  Array.iteri
    (fun id e ->
      let u = e.cls and v = machine_node t e.machine in
      adj.(u) <- (v, id) :: adj.(u);
      adj.(v) <- (u, id) :: adj.(v))
    edges;
  adj

let component_stats t edges =
  let uf = Union_find.create (nnodes t) in
  Array.iter (fun e -> ignore (Union_find.union uf e.cls (machine_node t e.machine))) edges;
  let node_count = Hashtbl.create 16 and edge_count = Hashtbl.create 16 in
  let bump tbl key =
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let touched = Array.make (nnodes t) false in
  Array.iter
    (fun e ->
      touched.(e.cls) <- true;
      touched.(machine_node t e.machine) <- true)
    edges;
  for v = 0 to nnodes t - 1 do
    if touched.(v) then bump node_count (Union_find.find uf v)
  done;
  Array.iter (fun e -> bump edge_count (Union_find.find uf e.cls)) edges;
  (uf, node_count, edge_count)

let is_pseudoforest t =
  let edges = edge_array t in
  let _, node_count, edge_count = component_stats t edges in
  Hashtbl.fold
    (fun root ec ok -> ok && ec <= Hashtbl.find node_count root)
    edge_count true

let components t =
  let edges = edge_array t in
  let uf, _, _ = component_stats t edges in
  let touched = Array.make (nnodes t) false in
  Array.iter
    (fun e ->
      touched.(e.cls) <- true;
      touched.(machine_node t e.machine) <- true)
    edges;
  let by_root = Hashtbl.create 16 in
  for v = nnodes t - 1 downto 0 do
    if touched.(v) then begin
      let root = Union_find.find uf v in
      let cs, ms = Option.value ~default:([], []) (Hashtbl.find_opt by_root root) in
      if is_class_node t v then Hashtbl.replace by_root root (v :: cs, ms)
      else Hashtbl.replace by_root root (cs, (v - t.num_classes) :: ms)
    end
  done;
  Hashtbl.fold (fun _ comp acc -> comp :: acc) by_root []

let round t =
  let edges = edge_array t in
  Array.iter (fun e -> e.removed <- false) edges;
  let _, node_count, edge_count = component_stats t edges in
  Hashtbl.iter
    (fun root ec ->
      if ec > Hashtbl.find node_count root then raise Not_pseudoforest)
    edge_count;
  let adj = adjacency t edges in
  let n = nnodes t in
  (* Peel leaves to expose the (unique per component) cycles. *)
  let degree = Array.make n 0 in
  Array.iteri (fun v ns -> degree.(v) <- List.length ns) adj;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if degree.(v) = 1 then Queue.add v queue
  done;
  let on_cycle = Array.make n true in
  for v = 0 to n - 1 do
    if degree.(v) = 0 then on_cycle.(v) <- false
  done;
  let peeled = Array.make n false in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if not peeled.(v) then begin
      peeled.(v) <- true;
      on_cycle.(v) <- false;
      List.iter
        (fun (u, _) ->
          if not peeled.(u) then begin
            degree.(u) <- degree.(u) - 1;
            if degree.(u) = 1 then Queue.add u queue
          end)
        adj.(v)
    end
  done;
  (* Walk each cycle and delete alternate edges, starting with an edge that
     leaves a class node. *)
  let cycle_visited = Array.make n false in
  let kept_cycle_roots = ref [] in
  for start = 0 to n - 1 do
    if on_cycle.(start) && (not cycle_visited.(start)) && is_class_node t start
    then begin
      (* Collect the node sequence of this cycle beginning at [start]. *)
      let seq = ref [ start ] in
      cycle_visited.(start) <- true;
      let rec walk v =
        let next =
          List.find_opt
            (fun (u, _) -> on_cycle.(u) && not cycle_visited.(u))
            adj.(v)
        in
        match next with
        | Some (u, _) ->
            cycle_visited.(u) <- true;
            seq := u :: !seq;
            walk u
        | None -> ()
      in
      walk start;
      let cycle = Array.of_list (List.rev !seq) in
      let len = Array.length cycle in
      (* Remove edges (cycle.(0), cycle.(1)), (cycle.(2), cycle.(3)), ... *)
      let find_edge u v =
        match List.find_opt (fun (w, _) -> w = v) adj.(u) with
        | Some (_, id) -> id
        | None -> raise Not_pseudoforest
      in
      for s = 0 to len - 1 do
        let u = cycle.(s) and v = cycle.((s + 1) mod len) in
        let id = find_edge u v in
        if s mod 2 = 0 then edges.(id).removed <- true
        else begin
          (* Kept former-cycle edge: remember its class endpoint as the
             mandatory root of the tree it ends up in. *)
          let cls_end = if is_class_node t u then u else v in
          kept_cycle_roots := cls_end :: !kept_cycle_roots
        end
      done
    end
  done;
  (* Root every tree of the remaining forest at a class node (preferring
     the recorded cycle roots), orient away from the root and keep exactly
     the class->machine edges. *)
  let visited = Array.make n false in
  let kept = ref [] in
  let bfs root =
    if not visited.(root) then begin
      visited.(root) <- true;
      let q = Queue.create () in
      Queue.add root q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        List.iter
          (fun (u, id) ->
            if (not edges.(id).removed) && not visited.(u) then begin
              visited.(u) <- true;
              if is_class_node t v then
                kept := (edges.(id).cls, edges.(id).machine) :: !kept;
              Queue.add u q
            end)
          adj.(v)
      done
    end
  in
  List.iter bfs !kept_cycle_roots;
  for v = 0 to t.num_classes - 1 do
    if adj.(v) <> [] then bfs v
  done;
  (* Remaining unvisited nodes can only be machine nodes in machine-only
     components, which have no edges; nothing to keep there. *)
  List.rev !kept
