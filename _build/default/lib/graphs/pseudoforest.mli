(** Bipartite pseudo-forest rounding (Lemma 3.8 of the paper, after Correa
    et al.).

    The support graph of a vertex solution of LP-RelaxedRA — class nodes on
    one side, machine nodes on the other, one edge per strictly fractional
    variable — is a pseudo-forest: every connected component contains at
    most one cycle. The rounding selects a subset [E~] of the edges such
    that

    + every machine is incident to at most one edge of [E~], and
    + every class loses at most one of its edges (i.e. at most one incident
      edge is outside [E~]).

    Construction: break each component's unique cycle by deleting alternate
    edges (starting with an edge leaving a class node), root every
    resulting tree at a class node (preferring a class incident to a kept
    former-cycle edge), orient edges away from the root, and keep exactly
    the class→machine oriented edges. *)

type t

val create : num_classes:int -> num_machines:int -> t

val add_edge : t -> cls:int -> machine:int -> unit
(** Adds an undirected edge; duplicate edges are ignored. Raises
    [Invalid_argument] on out-of-range endpoints. *)

val num_edges : t -> int

val edges : t -> (int * int) list
(** All [(cls, machine)] edges, in insertion order. *)

val is_pseudoforest : t -> bool
(** Does every connected component satisfy [#edges <= #nodes]? *)

val components : t -> (int list * int list) list
(** Connected components as [(classes, machines)] pairs; isolated nodes are
    omitted. *)

exception Not_pseudoforest

val round : t -> (int * int) list
(** The kept edge set [E~] as [(cls, machine)] pairs, satisfying the two
    properties above. Additionally, every class of positive degree keeps at
    least one edge provided its degree is at least 2 (which holds for
    support graphs of LP-RelaxedRA vertices: a class with a fractional
    assignment has at least two fractional edges).
    Raises [Not_pseudoforest] if some component has two or more cycles. *)
