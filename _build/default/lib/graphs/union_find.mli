(** Disjoint-set forest with union by rank and path compression. *)

type t

val create : int -> t
(** [create n] builds [n] singleton sets [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of an element's set. *)

val union : t -> int -> int -> bool
(** Merge two sets; returns [false] if they were already merged. *)

val same : t -> int -> int -> bool
val num_sets : t -> int
