lib/lp/lp.ml: Mip Model Simplex
