lib/lp/lp.mli: Mip Model Simplex
