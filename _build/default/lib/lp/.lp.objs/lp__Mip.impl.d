lib/lp/mip.ml: Array Float Logs Model
