lib/lp/simplex.mli:
