module Simplex = Simplex
module Mip = Mip
include Model
