(** Linear programming for the reproduction: the model builder (included
    below), the raw standard-form solver ({!Simplex}) and a small 0/1
    branch-and-bound MIP layer ({!Mip}). *)

module Simplex = Simplex
(** The underlying standard-form solver. *)

module Mip = Mip
(** 0/1 mixed-integer solving by LP-based branch and bound. *)

include module type of struct include Model end
