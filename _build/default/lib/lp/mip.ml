type outcome =
  | Optimal of { objective : float; values : float array }
  | Infeasible
  | No_proof

let log_src = Logs.Src.create "lp.mip" ~doc:"branch-and-bound MIP"

module Log = (val Logs.src_log log_src)

let solve ?(node_limit = 100_000) ?(eps = 1e-6) ?(maximize = false) lp
    ~integer =
  let integer = Array.of_list integer in
  Array.iter
    (fun v ->
      let lb, ub = Model.var_bounds lp v in
      if lb = neg_infinity || ub = infinity then
        invalid_arg "Mip.solve: integer variables must have finite bounds")
    integer;
  let sign = if maximize then -1.0 else 1.0 in
  let best_obj = ref infinity in
  (* signed: minimize sign*obj *)
  let best_values = ref None in
  let nodes = ref 0 in
  let exhausted = ref false in
  (* Depth-first, branching on the most fractional integer variable by
     splitting its bounds at floor/ceil; the "round up" child first, which
     satisfies covering constraints sooner. *)
  let rec branch fixings =
    if !nodes >= node_limit then exhausted := true
    else begin
      incr nodes;
      match Model.solve ~maximize ~overrides:fixings lp with
      | Model.Infeasible -> ()
      | Model.Unbounded ->
          (* relaxations of bounded MIPs can only be unbounded if the model
             itself is; treat as no-improvement *)
          ()
      | Model.Aborted -> exhausted := true
      | Model.Optimal sol ->
          let obj = sign *. Model.objective_value sol in
          if obj < !best_obj -. 1e-9 then begin
            (* most fractional integer variable *)
            let pick = ref None and dist = ref eps in
            Array.iter
              (fun v ->
                let x = Model.value sol v in
                let frac = Float.abs (x -. Float.round x) in
                if frac > !dist then begin
                  dist := frac;
                  pick := Some (v, x)
                end)
              integer;
            match !pick with
            | None ->
                (* integral: new incumbent (snap the integer entries) *)
                best_obj := obj;
                let values = Model.values sol in
                Array.iter
                  (fun v ->
                    let idx = Model.var_index v in
                    values.(idx) <- Float.round values.(idx))
                  integer;
                best_values := Some values
            | Some (v, x) ->
                branch ((v, (ceil x, infinity)) :: fixings);
                branch ((v, (neg_infinity, floor x)) :: fixings)
          end
    end
  in
  branch [];
  Log.debug (fun f ->
      f "explored %d nodes (%s)" !nodes
        (if !exhausted then "node limit hit" else "complete"));
  match !best_values with
  | Some values ->
      if !exhausted then
        (* an incumbent exists but optimality was not proven *)
        No_proof
      else Optimal { objective = sign *. !best_obj; values }
  | None -> if !exhausted then No_proof else Infeasible
