(** Small mixed-integer solver: LP-based branch and bound on top of the
    model builder.

    Intended for the exact side of the reproduction — ILP-UM itself
    ({!Algos.Exact_ilp}) and the configuration IP for identical machines
    ({!Algos.Config_ip}). Depth-first branch and bound: solve the LP
    relaxation, branch on the most fractional integer-marked variable by
    splitting its domain at floor/ceil (ceiling child first), prune by LP
    infeasibility and objective bound.

    Integer-marked variables must have finite bounds (termination). *)

type outcome =
  | Optimal of { objective : float; values : float array }
      (** [values] indexed by variable creation order; integer-marked
          entries are exact integers. *)
  | Infeasible
  | No_proof  (** node limit reached before the search completed *)

val solve :
  ?node_limit:int ->
  ?eps:float ->
  ?maximize:bool ->
  Model.t ->
  integer:Model.var list ->
  outcome
(** [solve lp ~integer] optimizes the model subject to the listed
    variables being integral. [node_limit] defaults to [100_000]; [eps]
    (integrality tolerance) to [1e-6]. The model must not be mutated
    concurrently. Raises [Invalid_argument] if an integer-marked variable
    has an infinite bound. *)
