type relation = Le | Ge | Eq

type var_info = { name : string; lb : float; ub : float; mutable obj : float }

type constr = { terms : (float * int) list; rel : relation; rhs : float }

type t = {
  mutable vars : var_info array;
  mutable nvars : int;
  mutable constrs : constr list; (* newest first *)
  mutable nconstrs : int;
}

type var = int

let create () = { vars = Array.make 16 { name = ""; lb = 0.; ub = 0.; obj = 0. }; nvars = 0; constrs = []; nconstrs = 0 }

let add_var ?(lb = 0.0) ?(ub = infinity) ?(obj = 0.0) t name =
  if Float.is_nan lb || Float.is_nan ub then
    invalid_arg "Lp.add_var: NaN bound";
  if lb > ub then invalid_arg "Lp.add_var: lb > ub";
  if t.nvars = Array.length t.vars then begin
    let bigger = Array.make (2 * t.nvars) t.vars.(0) in
    Array.blit t.vars 0 bigger 0 t.nvars;
    t.vars <- bigger
  end;
  t.vars.(t.nvars) <- { name; lb; ub; obj };
  t.nvars <- t.nvars + 1;
  t.nvars - 1

let add_constraint t terms rel rhs =
  List.iter
    (fun (_, v) ->
      if v < 0 || v >= t.nvars then
        invalid_arg "Lp.add_constraint: foreign variable")
    terms;
  let terms = List.map (fun (c, v) -> (c, (v : var :> int))) terms in
  t.constrs <- { terms; rel; rhs } :: t.constrs;
  t.nconstrs <- t.nconstrs + 1

let num_vars t = t.nvars
let num_constraints t = t.nconstrs
let var_name t v = t.vars.(v).name
let var_index v = (v : var)
let var_bounds t v = (t.vars.(v).lb, t.vars.(v).ub)

type solution = {
  objective : float;
  var_values : float array; (* original variables, creation order *)
}

type result = Optimal of solution | Infeasible | Unbounded | Aborted

(* Lowering: each original variable becomes either one shifted column
   (x = col + lb) or, when free, a difference of two columns. Finite upper
   bounds become extra <= rows. Each inequality gets one slack column. *)
type lowering = {
  col_of_var : int array; (* first column of each variable *)
  split : bool array; (* true if variable is free (two columns) *)
  nstd : int; (* structural columns (before slacks) *)
}

let lower_with t eff_lb =
  let col_of_var = Array.make t.nvars 0 in
  let split = Array.make t.nvars false in
  let next = ref 0 in
  for v = 0 to t.nvars - 1 do
    col_of_var.(v) <- !next;
    if eff_lb.(v) = neg_infinity then begin
      split.(v) <- true;
      next := !next + 2
    end
    else incr next
  done;
  { col_of_var; split; nstd = !next }

let solve ?(maximize = false) ?(eps = 1e-9) ?(overrides = []) t =
  let eff_lb = Array.init t.nvars (fun v -> t.vars.(v).lb) in
  let eff_ub = Array.init t.nvars (fun v -> t.vars.(v).ub) in
  List.iter
    (fun (v, (lb, ub)) ->
      if v < 0 || v >= t.nvars then invalid_arg "Lp.solve: foreign override";
      if lb > ub then invalid_arg "Lp.solve: override lb > ub";
      eff_lb.(v) <- Float.max eff_lb.(v) lb;
      eff_ub.(v) <- Float.min eff_ub.(v) ub;
      if eff_lb.(v) > eff_ub.(v) then
        (* keep going: the LP will come out infeasible via the bound rows *)
        ())
    overrides;
  (* fast infeasibility from contradictory overrides *)
  let contradictory = ref false in
  for v = 0 to t.nvars - 1 do
    if eff_lb.(v) > eff_ub.(v) then contradictory := true
  done;
  if !contradictory then Infeasible
  else
  let low = lower_with t eff_lb in
  (* Collect all rows: user constraints (newest first is fine; order is
     irrelevant) plus upper-bound rows. *)
  let ub_rows =
    let acc = ref [] in
    for v = t.nvars - 1 downto 0 do
      if eff_ub.(v) < infinity then
        (* x <= ub  ~>  col (+ lb) <= ub, and for free vars col+ - col- <= ub *)
        acc := { terms = [ (1.0, v) ]; rel = Le; rhs = eff_ub.(v) } :: !acc
    done;
    !acc
  in
  let rows = List.rev_append t.constrs ub_rows in
  let m = List.length rows in
  let nslack =
    List.fold_left
      (fun acc r -> match r.rel with Eq -> acc | Le | Ge -> acc + 1)
      0 rows
  in
  let ncols = low.nstd + nslack in
  let a = Array.make_matrix m ncols 0.0 in
  let b = Array.make m 0.0 in
  let next_slack = ref low.nstd in
  List.iteri
    (fun r { terms; rel; rhs } ->
      let rhs = ref rhs in
      List.iter
        (fun (coeff, v) ->
          let col = low.col_of_var.(v) in
          if low.split.(v) then begin
            a.(r).(col) <- a.(r).(col) +. coeff;
            a.(r).(col + 1) <- a.(r).(col + 1) -. coeff
          end
          else begin
            a.(r).(col) <- a.(r).(col) +. coeff;
            (* shift by lb: coeff * (col + lb) *)
            rhs := !rhs -. (coeff *. eff_lb.(v))
          end)
        terms;
      b.(r) <- !rhs;
      (match rel with
      | Eq -> ()
      | Le ->
          a.(r).(!next_slack) <- 1.0;
          incr next_slack
      | Ge ->
          a.(r).(!next_slack) <- -1.0;
          incr next_slack))
    rows;
  let c = Array.make ncols 0.0 in
  let sign = if maximize then -1.0 else 1.0 in
  for v = 0 to t.nvars - 1 do
    let col = low.col_of_var.(v) in
    let coeff = sign *. t.vars.(v).obj in
    if low.split.(v) then begin
      c.(col) <- coeff;
      c.(col + 1) <- -.coeff
    end
    else c.(col) <- coeff
  done;
  match Simplex.solve ~eps ~a ~b ~c () with
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded
  | Simplex.Iteration_limit -> Aborted
  | Simplex.Optimal { x; _ } ->
      let var_values =
        Array.init t.nvars (fun v ->
            let col = low.col_of_var.(v) in
            let raw =
              if low.split.(v) then x.(col) -. x.(col + 1)
              else x.(col) +. eff_lb.(v)
            in
            Float.min eff_ub.(v) (Float.max eff_lb.(v) raw))
      in
      let objective = ref 0.0 in
      for v = 0 to t.nvars - 1 do
        if t.vars.(v).obj <> 0.0 then
          objective := !objective +. (t.vars.(v).obj *. var_values.(v))
      done;
      Optimal { objective = !objective; var_values }

let objective_value s = s.objective
let value s v = s.var_values.(v)
let values s = Array.copy s.var_values
let is_vertex_hint _ = true

let pp_solution t ppf s =
  Format.fprintf ppf "@[<v>objective = %g@," s.objective;
  for v = 0 to t.nvars - 1 do
    if Float.abs s.var_values.(v) > 1e-12 then
      Format.fprintf ppf "%s = %g@," t.vars.(v).name s.var_values.(v)
  done;
  Format.fprintf ppf "@]"
