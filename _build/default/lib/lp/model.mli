(** Linear-program model builder on top of {!Simplex}.

    Variables carry bounds and objective coefficients; constraints are
    linear with [<=], [>=] or [=]. The builder lowers the model to standard
    form (shifting lower bounds, splitting free variables, adding slack
    columns and upper-bound rows) and recovers solution values in terms of
    the original variables. *)

type t
(** A mutable model under construction. *)

type var
(** A variable handle, valid only for the model that created it. *)

type relation = Le | Ge | Eq

val create : unit -> t

val add_var : ?lb:float -> ?ub:float -> ?obj:float -> t -> string -> var
(** [add_var t name] adds a variable. Defaults: [lb = 0.], [ub = infinity],
    [obj = 0.]. [lb = neg_infinity] makes the variable free. Raises
    [Invalid_argument] if [lb > ub] or a bound is NaN. *)

val add_constraint : t -> (float * var) list -> relation -> float -> unit
(** [add_constraint t terms rel rhs] adds [Σ coeff·var rel rhs]. Repeated
    variables in [terms] are summed. *)

val num_vars : t -> int
val num_constraints : t -> int
val var_name : t -> var -> string

val var_index : var -> int
(** Creation-order index of a variable (the index into {!values}). *)

val var_bounds : t -> var -> float * float

type solution

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Aborted  (** iteration limit / numerical breakdown *)

val solve :
  ?maximize:bool ->
  ?eps:float ->
  ?overrides:(var * (float * float)) list ->
  t ->
  result
(** Solve the model (default: minimize). The model may be solved repeatedly
    and extended between solves. [overrides] temporarily tightens variable
    bounds for this solve only — [(v, (lb, ub))] intersects [v]'s bounds
    with [[lb, ub]] — which is what branch and bound ({!Mip}) uses to fix
    variables without mutating the model. Contradictory overrides yield
    [Infeasible]. *)

val objective_value : solution -> float

val value : solution -> var -> float
(** Value of a variable in the solution, clamped to its bounds to absorb
    simplex round-off. *)

val values : solution -> float array
(** All variable values, indexed by creation order. *)

val is_vertex_hint : solution -> bool
(** Always true for solutions produced here: the simplex returns basic
    solutions, i.e. vertices. Exposed for documentation of intent at call
    sites that require extreme points. *)

val pp_solution : t -> Format.formatter -> solution -> unit
