(** Dense two-phase primal simplex on standard-form programs.

    Solves [min c·x] subject to [A x = b], [x >= 0] where [b >= 0] is not
    required (rows are normalized internally). Phase 1 minimizes the sum of
    artificial variables (slack columns that can serve as an initial basis
    are used directly); phase 2 optimizes [c]. Dantzig pricing with a
    switch to Bland's rule after a run of degenerate pivots guarantees
    termination.

    Optimal solutions are {e basic}, i.e. vertices of the polyhedron — a
    property the pseudo-forest rounding of Section 3.3 relies on. *)

type outcome =
  | Optimal of { objective : float; x : float array; basis : int array }
      (** [basis] holds the column index of the basic variable of each row
          (columns [>= n] are slacks/artificials). *)
  | Infeasible
  | Unbounded
  | Iteration_limit

val solve :
  ?max_iters:int ->
  ?eps:float ->
  a:float array array ->
  b:float array ->
  c:float array ->
  unit ->
  outcome
(** [solve ~a ~b ~c ()] with [a] of shape [m×n], [b] of length [m], [c] of
    length [n]. Input arrays are not modified. [eps] (default [1e-9]) is
    the feasibility/optimality tolerance; [max_iters] defaults to
    [200 * (m + n)]. Raises [Invalid_argument] on shape mismatches. *)
