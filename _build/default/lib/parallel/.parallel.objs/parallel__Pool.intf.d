lib/parallel/pool.mli:
