type task = Task of (unit -> unit) | Quit

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : task Queue.t;
  mutable workers : unit Domain.t list;
  size : int;
  mutable alive : bool;
}

let worker_loop pool =
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue do
      Condition.wait pool.nonempty pool.mutex
    done;
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    match task with
    | Quit -> ()
    | Task f ->
        f ();
        loop ()
  in
  loop ()

let create n =
  if n < 1 then invalid_arg "Pool.create: need at least one domain";
  let pool =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      workers = [];
      size = n;
      alive = true;
    }
  in
  pool.workers <-
    List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size t = t.size

(* Steal one task if available; returns false when the queue is empty. *)
let try_run_one t =
  Mutex.lock t.mutex;
  let task = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.mutex;
  match task with
  | Some (Task f) ->
      f ();
      true
  | Some Quit ->
      (* only shutdown enqueues Quit, and run never overlaps shutdown;
         put it back for a worker *)
      Mutex.lock t.mutex;
      Queue.push Quit t.queue;
      Condition.signal t.nonempty;
      Mutex.unlock t.mutex;
      false
  | None -> false

let run t thunks =
  if not t.alive then invalid_arg "Pool.run: pool was shut down";
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  let results = Array.make n None in
  let remaining = Atomic.make n in
  Mutex.lock t.mutex;
  Array.iteri
    (fun i thunk ->
      let run_one () =
        let outcome =
          match thunk () with
          | v -> Ok v
          | exception e -> Error e
        in
        results.(i) <- Some outcome;
        Atomic.decr remaining
      in
      Queue.push (Task run_one) t.queue)
    thunks;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  (* The caller helps drain the queue, then spins briefly for stragglers
     executing on workers. *)
  while try_run_one t do
    ()
  done;
  while Atomic.get remaining > 0 do
    Domain.cpu_relax ()
  done;
  Array.to_list
    (Array.map
       (fun cell ->
         match cell with
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false)
       results)

let map t f xs = run t (List.map (fun x () -> f x) xs)

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Mutex.lock t.mutex;
    List.iter (fun _ -> Queue.push Quit t.queue) t.workers;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers
  end

let default_jobs () = min 8 (Domain.recommended_domain_count ())
