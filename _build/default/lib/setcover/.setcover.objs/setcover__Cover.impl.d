lib/setcover/cover.ml: Array Fun List Lp Printf
