lib/setcover/cover.mli:
