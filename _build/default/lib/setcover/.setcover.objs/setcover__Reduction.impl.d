lib/setcover/reduction.ml: Array Core Cover Float List Workloads
