lib/setcover/reduction.mli: Core Cover Workloads
