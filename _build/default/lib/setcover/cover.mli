(** SetCover instances and solvers.

    Substrate for the hardness side of the paper (Section 3.2): the
    reduction of Theorem 3.5 maps SetCover instances to scheduling
    instances, and the classic F_2^d construction provides instances with
    integrality gap Θ(log N) that drive the gap experiment E4. *)

type t = private {
  universe : int;  (** elements are [0 .. universe-1] *)
  sets : int array array;  (** each set lists its elements, sorted *)
}

val make : universe:int -> sets:int array array -> t
(** Validates element ranges, sorts and dedups each set. Raises
    [Invalid_argument] if an element is out of range or the sets do not
    jointly cover the universe. *)

val num_sets : t -> int

val covers : t -> int list -> bool
(** Do the given set indices cover the whole universe? *)

val greedy : t -> int list
(** Chvátal's greedy algorithm: repeatedly pick the set covering the most
    uncovered elements. An [H_n]-approximation. *)

val exact : t -> int list
(** Minimum cover by branch and bound (exponential; fine for the small
    instances the gap experiment uses). *)

val lp_value : t -> float * float array
(** Optimal value and weights of the fractional relaxation
    [min Σ z_s  s.t.  Σ_{s ∋ e} z_s >= 1 for all e, z >= 0]. *)

val gap_instance : int -> t
(** [gap_instance d] is the classic integrality-gap family: the universe is
    the nonzero vectors of [F_2^d] ([N = 2^d - 1] elements) and for every
    nonzero [y] there is a set [S_y = { x | <x, y> = 1 }]. Its fractional
    cover value is [< 2] while every integral cover needs at least [d]
    sets, so the gap is [Ω(log N)].

    Raises [Invalid_argument] if [d < 2]. *)
