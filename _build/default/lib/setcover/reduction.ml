type t = {
  cover : Cover.t;
  target : int;
  num_classes : int;
  perms : int array array;
  instance : Core.Instance.t;
}

let build rng cover ~target =
  let m = Cover.num_sets cover in
  if target < 1 then invalid_arg "Reduction.build: target must be >= 1";
  if m < 2 then invalid_arg "Reduction.build: need at least two sets";
  let num_classes =
    int_of_float
      (Float.round
         (ceil (float_of_int m /. float_of_int target *. (log (float_of_int m) /. log 2.0))))
  in
  let num_classes = max 1 num_classes in
  let n_elems = cover.Cover.universe in
  let perms = Array.init num_classes (fun _ -> Workloads.Rng.permutation rng m) in
  (* membership.(s).(e) for O(1) eligibility lookups *)
  let membership = Array.make_matrix m n_elems false in
  Array.iteri
    (fun s elems -> Array.iter (fun e -> membership.(s).(e) <- true) elems)
    cover.Cover.sets;
  let n = num_classes * n_elems in
  let job_class = Array.init n (fun j -> j / n_elems) in
  let p =
    Array.init m (fun i ->
        Array.init n (fun j ->
            let k = j / n_elems and e = j mod n_elems in
            if membership.(perms.(k).(i)).(e) then 0.0 else infinity))
  in
  let setups = Array.make num_classes 1.0 in
  let instance = Core.Instance.unrelated ~p ~job_class ~setups () in
  { cover; target; num_classes; perms; instance }

let inverse_perm perm =
  let inv = Array.make (Array.length perm) 0 in
  Array.iteri (fun i s -> inv.(s) <- i) perm;
  inv

let schedule_from_cover t chosen =
  if not (Cover.covers t.cover chosen) then
    invalid_arg "Reduction.schedule_from_cover: not a cover";
  let n_elems = t.cover.Cover.universe in
  (* element -> first chosen set containing it *)
  let set_of_element = Array.make n_elems (-1) in
  List.iter
    (fun s ->
      Array.iter
        (fun e -> if set_of_element.(e) < 0 then set_of_element.(e) <- s)
        t.cover.Cover.sets.(s))
    chosen;
  let n = Core.Instance.num_jobs t.instance in
  let inv = Array.map inverse_perm t.perms in
  let assignment =
    Array.init n (fun j ->
        let k = j / n_elems and e = j mod n_elems in
        inv.(k).(set_of_element.(e)))
  in
  Core.Schedule.make t.instance assignment

let setups_makespan_bound t chosen =
  let m = Cover.num_sets t.cover in
  let in_cover = Array.make m false in
  List.iter (fun s -> in_cover.(s) <- true) chosen;
  let worst = ref 0 in
  for i = 0 to m - 1 do
    let count = ref 0 in
    Array.iter (fun perm -> if in_cover.(perm.(i)) then incr count) t.perms;
    if !count > !worst then worst := !count
  done;
  !worst

let fractional_makespan_bound t z =
  let m = Cover.num_sets t.cover in
  if Array.length z <> m then
    invalid_arg "Reduction.fractional_makespan_bound: weight vector size";
  let worst = ref 0.0 in
  for i = 0 to m - 1 do
    let sum = ref 0.0 in
    Array.iter (fun perm -> sum := !sum +. z.(perm.(i))) t.perms;
    if !sum > !worst then worst := !sum
  done;
  !worst

let integral_lower_bound t =
  let c = List.length (Cover.exact t.cover) in
  float_of_int (t.num_classes * c) /. float_of_int (Cover.num_sets t.cover)
