(** The randomized reduction of Theorem 3.5: SetCover → scheduling with
    setup times on (restricted-assignment-style) unrelated machines.

    Given a SetCover instance with [m] sets and a target cover size [t],
    the reduction builds a scheduling instance with [m] machines and
    [K = ceil (m/t · log2 m)] classes, all setup times 1. For each class
    [k] a uniformly random permutation [π_k] maps machines to sets; class
    [k] contains one job per universe element [e] with

      [p_{i, j_e^k} = 0]  if [e ∈ S_{π_k(i)}],  [∞] otherwise.

    A schedule's makespan is then essentially the maximum number of
    setups any machine performs: Yes-instances (cover of size [t]) give
    makespan [O(K·t/m + log m)] w.h.p., No-instances force [Ω(K·αt/m)]. *)

type t = private {
  cover : Cover.t;
  target : int;  (** the parameter [t] *)
  num_classes : int;
  perms : int array array;  (** [perms.(k).(i)] = set handled by machine [i]
                                for class [k] *)
  instance : Core.Instance.t;
}

val build : Workloads.Rng.t -> Cover.t -> target:int -> t
(** Raises [Invalid_argument] if [target < 1] or the SetCover instance has
    fewer than 2 sets. *)

val schedule_from_cover : t -> int list -> Core.Schedule.t
(** Turn a (full) cover into the schedule the Yes-case of the theorem
    constructs: machine [i] is set up for class [k] iff [π_k(i)] is in the
    cover, and each job runs on such a machine. Raises [Invalid_argument]
    if the sets do not cover the universe. *)

val setups_makespan_bound : t -> int list -> int
(** [max_i |{k : π_k(i) ∈ cover}|]: the makespan of
    {!schedule_from_cover} (all setups are 1 and all eligible jobs have
    size 0). *)

val fractional_makespan_bound : t -> float array -> float
(** [fractional_makespan_bound r z] for a feasible fractional cover [z]
    (from {!Cover.lp_value}): the value [max_i Σ_k z_{π_k(i)}], which is
    the makespan of a feasible fractional solution of the scheduling LP
    relaxation ILP-UM — hence an upper bound on the LP optimum and a sound
    denominator for integrality-gap measurements. *)

val integral_lower_bound : t -> float
(** [K · c / m] where [c] is the exact minimum cover size: every class
    needs at least [c] setups, so some machine carries at least this many.
    Valid lower bound on the optimal integral makespan. *)
