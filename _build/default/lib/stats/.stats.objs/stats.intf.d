lib/stats/stats.mli: Table
