lib/stats/table.mli:
