module Table = Table

let nonempty name xs =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty input")

let mean xs =
  nonempty "mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let geomean xs =
  nonempty "geomean" xs;
  Array.iter
    (fun x -> if x <= 0.0 then invalid_arg "Stats.geomean: nonpositive entry")
    xs;
  exp (Array.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int (Array.length xs))

let stddev xs =
  nonempty "stddev" xs;
  let n = Array.length xs in
  if n = 1 then 0.0
  else begin
    let mu = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let minimum xs =
  nonempty "minimum" xs;
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  nonempty "maximum" xs;
  Array.fold_left Float.max xs.(0) xs

let quantile xs q =
  nonempty "quantile" xs;
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0, 1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  let frac = pos -. floor pos in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let median xs = quantile xs 0.5
