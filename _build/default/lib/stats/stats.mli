(** Summary statistics for experiment reporting. *)

module Table = Table
(** Re-export: aligned ASCII tables. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on empty input. *)

val geomean : float array -> float
(** Geometric mean; all entries must be positive. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for singletons. *)

val minimum : float array -> float
val maximum : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [[0, 1]], linear interpolation between order
    statistics. *)

val median : float array -> float
