type t = { headers : string array; mutable rows : string array list }

let create headers =
  if headers = [] then invalid_arg "Table.create: need at least one column";
  { headers = Array.of_list headers; rows = [] }

let add_row t cells =
  let row = Array.of_list cells in
  if Array.length row <> Array.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- row :: t.rows

let format_float ~decimals x =
  if x = infinity then "inf"
  else if x = neg_infinity then "-inf"
  else Printf.sprintf "%.*f" decimals x

let add_float_row t ?(decimals = 3) cells =
  add_row t (List.map (format_float ~decimals) cells)

let num_rows t = List.length t.rows

let looks_numeric s =
  s <> ""
  && String.for_all
       (fun ch -> (ch >= '0' && ch <= '9') || ch = '.' || ch = '-' || ch = '+' || ch = 'e' || ch = 'x')
       s

let to_string t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.headers in
  let width = Array.make ncols 0 in
  let account row =
    Array.iteri (fun c cell -> width.(c) <- max width.(c) (String.length cell)) row
  in
  account t.headers;
  List.iter account rows;
  let buf = Buffer.create 256 in
  let render_row row =
    Array.iteri
      (fun c cell ->
        let pad = width.(c) - String.length cell in
        if c > 0 then Buffer.add_string buf "  ";
        if looks_numeric cell then begin
          Buffer.add_string buf (String.make pad ' ');
          Buffer.add_string buf cell
        end
        else begin
          Buffer.add_string buf cell;
          if c < ncols - 1 then Buffer.add_string buf (String.make pad ' ')
        end)
      row;
    Buffer.add_char buf '\n'
  in
  render_row t.headers;
  Array.iteri
    (fun c w ->
      if c > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make w '-'))
    width;
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf

let csv_escape cell =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let buf = Buffer.create 256 in
  let row cells =
    Buffer.add_string buf
      (String.concat "," (List.map csv_escape (Array.to_list cells)));
    Buffer.add_char buf '\n'
  in
  row t.headers;
  List.iter row (List.rev t.rows);
  Buffer.contents buf

let print t = print_string (to_string t)
