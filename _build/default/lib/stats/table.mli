(** Aligned ASCII tables for the experiment harness. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width does not match the
    headers. *)

val add_float_row : t -> ?decimals:int -> float list -> unit
(** Convenience: formats each float with the given precision (default 3);
    infinities render as [inf]. *)

val num_rows : t -> int

val to_string : t -> string
(** Render with column alignment, a header separator line, and single-space
    column gaps. Numeric-looking cells are right-aligned. *)

val to_csv : t -> string
(** Comma-separated rendering (header first), with minimal quoting. *)

val print : t -> unit
(** [to_string] to stdout followed by a newline. *)
