lib/workloads/curated.ml: Array Core Fun List
