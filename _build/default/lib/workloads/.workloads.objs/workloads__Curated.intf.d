lib/workloads/curated.mli: Core
