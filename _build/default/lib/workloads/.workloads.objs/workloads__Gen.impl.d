lib/workloads/gen.ml: Array Core Float Rng
