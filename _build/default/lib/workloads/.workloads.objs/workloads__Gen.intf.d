lib/workloads/gen.mli: Core Rng
