lib/workloads/rng.mli:
