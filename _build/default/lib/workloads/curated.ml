let graham_lpt_worst ~m =
  if m < 2 then invalid_arg "Curated.graham_lpt_worst: need m >= 2";
  (* sizes 2m-1, 2m-1, 2m-2, 2m-2, ..., m+1, m+1, then three of size m *)
  let doubled =
    List.concat_map
      (fun s -> [ float_of_int s; float_of_int s ])
      (List.init (m - 1) (fun i -> (2 * m) - 1 - i))
  in
  let sizes = Array.of_list (doubled @ [ float_of_int m; float_of_int m; float_of_int m ]) in
  Core.Instance.identical ~num_machines:m ~sizes
    ~job_class:(Array.make (Array.length sizes) 0)
    ~setups:[| 0.0 |]

let setup_trap ~m ~jobs_per_class =
  if m < 1 || jobs_per_class < 1 then
    invalid_arg "Curated.setup_trap: need m >= 1 and jobs_per_class >= 1";
  let n = m * jobs_per_class in
  Core.Instance.identical ~num_machines:m ~sizes:(Array.make n 1.0)
    ~job_class:(Array.init n (fun j -> j / jobs_per_class))
    ~setups:(Array.make m (float_of_int jobs_per_class))

let dominant_class ~m =
  if m < 2 then invalid_arg "Curated.dominant_class: need m >= 2";
  let big = 4 * m in
  let sizes = Array.append (Array.make big 1.0) (Array.make (m - 1) 4.0) in
  let job_class =
    Array.append (Array.make big 0) (Array.init (m - 1) (fun i -> i + 1))
  in
  Core.Instance.identical ~num_machines:m ~sizes ~job_class
    ~setups:(Array.make m 1.0)

let speed_ladder ~groups =
  if groups < 1 || groups > 10 then
    invalid_arg "Curated.speed_ladder: groups must be in [1, 10]";
  let speeds = Array.init groups (fun g -> 8.0 ** float_of_int g) in
  let sizes = Array.init groups (fun g -> 8.0 ** float_of_int g) in
  let setups = Array.init groups (fun g -> (8.0 ** float_of_int g) /. 2.0) in
  Core.Instance.uniform ~speeds ~sizes
    ~job_class:(Array.init groups Fun.id)
    ~setups

(* Structural recognizers for the families whose optimum is pinned. *)

let optimum (t : Core.Instance.t) =
  let m = t.Core.Instance.num_machines in
  match t.Core.Instance.env with
  | Core.Instance.Identical
    when t.Core.Instance.setups = [| 0.0 |]
         && m >= 2
         && t.Core.Instance.sizes
            = (let reference = graham_lpt_worst ~m in
               reference.Core.Instance.sizes) ->
      Some (float_of_int (3 * m))
  | Core.Instance.Identical
    when Core.Instance.num_classes t = m
         && Array.for_all (fun p -> p = 1.0) t.Core.Instance.sizes
         && Array.length t.Core.Instance.sizes mod m = 0
         &&
         let jpc = Array.length t.Core.Instance.sizes / m in
         Array.for_all (fun s -> s = float_of_int jpc) t.Core.Instance.setups
         && t.Core.Instance.job_class
            = Array.init (m * jpc) (fun j -> j / jpc) ->
      let jpc = Array.length t.Core.Instance.sizes / m in
      Some (float_of_int (2 * jpc))
  | Core.Instance.Identical | Core.Instance.Uniform _
  | Core.Instance.Restricted _ | Core.Instance.Unrelated _ ->
      None
