(** Curated instance families with known structure.

    Unlike {!Gen}'s random draws, these are deterministic constructions
    whose optimal values or adversarial properties are known analytically;
    tests and ablations use them to probe worst-case behaviour rather than
    average-case noise. *)

val graham_lpt_worst : m:int -> Core.Instance.t
(** Graham's classic LPT worst case for identical machines, lifted to the
    setup model with one zero-setup class: [2m+1] jobs of sizes
    [2m-1, 2m-1, 2m-2, 2m-2, ..., m+1, m+1, m, m, m]. LPT achieves
    [(4/3 - 1/(3m))·OPT] with [OPT = 3m]. Raises [Invalid_argument] if
    [m < 2]. *)

val setup_trap : m:int -> jobs_per_class:int -> Core.Instance.t
(** The scatter trap of experiment E8, in purified form: [m] classes of
    [jobs_per_class] unit jobs with setup [jobs_per_class] on [m]
    identical machines. OPT assigns one class per machine
    ([2·jobs_per_class]); any schedule splitting every class across all
    machines pays [m] setups per machine. *)

val dominant_class : m:int -> Core.Instance.t
(** One class holding almost all volume ([4m] unit jobs, setup 1) plus
    [m-1] singleton classes: distinguishes setup-granularity batching
    (Lemma 2.1 placeholders) from wholesale batching ({!Algos.Batch_lpt}-
    style), which parks the big class on one machine. *)

val speed_ladder : groups:int -> Core.Instance.t
(** Uniform machines whose speeds span [groups] powers of 8 — one machine
    per speed [8^g] — with one matching job and class per rung. Exercises
    the PTAS speed-group machinery across many groups. Raises
    [Invalid_argument] if [groups < 1] or [groups > 10]. *)

val optimum : Core.Instance.t -> float option
(** Known optimal makespan for instances built by this module, when the
    construction pins it down: [Some (3m)] for {!graham_lpt_worst},
    [Some (2·jobs_per_class)] for {!setup_trap}, and [None] otherwise. *)
