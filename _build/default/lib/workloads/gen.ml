let check_common ~n ~m ~k =
  if n < k then invalid_arg "Gen: need at least one job per class (n >= k)";
  if m <= 0 || k <= 0 || n <= 0 then
    invalid_arg "Gen: n, m, k must be positive"

(* Integer-valued draw from a float range; keeps instances exact. *)
let draw_size rng (lo, hi) =
  Float.round (Rng.float_range rng lo hi)

let job_classes rng ~n ~k =
  Array.init n (fun j -> if j < k then j else Rng.int rng k)

let sizes_and_setups rng ~n ~k ~size_range ~setup_range =
  let sizes = Array.init n (fun _ -> draw_size rng size_range) in
  let setups = Array.init k (fun _ -> draw_size rng setup_range) in
  (sizes, setups)

let identical rng ~n ~m ~k ?(size_range = (1.0, 100.0))
    ?(setup_range = (5.0, 50.0)) () =
  check_common ~n ~m ~k;
  let sizes, setups = sizes_and_setups rng ~n ~k ~size_range ~setup_range in
  let job_class = job_classes rng ~n ~k in
  Core.Instance.identical ~num_machines:m ~sizes ~job_class ~setups

let uniform rng ~n ~m ~k ?(size_range = (1.0, 100.0))
    ?(setup_range = (5.0, 50.0)) ?(speed_range = (1.0, 4.0)) () =
  check_common ~n ~m ~k;
  let sizes, setups = sizes_and_setups rng ~n ~k ~size_range ~setup_range in
  let job_class = job_classes rng ~n ~k in
  let lo, hi = speed_range in
  if not (lo > 0.0 && hi >= lo) then
    invalid_arg "Gen.uniform: bad speed range";
  let speeds =
    Array.init m (fun _ -> exp (Rng.float_range rng (log lo) (log hi)))
  in
  (* Normalize so the slowest machine has speed exactly lo: keeps instances
     comparable across draws. *)
  let slowest = Array.fold_left Float.min infinity speeds in
  let speeds = Array.map (fun v -> v *. lo /. slowest) speeds in
  Core.Instance.uniform ~speeds ~sizes ~job_class ~setups

let unrelated rng ~n ~m ~k ?(size_range = (1.0, 100.0))
    ?(setup_range = (5.0, 50.0)) ?(machine_factor_range = (0.5, 2.0))
    ?(noise = 0.25) ?(ineligible_prob = 0.0) () =
  check_common ~n ~m ~k;
  if ineligible_prob < 0.0 || ineligible_prob >= 1.0 then
    invalid_arg "Gen.unrelated: ineligible_prob must be in [0, 1)";
  let sizes, setups = sizes_and_setups rng ~n ~k ~size_range ~setup_range in
  let job_class = job_classes rng ~n ~k in
  let flo, fhi = machine_factor_range in
  let factors =
    Array.init m (fun _ -> exp (Rng.float_range rng (log flo) (log fhi)))
  in
  let jitter () = Rng.float_range rng (1.0 /. (1.0 +. noise)) (1.0 +. noise) in
  let p =
    Array.init m (fun i ->
        Array.init n (fun j ->
            if Rng.float rng < ineligible_prob then infinity
            else Float.max 1.0 (Float.round (sizes.(j) *. factors.(i) *. jitter ()))))
  in
  (* guarantee each job a finite machine *)
  for j = 0 to n - 1 do
    let has_finite = ref false in
    for i = 0 to m - 1 do
      if p.(i).(j) < infinity then has_finite := true
    done;
    if not !has_finite then begin
      let i = Rng.int rng m in
      p.(i).(j) <- Float.max 1.0 (Float.round (sizes.(j) *. factors.(i)))
    end
  done;
  let setup_matrix =
    Array.init m (fun i ->
        Array.init k (fun c ->
            Float.max 1.0 (Float.round (setups.(c) *. factors.(i) *. jitter ()))))
  in
  Core.Instance.unrelated ~setup_matrix ~p ~job_class ~setups ()

let restricted_class_uniform rng ~n ~m ~k ?(size_range = (1.0, 100.0))
    ?(setup_range = (5.0, 50.0)) ?(min_eligible = 1) () =
  check_common ~n ~m ~k;
  if min_eligible < 1 || min_eligible > m then
    invalid_arg "Gen.restricted_class_uniform: min_eligible out of range";
  let sizes, setups = sizes_and_setups rng ~n ~k ~size_range ~setup_range in
  let job_class = job_classes rng ~n ~k in
  let class_machines =
    Array.init k (fun _ ->
        let count = min_eligible + Rng.int rng (m - min_eligible + 1) in
        let perm = Rng.permutation rng m in
        let set = Array.make m false in
        for idx = 0 to count - 1 do
          set.(perm.(idx)) <- true
        done;
        set)
  in
  let eligible =
    Array.init m (fun i -> Array.init n (fun j -> class_machines.(job_class.(j)).(i)))
  in
  Core.Instance.restricted ~eligible ~sizes ~job_class ~setups

let production_trace rng ~batches ~jobs_per_batch ~m ~k ?(zipf = 1.0)
    ?(size_range = (1.0, 100.0)) ?(setup_range = (20.0, 80.0))
    ?(speed_range = (1.0, 3.0)) () =
  if batches < k then
    invalid_arg "Gen.production_trace: need at least one batch per class";
  if jobs_per_batch < 1 then
    invalid_arg "Gen.production_trace: jobs_per_batch must be positive";
  check_common ~n:(batches * jobs_per_batch) ~m ~k;
  (* Zipf weights over classes *)
  let weights =
    Array.init k (fun rank -> 1.0 /. ((float_of_int (rank + 1)) ** zipf))
  in
  let total_weight = Array.fold_left ( +. ) 0.0 weights in
  let draw_class () =
    let x = Rng.float rng *. total_weight in
    let rec pick cls acc =
      if cls = k - 1 then cls
      else if acc +. weights.(cls) >= x then cls
      else pick (cls + 1) (acc +. weights.(cls))
    in
    pick 0 0.0
  in
  let n = batches * jobs_per_batch in
  let sizes = Array.make n 0.0 in
  let job_class = Array.make n 0 in
  for b = 0 to batches - 1 do
    let cls = if b < k then b else draw_class () in
    (* correlated sizes within the run: jitter around a per-run mean *)
    let mean = draw_size rng size_range in
    for idx = 0 to jobs_per_batch - 1 do
      let j = (b * jobs_per_batch) + idx in
      job_class.(j) <- cls;
      sizes.(j) <-
        Float.max 1.0
          (Float.round (mean *. Rng.float_range rng 0.7 1.3))
    done
  done;
  let setups = Array.init k (fun _ -> draw_size rng setup_range) in
  let lo, hi = speed_range in
  if not (lo > 0.0 && hi >= lo) then
    invalid_arg "Gen.production_trace: bad speed range";
  let speeds =
    Array.init m (fun _ -> exp (Rng.float_range rng (log lo) (log hi)))
  in
  let slowest = Array.fold_left Float.min infinity speeds in
  let speeds = Array.map (fun v -> v *. lo /. slowest) speeds in
  Core.Instance.uniform ~speeds ~sizes ~job_class ~setups

let class_uniform_ptimes rng ~n ~m ~k ?(ptime_range = (1.0, 100.0))
    ?(setup_range = (5.0, 50.0)) () =
  check_common ~n ~m ~k;
  let job_class = job_classes rng ~n ~k in
  let setups = Array.init k (fun _ -> draw_size rng setup_range) in
  let class_time =
    Array.init m (fun _ -> Array.init k (fun _ -> draw_size rng ptime_range))
  in
  let p = Array.init m (fun i -> Array.init n (fun j -> class_time.(i).(job_class.(j)))) in
  let setup_matrix =
    Array.init m (fun _ -> Array.init k (fun c -> setups.(c)))
  in
  Core.Instance.unrelated ~setup_matrix ~p ~job_class ~setups ()
