(** Random instance generators for the experiment suite.

    All generators guarantee that every class has at least one job (the
    first [k] jobs get classes [0..k-1]) and that every job is eligible on
    at least one machine. Sizes are drawn as integers (represented as
    floats) so that exact solvers and LP bounds stay numerically clean. *)

val identical :
  Rng.t ->
  n:int ->
  m:int ->
  k:int ->
  ?size_range:float * float ->
  ?setup_range:float * float ->
  unit ->
  Core.Instance.t

val uniform :
  Rng.t ->
  n:int ->
  m:int ->
  k:int ->
  ?size_range:float * float ->
  ?setup_range:float * float ->
  ?speed_range:float * float ->
  unit ->
  Core.Instance.t
(** Speeds are drawn log-uniformly from [speed_range] (default [(1, 4)]).
    The slowest machine is normalized to speed exactly [fst speed_range]. *)

val unrelated :
  Rng.t ->
  n:int ->
  m:int ->
  k:int ->
  ?size_range:float * float ->
  ?setup_range:float * float ->
  ?machine_factor_range:float * float ->
  ?noise:float ->
  ?ineligible_prob:float ->
  unit ->
  Core.Instance.t
(** Machine-correlated unrelated instances:
    [p_ij = round (p_j * f_i * u_ij)] where [f_i] is a machine factor and
    [u_ij] a noise term in [[1/(1+noise), 1+noise]]. With probability
    [ineligible_prob] an entry becomes infinite (at least one machine per
    job stays finite). Setup times get the same treatment per (machine,
    class). *)

val restricted_class_uniform :
  Rng.t ->
  n:int ->
  m:int ->
  k:int ->
  ?size_range:float * float ->
  ?setup_range:float * float ->
  ?min_eligible:int ->
  unit ->
  Core.Instance.t
(** Restricted assignment where all jobs of a class share one eligibility
    set (Section 3.3.1's model): each class draws a uniformly random
    machine subset of size in [[min_eligible, m]]. *)

val production_trace :
  Rng.t ->
  batches:int ->
  jobs_per_batch:int ->
  m:int ->
  k:int ->
  ?zipf:float ->
  ?size_range:float * float ->
  ?setup_range:float * float ->
  ?speed_range:float * float ->
  unit ->
  Core.Instance.t
(** Realistic order-book structure on uniform machines: jobs arrive in
    [batches] runs of [jobs_per_batch] jobs each; a run belongs to one
    class, classes are drawn with Zipf([zipf], default 1.0) popularity
    (a few hot product families, a long tail), and sizes within a run are
    correlated (drawn around a per-run mean). The first [k] runs cover
    each class once so no class is empty. Job indices follow arrival
    order, which is what makes the [Input] order of
    {!Algos.List_scheduling} meaningful on these instances. *)

val class_uniform_ptimes :
  Rng.t ->
  n:int ->
  m:int ->
  k:int ->
  ?ptime_range:float * float ->
  ?setup_range:float * float ->
  unit ->
  Core.Instance.t
(** Unrelated machines where all jobs of a class have equal processing time
    on any fixed machine (Section 3.3.2's model): one random time per
    (machine, class) pair. *)
