test/test_algos.ml: Alcotest Algos Array Core Float Fun List Option Parallel Printf QCheck QCheck_alcotest Workloads
