test/test_core.ml: Alcotest Array Core Filename Fun Printf Sys
