test/test_cross.ml: Alcotest Algos Array Core Float List QCheck QCheck_alcotest Workloads
