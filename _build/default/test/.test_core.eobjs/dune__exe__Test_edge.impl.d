test/test_edge.ml: Alcotest Algos Array Core List Printf Workloads
