test/test_experiments.ml: Alcotest Experiments List Option Printf Stats Str String
