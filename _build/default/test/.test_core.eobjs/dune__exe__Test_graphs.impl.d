test/test_graphs.ml: Alcotest Graphs Hashtbl List Option QCheck QCheck_alcotest
