test/test_parallel.ml: Alcotest Domain Fun List Parallel Printf Unix
