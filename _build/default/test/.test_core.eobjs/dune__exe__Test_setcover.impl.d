test/test_setcover.ml: Alcotest Array Core Fun List Printf Setcover Workloads
