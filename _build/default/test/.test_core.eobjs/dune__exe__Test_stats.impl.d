test/test_stats.ml: Alcotest Astring List Stats String
