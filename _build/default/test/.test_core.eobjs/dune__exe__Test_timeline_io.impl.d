test/test_timeline_io.ml: Alcotest Algos Array Astring Core Filename Float Format Fun List Printf String Sys Workloads
