test/test_timeline_io.mli:
