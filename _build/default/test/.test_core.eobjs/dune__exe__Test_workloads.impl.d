test/test_workloads.ml: Alcotest Array Core Float Fun List Printf QCheck QCheck_alcotest Workloads
