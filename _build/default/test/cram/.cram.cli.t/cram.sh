  $ schedtool gen --env identical -n 4 -m 2 -k 2 --seed 3
  $ schedtool gen --env uniform -n 6 -m 2 -k 2 --seed 5 -o inst.txt
  $ schedtool bounds inst.txt
  $ schedtool solve --algo exact --save best.sched inst.txt
  $ schedtool verify inst.txt best.sched | head -3
  $ schedtool compare --exact inst.txt
  $ schedtool solve --algo bogus inst.txt
  $ schedtool gen --env martian
  $ schedtool experiments --csv E4 | head -3
  $ schedtool solve -a portfolio inst.txt
