(* Cross-validation suite: independent implementations of the same
   mathematical object must agree. These are the strongest correctness
   tests in the repository because the compared code paths share almost
   nothing (assignment search vs multiplicity DP vs LP/MIP). *)

module I = Core.Instance

let gen_params =
  QCheck.Gen.(
    let* seed = int_range 1 1_000_000 in
    let* n = int_range 4 8 in
    let* m = int_range 2 3 in
    let* k = int_range 1 3 in
    return (seed, n, m, k))

(* Feasibility triple-check on identical machines: the exact optimum makes
   a guess just below it infeasible and the optimum itself feasible, for
   both the multiplicity DP and the configuration IP. *)
let prop_feasibility_agree_identical =
  QCheck.Test.make ~name:"DP and config-IP agree with B&B (identical)"
    ~count:25 (QCheck.make gen_params) (fun (seed, n, m, k) ->
      let rng = Workloads.Rng.create seed in
      let t = Workloads.Gen.identical rng ~n ~m ~k () in
      let opt = Algos.Exact.makespan t in
      let dp_at x = Algos.Ptas_dp.feasible t ~makespan:x <> None in
      let cfg_at x = Algos.Config_ip.feasible t ~makespan:x <> None in
      dp_at (opt +. 1e-6)
      && cfg_at (opt +. 1e-6)
      && (not (dp_at (opt -. 0.5)))
      && not (cfg_at (opt -. 0.5)))

let prop_feasibility_agree_uniform =
  QCheck.Test.make ~name:"DP and config-IP agree with B&B (uniform)"
    ~count:20 (QCheck.make gen_params) (fun (seed, n, m, k) ->
      let rng = Workloads.Rng.create seed in
      let t = Workloads.Gen.uniform rng ~n ~m ~k () in
      let opt = Algos.Exact.makespan t in
      let dp_at x = Algos.Ptas_dp.feasible t ~makespan:x <> None in
      let cfg_at x = Algos.Config_ip.feasible t ~makespan:x <> None in
      dp_at (opt *. (1.0 +. 1e-9))
      && cfg_at (opt *. (1.0 +. 1e-9))
      && (not (dp_at (opt *. 0.99)))
      && not (cfg_at (opt *. 0.99)))

(* Three exact solvers, one optimum. *)
let prop_exact_solvers_agree =
  QCheck.Test.make ~name:"B&B, ILP and config-IP optima coincide" ~count:10
    (QCheck.make gen_params) (fun (seed, n, m, k) ->
      let rng = Workloads.Rng.create seed in
      let t = Workloads.Gen.identical rng ~n ~m ~k () in
      let reference = Algos.Exact.makespan t in
      let ilp = Algos.Exact_ilp.solve t in
      let cfg = Algos.Config_ip.solve t in
      (not ilp.Algos.Exact_ilp.optimal)
      || Float.abs
           (ilp.Algos.Exact_ilp.result.Algos.Common.makespan -. reference)
         < 1e-6
         && Float.abs
              (cfg.Algos.Config_ip.result.Algos.Common.makespan -. reference)
            < 1e-6)

(* Parallel branch and bound must reproduce the sequential optimum. *)
let prop_parallel_exact_agrees =
  QCheck.Test.make ~name:"parallel B&B equals sequential B&B" ~count:20
    (QCheck.make gen_params) (fun (seed, n, m, k) ->
      let rng = Workloads.Rng.create seed in
      let t =
        match seed mod 3 with
        | 0 -> Workloads.Gen.identical rng ~n ~m ~k ()
        | 1 -> Workloads.Gen.uniform rng ~n ~m ~k ()
        | _ -> Workloads.Gen.unrelated rng ~n ~m ~k ()
      in
      let seq = Algos.Exact.solve t in
      let par = Algos.Exact_parallel.solve t in
      par.Algos.Exact_parallel.optimal
      && Float.abs
           (par.Algos.Exact_parallel.result.Algos.Common.makespan
           -. seq.Algos.Exact.result.Algos.Common.makespan)
         < 1e-9)

(* LP bound <= splittable guess <= integral optimum-ish chain. *)
let prop_relaxation_chain =
  QCheck.Test.make ~name:"LP lower <= OPT and splittable guess <= OPT(1+tol)"
    ~count:15 (QCheck.make gen_params) (fun (seed, n, m, k) ->
      let rng = Workloads.Rng.create seed in
      let t = Workloads.Gen.restricted_class_uniform rng ~n ~m ~k () in
      let opt = Algos.Exact.makespan t in
      let lp = Algos.Lp_um.lower_bound t in
      let frac = Algos.Splittable.schedule t in
      lp.Algos.Lp_um.lower <= opt +. 1e-6
      && frac.Algos.Splittable.guess <= (opt *. 1.03) +. 1e-6)

(* The combinatorial bounds sandwich every algorithm's output. *)
let prop_bounds_sandwich_everything =
  QCheck.Test.make ~name:"lower bound <= every schedule <= naive upper"
    ~count:20 (QCheck.make gen_params) (fun (seed, n, m, k) ->
      let rng = Workloads.Rng.create seed in
      let t = Workloads.Gen.uniform rng ~n ~m ~k () in
      let lb = Core.Bounds.lower_bound t in
      let ub = Core.Bounds.naive_upper_bound t in
      let opt = Algos.Exact.makespan t in
      let greedy = (Algos.List_scheduling.schedule t).Algos.Common.makespan in
      lb <= opt +. 1e-9 && opt <= greedy +. 1e-9 && opt <= ub +. 1e-9)

(* Lemma 2.8 roundtrip as a property: on identical machines the optimal
   schedule always induces a valid relaxed schedule, and converting back
   stays within the lemma's factor. *)
let prop_lemma_28_roundtrip =
  QCheck.Test.make ~name:"Lemma 2.8 roundtrip within (1+eps)^4" ~count:20
    (QCheck.make gen_params) (fun (seed, n, m, k) ->
      let rng = Workloads.Rng.create seed in
      let t = Workloads.Gen.identical rng ~n ~m ~k () in
      let eps = if seed mod 2 = 0 then 0.5 else 0.25 in
      let exact = Algos.Exact.solve t in
      let opt = exact.Algos.Exact.result.Algos.Common.makespan in
      let ctx = Algos.Relaxed_schedule.make_ctx ~eps ~makespan:opt t in
      let relaxed =
        Algos.Relaxed_schedule.of_schedule ctx
          exact.Algos.Exact.result.Algos.Common.schedule
      in
      Algos.Relaxed_schedule.is_valid ctx relaxed
      &&
      let back = Algos.Relaxed_schedule.to_schedule ctx relaxed in
      Core.Schedule.makespan back <= (((1.0 +. eps) ** 4.0) *. opt) +. 1e-6)

(* Schedule serialization roundtrips compose with the timeline. *)
let prop_io_timeline_consistent =
  QCheck.Test.make ~name:"io roundtrip preserves timeline horizon" ~count:20
    (QCheck.make gen_params) (fun (seed, n, m, k) ->
      let rng = Workloads.Rng.create seed in
      let t = Workloads.Gen.unrelated rng ~n ~m ~k () in
      let r = Algos.List_scheduling.schedule t in
      let s = r.Algos.Common.schedule in
      let s' = Core.Schedule_io.of_string t (Core.Schedule_io.to_string s) in
      let horizon sched =
        Array.fold_left
          (fun acc events ->
            List.fold_left
              (fun acc e -> Float.max acc e.Core.Timeline.finish)
              acc events)
          0.0
          (Core.Timeline.of_schedule t sched)
      in
      Float.abs (horizon s -. horizon s') < 1e-9
      && Float.abs (horizon s -. Core.Schedule.makespan s) < 1e-9)

let () =
  Alcotest.run "cross-validation"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_parallel_exact_agrees;
            prop_feasibility_agree_identical;
            prop_feasibility_agree_uniform;
            prop_exact_solvers_agree;
            prop_relaxation_chain;
            prop_bounds_sandwich_everything;
            prop_lemma_28_roundtrip;
            prop_io_timeline_consistent;
          ] );
    ]
