(* Edge-case robustness: degenerate instances every algorithm must handle
   without crashing or producing invalid schedules. *)

module I = Core.Instance
module S = Core.Schedule

let check_float = Alcotest.(check (float 1e-9))

let algorithms : (string * (I.t -> Algos.Common.result)) list =
  [
    ("greedy", fun t -> Algos.List_scheduling.schedule t);
    ("lpt", Algos.Lpt.schedule);
    ("batch-lpt", Algos.Batch_lpt.schedule);
    ("ptas", fun t -> Algos.Uniform_ptas.schedule ~eps:0.5 t);
    ( "rounding",
      fun t ->
        fst (Algos.Randomized_rounding.schedule (Workloads.Rng.create 1) t) );
    ("ra2", fun t -> Algos.Ra_class_uniform.schedule t);
    ("cu3", fun t -> Algos.Um_class_uniform.schedule t);
    ("exact", fun t -> (Algos.Exact.solve t).Algos.Exact.result);
  ]

let run_all name t ~expect_opt =
  List.iter
    (fun (algo_name, algo) ->
      match algo t with
      | r ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s valid" name algo_name)
            true
            (S.is_valid t r.Algos.Common.schedule);
          (match expect_opt with
          | Some opt ->
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s >= OPT" name algo_name)
                true
                (r.Algos.Common.makespan >= opt -. 1e-9)
          | None -> ())
      | exception Invalid_argument _ -> ())
    algorithms

let test_zero_setups () =
  (* the classical problem: all setups zero *)
  let t =
    I.identical ~num_machines:3
      ~sizes:[| 5.0; 4.0; 3.0; 2.0; 1.0 |]
      ~job_class:[| 0; 0; 1; 1; 2 |]
      ~setups:[| 0.0; 0.0; 0.0 |]
  in
  run_all "zero setups" t ~expect_opt:(Some 5.0);
  check_float "exact finds classic optimum" 5.0 (Algos.Exact.makespan t)

let test_zero_sizes () =
  (* only setups matter *)
  let t =
    I.identical ~num_machines:2
      ~sizes:[| 0.0; 0.0; 0.0 |]
      ~job_class:[| 0; 1; 2 |]
      ~setups:[| 4.0; 4.0; 4.0 |]
  in
  run_all "zero sizes" t ~expect_opt:(Some 8.0);
  check_float "two setups on one machine" 8.0 (Algos.Exact.makespan t)

let test_single_machine () =
  let t =
    I.identical ~num_machines:1
      ~sizes:[| 3.0; 2.0; 1.0 |]
      ~job_class:[| 0; 1; 0 |]
      ~setups:[| 2.0; 5.0 |]
  in
  (* everything on the one machine: 6 + 7 = 13 *)
  run_all "single machine" t ~expect_opt:(Some 13.0);
  check_float "sum" 13.0 (Algos.Exact.makespan t)

let test_more_machines_than_jobs () =
  let t =
    I.identical ~num_machines:6 ~sizes:[| 9.0; 1.0 |] ~job_class:[| 0; 1 |]
      ~setups:[| 1.0; 1.0 |]
  in
  run_all "m > n" t ~expect_opt:(Some 10.0);
  check_float "spread out" 10.0 (Algos.Exact.makespan t)

let test_singleton_classes () =
  (* K = n: every job its own class; reduces to classic with size+setup *)
  let t =
    I.identical ~num_machines:2
      ~sizes:[| 4.0; 3.0; 2.0; 1.0 |]
      ~job_class:[| 0; 1; 2; 3 |]
      ~setups:[| 1.0; 1.0; 1.0; 1.0 |]
  in
  (* effective sizes 5,4,3,2 -> OPT 7 *)
  run_all "singleton classes" t ~expect_opt:(Some 7.0);
  check_float "classic packing" 7.0 (Algos.Exact.makespan t)

let test_one_class_everything () =
  let t =
    I.identical ~num_machines:3 ~sizes:(Array.make 9 2.0)
      ~job_class:(Array.make 9 0) ~setups:[| 6.0 |]
  in
  run_all "one class" t ~expect_opt:(Some 12.0);
  (* 3 jobs + setup each: 6+6 = 12 *)
  check_float "balanced with setups" 12.0 (Algos.Exact.makespan t)

let test_identical_sizes_many_ties () =
  let t =
    I.uniform ~speeds:[| 1.0; 1.0; 1.0 |] ~sizes:(Array.make 12 1.0)
      ~job_class:(Array.init 12 (fun j -> j mod 2))
      ~setups:[| 1.0; 1.0 |]
  in
  run_all "all ties" t ~expect_opt:None

let test_huge_value_ranges () =
  let t =
    I.identical ~num_machines:2
      ~sizes:[| 1e9; 1.0; 1e-3 |]
      ~job_class:[| 0; 0; 1 |]
      ~setups:[| 1e6; 1e-6 |]
  in
  run_all "huge ranges" t ~expect_opt:None;
  let exact = Algos.Exact.makespan t in
  Alcotest.(check bool) "dominated by the huge job" true (exact >= 1e9)

let test_extreme_speed_ratio () =
  let t =
    I.uniform
      ~speeds:[| 1.0; 1000.0 |]
      ~sizes:[| 10.0; 20.0; 30.0 |]
      ~job_class:[| 0; 1; 0 |]
      ~setups:[| 5.0; 5.0 |]
  in
  run_all "speed ratio 1000" t ~expect_opt:None;
  (* everything on the fast machine beats anything using the slow one *)
  let exact = Algos.Exact.makespan t in
  check_float "fast machine takes all" 0.07 exact

let test_restricted_single_option () =
  (* each job eligible on exactly one machine: forced schedule *)
  let t =
    I.restricted
      ~eligible:[| [| true; false; true |]; [| false; true; false |] |]
      ~sizes:[| 2.0; 3.0; 4.0 |] ~job_class:[| 0; 0; 1 |]
      ~setups:[| 1.0; 1.0 |]
  in
  run_all "forced assignment" t ~expect_opt:(Some 8.0);
  check_float "forced makespan" 8.0 (Algos.Exact.makespan t)

let () =
  Alcotest.run "edge-cases"
    [
      ( "degenerate instances",
        [
          Alcotest.test_case "zero setups" `Quick test_zero_setups;
          Alcotest.test_case "zero sizes" `Quick test_zero_sizes;
          Alcotest.test_case "single machine" `Quick test_single_machine;
          Alcotest.test_case "m > n" `Quick test_more_machines_than_jobs;
          Alcotest.test_case "singleton classes" `Quick test_singleton_classes;
          Alcotest.test_case "one class" `Quick test_one_class_everything;
          Alcotest.test_case "all ties" `Quick test_identical_sizes_many_ties;
          Alcotest.test_case "huge ranges" `Quick test_huge_value_ranges;
          Alcotest.test_case "extreme speeds" `Quick test_extreme_speed_ratio;
          Alcotest.test_case "forced assignment" `Quick
            test_restricted_single_option;
        ] );
    ]
