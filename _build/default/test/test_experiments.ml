(* Integration tests for the experiment harness: the registry, every
   experiment's table shape, and — where the table carries a proven bound
   column — that every measured ratio respects it. These literally execute
   the reproduction (with its fixed seeds), so they double as regression
   tests on the headline claims. *)

let find_exn id = Option.get (Experiments.Registry.find id)

let test_registry_complete () =
  let ids = List.map (fun e -> e.Experiments.Exp_common.id) Experiments.Registry.all in
  Alcotest.(check (list string)) "ids in order"
    [
      "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "A1"; "A2"; "A3";
      "A4"; "X1"; "X2";
    ]
    ids

let test_registry_find () =
  Alcotest.(check bool) "finds lowercase" true
    (Experiments.Registry.find "e3" <> None);
  Alcotest.(check bool) "unknown" true (Experiments.Registry.find "E99" = None)

(* Parse a rendered table back into cells (columns separated by 2+ spaces). *)
let parse_table table =
  let text = Stats.Table.to_string table in
  let lines = String.split_on_char '\n' text |> List.filter (( <> ) "") in
  match lines with
  | header :: _separator :: rows ->
      let split line =
        Str.split (Str.regexp "  +") line |> List.map String.trim
      in
      (split header, List.map split rows)
  | _ -> Alcotest.fail "table too short"

let column_values header rows name =
  match List.find_index (( = ) name) header with
  | None -> Alcotest.fail (Printf.sprintf "missing column %S" name)
  | Some idx -> List.map (fun row -> List.nth row idx) rows

let float_column header rows name =
  List.map float_of_string (column_values header rows name)

(* For E1/E5/E6: the measured max ratio must respect the bound column. *)
let check_bounded id =
  let e = find_exn id in
  let header, rows = parse_table (e.Experiments.Exp_common.run ()) in
  let maxima = float_column header rows "max ratio" in
  let bounds = float_column header rows "paper bound" in
  List.iter2
    (fun mx bound ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %.3f <= %.3f" id mx bound)
        true
        (mx <= bound +. 1e-9))
    maxima bounds;
  Alcotest.(check bool) (id ^ " has rows") true (rows <> [])

let test_e1_bound () = check_bounded "E1"
let test_e5_bound () = check_bounded "E5"
let test_e6_bound () = check_bounded "E6"

let test_e2_bound () =
  let e = find_exn "E2" in
  let header, rows = parse_table (e.Experiments.Exp_common.run ()) in
  let maxima = float_column header rows "max ratio" in
  let bounds = float_column header rows "guarantee" in
  List.iter2
    (fun mx g -> Alcotest.(check bool) "within guarantee" true (mx <= g))
    maxima bounds

let test_e3_normalized_flat () =
  let e = find_exn "E3" in
  let header, rows = parse_table (e.Experiments.Exp_common.run ()) in
  let normalized = float_column header rows "ratio/(ln n+ln m)" in
  (* the theorem's shape: the normalized ratio is bounded by a small
     constant on all sizes *)
  List.iter
    (fun v -> Alcotest.(check bool) "bounded constant" true (v < 1.5))
    normalized

let test_e4_gap_monotone () =
  let e = find_exn "E4" in
  let header, rows = parse_table (e.Experiments.Exp_common.run ()) in
  let gaps = float_column header rows "certified gap" in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a < b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "gap strictly grows with d" true (monotone gaps);
  (* fractional value stays below 2 on the F_2^d family *)
  let fracs = float_column header rows "frac UB" in
  List.iter
    (fun f -> Alcotest.(check bool) "fractional < 2" true (f < 2.0))
    fracs

let test_e7_exact_is_best () =
  let e = find_exn "E7" in
  let header, rows = parse_table (e.Experiments.Exp_common.run ()) in
  ignore header;
  (* every numeric cell is a ratio to OPT, hence >= 1 *)
  List.iter
    (fun row ->
      List.iteri
        (fun idx cell ->
          if idx > 0 && cell <> "-" then
            Alcotest.(check bool) "ratio >= 1" true
              (float_of_string cell >= 1.0 -. 1e-9))
        row)
    rows

let test_e8_crossover_shape () =
  let e = find_exn "E8" in
  let header, rows = parse_table (e.Experiments.Exp_common.run ()) in
  let head_to_head = float_column header rows "oblivious/aware" in
  (* at the largest setup scale the oblivious planner must lose clearly *)
  let last = List.nth head_to_head (List.length head_to_head - 1) in
  let first = List.hd head_to_head in
  Alcotest.(check bool) "crossover appears" true (last > first +. 0.1);
  Alcotest.(check bool) "never hugely below 1" true
    (List.for_all (fun v -> v > 0.9) head_to_head)

let test_e9_portfolio_wins () =
  let e = find_exn "E9" in
  let header, rows = parse_table (e.Experiments.Exp_common.run ()) in
  let portfolio = float_column header rows "portfolio" in
  List.iter2
    (fun p row ->
      (* portfolio <= every member column (same instances, same LB) *)
      List.iteri
        (fun idx cell ->
          if idx >= 4 then
            Alcotest.(check bool) "portfolio is min" true
              (p <= float_of_string cell +. 1e-9))
        row)
    portfolio rows

let test_a1_fallback_shrinks () =
  let e = find_exn "A1" in
  let header, rows = parse_table (e.Experiments.Exp_common.run ()) in
  let fallbacks = float_column header rows "mean fallback jobs" in
  let first = List.hd fallbacks in
  let last = List.nth fallbacks (List.length fallbacks - 1) in
  Alcotest.(check bool) "more rounds, fewer fallbacks" true (last <= first);
  Alcotest.(check (float 1e-9)) "c=6 has none" 0.0 last

let test_a2_proper_bounded () =
  let e = find_exn "A2" in
  let header, rows = parse_table (e.Experiments.Exp_common.run ()) in
  let proper_max = float_column header rows "lemma3.8 max" in
  List.iter
    (fun v ->
      Alcotest.(check bool) "Lemma 3.8 rounding stays within 2(1+tol)" true
        (v <= 2.0 *. 1.03))
    proper_max

let test_a3_probes_grow () =
  let e = find_exn "A3" in
  let header, rows = parse_table (e.Experiments.Exp_common.run ()) in
  let probes = float_column header rows "max probes" in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "tighter tolerance costs more probes" true
    (nondecreasing probes)

let test_x1_all_agree () =
  let e = find_exn "X1" in
  let header, rows = parse_table (e.Experiments.Exp_common.run ()) in
  List.iter
    (fun cell -> Alcotest.(check string) "solvers agree" "yes" cell)
    (column_values header rows "agree")

let test_x2_agrees () =
  let e = find_exn "X2" in
  let header, rows = parse_table (e.Experiments.Exp_common.run ()) in
  List.iter
    (fun cell -> Alcotest.(check string) "optima agree" "yes" cell)
    (column_values header rows "agree")

let test_a4_types_grow () =
  let e = find_exn "A4" in
  let header, rows = parse_table (e.Experiments.Exp_common.run ()) in
  let types = float_column header rows "mean item types" in
  let first = List.hd types in
  let last = List.nth types (List.length types - 1) in
  Alcotest.(check bool) "smaller eps, finer grid" true (last >= first)

let () =
  Alcotest.run "experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "find" `Quick test_registry_find;
        ] );
      ( "theorem experiments",
        [
          Alcotest.test_case "E1 respects 4.74" `Slow test_e1_bound;
          Alcotest.test_case "E2 respects guarantee" `Slow test_e2_bound;
          Alcotest.test_case "E3 normalized flat" `Slow
            test_e3_normalized_flat;
          Alcotest.test_case "E4 gap monotone" `Slow test_e4_gap_monotone;
          Alcotest.test_case "E5 respects 2" `Slow test_e5_bound;
          Alcotest.test_case "E6 respects 3" `Slow test_e6_bound;
          Alcotest.test_case "E7 ratios >= 1" `Slow test_e7_exact_is_best;
          Alcotest.test_case "E8 crossover" `Slow test_e8_crossover_shape;
          Alcotest.test_case "E9 portfolio wins" `Slow test_e9_portfolio_wins;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "A1 fallbacks shrink" `Slow
            test_a1_fallback_shrinks;
          Alcotest.test_case "A2 proper rounding bounded" `Slow
            test_a2_proper_bounded;
          Alcotest.test_case "A3 probes grow" `Slow test_a3_probes_grow;
          Alcotest.test_case "A4 grid grows" `Slow test_a4_types_grow;
        ] );
      ( "cross validation",
        [
          Alcotest.test_case "X1 solvers agree" `Slow test_x1_all_agree;
          Alcotest.test_case "X2 parallel agrees" `Slow test_x2_agrees;
        ] );
    ]
