(* Tests for union-find and the pseudo-forest rounding of Lemma 3.8. *)

module Uf = Graphs.Union_find
module Pf = Graphs.Pseudoforest

let test_union_find_basic () =
  let uf = Uf.create 5 in
  Alcotest.(check int) "initial sets" 5 (Uf.num_sets uf);
  Alcotest.(check bool) "union" true (Uf.union uf 0 1);
  Alcotest.(check bool) "re-union" false (Uf.union uf 1 0);
  Alcotest.(check bool) "same" true (Uf.same uf 0 1);
  Alcotest.(check bool) "different" false (Uf.same uf 0 2);
  ignore (Uf.union uf 2 3);
  ignore (Uf.union uf 1 3);
  Alcotest.(check int) "sets after unions" 2 (Uf.num_sets uf);
  Alcotest.(check bool) "transitive" true (Uf.same uf 0 2)

let test_union_find_path_compression () =
  let uf = Uf.create 100 in
  for i = 0 to 98 do
    ignore (Uf.union uf i (i + 1))
  done;
  Alcotest.(check int) "single set" 1 (Uf.num_sets uf);
  Alcotest.(check int) "find stable" (Uf.find uf 0) (Uf.find uf 99)

(* Lemma 3.8 property checks for a rounding result. *)
let check_lemma_38 name graph kept =
  let kept_tbl = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace kept_tbl e ()) kept;
  (* property 1: each machine keeps at most one edge *)
  let machine_deg = Hashtbl.create 16 in
  List.iter
    (fun (_, i) ->
      let d = 1 + Option.value ~default:0 (Hashtbl.find_opt machine_deg i) in
      Hashtbl.replace machine_deg i d;
      Alcotest.(check bool) (name ^ ": machine keeps <= 1 edge") true (d <= 1))
    kept;
  (* property 2: each class loses at most one edge *)
  let lost = Hashtbl.create 16 in
  List.iter
    (fun ((k, _) as e) ->
      if not (Hashtbl.mem kept_tbl e) then begin
        let d = 1 + Option.value ~default:0 (Hashtbl.find_opt lost k) in
        Hashtbl.replace lost k d;
        Alcotest.(check bool) (name ^ ": class loses <= 1 edge") true (d <= 1)
      end)
    (Pf.edges graph);
  (* kept edges are a subset of the graph's edges *)
  let all = Pf.edges graph in
  List.iter
    (fun e ->
      Alcotest.(check bool) (name ^ ": kept edge exists") true
        (List.mem e all))
    kept

let test_round_single_tree () =
  (* star: class 0 connected to machines 0,1,2 -> everything kept *)
  let g = Pf.create ~num_classes:1 ~num_machines:3 in
  Pf.add_edge g ~cls:0 ~machine:0;
  Pf.add_edge g ~cls:0 ~machine:1;
  Pf.add_edge g ~cls:0 ~machine:2;
  let kept = Pf.round g in
  Alcotest.(check int) "all kept" 3 (List.length kept);
  check_lemma_38 "star" g kept

let test_round_path () =
  (* path: m0 - c0 - m1 - c1 - m2: classes have degree 2 *)
  let g = Pf.create ~num_classes:2 ~num_machines:3 in
  Pf.add_edge g ~cls:0 ~machine:0;
  Pf.add_edge g ~cls:0 ~machine:1;
  Pf.add_edge g ~cls:1 ~machine:1;
  Pf.add_edge g ~cls:1 ~machine:2;
  let kept = Pf.round g in
  check_lemma_38 "path" g kept;
  (* every class of degree >= 2 keeps at least one edge *)
  List.iter
    (fun k ->
      Alcotest.(check bool) "class keeps an edge" true
        (List.exists (fun (k', _) -> k' = k) kept))
    [ 0; 1 ]

let test_round_cycle () =
  (* 4-cycle c0 - m0 - c1 - m1 - c0 *)
  let g = Pf.create ~num_classes:2 ~num_machines:2 in
  Pf.add_edge g ~cls:0 ~machine:0;
  Pf.add_edge g ~cls:1 ~machine:0;
  Pf.add_edge g ~cls:1 ~machine:1;
  Pf.add_edge g ~cls:0 ~machine:1;
  Alcotest.(check bool) "is pseudoforest" true (Pf.is_pseudoforest g);
  let kept = Pf.round g in
  check_lemma_38 "cycle" g kept;
  List.iter
    (fun k ->
      Alcotest.(check bool) "cycle class keeps an edge" true
        (List.exists (fun (k', _) -> k' = k) kept))
    [ 0; 1 ]

let test_round_cycle_with_tail () =
  (* 4-cycle plus a pending machine and a pending class *)
  let g = Pf.create ~num_classes:3 ~num_machines:4 in
  Pf.add_edge g ~cls:0 ~machine:0;
  Pf.add_edge g ~cls:1 ~machine:0;
  Pf.add_edge g ~cls:1 ~machine:1;
  Pf.add_edge g ~cls:0 ~machine:1;
  Pf.add_edge g ~cls:0 ~machine:2 (* tail machine *);
  Pf.add_edge g ~cls:2 ~machine:2 (* tail class, degree 2 *);
  Pf.add_edge g ~cls:2 ~machine:3;
  let kept = Pf.round g in
  check_lemma_38 "cycle+tail" g kept;
  List.iter
    (fun k ->
      Alcotest.(check bool) "class keeps an edge" true
        (List.exists (fun (k', _) -> k' = k) kept))
    [ 0; 1; 2 ]

let test_round_multiple_components () =
  let g = Pf.create ~num_classes:4 ~num_machines:6 in
  (* component A: cycle *)
  Pf.add_edge g ~cls:0 ~machine:0;
  Pf.add_edge g ~cls:1 ~machine:0;
  Pf.add_edge g ~cls:1 ~machine:1;
  Pf.add_edge g ~cls:0 ~machine:1;
  (* component B: tree *)
  Pf.add_edge g ~cls:2 ~machine:2;
  Pf.add_edge g ~cls:2 ~machine:3;
  Pf.add_edge g ~cls:3 ~machine:3;
  Pf.add_edge g ~cls:3 ~machine:4;
  let kept = Pf.round g in
  check_lemma_38 "two components" g kept;
  Alcotest.(check int) "two components found" 2 (List.length (Pf.components g))

let test_not_pseudoforest () =
  (* K_{2,3} has two independent cycles *)
  let g = Pf.create ~num_classes:2 ~num_machines:3 in
  for i = 0 to 2 do
    Pf.add_edge g ~cls:0 ~machine:i;
    Pf.add_edge g ~cls:1 ~machine:i
  done;
  Alcotest.(check bool) "detected" false (Pf.is_pseudoforest g);
  Alcotest.(check bool) "round raises" true
    (try
       ignore (Pf.round g);
       false
     with Pf.Not_pseudoforest -> true)

let test_duplicate_edges_ignored () =
  let g = Pf.create ~num_classes:1 ~num_machines:1 in
  Pf.add_edge g ~cls:0 ~machine:0;
  Pf.add_edge g ~cls:0 ~machine:0;
  Alcotest.(check int) "deduped" 1 (Pf.num_edges g)

let test_edge_validation () =
  let g = Pf.create ~num_classes:1 ~num_machines:1 in
  Alcotest.(check bool) "range checked" true
    (try
       Pf.add_edge g ~cls:1 ~machine:0;
       false
     with Invalid_argument _ -> true)

(* Property: random pseudoforests always round to a set satisfying the two
   Lemma 3.8 properties. We generate random forests plus at most one extra
   edge per component (keeping the pseudoforest property), mimicking LP
   support graphs where classes have degree >= 2. *)
let random_pseudoforest_gen =
  QCheck.Gen.(
    let* k = int_range 2 6 in
    let* m = int_range 2 8 in
    let* edge_picks = list_size (int_range 1 20) (pair (int_bound (k - 1)) (int_bound (m - 1))) in
    return (k, m, edge_picks))

let prop_random_round =
  QCheck.Test.make ~name:"random graphs: rounding obeys Lemma 3.8" ~count:200
    (QCheck.make random_pseudoforest_gen)
    (fun (k, m, picks) ->
      (* Add edges one by one, keeping an edge only if the graph stays a
         pseudoforest — mirrors how sparse LP support graphs look. *)
      let acc = ref [] in
      List.iter
        (fun (c, i) ->
          let trial = Pf.create ~num_classes:k ~num_machines:m in
          List.iter (fun (c', i') -> Pf.add_edge trial ~cls:c' ~machine:i') (List.rev !acc);
          Pf.add_edge trial ~cls:c ~machine:i;
          if Pf.is_pseudoforest trial then acc := (c, i) :: !acc)
        picks;
      let g = Pf.create ~num_classes:k ~num_machines:m in
      List.iter (fun (c, i) -> Pf.add_edge g ~cls:c ~machine:i) (List.rev !acc);
      let kept = Pf.round g in
      let kept_tbl = Hashtbl.create 16 in
      List.iter (fun e -> Hashtbl.replace kept_tbl e ()) kept;
      let ok = ref true in
      (* property 1 *)
      let machine_deg = Hashtbl.create 16 in
      List.iter
        (fun (_, i) ->
          let d = 1 + Option.value ~default:0 (Hashtbl.find_opt machine_deg i) in
          Hashtbl.replace machine_deg i d;
          if d > 1 then ok := false)
        kept;
      (* property 2 *)
      let lost = Hashtbl.create 16 in
      List.iter
        (fun ((c, _) as e) ->
          if not (Hashtbl.mem kept_tbl e) then begin
            let d = 1 + Option.value ~default:0 (Hashtbl.find_opt lost c) in
            Hashtbl.replace lost c d;
            if d > 1 then ok := false
          end)
        (Pf.edges g);
      !ok)

let () =
  Alcotest.run "graphs"
    [
      ( "union find",
        [
          Alcotest.test_case "basic" `Quick test_union_find_basic;
          Alcotest.test_case "path compression" `Quick
            test_union_find_path_compression;
        ] );
      ( "pseudoforest",
        [
          Alcotest.test_case "single tree" `Quick test_round_single_tree;
          Alcotest.test_case "path" `Quick test_round_path;
          Alcotest.test_case "cycle" `Quick test_round_cycle;
          Alcotest.test_case "cycle with tail" `Quick
            test_round_cycle_with_tail;
          Alcotest.test_case "multiple components" `Quick
            test_round_multiple_components;
          Alcotest.test_case "not pseudoforest" `Quick test_not_pseudoforest;
          Alcotest.test_case "duplicate edges" `Quick
            test_duplicate_edges_ignored;
          Alcotest.test_case "edge validation" `Quick test_edge_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_random_round ] );
    ]
