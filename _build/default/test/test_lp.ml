(* Tests for the LP substrate: raw simplex and the model builder. *)

let check_float tol = Alcotest.(check (float tol))

(* --- Raw simplex ------------------------------------------------------- *)

(* min -x - y  s.t.  x + y + s1 = 4, x + s2 = 3, y + s3 = 2  -> x=3, y=1 *)
let test_simplex_basic () =
  match
    Lp.Simplex.solve
      ~a:
        [|
          [| 1.0; 1.0; 1.0; 0.0; 0.0 |];
          [| 1.0; 0.0; 0.0; 1.0; 0.0 |];
          [| 0.0; 1.0; 0.0; 0.0; 1.0 |];
        |]
      ~b:[| 4.0; 3.0; 2.0 |]
      ~c:[| -1.0; -1.0; 0.0; 0.0; 0.0 |]
      ()
  with
  | Lp.Simplex.Optimal { objective; x; _ } ->
      check_float 1e-8 "objective" (-4.0) objective;
      check_float 1e-8 "x" 3.0 x.(0);
      check_float 1e-8 "y" 1.0 x.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_infeasible () =
  (* x = 1 and x = 2 simultaneously *)
  match
    Lp.Simplex.solve
      ~a:[| [| 1.0 |]; [| 1.0 |] |]
      ~b:[| 1.0; 2.0 |] ~c:[| 0.0 |] ()
  with
  | Lp.Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_simplex_unbounded () =
  (* min -x s.t. x - y = 0: x can grow with y *)
  match
    Lp.Simplex.solve ~a:[| [| 1.0; -1.0 |] |] ~b:[| 0.0 |] ~c:[| -1.0; 0.0 |] ()
  with
  | Lp.Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_simplex_negative_rhs () =
  (* -x = -5  <=>  x = 5 *)
  match Lp.Simplex.solve ~a:[| [| -1.0 |] |] ~b:[| -5.0 |] ~c:[| 1.0 |] () with
  | Lp.Simplex.Optimal { x; _ } -> check_float 1e-8 "x" 5.0 x.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_degenerate () =
  (* A degenerate corner: multiple constraints meet at the optimum. *)
  match
    Lp.Simplex.solve
      ~a:
        [|
          [| 1.0; 1.0; 1.0; 0.0 |];
          [| 1.0; 1.0; 0.0; 1.0 |];
        |]
      ~b:[| 1.0; 1.0 |]
      ~c:[| -1.0; -2.0; 0.0; 0.0 |]
      ()
  with
  | Lp.Simplex.Optimal { objective; _ } ->
      check_float 1e-8 "objective" (-2.0) objective
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_shape_validation () =
  Alcotest.(check bool) "ragged rejected" true
    (try
       ignore (Lp.Simplex.solve ~a:[| [| 1.0 |] |] ~b:[| 1.0; 2.0 |] ~c:[| 0.0 |] ());
       false
     with Invalid_argument _ -> true)

(* Klee-Minty cube in d dimensions: max Σ 2^(d-i) x_i subject to the
   classic staircase constraints. The optimum is 5^d at the last vertex;
   simplex may walk many vertices but must land there. *)
let test_simplex_klee_minty () =
  List.iter
    (fun d ->
      let m = Lp.create () in
      let xs =
        Array.init d (fun i -> Lp.add_var ~obj:(2.0 ** float_of_int (d - 1 - i)) m (Printf.sprintf "x%d" i))
      in
      for i = 0 to d - 1 do
        let terms = ref [ (1.0, xs.(i)) ] in
        for j = 0 to i - 1 do
          terms := (2.0 ** float_of_int (i - j + 1), xs.(j)) :: !terms
        done;
        Lp.add_constraint m !terms Lp.Le (5.0 ** float_of_int (i + 1))
      done;
      match Lp.solve ~maximize:true m with
      | Lp.Optimal s ->
          check_float 1e-4
            (Printf.sprintf "Klee-Minty d=%d" d)
            (5.0 ** float_of_int d)
            (Lp.objective_value s)
      | _ -> Alcotest.fail "expected optimal")
    [ 2; 3; 4; 5; 6 ]

let test_simplex_redundant_rows () =
  (* the same constraint thrice plus an implied one: must not confuse
     phase 1 or the driving-out of artificials *)
  let m = Lp.create () in
  let x = Lp.add_var ~obj:1.0 m "x" in
  let y = Lp.add_var ~obj:1.0 m "y" in
  Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Eq 4.0;
  Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Eq 4.0;
  Lp.add_constraint m [ (2.0, x); (2.0, y) ] Lp.Eq 8.0;
  Lp.add_constraint m [ (1.0, x) ] Lp.Ge 1.0;
  match Lp.solve m with
  | Lp.Optimal s -> check_float 1e-7 "objective" 4.0 (Lp.objective_value s)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_badly_scaled () =
  let m = Lp.create () in
  let x = Lp.add_var ~obj:1e6 m "x" in
  let y = Lp.add_var ~obj:1e-4 m "y" in
  Lp.add_constraint m [ (1e5, x); (1e-3, y) ] Lp.Ge 10.0;
  Lp.add_constraint m [ (1.0, y) ] Lp.Le 1e6;
  match Lp.solve m with
  | Lp.Optimal s ->
      (* cost(y) = 1e6·(10 - 1e-3·y)/1e5 + 1e-4·y = 100 - 0.0099·y while
         x > 0, so the optimum sits at y = 1e4 (x = 0) with cost 1 *)
      check_float 1e-3 "scaled objective" 1.0 (Lp.objective_value s)
  | _ -> Alcotest.fail "expected optimal"

(* --- Model builder ----------------------------------------------------- *)

let test_lp_minimize () =
  let m = Lp.create () in
  let x = Lp.add_var ~obj:2.0 m "x" in
  let y = Lp.add_var ~obj:3.0 m "y" in
  Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Ge 10.0;
  Lp.add_constraint m [ (1.0, x) ] Lp.Le 4.0;
  match Lp.solve m with
  | Lp.Optimal s ->
      (* x = 4, y = 6 -> 8 + 18 = 26 *)
      check_float 1e-7 "objective" 26.0 (Lp.objective_value s);
      check_float 1e-7 "x" 4.0 (Lp.value s x);
      check_float 1e-7 "y" 6.0 (Lp.value s y)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_maximize () =
  let m = Lp.create () in
  let x = Lp.add_var ~obj:3.0 ~ub:2.0 m "x" in
  let y = Lp.add_var ~obj:1.0 m "y" in
  Lp.add_constraint m [ (1.0, x); (2.0, y) ] Lp.Le 8.0;
  match Lp.solve ~maximize:true m with
  | Lp.Optimal s ->
      (* x = 2 (ub), y = 3 -> 9 *)
      check_float 1e-7 "objective" 9.0 (Lp.objective_value s);
      check_float 1e-7 "x at ub" 2.0 (Lp.value s x)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_lower_bound_shift () =
  let m = Lp.create () in
  let x = Lp.add_var ~lb:5.0 ~obj:1.0 m "x" in
  Lp.add_constraint m [ (1.0, x) ] Lp.Le 100.0;
  match Lp.solve m with
  | Lp.Optimal s -> check_float 1e-7 "x sits at lb" 5.0 (Lp.value s x)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_free_variable () =
  let m = Lp.create () in
  let x = Lp.add_var ~lb:neg_infinity ~obj:1.0 m "x" in
  Lp.add_constraint m [ (1.0, x) ] Lp.Ge (-7.0);
  match Lp.solve m with
  | Lp.Optimal s -> check_float 1e-7 "negative optimum" (-7.0) (Lp.value s x)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_equality () =
  let m = Lp.create () in
  let x = Lp.add_var ~obj:1.0 m "x" in
  let y = Lp.add_var ~obj:1.0 m "y" in
  Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Eq 3.0;
  Lp.add_constraint m [ (1.0, x); (-1.0, y) ] Lp.Eq 1.0;
  match Lp.solve m with
  | Lp.Optimal s ->
      check_float 1e-7 "x" 2.0 (Lp.value s x);
      check_float 1e-7 "y" 1.0 (Lp.value s y)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_infeasible () =
  let m = Lp.create () in
  let x = Lp.add_var ~ub:1.0 m "x" in
  Lp.add_constraint m [ (1.0, x) ] Lp.Ge 2.0;
  Alcotest.(check bool) "infeasible" true (Lp.solve m = Lp.Infeasible)

let test_lp_unbounded () =
  let m = Lp.create () in
  let x = Lp.add_var ~obj:(-1.0) m "x" in
  ignore x;
  Alcotest.(check bool) "unbounded" true (Lp.solve m = Lp.Unbounded)

let test_lp_duplicate_terms () =
  let m = Lp.create () in
  let x = Lp.add_var ~obj:1.0 m "x" in
  (* x + x >= 4  <=>  x >= 2 *)
  Lp.add_constraint m [ (1.0, x); (1.0, x) ] Lp.Ge 4.0;
  match Lp.solve m with
  | Lp.Optimal s -> check_float 1e-7 "summed coeffs" 2.0 (Lp.value s x)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_resolve_after_extend () =
  let m = Lp.create () in
  let x = Lp.add_var ~obj:1.0 m "x" in
  Lp.add_constraint m [ (1.0, x) ] Lp.Ge 1.0;
  (match Lp.solve m with
  | Lp.Optimal s -> check_float 1e-7 "first" 1.0 (Lp.value s x)
  | _ -> Alcotest.fail "expected optimal");
  Lp.add_constraint m [ (1.0, x) ] Lp.Ge 5.0;
  match Lp.solve m with
  | Lp.Optimal s -> check_float 1e-7 "second" 5.0 (Lp.value s x)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_var_validation () =
  let m = Lp.create () in
  Alcotest.(check bool) "lb > ub rejected" true
    (try
       ignore (Lp.add_var ~lb:2.0 ~ub:1.0 m "x");
       false
     with Invalid_argument _ -> true);
  let m2 = Lp.create () in
  let x2 = Lp.add_var m2 "x" in
  ignore x2;
  Alcotest.(check int) "num_vars" 1 (Lp.num_vars m2)

let test_lp_overrides () =
  let m = Lp.create () in
  let x = Lp.add_var ~obj:1.0 ~ub:10.0 m "x" in
  Lp.add_constraint m [ (1.0, x) ] Lp.Ge 2.0;
  (* tightened bounds apply to a single solve only *)
  (match Lp.solve ~overrides:[ (x, (5.0, 10.0)) ] m with
  | Lp.Optimal s -> check_float 1e-7 "override floor" 5.0 (Lp.value s x)
  | _ -> Alcotest.fail "expected optimal");
  (match Lp.solve m with
  | Lp.Optimal s -> check_float 1e-7 "original bounds restored" 2.0 (Lp.value s x)
  | _ -> Alcotest.fail "expected optimal");
  (* overrides intersect with the declared bounds *)
  (match Lp.solve ~overrides:[ (x, (neg_infinity, 3.0)) ] m with
  | Lp.Optimal s -> check_float 1e-7 "ceiling respected" 2.0 (Lp.value s x)
  | _ -> Alcotest.fail "expected optimal");
  (* contradictory overrides are cleanly infeasible *)
  Alcotest.(check bool) "contradiction infeasible" true
    (Lp.solve ~overrides:[ (x, (4.0, 4.0)); (x, (6.0, 6.0)) ] m
    = Lp.Infeasible);
  Alcotest.(check bool) "fixing works" true
    (match Lp.solve ~overrides:[ (x, (7.0, 7.0)) ] m with
    | Lp.Optimal s -> Float.abs (Lp.value s x -. 7.0) < 1e-7
    | _ -> false)

(* --- MIP (branch and bound) --------------------------------------------- *)

let test_mip_knapsack () =
  (* max 10a + 6b + 4c  s.t.  a + b + c <= 2 (binary) -> 16 *)
  let m = Lp.create () in
  let a = Lp.add_var ~obj:10.0 ~ub:1.0 m "a" in
  let b = Lp.add_var ~obj:6.0 ~ub:1.0 m "b" in
  let c = Lp.add_var ~obj:4.0 ~ub:1.0 m "c" in
  Lp.add_constraint m [ (1.0, a); (1.0, b); (1.0, c) ] Lp.Le 2.0;
  match Lp.Mip.solve ~maximize:true m ~integer:[ a; b; c ] with
  | Lp.Mip.Optimal { objective; values } ->
      check_float 1e-6 "objective" 16.0 objective;
      check_float 1e-9 "a chosen" 1.0 values.(Lp.var_index a);
      check_float 1e-9 "b chosen" 1.0 values.(Lp.var_index b);
      check_float 1e-9 "c dropped" 0.0 values.(Lp.var_index c)
  | _ -> Alcotest.fail "expected optimal"

let test_mip_fractional_lp_integral_gap () =
  (* LP relaxation picks x = y = 1/2; integrality forces cost 3 *)
  let m = Lp.create () in
  let x = Lp.add_var ~obj:3.0 ~ub:1.0 m "x" in
  let y = Lp.add_var ~obj:3.0 ~ub:1.0 m "y" in
  Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Ge 1.0;
  (match Lp.solve m with
  | Lp.Optimal sol -> check_float 1e-6 "lp value" 3.0 (Lp.objective_value sol)
  | _ -> Alcotest.fail "lp should solve");
  match Lp.Mip.solve m ~integer:[ x; y ] with
  | Lp.Mip.Optimal { objective; _ } -> check_float 1e-6 "mip value" 3.0 objective
  | _ -> Alcotest.fail "expected optimal"

let test_mip_infeasible () =
  let m = Lp.create () in
  let x = Lp.add_var ~ub:1.0 m "x" in
  let y = Lp.add_var ~ub:1.0 m "y" in
  (* x + y = 1/2 has fractional solutions only *)
  Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Eq 0.5;
  Alcotest.(check bool) "infeasible" true
    (Lp.Mip.solve m ~integer:[ x; y ] = Lp.Mip.Infeasible)

let test_mip_mixed_continuous () =
  (* one binary switch, one continuous: min 5y + x, x >= 2 - 10y, x >= 0 *)
  let m = Lp.create () in
  let y = Lp.add_var ~obj:5.0 ~ub:1.0 m "y" in
  let x = Lp.add_var ~obj:1.0 m "x" in
  Lp.add_constraint m [ (1.0, x); (10.0, y) ] Lp.Ge 2.0;
  match Lp.Mip.solve m ~integer:[ y ] with
  | Lp.Mip.Optimal { objective; values } ->
      (* y = 0, x = 2 costs 2; y = 1 costs 5 *)
      check_float 1e-6 "objective" 2.0 objective;
      check_float 1e-9 "switch off" 0.0 values.(Lp.var_index y)
  | _ -> Alcotest.fail "expected optimal"

let test_mip_node_limit () =
  let m = Lp.create () in
  let vars = List.init 12 (fun i -> Lp.add_var ~obj:1.0 ~ub:1.0 m (string_of_int i)) in
  Lp.add_constraint m (List.map (fun v -> (1.0, v)) vars) Lp.Ge 5.5;
  Alcotest.(check bool) "no proof under tiny limit" true
    (Lp.Mip.solve ~node_limit:1 m ~integer:vars = Lp.Mip.No_proof)

let test_mip_validates_bounds () =
  let m = Lp.create () in
  let x = Lp.add_var m "x" in
  Alcotest.(check bool) "unbounded integer rejected" true
    (try
       ignore (Lp.Mip.solve m ~integer:[ x ]);
       false
     with Invalid_argument _ -> true)

let test_mip_general_integers () =
  (* min 7a + 5b  s.t.  3a + 2b >= 11, a,b integer in [0,6] -> a=1, b=4:
     7+20 = 27 (LP relaxation: a=0, b=5.5 -> 27.5... integer optimum by
     enumeration below) *)
  let m = Lp.create () in
  let a = Lp.add_var ~obj:7.0 ~ub:6.0 m "a" in
  let b = Lp.add_var ~obj:5.0 ~ub:6.0 m "b" in
  Lp.add_constraint m [ (3.0, a); (2.0, b) ] Lp.Ge 11.0;
  let best = ref infinity in
  for av = 0 to 6 do
    for bv = 0 to 6 do
      if (3 * av) + (2 * bv) >= 11 then
        best := Float.min !best (float_of_int ((7 * av) + (5 * bv)))
    done
  done;
  match Lp.Mip.solve m ~integer:[ a; b ] with
  | Lp.Mip.Optimal { objective; values } ->
      check_float 1e-6 "objective matches enumeration" !best objective;
      Alcotest.(check bool) "integral values" true
        (Float.is_integer values.(Lp.var_index a)
        && Float.is_integer values.(Lp.var_index b))
  | _ -> Alcotest.fail "expected optimal"

(* brute force 0/1 cross-check on random small MIPs *)
let mip_gen =
  QCheck.Gen.(
    let* nvars = int_range 2 5 in
    let* costs = array_size (return nvars) (float_range (-4.0) 4.0) in
    let* rows =
      list_size (int_range 1 3)
        (pair (array_size (return nvars) (float_range (-2.0) 2.0))
           (float_range 0.5 4.0))
    in
    return (nvars, costs, rows))

let prop_mip_matches_brute_force =
  QCheck.Test.make ~name:"MIP matches brute force on binary programs"
    ~count:80 (QCheck.make mip_gen) (fun (nvars, costs, rows) ->
      let m = Lp.create () in
      let vars =
        Array.init nvars (fun i ->
            Lp.add_var ~obj:costs.(i) ~ub:1.0 m (Printf.sprintf "v%d" i))
      in
      List.iter
        (fun (coeffs, rhs) ->
          Lp.add_constraint m
            (List.init nvars (fun i -> (coeffs.(i), vars.(i))))
            Lp.Le rhs)
        rows;
      (* brute force over all 2^nvars assignments *)
      let best = ref infinity in
      for mask = 0 to (1 lsl nvars) - 1 do
        let xs = Array.init nvars (fun i -> if mask land (1 lsl i) <> 0 then 1.0 else 0.0) in
        let feas =
          List.for_all
            (fun (coeffs, rhs) ->
              let lhs = ref 0.0 in
              Array.iteri (fun i x -> lhs := !lhs +. (coeffs.(i) *. x)) xs;
              !lhs <= rhs +. 1e-9)
            rows
        in
        if feas then begin
          let v = ref 0.0 in
          Array.iteri (fun i x -> v := !v +. (costs.(i) *. x)) xs;
          if !v < !best then best := !v
        end
      done;
      match Lp.Mip.solve m ~integer:(Array.to_list vars) with
      | Lp.Mip.Optimal { objective; _ } -> Float.abs (objective -. !best) < 1e-6
      | Lp.Mip.Infeasible -> !best = infinity
      | Lp.Mip.No_proof -> false)

(* --- Property tests ---------------------------------------------------- *)

(* Random transportation-style LPs are always feasible and bounded; the
   simplex must find a solution satisfying all constraints. *)
let transport_gen =
  QCheck.Gen.(
    let* sources = int_range 2 4 in
    let* sinks = int_range 2 4 in
    let* supply = array_size (return sources) (float_range 1.0 10.0) in
    let* cost =
      array_size (return (sources * sinks)) (float_range 0.0 5.0)
    in
    return (sources, sinks, supply, cost))

let prop_transport_feasible =
  QCheck.Test.make ~name:"transportation LPs solve to feasible optima"
    ~count:60
    (QCheck.make transport_gen)
    (fun (sources, sinks, supply, cost) ->
      let m = Lp.create () in
      let x =
        Array.init sources (fun s ->
            Array.init sinks (fun d ->
                Lp.add_var
                  ~obj:cost.((s * sinks) + d)
                  m
                  (Printf.sprintf "x_%d_%d" s d)))
      in
      (* ship all supply; sinks are uncapacitated *)
      for s = 0 to sources - 1 do
        Lp.add_constraint m
          (List.init sinks (fun d -> (1.0, x.(s).(d))))
          Lp.Eq supply.(s)
      done;
      match Lp.solve m with
      | Lp.Optimal sol ->
          let ok = ref true in
          for s = 0 to sources - 1 do
            let shipped = ref 0.0 in
            for d = 0 to sinks - 1 do
              let v = Lp.value sol x.(s).(d) in
              if v < -1e-7 then ok := false;
              shipped := !shipped +. v
            done;
            if Float.abs (!shipped -. supply.(s)) > 1e-6 then ok := false
          done;
          !ok
      | _ -> false)

(* Objective optimality cross-check: for random 2-variable LPs we can
   brute-force the optimum over a fine grid and the simplex must match or
   beat it (it optimizes exactly, the grid only approximately). *)
let lp2_gen =
  QCheck.Gen.(
    let* c1 = float_range (-3.0) 3.0 in
    let* c2 = float_range (-3.0) 3.0 in
    let* rows =
      list_size (int_range 1 4)
        (triple (float_range (-2.0) 2.0) (float_range (-2.0) 2.0)
           (float_range 0.5 6.0))
    in
    return (c1, c2, rows))

let prop_two_var_optimal =
  QCheck.Test.make ~name:"2-var LPs: simplex beats grid search" ~count:80
    (QCheck.make lp2_gen)
    (fun (c1, c2, rows) ->
      let m = Lp.create () in
      let x = Lp.add_var ~obj:c1 ~ub:10.0 m "x" in
      let y = Lp.add_var ~obj:c2 ~ub:10.0 m "y" in
      List.iter
        (fun (a1, a2, b) ->
          Lp.add_constraint m [ (a1, x); (a2, y) ] Lp.Le b)
        rows;
      (* (0,0) is feasible for all rows since b > 0, so never infeasible *)
      match Lp.solve m with
      | Lp.Optimal sol ->
          let best_grid = ref infinity in
          let steps = 60 in
          for i = 0 to steps do
            for j = 0 to steps do
              let xv = 10.0 *. float_of_int i /. float_of_int steps in
              let yv = 10.0 *. float_of_int j /. float_of_int steps in
              if
                List.for_all
                  (fun (a1, a2, b) -> (a1 *. xv) +. (a2 *. yv) <= b +. 1e-9)
                  rows
              then begin
                let v = (c1 *. xv) +. (c2 *. yv) in
                if v < !best_grid then best_grid := v
              end
            done
          done;
          Lp.objective_value sol <= !best_grid +. 1e-6
      | Lp.Unbounded -> false (* impossible: box-bounded *)
      | _ -> false)

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic" `Quick test_simplex_basic;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
          Alcotest.test_case "shape validation" `Quick
            test_simplex_shape_validation;
          Alcotest.test_case "klee-minty" `Quick test_simplex_klee_minty;
          Alcotest.test_case "redundant rows" `Quick
            test_simplex_redundant_rows;
          Alcotest.test_case "badly scaled" `Quick test_simplex_badly_scaled;
        ] );
      ( "model",
        [
          Alcotest.test_case "minimize" `Quick test_lp_minimize;
          Alcotest.test_case "maximize" `Quick test_lp_maximize;
          Alcotest.test_case "lower bound shift" `Quick
            test_lp_lower_bound_shift;
          Alcotest.test_case "free variable" `Quick test_lp_free_variable;
          Alcotest.test_case "equality" `Quick test_lp_equality;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          Alcotest.test_case "duplicate terms" `Quick test_lp_duplicate_terms;
          Alcotest.test_case "resolve after extend" `Quick
            test_lp_resolve_after_extend;
          Alcotest.test_case "var validation" `Quick test_lp_var_validation;
          Alcotest.test_case "bound overrides" `Quick test_lp_overrides;
        ] );
      ( "mip",
        [
          Alcotest.test_case "knapsack" `Quick test_mip_knapsack;
          Alcotest.test_case "integrality gap" `Quick
            test_mip_fractional_lp_integral_gap;
          Alcotest.test_case "infeasible" `Quick test_mip_infeasible;
          Alcotest.test_case "mixed continuous" `Quick
            test_mip_mixed_continuous;
          Alcotest.test_case "node limit" `Quick test_mip_node_limit;
          Alcotest.test_case "validates bounds" `Quick
            test_mip_validates_bounds;
          Alcotest.test_case "general integers" `Quick
            test_mip_general_integers;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_transport_feasible;
            prop_two_var_optimal;
            prop_mip_matches_brute_force;
          ] );
    ]
