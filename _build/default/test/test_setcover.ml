(* Tests for the SetCover substrate and the Theorem 3.5 reduction. *)

module C = Setcover.Cover
module R = Setcover.Reduction

let simple_cover () =
  C.make ~universe:4
    ~sets:[| [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |]; [| 0; 1; 2; 3 |] |]

let test_make_validation () =
  let bad name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  bad "element out of range" (fun () ->
      C.make ~universe:2 ~sets:[| [| 0; 5 |] |]);
  bad "not covering" (fun () -> C.make ~universe:3 ~sets:[| [| 0; 1 |] |]);
  bad "empty universe" (fun () -> C.make ~universe:0 ~sets:[||]);
  (* duplicates are deduped *)
  let t = C.make ~universe:2 ~sets:[| [| 0; 0; 1; 1; 0 |] |] in
  Alcotest.(check int) "deduped" 2 (Array.length t.C.sets.(0))

let test_covers () =
  let t = simple_cover () in
  Alcotest.(check bool) "full set covers" true (C.covers t [ 3 ]);
  Alcotest.(check bool) "partial" false (C.covers t [ 0 ]);
  Alcotest.(check bool) "pair covers" true (C.covers t [ 0; 2 ])

let test_greedy () =
  let t = simple_cover () in
  let chosen = C.greedy t in
  Alcotest.(check bool) "covers" true (C.covers t chosen);
  (* the full set dominates: greedy picks exactly it *)
  Alcotest.(check (list int)) "picks the big set" [ 3 ] chosen

let test_exact_minimum () =
  let t = simple_cover () in
  Alcotest.(check int) "minimum is 1" 1 (List.length (C.exact t));
  let no_big =
    C.make ~universe:4 ~sets:[| [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |] |]
  in
  let best = C.exact no_big in
  Alcotest.(check int) "minimum is 2" 2 (List.length best);
  Alcotest.(check bool) "covers" true (C.covers no_big best)

let test_exact_never_worse_than_greedy () =
  let rng = Workloads.Rng.create 3 in
  for _ = 1 to 20 do
    let universe = 4 + Workloads.Rng.int rng 5 in
    let nsets = 3 + Workloads.Rng.int rng 5 in
    let sets =
      Array.init nsets (fun _ ->
          let size = 1 + Workloads.Rng.int rng universe in
          Array.init size (fun _ -> Workloads.Rng.int rng universe))
    in
    (* ensure coverage with one catch-all set *)
    let sets = Array.append sets [| Array.init universe Fun.id |] in
    let t = C.make ~universe ~sets in
    let g = C.greedy t and e = C.exact t in
    Alcotest.(check bool) "exact <= greedy" true
      (List.length e <= List.length g);
    Alcotest.(check bool) "greedy covers" true (C.covers t g);
    Alcotest.(check bool) "exact covers" true (C.covers t e)
  done

let test_lp_value_bounds () =
  let t = simple_cover () in
  let v, z = C.lp_value t in
  Alcotest.(check bool) "lp <= integral optimum" true
    (v <= float_of_int (List.length (C.exact t)) +. 1e-7);
  Alcotest.(check bool) "weights nonneg" true
    (Array.for_all (fun w -> w >= -1e-9) z);
  (* fractional cover constraint spot check: element 0 *)
  let cover0 = z.(0) +. z.(3) in
  Alcotest.(check bool) "element 0 covered" true (cover0 >= 1.0 -. 1e-6)

let test_gap_instance_structure () =
  let d = 3 in
  let t = C.gap_instance d in
  let n = (1 lsl d) - 1 in
  Alcotest.(check int) "universe 2^d - 1" n t.C.universe;
  Alcotest.(check int) "one set per nonzero y" n (C.num_sets t);
  (* each set S_y has exactly 2^(d-1) elements *)
  Array.iter
    (fun s ->
      Alcotest.(check int) "set size 2^(d-1)" (1 lsl (d - 1)) (Array.length s))
    t.C.sets

let test_gap_instance_gap () =
  (* integral optimum >= d while the fractional value is < 2 *)
  List.iter
    (fun d ->
      let t = C.gap_instance d in
      let frac, _ = C.lp_value t in
      let integral = List.length (C.exact t) in
      Alcotest.(check bool) "fractional < 2" true (frac < 2.0 +. 1e-6);
      Alcotest.(check bool)
        (Printf.sprintf "integral >= d = %d" d)
        true (integral >= d))
    [ 2; 3; 4 ]

(* --- Reduction (Theorem 3.5) ------------------------------------------- *)

let test_reduction_dimensions () =
  let rng = Workloads.Rng.create 17 in
  let cover = C.gap_instance 3 in
  let r = R.build rng cover ~target:3 in
  let m = C.num_sets cover in
  Alcotest.(check int) "machines = sets" m
    (Core.Instance.num_machines r.R.instance);
  (* K = ceil(m/t * log2 m) = ceil(7/3 * log2 7) = ceil(6.55) = 7 *)
  Alcotest.(check int) "classes" 7 r.R.num_classes;
  Alcotest.(check int) "jobs = K * N" (7 * 7)
    (Core.Instance.num_jobs r.R.instance);
  (* all setups are 1 *)
  for i = 0 to m - 1 do
    for k = 0 to r.R.num_classes - 1 do
      Alcotest.(check (float 1e-12)) "unit setup" 1.0
        (Core.Instance.setup_time r.R.instance i k)
    done
  done

let test_reduction_eligibility_matches_membership () =
  let rng = Workloads.Rng.create 19 in
  let cover = simple_cover () in
  let r = R.build rng cover ~target:1 in
  let n_elems = cover.C.universe in
  for k = 0 to r.R.num_classes - 1 do
    for e = 0 to n_elems - 1 do
      let j = (k * n_elems) + e in
      for i = 0 to C.num_sets cover - 1 do
        let s = r.R.perms.(k).(i) in
        let member = Array.exists (fun e' -> e' = e) cover.C.sets.(s) in
        let p = Core.Instance.ptime r.R.instance i j in
        Alcotest.(check bool)
          (Printf.sprintf "job (%d,%d) on machine %d" k e i)
          member (p = 0.0)
      done
    done
  done

let test_reduction_schedule_from_cover () =
  let rng = Workloads.Rng.create 23 in
  let cover = simple_cover () in
  let r = R.build rng cover ~target:1 in
  let sched = R.schedule_from_cover r [ 3 ] in
  Alcotest.(check bool) "valid schedule" true
    (Core.Schedule.is_valid r.R.instance sched);
  (* cover size 1: every class needs exactly 1 setup; max load equals the
     bound reported by setups_makespan_bound *)
  let bound = R.setups_makespan_bound r [ 3 ] in
  Alcotest.(check (float 1e-9)) "makespan = setup count" (float_of_int bound)
    (Core.Schedule.makespan sched);
  Alcotest.(check bool) "rejects non-cover" true
    (try
       ignore (R.schedule_from_cover r [ 0 ]);
       false
     with Invalid_argument _ -> true)

let test_reduction_bounds_consistent () =
  let rng = Workloads.Rng.create 29 in
  let cover = C.gap_instance 3 in
  let r = R.build rng cover ~target:3 in
  let _, z = C.lp_value cover in
  let frac = R.fractional_makespan_bound r z in
  let integral_lb = R.integral_lower_bound r in
  let greedy_sched = R.setups_makespan_bound r (C.greedy cover) in
  Alcotest.(check bool) "fractional bound positive" true (frac > 0.0);
  Alcotest.(check bool) "integral lb <= constructed" true
    (integral_lb <= float_of_int greedy_sched +. 1e-9)

let test_reduction_validation () =
  let rng = Workloads.Rng.create 1 in
  let cover = simple_cover () in
  Alcotest.(check bool) "bad target" true
    (try
       ignore (R.build rng cover ~target:0);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "setcover"
    [
      ( "cover",
        [
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "covers" `Quick test_covers;
          Alcotest.test_case "greedy" `Quick test_greedy;
          Alcotest.test_case "exact minimum" `Quick test_exact_minimum;
          Alcotest.test_case "exact vs greedy" `Quick
            test_exact_never_worse_than_greedy;
          Alcotest.test_case "lp value" `Quick test_lp_value_bounds;
        ] );
      ( "gap instance",
        [
          Alcotest.test_case "structure" `Quick test_gap_instance_structure;
          Alcotest.test_case "integrality gap" `Quick test_gap_instance_gap;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "dimensions" `Quick test_reduction_dimensions;
          Alcotest.test_case "eligibility" `Quick
            test_reduction_eligibility_matches_membership;
          Alcotest.test_case "schedule from cover" `Quick
            test_reduction_schedule_from_cover;
          Alcotest.test_case "bounds consistent" `Quick
            test_reduction_bounds_consistent;
          Alcotest.test_case "validation" `Quick test_reduction_validation;
        ] );
    ]
