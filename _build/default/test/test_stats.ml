(* Tests for summary statistics and table rendering. *)

let check_float = Alcotest.(check (float 1e-9))

let test_mean () =
  check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "singleton" 7.0 (Stats.mean [| 7.0 |])

let test_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |]);
  Alcotest.(check bool) "rejects nonpositive" true
    (try
       ignore (Stats.geomean [| 1.0; 0.0 |]);
       false
     with Invalid_argument _ -> true)

let test_stddev () =
  check_float "known" 1.0 (Stats.stddev [| 1.0; 2.0; 3.0 |]);
  check_float "singleton" 0.0 (Stats.stddev [| 5.0 |])

let test_min_max () =
  check_float "min" 1.0 (Stats.minimum [| 3.0; 1.0; 2.0 |]);
  check_float "max" 3.0 (Stats.maximum [| 3.0; 1.0; 2.0 |])

let test_quantile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Stats.median xs);
  check_float "q0" 1.0 (Stats.quantile xs 0.0);
  check_float "q1" 5.0 (Stats.quantile xs 1.0);
  check_float "q25" 2.0 (Stats.quantile xs 0.25);
  check_float "interpolated" 2.5 (Stats.median [| 1.0; 2.0; 3.0; 4.0 |])

let test_empty_rejected () =
  List.iter
    (fun (name, f) ->
      Alcotest.(check bool) name true
        (try
           ignore (f [||]);
           false
         with Invalid_argument _ -> true))
    [
      ("mean", Stats.mean);
      ("stddev", Stats.stddev);
      ("min", Stats.minimum);
      ("max", Stats.maximum);
      ("median", Stats.median);
    ]

let test_quantile_validation () =
  Alcotest.(check bool) "q out of range" true
    (try
       ignore (Stats.quantile [| 1.0 |] 1.5);
       false
     with Invalid_argument _ -> true)

let test_table_rendering () =
  let t = Stats.Table.create [ "name"; "value" ] in
  Stats.Table.add_row t [ "alpha"; "1.5" ];
  Stats.Table.add_row t [ "b"; "22.25" ];
  let s = Stats.Table.to_string t in
  Alcotest.(check int) "rows" 2 (Stats.Table.num_rows t);
  Alcotest.(check bool) "contains header" true
    (Astring.String.is_infix ~affix:"name" s);
  Alcotest.(check bool) "separator line" true
    (Astring.String.is_infix ~affix:"-----" s);
  (* numeric cells are right-aligned: "22.25" ends its column *)
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 5 (List.length lines)

let test_table_float_row () =
  let t = Stats.Table.create [ "a"; "b" ] in
  Stats.Table.add_float_row t ~decimals:2 [ 1.0; infinity ];
  let s = Stats.Table.to_string t in
  Alcotest.(check bool) "formats floats" true
    (Astring.String.is_infix ~affix:"1.00" s);
  Alcotest.(check bool) "formats inf" true
    (Astring.String.is_infix ~affix:"inf" s)

let test_table_csv () =
  let t = Stats.Table.create [ "a"; "b" ] in
  Stats.Table.add_row t [ "x,y"; "1.5" ];
  Stats.Table.add_row t [ "q\"uote"; "2" ];
  let csv = Stats.Table.to_csv t in
  Alcotest.(check string) "csv output" "a,b\n\"x,y\",1.5\n\"q\"\"uote\",2\n" csv

let test_table_validation () =
  let t = Stats.Table.create [ "a"; "b" ] in
  Alcotest.(check bool) "wrong width" true
    (try
       Stats.Table.add_row t [ "only one" ];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty headers" true
    (try
       ignore (Stats.Table.create []);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "stats"
    [
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "min max" `Quick test_min_max;
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "quantile validation" `Quick
            test_quantile_validation;
        ] );
      ( "table",
        [
          Alcotest.test_case "rendering" `Quick test_table_rendering;
          Alcotest.test_case "float row" `Quick test_table_float_row;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "validation" `Quick test_table_validation;
        ] );
    ]
