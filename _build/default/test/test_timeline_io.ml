(* Tests for Timeline (batch materialization + Gantt) and Schedule_io. *)

module I = Core.Instance
module S = Core.Schedule
module T = Core.Timeline

let fixture () =
  I.uniform ~speeds:[| 1.0; 2.0 |]
    ~sizes:[| 4.0; 2.0; 6.0; 2.0 |]
    ~job_class:[| 0; 0; 1; 1 |]
    ~setups:[| 3.0; 1.0 |]

let check_float = Alcotest.(check (float 1e-9))

let test_timeline_matches_loads () =
  let t = fixture () in
  let s = S.make t [| 0; 1; 1; 0 |] in
  let lanes = T.of_schedule t s in
  Array.iteri
    (fun i events ->
      let finish =
        List.fold_left (fun acc e -> Float.max acc e.T.finish) 0.0 events
      in
      check_float (Printf.sprintf "machine %d end = load" i) (S.load s i)
        finish)
    lanes

let test_timeline_contiguous_and_ordered () =
  let t = fixture () in
  let s = S.make t [| 0; 0; 0; 0 |] in
  let events = (T.of_schedule t s).(0) in
  (* events must tile [0, load] with no gaps or overlaps *)
  let rec check_chain clock = function
    | [] -> clock
    | e :: rest ->
        check_float "no gap" clock e.T.start;
        Alcotest.(check bool) "nonneg duration" true (e.T.finish >= e.T.start);
        check_chain e.T.finish rest
  in
  let final = check_chain 0.0 events in
  check_float "covers load" (S.load s 0) final;
  (* each class appears as setup followed by its jobs *)
  match events with
  | { kind = `Setup 0; _ } :: { kind = `Job 0; _ } :: { kind = `Job 1; _ }
    :: { kind = `Setup 1; _ } :: { kind = `Job 2; _ } :: { kind = `Job 3; _ }
    :: [] ->
      ()
  | _ -> Alcotest.fail "unexpected event order"

let test_timeline_every_job_once () =
  let rng = Workloads.Rng.create 5 in
  let t = Workloads.Gen.unrelated rng ~n:12 ~m:3 ~k:3 () in
  let r = Algos.List_scheduling.schedule t in
  let lanes = T.of_schedule t r.Algos.Common.schedule in
  let seen = Array.make 12 0 in
  Array.iter
    (List.iter (fun e ->
         match e.T.kind with `Job j -> seen.(j) <- seen.(j) + 1 | `Setup _ -> ()))
    lanes;
  Array.iteri
    (fun j c -> Alcotest.(check int) (Printf.sprintf "job %d once" j) 1 c)
    seen

let test_timeline_setup_count () =
  let t = fixture () in
  let s = S.make t [| 0; 1; 0; 1 |] in
  let lanes = T.of_schedule t s in
  let setups =
    Array.fold_left
      (fun acc events ->
        acc
        + List.length
            (List.filter
               (fun e -> match e.T.kind with `Setup _ -> true | `Job _ -> false)
               events))
      0 lanes
  in
  Alcotest.(check int) "matches num_setups" (S.num_setups s) setups

let test_gantt_renders () =
  let t = fixture () in
  let s = S.make t [| 0; 0; 1; 1 |] in
  let out = Format.asprintf "%a" (T.pp_gantt t) s in
  Alcotest.(check bool) "mentions machines" true
    (Astring.String.is_infix ~affix:"m0" out
    && Astring.String.is_infix ~affix:"m1" out);
  Alcotest.(check bool) "has setup glyphs" true
    (Astring.String.is_infix ~affix:"#" out)

let test_gantt_empty_schedule () =
  let t =
    I.identical ~num_machines:2 ~sizes:[| 0.0 |] ~job_class:[| 0 |]
      ~setups:[| 0.0 |]
  in
  let s = S.make t [| 0 |] in
  (* horizon 0: must not crash or divide by zero *)
  let out = Format.asprintf "%a" (T.pp_gantt t) s in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_timeline_csv () =
  let t = fixture () in
  let s = S.make t [| 0; 0; 1; 1 |] in
  let csv = T.to_csv t s in
  let lines = String.split_on_char '\n' csv |> List.filter (( <> ) "") in
  Alcotest.(check string) "header" "machine,kind,id,start,finish"
    (List.hd lines);
  (* 4 jobs + 2 setups = 6 event rows *)
  Alcotest.(check int) "rows" 7 (List.length lines);
  Alcotest.(check bool) "has setup rows" true
    (List.exists (fun l -> Astring.String.is_infix ~affix:",setup," l) lines)

(* --- Schedule_io -------------------------------------------------------- *)

let test_schedule_io_roundtrip () =
  let t = fixture () in
  let s = S.make t [| 0; 1; 1; 0 |] in
  let s' = Core.Schedule_io.of_string t (Core.Schedule_io.to_string s) in
  Alcotest.(check (array int)) "assignment preserved" (S.assignment s)
    (S.assignment s')

let test_schedule_io_file_roundtrip () =
  let t = fixture () in
  let s = S.make t [| 1; 1; 1; 1 |] in
  let path = Filename.temp_file "sched" ".sched" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Core.Schedule_io.to_file path s;
      let s' = Core.Schedule_io.of_file t path in
      check_float "makespan preserved" (S.makespan s) (S.makespan s'))

let test_schedule_io_rejects_garbage () =
  let t = fixture () in
  let bad name text =
    Alcotest.(check bool) name true
      (try
         ignore (Core.Schedule_io.of_string t text);
         false
       with Core.Schedule_io.Parse_error _ -> true)
  in
  bad "empty" "";
  bad "bad keyword" "flurb 1 2\n";
  bad "bad machine" "assignment 0 1 x 0\n";
  bad "wrong length" "assignment 0 1\n";
  bad "out of range" "assignment 0 1 9 0\n"

let test_schedule_io_rejects_ineligible () =
  let t =
    I.restricted
      ~eligible:[| [| true |]; [| false |] |]
      ~sizes:[| 1.0 |] ~job_class:[| 0 |] ~setups:[| 1.0 |]
  in
  Alcotest.(check bool) "ineligible rejected" true
    (try
       ignore (Core.Schedule_io.of_string t "assignment 1\n");
       false
     with Core.Schedule_io.Parse_error _ -> true)

let test_schedule_io_comments () =
  let t = fixture () in
  let s =
    Core.Schedule_io.of_string t "# hello\nschedule\nassignment 0 0 1 1 # tail\n"
  in
  Alcotest.(check int) "parsed through comments" 1 (S.machine_of s 2)

let () =
  Alcotest.run "timeline-io"
    [
      ( "timeline",
        [
          Alcotest.test_case "matches loads" `Quick test_timeline_matches_loads;
          Alcotest.test_case "contiguous ordered" `Quick
            test_timeline_contiguous_and_ordered;
          Alcotest.test_case "every job once" `Quick
            test_timeline_every_job_once;
          Alcotest.test_case "setup count" `Quick test_timeline_setup_count;
          Alcotest.test_case "gantt renders" `Quick test_gantt_renders;
          Alcotest.test_case "gantt empty" `Quick test_gantt_empty_schedule;
          Alcotest.test_case "csv export" `Quick test_timeline_csv;
        ] );
      ( "schedule io",
        [
          Alcotest.test_case "roundtrip" `Quick test_schedule_io_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick
            test_schedule_io_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_schedule_io_rejects_garbage;
          Alcotest.test_case "rejects ineligible" `Quick
            test_schedule_io_rejects_ineligible;
          Alcotest.test_case "comments" `Quick test_schedule_io_comments;
        ] );
    ]
