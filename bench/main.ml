(* Benchmark harness: regenerates every experiment table (E1-E8, one per
   theorem of the paper — see DESIGN.md and EXPERIMENTS.md) and then runs
   Bechamel timing benchmarks, one per algorithm family. *)

open Bechamel
open Toolkit

(* --- timing benchmark fixtures ------------------------------------------ *)

let fixture_uniform =
  lazy (Workloads.Gen.uniform (Workloads.Rng.create 1001) ~n:40 ~m:4 ~k:5 ())

let fixture_uniform_small =
  lazy (Workloads.Gen.uniform (Workloads.Rng.create 1002) ~n:9 ~m:3 ~k:3 ())

let fixture_unrelated =
  lazy (Workloads.Gen.unrelated (Workloads.Rng.create 1003) ~n:20 ~m:4 ~k:4 ())

let fixture_ra =
  lazy
    (Workloads.Gen.restricted_class_uniform (Workloads.Rng.create 1004) ~n:20
       ~m:4 ~k:4 ())

let fixture_cu =
  lazy
    (Workloads.Gen.class_uniform_ptimes (Workloads.Rng.create 1005) ~n:20 ~m:4
       ~k:4 ())

let tests =
  Test.make_grouped ~name:"algorithms"
    [
      Test.make ~name:"list_scheduling n=40"
        (Staged.stage (fun () ->
             ignore (Algos.List_scheduling.schedule (Lazy.force fixture_uniform))));
      Test.make ~name:"lpt_placeholders n=40"
        (Staged.stage (fun () ->
             ignore (Algos.Lpt.schedule (Lazy.force fixture_uniform))));
      Test.make ~name:"exact_bnb n=9"
        (Staged.stage (fun () ->
             ignore (Algos.Exact.solve (Lazy.force fixture_uniform_small))));
      Test.make ~name:"lp_um_feasible n=20"
        (Staged.stage (fun () ->
             let t = Lazy.force fixture_unrelated in
             let guess = Core.Bounds.naive_upper_bound t /. 2.0 in
             ignore (Algos.Lp_um.feasible t ~makespan:guess)));
      Test.make ~name:"randomized_rounding n=20"
        (Staged.stage
           (let t = Lazy.force fixture_unrelated in
            let bound = Algos.Lp_um.lower_bound t in
            let rng = Workloads.Rng.create 7 in
            fun () ->
              ignore
                (Algos.Randomized_rounding.round rng t
                   bound.Algos.Lp_um.solution)));
      Test.make ~name:"ra_2approx_probe n=20"
        (Staged.stage
           (let t = Lazy.force fixture_ra in
            let guess = Core.Bounds.naive_upper_bound t in
            fun () ->
              ignore (Algos.Ra_class_uniform.schedule_for_guess t ~makespan:guess)));
      Test.make ~name:"um_3approx_probe n=20"
        (Staged.stage
           (let t = Lazy.force fixture_cu in
            let guess = Core.Bounds.naive_upper_bound t in
            fun () ->
              ignore (Algos.Um_class_uniform.schedule_for_guess t ~makespan:guess)));
      Test.make ~name:"ptas_probe eps=1/2 n=9"
        (Staged.stage
           (let t = Lazy.force fixture_uniform_small in
            let guess = Core.Bounds.naive_upper_bound t in
            fun () ->
              ignore
                (Algos.Uniform_ptas.schedule_for_guess ~eps:0.5 t
                   ~makespan:guess)));
      Test.make ~name:"config_ip probe n=10 (identical)"
        (Staged.stage
           (let t =
              Workloads.Gen.identical (Workloads.Rng.create 1006) ~n:10 ~m:3
                ~k:3 ()
            in
            (* a tight guess keeps the configuration space realistic *)
            let guess = 1.2 *. Core.Bounds.lower_bound t in
            fun () -> ignore (Algos.Config_ip.feasible t ~makespan:guess)));
      Test.make ~name:"splittable probe n=20"
        (Staged.stage
           (let t = Lazy.force fixture_ra in
            let guess = Core.Bounds.naive_upper_bound t in
            fun () ->
              ignore (Algos.Splittable.schedule_for_guess t ~makespan:guess)));
      Test.make ~name:"pseudoforest round K=20 m=30"
        (Staged.stage
           (let rng = Workloads.Rng.create 1007 in
            let g =
              Graphs.Pseudoforest.create ~num_classes:20 ~num_machines:30
            in
            (* random forest: attach each class to two random machines *)
            for k = 0 to 19 do
              Graphs.Pseudoforest.add_edge g ~cls:k
                ~machine:(Workloads.Rng.int rng 30);
              Graphs.Pseudoforest.add_edge g ~cls:k
                ~machine:(Workloads.Rng.int rng 30)
            done;
            let g = if Graphs.Pseudoforest.is_pseudoforest g then g else g in
            fun () ->
              if Graphs.Pseudoforest.is_pseudoforest g then
                ignore (Graphs.Pseudoforest.round g)));
      Test.make ~name:"bounds n=40"
        (Staged.stage (fun () ->
             ignore (Core.Bounds.lower_bound (Lazy.force fixture_uniform))));
      Test.make ~name:"simplex 60x60"
        (Staged.stage
           (let rng = Workloads.Rng.create 2024 in
            let a =
              Array.init 60 (fun _ ->
                  Array.init 60 (fun _ -> Workloads.Rng.float rng))
            in
            let b = Array.init 60 (fun _ -> 30.0 +. Workloads.Rng.float rng) in
            let c = Array.init 60 (fun _ -> Workloads.Rng.float rng -. 0.5) in
            fun () -> ignore (Lp.Simplex.solve ~a ~b ~c ())));
    ]

let benchmark () =
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
      Instance.monotonic_clock raw
  in
  let table = Stats.Table.create [ "benchmark"; "time/run" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> est
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Stats.Table.add_row table [ name; pretty ])
    (List.sort compare !rows);
  Stats.Table.print table

let () =
  print_endline "Scheduling on (Un-)Related Machines with Setup Times";
  print_endline "reproduction experiment suite (see EXPERIMENTS.md)";
  print_endline "";
  Experiments.Registry.run_all ~jobs:(Parallel.Pool.default_jobs ()) ();
  print_endline "=== timing benchmarks (Bechamel, monotonic clock) ===";
  print_endline "";
  (* counter deltas alongside the timings: how much solver work the
     benchmark loop actually drove (pivot counts, B&B nodes, ...) *)
  let before = Obs.Counter.snapshot () in
  benchmark ();
  print_endline "";
  print_endline "=== solver counter deltas during timing benchmarks ===";
  print_endline "";
  Stats.Table.print (Obs.Report.delta_table ~before)
