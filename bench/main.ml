(* Benchmark harness: regenerates every experiment table (E1-E8, one per
   theorem of the paper — see DESIGN.md and EXPERIMENTS.md) and then runs
   Bechamel timing benchmarks, one per algorithm family. *)

open Bechamel
open Toolkit

(* --- timing benchmark fixtures ------------------------------------------ *)

let fixture_uniform =
  lazy (Workloads.Gen.uniform (Workloads.Rng.create 1001) ~n:40 ~m:4 ~k:5 ())

let fixture_uniform_small =
  lazy (Workloads.Gen.uniform (Workloads.Rng.create 1002) ~n:9 ~m:3 ~k:3 ())

let fixture_unrelated =
  lazy (Workloads.Gen.unrelated (Workloads.Rng.create 1003) ~n:20 ~m:4 ~k:4 ())

let fixture_ra =
  lazy
    (Workloads.Gen.restricted_class_uniform (Workloads.Rng.create 1004) ~n:20
       ~m:4 ~k:4 ())

let fixture_cu =
  lazy
    (Workloads.Gen.class_uniform_ptimes (Workloads.Rng.create 1005) ~n:20 ~m:4
       ~k:4 ())

let tests =
  Test.make_grouped ~name:"algorithms"
    [
      Test.make ~name:"list_scheduling n=40"
        (Staged.stage (fun () ->
             ignore (Algos.List_scheduling.schedule (Lazy.force fixture_uniform))));
      Test.make ~name:"lpt_placeholders n=40"
        (Staged.stage (fun () ->
             ignore (Algos.Lpt.schedule (Lazy.force fixture_uniform))));
      Test.make ~name:"exact_bnb n=9"
        (Staged.stage (fun () ->
             ignore (Algos.Exact.solve (Lazy.force fixture_uniform_small))));
      Test.make ~name:"lp_um_feasible n=20"
        (Staged.stage (fun () ->
             let t = Lazy.force fixture_unrelated in
             let guess = Core.Bounds.naive_upper_bound t /. 2.0 in
             ignore (Algos.Lp_um.feasible t ~makespan:guess)));
      Test.make ~name:"randomized_rounding n=20"
        (Staged.stage
           (let t = Lazy.force fixture_unrelated in
            let bound = Algos.Lp_um.lower_bound t in
            let rng = Workloads.Rng.create 7 in
            fun () ->
              ignore
                (Algos.Randomized_rounding.round rng t
                   bound.Algos.Lp_um.solution)));
      Test.make ~name:"ra_2approx_probe n=20"
        (Staged.stage
           (let t = Lazy.force fixture_ra in
            let guess = Core.Bounds.naive_upper_bound t in
            fun () ->
              ignore (Algos.Ra_class_uniform.schedule_for_guess t ~makespan:guess)));
      Test.make ~name:"um_3approx_probe n=20"
        (Staged.stage
           (let t = Lazy.force fixture_cu in
            let guess = Core.Bounds.naive_upper_bound t in
            fun () ->
              ignore (Algos.Um_class_uniform.schedule_for_guess t ~makespan:guess)));
      Test.make ~name:"ptas_probe eps=1/2 n=9"
        (Staged.stage
           (let t = Lazy.force fixture_uniform_small in
            let guess = Core.Bounds.naive_upper_bound t in
            fun () ->
              ignore
                (Algos.Uniform_ptas.schedule_for_guess ~eps:0.5 t
                   ~makespan:guess)));
      Test.make ~name:"config_ip probe n=10 (identical)"
        (Staged.stage
           (let t =
              Workloads.Gen.identical (Workloads.Rng.create 1006) ~n:10 ~m:3
                ~k:3 ()
            in
            (* a tight guess keeps the configuration space realistic *)
            let guess = 1.2 *. Core.Bounds.lower_bound t in
            fun () -> ignore (Algos.Config_ip.feasible t ~makespan:guess)));
      Test.make ~name:"splittable probe n=20"
        (Staged.stage
           (let t = Lazy.force fixture_ra in
            let guess = Core.Bounds.naive_upper_bound t in
            fun () ->
              ignore (Algos.Splittable.schedule_for_guess t ~makespan:guess)));
      Test.make ~name:"pseudoforest round K=20 m=30"
        (Staged.stage
           (let rng = Workloads.Rng.create 1007 in
            let g =
              Graphs.Pseudoforest.create ~num_classes:20 ~num_machines:30
            in
            (* random forest: attach each class to two random machines *)
            for k = 0 to 19 do
              Graphs.Pseudoforest.add_edge g ~cls:k
                ~machine:(Workloads.Rng.int rng 30);
              Graphs.Pseudoforest.add_edge g ~cls:k
                ~machine:(Workloads.Rng.int rng 30)
            done;
            let g = if Graphs.Pseudoforest.is_pseudoforest g then g else g in
            fun () ->
              if Graphs.Pseudoforest.is_pseudoforest g then
                ignore (Graphs.Pseudoforest.round g)));
      Test.make ~name:"bounds n=40"
        (Staged.stage (fun () ->
             ignore (Core.Bounds.lower_bound (Lazy.force fixture_uniform))));
      Test.make ~name:"simplex 60x60"
        (Staged.stage
           (let rng = Workloads.Rng.create 2024 in
            let a =
              Array.init 60 (fun _ ->
                  Array.init 60 (fun _ -> Workloads.Rng.float rng))
            in
            let b = Array.init 60 (fun _ -> 30.0 +. Workloads.Rng.float rng) in
            let c = Array.init 60 (fun _ -> Workloads.Rng.float rng -. 0.5) in
            fun () -> ignore (Lp.Simplex.solve ~a ~b ~c ())));
    ]

let benchmark () =
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
      Instance.monotonic_clock raw
  in
  let table = Stats.Table.create [ "benchmark"; "time/run" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> est
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Stats.Table.add_row table [ name; pretty ])
    (List.sort compare !rows);
  Stats.Table.print table

(* --- serving-layer benchmarks + machine-readable export ------------------ *)

(* One Obs.Expo.bench_record per benchmark, exported (same shape as
   `schedtool loadgen --json`) so the bench trajectory is
   machine-readable across runs and scripts/bench_gate.sh can compare
   either producer against the committed baseline. *)

(* Per-iteration latencies for percentile-bearing benchmarks land here;
   reset at the start of each measurement so a record's quantiles are
   its own. *)
let h_iter = Obs.Histogram.make "bench.iteration_latency_us"

let measure ?(with_percentiles = false) ~name ~iterations f =
  if with_percentiles then Obs.Histogram.reset h_iter;
  let before = Obs.Counter.snapshot () in
  let t0 = Obs.Sink.now_us () in
  for _ = 1 to iterations do
    if with_percentiles then begin
      let s0 = Obs.Sink.now_us () in
      f ();
      Obs.Histogram.observe h_iter (Obs.Sink.now_us () -. s0)
    end
    else f ()
  done;
  let wall_ns = (Obs.Sink.now_us () -. t0) *. 1e3 in
  let counters = Obs.Counter.delta ~before ~after:(Obs.Counter.snapshot ()) in
  let percentiles =
    if not with_percentiles then []
    else
      let s = Obs.Histogram.merged h_iter in
      let q p = Obs.Histogram.quantile s p in
      List.map
        (fun (label, p) -> (label ^ "_us", q p))
        Obs.Expo.quantile_points
      @ [ ("max_us", s.Obs.Histogram.max_value) ]
  in
  { Obs.Expo.bname = name; iterations; wall_ns; percentiles; counters; trace_ids = [] }

(* Exact per-iteration percentiles (sorted array, nearest rank) for
   records whose comparisons need finer resolution than the histogram's
   exponential buckets offer (a bucket spans up to ~25%): the profiler
   overhead gate checks a 3% p50 bound, invisible to bucket bounds. *)
let measure_exact ~name ~iterations f =
  let lat = Array.make iterations 0.0 in
  let before = Obs.Counter.snapshot () in
  let t0 = Obs.Sink.now_us () in
  for i = 0 to iterations - 1 do
    let s0 = Obs.Sink.now_us () in
    f ();
    lat.(i) <- Obs.Sink.now_us () -. s0
  done;
  let wall_ns = (Obs.Sink.now_us () -. t0) *. 1e3 in
  let counters = Obs.Counter.delta ~before ~after:(Obs.Counter.snapshot ()) in
  Array.sort compare lat;
  let q p =
    let idx = int_of_float (Float.round (p *. float_of_int iterations)) - 1 in
    lat.(max 0 (min (iterations - 1) idx))
  in
  let percentiles =
    List.map (fun (label, p) -> (label ^ "_us", q p)) Obs.Expo.quantile_points
    @ [ ("max_us", lat.(iterations - 1)) ]
  in
  { Obs.Expo.bname = name; iterations; wall_ns; percentiles; counters; trace_ids = [] }

let ns_per_iter (r : Obs.Expo.bench_record) =
  r.Obs.Expo.wall_ns /. float_of_int r.Obs.Expo.iterations

let exact_request instance =
  { Serve.Proto.solver = Some "exact"; deadline_ms = None; instance; trace = None }

(* A server whose pool stays in this domain: handle_request never touches
   the pool, so the bench does not want worker domains idling around. *)
let fresh_server () =
  Serve.Server.create { Serve.Server.default_config with jobs = 1 }

let mux_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

(* The mux loop's own lifecycle counters (wakeups, accepts racing the
   measurement snapshot) are scheduling-dependent; records that cross
   the mux transport drop them from the delta and carry a hand-shaped
   deterministic serve.mux.* ledger instead, so the hard counter gate
   stays exact. *)
let drop_mux_counters (r : Obs.Expo.bench_record) ledger =
  {
    r with
    Obs.Expo.counters =
      ledger
      @ List.filter
          (fun (n, _) -> not (String.starts_with ~prefix:"serve.mux." n))
          r.Obs.Expo.counters;
  }

let serve_benchmarks () =
  (* near-equal sizes over many machines keep branch-and-bound honest:
     ~50k nodes instead of the few hundred a loose instance prunes to *)
  let inst12 =
    Workloads.Gen.uniform (Workloads.Rng.create 3001) ~n:12 ~m:6 ~k:8
      ~size_range:(40.0, 60.0) ()
  in
  let big =
    Workloads.Gen.uniform (Workloads.Rng.create 3002) ~n:150 ~m:8 ~k:6 ()
  in
  let rng = Workloads.Rng.create 3003 in
  let expect_hit name (response : Serve.Proto.response) =
    match response with
    | Serve.Proto.Reply r when r.Serve.Proto.cache_hit -> ()
    | _ -> failwith (name ^ ": expected a cache hit")
  in
  (* cold path: a fresh server (empty cache) for every iteration, so each
     request pays canonicalization plus the full exact solve *)
  let cold =
    measure ~name:"serve cold exact n=12" ~iterations:10 (fun () ->
        let server = fresh_server () in
        (match Serve.Server.handle_request server (exact_request inst12) with
        | Serve.Proto.Reply r when not r.Serve.Proto.cache_hit -> ()
        | _ -> failwith "cold: expected a cache miss");
        Serve.Server.shutdown server)
  in
  (* hit path: one primed server answering random relabelings of the same
     instance — every request canonicalizes, hits, and maps the cached
     schedule back through its own labeling *)
  let server = fresh_server () in
  ignore (Serve.Server.handle_request server (exact_request inst12));
  let hit =
    measure_exact ~name:"serve cache hit n=12" ~iterations:200 (fun () ->
        let permuted = Serve.Canon.shuffle rng inst12 in
        expect_hit "hit" (Serve.Server.handle_request server (exact_request permuted)))
  in
  (* profiler overhead: the same primed-server hit loop with the CPU
     engine armed at 99 Hz. scripts/bench_gate.sh --profile-overhead
     compares the two records' exact p50s within this one run, so the
     bound survives slow shared hardware; the obs.profile.* counter
     deltas are sampling-nondeterministic and get filtered so the hard
     counter gate stays exact. *)
  let hit_profiled =
    match Obs.Profile.start ~rate:99.0 Obs.Profile.Cpu with
    | Error msg -> failwith ("profile overhead bench: " ^ msg)
    | Ok () ->
        let r =
          measure_exact ~name:"serve cache hit n=12 profiled 99hz"
            ~iterations:200 (fun () ->
              let permuted = Serve.Canon.shuffle rng inst12 in
              expect_hit "hit profiled"
                (Serve.Server.handle_request server (exact_request permuted)))
        in
        Obs.Profile.stop ();
        {
          r with
          Obs.Expo.counters =
            List.filter
              (fun (n, _) -> not (String.starts_with ~prefix:"obs.profile." n))
              r.Obs.Expo.counters;
        }
  in
  Serve.Server.shutdown server;
  let speedup = ns_per_iter cold /. ns_per_iter hit in
  (* deadline pressure: 1 ms on a 150-job instance must degrade to the
     fast path and still return a valid schedule, not blow the deadline *)
  let deadline =
    measure ~name:"serve deadline 1ms n=150" ~iterations:20 (fun () ->
        match Serve.Dispatch.solve ~deadline_ms:1.0 big with
        | Ok o ->
            if not o.Serve.Dispatch.degraded then
              failwith "deadline: expected degraded:true";
            if not (Core.Schedule.is_valid big o.Serve.Dispatch.result.Algos.Common.schedule)
            then failwith "deadline: degraded schedule is invalid"
        | Error msg -> failwith ("deadline: " ^ msg))
  in
  let canon =
    measure ~name:"canonicalize n=150" ~iterations:50 (fun () ->
        ignore (Serve.Canon.key big))
  in
  (* session subsystem: a long-lived session absorbing ±1-job mutations,
     each followed by an incremental resolve. The repair seed comes from
     a deadline-pressured first resolve (cheap tier), so the record's
     counter deltas stay deterministic — no open-ended exact solve. *)
  let sessions = Serve.Session.create Serve.Session.default_config in
  let scache = Serve.Cache.create ~capacity:64 in
  let n100 =
    Workloads.Gen.uniform (Workloads.Rng.create 3004) ~n:100 ~m:8 ~k:6 ()
  in
  let session_handle req =
    Serve.Session.handle sessions ~cache:scache
      ~default_deadline_ms:(Some 1.0)
      ~pressure:(fun () -> false)
      req
  in
  let expect_session name response =
    match (response : Serve.Proto.response) with
    | Serve.Proto.Session_reply r -> r
    | Serve.Proto.Error msg -> failwith (name ^ ": " ^ msg)
    | _ -> failwith (name ^ ": expected a session reply")
  in
  let seed_session sid =
    ignore
      (expect_session "create"
         (session_handle { Serve.Proto.sid; op = Serve.Proto.S_create n100; trace = None }));
    ignore
      (expect_session "seed resolve"
         (session_handle
            {
              Serve.Proto.sid;
              op = Serve.Proto.S_resolve { deadline_ms = Some 1.0 }; trace = None
            }))
  in
  seed_session "bench-repair";
  let added_job =
    {
      Core.Instance.nsize = n100.Core.Instance.sizes.(0);
      nclass = n100.Core.Instance.job_class.(0);
      nptimes = None;
      neligible = None;
    }
  in
  let iter = ref 0 in
  let session_repair =
    measure ~with_percentiles:true ~name:"session repair +/-1 job n=100"
      ~iterations:40 (fun () ->
        incr iter;
        let op =
          if !iter land 1 = 1 then Serve.Proto.S_add_jobs [ added_job ]
          else Serve.Proto.S_drop_jobs [ 100 ]
        in
        ignore
          (expect_session "mutate"
             (session_handle { Serve.Proto.sid = "bench-repair"; op; trace = None }));
        let r =
          expect_session "resolve"
            (session_handle
               {
                 Serve.Proto.sid = "bench-repair";
                 op = Serve.Proto.S_resolve { deadline_ms = None }; trace = None
               })
        in
        match r.Serve.Proto.mode with
        | Some ("repair" | "fallback") -> ()
        | _ -> failwith "session repair: expected an incremental resolve")
  in
  ignore
    (session_handle
       { Serve.Proto.sid = "bench-repair"; op = Serve.Proto.S_close; trace = None });
  (* delta-aware cache: an unchanged session resolves straight out of the
     shared result cache *)
  seed_session "bench-hit";
  ignore
    (expect_session "prime"
       (session_handle
          {
            Serve.Proto.sid = "bench-hit";
            op = Serve.Proto.S_resolve { deadline_ms = None }; trace = None
          }));
  let session_hit =
    measure ~with_percentiles:true ~name:"session resolve cache hit n=100"
      ~iterations:200 (fun () ->
        let r =
          expect_session "hit resolve"
            (session_handle
               {
                 Serve.Proto.sid = "bench-hit";
                 op = Serve.Proto.S_resolve { deadline_ms = None }; trace = None
               })
        in
        if r.Serve.Proto.mode <> Some "cache" then
          failwith "session hit: expected a cache-mode resolve")
  in
  ignore
    (session_handle
       { Serve.Proto.sid = "bench-hit"; op = Serve.Proto.S_close; trace = None });
  (* flight recorder: one retained emit with two fields — the per-event
     cost every instrumented layer pays on the hot path *)
  let event =
    measure ~name:"event emit 2 fields" ~iterations:100_000 (fun () ->
        Obs.Event.emit "bench.event"
          [ ("i", Obs.Event.Int 1); ("s", Obs.Event.Str "x") ])
  in
  Obs.Event.clear ();
  (* span emit with trace ids: one Span.phase under an ambient trace
     ctx — the id allocation, two clock reads, alloc delta and ring
     write every attributed phase pays into the always-on phase
     recorder. The sink stays disabled, as when serving untraced. *)
  let span_emit =
    Obs.Phase.clear ();
    let r =
      measure ~name:"span emit with trace ids" ~iterations:100_000 (fun () ->
          Obs.Sink.with_ctx "bench.trace" (fun () ->
              Obs.Span.phase ~detail:"bench" "bench.span" (fun () -> ())))
    in
    Obs.Phase.clear ();
    r
  in
  (* health snapshot: one watchdog scan plus the composite status over
     this process's registered meters — the per-tick cost of the serve
     ticker. No ticker runs in the bench, so the health.checks counter
     delta is exactly the iteration count: the hard counter gate pins
     it. *)
  let health =
    measure ~name:"health snapshot" ~iterations:10_000 (fun () ->
        ignore (Obs.Health.check ());
        ignore (Obs.Health.status ()))
  in
  (* mux transport, held connections: one readiness loop on loopback
     TCP multiplexing 64 held-open client connections, round-robin
     cache-hit round-trips. A warm-up round-trip per connection first,
     so every accept lands before the measurement snapshot and the
     in-window counter delta is exactly the request ledger. *)
  let mux_held =
    let mserver = fresh_server () in
    ignore (Serve.Server.handle_request mserver (exact_request inst12));
    let mux = Serve.Mux.create mserver in
    let port =
      match Serve.Mux.add_tcp mux ~host:"127.0.0.1" ~port:0 with
      | Unix.ADDR_INET (_, port) -> port
      | _ -> failwith "mux held: expected a TCP address"
    in
    let runner = Domain.spawn (fun () -> Serve.Mux.run mux) in
    let connections = 64 in
    let conns = Array.init connections (fun _ -> mux_connect port) in
    let errors = ref 0 in
    let roundtrip i =
      let _, ic, oc = conns.(i mod connections) in
      Serve.Proto.write_request oc (exact_request inst12);
      match Serve.Proto.read_response ic with
      | Ok (Some (Serve.Proto.Reply rep)) when rep.Serve.Proto.cache_hit -> ()
      | _ -> incr errors
    in
    for i = 0 to connections - 1 do
      roundtrip i
    done;
    let turn = ref 0 in
    let r =
      measure_exact ~name:"mux held connections=64 hit n=12" ~iterations:256
        (fun () ->
          roundtrip !turn;
          incr turn)
    in
    Array.iter
      (fun (fd, _, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
      conns;
    Serve.Mux.stop mux;
    Domain.join runner;
    Serve.Server.shutdown mserver;
    if !errors > 0 then failwith "mux held: transport errors on loopback";
    drop_mux_counters r
      [
        ("serve.mux.connections_held", connections);
        ("serve.mux.transport_errors", !errors);
      ]
  in
  (* mux transport, overload: one pool worker (jobs = 2) behind an
     admission queue of 4, and per round a pipelined burst of 9 exact
     requests of a fresh hard instance — 1 dispatched, 4 queued, 4 over
     the bound and shed. Replies serialize in arrival order, so every
     latency in the round rides the head-of-line solve: the p99 here is
     the round-trip under overload. The record's counters are the
     admission ledger read from the labeled cells: admission is decided
     synchronously on the event loop against the queue gauge, so it is
     exact run-to-run — whereas the solver-side counters race (the
     worker's own pressure check can shed the head solve when it reads
     health after the queue meter fills) and are left out. *)
  let mux_overload =
    let oserver =
      Serve.Server.create
        { Serve.Server.default_config with cache_capacity = 32; jobs = 2 }
    in
    let mux =
      Serve.Mux.create
        ~config:{ Serve.Mux.default_config with max_pending = 4 }
        oserver
    in
    let port =
      match Serve.Mux.add_tcp mux ~host:"127.0.0.1" ~port:0 with
      | Unix.ADDR_INET (_, port) -> port
      | _ -> failwith "mux overload: expected a TCP address"
    in
    let runner = Domain.spawn (fun () -> Serve.Mux.run mux) in
    let fd, ic, oc = mux_connect port in
    let rounds = 3 and burst = 9 in
    let iterations = rounds * burst in
    let lat = Array.make iterations 0.0 in
    let adm = Obs.Labeled.family "serve.mux.admission" ~label:"outcome" in
    let outcomes =
      [ "admitted"; "shed_queue_full"; "shed_pressure"; "shed_deadline" ]
    in
    let adm_value o = Obs.Labeled.value (Obs.Labeled.cell adm o) in
    let adm_before = List.map (fun o -> (o, adm_value o)) outcomes in
    let t0 = Obs.Sink.now_us () in
    for round = 0 to rounds - 1 do
      let hard =
        Workloads.Gen.uniform
          (Workloads.Rng.create (7100 + round))
          ~n:20 ~m:5 ~k:4 ()
      in
      let t_send = Obs.Sink.now_us () in
      for _ = 1 to burst do
        Serve.Proto.write_request oc (exact_request hard)
      done;
      for i = 0 to burst - 1 do
        match Serve.Proto.read_response ic with
        | Ok (Some (Serve.Proto.Reply _)) ->
            lat.((round * burst) + i) <- Obs.Sink.now_us () -. t_send
        | _ -> failwith "mux overload: expected a solve reply"
      done
    done;
    let wall_ns = (Obs.Sink.now_us () -. t0) *. 1e3 in
    let ledger =
      List.map
        (fun o ->
          ( "serve.mux.admission." ^ o,
            adm_value o - List.assoc o adm_before ))
        outcomes
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Serve.Mux.stop mux;
    Domain.join runner;
    Serve.Server.shutdown oserver;
    Array.sort compare lat;
    let q p =
      let idx = int_of_float (Float.round (p *. float_of_int iterations)) - 1 in
      lat.(max 0 (min (iterations - 1) idx))
    in
    let percentiles =
      List.map (fun (label, p) -> (label ^ "_us", q p)) Obs.Expo.quantile_points
      @ [ ("max_us", lat.(iterations - 1)) ]
    in
    {
      Obs.Expo.bname = "mux overload burst=9 queue=4";
      iterations;
      wall_ns;
      percentiles;
      counters =
        ledger
        @ [ ("serve.mux.replies", iterations); ("serve.mux.queue_bound", 4) ];
      trace_ids = [];
    }
  in
  let records =
    [ cold;
      hit;
      hit_profiled;
      deadline;
      canon;
      session_repair;
      session_hit;
      event;
      span_emit;
      health;
      mux_held;
      mux_overload
    ]
  in
  let table = Stats.Table.create [ "benchmark"; "iters"; "time/iter" ] in
  List.iter
    (fun (r : Obs.Expo.bench_record) ->
      let ns = ns_per_iter r in
      let pretty =
        if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else Printf.sprintf "%.2f us" (ns /. 1e3)
      in
      Stats.Table.add_row table
        [ r.Obs.Expo.bname; string_of_int r.Obs.Expo.iterations; pretty ])
    records;
  Stats.Table.print table;
  print_endline "";
  Printf.printf "cache hit speedup over cold exact solve: %.1fx %s\n" speedup
    (if speedup >= 10.0 then "(>= 10x: ok)" else "(below the 10x target!)");
  let p50 (r : Obs.Expo.bench_record) =
    Option.value ~default:nan (List.assoc_opt "p50_us" r.Obs.Expo.percentiles)
  in
  Printf.printf
    "profiler overhead on cache hit p50: %.1f us -> %.1f us (%+.1f%%, 99 Hz cpu engine)\n"
    (p50 hit) (p50 hit_profiled)
    (100.0 *. (p50 hit_profiled -. p50 hit) /. p50 hit);
  print_endline "deadline 1ms on n=150: valid degraded:true schedule (checked)";
  let counter (r : Obs.Expo.bench_record) name =
    Option.value ~default:0 (List.assoc_opt name r.Obs.Expo.counters)
  in
  Printf.printf
    "mux: %d connections held with %d transport errors; overload p99 %.1f ms (%d admitted / %d shed, queue bound %d)\n"
    (counter mux_held "serve.mux.connections_held")
    (counter mux_held "serve.mux.transport_errors")
    (Option.value ~default:nan
       (List.assoc_opt "p99_us" mux_overload.Obs.Expo.percentiles)
    /. 1000.)
    (counter mux_overload "serve.mux.admission.admitted")
    (counter mux_overload "serve.mux.admission.shed_queue_full")
    (counter mux_overload "serve.mux.queue_bound");
  records

let () =
  print_endline "Scheduling on (Un-)Related Machines with Setup Times";
  print_endline "reproduction experiment suite (see EXPERIMENTS.md)";
  print_endline "";
  Experiments.Registry.run_all ~jobs:(Parallel.Pool.default_jobs ()) ();
  print_endline "=== timing benchmarks (Bechamel, monotonic clock) ===";
  print_endline "";
  (* counter deltas alongside the timings: how much solver work the
     benchmark loop actually drove (pivot counts, B&B nodes, ...) *)
  let before = Obs.Counter.snapshot () in
  benchmark ();
  print_endline "";
  print_endline "=== solver counter deltas during timing benchmarks ===";
  print_endline "";
  Stats.Table.print (Obs.Report.delta_table ~before);
  print_endline "";
  print_endline "=== serving layer (lib/serve) ===";
  print_endline "";
  let records = serve_benchmarks () in
  (* scripts/bench_gate.sh points this elsewhere to compare a fresh run
     against the committed baseline without clobbering it *)
  let path =
    match Sys.getenv_opt "BENCH_SERVE_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_serve.json"
  in
  let out = open_out path in
  output_string out (Obs.Expo.bench_records_json records);
  close_out out;
  print_endline "";
  Printf.printf "wrote %s\n" path
