(* schedtool — command-line interface to the library: generate instances,
   compute bounds, solve with any algorithm, run experiments. *)

open Cmdliner

let read_instance path =
  try Ok (Core.Instance_io.of_file path) with
  | Core.Instance_io.Parse_error msg -> Error msg
  | Sys_error msg -> Error msg

(* --- gen ---------------------------------------------------------------- *)

let gen_cmd =
  let env_arg =
    let doc =
      "Environment: identical, uniform, unrelated, restricted (class-uniform \
       restrictions) or cu-ptimes (class-uniform processing times)."
    in
    Arg.(value & opt string "uniform" & info [ "env" ] ~docv:"ENV" ~doc)
  in
  let n_arg = Arg.(value & opt int 12 & info [ "n"; "jobs" ] ~doc:"Number of jobs.") in
  let m_arg = Arg.(value & opt int 4 & info [ "m"; "machines" ] ~doc:"Number of machines.") in
  let k_arg = Arg.(value & opt int 3 & info [ "k"; "classes" ] ~doc:"Number of setup classes.") in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  let size_arg =
    Arg.(value & opt (pair float float) (1.0, 100.0)
           & info [ "sizes" ] ~docv:"LO,HI" ~doc:"Job size range.")
  in
  let setup_arg =
    Arg.(value & opt (pair float float) (5.0, 50.0)
           & info [ "setups" ] ~docv:"LO,HI" ~doc:"Setup size range.")
  in
  let scale_arg =
    Arg.(value & opt float 1.0
           & info [ "setup-scale" ] ~docv:"X"
               ~doc:"Multiply all setup sizes by $(docv) after generation.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the instance to $(docv) (default: stdout).")
  in
  let run env n m k seed size_range setup_range scale out =
    let rng = Workloads.Rng.create seed in
    let build () =
      match env with
      | "identical" ->
          Ok (Workloads.Gen.identical rng ~n ~m ~k ~size_range ~setup_range ())
      | "uniform" ->
          Ok (Workloads.Gen.uniform rng ~n ~m ~k ~size_range ~setup_range ())
      | "unrelated" ->
          Ok (Workloads.Gen.unrelated rng ~n ~m ~k ~size_range ~setup_range ())
      | "restricted" ->
          Ok
            (Workloads.Gen.restricted_class_uniform rng ~n ~m ~k ~size_range
               ~setup_range ())
      | "cu-ptimes" ->
          Ok
            (Workloads.Gen.class_uniform_ptimes rng ~n ~m ~k
               ~ptime_range:size_range ~setup_range ())
      | other -> Error (Printf.sprintf "unknown environment %S" other)
    in
    let build () = Result.map (fun t -> Core.Instance.scale_setups t scale) (build ()) in
    match build () with
    | Error msg -> `Error (false, msg)
    | Ok instance -> (
        let text = Core.Instance_io.to_string instance in
        match out with
        | None ->
            print_string text;
            `Ok ()
        | Some path ->
            Core.Instance_io.to_file path instance;
            Printf.printf "wrote %s\n" path;
            `Ok ())
  in
  let info = Cmd.info "gen" ~doc:"Generate a random instance." in
  Cmd.v info
    Term.(
      ret
        (const run $ env_arg $ n_arg $ m_arg $ k_arg $ seed_arg $ size_arg
       $ setup_arg $ scale_arg $ out_arg))

(* --- bounds -------------------------------------------------------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INSTANCE"
         ~doc:"Instance file (see Instance_io format).")

let bounds_cmd =
  let run path =
    match read_instance path with
    | Error msg -> `Error (false, msg)
    | Ok t ->
        Printf.printf "job bound      %g\n" (Core.Bounds.job_bound t);
        Printf.printf "volume bound   %g\n" (Core.Bounds.volume_bound t);
        Printf.printf "lower bound    %g\n" (Core.Bounds.lower_bound t);
        Printf.printf "naive upper    %g\n" (Core.Bounds.naive_upper_bound t);
        (try
           let b = Algos.Lp_um.lower_bound t in
           Printf.printf "LP lower bound %g (%d LP solves)\n"
             b.Algos.Lp_um.lower b.Algos.Lp_um.probes
         with Invalid_argument msg -> Printf.printf "LP lower bound n/a (%s)\n" msg);
        `Ok ()
  in
  let info = Cmd.info "bounds" ~doc:"Print makespan bounds for an instance." in
  Cmd.v info Term.(ret (const run $ file_arg))

(* --- observability flags -------------------------------------------------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record solver spans and write a Chrome trace-event file to \
           $(docv) (open in chrome://tracing or Perfetto).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print solver counters (and wall time) after the run.")

(* Returns a [finish] callback for the success path: stats footer first,
   then the trace file. Its result is the command's result, so an
   unwritable trace path surfaces as a CLI error, not a crash. Footers go
   to stderr so piped machine-readable stdout (CSV, schedules, the serve
   protocol) stays clean. *)
let obs_setup trace =
  if Option.is_some trace then Obs.Sink.enable ();
  let before = Obs.Counter.snapshot () in
  fun ~stats ->
    if stats then begin
      let table = Obs.Report.delta_table ~before in
      if Stats.Table.num_rows table > 0 then begin
        prerr_newline ();
        prerr_string (Stats.Table.to_string table);
        prerr_newline ()
      end
    end;
    match trace with
    | None -> `Ok ()
    | Some file -> (
        try
          Obs.Trace.to_file file;
          Printf.eprintf "wrote trace %s\n" file;
          `Ok ()
        with Sys_error msg ->
          `Error (false, Printf.sprintf "cannot write trace: %s" msg))

(* --- solve --------------------------------------------------------------- *)

let solve_cmd =
  let algo_arg =
    let doc =
      "Algorithm: greedy, lpt, oblivious-lpt, ptas, rounding, ra2, cu3, portfolio, exact."
    in
    Arg.(value & opt string "greedy" & info [ "algo"; "a" ] ~docv:"ALGO" ~doc)
  in
  let eps_arg =
    Arg.(value & opt float 0.5 & info [ "eps" ] ~doc:"Accuracy for the PTAS.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Seed for randomized algorithms.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the full schedule.")
  in
  let gantt_arg =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Print an ASCII Gantt chart.")
  in
  let save_arg =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE"
           ~doc:"Write the schedule to $(docv).")
  in
  let run algo eps seed verbose gantt save trace stats path =
    match read_instance path with
    | Error msg -> `Error (false, msg)
    | Ok t -> (
        let finish = obs_setup trace in
        let exact_outcome = ref None in
        let solve () =
          match algo with
          | "greedy" -> Ok (Algos.List_scheduling.schedule t)
          | "lpt" -> Ok (Algos.Lpt.schedule t)
          | "oblivious-lpt" -> Ok (Algos.Lpt.setup_oblivious t)
          | "ptas" -> Ok (Algos.Uniform_ptas.schedule ~eps t)
          | "rounding" ->
              Ok (fst (Algos.Randomized_rounding.schedule
                         (Workloads.Rng.create seed) t))
          | "ra2" -> Ok (Algos.Ra_class_uniform.schedule t)
          | "cu3" -> Ok (Algos.Um_class_uniform.schedule t)
          | "portfolio" ->
              let report = Algos.Portfolio.run ~seed t in
              Printf.printf "winner: %s\n" report.Algos.Portfolio.winner;
              List.iter
                (fun (name, ms) -> Printf.printf "  %-18s %g\n" name ms)
                report.Algos.Portfolio.all;
              Ok report.Algos.Portfolio.best
          | "exact" ->
              let outcome = Algos.Exact.solve t in
              exact_outcome := Some outcome;
              if not outcome.Algos.Exact.optimal then
                Printf.eprintf "warning: node limit hit, result may be suboptimal\n";
              Ok outcome.Algos.Exact.result
          | other -> Error (Printf.sprintf "unknown algorithm %S" other)
        in
        let outcome, secs =
          Obs.Span.timed "schedtool.solve" (fun () ->
              try solve () with Invalid_argument m -> Error m)
        in
        match outcome with
        | Error msg -> `Error (false, msg)
        | Ok r ->
            Printf.printf "makespan %g\n" r.Algos.Common.makespan;
            if stats then begin
              Printf.eprintf "wall time %.3f s\n" secs;
              Option.iter
                (fun (o : Algos.Exact.outcome) ->
                  Printf.eprintf "nodes explored %d\n" o.Algos.Exact.nodes;
                  Printf.eprintf "optimal %s\n"
                    (if o.Algos.Exact.optimal then "yes" else "no"))
                !exact_outcome
            end;
            if verbose then
              Format.printf "%a@." Core.Schedule.pp r.Algos.Common.schedule;
            if gantt then
              Format.printf "%a@." (Core.Timeline.pp_gantt t)
                r.Algos.Common.schedule;
            Option.iter
              (fun out ->
                Core.Schedule_io.to_file out r.Algos.Common.schedule;
                Printf.printf "wrote %s\n" out)
              save;
            finish ~stats)
  in
  let info = Cmd.info "solve" ~doc:"Schedule an instance with a chosen algorithm." in
  Cmd.v info
    Term.(
      ret
        (const run $ algo_arg $ eps_arg $ seed_arg $ verbose_arg $ gantt_arg
       $ save_arg $ trace_arg $ stats_arg $ file_arg))

(* --- verify ---------------------------------------------------------------- *)

let verify_cmd =
  let sched_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"SCHEDULE"
           ~doc:"Schedule file (see Schedule_io format).")
  in
  let run path sched_path =
    match read_instance path with
    | Error msg -> `Error (false, msg)
    | Ok t -> (
        match Core.Schedule_io.of_file t sched_path with
        | exception Core.Schedule_io.Parse_error msg ->
            Printf.printf "INVALID: %s\n" msg;
            `Error (false, msg)
        | sched ->
            Printf.printf "valid schedule\n";
            Printf.printf "makespan %g (lower bound %g)\n"
              (Core.Schedule.makespan sched)
              (Core.Bounds.lower_bound t);
            Printf.printf "setups paid: %d\n" (Core.Schedule.num_setups sched);
            Format.printf "%a@." (Core.Timeline.pp_gantt t) sched;
            `Ok ())
  in
  let info =
    Cmd.info "verify" ~doc:"Validate a schedule against an instance."
  in
  Cmd.v info Term.(ret (const run $ file_arg $ sched_arg))

(* --- compare ---------------------------------------------------------------- *)

let compare_cmd =
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Seed for randomized algorithms.")
  in
  let exact_arg =
    Arg.(value & flag & info [ "exact" ] ~doc:"Also run branch and bound.")
  in
  let run seed exact path =
    match read_instance path with
    | Error msg -> `Error (false, msg)
    | Ok t ->
        let table = Stats.Table.create [ "algorithm"; "makespan"; "setups" ] in
        let row name (r : Algos.Common.result) =
          Stats.Table.add_row table
            [
              name;
              Printf.sprintf "%g" r.Algos.Common.makespan;
              string_of_int (Core.Schedule.num_setups r.Algos.Common.schedule);
            ]
        in
        let attempt name f = try row name (f ()) with Invalid_argument _ -> () in
        attempt "greedy" (fun () -> Algos.List_scheduling.schedule t);
        attempt "lpt" (fun () -> Algos.Lpt.schedule t);
        attempt "oblivious-lpt" (fun () -> Algos.Lpt.setup_oblivious t);
        attempt "ptas eps=1/2" (fun () -> Algos.Uniform_ptas.schedule ~eps:0.5 t);
        attempt "rounding" (fun () ->
            fst (Algos.Randomized_rounding.schedule (Workloads.Rng.create seed) t));
        attempt "ra2" (fun () -> Algos.Ra_class_uniform.schedule t);
        attempt "cu3" (fun () -> Algos.Um_class_uniform.schedule t);
        if exact then
          attempt "exact" (fun () -> (Algos.Exact.solve t).Algos.Exact.result);
        Printf.printf "lower bound %g\n\n" (Core.Bounds.lower_bound t);
        Stats.Table.print table;
        `Ok ()
  in
  let info =
    Cmd.info "compare"
      ~doc:"Run every applicable algorithm on an instance and compare."
  in
  Cmd.v info Term.(ret (const run $ seed_arg $ exact_arg $ file_arg))

(* --- experiments ----------------------------------------------------------- *)

let experiments_cmd =
  let id_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID"
           ~doc:"Experiment id (E1..E8, A1..A4); omit to run all.")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ]
           ~doc:"Worker domains for running all experiments in parallel.")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ]
           ~doc:"Emit the table as CSV (single experiment only).")
  in
  let debug_arg =
    Arg.(value & flag & info [ "debug" ]
           ~doc:"Enable solver debug logging on stderr.")
  in
  let run jobs csv debug trace stats id =
    if debug then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Debug)
    end;
    let finish = obs_setup trace in
    match id with
    | None ->
        if csv then `Error (false, "--csv needs a single experiment id")
        else begin
          Experiments.Registry.run_all ~jobs ();
          finish ~stats
        end
    | Some id -> (
        match Experiments.Registry.find id with
        | Some e ->
            if csv then
              print_string (Stats.Table.to_csv (e.Experiments.Exp_common.run ()))
            else Experiments.Registry.run_one e;
            finish ~stats
        | None -> `Error (false, Printf.sprintf "unknown experiment %S" id))
  in
  let info = Cmd.info "experiments" ~doc:"Run the paper-reproduction experiments." in
  Cmd.v info
    Term.(
      ret
        (const run $ jobs_arg $ csv_arg $ debug_arg $ trace_arg $ stats_arg
       $ id_arg))

(* --- serve ------------------------------------------------------------- *)

let parse_hostport flag s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "%s expects HOST:PORT, got %S" flag s)
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 && host <> "" -> Ok (host, p)
      | Some _ | None ->
          Error (Printf.sprintf "%s expects HOST:PORT, got %S" flag s))

(* Dial a serve target — a Unix socket path or HOST:PORT (the same
   grammar every client command shares; see Serve.Scrape.resolve). *)
let connect_serve target =
  match Serve.Scrape.resolve target with
  | Error msg -> Error msg
  | Ok (domain, addr) -> (
      match
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        (try
           Unix.connect fd addr;
           if domain = Unix.PF_INET then Unix.setsockopt fd Unix.TCP_NODELAY true
         with e ->
           Unix.close fd;
           raise e);
        fd
      with
      | exception Unix.Unix_error (err, _, _) ->
          Error
            (Printf.sprintf "cannot connect to %s: %s" target
               (Unix.error_message err))
      | fd -> Ok fd)

let serve_cmd =
  let stdio_arg =
    Arg.(value & flag
         & info [ "stdio" ]
             ~doc:"Serve one session over stdin/stdout (scriptable).")
  in
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Listen on a Unix-domain socket at $(docv); each \
                   connection is a session, handled concurrently. \
                   Combined with $(b,--tcp), the path is served by the \
                   same multiplexed event loop.")
  in
  let tcp_arg =
    Arg.(value & opt (some string) None
         & info [ "tcp" ] ~docv:"HOST:PORT"
             ~doc:"Listen on a TCP address through the multiplexed \
                   event loop: non-blocking socket I/O, request \
                   pipelining, bounded admission queue with \
                   deadline-aware shedding (see $(b,--max-pending)). \
                   Port 0 picks a free port (printed on stderr).")
  in
  let router_arg =
    Arg.(value & flag
         & info [ "router" ]
             ~doc:"Shard-router mode: forward each request to one of \
                   $(b,--backends) by consistent-hashing its canonical \
                   instance fingerprint, so repeated and permuted \
                   instances land on the shard that already cached \
                   them. Listens on --socket or --tcp.")
  in
  let backends_arg =
    Arg.(value & opt (some string) None
         & info [ "backends" ] ~docv:"T1,T2,..."
             ~doc:"Router backends: comma-separated server targets \
                   (Unix socket paths or HOST:PORT).")
  in
  let max_pending_arg =
    Arg.(value & opt int 64
         & info [ "max-pending" ] ~docv:"N"
             ~doc:"Mux admission bound: at most $(docv) solver-bound \
                   requests queued (halved when health is degraded, \
                   zero when unhealthy); excess requests are shed with \
                   an immediate degraded fast-path reply.")
  in
  let cache_arg =
    Arg.(value & opt int 128
         & info [ "cache-size" ] ~docv:"N"
             ~doc:"Result cache capacity (canonicalized instances).")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains for concurrent sessions (default: \
                   auto).")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Default per-request time budget for requests that \
                   name none.")
  in
  let slow_ms_arg =
    Arg.(value & opt (some float) None
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Dump the flight recorder's slice for any request \
                   slower than $(docv) milliseconds (error/degraded \
                   responses always dump once a dump destination is \
                   active). Dumps go to --slow-log, or stderr.")
  in
  let slow_log_arg =
    Arg.(value & opt (some string) None
         & info [ "slow-log" ] ~docv:"FILE"
             ~doc:"Append slow-request recorder dumps (JSON lines) to \
                   $(docv) instead of stderr; also activates dumping \
                   for error/degraded responses even without \
                   --slow-ms.")
  in
  let event_log_arg =
    Arg.(value & opt (some string) None
         & info [ "event-log" ] ~docv:"FILE"
             ~doc:"Mirror every flight-recorder event to $(docv) as \
                   JSON lines for live tailing.")
  in
  let task_budget_arg =
    Arg.(value & opt float 30.0
         & info [ "task-budget" ] ~docv:"SECS"
             ~doc:"Watchdog budget: a pool task whose heartbeat is older \
                   than $(docv) seconds is flagged stuck (one \
                   health.stuck_task event + rate-bounded recorder \
                   dump).")
  in
  let watchdog_arg =
    Arg.(value & opt float 1.0
         & info [ "watchdog-interval" ] ~docv:"SECS"
             ~doc:"Period of the background watchdog/SLO-sampling \
                   ticker; 0 disables it (health frames still sample on \
                   demand). The ticker also sweeps idle sessions.")
  in
  let max_sessions_arg =
    Arg.(value & opt int 64
         & info [ "max-sessions" ] ~docv:"N"
             ~doc:"Live scheduling-session cap; further creates are \
                   rejected.")
  in
  let session_idle_arg =
    Arg.(value & opt (some float) None
         & info [ "session-idle-timeout" ] ~docv:"SECS"
             ~doc:"Evict sessions idle for more than $(docv) seconds \
                   (default: never).")
  in
  let fallback_ratio_arg =
    Arg.(value & opt float 2.0
         & info [ "session-fallback-ratio" ] ~docv:"R"
             ~doc:"Re-solve a session from scratch when its repaired \
                   makespan exceeds $(docv) times the certified lower \
                   bound (must be >= 1).")
  in
  let phase_ring_arg =
    Arg.(value & opt int Obs.Phase.default_capacity
         & info [ "phase-ring" ] ~docv:"N"
             ~doc:"Per-domain phase-recorder ring capacity in records \
                   (bounds how far back explain/trace can look; see \
                   DESIGN.md for the memory cost per slot).")
  in
  let event_ring_arg =
    Arg.(value & opt int Obs.Event.default_capacity
         & info [ "event-ring" ] ~docv:"N"
             ~doc:"Per-domain flight-recorder ring capacity in events \
                   (bounds the dump/events-frame lookback; see DESIGN.md \
                   for the memory cost per slot).")
  in
  let run stdio socket tcp router backends max_pending cache_size jobs
      deadline slow_ms slow_log event_log task_budget watchdog_interval
      max_sessions session_idle fallback_ratio phase_ring event_ring trace
      stats =
    let finish = obs_setup trace in
    if cache_size < 1 then `Error (false, "--cache-size must be >= 1")
    else if max_pending < 1 then `Error (false, "--max-pending must be >= 1")
    else if task_budget <= 0.0 then
      `Error (false, "--task-budget must be > 0")
    else if watchdog_interval < 0.0 then
      `Error (false, "--watchdog-interval must be >= 0")
    else if max_sessions < 1 then
      `Error (false, "--max-sessions must be >= 1")
    else if fallback_ratio < 1.0 then
      `Error (false, "--session-fallback-ratio must be >= 1")
    else if
      match session_idle with Some s -> s < 0.0 | None -> false
    then `Error (false, "--session-idle-timeout must be >= 0")
    else if phase_ring < 1 then `Error (false, "--phase-ring must be >= 1")
    else if event_ring < 1 then `Error (false, "--event-ring must be >= 1")
    else begin
      (* resize before any serving traffic: set_capacity clears rings *)
      if phase_ring <> Obs.Phase.default_capacity then
        Obs.Phase.set_capacity phase_ring;
      if event_ring <> Obs.Event.default_capacity then
        Obs.Event.set_capacity event_ring;
      let to_close = ref [] in
      let open_log path =
        let oc =
          open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path
        in
        to_close := oc :: !to_close;
        oc
      in
      (* dumping is active when a destination is: --slow-log names the
         file, a bare --slow-ms defaults to stderr *)
      let dump_destination () =
        match slow_log with
        | Some path -> Some (open_log path)
        | None -> if Option.is_some slow_ms then Some stderr else None
      in
      match dump_destination () with
      | exception Sys_error msg ->
          `Error (false, Printf.sprintf "cannot open --slow-log: %s" msg)
      | dump_channel -> (
          match Option.map open_log event_log with
          | exception Sys_error msg ->
              `Error (false, Printf.sprintf "cannot open --event-log: %s" msg)
          | event_sink ->
              Obs.Event.set_json_sink event_sink;
              (* post-mortem hook: SIGQUIT (ctrl-\) dumps every domain's
                 ring to stderr without stopping the server *)
              Sys.set_signal Sys.sigquit
                (Sys.Signal_handle (fun _ -> Obs.Event.dump_jsonl stderr));
              let config =
                {
                  Serve.Server.cache_capacity = cache_size;
                  default_deadline_ms = deadline;
                  jobs =
                    (match jobs with
                    | Some j -> max 1 j
                    | None -> Parallel.Pool.default_jobs ());
                  slow_ms;
                  dump_channel;
                  dump_min_interval_s =
                    Serve.Server.default_config.Serve.Server.dump_min_interval_s;
                  task_budget_s = task_budget;
                  watchdog_interval_s =
                    (if watchdog_interval > 0.0 then Some watchdog_interval
                     else None);
                  session =
                    {
                      Serve.Session.default_config with
                      Serve.Session.max_sessions;
                      idle_timeout_s = session_idle;
                      fallback_ratio;
                    };
                  prehash_cap =
                    Serve.Server.default_config.Serve.Server.prehash_cap;
                }
              in
              let cleanup () =
                Obs.Event.set_json_sink None;
                List.iter
                  (fun oc -> try close_out oc with Sys_error _ -> ())
                  !to_close
              in
              let banner addr =
                match (addr : Unix.sockaddr) with
                | Unix.ADDR_INET (ip, p) ->
                    Printf.eprintf "serving on %s:%d\n%!"
                      (Unix.string_of_inet_addr ip) p
                | Unix.ADDR_UNIX p -> Printf.eprintf "serving on %s\n%!" p
              in
              let serve_router () =
                let backend_list =
                  match backends with
                  | None -> []
                  | Some b ->
                      String.split_on_char ',' b |> List.map String.trim
                      |> List.filter (( <> ) "")
                in
                if backend_list = [] then
                  `Error (false, "--router requires --backends T1,T2,...")
                else if stdio then
                  `Error (false, "--router cannot serve --stdio")
                else
                  match (socket, tcp) with
                  | None, None ->
                      `Error
                        ( false,
                          "--router needs a listener: --socket PATH or --tcp \
                           HOST:PORT" )
                  | Some _, Some _ ->
                      `Error
                        ( false,
                          "choose one of --socket or --tcp for the router \
                           listener" )
                  | listener -> (
                      let rt = Serve.Router.create backend_list in
                      let stop _ = Serve.Router.stop rt in
                      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
                      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
                      match
                        (match listener with
                        | Some path, None ->
                            Serve.Router.bind_unix rt ~path;
                            banner (Unix.ADDR_UNIX path)
                        | None, Some hp -> (
                            match parse_hostport "--tcp" hp with
                            | Ok (host, port) ->
                                banner (Serve.Router.bind_tcp rt ~host ~port)
                            | Error msg -> failwith msg)
                        | _ -> assert false);
                        Printf.eprintf "routing across %d backend(s)\n%!"
                          (Serve.Router.backend_count rt);
                        Serve.Router.run rt
                      with
                      | () ->
                          Serve.Router.shutdown rt;
                          finish ~stats
                      | exception Failure msg ->
                          Serve.Router.shutdown rt;
                          `Error (false, msg)
                      | exception Unix.Unix_error (err, _, _) ->
                          Serve.Router.shutdown rt;
                          `Error
                            ( false,
                              Printf.sprintf "cannot listen: %s"
                                (Unix.error_message err) ))
              in
              let serve_mux hp =
                match parse_hostport "--tcp" hp with
                | Error msg -> `Error (false, msg)
                | Ok (host, port) -> (
                    let server = Serve.Server.create config in
                    let mux =
                      Serve.Mux.create
                        ~config:
                          {
                            Serve.Mux.max_pending;
                            max_connections =
                              Serve.Mux.default_config
                                .Serve.Mux.max_connections;
                          }
                        server
                    in
                    let stop _ = Serve.Mux.stop mux in
                    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
                    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
                    match
                      let addr = Serve.Mux.add_tcp mux ~host ~port in
                      Option.iter
                        (fun path -> Serve.Mux.add_unix mux ~path)
                        socket;
                      addr
                    with
                    | exception Unix.Unix_error (err, _, _) ->
                        Serve.Server.shutdown server;
                        `Error
                          ( false,
                            Printf.sprintf "cannot listen on %s: %s" hp
                              (Unix.error_message err) )
                    | addr ->
                        banner addr;
                        Option.iter
                          (fun path -> banner (Unix.ADDR_UNIX path))
                          socket;
                        Serve.Mux.run mux;
                        Serve.Server.shutdown server;
                        finish ~stats)
              in
              let result =
                if router then serve_router ()
                else
                  match (stdio, socket, tcp) with
                  | false, _, Some hp -> serve_mux hp
                  | true, None, None ->
                      let server = Serve.Server.create config in
                      Serve.Server.run_stdio server;
                      Serve.Server.shutdown server;
                      finish ~stats
                  | false, Some path, None -> (
                      let server = Serve.Server.create config in
                      let stop _ = Serve.Server.stop server in
                      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
                      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
                      Printf.eprintf "serving on %s\n%!" path;
                      match Serve.Server.listen server ~path with
                      | () ->
                          Serve.Server.shutdown server;
                          finish ~stats
                      | exception Unix.Unix_error (err, _, _) ->
                          Serve.Server.shutdown server;
                          `Error
                            ( false,
                              Printf.sprintf "cannot listen on %s: %s" path
                                (Unix.error_message err) ))
                  | true, _, _ | false, None, None ->
                      `Error
                        ( false,
                          "choose exactly one of --stdio, --socket PATH or \
                           --tcp HOST:PORT (--socket may combine with --tcp)"
                        )
              in
              cleanup ();
              result)
    end
  in
  let info =
    Cmd.info "serve"
      ~doc:"Run the scheduling service (see the wire format in README)."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ stdio_arg $ socket_arg $ tcp_arg $ router_arg
       $ backends_arg $ max_pending_arg $ cache_arg $ jobs_arg
       $ deadline_arg $ slow_ms_arg $ slow_log_arg $ event_log_arg
       $ task_budget_arg $ watchdog_arg $ max_sessions_arg
       $ session_idle_arg $ fallback_ratio_arg $ phase_ring_arg
       $ event_ring_arg $ trace_arg $ stats_arg))

(* --- loadgen ------------------------------------------------------------ *)

(* Session-mode mutation: clone a random job of the client-side copy, so
   the addition is valid in every environment (a ptimes column for
   unrelated, an eligibility column for restricted). *)
let clone_random_job rng inst =
  let m = Core.Instance.num_machines inst in
  let job = Workloads.Rng.int rng (Core.Instance.num_jobs inst) in
  let nptimes =
    match inst.Core.Instance.env with
    | Core.Instance.Unrelated p -> Some (Array.init m (fun i -> p.(i).(job)))
    | Core.Instance.Identical | Core.Instance.Uniform _
    | Core.Instance.Restricted _ ->
        None
  in
  let neligible =
    match inst.Core.Instance.env with
    | Core.Instance.Restricted e -> Some (Array.init m (fun i -> e.(i).(job)))
    | Core.Instance.Identical | Core.Instance.Uniform _
    | Core.Instance.Unrelated _ ->
        None
  in
  {
    Core.Instance.nsize = inst.Core.Instance.sizes.(job);
    nclass = inst.Core.Instance.job_class.(job);
    nptimes;
    neligible;
  }

(* Drive [sessions] full lifecycles: create, resolve (from scratch),
   then [mutations] alternating add/drop mutations each followed by an
   incremental resolve, then close. Latencies land in two buckets —
   first resolves (full solves) vs mutation resolves (repairs) — so the
   printed speedup compares p50 from-scratch against p50 repair; cache
   hits say nothing about solver latency and are excluded from both. *)
let loadgen_sessions ~ic ~oc ~instance ~path ~sessions ~mutations ~deadline
    ~permute ~seed ~json =
  let rng = Workloads.Rng.create seed in
  let h_full = Obs.Histogram.make "loadgen.session_full_us" in
  let h_repair = Obs.Histogram.make "loadgen.session_repair_us" in
  let repairs = ref 0 and fallbacks = ref 0 and cache_hits = ref 0 in
  let full_solves = ref 0 and errors = ref 0 in
  let slowest_full = ref (neg_infinity, "") in
  let attempted = ref 0 in
  let transport_error = ref None in
  let exception Transport of string in
  let exchange req =
    incr attempted;
    Serve.Proto.write_session_request oc req;
    match Serve.Proto.read_response ic with
    | Ok (Some resp) -> resp
    | Ok None -> raise (Transport "server closed the session")
    | Error msg -> raise (Transport msg)
    | exception Sys_error msg -> raise (Transport msg)
  in
  let count_mode = function
    | Some "cache" -> incr cache_hits
    | Some "repair" -> incr repairs
    | Some "fallback" -> incr fallbacks
    | Some "full" -> incr full_solves
    | Some _ | None -> ()
  in
  let t_start = Obs.Sink.now_us () in
  (try
     for s = 1 to sessions do
       let base =
         if permute then Serve.Canon.shuffle rng instance else instance
       in
       let sid = Printf.sprintf "lg%d-%d" seed s in
       Obs.Sink.with_ctx sid @@ fun () ->
       Obs.Span.phase ~detail:("sid=" ^ sid) "loadgen.session" @@ fun () ->
       (* every frame of the lifecycle carries the session id as its
          trace id, with the client's open span as the parent link *)
       let tr () =
         Some { Serve.Proto.tid = sid; parent = Obs.Sink.current_span () }
       in
       let resolve hist =
         let t0 = Obs.Sink.now_us () in
         match
           exchange
             {
               Serve.Proto.sid;
               op = Serve.Proto.S_resolve { deadline_ms = deadline }; trace = tr ()
             }
         with
         | Serve.Proto.Session_reply r ->
             let dt = Obs.Sink.now_us () -. t0 in
             count_mode r.Serve.Proto.mode;
             if r.Serve.Proto.mode <> Some "cache" then begin
               Obs.Histogram.observe hist dt;
               if hist == h_full && dt > fst !slowest_full then
                 slowest_full := (dt, sid)
             end
         | _ -> incr errors
       in
       (match exchange { Serve.Proto.sid; op = Serve.Proto.S_create base; trace = tr () } with
       | Serve.Proto.Session_reply _ ->
           resolve h_full;
           let local = ref base in
           for k = 1 to mutations do
             (if k land 1 = 0 && Core.Instance.num_jobs !local > 1 then begin
                let n = Core.Instance.num_jobs !local in
                match
                  exchange
                    { Serve.Proto.sid; op = Serve.Proto.S_drop_jobs [ n - 1 ]; trace = tr () }
                with
                | Serve.Proto.Session_reply _ ->
                    local :=
                      Core.Instance.induced !local (List.init (n - 1) Fun.id)
                | _ -> incr errors
              end
              else begin
                let job = clone_random_job rng !local in
                match
                  exchange
                    { Serve.Proto.sid; op = Serve.Proto.S_add_jobs [ job ]; trace = tr () }
                with
                | Serve.Proto.Session_reply _ ->
                    local := Core.Instance.append_jobs !local [ job ]
                | _ -> incr errors
              end);
             resolve h_repair
           done;
           (match exchange { Serve.Proto.sid; op = Serve.Proto.S_close; trace = tr () } with
           | Serve.Proto.Session_reply _ -> ()
           | _ -> incr errors)
       | _ -> incr errors)
     done
   with Transport msg -> transport_error := Some msg);
  let wall_ns = (Obs.Sink.now_us () -. t_start) *. 1e3 in
  match !transport_error with
  | Some msg -> `Error (false, "session loadgen aborted: " ^ msg)
  | None ->
      let sf = Obs.Histogram.merged h_full in
      let sr = Obs.Histogram.merged h_repair in
      let q s p =
        if s.Obs.Histogram.count = 0 then nan else Obs.Histogram.quantile s p
      in
      Printf.printf "sessions   %d\n" sessions;
      Printf.printf "frames     %d\n" !attempted;
      Printf.printf "full       %d (p50 %.0f us)\n" !full_solves (q sf 0.5);
      Printf.printf "repairs    %d (p50 %.0f us)\n" !repairs (q sr 0.5);
      Printf.printf "fallbacks  %d\n" !fallbacks;
      Printf.printf "cache      %d\n" !cache_hits;
      Printf.printf "errors     %d\n" !errors;
      let speedup = q sf 0.5 /. q sr 0.5 in
      if Float.is_finite speedup then
        Printf.printf "speedup    %.1fx (full p50 / repair p50)\n" speedup;
      Option.iter
        (fun file ->
          let record =
            {
              Obs.Expo.bname = "loadgen sessions " ^ Filename.basename path;
              iterations = !attempted;
              wall_ns;
              percentiles =
                (if sf.Obs.Histogram.count > 0 then
                   [ ("full_p50_us", q sf 0.5) ]
                 else [])
                @ (if sr.Obs.Histogram.count > 0 then
                     [
                       ("repair_p50_us", q sr 0.5);
                       ("repair_p90_us", q sr 0.9);
                     ]
                   else []);
              counters =
                [
                  ("loadgen.sessions", sessions);
                  ("loadgen.full", !full_solves);
                  ("loadgen.repairs", !repairs);
                  ("loadgen.fallbacks", !fallbacks);
                  ("loadgen.cache_hits", !cache_hits);
                  ("loadgen.errors", !errors);
                ]
                @
                if Float.is_finite speedup then
                  [ ("loadgen.speedup_x100", int_of_float (speedup *. 100.0)) ]
                else [];
              trace_ids =
                (if snd !slowest_full <> "" then
                   [ ("slowest_full", snd !slowest_full) ]
                 else []);
            }
          in
          let out = open_out file in
          output_string out (Obs.Expo.bench_records_json [ record ]);
          close_out out;
          Printf.printf "wrote %s\n" file)
        json;
      if !errors > 0 && !full_solves + !repairs + !fallbacks + !cache_hits = 0
      then `Error (false, Printf.sprintf "all %d frame(s) failed" !attempted)
      else `Ok ()

let loadgen_cmd =
  let socket_arg =
    Arg.(required & opt (some string) None
         & info [ "socket" ] ~docv:"TARGET"
             ~doc:"Connect to a running $(b,schedtool serve) at $(docv): \
                   a Unix socket path, or HOST:PORT for a $(b,--tcp) \
                   server.")
  in
  let connections_arg =
    Arg.(value & opt int 1
         & info [ "connections" ] ~docv:"N"
             ~doc:"Hold $(docv) concurrent connections and round-robin \
                   the requests across them (one-shot mode).")
  in
  let pipeline_arg =
    Arg.(value & flag
         & info [ "pipeline" ]
             ~doc:"Write every request before reading any response \
                   (per-connection order is preserved). Exercises \
                   request pipelining and, against a bounded admission \
                   queue, overload shedding.")
  in
  let hold_open_arg =
    Arg.(value & flag
         & info [ "hold-open" ]
             ~doc:"Slow-client mode: open $(b,--connections) sockets, \
                   send a partial frame on each, and hold them open for \
                   $(b,--hold-seconds) without reading — the server \
                   must keep serving other clients meanwhile.")
  in
  let hold_seconds_arg =
    Arg.(value & opt float 10.0
         & info [ "hold-seconds" ] ~docv:"SECS"
             ~doc:"How long $(b,--hold-open) keeps its connections \
                   parked.")
  in
  let count_arg =
    Arg.(value & opt int 20
         & info [ "n"; "requests" ] ~docv:"N" ~doc:"Number of requests.")
  in
  let solver_arg =
    Arg.(value & opt (some string) None
         & info [ "solver" ] ~docv:"S" ~doc:"Solver hint sent with each \
                                             request.")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Per-request deadline sent with each request.")
  in
  let permute_arg =
    Arg.(value & flag
         & info [ "permute" ]
             ~doc:"Send a random relabeling of the instance each time \
                   (exercises the canonicalizing cache).")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Relabeling RNG seed.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the run as a BENCH_serve.json-style record \
                   (latency percentiles + outcome counters) to $(docv).")
  in
  let sessions_arg =
    Arg.(value & opt int 0
         & info [ "sessions" ] ~docv:"N"
             ~doc:"Drive $(docv) session lifecycles (create / mutate / \
                   resolve / close) instead of one-shot requests; reports \
                   repair-vs-from-scratch latency.")
  in
  let mutations_arg =
    Arg.(value & opt int 4
         & info [ "mutations" ] ~docv:"K"
             ~doc:"Mutations per session in $(b,--sessions) mode \
                   (alternating job add / drop, each followed by an \
                   incremental resolve).")
  in
  let run socket count solver deadline permute seed json sessions mutations
      connections pipeline hold_open hold_seconds trace path =
    if sessions < 0 then `Error (false, "--sessions must be >= 0")
    else if mutations < 0 then `Error (false, "--mutations must be >= 0")
    else if connections < 1 then `Error (false, "--connections must be >= 1")
    else
    let finish = obs_setup trace in
    match read_instance path with
    | Error msg -> `Error (false, msg)
    | Ok instance -> (
        (* a server vanishing mid-run must surface as a counted
           transport error, not a SIGPIPE death *)
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        let connect_one () = connect_serve socket in
        if hold_open then begin
          (* slow-client mode: park connections mid-frame (header sent,
             body never arriving) so the server's event loop has to keep
             the buffers around while still serving everyone else *)
          let held = ref [] in
          let failed = ref None in
          (try
             for _ = 1 to connections do
               match connect_one () with
               | Error msg ->
                   failed := Some msg;
                   raise Exit
               | Ok fd ->
                   held := fd :: !held;
                   let oc = Unix.out_channel_of_descr fd in
                   output_string oc "request v1\n";
                   flush oc
             done
           with Exit -> ());
          let release () =
            List.iter
              (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
              !held
          in
          match !failed with
          | Some msg ->
              let got = List.length !held in
              release ();
              `Error
                ( false,
                  Printf.sprintf "held %d of %d connection(s), then: %s" got
                    connections msg )
          | None ->
              Printf.printf "holding %d connection(s) open for %gs\n%!"
                connections hold_seconds;
              Unix.sleepf hold_seconds;
              release ();
              Printf.printf "released %d connection(s)\n" connections;
              finish ~stats:false
        end
        else
        let conns = Array.make connections None in
        let conn_error = ref None in
        (try
           for i = 0 to connections - 1 do
             match connect_one () with
             | Error msg ->
                 conn_error := Some msg;
                 raise Exit
             | Ok fd ->
                 conns.(i) <-
                   Some
                     ( fd,
                       Unix.in_channel_of_descr fd,
                       Unix.out_channel_of_descr fd )
           done
         with Exit -> ());
        let close_all () =
          Array.iter
            (function
              | Some (fd, _, _) -> (
                  try Unix.close fd with Unix.Unix_error _ -> ())
              | None -> ())
            conns
        in
        match !conn_error with
        | Some msg ->
            close_all ();
            `Error (false, msg)
        | None ->
            (* request i rides connection (i-1) mod N: round-robin *)
            let conn i =
              match conns.((i - 1) mod connections) with
              | Some c -> c
              | None -> assert false
            in
            if sessions > 0 then begin
              let _, ic, oc = conn 1 in
              let r =
                loadgen_sessions ~ic ~oc ~instance ~path ~sessions ~mutations
                  ~deadline ~permute ~seed ~json
              in
              close_all ();
              match r with `Ok () -> finish ~stats:false | other -> other
            end
            else begin
            let rng = Workloads.Rng.create seed in
            let hits = ref 0 and degraded = ref 0 and errors = ref 0 in
            let h_latency = Obs.Histogram.make "loadgen.request_latency_us" in
            let last_makespan = ref nan in
            let echo_bad = ref 0 in
            let slowest = ref (neg_infinity, "") in
            let transport_error = ref None in
            let attempted = ref 0 in
            let t_start = Obs.Sink.now_us () in
            (try
               if pipeline then begin
                 (* write-all-then-read-all: every request goes out before
                    any response is read, so a bounded admission queue sees
                    the whole burst at once. Per-connection response order
                    matches send order, so reading back in send order is
                    safe. Client spans are skipped — a span can't bracket a
                    send and a receive that overlap other requests. *)
                 let t_send = Array.make (count + 1) 0.0 in
                 let tids = Array.make (count + 1) "" in
                 (try
                    for i = 1 to count do
                      incr attempted;
                      let inst =
                        if permute then Serve.Canon.shuffle rng instance
                        else instance
                      in
                      let tid = Printf.sprintf "lg%d.%d" seed i in
                      tids.(i) <- tid;
                      let _, _, oc = conn i in
                      t_send.(i) <- Obs.Sink.now_us ();
                      Serve.Proto.write_request oc
                        {
                          Serve.Proto.solver;
                          deadline_ms = deadline;
                          instance = inst;
                          trace = Some { Serve.Proto.tid; parent = None };
                        }
                    done
                  with Sys_error msg ->
                    incr errors;
                    transport_error := Some msg;
                    raise Exit);
                 for i = 1 to count do
                   let _, ic, _ = conn i in
                   (match Serve.Proto.read_response ic with
                   | Ok (Some (Serve.Proto.Reply r)) ->
                       if r.Serve.Proto.trace <> Some tids.(i) then
                         incr echo_bad;
                       if r.Serve.Proto.cache_hit then incr hits;
                       if r.Serve.Proto.degraded then incr degraded;
                       last_makespan := r.Serve.Proto.makespan
                   | Ok (Some _) -> incr errors
                   | Ok None ->
                       incr errors;
                       transport_error := Some "server closed the session";
                       raise Exit
                   | Error msg ->
                       incr errors;
                       transport_error := Some msg;
                       raise Exit
                   | exception Sys_error msg ->
                       incr errors;
                       transport_error := Some msg;
                       raise Exit);
                   let dt = Obs.Sink.now_us () -. t_send.(i) in
                   if dt > fst !slowest then slowest := (dt, tids.(i));
                   Obs.Histogram.observe h_latency dt
                 done
               end
               else
               for i = 1 to count do
                 incr attempted;
                 let inst =
                   if permute then Serve.Canon.shuffle rng instance else instance
                 in
                 (* client-minted trace id, propagated on the wire; the
                    open client span becomes the server root's parent so
                    merged traces chain across the process boundary *)
                 let tid = Printf.sprintf "lg%d.%d" seed i in
                 Obs.Sink.with_ctx tid @@ fun () ->
                 Obs.Span.phase ~detail:("trace=" ^ tid) "loadgen.request"
                 @@ fun () ->
                 let _, ic, oc = conn i in
                 let t0 = Obs.Sink.now_us () in
                 (match
                    Serve.Proto.write_request oc
                      {
                        Serve.Proto.solver;
                        deadline_ms = deadline;
                        instance = inst;
                        trace =
                          Some
                            {
                              Serve.Proto.tid;
                              parent = Obs.Sink.current_span ();
                            };
                      };
                    Serve.Proto.read_response ic
                  with
                 | Ok (Some (Serve.Proto.Reply r)) ->
                     if r.Serve.Proto.trace <> Some tid then incr echo_bad;
                     if r.Serve.Proto.cache_hit then incr hits;
                     if r.Serve.Proto.degraded then incr degraded;
                     last_makespan := r.Serve.Proto.makespan
                 | Ok (Some (Serve.Proto.Stats_reply _))
                 | Ok (Some (Serve.Proto.Events_reply _))
                 | Ok (Some (Serve.Proto.Health_reply _))
                 | Ok (Some (Serve.Proto.Explain_reply _))
                 | Ok (Some (Serve.Proto.Session_reply _))
                 | Ok (Some (Serve.Proto.Profile_reply _))
                 | Ok (Some (Serve.Proto.Error _)) ->
                     incr errors
                 | Ok None ->
                     (* the server closed the stream: every further
                        request would fail identically, so stop *)
                     incr errors;
                     transport_error := Some "server closed the session";
                     raise Exit
                 | Error msg ->
                     incr errors;
                     transport_error := Some msg;
                     raise Exit
                 | exception Sys_error msg ->
                     incr errors;
                     transport_error := Some msg;
                     raise Exit);
                 let dt = Obs.Sink.now_us () -. t0 in
                 if dt > fst !slowest then slowest := (dt, tid);
                 Obs.Histogram.observe h_latency dt
               done
             with Exit -> ());
            let wall_ns = (Obs.Sink.now_us () -. t_start) *. 1e3 in
            close_all ();
            if !errors > 0 && !errors = !attempted then
              `Error
                ( false,
                  Printf.sprintf "all %d request(s) to %s failed%s" !attempted
                    socket
                    (match !transport_error with
                    | Some msg -> ": " ^ msg
                    | None -> "") )
            else begin
            if connections > 1 then
              Printf.printf "connections %d\n" connections;
            Printf.printf "requests  %d\n" !attempted;
            Printf.printf "hits      %d\n" !hits;
            Printf.printf "misses    %d\n" (!attempted - !hits - !errors);
            Printf.printf "errors    %d\n" !errors;
            Printf.printf "degraded  %d\n" !degraded;
            if !echo_bad > 0 then
              Printf.printf "trace-echo mismatches %d\n" !echo_bad;
            let s = Obs.Histogram.merged h_latency in
            let percentiles =
              if s.Obs.Histogram.count = 0 then []
              else
                [
                  ("p50_us", Obs.Histogram.quantile s 0.5);
                  ("p90_us", Obs.Histogram.quantile s 0.9);
                  ("p99_us", Obs.Histogram.quantile s 0.99);
                  ("max_us", s.Obs.Histogram.max_value);
                ]
            in
            if s.Obs.Histogram.count > 0 then begin
              Printf.printf "latency us  mean %.0f"
                (s.Obs.Histogram.sum /. float_of_int s.Obs.Histogram.count);
              List.iter
                (fun (k, v) ->
                  (* keys are "p50_us" etc.; print without the unit suffix *)
                  Printf.printf "  %s %.0f" (String.sub k 0 (String.length k - 3)) v)
                percentiles;
              print_newline ();
              Printf.printf "last makespan %g\n" !last_makespan
            end;
            Option.iter
              (fun file ->
                let record =
                  {
                    Obs.Expo.bname = "loadgen " ^ Filename.basename path;
                    iterations = !attempted;
                    wall_ns;
                    percentiles;
                    counters =
                      [
                        ("loadgen.connections", connections);
                        ("loadgen.hits", !hits);
                        ("loadgen.misses", !attempted - !hits - !errors);
                        ("loadgen.errors", !errors);
                        ("loadgen.degraded", !degraded);
                      ]
                      @
                      (if !echo_bad > 0 then
                         [ ("loadgen.trace_echo_bad", !echo_bad) ]
                       else []);
                    trace_ids =
                      (if snd !slowest <> "" then
                         [ ("slowest", snd !slowest) ]
                       else []);
                  }
                in
                let out = open_out file in
                output_string out (Obs.Expo.bench_records_json [ record ]);
                close_out out;
                Printf.printf "wrote %s\n" file)
              json;
            finish ~stats:false
            end
            end)
  in
  let info =
    Cmd.info "loadgen"
      ~doc:"Replay an instance against a running serve socket and report \
            hit rates and latency."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ socket_arg $ count_arg $ solver_arg $ deadline_arg
       $ permute_arg $ seed_arg $ json_arg $ sessions_arg $ mutations_arg
       $ connections_arg $ pipeline_arg $ hold_open_arg $ hold_seconds_arg
       $ trace_arg $ file_arg))

(* --- fuzz --------------------------------------------------------------- *)

let fuzz_cmd =
  let seconds_arg =
    Arg.(value & opt (some float) None
         & info [ "seconds" ] ~docv:"S"
             ~doc:"Time budget in seconds (default 5 when --cases is not \
                   given).")
  in
  let cases_arg =
    Arg.(value & opt (some int) None
         & info [ "cases" ] ~docv:"N"
             ~doc:"Stop after exactly $(docv) cases instead of a time \
                   budget (deterministic, what CI smoke uses).")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Root RNG seed; a run is reproducible from (seed, case \
                   index) alone.")
  in
  let algo_arg =
    Arg.(value & opt_all string []
         & info [ "algo"; "a" ] ~docv:"NAME"
             ~doc:"Fuzz only this registered algorithm (repeatable; \
                   default: all). See the registry names in DESIGN.md.")
  in
  let env_arg =
    Arg.(value & opt_all string []
         & info [ "env" ] ~docv:"ENV"
             ~doc:"Restrict to an environment: identical, uniform, \
                   restricted or unrelated (repeatable; default: cycle \
                   through all four).")
  in
  let no_shrink_arg =
    Arg.(value & flag
         & info [ "no-shrink" ]
             ~doc:"Report failures as generated, without delta-debugging \
                   them down first.")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Write minimal reproducers for any failure to $(docv) \
                   (created if missing).")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"DIR"
             ~doc:"Instead of fuzzing, replay every reproducer in \
                   $(docv) and fail if any still violates its property.")
  in
  let jobs_arg =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains; case RNGs are pre-split so results do \
                   not depend on $(docv).")
  in
  let max_jobs_arg =
    Arg.(value & opt int Check.Driver.default.Check.Driver.max_jobs
         & info [ "max-jobs" ] ~docv:"N"
             ~doc:"Largest generated instance, in jobs.")
  in
  let no_meta_arg =
    Arg.(value & flag
         & info [ "no-metamorphic" ]
             ~doc:"Skip the metamorphic relations (permute/scale/speed-up/\
                   drop-job); differential checks only.")
  in
  (* the check.* footer is the point of the exercise: always print it,
     --stats only adds the full delta table on top *)
  let print_check_footer () =
    let table = Obs.Report.prefix_table ~prefix:"check." in
    if Stats.Table.num_rows table > 0 then begin
      prerr_newline ();
      prerr_string (Stats.Table.to_string table)
    end
  in
  let print_failure (f : Check.Driver.failure) =
    Printf.printf "case %d (%s, %d jobs -> %d after %d shrink steps):\n"
      f.Check.Driver.case f.Check.Driver.env
      (Core.Instance.num_jobs f.Check.Driver.instance)
      (Core.Instance.num_jobs f.Check.Driver.shrunk)
      f.Check.Driver.shrink_steps;
    List.iter
      (fun v -> Printf.printf "  %s\n" (Check.Violation.to_string v))
      f.Check.Driver.violations;
    List.iter
      (fun p -> Printf.printf "  wrote %s\n" p)
      f.Check.Driver.corpus_paths
  in
  let replay_dir dir =
    let entries = Check.Corpus.load_dir dir in
    if entries = [] then begin
      Printf.printf "replay %s: empty corpus\n" dir;
      `Ok ()
    end
    else begin
      let bad = ref 0 in
      List.iter
        (fun (path, loaded) ->
          match loaded with
          | Error msg ->
              incr bad;
              Printf.printf "LOAD FAIL %s: %s\n" path msg
          | Ok entry -> (
              match Check.Corpus.replay entry with
              | [] -> Printf.printf "ok   %s\n" (Filename.basename path)
              | vs ->
                  incr bad;
                  Printf.printf "FAIL %s\n" (Filename.basename path);
                  List.iter
                    (fun v ->
                      Printf.printf "  %s\n" (Check.Violation.to_string v))
                    vs))
        entries;
      print_check_footer ();
      if !bad = 0 then begin
        Printf.printf "replayed %d reproducer(s), all fixed\n"
          (List.length entries);
        `Ok ()
      end
      else
        `Error
          ( false,
            Printf.sprintf "%d of %d reproducer(s) regressed" !bad
              (List.length entries) )
    end
  in
  let run seconds cases seed algos envs no_shrink corpus replay jobs max_jobs
      no_meta trace stats =
    let finish = obs_setup trace in
    match replay with
    | Some dir ->
        let r = replay_dir dir in
        (match finish ~stats with `Ok () -> r | err -> err)
    | None -> (
        let budget =
          match (cases, seconds) with
          | Some n, _ -> Ok (Check.Driver.Cases n)
          | None, Some s -> Ok (Check.Driver.Seconds s)
          | None, None -> Ok (Check.Driver.Seconds 5.0)
        in
        let env_kinds =
          List.fold_left
            (fun acc name ->
              match (acc, Check.Driver.env_of_string name) with
              | Error _, _ -> acc
              | Ok _, None -> Error (Printf.sprintf "unknown environment %S" name)
              | Ok ks, Some k -> Ok (ks @ [ k ]))
            (Ok []) envs
        in
        match (budget, env_kinds) with
        | Error msg, _ | _, Error msg -> `Error (false, msg)
        | Ok budget, Ok env_kinds -> (
            let config =
              {
                Check.Driver.default with
                Check.Driver.seed;
                budget;
                envs =
                  (if env_kinds = [] then Check.Driver.all_envs else env_kinds);
                algo_filter = algos;
                shrink = not no_shrink;
                corpus_dir = corpus;
                jobs = max 1 jobs;
                max_jobs;
                metamorphic = not no_meta;
              }
            in
            match Check.Driver.run config with
            | exception Invalid_argument msg -> `Error (false, msg)
            | summary ->
                List.iter print_failure summary.Check.Driver.failures;
                Printf.printf
                  "fuzzed %d case(s) in %.1f s (seed %d): %d violation(s)\n"
                  summary.Check.Driver.cases summary.Check.Driver.wall_s seed
                  summary.Check.Driver.violations;
                print_check_footer ();
                let r = finish ~stats in
                if summary.Check.Driver.violations = 0 then r
                else
                  `Error
                    ( false,
                      Printf.sprintf "%d invariant violation(s) found"
                        summary.Check.Driver.violations )))
  in
  let info =
    Cmd.info "fuzz"
      ~doc:"Differentially fuzz every registered algorithm against exact \
            and bound oracles, with metamorphic checks and failing-case \
            shrinking."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ seconds_arg $ cases_arg $ seed_arg $ algo_arg $ env_arg
       $ no_shrink_arg $ corpus_arg $ replay_arg $ jobs_arg $ max_jobs_arg
       $ no_meta_arg $ trace_arg $ stats_arg))

(* --- metrics ------------------------------------------------------------ *)

let metrics_cmd =
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Scrape a running $(b,schedtool serve --socket) at \
                   $(docv) via a stats admin frame (default: render \
                   this process's own registries).")
  in
  let format_arg =
    Arg.(value & opt (enum [ ("prometheus", Serve.Proto.Prometheus);
                             ("json", Serve.Proto.Json) ])
           Serve.Proto.Prometheus
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Exposition format: prometheus (text 0.0.4) or json.")
  in
  let watch_arg =
    Arg.(value & opt (some float) None
         & info [ "watch" ] ~docv:"SECS"
             ~doc:"Re-scrape every $(docv) seconds and print only the \
                   series that changed since the previous scrape \
                   (requires --socket; format is forced to \
                   prometheus).")
  in
  let scrapes_arg =
    Arg.(value & opt int 0
         & info [ "scrapes" ] ~docv:"N"
             ~doc:"With --watch: stop after $(docv) scrapes (default 0 \
                   = until interrupted). The first scrape is the \
                   baseline and prints no deltas.")
  in
  let render format =
    match (format : Serve.Proto.stats_format) with
    | Serve.Proto.Prometheus -> Obs.Expo.prometheus ()
    | Serve.Proto.Json -> Obs.Expo.json ()
  in
  (* --watch: snapshot-diff loop on the Scrape client (shared with
     `schedtool top`) — one line per scrape, then the changed series. *)
  let watch_loop path interval scrapes =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    match Serve.Scrape.connect path with
    | Error msg -> `Error (false, msg)
    | Ok conn ->
        let t0 = Unix.gettimeofday () in
        let rec go i prev =
          match Serve.Scrape.fetch_stats conn with
          | Error msg ->
              Serve.Scrape.close conn;
              `Error (false, msg)
          | Ok body ->
              let series = Serve.Scrape.parse_prometheus body in
              let elapsed = Unix.gettimeofday () -. t0 in
              if i = 1 then
                Printf.printf "scrape %d t=%.1fs series=%d (baseline)\n" i
                  elapsed (List.length series)
              else begin
                let ds =
                  Serve.Scrape.changed
                    (Serve.Scrape.diff ~before:prev ~after:series)
                in
                Printf.printf "scrape %d t=%.1fs series=%d changed=%d\n" i
                  elapsed (List.length series) (List.length ds);
                List.iter
                  (fun { Serve.Scrape.dname; current; d } ->
                    Printf.printf "  %-52s %14g %+g\n" dname current d)
                  ds
              end;
              flush stdout;
              if scrapes > 0 && i >= scrapes then begin
                Serve.Scrape.close conn;
                `Ok ()
              end
              else begin
                Unix.sleepf interval;
                go (i + 1) series
              end
        in
        go 1 []
  in
  let run socket format watch scrapes =
    match (watch, socket) with
    | Some _, None -> `Error (false, "--watch requires --socket")
    | Some interval, Some _ when interval <= 0.0 ->
        `Error (false, "--watch interval must be > 0")
    | Some interval, Some path -> watch_loop path interval scrapes
    | None, None ->
        (* local snapshot: the same renderer the serve stats frame uses,
           on this process's (mostly empty) registries — documents the
           format and lets scripts smoke-test the exposition offline *)
        Obs.Memprof.sample ();
        print_string (render format);
        `Ok ()
    | None, Some path -> (
        match connect_serve path with
        | Error msg -> `Error (false, msg)
        | Ok fd ->
            let ic = Unix.in_channel_of_descr fd in
            let oc = Unix.out_channel_of_descr fd in
            Serve.Proto.write_stats_request oc format;
            let result =
              match Serve.Proto.read_response ic with
              | Ok (Some (Serve.Proto.Stats_reply { body; _ })) ->
                  print_string body;
                  if body <> "" && body.[String.length body - 1] <> '\n' then
                    print_newline ();
                  `Ok ()
              | Ok (Some (Serve.Proto.Error msg)) -> `Error (false, msg)
              | Ok
                  (Some
                     ( Serve.Proto.Reply _ | Serve.Proto.Events_reply _
                     | Serve.Proto.Health_reply _ | Serve.Proto.Explain_reply _
                     | Serve.Proto.Session_reply _
                     | Serve.Proto.Profile_reply _ )) ->
                  `Error (false, "server answered the wrong frame kind")
              | Ok None -> `Error (false, "server closed the session")
              | Error msg -> `Error (false, msg)
            in
            (try Unix.close fd with Unix.Unix_error _ -> ());
            result)
  in
  let info =
    Cmd.info "metrics"
      ~doc:"Print live metrics (Prometheus text or JSON) from a running \
            serve socket, or this process's own snapshot; --watch \
            re-scrapes and shows only what changed."
  in
  Cmd.v info
    Term.(ret (const run $ socket_arg $ format_arg $ watch_arg $ scrapes_arg))

(* --- events ------------------------------------------------------------- *)

let events_cmd =
  let socket_arg =
    Arg.(required & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Tail the flight recorder of a running $(b,schedtool \
                   serve --socket) at $(docv) via an events admin \
                   frame.")
  in
  let count_arg =
    Arg.(value & opt int 50
         & info [ "n"; "count" ] ~docv:"N"
             ~doc:"Keep only the last $(docv) events (newest last).")
  in
  let level_arg =
    let parse s =
      match Obs.Event.level_of_string s with
      | Some l -> Ok l
      | None ->
          Error
            (`Msg (Printf.sprintf "expected debug|info|warn|error, got %S" s))
    in
    let print fmt l = Format.pp_print_string fmt (Obs.Event.level_to_string l) in
    Arg.(value & opt (conv (parse, print)) Obs.Event.Debug
         & info [ "level" ] ~docv:"LEVEL"
             ~doc:"Severity floor: debug, info, warn or error.")
  in
  let run socket count level =
    if count < 1 then `Error (false, "--count must be >= 1")
    else
      match connect_serve socket with
      | Error msg -> `Error (false, msg)
      | Ok fd ->
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          Serve.Proto.write_events_request ~count ~level oc;
          let result =
            match Serve.Proto.read_response ic with
            | Ok (Some (Serve.Proto.Events_reply { body })) ->
                print_string body;
                `Ok ()
            | Ok (Some (Serve.Proto.Error msg)) -> `Error (false, msg)
            | Ok
                (Some
                   ( Serve.Proto.Reply _ | Serve.Proto.Stats_reply _
                   | Serve.Proto.Health_reply _ | Serve.Proto.Explain_reply _
                   | Serve.Proto.Session_reply _
                   | Serve.Proto.Profile_reply _ )) ->
                `Error (false, "server answered the wrong frame kind")
            | Ok None -> `Error (false, "server closed the session")
            | Error msg -> `Error (false, msg)
          in
          (try Unix.close fd with Unix.Unix_error _ -> ());
          result
  in
  let info =
    Cmd.info "events"
      ~doc:"Tail recent flight-recorder events (JSON lines) from a \
            running serve socket."
  in
  Cmd.v info Term.(ret (const run $ socket_arg $ count_arg $ level_arg))

(* --- explain ------------------------------------------------------------ *)

(* Render one [phase] payload line of an explain reply. The wire format
   is [k=v] tokens with [detail] last (it may contain spaces). *)
let render_phase_line line =
  let fields = String.split_on_char ' ' line in
  let find key =
    let prefix = key ^ "=" in
    List.find_map
      (fun tok ->
        if String.starts_with ~prefix tok then
          Some
            (String.sub tok (String.length prefix)
               (String.length tok - String.length prefix))
        else None)
      fields
  in
  (* detail is the last token and may contain spaces: cut at the literal
     [ detail=] marker instead of tokenizing *)
  let detail =
    let marker = " detail=" in
    let ml = String.length marker and ll = String.length line in
    let rec find i =
      if i + ml > ll then None
      else if String.sub line i ml = marker then Some (i + ml)
      else find (i + 1)
    in
    match find 0 with
    | Some start -> String.sub line start (ll - start)
    | None -> ""
  in
  let num key = Option.bind (find key) float_of_string_opt in
  let depth =
    match Option.bind (find "depth") int_of_string_opt with
    | Some d -> d
    | None -> 0
  in
  let name = Option.value ~default:"?" (find "name") in
  let dur = Option.value ~default:nan (num "dur_us") in
  let alloc = Option.value ~default:0.0 (num "alloc_b") in
  Printf.printf "%-*s%-*s %10.1f us %10.0f B%s\n" (2 * depth) "" (40 - (2 * depth))
    name dur alloc
    (if detail = "" then "" else "  " ^ detail)

let explain_cmd =
  let socket_arg =
    Arg.(required & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Ask a running $(b,schedtool serve --socket) at $(docv) \
                   for the phase tree of one request.")
  in
  let id_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ID"
             ~doc:"Trace/request id to explain: a client-propagated trace \
                   id (e.g. $(b,lg1.7)) or a server-minted $(b,r<N>), as \
                   echoed on a reply's $(b,trace) line.")
  in
  let run socket id =
    match connect_serve socket with
    | Error msg -> `Error (false, msg)
    | Ok fd ->
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        Serve.Proto.write_explain_request oc id;
        let result =
          match Serve.Proto.read_response ic with
          | Ok (Some (Serve.Proto.Explain_reply { body })) ->
              String.split_on_char '\n' body
              |> List.iter (fun line ->
                     if String.starts_with ~prefix:"phase " line then
                       render_phase_line line
                     else if line <> "" then print_endline line);
              `Ok ()
          | Ok (Some (Serve.Proto.Error msg)) -> `Error (false, msg)
          | Ok
              (Some
                 ( Serve.Proto.Reply _ | Serve.Proto.Stats_reply _
                 | Serve.Proto.Events_reply _ | Serve.Proto.Health_reply _
                 | Serve.Proto.Session_reply _
                 | Serve.Proto.Profile_reply _ )) ->
              `Error (false, "server answered the wrong frame kind")
          | Ok None -> `Error (false, "server closed the session")
          | Error msg -> `Error (false, msg)
        in
        (try Unix.close fd with Unix.Unix_error _ -> ());
        result
  in
  let info =
    Cmd.info "explain"
      ~doc:"Render the solver phase tree (wall time, allocation, \
            per-phase detail) of one recent request on a running serve \
            socket."
  in
  Cmd.v info Term.(ret (const run $ socket_arg $ id_arg))

(* --- trace (merge / validate) ------------------------------------------- *)

let trace_cmd =
  let merge_cmd =
    let files_arg =
      Arg.(non_empty & pos_all string []
           & info [] ~docv:"FILE" ~doc:"Chrome trace-event files to merge.")
    in
    let out_arg =
      Arg.(required & opt (some string) None
           & info [ "o"; "output" ] ~docv:"OUT"
               ~doc:"Write the merged trace to $(docv).")
    in
    let run files out =
      match Obs.Trace.merge_files files with
      | Error msg -> `Error (false, "merge failed: " ^ msg)
      | Ok text -> (
          match
            let oc = open_out out in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc text)
          with
          | () ->
              Printf.printf "merged %d file(s) into %s\n" (List.length files)
                out;
              `Ok ()
          | exception Sys_error msg ->
              `Error (false, "cannot write merged trace: " ^ msg))
    in
    let info =
      Cmd.info "merge"
        ~doc:"Merge Chrome trace files from several processes (e.g. a \
              loadgen client and the server that answered it) onto one \
              wall-clock timeline, one pid per input."
    in
    Cmd.v info Term.(ret (const run $ files_arg $ out_arg))
  in
  let validate_cmd =
    let file_arg =
      Arg.(required & pos 0 (some string) None
           & info [] ~docv:"FILE" ~doc:"Chrome trace-event file to check.")
    in
    let run file =
      match Obs.Trace.validate_file file with
      | Ok n ->
          Printf.printf "ok: %d event(s)\n" n;
          `Ok ()
      | Error msg -> `Error (false, "invalid trace: " ^ msg)
      | exception Sys_error msg -> `Error (false, msg)
    in
    let info =
      Cmd.info "validate"
        ~doc:"Self-check a Chrome trace-event file (required keys, \
              balanced span nesting per track)."
    in
    Cmd.v info Term.(ret (const run $ file_arg))
  in
  let info =
    Cmd.info "trace" ~doc:"Work with Chrome trace-event files."
  in
  Cmd.group info [ merge_cmd; validate_cmd ]

(* --- top ---------------------------------------------------------------- *)

let top_cmd =
  let socket_arg =
    Arg.(required & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Watch a running $(b,schedtool serve --socket) at \
                   $(docv): health + stats + events admin frames, \
                   rendered as a self-refreshing dashboard.")
  in
  let interval_arg =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECS"
             ~doc:"Refresh period (default 2).")
  in
  let once_arg =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Render a single frame as plain text (no screen \
                   clearing) and exit; for scripts and tests.")
  in
  let frames_arg =
    Arg.(value & opt int 0
         & info [ "frames" ] ~docv:"N"
             ~doc:"Stop after $(docv) frames (default 0 = until \
                   interrupted).")
  in
  let hotspots_arg =
    Arg.(value & opt float 0.0
         & info [ "hotspots" ] ~docv:"SECS"
             ~doc:"Add a hotspots panel: run a $(docv)-second CPU \
                   profile capture each frame and show the top frames \
                   by self time (0 = off). Lengthens each refresh by \
                   the capture window.")
  in
  let fmt_us us =
    if us = infinity then "inf"
    else if us >= 1_000_000.0 then Printf.sprintf "%.2fs" (us /. 1e6)
    else if us >= 1000.0 then Printf.sprintf "%.1fms" (us /. 1000.0)
    else Printf.sprintf "%.0fus" us
  in
  let run socket interval once frames hotspots =
    if interval <= 0.0 then `Error (false, "--interval must be > 0")
    else if hotspots < 0.0 then `Error (false, "--hotspots must be >= 0")
    else begin
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      match Serve.Scrape.connect socket with
      | Error msg -> `Error (false, msg)
      | Ok conn ->
          let buf = Buffer.create 4096 in
          let line fmt =
            Printf.ksprintf
              (fun s ->
                Buffer.add_string buf s;
                Buffer.add_char buf '\n')
              fmt
          in
          let ( let* ) r f =
            match r with Error e -> Error e | Ok v -> f v
          in
          (* One dashboard frame: scrape the three admin frames, render
             into [buf], and return the stats series so the next frame
             can show interval deltas (rate, last-interval latency). *)
          let frame ~first prev =
            let* health = Serve.Scrape.fetch_health conn in
            let* stats = Serve.Scrape.fetch_stats conn in
            let* events = Serve.Scrape.fetch_events ~count:400 conn in
            let series = Serve.Scrape.parse_prometheus stats in
            let hl = Serve.Scrape.health_lines health in
            Buffer.clear buf;
            let uptime =
              Option.value ~default:"-" (List.assoc_opt "uptime_s" hl)
            in
            line "schedtool top · %s · uptime %ss" socket uptime;
            List.iter
              (fun (k, rest) ->
                match k with
                | "status" -> line "health %s" rest
                | "reason" -> line "reason %s" rest
                | "liveness" -> line "liveness %s" rest
                | "liveness_reason" -> line "liveness_reason %s" rest
                | _ -> ())
              hl;
            (* burn rates, one line per objective × window *)
            List.iter
              (fun (k, rest) ->
                if k = "slo" then begin
                  let f = Serve.Scrape.kv_fields rest in
                  let get key =
                    Option.value ~default:"-" (List.assoc_opt key f)
                  in
                  line "slo %s %s burn=%s ratio=%s target=%s" (get "name")
                    (get "window") (get "burn") (get "ratio") (get "target")
                end)
              hl;
            let req status =
              Option.value ~default:0.0
                (Serve.Scrape.value series
                   (Printf.sprintf "serve_requests{status=%S}" status))
            in
            let ok = req "ok" and degraded = req "degraded" in
            let err = req "error" in
            let total = ok +. degraded +. err in
            let rate =
              if first then ""
              else
                let prev_total =
                  List.fold_left
                    (fun acc s ->
                      acc
                      +. Option.value ~default:0.0
                           (Serve.Scrape.value prev
                              (Printf.sprintf "serve_requests{status=%S}" s)))
                    0.0
                    [ "ok"; "degraded"; "error" ]
                in
                Printf.sprintf " rate=%.1f/s" ((total -. prev_total) /. interval)
            in
            line "requests ok=%.0f degraded=%.0f error=%.0f total=%.0f%s" ok
              degraded err total rate;
            let metric = "serve_request_latency_us" in
            let cum = Serve.Scrape.buckets series metric in
            let q pts p =
              match Serve.Scrape.quantile_of_buckets pts p with
              | Some v -> fmt_us v
              | None -> "-"
            in
            line "latency p50=%s p90=%s p99=%s (cumulative)" (q cum 0.5)
              (q cum 0.9) (q cum 0.99);
            if not first then begin
              let d = Serve.Scrape.delta_buckets ~before:prev ~after:series metric in
              line "latency p50=%s p90=%s p99=%s (last %.1fs)" (q d 0.5)
                (q d 0.9) (q d 0.99) interval
            end;
            let meters =
              List.filter_map
                (fun (k, rest) ->
                  if k <> "meter" then None
                  else
                    let f = Serve.Scrape.kv_fields rest in
                    match (List.assoc_opt "name" f, List.assoc_opt "fill" f) with
                    | Some n, Some fill -> Some (Printf.sprintf "%s=%s" n fill)
                    | _ -> None)
                hl
            in
            if meters <> [] then line "meters %s" (String.concat " " meters);
            List.iter
              (fun (k, rest) ->
                if k = "heartbeat" then begin
                  let f = Serve.Scrape.kv_fields rest in
                  let get key =
                    Option.value ~default:"-" (List.assoc_opt key f)
                  in
                  line "domain %s %s beat_age=%ss task=%s" (get "domain")
                    (get "state") (get "beat_age_s") (get "task")
                end)
              hl;
            (match Serve.Scrape.top_event_names ~limit:5 events with
            | [] -> line "events -"
            | tops ->
                line "events %s"
                  (String.concat " "
                     (List.map
                        (fun (n, c) -> Printf.sprintf "%s=%d" n c)
                        tops)));
            (* hotspots are a live capture, not a scrape of past state;
               a failed capture (e.g. an engine already armed by another
               client) degrades the panel, not the dashboard *)
            if hotspots > 0.0 then begin
              match Serve.Scrape.fetch_profile ~seconds:hotspots conn with
              | Error msg -> line "hotspots - (%s)" msg
              | Ok body -> (
                  match Serve.Scrape.top_self_frames ~limit:5 body with
                  | [] -> line "hotspots -"
                  | tops ->
                      line "hotspots %s"
                        (String.concat " "
                           (List.map
                              (fun (n, f) ->
                                Printf.sprintf "%s=%.1f%%" n (100.0 *. f))
                              tops)))
            end;
            Ok series
          in
          let rec go i prev =
            match frame ~first:(i = 1) prev with
            | Error msg ->
                Serve.Scrape.close conn;
                `Error (false, msg)
            | Ok series ->
                if not once then print_string "\027[2J\027[H";
                print_string (Buffer.contents buf);
                flush stdout;
                if once || (frames > 0 && i >= frames) then begin
                  Serve.Scrape.close conn;
                  `Ok ()
                end
                else begin
                  Unix.sleepf interval;
                  go (i + 1) series
                end
          in
          go 1 []
    end
  in
  let info =
    Cmd.info "top"
      ~doc:"Live dashboard over a running serve socket: composite \
            health, SLO burn rates, request rates and latency \
            percentiles, saturation meters, per-domain heartbeats, the \
            busiest event sources, and (with --hotspots) the hottest \
            frames from a live CPU profile capture."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ socket_arg $ interval_arg $ once_arg $ frames_arg
       $ hotspots_arg))

(* --- profile ------------------------------------------------------------ *)

(* The local mode re-enters the top-level command group to run the
   wrapped subcommand under an armed engine; the group is only defined
   below, so it arrives through this forward reference. *)
let main_ref : unit Cmd.t option ref = ref None

let profile_cmd =
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Capture from a running $(b,schedtool serve --socket) \
                   at $(docv) (a profile v1 admin frame) instead of \
                   wrapping a local command.")
  in
  let seconds_arg =
    Arg.(value & opt float 5.0
         & info [ "seconds" ] ~docv:"SECS"
             ~doc:"Capture window for --socket mode (default 5).")
  in
  let action_arg =
    Arg.(value & opt string "capture"
         & info [ "action" ] ~docv:"ACTION"
             ~doc:"Socket mode: capture (default, windowed), or \
                   status/start/stop to inspect or toggle the server's \
                   engine across round trips.")
  in
  let mode_arg =
    Arg.(value & opt string "cpu"
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"Engine: cpu (SIGPROF sampling at --rate hz) or alloc \
                   (Gc.Memprof, bytes-weighted stacks).")
  in
  let rate_arg =
    Arg.(value & opt (some float) None
         & info [ "rate" ] ~docv:"R"
             ~doc:"Sampling rate: hz for cpu (default 99), per-word \
                   probability for alloc (default 1e-4).")
  in
  let format_arg =
    Arg.(value & opt string "collapsed"
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output: collapsed (flamegraph-ready $(i,stack \
                   weight) lines) or json (one object per line).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the profile payload to $(docv) (default: \
                   stdout).")
  in
  let svg_arg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~docv:"FILE"
             ~doc:"Also render a self-contained flamegraph SVG to \
                   $(docv) (requires --format collapsed).")
  in
  let id_arg =
    Arg.(value & opt (some string) None
         & info [ "id" ] ~docv:"TRACE-ID"
             ~doc:"Keep only samples recorded while serving this \
                   trace/request id.")
  in
  let wrapped_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"SUBCOMMAND"
             ~doc:"Local mode: a schedtool subcommand (with its \
                   arguments, after --) to run under the profiler, \
                   e.g. $(b,schedtool profile -- solve -a exact \
                   inst.txt).")
  in
  let write_file path content =
    try
      Out_channel.with_open_bin path (fun oc -> output_string oc content);
      Printf.printf "wrote %s\n" path;
      Ok ()
    with Sys_error msg -> Error msg
  in
  let emit ~out ~svg ~title body =
    let ( let* ) r f = match r with Error e -> `Error (false, e) | Ok v -> f v in
    let* () = match out with None -> Ok () | Some path -> write_file path body in
    let* () =
      match svg with
      | None -> Ok ()
      | Some path ->
          write_file path (Obs.Flame.render_collapsed ~title body)
    in
    if out = None then print_string body;
    `Ok ()
  in
  let run socket seconds action mode rate format out svg id wrapped =
    let ( let* ) r f = match r with Error e -> `Error (false, e) | Ok v -> f v in
    let* pmode = Obs.Profile.mode_of_string mode in
    let* pformat = Obs.Profile.format_of_string format in
    if svg <> None && pformat <> Obs.Profile.Collapsed then
      `Error (false, "--svg requires --format collapsed")
    else if seconds <= 0.0 then `Error (false, "--seconds must be > 0")
    else
      match (socket, wrapped) with
      | Some _, _ :: _ ->
          `Error (false, "choose --socket PATH or a subcommand to wrap, not both")
      | None, [] ->
          `Error
            ( false,
              "nothing to profile: pass --socket PATH for a live capture, or \
               a subcommand to wrap (schedtool profile -- solve ...)" )
      | Some path, [] -> (
          let* paction =
            match action with
            | "capture" -> Ok (Serve.Proto.P_capture seconds)
            | "status" -> Ok Serve.Proto.P_status
            | "start" -> Ok Serve.Proto.P_start
            | "stop" -> Ok Serve.Proto.P_stop
            | a ->
                Error
                  (Printf.sprintf
                     "unknown action %S (want capture|status|start|stop)" a)
          in
          match Serve.Scrape.connect path with
          | Error msg -> `Error (false, msg)
          | Ok conn ->
              let result =
                Serve.Scrape.exchange_profile conn
                  {
                    Serve.Proto.paction;
                    pmode;
                    prate = rate;
                    pformat;
                    pfilter = id;
                  }
              in
              Serve.Scrape.close conn;
              let* body = result in
              (match paction with
              | Serve.Proto.P_status | Serve.Proto.P_start ->
                  (* status lines, not a profile: never SVG material *)
                  print_string body;
                  `Ok ()
              | Serve.Proto.P_stop | Serve.Proto.P_capture _ ->
                  emit ~out ~svg
                    ~title:(Printf.sprintf "schedtool profile · %s · %s" path mode)
                    body))
      | None, args -> (
          if action <> "capture" then
            `Error (false, "--action only applies to --socket mode")
          else
            match !main_ref with
            | None -> assert false
            | Some main -> (
                match Obs.Profile.start ?rate pmode with
                | Error msg -> `Error (false, msg)
                | Ok () ->
                    let code =
                      Cmd.eval ~argv:(Array.of_list ("schedtool" :: args)) main
                    in
                    let body = Obs.Profile.render ?ctx:id pformat in
                    Obs.Profile.stop ();
                    let emitted =
                      emit ~out ~svg
                        ~title:
                          (Printf.sprintf "schedtool profile · %s · %s"
                             (String.concat " " args) mode)
                        body
                    in
                    if code <> 0 then
                      `Error
                        ( false,
                          Printf.sprintf "wrapped command exited with code %d"
                            code )
                    else emitted))
  in
  let info =
    Cmd.info "profile"
      ~doc:"Sampling profiler: capture collapsed stacks and flamegraphs \
            from a live serve socket, or run a local subcommand under \
            the profiler."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ socket_arg $ seconds_arg $ action_arg $ mode_arg
       $ rate_arg $ format_arg $ out_arg $ svg_arg $ id_arg $ wrapped_arg))

let main =
  let doc = "scheduling with setup times on (un-)related machines" in
  let info = Cmd.info "schedtool" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      gen_cmd; bounds_cmd; solve_cmd; verify_cmd; compare_cmd;
      experiments_cmd; fuzz_cmd; serve_cmd; loadgen_cmd; metrics_cmd;
      events_cmd; explain_cmd; trace_cmd; top_cmd; profile_cmd;
    ]

let () = main_ref := Some main
let () = exit (Cmd.eval main)
