type outcome = { result : Common.result; optimal : bool; nodes : int }

let log_src = Logs.Src.create "algos.exact" ~doc:"assignment branch and bound"

module Log = (val Logs.src_log log_src)

let c_nodes = Obs.Counter.make "algos.exact.nodes"
let c_prunes = Obs.Counter.make "algos.exact.prunes_bound"
let c_incumbents = Obs.Counter.make "algos.exact.incumbent_updates"
let c_symmetry = Obs.Counter.make "algos.exact.symmetry_cuts"
let h_nodes = Obs.Histogram.make "algos.exact.nodes_per_solve"

type search_result = {
  best_assignment : int array option;
  best_makespan : float;
  search_nodes : int;
  complete : bool;
}

(* Core depth-first search. [fixed] pre-assigns jobs (excluded from
   branching); [shared] is the incumbent makespan, possibly updated
   concurrently by other domains — reads prune, improvements are published
   with a CAS min-update and recorded locally. *)
let search ?(node_limit = 20_000_000) ?(fixed = []) ~shared instance =
  let n = Core.Instance.num_jobs instance in
  let m = Core.Instance.num_machines instance in
  let kk = Core.Instance.num_classes instance in
  let job_class = instance.Core.Instance.job_class in
  let min_p =
    Array.init n (fun j ->
        let best = ref infinity in
        for i = 0 to m - 1 do
          let p = Core.Instance.ptime instance i j in
          if p < !best then best := p
        done;
        !best)
  in
  Array.iter
    (fun p -> if p = infinity then invalid_arg "Exact: job eligible nowhere")
    min_p;
  let is_fixed = Array.make n false in
  List.iter (fun (j, _) -> is_fixed.(j) <- true) fixed;
  (* Branch order over the free jobs: non-increasing minimum processing
     time puts the most constrained jobs first. *)
  let order =
    Array.of_list
      (List.sort
         (fun a b -> compare (min_p.(b), a) (min_p.(a), b))
         (List.filter (fun j -> not is_fixed.(j)) (List.init n Fun.id)))
  in
  let free = Array.length order in
  let suffix_min_work = Array.make (free + 1) 0.0 in
  for idx = free - 1 downto 0 do
    suffix_min_work.(idx) <- suffix_min_work.(idx + 1) +. min_p.(order.(idx))
  done;
  let speed_sum = ref 0.0 in
  for i = 0 to m - 1 do
    speed_sum := !speed_sum +. Core.Instance.speed instance i
  done;
  let identical = instance.Core.Instance.env = Core.Instance.Identical in
  let loads = Array.make m 0.0 in
  let has_class = Array.make_matrix m kk false in
  let used = Array.make m false in
  let assignment = Array.make n (-1) in
  (* Apply the fixed prefix. *)
  let fixed_max = ref 0.0 in
  List.iter
    (fun (j, i) ->
      if assignment.(j) >= 0 then invalid_arg "Exact: job fixed twice";
      if not (Core.Instance.job_eligible instance i j) then
        invalid_arg "Exact: fixed job not eligible on its machine";
      let k = job_class.(j) in
      let setup =
        if has_class.(i).(k) then 0.0
        else Core.Instance.setup_time instance i k
      in
      loads.(i) <- loads.(i) +. Core.Instance.ptime instance i j +. setup;
      has_class.(i).(k) <- true;
      used.(i) <- true;
      assignment.(j) <- i;
      if loads.(i) > !fixed_max then fixed_max := loads.(i))
    fixed;
  let best_assignment = ref None in
  let best_makespan = ref infinity in
  let nodes = ref 0 in
  let prunes = ref 0 in
  let incumbents = ref 0 in
  let symmetry_cuts = ref 0 in
  let exhausted = ref false in
  let eps = 1e-9 in
  (* CAS min-update; returns true if we published an improvement. *)
  let publish value =
    let rec go () =
      let current = Atomic.get shared in
      if value >= current -. eps then false
      else if Atomic.compare_and_set shared current value then true
      else go ()
    in
    go ()
  in
  let rec branch idx current_max =
    if !nodes >= node_limit then exhausted := true
    else begin
      incr nodes;
      if idx = free then begin
        if publish current_max then begin
          incr incumbents;
          best_makespan := current_max;
          best_assignment := Some (Array.copy assignment)
        end
      end
      else begin
        let incumbent = Atomic.get shared in
        let placed = Array.fold_left ( +. ) 0.0 loads in
        let volume = (placed +. suffix_min_work.(idx)) /. !speed_sum in
        if Float.max current_max volume < incumbent -. eps then begin
          let j = order.(idx) in
          let k = job_class.(j) in
          let first_empty_done = ref false in
          let i = ref 0 in
          while !i < m && not !exhausted do
            let machine = !i in
            let skip =
              identical && (not used.(machine)) && !first_empty_done
            in
            if skip then incr symmetry_cuts
            else begin
              if identical && not used.(machine) then first_empty_done := true;
              let p = Core.Instance.ptime instance machine j in
              if p < infinity then begin
                let setup =
                  if has_class.(machine).(k) then 0.0
                  else Core.Instance.setup_time instance machine k
                in
                if setup < infinity then begin
                  let new_load = loads.(machine) +. p +. setup in
                  if new_load < Atomic.get shared -. eps then begin
                    let was_used = used.(machine) in
                    let had_class = has_class.(machine).(k) in
                    loads.(machine) <- new_load;
                    has_class.(machine).(k) <- true;
                    used.(machine) <- true;
                    assignment.(j) <- machine;
                    branch (idx + 1) (Float.max current_max new_load);
                    assignment.(j) <- -1;
                    loads.(machine) <- new_load -. p -. setup;
                    has_class.(machine).(k) <- had_class;
                    used.(machine) <- was_used
                  end
                end
              end
            end;
            incr i
          done
        end
        else incr prunes
      end
    end
  in
  Obs.Span.with_span "algos.exact.search" (fun () -> branch 0 !fixed_max);
  Obs.Counter.add c_nodes !nodes;
  Obs.Counter.add c_prunes !prunes;
  Obs.Counter.add c_incumbents !incumbents;
  Obs.Counter.add c_symmetry !symmetry_cuts;
  if Obs.Event.enabled Obs.Event.Debug then
    Obs.Event.emit ~level:Obs.Event.Debug "algos.exact.search"
      [
        ("nodes", Obs.Event.Int !nodes);
        ("prunes", Obs.Event.Int !prunes);
        ("fixed", Obs.Event.Int (List.length fixed));
        ("complete", Obs.Event.Bool (not !exhausted));
      ];
  Log.debug (fun f ->
      f "n=%d m=%d fixed=%d: %d nodes%s" n m (List.length fixed) !nodes
        (if !exhausted then " (node limit)" else ""));
  {
    best_assignment = !best_assignment;
    best_makespan = !best_makespan;
    search_nodes = !nodes;
    complete = not !exhausted;
  }

let solve ?node_limit instance =
  Obs.Span.with_span "algos.exact.solve" @@ fun () ->
  let greedy = List_scheduling.schedule instance in
  let shared = Atomic.make greedy.Common.makespan in
  let sr = search ?node_limit ~shared instance in
  Obs.Histogram.observe h_nodes (float_of_int sr.search_nodes);
  let result =
    match sr.best_assignment with
    | Some a -> Common.result_of_assignment instance a
    | None -> greedy
  in
  Obs.Event.emit "algos.exact.solve"
    [
      ("nodes", Obs.Event.Int sr.search_nodes);
      ("optimal", Obs.Event.Bool sr.complete);
      ("makespan", Obs.Event.Float result.Common.makespan);
    ];
  { result; optimal = sr.complete; nodes = sr.search_nodes }

let makespan ?node_limit instance =
  let outcome = solve ?node_limit instance in
  if not outcome.optimal then
    failwith "Exact.makespan: node limit reached before proving optimality";
  outcome.result.Common.makespan
