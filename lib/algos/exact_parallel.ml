type outcome = {
  result : Common.result;
  optimal : bool;
  nodes : int;
  subtrees : int;
}

(* Root prefixes to explore in parallel. On identical machines the first
   job's machine choices are symmetric, so we fix job0 to machine 0 and
   split on the second job; elsewhere we split on the first job. *)
let root_prefixes instance =
  let n = Core.Instance.num_jobs instance in
  let m = Core.Instance.num_machines instance in
  let eligible j =
    List.filter
      (fun i -> Core.Instance.job_eligible instance i j)
      (List.init m Fun.id)
  in
  let identical = instance.Core.Instance.env = Core.Instance.Identical in
  if n = 0 then [ [] ]
  else if identical then
    if n = 1 then [ [ (0, 0) ] ]
    else begin
      (* job 1 goes to machine 0 (same as job 0) or to one fresh machine;
         on identical machines every other empty machine is symmetric *)
      let shared = [ (0, 0); (1, 0) ] in
      if m > 1 then [ shared; [ (0, 0); (1, 1) ] ] else [ shared ]
    end
  else List.map (fun i -> [ (0, i) ]) (eligible 0)

let c_subtrees = Obs.Counter.make "algos.exact.subtrees"

let solve ?node_limit ?pool instance =
  Obs.Span.with_span "algos.exact_parallel.solve" @@ fun () ->
  let greedy = List_scheduling.schedule instance in
  let shared = Atomic.make greedy.Common.makespan in
  let prefixes = root_prefixes instance in
  Obs.Counter.add c_subtrees (List.length prefixes);
  let run_in pool =
    Parallel.Pool.map pool
      (fun fixed ->
        match Exact.search ?node_limit ~fixed ~shared instance with
        | sr -> Ok sr
        | exception Invalid_argument msg -> Error msg)
      prefixes
  in
  let results =
    match pool with
    | Some pool -> run_in pool
    | None ->
        let pool = Parallel.Pool.create (Parallel.Pool.default_jobs ()) in
        Fun.protect
          ~finally:(fun () -> Parallel.Pool.shutdown pool)
          (fun () -> run_in pool)
  in
  let results =
    List.map
      (function
        | Ok sr -> sr
        | Error msg ->
            (* a prefix can be invalid only if the instance itself is *)
            invalid_arg msg)
      results
  in
  let best =
    List.fold_left
      (fun acc sr ->
        match (acc, sr.Exact.best_assignment) with
        | None, Some a -> Some (a, sr.Exact.best_makespan)
        | Some (_, bm), Some a when sr.Exact.best_makespan < bm ->
            Some (a, sr.Exact.best_makespan)
        | acc, _ -> acc)
      None results
  in
  let result =
    match best with
    | Some (a, _) -> Common.result_of_assignment instance a
    | None -> greedy
  in
  {
    result;
    optimal = List.for_all (fun sr -> sr.Exact.complete) results;
    nodes = List.fold_left (fun acc sr -> acc + sr.Exact.search_nodes) 0 results;
    subtrees = List.length prefixes;
  }
