(* Incremental schedule repair: greedy setup-aware placement of unplaced
   jobs against current machine loads, followed by a bounded local-search
   polish. The workhorse of the serving layer's session subsystem. *)

let c_repairs = Obs.Counter.make "algos.incremental.repairs"
let c_placed = Obs.Counter.make "algos.incremental.greedy_placed"

type stats = {
  result : Common.result;
  placed : int;
  moves : int;
  swaps : int;
}

(* A seeded machine is only honored while the job is still eligible
   there; anything else (out of range, -1, ineligible) re-enters the
   greedy placement pool. This makes repair robust to seeds produced
   from a sibling instance (drops, eligibility edits). *)
let sanitize instance seed =
  let m = Core.Instance.num_machines instance in
  Array.map
    (fun i -> if i >= 0 && i < m then i else -1)
    seed
  |> Array.mapi (fun j i ->
         if i >= 0 && Core.Instance.job_eligible instance i j then i else -1)

let repair ?(polish_steps = 64) instance ~seed =
  Obs.Span.phase
    ~result_detail:(fun r ->
      Printf.sprintf "placed=%d moves=%d swaps=%d" r.placed r.moves r.swaps)
    "algos.incremental.repair"
  @@ fun () ->
  let n = Core.Instance.num_jobs instance in
  if Array.length seed <> n then
    invalid_arg "Incremental.repair: seed length must equal number of jobs";
  let seed = sanitize instance seed in
  let tracker = Common.Load_tracker.create instance in
  let pending = ref [] in
  Array.iteri
    (fun j i ->
      if i >= 0 then Common.Load_tracker.add tracker ~machine:i ~job:j
      else pending := j :: !pending)
    seed;
  (* Largest first: the classic LPT order keeps the greedy step's
     worst-case drift small and tends to batch classmates onto machines
     that already paid the setup (cost_increase omits the setup there). *)
  let pending =
    List.sort
      (fun a b ->
        compare
          instance.Core.Instance.sizes.(b)
          instance.Core.Instance.sizes.(a))
      !pending
  in
  let m = Core.Instance.num_machines instance in
  List.iter
    (fun j ->
      let best = ref (-1) and best_cost = ref infinity in
      for i = 0 to m - 1 do
        let c =
          Common.Load_tracker.load tracker i
          +. Common.Load_tracker.cost_increase tracker ~machine:i ~job:j
        in
        if c < !best_cost then (
          best := i;
          best_cost := c)
      done;
      if !best < 0 then
        invalid_arg
          (Printf.sprintf "Incremental.repair: job %d eligible nowhere" j);
      Common.Load_tracker.add tracker ~machine:!best ~job:j)
    pending;
  let greedy =
    Common.result_of_assignment instance (Common.Load_tracker.assignment tracker)
  in
  let placed = List.length pending in
  Obs.Counter.incr c_repairs;
  Obs.Counter.add c_placed placed;
  if polish_steps <= 0 then
    { result = greedy; placed; moves = 0; swaps = 0 }
  else
    let st =
      Local_search.improve ~max_steps:polish_steps instance greedy.schedule
    in
    let result =
      if st.Local_search.result.makespan <= greedy.makespan then
        st.Local_search.result
      else greedy
    in
    { result; placed; moves = st.Local_search.moves; swaps = st.Local_search.swaps }
