(** Incremental schedule repair.

    Given an instance and a {e seed} partial assignment — typically the
    previous schedule of a session after a job addition or removal —
    [repair] places every unplaced job greedily against the current
    machine loads with full setup accounting (jobs land where the total
    completion cost is smallest, so classmates batch into machines that
    already paid the class setup), then runs a bounded
    {!Local_search.improve} polish. The result is always a valid schedule
    of the given instance; no approximation factor is claimed — callers
    that need one compare the repaired makespan against a certified lower
    bound and fall back to a full solve on drift. *)

type stats = {
  result : Common.result;
  placed : int;  (** jobs placed greedily (seeded at -1 or unusable) *)
  moves : int;  (** improving relocations applied by the polish *)
  swaps : int;  (** improving exchanges applied by the polish *)
}

val repair : ?polish_steps:int -> Core.Instance.t -> seed:int array -> stats
(** [repair ?polish_steps instance ~seed] repairs a schedule. [seed.(j)]
    is the machine of job [j], or [-1] to let the greedy step place it;
    seeded machines where the job is no longer eligible are treated as
    [-1]. [polish_steps] (default [64]) bounds the number of improving
    local-search steps; [0] skips the polish entirely.

    Raises [Invalid_argument] if the seed length differs from the number
    of jobs or some job is eligible on no machine. *)
