type report = {
  best : Common.result;
  winner : string;
  all : (string * float) list;
}

let h_candidate_us = Obs.Histogram.make "algos.portfolio.candidate_latency_us"

let run ?(seed = 1) ?(eps = 0.5) ?(include_exact = false) instance =
  for j = 0 to Core.Instance.num_jobs instance - 1 do
    if Core.Instance.eligible_machines instance j = [] then
      invalid_arg "Portfolio.run: job eligible nowhere"
  done;
  let candidates :
      (string * (Core.Instance.t -> Common.result)) list =
    [
      ("greedy", fun t -> List_scheduling.schedule t);
      ("greedy-longest", List_scheduling.schedule ~order:List_scheduling.Longest_first);
      ("lpt-placeholders", Lpt.schedule);
      ("batch-lpt", Batch_lpt.schedule);
      ("ptas", fun t -> Uniform_ptas.schedule ~eps t);
      ( "rounding",
        fun t ->
          fst (Randomized_rounding.schedule (Workloads.Rng.create seed) t) );
      ("ra-2approx", fun t -> Ra_class_uniform.schedule t);
      ("cu-3approx", fun t -> Um_class_uniform.schedule t);
    ]
    @
    if include_exact then
      [
        ( "exact-budgeted",
          fun t -> (Exact.solve ~node_limit:2_000_000 t).Exact.result );
      ]
    else []
  in
  let attempts =
    List.filter_map
      (fun (name, algo) ->
        let t0 = Obs.Sink.now_us () in
        let outcome =
          match algo instance with
          | r -> Some (name, r)
          | exception Invalid_argument _ -> None
        in
        Obs.Histogram.observe h_candidate_us (Obs.Sink.now_us () -. t0);
        outcome)
      candidates
  in
  match attempts with
  | [] -> assert false (* greedy applies to every environment *)
  | first :: rest ->
      let winner, best =
        List.fold_left
          (fun ((_, b) as acc) ((_, r) as cand) ->
            if r.Common.makespan < b.Common.makespan then cand else acc)
          first rest
      in
      (* final polish: local search never hurts and often trims a bit *)
      let polished = Local_search.polish instance best in
      let winner =
        if polished.Common.makespan < best.Common.makespan -. 1e-12 then
          winner ^ "+local-search"
        else winner
      in
      Obs.Event.emit "algos.portfolio.done"
        [
          ("winner", Obs.Event.Str winner);
          ("makespan", Obs.Event.Float polished.Common.makespan);
          ("candidates", Obs.Event.Int (List.length attempts));
        ];
      {
        best = polished;
        winner;
        all =
          (winner, polished.Common.makespan)
          :: List.filter
               (fun (n, _) -> n <> winner)
               (List.map (fun (n, r) -> (n, r.Common.makespan)) attempts);
      }
