let guarantee ~eps = (1.0 +. eps) ** 6.0

let schedule_for_guess ~eps instance ~makespan:t =
  let simp = Simplify.simplify ~eps ~makespan:t instance in
  match
    Ptas_dp.feasible (Simplify.simplified simp) ~makespan:(Simplify.target simp)
  with
  | None -> None
  | Some sched ->
      let original = Simplify.reconstruct simp sched in
      Some
        {
          Common.schedule = original;
          makespan = Core.Schedule.makespan original;
        }

let schedule ?rel_tol ~eps instance =
  (match instance.Core.Instance.env with
  | Core.Instance.Identical | Core.Instance.Uniform _ -> ()
  | Core.Instance.Restricted _ | Core.Instance.Unrelated _ ->
      invalid_arg "Uniform_ptas: requires identical or uniform machines");
  if not (eps > 0.0 && eps <= 0.5) then
    invalid_arg "Uniform_ptas: eps must be in (0, 1/2]";
  let rel_tol = Option.value ~default:(eps /. 4.0) rel_tol in
  let lo = Core.Bounds.lower_bound instance in
  let hi = Core.Bounds.naive_upper_bound instance in
  match
    Core.Binary_search.min_feasible ~lo ~hi ~rel_tol (fun t ->
        schedule_for_guess ~eps instance ~makespan:t)
  with
  | Some (_, result) -> result
  | None ->
      (* The naive upper bound is integrally achievable, hence feasible. *)
      assert false
