(** The PTAS for uniformly related machines with setup times (Section 2).

    Dual approximation: binary search over makespan guesses [T]; each probe
    simplifies the instance (Lemmas 2.2–2.4 via {!Simplify}) and decides
    feasibility of the simplified instance at [(1+ε)^5·T] exactly
    ({!Ptas_dp}). A successful probe reconstructs a schedule of makespan at
    most [(1+ε)^6·T] for the original instance; a failed probe certifies
    that no schedule of makespan [T] exists. The returned schedule is a
    [(1+O(ε))]-approximation.

    Running time grows steeply as [ε] shrinks (the rounded instance keeps
    [Θ(log_{1+ε})] distinct sizes); intended for small instances and
    [ε >= 1/4], which experiment E2 uses. *)

val guarantee : eps:float -> float
(** [(1+ε)^6]: the proven multiplicative gap between the returned
    schedule and the optimum when the binary search runs to exactness.
    Callers comparing measured ratios against it (experiment E2, the
    [lib/check] invariants) must additionally allow the binary search's
    [rel_tol] slack. *)

val schedule_for_guess :
  eps:float -> Core.Instance.t -> makespan:float -> Common.result option
(** One dual-approximation probe at a fixed guess. *)

val schedule : ?rel_tol:float -> eps:float -> Core.Instance.t -> Common.result
(** Full pipeline. [rel_tol] defaults to [eps/4]. Raises
    [Invalid_argument] unless the environment is identical or uniform and
    [0 < eps <= 1/2]. *)
