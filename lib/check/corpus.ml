type entry = {
  algo : string;
  prop : string;
  seed : int;
  detail : string;
  instance : Core.Instance.t;
}

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    s

let write ~dir ~seed (viol : Violation.t) instance =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path =
    Filename.concat dir
      (Printf.sprintf "%s-%s-seed%d.txt" (sanitize viol.Violation.algo)
         (sanitize viol.Violation.prop) seed)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "#! schedtool-check reproducer\n";
      Printf.fprintf oc "#! algo: %s\n" viol.Violation.algo;
      Printf.fprintf oc "#! prop: %s\n" viol.Violation.prop;
      Printf.fprintf oc "#! seed: %d\n" seed;
      (* details can hold anything; keep the header line-oriented *)
      Printf.fprintf oc "#! detail: %s\n"
        (String.map (fun c -> if c = '\n' then ' ' else c) viol.Violation.detail);
      output_string oc (Core.Instance_io.to_string instance));
  path

let header_value line key =
  let prefix = "#! " ^ key ^ ":" in
  if String.starts_with ~prefix line then
    Some (String.trim (String.sub line (String.length prefix)
                         (String.length line - String.length prefix)))
  else None

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
      let algo = ref "" and prop = ref "" and seed = ref 1 and detail = ref "" in
      List.iter
        (fun line ->
          Option.iter (fun v -> algo := v) (header_value line "algo");
          Option.iter (fun v -> prop := v) (header_value line "prop");
          Option.iter (fun v -> detail := v) (header_value line "detail");
          Option.iter
            (fun v -> Option.iter (fun s -> seed := s) (int_of_string_opt v))
            (header_value line "seed"))
        (String.split_on_char '\n' text);
      if !algo = "" || !prop = "" then
        Error (path ^ ": missing '#! algo:' or '#! prop:' header")
      else
        match Core.Instance_io.of_string_result text with
        | Error e -> Error (path ^ ": " ^ Core.Instance_io.error_to_string e)
        | Ok instance ->
            Ok { algo = !algo; prop = !prop; seed = !seed; detail = !detail;
                 instance })

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".txt")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, load path))

let replay ?registry entry =
  let registry =
    match registry with Some r -> r | None -> Props.registry ()
  in
  let exact_job_limit = 9 in
  match entry.algo with
  | "io" -> Props.check_io_roundtrip entry.instance
  | "oracle" ->
      let oracle = Oracle.compute ~exact_job_limit entry.instance in
      Oracle.consistent oracle
      @ Metamorph.check
          ~rng:(Workloads.Rng.create entry.seed)
          ~oracle ~seed:entry.seed ~exact_job_limit entry.instance []
  | name -> (
      match Props.find ~name registry with
      | None ->
          [
            Violation.v ~algo:name ~prop:"corpus-unknown-algo"
              "corpus entry names an unregistered algorithm";
          ]
      | Some algo ->
          let oracle = Oracle.compute ~exact_job_limit entry.instance in
          Props.check_algo ~oracle ~seed:entry.seed entry.instance algo
          @ Metamorph.check
              ~rng:(Workloads.Rng.create entry.seed)
              ~oracle ~seed:entry.seed ~exact_job_limit entry.instance [ algo ])
