(** Replay corpus: minimal reproducers of past invariant violations.

    Each corpus file is a plain {!Core.Instance_io} instance preceded by
    [#!]-prefixed header comments that survive the parser untouched
    (everything after [#] is a comment to {!Core.Instance_io}):

    {v
    #! schedtool-check reproducer
    #! algo: greedy
    #! prop: ratio-bound
    #! seed: 42
    #! detail: makespan 12 exceeds 1 * opt 9
    env identical
    ...
    v}

    [test/corpus/*.txt] holds the committed reproducers; the
    [@check-smoke] test replays them all and fails if any regresses. *)

type entry = {
  algo : string;  (** algorithm name, or ["oracle"] / ["io"] *)
  prop : string;
  seed : int;  (** RNG seed for replaying randomized pieces *)
  detail : string;
  instance : Core.Instance.t;
}

val write : dir:string -> seed:int -> Violation.t -> Core.Instance.t -> string
(** Persist a reproducer; returns the path written. The file name
    encodes algo, prop and seed; an existing file of the same name is
    overwritten (same bug, same case). Creates [dir] if missing. *)

val load : string -> (entry, string) result
(** Parse one corpus file. *)

val load_dir : string -> (string * (entry, string) result) list
(** Every [*.txt] in a directory, sorted by name. Missing directory is
    an empty corpus. *)

val replay : ?registry:Props.algo list -> entry -> Violation.t list
(** Re-run the checks the entry names on its instance: the full
    invariant suite for its algorithm (and for ["oracle"]/["io"] the
    oracle-consistency / serialization round-trip checks). An empty list
    means the historical bug stays fixed. Unknown algorithm names yield
    a synthetic [corpus-unknown-algo] violation so a renamed algorithm
    cannot silently retire its reproducers. *)
