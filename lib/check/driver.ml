module I = Core.Instance
module R = Workloads.Rng

type env_kind = Identical | Uniform | Restricted | Unrelated

let env_of_string = function
  | "identical" -> Some Identical
  | "uniform" -> Some Uniform
  | "restricted" -> Some Restricted
  | "unrelated" -> Some Unrelated
  | _ -> None

let env_to_string = function
  | Identical -> "identical"
  | Uniform -> "uniform"
  | Restricted -> "restricted"
  | Unrelated -> "unrelated"

let all_envs = [ Identical; Uniform; Restricted; Unrelated ]

type budget = Seconds of float | Cases of int

type config = {
  seed : int;
  budget : budget;
  envs : env_kind list;
  algo_filter : string list;
  shrink : bool;
  corpus_dir : string option;
  jobs : int;
  exact_job_limit : int;
  heavy_job_limit : int;
  max_jobs : int;
  metamorphic : bool;
}

let default =
  {
    seed = 1;
    budget = Seconds 5.0;
    envs = all_envs;
    algo_filter = [];
    shrink = true;
    corpus_dir = None;
    jobs = 1;
    exact_job_limit = 9;
    heavy_job_limit = 12;
    max_jobs = 28;
    metamorphic = true;
  }

type failure = {
  case : int;
  env : string;
  instance : I.t;
  violations : Violation.t list;
  shrunk : I.t;
  shrink_steps : int;
  corpus_paths : string list;
}

type summary = {
  cases : int;
  violations : int;
  failures : failure list;
  wall_s : float;
}

(* --- obs wiring ------------------------------------------------------- *)

let c_cases = Obs.Counter.make "check.cases"
let c_violations = Obs.Counter.make "check.violations"
let c_shrink_steps = Obs.Counter.make "check.shrink_steps"
let c_corpus_writes = Obs.Counter.make "check.corpus_writes"
let h_case_us = Obs.Histogram.make "check.case_us"

(* --- instance generation ---------------------------------------------- *)

(* Two out of three cases stay within the exact oracle's reach so that
   ratio-bound is actually exercised; the rest stress the bounds path. *)
let gen_instance rng env ~exact_job_limit ~max_jobs =
  let small = R.float rng < 0.67 in
  let hi = if small then max 2 exact_job_limit else max 2 max_jobs in
  let n = 2 + R.int rng (hi - 1) in
  let m = 1 + R.int rng 4 in
  let k = 1 + R.int rng (min n 4) in
  match env with
  | Identical -> Workloads.Gen.identical rng ~n ~m ~k ()
  | Uniform -> Workloads.Gen.uniform rng ~n ~m ~k ()
  | Restricted -> Workloads.Gen.restricted_class_uniform rng ~n ~m ~k ()
  | Unrelated ->
      (* alternate the general model with the class-uniform one so the
         Theorem-3.11 solver is exercised too *)
      if R.bool rng then Workloads.Gen.unrelated rng ~n ~m ~k ()
      else Workloads.Gen.class_uniform_ptimes rng ~n ~m ~k ()

(* --- one case ---------------------------------------------------------- *)

let heavy_ok ~heavy_job_limit instance =
  I.num_jobs instance <= heavy_job_limit

let check_instance ?registry ?subjects ~seed ~exact_job_limit ~heavy_job_limit
    ~metamorphic instance =
  let registry =
    match registry with Some r -> r | None -> Props.registry ()
  in
  let wants name =
    match subjects with None -> true | Some names -> List.mem name names
  in
  let algos =
    List.filter
      (fun (a : Props.algo) ->
        wants a.Props.name
        && (a.Props.cost = Props.Cheap || heavy_ok ~heavy_job_limit instance))
      registry
  in
  let io = if wants "io" then Props.check_io_roundtrip instance else [] in
  let oracle = Oracle.compute ~exact_job_limit instance in
  let oracle_vs = if wants "oracle" then Oracle.consistent oracle else [] in
  let algo_vs =
    List.concat_map (fun a -> Props.check_algo ~oracle ~seed instance a) algos
  in
  let meta_vs =
    if metamorphic then
      Metamorph.check ~rng:(R.create seed) ~oracle ~seed ~exact_job_limit
        instance algos
    else []
  in
  io @ oracle_vs @ algo_vs @ meta_vs

(* --- shrinking --------------------------------------------------------- *)

(* A candidate still fails if any of the originally-broken (algo, prop)
   pairs is broken on it too; only those algorithms are re-run. *)
let shrink_failure ~registry ~seed ~exact_job_limit ~heavy_job_limit
    ~metamorphic violations instance =
  let pairs =
    List.sort_uniq compare
      (List.map (fun v -> (v.Violation.algo, v.Violation.prop)) violations)
  in
  let subjects = List.sort_uniq compare (List.map fst pairs) in
  let metamorphic =
    metamorphic
    && List.exists
         (fun (_, p) -> String.starts_with ~prefix:"meta-" p)
         pairs
  in
  let still_fails candidate =
    let vs =
      check_instance ~registry ~subjects ~seed ~exact_job_limit
        ~heavy_job_limit ~metamorphic candidate
    in
    List.exists
      (fun v -> List.mem (v.Violation.algo, v.Violation.prop) pairs)
      vs
  in
  Shrink.shrink ~still_fails instance

(* --- the fuzz loop ----------------------------------------------------- *)

let dedup_by_pair violations =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v ->
      let key = (v.Violation.algo, v.Violation.prop) in
      if Hashtbl.mem seen key then false
      else (
        Hashtbl.add seen key ();
        true))
    violations

let run_case ~registry ~config (case, rng) =
  let env = List.nth config.envs (case mod List.length config.envs) in
  let instance =
    gen_instance rng env ~exact_job_limit:config.exact_job_limit
      ~max_jobs:config.max_jobs
  in
  let case_seed = config.seed + case in
  let t0 = Obs.Sink.now_us () in
  let violations =
    check_instance ~registry ~seed:case_seed
      ~exact_job_limit:config.exact_job_limit
      ~heavy_job_limit:config.heavy_job_limit ~metamorphic:config.metamorphic
      instance
  in
  Obs.Histogram.observe h_case_us (Obs.Sink.now_us () -. t0);
  Obs.Counter.incr c_cases;
  (case, env, instance, case_seed, violations)

let process_failure ~registry ~config (case, env, instance, case_seed, violations)
    =
  Obs.Counter.add c_violations (List.length violations);
  List.iter
    (fun v ->
      Obs.Event.emit ~level:Obs.Event.Error "check.violation"
        [
          ("case", Obs.Event.Int case);
          ("env", Obs.Event.Str (env_to_string env));
          ("algo", Obs.Event.Str v.Violation.algo);
          ("prop", Obs.Event.Str v.Violation.prop);
          ("detail", Obs.Event.Str v.Violation.detail);
        ])
    violations;
  let shrunk, steps =
    if config.shrink then
      shrink_failure ~registry ~seed:case_seed
        ~exact_job_limit:config.exact_job_limit
        ~heavy_job_limit:config.heavy_job_limit
        ~metamorphic:config.metamorphic violations instance
    else (instance, 0)
  in
  Obs.Counter.add c_shrink_steps steps;
  if config.shrink then
    Obs.Event.emit "check.shrunk"
      [
        ("case", Obs.Event.Int case);
        ("jobs_before", Obs.Event.Int (I.num_jobs instance));
        ("jobs_after", Obs.Event.Int (I.num_jobs shrunk));
        ("steps", Obs.Event.Int steps);
      ];
  let corpus_paths =
    match config.corpus_dir with
    | None -> []
    | Some dir ->
        List.map
          (fun v ->
            Obs.Counter.incr c_corpus_writes;
            Corpus.write ~dir ~seed:case_seed v shrunk)
          (dedup_by_pair violations)
  in
  {
    case;
    env = env_to_string env;
    instance;
    violations;
    shrunk;
    shrink_steps = steps;
    corpus_paths;
  }

let run ?registry config =
  if config.envs = [] then invalid_arg "Check.Driver.run: empty env list";
  let registry =
    let base = match registry with Some r -> r | None -> Props.registry () in
    match config.algo_filter with
    | [] -> base
    | names ->
        let kept =
          List.filter (fun a -> List.mem a.Props.name names) base
        in
        if kept = [] then
          invalid_arg "Check.Driver.run: --algo matches no registered algorithm";
        kept
  in
  let root = R.create config.seed in
  let pool =
    if config.jobs > 1 then Some (Parallel.Pool.create config.jobs) else None
  in
  let t0 = Obs.Sink.now_us () in
  let elapsed_s () = (Obs.Sink.now_us () -. t0) /. 1e6 in
  let next_case = ref 0 in
  let failures = ref [] in
  let total_violations = ref 0 in
  let continue () =
    match config.budget with
    | Seconds s -> elapsed_s () < s
    | Cases n -> !next_case < n
  in
  let batch_size = max 1 config.jobs * 2 in
  (try
     while continue () do
       let want =
         match config.budget with
         | Cases n -> min batch_size (n - !next_case)
         | Seconds _ -> batch_size
       in
       (* split case rngs off the root sequentially so results do not
          depend on pool scheduling *)
       let batch =
         List.init want (fun i -> (!next_case + i, R.split root))
       in
       next_case := !next_case + want;
       let results =
         let f = run_case ~registry ~config in
         match pool with
         | Some p -> Parallel.Pool.map p f batch
         | None -> List.map f batch
       in
       List.iter
         (fun ((_, _, _, _, violations) as r) ->
           if violations <> [] then (
             let failure = process_failure ~registry ~config r in
             total_violations := !total_violations + List.length violations;
             failures := failure :: !failures))
         results
     done
   with e ->
     Option.iter Parallel.Pool.shutdown pool;
     raise e);
  Option.iter Parallel.Pool.shutdown pool;
  {
    cases = !next_case;
    violations = !total_violations;
    failures = List.rev !failures;
    wall_s = elapsed_s ();
  }
