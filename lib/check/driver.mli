(** The fuzz driver: generate instances across all four machine
    environments, run every registered algorithm, evaluate the
    {!Props} invariants and {!Metamorph} relations, and shrink + persist
    any failure.

    Cases are drawn through {!Workloads.Gen} from per-case RNGs obtained
    by {!Workloads.Rng.split} off a single root seed {e before}
    dispatch, so a run is bit-reproducible from [(seed, case index)]
    regardless of how many {!Parallel.Pool} domains execute it.

    Observability ([lib/obs] wiring, all always-on):
    - counters [check.cases], [check.violations], [check.shrink_steps],
      [check.corpus_writes];
    - histogram [check.case_us] (per-case wall time);
    - events [check.violation] (error level, one per broken invariant)
      and [check.shrunk] (info, jobs before/after + steps). *)

type env_kind = Identical | Uniform | Restricted | Unrelated

val env_of_string : string -> env_kind option
val env_to_string : env_kind -> string
val all_envs : env_kind list

type budget = Seconds of float | Cases of int

type config = {
  seed : int;
  budget : budget;
  envs : env_kind list;
  algo_filter : string list;
      (** restrict to these registry names; [[]] means all *)
  shrink : bool;
  corpus_dir : string option;
      (** where minimal reproducers are written; [None] disables *)
  jobs : int;  (** worker domains (cases are independent) *)
  exact_job_limit : int;  (** largest [n] solved exactly as oracle *)
  heavy_job_limit : int;  (** largest [n] on which [Heavy] algorithms run *)
  max_jobs : int;  (** largest [n] generated at all *)
  metamorphic : bool;
}

val default : config
(** seed 1, 5 s, all environments, all algorithms, shrinking on, no
    corpus dir, 1 job, exact/heavy/max job limits 9/12/28, metamorphic
    checks on. *)

type failure = {
  case : int;  (** case index within the run *)
  env : string;
  instance : Core.Instance.t;  (** as generated *)
  violations : Violation.t list;
  shrunk : Core.Instance.t;  (** equals [instance] when shrinking is off *)
  shrink_steps : int;
  corpus_paths : string list;
}

type summary = {
  cases : int;
  violations : int;
  failures : failure list;
  wall_s : float;
}

val run : ?registry:Props.algo list -> config -> summary
(** Fuzz until the budget is exhausted. [registry] defaults to
    {!Props.registry} — tests inject {!Props.mutant} through it. *)

val check_instance :
  ?registry:Props.algo list ->
  ?subjects:string list ->
  seed:int ->
  exact_job_limit:int ->
  heavy_job_limit:int ->
  metamorphic:bool ->
  Core.Instance.t ->
  Violation.t list
(** One full case on a caller-supplied instance: io round-trip, oracle
    consistency, per-algorithm invariants, metamorphic relations.
    [subjects], when given, restricts to the named algorithms (plus
    ["oracle"]/["io"] pseudo-subjects) — the shrinker uses this to
    re-evaluate only the failing checks. *)
