module I = Core.Instance
module V = Violation

let scale_times instance factor =
  if not (factor > 0.0 && factor < infinity) then
    invalid_arg "Metamorph.scale_times: factor must be positive and finite";
  let scale a = Array.map (fun x -> x *. factor) a in
  let sizes = scale instance.I.sizes in
  let setups = scale instance.I.setups in
  let job_class = Array.copy instance.I.job_class in
  match instance.I.env with
  | I.Identical ->
      I.identical ~num_machines:(I.num_machines instance) ~sizes ~job_class
        ~setups
  | I.Uniform speeds ->
      I.uniform ~speeds:(Array.copy speeds) ~sizes ~job_class ~setups
  | I.Restricted eligible ->
      I.restricted ~eligible:(Array.map Array.copy eligible) ~sizes ~job_class
        ~setups
  | I.Unrelated p ->
      I.unrelated
        ?setup_matrix:(Option.map (Array.map scale) instance.I.setup_matrix)
        ~p:(Array.map scale p) ~job_class ~setups ()

let speed_up instance ~machine =
  match instance.I.env with
  | I.Uniform speeds ->
      let speeds = Array.copy speeds in
      speeds.(machine) <- speeds.(machine) *. 2.0;
      Some
        (I.uniform ~speeds ~sizes:(Array.copy instance.I.sizes)
           ~job_class:(Array.copy instance.I.job_class)
           ~setups:(Array.copy instance.I.setups))
  | I.Identical | I.Restricted _ | I.Unrelated _ -> None

(* Re-solve a twin exactly, but only when the base oracle was exact: an
   inexact base gives nothing to relate against. *)
let twin_opt ~oracle ~exact_job_limit twin =
  match oracle.Oracle.opt with
  | None -> None
  | Some _ -> (Oracle.compute ~exact_job_limit twin).Oracle.opt

let cheap_algos algos =
  List.filter (fun (a : Props.algo) -> a.Props.cost = Props.Cheap) algos

let check_permute ~rng ~oracle ~seed ~exact_job_limit instance algos =
  let twin = Serve.Canon.shuffle rng instance in
  let violations = ref [] in
  let add x = violations := x :: !violations in
  if Serve.Canon.key instance <> Serve.Canon.key twin then
    add
      (V.v ~algo:"oracle" ~prop:"meta-permute-canon"
         "canonical keys of an instance and its relabeling differ");
  let lb = Core.Bounds.lower_bound instance
  and lb' = Core.Bounds.lower_bound twin in
  if not (V.approx_eq lb lb') then
    add
      (V.v ~algo:"oracle" ~prop:"meta-permute-lb"
         "lower bound changed under relabeling: %g vs %g" lb lb');
  (match (oracle.Oracle.opt, twin_opt ~oracle ~exact_job_limit twin) with
  | Some o, Some o' when not (V.approx_eq o o') ->
      add
        (V.v ~algo:"oracle" ~prop:"meta-permute-opt"
           "optimum changed under relabeling: %g vs %g" o o')
  | _ -> ());
  (* the twin is the same problem, so the base oracle still applies *)
  List.iter
    (fun (a : Props.algo) ->
      List.iter
        (fun (viol : V.t) ->
          add { viol with V.prop = "meta-permute-" ^ viol.V.prop })
        (Props.check_algo ~oracle ~seed twin a))
    (cheap_algos algos);
  List.rev !violations

let check_scale ~oracle ~seed ~exact_job_limit instance algos =
  let factor = 2.0 in
  let twin = scale_times instance factor in
  let violations = ref [] in
  let add x = violations := x :: !violations in
  let lb = Core.Bounds.lower_bound instance
  and lb' = Core.Bounds.lower_bound twin in
  if not (V.approx_eq (lb *. factor) lb') then
    add
      (V.v ~algo:"oracle" ~prop:"meta-scale-lb"
         "lower bound is not scale-equivariant: %g * %g = %g vs %g" lb factor
         (lb *. factor) lb');
  (match (oracle.Oracle.opt, twin_opt ~oracle ~exact_job_limit twin) with
  | Some o, Some o' when not (V.approx_eq (o *. factor) o') ->
      add
        (V.v ~algo:"oracle" ~prop:"meta-scale-opt"
           "optimum is not scale-equivariant: %g * %g vs %g" o factor o')
  | _ -> ());
  List.iter
    (fun (a : Props.algo) ->
      if a.Props.scale_equivariant && a.Props.applies instance then
        match (a.Props.run ~seed instance, a.Props.run ~seed twin) with
        | r, r' ->
            let m = r.Algos.Common.makespan
            and m' = r'.Algos.Common.makespan in
            if not (V.approx_eq (m *. factor) m') then
              add
                (V.v ~algo:a.Props.name ~prop:"meta-scale-makespan"
                   "makespan is not scale-equivariant: %g * %g = %g vs %g" m
                   factor (m *. factor) m')
        | exception e ->
            add
              (V.v ~algo:a.Props.name ~prop:"meta-scale-makespan"
                 "raised %s on a scaled twin" (Printexc.to_string e)))
    (cheap_algos algos);
  List.rev !violations

let check_speed_up ~rng ~oracle ~exact_job_limit instance =
  match
    speed_up instance ~machine:(Workloads.Rng.int rng (I.num_machines instance))
  with
  | None -> []
  | Some twin -> (
      let twin_oracle = Oracle.compute ~exact_job_limit twin in
      match (oracle.Oracle.opt, twin_oracle.Oracle.opt) with
      | Some o, Some o' when not (V.leq o' o) ->
          [
            V.v ~algo:"oracle" ~prop:"meta-speedup-opt"
              "speeding up a machine raised the optimum: %g -> %g" o o';
          ]
      | Some _, _ | _, Some _ -> []
      | None, None ->
          (* weaker sandwich: OPT(fast) <= OPT(slow) <= ub(slow) *)
          if not (V.leq twin_oracle.Oracle.lb oracle.Oracle.ub) then
            [
              V.v ~algo:"oracle" ~prop:"meta-speedup-lb"
                "sped-up lower bound %g exceeds the original upper bound %g"
                twin_oracle.Oracle.lb oracle.Oracle.ub;
            ]
          else [])

let check_drop_job ~rng ~oracle ~exact_job_limit instance =
  let n = I.num_jobs instance in
  if n < 2 then []
  else
    let drop = Workloads.Rng.int rng n in
    let keep = List.filter (fun j -> j <> drop) (List.init n Fun.id) in
    let twin = I.induced instance keep in
    let twin_oracle = Oracle.compute ~exact_job_limit twin in
    match (oracle.Oracle.opt, twin_oracle.Oracle.opt) with
    | Some o, Some o' when not (V.leq o' o) ->
        [
          V.v ~algo:"oracle" ~prop:"meta-dropjob-opt"
            "removing job %d raised the optimum: %g -> %g" drop o o';
        ]
    | Some _, _ | _, Some _ -> []
    | None, None ->
        (* OPT(sub) <= OPT(full) <= ub(full) *)
        if not (V.leq twin_oracle.Oracle.lb oracle.Oracle.ub) then
          [
            V.v ~algo:"oracle" ~prop:"meta-dropjob-lb"
              "sub-instance lower bound %g exceeds the full upper bound %g"
              twin_oracle.Oracle.lb oracle.Oracle.ub;
          ]
        else []

(* Clone a random job: duplicating job [j]'s entire column (size, class,
   per-machine times, eligibility) is a twin every environment accepts,
   and adding work can only push the optimum up. *)
let clone_job instance ~job =
  let m = I.num_machines instance in
  let nptimes =
    match instance.I.env with
    | I.Unrelated p -> Some (Array.init m (fun i -> p.(i).(job)))
    | I.Identical | I.Uniform _ | I.Restricted _ -> None
  in
  let neligible =
    match instance.I.env with
    | I.Restricted eligible -> Some (Array.init m (fun i -> eligible.(i).(job)))
    | I.Identical | I.Uniform _ | I.Unrelated _ -> None
  in
  I.append_jobs instance
    [
      {
        I.nsize = instance.I.sizes.(job);
        nclass = instance.I.job_class.(job);
        nptimes;
        neligible;
      };
    ]

let check_add_job ~rng ~oracle ~exact_job_limit instance =
  let job = Workloads.Rng.int rng (I.num_jobs instance) in
  let twin = clone_job instance ~job in
  let violations = ref [] in
  let add x = violations := x :: !violations in
  let lb = Core.Bounds.lower_bound instance
  and lb' = Core.Bounds.lower_bound twin in
  if not (V.leq lb lb') then
    add
      (V.v ~algo:"oracle" ~prop:"meta-addjob-lb"
         "cloning job %d lowered the certified lower bound: %g -> %g" job lb
         lb');
  let twin_oracle = Oracle.compute ~exact_job_limit twin in
  (match (oracle.Oracle.opt, twin_oracle.Oracle.opt) with
  | Some o, Some o' when not (V.leq o o') ->
      add
        (V.v ~algo:"oracle" ~prop:"meta-addjob-opt"
           "cloning job %d lowered the optimum: %g -> %g" job o o')
  | Some _, _ | _, Some _ -> ()
  | None, None ->
      (* weaker sandwich: lb(full) <= OPT(full) <= OPT(full+clone) <=
         ub(full+clone) *)
      if not (V.leq oracle.Oracle.lb twin_oracle.Oracle.ub) then
        add
          (V.v ~algo:"oracle" ~prop:"meta-addjob-ub"
             "grown instance upper bound %g undercuts the original lower \
              bound %g"
             twin_oracle.Oracle.ub oracle.Oracle.lb));
  List.rev !violations

let check ~rng ~oracle ~seed ~exact_job_limit instance algos =
  check_permute ~rng ~oracle ~seed ~exact_job_limit instance algos
  @ check_scale ~oracle ~seed ~exact_job_limit instance algos
  @ check_speed_up ~rng ~oracle ~exact_job_limit instance
  @ check_drop_job ~rng ~oracle ~exact_job_limit instance
  @ check_add_job ~rng ~oracle ~exact_job_limit instance
