(** Metamorphic oracles: relations that must hold between a solver's (or
    bound's) answers on an instance and on a transformed twin, even when
    the true optimum is unknown.

    Transforms and their expected relations:

    - {e permute} (relabel jobs/machines/classes via
      {!Serve.Canon.shuffle}): the problem is unchanged, so
      {!Serve.Canon.key} must agree, {!Core.Bounds.lower_bound} must
      agree, the exact optimum must agree, and every algorithm's output
      on the twin must satisfy the same invariants against the same
      oracle;
    - {e scale} (multiply all processing and setup times by a power of
      two — exact in floating point): bounds and the optimum scale by
      exactly that factor, and [scale_equivariant] algorithms' makespans
      do too;
    - {e speed-up} (double one machine's speed, uniform environment
      only): the optimum cannot increase;
    - {e drop-job} (remove one job via {!Core.Instance.induced}): the
      optimum cannot increase; without an exact oracle the weaker
      [lb(sub) <= ub(full)] still must hold;
    - {e add-job} (clone one job's whole column via
      {!Core.Instance.append_jobs}): the certified lower bound and the
      optimum cannot decrease; without an exact oracle the weaker
      [lb(full) <= ub(grown)] still must hold. This is the relation the
      session subsystem's incremental resolves lean on.

    Each relation that fails yields a violation whose [prop] is
    [meta-<transform>-<aspect>]. *)

val check :
  rng:Workloads.Rng.t ->
  oracle:Oracle.t ->
  seed:int ->
  exact_job_limit:int ->
  Core.Instance.t ->
  Props.algo list ->
  Violation.t list
(** Apply every applicable transform once (random choices — which
    machine to speed up, which job to drop — come from [rng]) and check
    the relations. Only [Cheap] algorithms are re-run on the twins;
    [exact_job_limit] gates the re-solves exactly as in
    {!Oracle.compute}. *)

val check_add_job :
  rng:Workloads.Rng.t ->
  oracle:Oracle.t ->
  exact_job_limit:int ->
  Core.Instance.t ->
  Violation.t list
(** Just the add-job monotonicity relation: clone one random job
    (chosen via [rng]) and check the bound/optimum cannot decrease.
    Exposed for tests; {!check} already includes it. *)

val scale_times : Core.Instance.t -> float -> Core.Instance.t
(** Multiply every processing and setup time by a factor (speeds are
    left alone). Exposed for tests. *)
