type t = { lb : float; ub : float; opt : float option; nodes : int }

let compute ?(exact_job_limit = 9) ?(node_limit = 300_000) instance =
  let lb = Core.Bounds.lower_bound instance in
  let greedy_ub =
    match Algos.List_scheduling.schedule instance with
    | r -> r.Algos.Common.makespan
    | exception Invalid_argument _ -> infinity
  in
  if Core.Instance.num_jobs instance <= exact_job_limit then
    match Algos.Exact.solve ~node_limit instance with
    | outcome ->
        let ms = outcome.Algos.Exact.result.Algos.Common.makespan in
        {
          lb;
          (* the incumbent is a valid schedule even when unproven *)
          ub = Float.min greedy_ub ms;
          opt = (if outcome.Algos.Exact.optimal then Some ms else None);
          nodes = outcome.Algos.Exact.nodes;
        }
    | exception Invalid_argument _ ->
        { lb; ub = greedy_ub; opt = None; nodes = 0 }
  else { lb; ub = greedy_ub; opt = None; nodes = 0 }

let describe t =
  match t.opt with
  | Some o -> Printf.sprintf "opt=%g (%d nodes)" o t.nodes
  | None -> Printf.sprintf "lb=%g ub=%g" t.lb t.ub

let consistent t =
  let open Violation in
  let sandwich lo hi what =
    if leq lo hi then []
    else
      [
        v ~algo:"oracle" ~prop:"oracle-sandwich" "%s: %g > %g (%s)" what lo hi
          (describe t);
      ]
  in
  match t.opt with
  | Some o -> sandwich t.lb o "lb <= opt" @ sandwich o t.ub "opt <= ub"
  | None -> sandwich t.lb t.ub "lb <= ub"
