(** Ground truth for the invariant checks.

    Every property in {!Props} compares an algorithm's output against an
    oracle: for small instances the exact optimum from {!Algos.Exact}
    (proven, so approximation ratios are measured against the real
    [OPT]); for larger instances the combinatorial sandwich
    [lb <= OPT <= ub] from {!Core.Bounds} plus a cheap valid schedule.
    The oracle never raises on well-formed instances — an instance with
    a nowhere-eligible job yields [ub = infinity] and the caller's
    generators are expected not to produce one. *)

type t = {
  lb : float;  (** certified lower bound on the optimal makespan *)
  ub : float;
      (** makespan of a valid schedule (greedy list scheduling), hence a
          certified upper bound on the optimum *)
  opt : float option;
      (** the exact optimum, when branch and bound proved it within the
          node budget *)
  nodes : int;  (** branch-and-bound nodes spent (0 when skipped) *)
}

val compute : ?exact_job_limit:int -> ?node_limit:int -> Core.Instance.t -> t
(** [exact_job_limit] (default 9) caps the instance size for which the
    exact solver runs; [node_limit] (default 300_000) caps its search.
    An unproven search falls back to the bounds oracle — the incumbent
    still tightens [ub]. *)

val describe : t -> string
(** ["opt=42 (1234 nodes)"] or ["lb=17.5 ub=60"] — for violation
    messages. *)

val consistent : t -> Violation.t list
(** The oracle checks itself: [lb <= opt <= ub] (within
    {!Violation.slack}). A violation here means {!Core.Bounds} or
    {!Algos.Exact} is wrong — the most valuable failure the fuzzer can
    find. *)
