module I = Core.Instance

type cost = Cheap | Heavy

type algo = {
  name : string;
  applies : I.t -> bool;
  factor : I.t -> float option;
  scale_equivariant : bool;
  cost : cost;
  run : seed:int -> I.t -> Algos.Common.result;
}

let all_jobs_eligible instance =
  let ok = ref true in
  for j = 0 to I.num_jobs instance - 1 do
    if I.eligible_machines instance j = [] then ok := false
  done;
  !ok

let uniformish instance =
  match instance.I.env with
  | I.Identical | I.Uniform _ -> true
  | I.Restricted _ | I.Unrelated _ -> false

let ra_applies instance =
  (match instance.I.env with
  | I.Identical | I.Restricted _ -> true
  | I.Uniform _ | I.Unrelated _ -> false)
  && I.restrict_class_uniform instance

(* Binary-search driven algorithms stop within [rel_tol] of the smallest
   feasible guess, so their effective factor is the proven one times
   (1 + rel_tol). The defaults below mirror the algorithms' own
   defaults. *)
let search_tol = 0.02
let ptas_eps = 0.5

let no_factor _ = None
let const_factor f _ = Some f

let registry () =
  let greedy order name =
    {
      name;
      applies = all_jobs_eligible;
      factor = no_factor;
      scale_equivariant = true;
      cost = Cheap;
      run = (fun ~seed:_ t -> Algos.List_scheduling.schedule ~order t);
    }
  in
  [
    greedy Algos.List_scheduling.Input "greedy";
    greedy Algos.List_scheduling.Longest_first "greedy-longest";
    greedy Algos.List_scheduling.By_class "greedy-by-class";
    {
      name = "lpt-placeholders";
      applies = (fun t -> uniformish t);
      factor = const_factor Algos.Lpt.approximation_factor;
      scale_equivariant = true;
      cost = Cheap;
      run = (fun ~seed:_ t -> Algos.Lpt.schedule t);
    };
    {
      name = "batch-lpt";
      applies = (fun t -> uniformish t);
      factor = no_factor;
      scale_equivariant = true;
      cost = Cheap;
      run = (fun ~seed:_ t -> Algos.Batch_lpt.schedule t);
    };
    {
      name = "ptas";
      applies = (fun t -> uniformish t);
      factor =
        const_factor
          (Algos.Uniform_ptas.guarantee ~eps:ptas_eps
          *. (1.0 +. (ptas_eps /. 4.0)));
      scale_equivariant = false;
      cost = Heavy;
      run = (fun ~seed:_ t -> Algos.Uniform_ptas.schedule ~eps:ptas_eps t);
    };
    {
      name = "rounding";
      applies = all_jobs_eligible;
      (* O(log n + log m) with an unspecified constant: validity and the
         sandwich are checked, the ratio is not *)
      factor = no_factor;
      scale_equivariant = false;
      cost = Heavy;
      run =
        (fun ~seed t ->
          fst (Algos.Randomized_rounding.schedule (Workloads.Rng.create seed) t));
    };
    {
      name = "ra2";
      applies = (fun t -> ra_applies t && all_jobs_eligible t);
      factor = const_factor (Algos.Ra_class_uniform.guarantee *. (1.0 +. search_tol));
      scale_equivariant = false;
      cost = Heavy;
      run = (fun ~seed:_ t -> Algos.Ra_class_uniform.schedule t);
    };
    {
      name = "cu3";
      applies = (fun t -> I.class_uniform_ptimes t && all_jobs_eligible t);
      factor = const_factor (Algos.Um_class_uniform.guarantee *. (1.0 +. search_tol));
      scale_equivariant = false;
      cost = Heavy;
      run = (fun ~seed:_ t -> Algos.Um_class_uniform.schedule t);
    };
    {
      name = "portfolio";
      applies = all_jobs_eligible;
      (* best-of inherits the best applicable member guarantee, and the
         local-search polish can only improve the winner *)
      factor =
        (fun t ->
          let member_factors =
            (if uniformish t then
               [
                 Algos.Lpt.approximation_factor;
                 Algos.Uniform_ptas.guarantee ~eps:ptas_eps
                 *. (1.0 +. (ptas_eps /. 4.0));
               ]
             else [])
            @ (if ra_applies t then
                 [ Algos.Ra_class_uniform.guarantee *. (1.0 +. search_tol) ]
               else [])
            @
            if I.class_uniform_ptimes t then
              [ Algos.Um_class_uniform.guarantee *. (1.0 +. search_tol) ]
            else []
          in
          match member_factors with
          | [] -> None
          | fs -> Some (List.fold_left Float.min infinity fs));
      scale_equivariant = false;
      cost = Heavy;
      run =
        (fun ~seed t -> (Algos.Portfolio.run ~seed t).Algos.Portfolio.best);
    };
  ]

let find ~name algos = List.find_opt (fun a -> a.name = name) algos

let mutant =
  {
    name = "mutant-stack";
    applies = (fun _ -> true);
    factor = const_factor 1.0;
    scale_equivariant = true;
    cost = Cheap;
    run =
      (fun ~seed:_ t ->
        (* everything on machine 0, eligibility be damned: trips
           [schedule-valid] on restricted instances and [ratio-bound]
           everywhere else *)
        let sched = Core.Schedule.unsafe_make t (Array.make (I.num_jobs t) 0) in
        { Algos.Common.schedule = sched; makespan = Core.Schedule.makespan sched });
  }

let check_result ~oracle instance algo (r : Algos.Common.result) =
  let open Violation in
  let name = algo.name in
  let buf = ref [] in
  let add x = buf := x :: !buf in
  if not (Core.Schedule.is_valid instance r.Algos.Common.schedule) then
    add
      (v ~algo:name ~prop:"schedule-valid"
         "schedule assigns a job to an ineligible machine");
  let recomputed = Core.Schedule.makespan r.Algos.Common.schedule in
  if not (approx_eq r.Algos.Common.makespan recomputed) then
    add
      (v ~algo:name ~prop:"makespan-consistent"
         "reported makespan %g but the schedule's loads give %g"
         r.Algos.Common.makespan recomputed);
  if not (Float.is_finite r.Algos.Common.makespan) then
    add
      (v ~algo:name ~prop:"makespan-consistent" "makespan %g is not finite"
         r.Algos.Common.makespan);
  if not (leq oracle.Oracle.lb r.Algos.Common.makespan) then
    add
      (v ~algo:name ~prop:"lb-sandwich"
         "makespan %g beats the certified lower bound %g"
         r.Algos.Common.makespan oracle.Oracle.lb);
  (match oracle.Oracle.opt with
  | Some opt ->
      if not (leq opt r.Algos.Common.makespan) then
        add
          (v ~algo:name ~prop:"lb-sandwich"
             "makespan %g beats the proven optimum %g" r.Algos.Common.makespan
             opt);
      (match algo.factor instance with
      | Some f ->
          if not (leq r.Algos.Common.makespan (f *. opt)) then
            add
              (v ~algo:name ~prop:"ratio-bound"
                 "makespan %g exceeds %g * opt %g = %g"
                 r.Algos.Common.makespan f opt (f *. opt))
      | None -> ())
  | None -> ());
  List.rev !buf

let check_io_roundtrip instance =
  let text = Core.Instance_io.to_string instance in
  match Core.Instance_io.of_string_result text with
  | Error e ->
      [
        Violation.v ~algo:"io" ~prop:"io-roundtrip"
          "printed instance fails to parse: %s"
          (Core.Instance_io.error_to_string e);
      ]
  | Ok reparsed ->
      let text' = Core.Instance_io.to_string reparsed in
      if text <> text' then
        [
          Violation.v ~algo:"io" ~prop:"io-roundtrip"
            "parse o print is not the identity (printed forms differ)";
        ]
      else []

let check_algo ~oracle ~seed instance algo =
  if not (algo.applies instance) then []
  else
    match algo.run ~seed instance with
    | r -> check_result ~oracle instance algo r
    | exception e ->
        [
          Violation.v ~algo:algo.name ~prop:"no-crash"
            "raised %s although the preconditions hold" (Printexc.to_string e);
        ]
