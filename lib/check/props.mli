(** The executable spec: every solver in the repository, with its
    preconditions and its paper-proven guarantee, plus the invariants any
    run must satisfy.

    The registry is the single place that knows, for each algorithm,
    {e when} it applies ([applies] mirrors the [Invalid_argument]
    preconditions), {e what} the paper promises ([factor], the proven
    approximation ratio against [OPT], already inflated by the
    algorithm's own binary-search tolerance where it has one), and how
    expensive it is ([cost] — heavy LP/DP algorithms only run on small
    fuzz cases).

    Invariants checked for every (algorithm, instance) pair:
    - [schedule-valid]: the returned schedule assigns every job to an
      eligible machine ({!Core.Schedule.is_valid});
    - [makespan-consistent]: the reported makespan is finite and equals
      the schedule's recomputed makespan;
    - [lb-sandwich]: [oracle.lb <= makespan], and with an exact oracle
      also [opt <= makespan] (no algorithm beats the optimum);
    - [ratio-bound]: with an exact oracle and a registered factor [f],
      [makespan <= f * opt] (within {!Violation.slack});
    - [no-crash]: an algorithm whose [applies] holds must not raise. *)

type cost = Cheap | Heavy

type algo = {
  name : string;
  applies : Core.Instance.t -> bool;
  factor : Core.Instance.t -> float option;
      (** proven approximation factor vs [OPT] on instances where
          [applies] holds, including search-tolerance slack; [None] for
          heuristics without a bound *)
  scale_equivariant : bool;
      (** scaling all times by a power of two scales the output makespan
          by exactly that factor (combinatorial algorithms; LP-based
          solvers compare against absolute epsilons and are exempt) *)
  cost : cost;
  run : seed:int -> Core.Instance.t -> Algos.Common.result;
}

val registry : unit -> algo list
(** Every production algorithm: the three greedy orders, Lemma 2.1 LPT,
    batch-LPT, the Section-2 PTAS, Theorem-3.3 randomized rounding, the
    Theorem-3.10 2-approximation, the Theorem-3.11 3-approximation and
    the portfolio. *)

val find : name:string -> algo list -> algo option

val mutant : algo
(** A deliberately broken algorithm for testing the checker itself: it
    stacks every job on machine 0 (skipping eligibility) while claiming
    factor 1. Never part of {!registry}; tests pass it explicitly. *)

val all_jobs_eligible : Core.Instance.t -> bool

val check_result :
  oracle:Oracle.t ->
  Core.Instance.t ->
  algo ->
  Algos.Common.result ->
  Violation.t list
(** Evaluate the invariants above on one algorithm output. *)

val check_algo :
  oracle:Oracle.t -> seed:int -> Core.Instance.t -> algo -> Violation.t list
(** Run the algorithm (if [applies]) and {!check_result} it; any escaped
    exception becomes a [no-crash] violation. Returns [[]] when the
    algorithm does not apply. *)

val check_io_roundtrip : Core.Instance.t -> Violation.t list
(** [io-roundtrip]: printing the instance with {!Core.Instance_io} and
    parsing it back must succeed and reproduce the identical text
    (parse ∘ print = id, compared on the printed normal form — covers
    [inf] entries in restricted/unrelated instances). *)
