module I = Core.Instance

let remove_idx a idx =
  Array.init
    (Array.length a - 1)
    (fun i -> if i < idx then a.(i) else a.(i + 1))

let rebuild instance ~env ~num_machines ~sizes ~job_class ~setups ~setup_matrix
    =
  ignore instance;
  match (env : I.env) with
  | I.Identical -> I.identical ~num_machines ~sizes ~job_class ~setups
  | I.Uniform speeds -> I.uniform ~speeds ~sizes ~job_class ~setups
  | I.Restricted eligible -> I.restricted ~eligible ~sizes ~job_class ~setups
  | I.Unrelated p -> I.unrelated ?setup_matrix ~p ~job_class ~setups ()

let drop_machine instance i =
  let m = I.num_machines instance in
  if m <= 1 || i < 0 || i >= m then None
  else
    let env =
      match instance.I.env with
      | I.Identical -> I.Identical
      | I.Uniform speeds -> I.Uniform (remove_idx speeds i)
      | I.Restricted eligible -> I.Restricted (remove_idx eligible i)
      | I.Unrelated p -> I.Unrelated (remove_idx p i)
    in
    match
      rebuild instance ~env ~num_machines:(m - 1)
        ~sizes:(Array.copy instance.I.sizes)
        ~job_class:(Array.copy instance.I.job_class)
        ~setups:(Array.copy instance.I.setups)
        ~setup_matrix:(Option.map (fun s -> remove_idx s i) instance.I.setup_matrix)
    with
    | twin -> if Props.all_jobs_eligible twin then Some twin else None
    | exception Invalid_argument _ -> None

let merge_classes instance ~src ~dst =
  let kk = I.num_classes instance in
  if src = dst || src < 0 || src >= kk || dst < 0 || dst >= kk then None
  else
    let compact k =
      let k = if k = src then dst else k in
      if k > src then k - 1 else k
    in
    let job_class = Array.map compact instance.I.job_class in
    let setups = remove_idx instance.I.setups src in
    let setup_matrix =
      Option.map (Array.map (fun row -> remove_idx row src)) instance.I.setup_matrix
    in
    let env =
      match instance.I.env with
      | I.Identical -> I.Identical
      | I.Uniform speeds -> I.Uniform (Array.copy speeds)
      | I.Restricted eligible -> I.Restricted (Array.map Array.copy eligible)
      | I.Unrelated p -> I.Unrelated (Array.map Array.copy p)
    in
    match
      rebuild instance ~env ~num_machines:(I.num_machines instance)
        ~sizes:(Array.copy instance.I.sizes) ~job_class ~setups ~setup_matrix
    with
    | twin -> Some twin
    | exception Invalid_argument _ -> None

let pow2 x =
  if not (Float.is_finite x) || x <= 0.0 then x
  else 2.0 ** Float.round (Float.log2 x)

let coarsen instance =
  let round_all a = Array.map pow2 a in
  let env =
    match instance.I.env with
    | I.Identical -> I.Identical
    | I.Uniform speeds -> I.Uniform (Array.copy speeds)
    | I.Restricted eligible -> I.Restricted (Array.map Array.copy eligible)
    | I.Unrelated p -> I.Unrelated (Array.map round_all p)
  in
  rebuild instance ~env ~num_machines:(I.num_machines instance)
    ~sizes:(round_all instance.I.sizes)
    ~job_class:(Array.copy instance.I.job_class)
    ~setups:(round_all instance.I.setups)
    ~setup_matrix:(Option.map (Array.map round_all) instance.I.setup_matrix)

(* Candidate reductions for one round, largest bites first. Each thunk
   yields [None] when the reduction does not apply. *)
let candidates instance =
  let n = I.num_jobs instance in
  let m = I.num_machines instance in
  let kk = I.num_classes instance in
  let drop_jobs lo hi () =
    (* drop jobs [lo, hi); keep the rest *)
    let keep = List.filter (fun j -> j < lo || j >= hi) (List.init n Fun.id) in
    if keep = [] then None
    else
      match I.induced instance keep with
      | twin -> Some twin
      | exception Invalid_argument _ -> None
  in
  let halves =
    if n >= 2 then [ drop_jobs 0 (n / 2); drop_jobs (n / 2) n ] else []
  in
  let quarters =
    if n >= 4 then
      List.init 4 (fun q -> drop_jobs (q * n / 4) ((q + 1) * n / 4))
    else []
  in
  let singles = List.init n (fun j -> drop_jobs j (j + 1)) in
  let machines = List.init m (fun i () -> drop_machine instance i) in
  let merges =
    List.init (kk - 1) (fun k () ->
        merge_classes instance ~src:(k + 1) ~dst:0)
  in
  let coarsened () =
    let twin = coarsen instance in
    if twin = instance then None else Some twin
  in
  halves @ quarters @ singles @ machines @ merges @ [ coarsened ]

let shrink ?(max_steps = 500) ~still_fails instance =
  let steps = ref 0 in
  let fails twin =
    if !steps >= max_steps then false
    else begin
      incr steps;
      try still_fails twin with _ -> false
    end
  in
  let rec improve current =
    let rec first = function
      | [] -> current
      | cand :: rest -> (
          match cand () with
          | Some twin when fails twin -> improve twin
          | _ -> first rest)
    in
    first (candidates current)
  in
  (* bind before pairing: tuple components evaluate right-to-left, which
     would read [steps] before the loop has spent any *)
  let result = improve instance in
  (result, !steps)
