(** Delta-debugging shrinker for failing fuzz cases.

    Given an instance on which some check fails (the predicate), greedily
    apply size-reducing transforms while the failure persists:

    + drop jobs (ddmin-style: halves, then quarters, ..., then single
      jobs, via {!Core.Instance.induced});
    + drop machines (rebuilding the environment row-wise);
    + merge setup classes (relabel one class into another, compacting
      ids);
    + coarsen values (round every processing/setup time to the nearest
      power of two — collapses the noise that generators add).

    The predicate is re-evaluated on every candidate; candidates on which
    it raises are treated as non-failing (a crash during shrinking means
    the candidate left the failure's precondition, not that the bug
    reproduces). The result is a local minimum: no single registered
    reduction keeps it failing. *)

val shrink :
  ?max_steps:int ->
  still_fails:(Core.Instance.t -> bool) ->
  Core.Instance.t ->
  Core.Instance.t * int
(** Returns the shrunk instance and the number of predicate evaluations
    spent ([max_steps], default 500, caps them). The input instance is
    returned unchanged if no reduction keeps it failing. *)

val drop_machine : Core.Instance.t -> int -> Core.Instance.t option
(** Remove one machine (rebuilding speeds/eligibility/ptime rows).
    [None] when it is the last machine or a job would lose its last
    eligible machine. Exposed for tests. *)

val merge_classes : Core.Instance.t -> src:int -> dst:int -> Core.Instance.t option
(** Relabel every job of class [src] to class [dst] and drop [src],
    compacting class ids. [None] when [src = dst] or out of range.
    Exposed for tests. *)

val coarsen : Core.Instance.t -> Core.Instance.t
(** Round every finite positive time to the nearest power of two.
    Idempotent. Exposed for tests. *)
