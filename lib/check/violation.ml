type t = { algo : string; prop : string; detail : string }

let v ~algo ~prop fmt =
  Printf.ksprintf (fun detail -> { algo; prop; detail }) fmt

let to_string { algo; prop; detail } =
  Printf.sprintf "%s/%s: %s" algo prop detail

let slack = 1e-6

(* The absolute floor keeps comparisons near zero sane: instances carry
   integer-valued times >= 1, so anything below 1e-9 is float noise. *)
let abs_floor = 1e-9

let leq ?(tol = slack) a b =
  a <= b +. (tol *. Float.max (Float.abs a) (Float.abs b)) +. abs_floor

let approx_eq ?(tol = slack) a b =
  (a = b)
  || Float.abs (a -. b)
     <= (tol *. Float.max (Float.abs a) (Float.abs b)) +. abs_floor
