(** One broken invariant, as recorded by every layer of the checker.

    [algo] is the name of the algorithm under test, or one of the
    pseudo-subjects ["oracle"] (the bounds/exact ground truth disagreed
    with itself) and ["io"] (serialization round-trip). [prop] names the
    property from the registry ({!Props}, {!Metamorph} or the driver's
    io check); [detail] is a human-readable account with the numbers in
    hand. *)

type t = { algo : string; prop : string; detail : string }

val v : algo:string -> prop:string -> ('a, unit, string, t) format4 -> 'a
(** [v ~algo ~prop fmt ...] builds a violation with a formatted detail. *)

val to_string : t -> string
(** ["algo/prop: detail"]. *)

(** {1 Float comparisons}

    All invariant comparisons run through these, so the tolerance story
    lives in one place: algorithms accumulate float error (sums of
    processing times, LP pivots), and a checker that cries wolf on a
    1-ulp difference is worse than none. *)

val slack : float
(** Relative tolerance for "mathematically equal/ordered" comparisons:
    [1e-6]. *)

val leq : ?tol:float -> float -> float -> bool
(** [leq a b]: [a <= b] up to relative (and tiny absolute) slack. *)

val approx_eq : ?tol:float -> float -> float -> bool
(** Symmetric relative equality, infinity-aware ([inf = inf] holds). *)
