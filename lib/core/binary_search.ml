let check ~lo ~hi ~rel_tol =
  if lo < 0.0 then invalid_arg "Binary_search: lo must be >= 0";
  if hi < lo then invalid_arg "Binary_search: hi must be >= lo";
  if not (rel_tol > 0.0) then invalid_arg "Binary_search: rel_tol must be > 0"

(* Multiplicative convergence: stop once hi <= (1 + rel_tol) * max lo eps.
   The small absolute floor keeps the search finite when lo = 0. *)
let converged ~rel_tol lo hi = hi <= (1.0 +. rel_tol) *. Float.max lo 1e-12

let c_searches = Obs.Counter.make "core.binary_search.searches"
let c_probes = Obs.Counter.make "core.binary_search.probes"

let min_feasible ~lo ~hi ~rel_tol probe =
  check ~lo ~hi ~rel_tol;
  Obs.Counter.incr c_searches;
  let nprobes = ref 0 in
  let probe t =
    incr nprobes;
    (* One phase per probe: the guess plus its verdict, so an [explain]
       tree shows how the search narrowed in on the threshold. *)
    Obs.Span.phase
      ~detail:(Printf.sprintf "guess=%.6g" t)
      ~result_detail:(fun r ->
        Printf.sprintf "guess=%.6g %s" t
          (match r with Some _ -> "feasible" | None -> "infeasible"))
      "core.binary_search.probe"
    @@ fun () -> probe t
  in
  Obs.Span.phase
    ~detail:(Printf.sprintf "lo=%.6g hi=%.6g" lo hi)
    "core.binary_search"
  @@ fun () ->
  (* flush even when the probe raises, e.g. a solver iteration limit *)
  Fun.protect ~finally:(fun () -> Obs.Counter.add c_probes !nprobes)
  @@ fun () ->
  (* A zero lower bound would force ~60 arithmetic halvings before the
     absolute floor kicks in; a tiny positive floor keeps the search
     geometric without affecting the approximation guarantee. *)
  let lo = if lo > 0.0 then lo else hi *. 1e-9 in
  match probe hi with
  | None -> None
  | Some w ->
      let rec go lo hi best_t best_w =
        if converged ~rel_tol lo hi then Some (best_t, best_w)
        else
          let mid =
            if lo > 0.0 then sqrt (lo *. hi) else (lo +. hi) /. 2.0
          in
          match probe mid with
          | Some w -> go lo mid mid w
          | None -> go mid hi best_t best_w
      in
      go lo hi hi w

let probes ~lo ~hi ~rel_tol =
  check ~lo ~hi ~rel_tol;
  let lo = if lo > 0.0 then lo else hi *. 1e-9 in
  let rec count lo hi acc =
    if converged ~rel_tol lo hi then acc
    else
      let mid = if lo > 0.0 then sqrt (lo *. hi) else (lo +. hi) /. 2.0 in
      (* Feasible answers shrink the interval fastest; infeasible ones give
         the same recursion depth, so either branch has equal count. *)
      count lo mid (acc + 1)
  in
  count lo hi 1
