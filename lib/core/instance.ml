type env =
  | Identical
  | Uniform of float array
  | Restricted of bool array array
  | Unrelated of float array array

type t = {
  env : env;
  num_machines : int;
  num_classes : int;
  sizes : float array;
  job_class : int array;
  setups : float array;
  setup_matrix : float array array option;
}

let num_jobs t = Array.length t.sizes
let num_machines t = t.num_machines
let num_classes t = t.num_classes

let ptime t i j =
  match t.env with
  | Identical -> t.sizes.(j)
  | Uniform speeds -> t.sizes.(j) /. speeds.(i)
  | Restricted eligible -> if eligible.(i).(j) then t.sizes.(j) else infinity
  | Unrelated p -> p.(i).(j)

(* In the restricted environment a class is available on a machine iff some
   of its jobs is; precompute that on demand would need caching, but K and m
   are small in this code base, so a scan is fine. *)
let setup_time t i k =
  match t.setup_matrix with
  | Some s -> s.(i).(k)
  | None -> (
      match t.env with
      | Identical -> t.setups.(k)
      | Uniform speeds -> t.setups.(k) /. speeds.(i)
      | Restricted eligible ->
          let n = Array.length t.sizes in
          let rec any j =
            if j >= n then false
            else (t.job_class.(j) = k && eligible.(i).(j)) || any (j + 1)
          in
          if any 0 then t.setups.(k) else infinity
      | Unrelated _ -> t.setups.(k))

let job_eligible t i j =
  ptime t i j < infinity && setup_time t i t.job_class.(j) < infinity

let speed t i =
  match t.env with
  | Uniform speeds -> speeds.(i)
  | Identical | Restricted _ | Unrelated _ -> 1.0

let jobs_of_class t k =
  let acc = ref [] in
  for j = num_jobs t - 1 downto 0 do
    if t.job_class.(j) = k then acc := j :: !acc
  done;
  !acc

let class_size t k =
  let sum = ref 0.0 in
  Array.iteri (fun j kj -> if kj = k then sum := !sum +. t.sizes.(j)) t.job_class;
  !sum

let total_size t = Array.fold_left ( +. ) 0.0 t.sizes

let eligible_machines t j =
  let acc = ref [] in
  for i = t.num_machines - 1 downto 0 do
    if job_eligible t i j then acc := i :: !acc
  done;
  !acc

(* Validation helpers *)

let check_finite_nonneg what a =
  Array.iteri
    (fun idx x ->
      if not (x >= 0.0 && x < infinity) then
        invalid_arg
          (Printf.sprintf "Instance: %s.(%d) = %g must be finite and >= 0"
             what idx x))
    a

let check_nonneg_maybe_inf what a =
  Array.iteri
    (fun idx x ->
      if not (x >= 0.0) then
        invalid_arg
          (Printf.sprintf "Instance: %s.(%d) = %g must be >= 0" what idx x))
    a

let check_classes ~num_classes job_class setups =
  if Array.length setups <> num_classes then
    invalid_arg "Instance: setups length must equal number of classes";
  Array.iteri
    (fun j k ->
      if k < 0 || k >= num_classes then
        invalid_arg
          (Printf.sprintf "Instance: job %d has class %d out of range" j k))
    job_class

let check_matrix what ~rows ~cols mat =
  if Array.length mat <> rows then
    invalid_arg (Printf.sprintf "Instance: %s must have %d rows" what rows);
  Array.iter
    (fun row ->
      if Array.length row <> cols then
        invalid_arg
          (Printf.sprintf "Instance: %s rows must have %d columns" what cols))
    mat

let make ~env ~num_machines ~sizes ~job_class ~setups ~setup_matrix =
  if num_machines <= 0 then invalid_arg "Instance: need at least one machine";
  if Array.length sizes <> Array.length job_class then
    invalid_arg "Instance: sizes and job_class must have equal length";
  let num_classes = Array.length setups in
  check_classes ~num_classes job_class setups;
  check_finite_nonneg "sizes" sizes;
  check_finite_nonneg "setups" setups;
  (match setup_matrix with
  | None -> ()
  | Some s ->
      check_matrix "setup_matrix" ~rows:num_machines ~cols:num_classes s;
      Array.iter (check_nonneg_maybe_inf "setup_matrix row") s);
  { env; num_machines; num_classes; sizes; job_class; setups; setup_matrix }

let identical ~num_machines ~sizes ~job_class ~setups =
  make ~env:Identical ~num_machines ~sizes ~job_class ~setups
    ~setup_matrix:None

let uniform ~speeds ~sizes ~job_class ~setups =
  Array.iteri
    (fun i v ->
      if not (v > 0.0 && v < infinity) then
        invalid_arg
          (Printf.sprintf "Instance: speeds.(%d) = %g must be positive" i v))
    speeds;
  make ~env:(Uniform speeds) ~num_machines:(Array.length speeds) ~sizes
    ~job_class ~setups ~setup_matrix:None

let restricted ~eligible ~sizes ~job_class ~setups =
  let num_machines = Array.length eligible in
  if num_machines = 0 then invalid_arg "Instance: need at least one machine";
  check_matrix "eligible" ~rows:num_machines ~cols:(Array.length sizes)
    eligible;
  make ~env:(Restricted eligible) ~num_machines ~sizes ~job_class ~setups
    ~setup_matrix:None

let unrelated ?setup_matrix ~p ~job_class ~setups () =
  let num_machines = Array.length p in
  if num_machines = 0 then invalid_arg "Instance: need at least one machine";
  let n = Array.length job_class in
  check_matrix "p" ~rows:num_machines ~cols:n p;
  Array.iter (check_nonneg_maybe_inf "p row") p;
  (* Base sizes for the unrelated case: minimum finite processing time of
     each job, a harmless reference value for generators and printing. *)
  let sizes =
    Array.init n (fun j ->
        let best = ref infinity in
        for i = 0 to num_machines - 1 do
          if p.(i).(j) < !best then best := p.(i).(j)
        done;
        if !best < infinity then !best else 0.0)
  in
  make ~env:(Unrelated p) ~num_machines ~sizes ~job_class ~setups
    ~setup_matrix

let induced t jobs =
  let n = num_jobs t in
  let jobs = List.sort_uniq compare jobs in
  if jobs = [] then invalid_arg "Instance.induced: empty job selection";
  List.iter
    (fun j ->
      if j < 0 || j >= n then
        invalid_arg (Printf.sprintf "Instance.induced: job %d out of range" j))
    jobs;
  let jobs = Array.of_list jobs in
  let pick a = Array.map (fun j -> a.(j)) jobs in
  let env =
    match t.env with
    | Identical -> Identical
    | Uniform speeds -> Uniform (Array.copy speeds)
    | Restricted eligible -> Restricted (Array.map pick eligible)
    | Unrelated p -> Unrelated (Array.map pick p)
  in
  {
    t with
    env;
    sizes = pick t.sizes;
    job_class = pick t.job_class;
  }

type new_job = {
  nsize : float;
  nclass : int;
  nptimes : float array option;
  neligible : bool array option;
}

let append_jobs t jobs =
  if jobs = [] then invalid_arg "Instance.append_jobs: empty job list";
  let m = t.num_machines in
  List.iteri
    (fun idx (j : new_job) ->
      let bad what =
        invalid_arg (Printf.sprintf "Instance.append_jobs: job %d: %s" idx what)
      in
      (match (j.nptimes, t.env) with
      | Some p, Unrelated _ when Array.length p <> m ->
          bad (Printf.sprintf "ptimes needs %d entries" m)
      | Some _, (Identical | Uniform _ | Restricted _) ->
          bad "ptimes only applies to the unrelated environment"
      | None, Unrelated _ -> bad "the unrelated environment needs ptimes"
      | _ -> ());
      match (j.neligible, t.env) with
      | Some e, Restricted _ when Array.length e <> m ->
          bad (Printf.sprintf "eligible needs %d entries" m)
      | Some _, (Identical | Uniform _ | Unrelated _) ->
          bad "eligible only applies to the restricted environment"
      | _ -> ())
    jobs;
  let added = Array.of_list jobs in
  let sizes = Array.append t.sizes (Array.map (fun j -> j.nsize) added) in
  let job_class =
    Array.append t.job_class (Array.map (fun j -> j.nclass) added)
  in
  let setups = Array.copy t.setups in
  match t.env with
  | Identical -> identical ~num_machines:m ~sizes ~job_class ~setups
  | Uniform speeds ->
      uniform ~speeds:(Array.copy speeds) ~sizes ~job_class ~setups
  | Restricted eligible ->
      let eligible =
        Array.init m (fun i ->
            Array.append eligible.(i)
              (Array.map
                 (fun j ->
                   match j.neligible with Some e -> e.(i) | None -> true)
                 added))
      in
      restricted ~eligible ~sizes ~job_class ~setups
  | Unrelated p ->
      let p =
        Array.init m (fun i ->
            Array.append p.(i)
              (Array.map
                 (fun j -> match j.nptimes with Some q -> q.(i) | None -> 0.0)
                 added))
      in
      unrelated
        ?setup_matrix:(Option.map (Array.map Array.copy) t.setup_matrix)
        ~p ~job_class ~setups ()

let scale_setups t factor =
  if not (factor >= 0.0 && factor < infinity) then
    invalid_arg "Instance.scale_setups: factor must be finite and >= 0";
  {
    t with
    setups = Array.map (fun s -> s *. factor) t.setups;
    setup_matrix =
      Option.map
        (Array.map (Array.map (fun s -> s *. factor)))
        t.setup_matrix;
  }

let restrict_class_uniform t =
  match t.env with
  | Identical | Uniform _ -> true
  | Unrelated _ -> false
  | Restricted eligible ->
      let n = num_jobs t in
      let ok = ref true in
      for k = 0 to t.num_classes - 1 do
        (* all jobs of class k must agree with the first one on every
           machine *)
        let first = ref (-1) in
        for j = 0 to n - 1 do
          if t.job_class.(j) = k then
            if !first < 0 then first := j
            else
              for i = 0 to t.num_machines - 1 do
                if eligible.(i).(j) <> eligible.(i).(!first) then ok := false
              done
        done
      done;
      !ok

let class_uniform_ptimes t =
  let n = num_jobs t in
  let ok = ref true in
  for k = 0 to t.num_classes - 1 do
    let first = ref (-1) in
    for j = 0 to n - 1 do
      if t.job_class.(j) = k then
        if !first < 0 then first := j
        else
          for i = 0 to t.num_machines - 1 do
            let a = ptime t i j and b = ptime t i !first in
            if not (a = b || (a = infinity && b = infinity)) then ok := false
          done
    done
  done;
  !ok

let pp ppf t =
  let env_name =
    match t.env with
    | Identical -> "identical"
    | Uniform _ -> "uniform"
    | Restricted _ -> "restricted"
    | Unrelated _ -> "unrelated"
  in
  Format.fprintf ppf "@[<v>%s instance: %d jobs, %d machines, %d classes@,"
    env_name (num_jobs t) t.num_machines t.num_classes;
  (match t.env with
  | Uniform speeds ->
      Format.fprintf ppf "speeds: @[%a@]@,"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space
           Format.pp_print_float)
        (Array.to_list speeds)
  | Identical | Restricted _ | Unrelated _ -> ());
  Format.fprintf ppf "setups: @[%a@]@,"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_float)
    (Array.to_list t.setups);
  for j = 0 to num_jobs t - 1 do
    Format.fprintf ppf "job %d: class %d size %g@," j t.job_class.(j)
      t.sizes.(j)
  done;
  Format.fprintf ppf "@]"
