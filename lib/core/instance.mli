(** Problem instances for scheduling with setup times.

    An instance consists of [n] jobs partitioned into [K] setup classes and
    [m] parallel machines. A machine pays the setup time of class [k] once if
    it processes at least one job of class [k]. Four machine environments are
    supported, mirroring the paper: identical, uniformly related, restricted
    assignment and unrelated machines.

    All processing and setup times are non-negative floats;
    [Float.infinity] encodes "job/class cannot run on this machine"
    (restricted assignment and unrelated environments only). *)

(** Machine environment. Dimensions: machines are rows, jobs/classes are
    columns. *)
type env =
  | Identical
      (** [p_ij = p_j], [s_ik = s_k]. *)
  | Uniform of float array
      (** [Uniform speeds]: [p_ij = p_j / speeds.(i)],
          [s_ik = s_k / speeds.(i)]. All speeds must be positive. *)
  | Restricted of bool array array
      (** [Restricted eligible]: [p_ij = p_j] if [eligible.(i).(j)], else
          [infinity]. A class is eligible on a machine iff at least one of
          its jobs is; its setup time there is [s_k]. *)
  | Unrelated of float array array
      (** [Unrelated p]: arbitrary [p.(i).(j) >= 0] or [infinity]. *)

type t = private {
  env : env;
  num_machines : int;
  num_classes : int;
  sizes : float array;  (** base job sizes [p_j]; for [Unrelated] only used
                            as a fallback reference, never for [ptime]. *)
  job_class : int array;  (** [job_class.(j)] is the class of job [j]. *)
  setups : float array;  (** base setup sizes [s_k]. *)
  setup_matrix : float array array option;
      (** machine-dependent setup times [s.(i).(k)] for the unrelated
          environment; [None] means setups are derived from [setups] and
          [env] per the table above. *)
}

val num_jobs : t -> int
val num_machines : t -> int
val num_classes : t -> int

val ptime : t -> int -> int -> float
(** [ptime t i j] is the processing time of job [j] on machine [i]
    ([infinity] if ineligible). *)

val setup_time : t -> int -> int -> float
(** [setup_time t i k] is the setup time of class [k] on machine [i]. *)

val job_eligible : t -> int -> int -> bool
(** [job_eligible t i j] holds iff job [j] can complete on machine [i], i.e.
    both its processing time and its class's setup time are finite. *)

val speed : t -> int -> float
(** Machine speed: the [Uniform] speed, or [1.0] for other environments. *)

val jobs_of_class : t -> int -> int list
(** Jobs of a class, in increasing job order. *)

val class_size : t -> int -> float
(** Total base size of the jobs of a class. *)

val total_size : t -> float
(** Sum of all base job sizes. *)

val eligible_machines : t -> int -> int list
(** Machines on which a job is eligible, in increasing order. *)

(** {1 Constructors}

    All constructors validate dimensions and value ranges and raise
    [Invalid_argument] on malformed input: sizes/setups must be finite and
    non-negative, class ids in range, speed arrays of length [m] with
    positive entries, matrices of shape [m * n] (or [m * K]). *)

val identical :
  num_machines:int -> sizes:float array -> job_class:int array ->
  setups:float array -> t

val uniform :
  speeds:float array -> sizes:float array -> job_class:int array ->
  setups:float array -> t

val restricted :
  eligible:bool array array -> sizes:float array -> job_class:int array ->
  setups:float array -> t

val unrelated :
  ?setup_matrix:float array array ->
  p:float array array -> job_class:int array -> setups:float array ->
  unit -> t

(** {1 Derived views} *)

val induced : t -> int list -> t
(** [induced t jobs] is the sub-instance containing only the listed jobs
    (deduplicated, increasing order; classes and machines are kept as-is,
    so class indices remain stable). Raises [Invalid_argument] on an empty
    or out-of-range selection. *)

type new_job = {
  nsize : float;  (** base size [p_j]; for [Unrelated] only a reference
                      value (the constructor re-derives it from the
                      ptimes column) *)
  nclass : int;  (** an {e existing} class id — appending never creates
                     classes *)
  nptimes : float array option;
      (** per-machine processing times; required for [Unrelated],
          rejected elsewhere *)
  neligible : bool array option;
      (** per-machine eligibility; [Restricted] only (default: eligible
          everywhere), rejected elsewhere *)
}
(** Specification of a job to append — the delta unit of the session
    subsystem's add-jobs mutation and of the job-addition metamorphic
    oracle. *)

val append_jobs : t -> new_job list -> t
(** [append_jobs t jobs] is the instance extended with the listed jobs at
    indices [n .. n + length jobs - 1]; existing jobs, machines and
    classes keep their indices. Raises [Invalid_argument] on an empty
    list, an out-of-range class, a malformed per-machine column, or a
    column kind that does not match the environment. *)

val scale_setups : t -> float -> t
(** Multiply all base setup sizes (and the setup matrix, if any) by a
    factor. Used by the setup-dominance experiments. *)

val restrict_class_uniform : t -> bool
(** For restricted-assignment instances: do all jobs of every class share
    the same eligibility set (Section 3.3.1's precondition)? Vacuously true
    for [Identical] and [Uniform]; false for [Unrelated]. *)

val class_uniform_ptimes : t -> bool
(** Does every machine process all jobs of any fixed class at the same
    (possibly infinite) time (Section 3.3.2's precondition)? *)

val pp : Format.formatter -> t -> unit
