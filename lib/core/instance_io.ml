type error = { line : int option; field : string option; message : string }

exception Parse_error of string

let error_to_string { line; field; message } =
  String.concat ""
    [
      (match line with Some l -> Printf.sprintf "line %d: " l | None -> "");
      (match field with Some f -> f ^ ": " | None -> "");
      message;
    ]

let float_to_text x = if x = infinity then "inf" else Printf.sprintf "%.17g" x

let row_to_text row = String.concat " " (Array.to_list (Array.map float_to_text row))

let to_string (t : Instance.t) =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let env_name =
    match t.Instance.env with
    | Instance.Identical -> "identical"
    | Instance.Uniform _ -> "uniform"
    | Instance.Restricted _ -> "restricted"
    | Instance.Unrelated _ -> "unrelated"
  in
  add "# setup-scheduling instance";
  add "env %s" env_name;
  add "machines %d" (Instance.num_machines t);
  add "classes %d" (Instance.num_classes t);
  add "setups %s" (row_to_text t.Instance.setups);
  add "jobs %d" (Instance.num_jobs t);
  (match t.Instance.env with
  | Instance.Unrelated _ -> ()
  | Instance.Identical | Instance.Uniform _ | Instance.Restricted _ ->
      add "sizes %s" (row_to_text t.Instance.sizes));
  add "job_class %s"
    (String.concat " " (Array.to_list (Array.map string_of_int t.Instance.job_class)));
  (match t.Instance.env with
  | Instance.Identical -> ()
  | Instance.Uniform speeds -> add "speeds %s" (row_to_text speeds)
  | Instance.Restricted eligible ->
      add "eligible";
      Array.iter
        (fun row ->
          add "%s"
            (String.concat " "
               (Array.to_list (Array.map (fun b -> if b then "1" else "0") row))))
        eligible
  | Instance.Unrelated p ->
      add "ptimes";
      Array.iter (fun row -> add "%s" (row_to_text row)) p;
      (match t.Instance.setup_matrix with
      | None -> ()
      | Some s ->
          add "setup_matrix";
          Array.iter (fun row -> add "%s" (row_to_text row)) s));
  Buffer.contents buf

(* Parsing ------------------------------------------------------------- *)

(* Internal control flow: every malformed-input site raises [Err] with the
   full structured error; [of_string_result] catches it at the boundary. *)
exception Err of error

type line = { num : int; words : string list }

let fail ?line ?field fmt =
  Printf.ksprintf (fun message -> raise (Err { line; field; message })) fmt

let tokenize text =
  String.split_on_char '\n' text
  |> List.mapi (fun idx l -> (idx + 1, l))
  |> List.filter_map (fun (num, l) ->
         let l =
           match String.index_opt l '#' with
           | Some i -> String.sub l 0 i
           | None -> l
         in
         let words =
           String.split_on_char ' ' l
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun w -> w <> "" && w <> "\r")
         in
         if words = [] then None else Some { num; words })

let parse_float ~line ~field w =
  match String.lowercase_ascii w with
  | "inf" | "+inf" | "infinity" -> infinity
  | _ -> (
      match float_of_string_opt w with
      | Some x -> x
      | None -> fail ~line ~field "expected a number, got %S" w)

let parse_int ~line ~field w =
  match int_of_string_opt w with
  | Some x -> x
  | None -> fail ~line ~field "expected an integer, got %S" w

(* [nonneg] rejects negative entries right here, with the line and field
   in hand; [allow_inf] is for ptimes/setup_matrix rows where [inf] means
   "ineligible". *)
let parse_float_row ~field ?(nonneg = false) ?(allow_inf = true) expected line =
  let row =
    Array.of_list (List.map (parse_float ~line:line.num ~field) line.words)
  in
  if Array.length row <> expected then
    fail ~line:line.num ~field "expected %d values, got %d" expected
      (Array.length row);
  Array.iteri
    (fun idx x ->
      if nonneg && not (x >= 0.0) then
        fail ~line:line.num ~field "value %d is %g, must be >= 0" idx x;
      if (not allow_inf) && x = infinity then
        fail ~line:line.num ~field "value %d must be finite" idx)
    row;
  row

let parse ~text () =
  let lines = tokenize text in
  let env = ref None in
  let machines = ref None in
  let classes = ref None in
  let jobs = ref None in
  let setups = ref None in
  let sizes = ref None in
  let job_class = ref None in
  let job_class_line = ref 0 in
  let speeds = ref None in
  let eligible = ref None in
  let ptimes = ref None in
  let setup_matrix = ref None in
  let need_int name r line rest =
    match rest with
    | [ w ] -> r := Some (parse_int ~line:line.num ~field:name w)
    | _ -> fail ~line:line.num ~field:name "expects exactly one integer"
  in
  let get ?line name r =
    match !r with
    | Some v -> v
    | None -> fail ?line ~field:name "missing %s declaration" name
  in
  let take_rows ~header count remaining what =
    let rec go k remaining acc =
      if k = 0 then (List.rev acc, remaining)
      else
        match remaining with
        | [] ->
            fail ~line:header.num ~field:what
              "truncated block: expected %d rows, found %d" count (count - k)
        | line :: rest -> go (k - 1) rest (line :: acc)
    in
    go count remaining []
  in
  let rec consume = function
    | [] -> ()
    | line :: rest -> (
        match line.words with
        | "env" :: [ e ] ->
            (match e with
            | "identical" | "uniform" | "restricted" | "unrelated" -> env := Some e
            | _ -> fail ~line:line.num ~field:"env" "unknown env %S" e);
            consume rest
        | "machines" :: r ->
            need_int "machines" machines line r;
            consume rest
        | "classes" :: r ->
            need_int "classes" classes line r;
            consume rest
        | "jobs" :: r ->
            need_int "jobs" jobs line r;
            consume rest
        | "setups" :: r ->
            setups :=
              Some
                (parse_float_row ~field:"setups" ~nonneg:true ~allow_inf:false
                   (get ~line:line.num "classes" classes)
                   { line with words = r });
            consume rest
        | "sizes" :: r ->
            sizes :=
              Some
                (parse_float_row ~field:"sizes" ~nonneg:true ~allow_inf:false
                   (get ~line:line.num "jobs" jobs)
                   { line with words = r });
            consume rest
        | "job_class" :: r ->
            let n = get ~line:line.num "jobs" jobs in
            if List.length r <> n then
              fail ~line:line.num ~field:"job_class" "expects %d entries" n;
            job_class :=
              Some
                (Array.of_list
                   (List.map (parse_int ~line:line.num ~field:"job_class") r));
            job_class_line := line.num;
            consume rest
        | "speeds" :: r ->
            speeds :=
              Some
                (parse_float_row ~field:"speeds" ~nonneg:true ~allow_inf:false
                   (get ~line:line.num "machines" machines)
                   { line with words = r });
            consume rest
        | [ "eligible" ] ->
            let m = get ~line:line.num "machines" machines
            and n = get ~line:line.num "jobs" jobs in
            let rows, rest = take_rows ~header:line m rest "eligible" in
            let parse_row l =
              if List.length l.words <> n then
                fail ~line:l.num ~field:"eligible" "rows need %d flags" n;
              Array.of_list
                (List.map
                   (fun w ->
                     match w with
                     | "0" -> false
                     | "1" -> true
                     | _ ->
                         fail ~line:l.num ~field:"eligible"
                           "flags must be 0 or 1, got %S" w)
                   l.words)
            in
            eligible := Some (Array.of_list (List.map parse_row rows));
            consume rest
        | [ "ptimes" ] ->
            let m = get ~line:line.num "machines" machines
            and n = get ~line:line.num "jobs" jobs in
            let rows, rest = take_rows ~header:line m rest "ptimes" in
            ptimes :=
              Some
                (Array.of_list
                   (List.map
                      (fun l -> parse_float_row ~field:"ptimes" ~nonneg:true n l)
                      rows));
            consume rest
        | [ "setup_matrix" ] ->
            let m = get ~line:line.num "machines" machines
            and kk = get ~line:line.num "classes" classes in
            let rows, rest = take_rows ~header:line m rest "setup_matrix" in
            setup_matrix :=
              Some
                (Array.of_list
                   (List.map
                      (fun l ->
                        parse_float_row ~field:"setup_matrix" ~nonneg:true kk l)
                      rows));
            consume rest
        | w :: _ -> fail ~line:line.num "unknown keyword %S" w
        | [] -> consume rest)
  in
  consume lines;
  let env = get "env" env in
  let setups = get "setups" setups in
  let job_class = get "job_class" job_class in
  (* Class ids are range-checked here rather than in the constructor so the
     error carries the job_class line number. *)
  let num_classes = get "classes" classes in
  Array.iteri
    (fun j k ->
      if k < 0 || k >= num_classes then
        fail ~line:!job_class_line ~field:"job_class"
          "job %d has class %d out of range [0, %d)" j k num_classes)
    job_class;
  try
    match env with
    | "identical" ->
        Instance.identical ~num_machines:(get "machines" machines)
          ~sizes:(get "sizes" sizes) ~job_class ~setups
    | "uniform" ->
        Instance.uniform ~speeds:(get "speeds" speeds) ~sizes:(get "sizes" sizes)
          ~job_class ~setups
    | "restricted" ->
        Instance.restricted ~eligible:(get "eligible" eligible)
          ~sizes:(get "sizes" sizes) ~job_class ~setups
    | "unrelated" ->
        Instance.unrelated ?setup_matrix:!setup_matrix ~p:(get "ptimes" ptimes)
          ~job_class ~setups ()
    | _ -> assert false
  with Invalid_argument msg -> raise (Err { line = None; field = None; message = msg })

let of_string_result text =
  match parse ~text () with
  | t -> Ok t
  | exception Err e -> Error e

let of_string text =
  match of_string_result text with
  | Ok t -> t
  | Error e -> raise (Parse_error (error_to_string e))

let to_file path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
