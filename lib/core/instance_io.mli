(** Plain-text serialization of instances.

    The format is line-oriented; [#] starts a comment. Keywords:

    {v
    env identical|uniform|restricted|unrelated
    machines <m>            # required for identical/unrelated
    classes <K>
    setups s_0 ... s_{K-1}
    jobs <n>
    sizes p_0 ... p_{n-1}          # not used by env unrelated
    job_class k_0 ... k_{n-1}
    speeds v_0 ... v_{m-1}         # env uniform only
    eligible                       # env restricted: m lines of n 0/1 flags
    ptimes                         # env unrelated: m lines of n floats
    setup_matrix                   # env unrelated, optional: m lines of K floats
    v}

    [inf] (case-insensitive) denotes infinity in [ptimes]/[setup_matrix]. *)

type error = {
  line : int option;  (** 1-based line of the offending input, when known *)
  field : string option;
      (** the keyword/block being parsed ([setups], [job_class], ...) *)
  message : string;
}
(** Structured parse error. Every malformed input — truncated blocks,
    negative times, out-of-range class ids, unknown keywords — is reported
    through this record; the server layer renders it into protocol error
    responses without string-grubbing. *)

val error_to_string : error -> string
(** ["line 4: setups: expected 3 values, got 2"]-style rendering. *)

exception Parse_error of string
(** Raised by the exception-based entry points with [error_to_string] of
    the underlying {!error}. *)

val to_string : Instance.t -> string

val of_string_result : string -> (Instance.t, error) result
(** Total parsing entry point: never raises on malformed input. *)

val of_string : string -> Instance.t
(** [of_string_result] that raises {!Parse_error} on malformed input. *)

val to_file : string -> Instance.t -> unit

val of_file : string -> Instance.t
(** Raises {!Parse_error} on malformed input and [Sys_error] on I/O
    failure. *)
