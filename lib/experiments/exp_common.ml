type t = {
  id : string;
  title : string;
  claim : string;
  run : unit -> Stats.Table.t;
}

let master_seed = 20260704

let rng_for id =
  let h = Hashtbl.hash id in
  Workloads.Rng.create (master_seed + h)

let ratio x y = if Float.abs y < 1e-12 then infinity else x /. y

let exact_opt ?(node_limit = 5_000_000) instance =
  let outcome = Algos.Exact.solve ~node_limit instance in
  if outcome.Algos.Exact.optimal then
    Some outcome.Algos.Exact.result.Algos.Common.makespan
  else None

let time_it ?(label = "experiment") f = Obs.Span.timed label f
