(** Experiment harness plumbing: the experiment record, shared ratio
    helpers and deterministic seeding. *)

type t = {
  id : string;  (** e.g. "E1" *)
  title : string;
  claim : string;  (** the paper's bound this experiment checks *)
  run : unit -> Stats.Table.t;
}

val master_seed : int
(** Every experiment derives its RNG from this; change it to re-run the
    whole suite on fresh draws. *)

val rng_for : string -> Workloads.Rng.t
(** Deterministic per-experiment generator ([master_seed] + id hash). *)

val ratio : float -> float -> float
(** [ratio x y = x /. y], guarding tiny denominators. *)

val exact_opt : ?node_limit:int -> Core.Instance.t -> float option
(** Optimum makespan if branch and bound proves it within the limit. *)

val time_it : ?label:string -> (unit -> 'a) -> 'a * float
(** Result and elapsed wall-clock seconds (correct under the parallel
    runner, unlike CPU time). Implemented as {!Obs.Span.timed}, so each
    timed section also shows up as a span named [label] (default
    ["experiment"]) when tracing is enabled. *)
