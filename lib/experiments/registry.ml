let all =
  [
    E1_lpt.experiment;
    E2_ptas.experiment;
    E3_rounding.experiment;
    E4_gap.experiment;
    E5_ra.experiment;
    E6_um.experiment;
    E7_comparison.experiment;
    E8_crossover.experiment;
    E9_trace.experiment;
    A1_iterations.experiment;
    A2_pseudoforest.experiment;
    A3_tolerance.experiment;
    A4_eps.experiment;
    X1_exact_cross.experiment;
    X2_parallel.experiment;
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun e -> String.uppercase_ascii e.Exp_common.id = id) all

let print_result e table secs =
  Printf.printf "=== %s: %s ===\n" e.Exp_common.id e.Exp_common.title;
  Printf.printf "claim: %s\n\n" e.Exp_common.claim;
  Stats.Table.print table;
  Printf.printf "(%.2f s)\n\n%!" secs

(* Metrics footer: which solver counters the run moved, from a snapshot
   taken just before it. *)
let print_metrics_footer ~title before =
  let table = Obs.Report.delta_table ~before in
  if Stats.Table.num_rows table > 0 then begin
    Printf.printf "%s\n" title;
    Stats.Table.print table;
    print_newline ();
    flush stdout
  end

let run_one e =
  let before = Obs.Counter.snapshot () in
  let table, secs =
    Exp_common.time_it ~label:("exp:" ^ e.Exp_common.id) e.Exp_common.run
  in
  print_result e table secs;
  print_metrics_footer ~title:("solver counters for " ^ e.Exp_common.id) before

let run_all ?(jobs = 1) () =
  if jobs <= 1 then List.iter run_one all
  else begin
    (* Experiments are independent and internally seeded, so parallel
       execution is bit-identical to sequential; only compute in parallel,
       print in order. Counters from concurrent experiments interleave, so
       the footer is printed once, aggregated over the whole suite. *)
    let before = Obs.Counter.snapshot () in
    let pool = Parallel.Pool.create jobs in
    Fun.protect
      ~finally:(fun () -> Parallel.Pool.shutdown pool)
      (fun () ->
        let results =
          Parallel.Pool.map pool
            (fun e ->
              Exp_common.time_it ~label:("exp:" ^ e.Exp_common.id)
                e.Exp_common.run)
            all
        in
        List.iter2 (fun e (table, secs) -> print_result e table secs) all
          results);
    print_metrics_footer ~title:"solver counters (all experiments, aggregate)"
      before
  end
