type outcome =
  | Optimal of { objective : float; x : float array; basis : int array }
  | Infeasible
  | Unbounded
  | Iteration_limit

let c_solves = Obs.Counter.make "lp.simplex.solves"
let c_phase1_iters = Obs.Counter.make "lp.simplex.phase1_iters"
let c_phase2_iters = Obs.Counter.make "lp.simplex.phase2_iters"
let c_degenerate = Obs.Counter.make "lp.simplex.degenerate_pivots"
let c_bland = Obs.Counter.make "lp.simplex.bland_switches"

(* Internal mutable state: the tableau is kept in canonical form (basis
   columns are unit vectors) together with a reduced-cost row [z]. All hot
   loops use unsafe accesses; shapes are validated once in [solve]. *)
type state = {
  m : int;
  ncols : int;
  tab : float array array; (* m rows of length ncols *)
  rhs : float array; (* length m, kept >= -eps *)
  basis : int array; (* basic column of each row *)
  z : float array; (* reduced costs, length ncols *)
  banned : bool array; (* columns that may never enter (artificials) *)
  eps : float;
}

let pivot st r j =
  let row = st.tab.(r) in
  let piv = row.(j) in
  let inv = 1.0 /. piv in
  for t = 0 to st.ncols - 1 do
    Array.unsafe_set row t (Array.unsafe_get row t *. inv)
  done;
  row.(j) <- 1.0;
  st.rhs.(r) <- st.rhs.(r) *. inv;
  for r' = 0 to st.m - 1 do
    if r' <> r then begin
      let row' = st.tab.(r') in
      let f = Array.unsafe_get row' j in
      if f <> 0.0 then begin
        for t = 0 to st.ncols - 1 do
          Array.unsafe_set row' t
            (Array.unsafe_get row' t -. (f *. Array.unsafe_get row t))
        done;
        row'.(j) <- 0.0;
        st.rhs.(r') <- st.rhs.(r') -. (f *. st.rhs.(r))
      end
    end
  done;
  let f = st.z.(j) in
  if f <> 0.0 then begin
    for t = 0 to st.ncols - 1 do
      Array.unsafe_set st.z t
        (Array.unsafe_get st.z t -. (f *. Array.unsafe_get row t))
    done;
    st.z.(j) <- 0.0
  end;
  st.basis.(r) <- j

(* Entering column: Dantzig unless [bland]. Returns -1 at optimality. *)
let entering st ~bland =
  if bland then (
    let j = ref (-1) in
    (try
       for t = 0 to st.ncols - 1 do
         if (not st.banned.(t)) && st.z.(t) < -.st.eps then begin
           j := t;
           raise Exit
         end
       done
     with Exit -> ());
    !j)
  else begin
    let best = ref (-.st.eps) and j = ref (-1) in
    for t = 0 to st.ncols - 1 do
      if (not st.banned.(t)) && st.z.(t) < !best then begin
        best := st.z.(t);
        j := t
      end
    done;
    !j
  end

(* Leaving row by the minimum-ratio test; ties broken towards the smallest
   basic column index so that Bland's rule is honoured. -1 = unbounded. *)
let leaving st j =
  let best_ratio = ref infinity and r = ref (-1) in
  for r' = 0 to st.m - 1 do
    let a = st.tab.(r').(j) in
    if a > st.eps then begin
      let ratio = st.rhs.(r') /. a in
      if
        ratio < !best_ratio -. st.eps
        || (ratio < !best_ratio +. st.eps
           && (!r < 0 || st.basis.(r') < st.basis.(!r)))
      then begin
        best_ratio := ratio;
        r := r'
      end
    end
  done;
  !r

type phase_result = P_optimal | P_unbounded | P_iterations

(* Per-phase pivot statistics, accumulated locally and flushed to the
   process-wide counters once per [solve] so the pivot loop never touches
   shared memory. *)
type phase_counts = {
  mutable iters : int;
  mutable degen : int;
  mutable bland : int;
}

let fresh_counts () = { iters = 0; degen = 0; bland = 0 }

let run_phase st ~max_iters ~counts =
  let degenerate_run = ref 0 in
  let rec go iters =
    if iters > max_iters then P_iterations
    else
      let j = entering st ~bland:(!degenerate_run > 50) in
      if j < 0 then P_optimal
      else
        let r = leaving st j in
        if r < 0 then P_unbounded
        else begin
          counts.iters <- counts.iters + 1;
          if st.rhs.(r) <= st.eps then begin
            incr degenerate_run;
            counts.degen <- counts.degen + 1;
            if !degenerate_run = 51 then counts.bland <- counts.bland + 1
          end
          else degenerate_run := 0;
          pivot st r j;
          go (iters + 1)
        end
  in
  go 0

let objective_value st cost =
  let v = ref 0.0 in
  for r = 0 to st.m - 1 do
    let b = st.basis.(r) in
    if b < Array.length cost && cost.(b) <> 0.0 then
      v := !v +. (cost.(b) *. st.rhs.(r))
  done;
  !v

(* Recompute the reduced-cost row from scratch for the given cost vector
   (costs of columns >= its length are zero). *)
let set_costs st cost =
  for t = 0 to st.ncols - 1 do
    st.z.(t) <- (if t < Array.length cost then cost.(t) else 0.0)
  done;
  for r = 0 to st.m - 1 do
    let b = st.basis.(r) in
    let cb = if b < Array.length cost then cost.(b) else 0.0 in
    if cb <> 0.0 then begin
      let row = st.tab.(r) in
      for t = 0 to st.ncols - 1 do
        Array.unsafe_set st.z t
          (Array.unsafe_get st.z t -. (cb *. Array.unsafe_get row t))
      done
    end
  done;
  (* Clamp basic columns to an exact zero reduced cost. *)
  for r = 0 to st.m - 1 do
    st.z.(st.basis.(r)) <- 0.0
  done

let solve ?max_iters ?(eps = 1e-9) ~a ~b ~c () =
  let p1 = fresh_counts () and p2 = fresh_counts () in
  Obs.Span.phase
    ~detail:
      (Printf.sprintf "rows=%d cols=%d" (Array.length a) (Array.length c))
    ~result_detail:(fun _ ->
      Printf.sprintf "rows=%d cols=%d iters=%d" (Array.length a)
        (Array.length c) (p1.iters + p2.iters))
    "lp.simplex.solve"
  @@ fun () ->
  (* single exit point for the counter flush *)
  let flush result =
    Obs.Counter.incr c_solves;
    Obs.Counter.add c_phase1_iters p1.iters;
    Obs.Counter.add c_phase2_iters p2.iters;
    Obs.Counter.add c_degenerate (p1.degen + p2.degen);
    Obs.Counter.add c_bland (p1.bland + p2.bland);
    result
  in
  let m = Array.length a in
  let n = Array.length c in
  if Array.length b <> m then invalid_arg "Simplex.solve: |b| must equal rows";
  Array.iteri
    (fun r row ->
      if Array.length row <> n then
        invalid_arg (Printf.sprintf "Simplex.solve: row %d has wrong width" r))
    a;
  let max_iters =
    match max_iters with Some v -> v | None -> 200 * (m + n + 1)
  in
  (* Normalized working copies with rhs >= 0. *)
  let sign = Array.init m (fun r -> if b.(r) < 0.0 then -1.0 else 1.0) in
  let rhs = Array.init m (fun r -> sign.(r) *. b.(r)) in
  let rows = Array.init m (fun r -> Array.map (fun x -> sign.(r) *. x) a.(r)) in
  (* Detect singleton columns usable as an initial basis (slacks). *)
  let basis = Array.make m (-1) in
  let col_rows = Array.make n (-2) in
  (* -2 = empty, -1 = multiple, r = singleton in row r *)
  for r = 0 to m - 1 do
    for j = 0 to n - 1 do
      if Float.abs rows.(r).(j) > eps then
        col_rows.(j) <- (if col_rows.(j) = -2 then r else -1)
    done
  done;
  for j = 0 to n - 1 do
    let r = col_rows.(j) in
    if r >= 0 && basis.(r) < 0 && rows.(r).(j) > eps then basis.(r) <- j
  done;
  let nart = ref 0 in
  for r = 0 to m - 1 do
    if basis.(r) < 0 then incr nart
  done;
  let ncols = n + !nart in
  let tab = Array.make_matrix m ncols 0.0 in
  for r = 0 to m - 1 do
    Array.blit rows.(r) 0 tab.(r) 0 n
  done;
  let next_art = ref n in
  for r = 0 to m - 1 do
    if basis.(r) < 0 then begin
      tab.(r).(!next_art) <- 1.0;
      basis.(r) <- !next_art;
      incr next_art
    end
    else begin
      (* Scale the row so the basis coefficient is exactly 1. *)
      let v = tab.(r).(basis.(r)) in
      if v <> 1.0 then begin
        let inv = 1.0 /. v in
        for t = 0 to ncols - 1 do
          tab.(r).(t) <- tab.(r).(t) *. inv
        done;
        rhs.(r) <- rhs.(r) *. inv
      end
    end
  done;
  let st =
    {
      m;
      ncols;
      tab;
      rhs;
      basis;
      z = Array.make ncols 0.0;
      banned = Array.make ncols false;
      eps;
    }
  in
  (* Phase 1: minimize the sum of artificials. *)
  let phase1_cost = Array.init ncols (fun t -> if t >= n then 1.0 else 0.0) in
  let outcome =
    if !nart = 0 then P_optimal
    else begin
      set_costs st phase1_cost;
      run_phase st ~max_iters ~counts:p1
    end
  in
  match outcome with
  | P_iterations -> flush Iteration_limit
  | P_unbounded ->
      (* The phase-1 objective is bounded below by 0; reaching this branch
         means numerical breakdown. *)
      flush Iteration_limit
  | P_optimal ->
      let feas_tol =
        eps *. float_of_int (m + 1)
        *. Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 1.0 b
      in
      if !nart > 0 && objective_value st phase1_cost > feas_tol then
        flush Infeasible
      else begin
        (* Drive basic artificials out where possible; rows where no
           original column has a nonzero entry are redundant and keep their
           zero-valued artificial. *)
        for r = 0 to m - 1 do
          if st.basis.(r) >= n then begin
            let j = ref (-1) in
            (try
               for t = 0 to n - 1 do
                 if Float.abs st.tab.(r).(t) > sqrt eps then begin
                   j := t;
                   raise Exit
                 end
               done
             with Exit -> ());
            if !j >= 0 then pivot st r !j
          end
        done;
        for t = n to ncols - 1 do
          st.banned.(t) <- true
        done;
        set_costs st c;
        match run_phase st ~max_iters ~counts:p2 with
        | P_iterations -> flush Iteration_limit
        | P_unbounded -> flush Unbounded
        | P_optimal ->
            let x = Array.make n 0.0 in
            for r = 0 to m - 1 do
              if st.basis.(r) < n then
                x.(st.basis.(r)) <- Float.max 0.0 st.rhs.(r)
            done;
            let objective = ref 0.0 in
            for t = 0 to n - 1 do
              objective := !objective +. (c.(t) *. x.(t))
            done;
            flush
              (Optimal
                 { objective = !objective; x; basis = Array.copy st.basis })
      end
