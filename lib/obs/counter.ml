type t = { name : string; cell : int Atomic.t }

let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let make name =
  Mutex.lock registry_mutex;
  let t =
    match Hashtbl.find_opt registry name with
    | Some t -> t
    | None ->
        let t = { name; cell = Atomic.make 0 } in
        Hashtbl.add registry name t;
        t
  in
  Mutex.unlock registry_mutex;
  t

let name t = t.name
let value t = Atomic.get t.cell
let incr t = ignore (Atomic.fetch_and_add t.cell 1)
let add t n = if n <> 0 then ignore (Atomic.fetch_and_add t.cell n)
let reset t = Atomic.set t.cell 0

let find name =
  Mutex.lock registry_mutex;
  let r = Hashtbl.find_opt registry name in
  Mutex.unlock registry_mutex;
  r

let snapshot () =
  Mutex.lock registry_mutex;
  let entries =
    Hashtbl.fold (fun name t acc -> (name, Atomic.get t.cell) :: acc) registry []
  in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let delta ~before ~after =
  let moved =
    List.filter_map
      (fun (name, v) ->
        let b = Option.value ~default:0 (List.assoc_opt name before) in
        if v <> b then Some (name, v - b) else None)
      after
  in
  (* counters in [before] but gone from [after] (reset or re-registered
     between snapshots) would otherwise vanish silently: report the drop *)
  let dropped =
    List.filter_map
      (fun (name, b) ->
        if b <> 0 && not (List.mem_assoc name after) then Some (name, -b)
        else None)
      before
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (moved @ dropped)

let reset_all () =
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ t -> Atomic.set t.cell 0) registry;
  Mutex.unlock registry_mutex
