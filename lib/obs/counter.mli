(** Process-wide named counters.

    A counter is an [Atomic]-backed integer cell, safe to bump from any
    [Parallel.Pool] domain. [make] interns by name, so every layer that
    says [Counter.make "algos.exact.nodes"] shares one cell; counters are
    always recording (no enable switch) — the instrumented hot loops keep
    a local [int ref] and flush one [add] per solve/search, which keeps
    the fast path free of shared-memory traffic. *)

type t

val make : string -> t
(** Intern the counter named [name], creating it at zero on first use. *)

val name : t -> string
val value : t -> int

val incr : t -> unit
val add : t -> int -> unit

val reset : t -> unit

val find : string -> t option
(** Look up a counter by name without creating it. *)

val snapshot : unit -> (string * int) list
(** All registered counters with their current values, sorted by name. *)

val delta : before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Counters whose value changed between two snapshots (name, increase);
    counters absent from [before] count from zero, and counters present
    in [before] but missing from [after] (reset or re-registered between
    snapshots) are reported as negative deltas. Sorted by name. *)

val reset_all : unit -> unit
