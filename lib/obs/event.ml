(* Flight recorder: leveled, structured events in per-domain ring
   buffers. Unlike Sink's span buffers (off by default, unbounded, meant
   for one traced run), the recorder is always on at bounded cost: each
   domain owns a fixed-capacity ring that newer events overwrite, so a
   long-lived server retains the recent past — enough to explain the
   request that just went slow — without ever growing. Emission touches
   only the calling domain's ring (a Domain.DLS slot registered in a
   global list, the same pattern as Sink and Histogram shards), so the
   hot path takes no lock. *)

type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type value = Str of string | Int of int | Float of float | Bool of bool

type t = {
  name : string;
  level : level;
  fields : (string * value) list;
  ts_us : float;
  domain : int;
  ctx : string option;
  seq : int;  (* per-domain emission index, breaks timestamp ties *)
}

let default_capacity = 512

(* Minimum severity recorded; events below it cost one atomic load. *)
let threshold = Atomic.make (severity Info)
let set_level l = Atomic.set threshold (severity l)
let enabled l = severity l >= Atomic.get threshold

let dummy =
  {
    name = "";
    level = Debug;
    fields = [];
    ts_us = 0.0;
    domain = -1;
    ctx = None;
    seq = -1;
  }

type ring = { mutable slots : t array; mutable next : int }

let capacity = Atomic.make default_capacity

(* Rings of terminated domains stay registered so their events survive a
   pool shutdown, mirroring Sink's buffer registry. *)
let registry : ring list ref = ref []
let registry_mutex = Mutex.create ()

let ring_key =
  Domain.DLS.new_key (fun () ->
      let r = { slots = Array.make (Atomic.get capacity) dummy; next = 0 } in
      Mutex.lock registry_mutex;
      registry := r :: !registry;
      Mutex.unlock registry_mutex;
      r)

let set_capacity n =
  if n < 1 then invalid_arg "Event.set_capacity: capacity must be >= 1";
  Atomic.set capacity n;
  (* resize-and-clear every live ring; quiescent points only, like
     Sink.clear *)
  Mutex.lock registry_mutex;
  List.iter
    (fun r ->
      r.slots <- Array.make n dummy;
      r.next <- 0)
    !registry;
  Mutex.unlock registry_mutex

let clear () =
  Mutex.lock registry_mutex;
  List.iter
    (fun r ->
      Array.fill r.slots 0 (Array.length r.slots) dummy;
      r.next <- 0)
    !registry;
  Mutex.unlock registry_mutex

(* --- JSON-lines rendering ------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_to_json = function
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Int i -> string_of_int i
  | Float x ->
      (* JSON has no non-finite literals *)
      if Float.is_finite x then Printf.sprintf "%.9g" x
      else Printf.sprintf "\"%s\"" (Float.to_string x)
  | Bool b -> string_of_bool b

let to_json_line e =
  let buf = Buffer.create 128 in
  Printf.bprintf buf "{\"ts_us\":%.3f,\"level\":\"%s\",\"name\":\"%s\",\"domain\":%d"
    e.ts_us (level_to_string e.level) (json_escape e.name) e.domain;
  (match e.ctx with
  | Some ctx -> Printf.bprintf buf ",\"req\":\"%s\"" (json_escape ctx)
  | None -> ());
  if e.fields <> [] then begin
    Buffer.add_string buf ",\"fields\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Printf.bprintf buf "\"%s\":%s" (json_escape k) (value_to_json v))
      e.fields;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Optional live sink: every recorded event is also written as one JSON
   line, serialized by a mutex (tailing is not a hot path). *)
let sink : out_channel option ref = ref None
let sink_mutex = Mutex.create ()

let set_json_sink oc =
  Mutex.lock sink_mutex;
  sink := oc;
  Mutex.unlock sink_mutex

(* --- emission ------------------------------------------------------------ *)

let emit ?(level = Info) name fields =
  if enabled level then begin
    let r = Domain.DLS.get ring_key in
    let e =
      {
        name;
        level;
        fields;
        ts_us = Sink.now_us ();
        domain = (Domain.self () :> int);
        ctx = Sink.current_ctx ();
        seq = r.next;
      }
    in
    let cap = Array.length r.slots in
    r.slots.(r.next mod cap) <- e;
    r.next <- r.next + 1;
    if !sink <> None then begin
      Mutex.lock sink_mutex;
      (match !sink with
      | Some oc ->
          output_string oc (to_json_line e);
          output_char oc '\n';
          flush oc
      | None -> ());
      Mutex.unlock sink_mutex
    end
  end

(* --- reading -------------------------------------------------------------- *)

let ring_events r =
  let cap = Array.length r.slots in
  let n = min r.next cap in
  List.init n (fun i -> r.slots.((r.next - n + i) mod cap))

let snapshot () =
  Mutex.lock registry_mutex;
  let rings = !registry in
  Mutex.unlock registry_mutex;
  List.concat_map ring_events rings
  |> List.stable_sort (fun a b ->
         match Float.compare a.ts_us b.ts_us with
         | 0 -> compare (a.domain, a.seq) (b.domain, b.seq)
         | n -> n)

let recent ?ctx ?(min_level = Debug) ?count () =
  let evs =
    List.filter
      (fun e ->
        severity e.level >= severity min_level
        && match ctx with None -> true | Some c -> e.ctx = Some c)
      (snapshot ())
  in
  match count with
  | None -> evs
  | Some n ->
      let len = List.length evs in
      if len <= n then evs else List.filteri (fun i _ -> i >= len - n) evs

let dump_jsonl ?ctx ?min_level ?count oc =
  List.iter
    (fun e ->
      output_string oc (to_json_line e);
      output_char oc '\n')
    (recent ?ctx ?min_level ?count ());
  flush oc
