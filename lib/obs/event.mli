(** Flight recorder: leveled structured events in per-domain ring
    buffers.

    Always on at bounded cost: each domain owns a fixed-capacity ring
    that newer events overwrite, so a long-lived process retains the
    recent past without growing. Emission is lock-free on the hot path
    (the calling domain writes only its own ring); reads merge all
    rings under a registry mutex. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
val level_of_string : string -> level option

(** Field values. Rendered as native JSON types in dumps. *)
type value = Str of string | Int of int | Float of float | Bool of bool

type t = {
  name : string;
  level : level;
  fields : (string * value) list;
  ts_us : float;  (** monotonic microseconds, same clock as [Sink.now_us] *)
  domain : int;
  ctx : string option;  (** ambient request id from [Sink.with_ctx] *)
  seq : int;  (** per-domain emission index; breaks timestamp ties *)
}

val default_capacity : int
(** Ring slots per domain at startup (512). *)

val set_level : level -> unit
(** Set the minimum severity recorded. Default [Info]; events below the
    threshold cost one atomic load. *)

val enabled : level -> bool
(** [enabled l] is true when events at level [l] would be recorded. Use
    to skip expensive field construction. *)

val set_capacity : int -> unit
(** Resize every domain's ring to [n] slots, discarding recorded
    events. Call only at quiescent points (startup, tests). Raises
    [Invalid_argument] when [n < 1]. *)

val emit : ?level:level -> string -> (string * value) list -> unit
(** [emit name fields] records one event in the calling domain's ring
    (and the JSON sink, if set) when [name]'s level passes the
    threshold. [level] defaults to [Info]. *)

val set_json_sink : out_channel option -> unit
(** Mirror every recorded event as a JSON line on the given channel
    (flushed per event, serialized by a mutex) — for live tailing.
    [None] disables. *)

val snapshot : unit -> t list
(** All retained events across every domain's ring, oldest first
    (ordered by timestamp, then domain/seq). *)

val recent :
  ?ctx:string -> ?min_level:level -> ?count:int -> unit -> t list
(** [snapshot] filtered to a request id and/or minimum level, keeping
    only the last [count] events when given. *)

val to_json_line : t -> string
(** One event as a single-line JSON object:
    [{"ts_us":..,"level":"info","name":..,"domain":0,"req":"r5","fields":{..}}].
    ["req"] is omitted without a ctx, ["fields"] when empty. *)

val dump_jsonl :
  ?ctx:string -> ?min_level:level -> ?count:int -> out_channel -> unit
(** Write [recent] as JSON lines and flush. *)

val clear : unit -> unit
(** Drop all retained events in every ring (tests). *)
