(* Metrics exposition: the process-wide registries (counters, gauges,
   labeled families, histograms) rendered as Prometheus text format or
   as one JSON snapshot. Both renderings read the same snapshots, so the
   `stats` admin frame, `schedtool metrics` and the loadgen report can
   never disagree about what was measured. *)

(* Prometheus metric names allow [a-zA-Z0-9_:]; our dotted counter names
   (serve.cache_hits) map dots — and anything else exotic — to '_'. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let escape_label v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let float_text x =
  if x = infinity then "+Inf"
  else if x = neg_infinity then "-Inf"
  else if Float.is_nan x then "NaN"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

(* --- Prometheus text format --------------------------------------------- *)

let prometheus () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let p = sanitize name in
      Printf.bprintf buf "# TYPE %s counter\n%s %d\n" p p v)
    (Counter.snapshot ());
  let last_family = ref "" in
  List.iter
    (fun (s : Labeled.sample) ->
      let p = sanitize s.Labeled.metric in
      if p <> !last_family then begin
        Printf.bprintf buf "# TYPE %s counter\n" p;
        last_family := p
      end;
      Printf.bprintf buf "%s{%s=\"%s\"} %d\n" p (sanitize s.Labeled.label)
        (escape_label s.Labeled.label_value)
        s.Labeled.value)
    (Labeled.snapshot ());
  List.iter
    (fun (name, v) ->
      let p = sanitize name in
      Printf.bprintf buf "# TYPE %s gauge\n%s %s\n" p p (float_text v))
    (Gauge.snapshot ());
  List.iter
    (fun (h : Histogram.snapshot) ->
      let p = sanitize h.Histogram.sname in
      Printf.bprintf buf "# TYPE %s histogram\n" p;
      let cumulative = ref 0 in
      List.iter
        (fun (ub, c) ->
          cumulative := !cumulative + c;
          (* OpenMetrics exemplar: link the bucket to the trace id that
             landed in it last, so a p99 bucket names an explainable
             trace. Timestamps are seconds in the exposition. *)
          let exemplar =
            match List.assoc_opt ub h.Histogram.exemplars with
            | Some (e : Histogram.exemplar) ->
                Printf.sprintf " # {trace_id=\"%s\"} %s %.6f"
                  (escape_label e.Histogram.e_trace)
                  (float_text e.Histogram.e_value)
                  (e.Histogram.e_ts_us /. 1e6)
            | None -> ""
          in
          Printf.bprintf buf "%s_bucket{le=\"%s\"} %d%s\n" p (float_text ub)
            !cumulative exemplar)
        h.Histogram.buckets;
      (* Prometheus requires the +Inf bucket even when nothing overflowed *)
      if
        not
          (List.exists (fun (ub, _) -> ub = infinity) h.Histogram.buckets)
      then Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" p !cumulative;
      Printf.bprintf buf "%s_sum %s\n" p (float_text h.Histogram.sum);
      Printf.bprintf buf "%s_count %d\n" p h.Histogram.count)
    (Histogram.snapshot ~include_empty:true ());
  (match Slo.reports () with
  | [] -> ()
  | reports ->
      Buffer.add_string buf "# TYPE slo_ratio gauge\n";
      List.iter
        (fun (r : Slo.report) ->
          Printf.bprintf buf "slo_ratio{objective=\"%s\",window=\"%s\"} %s\n"
            (escape_label r.Slo.rname) (escape_label r.Slo.window)
            (float_text r.Slo.ratio))
        reports;
      Buffer.add_string buf "# TYPE slo_burn_rate gauge\n";
      List.iter
        (fun (r : Slo.report) ->
          Printf.bprintf buf
            "slo_burn_rate{objective=\"%s\",window=\"%s\"} %s\n"
            (escape_label r.Slo.rname) (escape_label r.Slo.window)
            (float_text r.Slo.burn))
        reports);
  Buffer.contents buf

(* --- JSON snapshot ------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no inf/nan literals; histograms encode their overflow bucket
   bound and empty-max as strings via [float_text]. *)
let json_float x =
  if Float.is_finite x then Printf.sprintf "%.9g" x
  else Printf.sprintf "\"%s\"" (float_text x)

let quantile_points = [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]

(* --- bench/loadgen record export ----------------------------------------- *)

type bench_record = {
  bname : string;
  iterations : int;
  wall_ns : float;
  percentiles : (string * float) list;
  counters : (string * int) list;
  trace_ids : (string * string) list;
}

let bench_records_json records =
  let record_json r =
    let counters =
      r.counters
      |> List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" (json_escape k) v)
      |> String.concat ", "
    in
    let percentiles =
      match r.percentiles with
      | [] -> ""
      | ps ->
          let fields =
            ps
            |> List.map (fun (k, v) ->
                   Printf.sprintf "\"%s\": %.0f" (json_escape k) v)
            |> String.concat ", "
          in
          Printf.sprintf ", \"percentiles\": {%s}" fields
    in
    (* trace-id join keys (e.g. loadgen's slowest requests), omitted when
       empty so bench/main.exe records keep their exact committed shape *)
    let trace_ids =
      match r.trace_ids with
      | [] -> ""
      | ids ->
          let fields =
            ids
            |> List.map (fun (k, v) ->
                   Printf.sprintf "\"%s\": \"%s\"" (json_escape k)
                     (json_escape v))
            |> String.concat ", "
          in
          Printf.sprintf ", \"trace_ids\": {%s}" fields
    in
    Printf.sprintf
      "  {\"name\": \"%s\", \"iterations\": %d, \"wall_ns\": %.0f, \
       \"ns_per_iter\": %.0f%s%s, \"counters\": {%s}}"
      (json_escape r.bname) r.iterations r.wall_ns
      (r.wall_ns /. float_of_int (max 1 r.iterations))
      percentiles trace_ids counters
  in
  "[\n" ^ String.concat ",\n" (List.map record_json records) ^ "\n]\n"

let json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\n    \"%s\": %d" (json_escape name) v)
    (Counter.snapshot ());
  Buffer.add_string buf "\n  },\n  \"labeled\": [";
  List.iteri
    (fun i (s : Labeled.sample) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "\n    {\"metric\": \"%s\", \"%s\": \"%s\", \"value\": %d}"
        (json_escape s.Labeled.metric)
        (json_escape s.Labeled.label)
        (json_escape s.Labeled.label_value)
        s.Labeled.value)
    (Labeled.snapshot ());
  Buffer.add_string buf "\n  ],\n  \"gauges\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\n    \"%s\": %s" (json_escape name) (json_float v))
    (Gauge.snapshot ());
  Buffer.add_string buf "\n  },\n  \"histograms\": [";
  List.iteri
    (fun i (h : Histogram.snapshot) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "\n    {\"name\": \"%s\", \"count\": %d, \"sum\": %s, \"max\": %s, \
         \"ratio\": %s"
        (json_escape h.Histogram.sname)
        h.Histogram.count
        (json_float h.Histogram.sum)
        (json_float h.Histogram.max_value)
        (json_float h.Histogram.sratio);
      (* an empty histogram has no order statistics; fabricating p50/p90/
         p99 from nothing would be a lie, so they are null *)
      List.iter
        (fun (label, q) ->
          if h.Histogram.count = 0 then
            Printf.bprintf buf ", \"%s\": null" label
          else
            Printf.bprintf buf ", \"%s\": %s" label
              (json_float (Histogram.quantile h q)))
        quantile_points;
      Buffer.add_string buf ", \"buckets\": [";
      List.iteri
        (fun j (ub, c) ->
          if j > 0 then Buffer.add_string buf ", ";
          let exemplar =
            match List.assoc_opt ub h.Histogram.exemplars with
            | Some (e : Histogram.exemplar) ->
                Printf.sprintf
                  ", \"exemplar\": {\"trace_id\": \"%s\", \"value\": %s, \
                   \"ts_us\": %s}"
                  (json_escape e.Histogram.e_trace)
                  (json_float e.Histogram.e_value)
                  (json_float e.Histogram.e_ts_us)
            | None -> ""
          in
          Printf.bprintf buf "{\"le\": %s, \"count\": %d%s}" (json_float ub) c
            exemplar)
        h.Histogram.buckets;
      Buffer.add_string buf "]}")
    (Histogram.snapshot ~include_empty:true ());
  Buffer.add_string buf "\n  ],\n  \"slo\": [";
  List.iteri
    (fun i (r : Slo.report) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "\n    {\"objective\": \"%s\", \"window\": \"%s\", \"target\": %s, \
         \"span_s\": %s, \"good\": %s, \"total\": %s, \"ratio\": %s, \
         \"burn\": %s}"
        (json_escape r.Slo.rname) (json_escape r.Slo.window)
        (json_float r.Slo.rtarget) (json_float r.Slo.span_s)
        (json_float r.Slo.good) (json_float r.Slo.total)
        (json_float r.Slo.ratio) (json_float r.Slo.burn))
    (Slo.reports ());
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
