(** Metrics exposition: Prometheus text format and a JSON snapshot.

    Both renderings walk the same registries — {!Counter}, {!Labeled},
    {!Gauge} and {!Histogram} — so the serve [stats] admin frame,
    [schedtool metrics] and the loadgen report agree by construction.
    Dotted metric names are sanitized for Prometheus ([serve.requests]
    becomes [serve_requests]); histograms render as cumulative
    [_bucket{le="..."}] series plus [_sum] and [_count]. *)

val sanitize : string -> string
(** Map a metric name into the Prometheus character set
    [[a-zA-Z0-9_:]]; every other character becomes ['_']. *)

val prometheus : unit -> string
(** Prometheus text exposition format (version 0.0.4): plain counters,
    labeled counter families, gauges, then histograms, each preceded by
    a [# TYPE] line. Histogram bucket counts are cumulative and always
    include the [+Inf] bucket; a registered-but-empty histogram still
    exposes its [+Inf] bucket, [_sum] and [_count] at zero so the series
    never vanishes from a scrape. Buckets with a recorded exemplar
    ({!Histogram.exemplar}) carry the OpenMetrics suffix
    [# {trace_id="..."} value timestamp_s] linking the bucket to its
    most recent traced observation (the synthesized [+Inf] line never
    does). When {!Slo} objectives are registered, [slo_ratio] and
    [slo_burn_rate] gauges (labeled by objective and window) are
    appended. *)

val quantile_points : (string * float) list
(** The quantiles the JSON snapshot reports per histogram:
    [p50], [p90], [p99]. *)

type bench_record = {
  bname : string;
  iterations : int;
  wall_ns : float;  (** total for all iterations *)
  percentiles : (string * float) list;
      (** e.g. [("p50_us", 812.)]; omitted from the JSON when empty *)
  counters : (string * int) list;  (** counter deltas over the loop *)
  trace_ids : (string * string) list;
      (** join keys against server-side dumps/explains, e.g.
          [("slowest", "lg7.42")]; omitted from the JSON when empty *)
}
(** One benchmark or load-generation run, as exported to
    [BENCH_serve.json] by the bench harness and [schedtool loadgen
    --json]. *)

val bench_records_json : bench_record list -> string
(** Render records as a JSON array; [ns_per_iter] is derived. The same
    shape on both producers keeps [scripts/bench_gate.sh] format-agnostic
    about where a record came from. *)

val json : unit -> string
(** One JSON object: [{"counters": {...}, "labeled": [...],
    "gauges": {...}, "histograms": [...], "slo": [...]}]. Each
    histogram carries count, sum, exact max, bucket ratio, the
    {!quantile_points} estimates and its nonempty buckets; an empty
    histogram reports [count 0] and [null] quantiles rather than
    fabricated ones. Non-finite numbers are encoded as strings
    (["+Inf"], ["NaN"]) since JSON has no literals for them. The [slo]
    array mirrors {!Slo.reports}. *)
