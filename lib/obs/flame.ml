(* Self-contained flamegraph renderer: collapsed stacks in, SVG text
   out. No flamegraph.pl, no external fonts or scripts — just nested
   <rect>s with <title> hover labels, which every browser renders.

   Layout is the classic one: x spans a frame's share of total weight,
   y is stack depth (root at the bottom), siblings sort by name so the
   output is deterministic for a given input. Colors hash the frame
   name into the warm palette so the same function keeps its color
   across captures. *)

type node = {
  name : string;
  mutable total : float;
  children : (string, node) Hashtbl.t;
}

let make_node name = { name; total = 0.0; children = Hashtbl.create 8 }

let insert root frames weight =
  root.total <- root.total +. weight;
  let rec go node = function
    | [] -> ()
    | f :: rest ->
        let child =
          match Hashtbl.find_opt node.children f with
          | Some c -> c
          | None ->
              let c = make_node f in
              Hashtbl.add node.children f c;
              c
        in
        child.total <- child.total +. weight;
        go child rest
  in
  go root frames

let of_collapsed entries =
  let root = make_node "root" in
  List.iter
    (fun (stack, weight) ->
      let frames = String.split_on_char ';' stack in
      insert root frames weight)
    entries;
  root

(* "a;b;c 12" lines back into (stack, weight) pairs; malformed lines
   (no space, unparsable weight) are skipped rather than fatal so a
   truncated capture still renders. *)
let parse_collapsed text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         match String.rindex_opt line ' ' with
         | None -> None
         | Some i -> (
             let stack = String.sub line 0 i in
             let w = String.sub line (i + 1) (String.length line - i - 1) in
             match float_of_string_opt w with
             | Some weight when stack <> "" -> Some (stack, weight)
             | _ -> None))

let xml_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* FNV-1a over the name picks a stable warm color. *)
let color name =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffff)
    name;
  let r = 205 + (!h mod 50) in
  let g = 80 + (!h / 53 mod 130) in
  let b = !h / 7919 mod 60 in
  Printf.sprintf "rgb(%d,%d,%d)" r g b

let frame_h = 16
let font_px = 11

let rec depth_of node =
  Hashtbl.fold (fun _ c acc -> max acc (1 + depth_of c)) node.children 0

let render ?(title = "schedtool profile") ?(width = 1200) entries =
  let root = of_collapsed entries in
  let total = root.total in
  let depth = depth_of root in
  let header_h = 24 in
  let height = header_h + ((depth + 1) * frame_h) + 8 in
  let buf = Buffer.create 16384 in
  Buffer.add_string buf
    (Printf.sprintf
       "<?xml version=\"1.0\" standalone=\"no\"?>\n\
        <svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\">\n"
       width height width height);
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"0\" y=\"0\" width=\"%d\" height=\"%d\" fill=\"#fdf6e3\"/>\n"
       width height);
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"16\" text-anchor=\"middle\" \
        font-family=\"monospace\" font-size=\"13\">%s</text>\n"
       (width / 2) (xml_escape title));
  (* root at the bottom, leaves at the top *)
  let y_of d = height - 8 - ((d + 1) * frame_h) in
  let sorted_children node =
    Hashtbl.fold (fun _ c acc -> c :: acc) node.children []
    |> List.sort (fun a b -> String.compare a.name b.name)
  in
  let rect name ~x ~w ~d ~weight =
    let y = y_of d in
    let pct = if total > 0.0 then 100.0 *. weight /. total else 0.0 in
    Buffer.add_string buf
      (Printf.sprintf
         "<g><title>%s (%.0f, %.1f%%)</title><rect x=\"%.2f\" y=\"%d\" \
          width=\"%.2f\" height=\"%d\" fill=\"%s\" rx=\"1\"/>"
         (xml_escape name) weight pct x y w (frame_h - 1) (color name));
    (* label only when it has a chance of fitting *)
    let max_chars = int_of_float (w /. 7.0) in
    if max_chars >= 3 then begin
      let label =
        if String.length name <= max_chars then name
        else String.sub name 0 (max_chars - 2) ^ ".."
      in
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.2f\" y=\"%d\" font-family=\"monospace\" \
            font-size=\"%d\">%s</text>"
           (x +. 2.0)
           (y + frame_h - 4)
           font_px (xml_escape label))
    end;
    Buffer.add_string buf "</g>\n"
  in
  let scale w = if total > 0.0 then w /. total *. float_of_int width else 0.0 in
  let rec emit node ~x ~d =
    let w = scale node.total in
    if w >= 0.4 then begin
      rect node.name ~x ~w ~d ~weight:node.total;
      let cx = ref x in
      List.iter
        (fun c ->
          emit c ~x:!cx ~d:(d + 1);
          cx := !cx +. scale c.total)
        (sorted_children node)
    end
  in
  let all_name = Printf.sprintf "all (%.0f samples)" total in
  rect all_name ~x:0.0 ~w:(float_of_int width) ~d:0 ~weight:total;
  let cx = ref 0.0 in
  List.iter
    (fun c ->
      emit c ~x:!cx ~d:1;
      cx := !cx +. scale c.total)
    (sorted_children root);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let render_collapsed ?title ?width text =
  render ?title ?width (parse_collapsed text)
