(** Self-contained flamegraph renderer: collapsed stacks to SVG, no
    external [flamegraph.pl]. Frame x-extent is its share of total
    weight, y is stack depth (root at the bottom); every frame carries
    a [<title>] hover label with its weight and percentage. Output is
    deterministic: siblings sort by name and colors are hashed from
    the frame name. *)

val parse_collapsed : string -> (string * float) list
(** Parse ["a;b;c 12"] lines; malformed lines are skipped so a
    truncated capture still renders. *)

val render : ?title:string -> ?width:int -> (string * float) list -> string
(** SVG text for collapsed entries (as produced by
    {!Profile.aggregate} or {!parse_collapsed}). [width] defaults to
    1200 px. *)

val render_collapsed : ?title:string -> ?width:int -> string -> string
(** [render] composed with {!parse_collapsed}. *)
