type t = { name : string; cell : float option Atomic.t }

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let make name =
  Mutex.lock registry_mutex;
  let t =
    match Hashtbl.find_opt registry name with
    | Some t -> t
    | None ->
        let t = { name; cell = Atomic.make None } in
        Hashtbl.add registry name t;
        t
  in
  Mutex.unlock registry_mutex;
  t

let name t = t.name
let set t v = Atomic.set t.cell (Some v)
let value t = Option.value ~default:0.0 (Atomic.get t.cell)

let rec set_max t v =
  let cur = Atomic.get t.cell in
  let keep = match cur with Some x -> x >= v | None -> false in
  if not keep then
    if not (Atomic.compare_and_set t.cell cur (Some v)) then set_max t v

let snapshot () =
  Mutex.lock registry_mutex;
  let entries =
    Hashtbl.fold
      (fun name t acc ->
        match Atomic.get t.cell with
        | Some v -> (name, v) :: acc
        | None -> acc)
      registry []
  in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let reset_all () =
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ t -> Atomic.set t.cell None) registry;
  Mutex.unlock registry_mutex
