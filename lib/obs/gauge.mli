(** Process-wide named gauges: last-write-wins float cells, interned by
    name like {!Counter}. Used for derived, low-rate measurements such as
    a pool's busy fraction at shutdown. *)

type t

val make : string -> t
val name : t -> string
val set : t -> float -> unit
val value : t -> float

val set_max : t -> float -> unit
(** Raise the gauge to [v] if it is below (or unset): a lock-free
    high-water mark, e.g. the deepest pending queue a server ever saw. *)

val snapshot : unit -> (string * float) list
(** All gauges that have been set at least once, sorted by name. *)

val reset_all : unit -> unit
(** Return every gauge to the unset state (dropped from [snapshot]). *)
