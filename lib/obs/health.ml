(* Liveness, readiness and saturation for a long-lived serving process.

   Per-domain heartbeat slots mirror Histogram's shard registry: each
   domain owns one mutable slot (a Domain.DLS key that registers itself
   in a global list on first use), so stamping a beat is a few plain
   writes and never takes a lock on the hot path. The watchdog and the
   status computation read every slot under the registry mutex; reads
   race benignly with writers (word-sized stores cannot tear).

   A slot tracks the innermost current unit of work: Parallel.Pool
   workers mark task begin/end, the serving layer marks itself Waiting
   while blocked on client input (a session parked in read is not a
   wedged task) and beats at request boundaries. The watchdog flags a
   Working slot whose last beat is older than the task budget — exactly
   once per incident — and recovery is announced when the task ends. *)

let c_checks = Counter.make "health.checks"
let c_stuck = Counter.make "health.stuck_tasks"
let g_status = Gauge.make "health.status"

type status = Ok | Degraded of string | Unhealthy of string

let status_to_string = function
  | Ok -> "ok"
  | Degraded _ -> "degraded"
  | Unhealthy _ -> "unhealthy"

let status_reason = function
  | Ok -> None
  | Degraded r | Unhealthy r -> Some r

let severity = function Ok -> 0 | Degraded _ -> 1 | Unhealthy _ -> 2
let worst a b = if severity b > severity a then b else a

(* --- heartbeat slots ----------------------------------------------------- *)

type state = Idle | Working | Waiting

let state_to_string = function
  | Idle -> "idle"
  | Working -> "working"
  | Waiting -> "waiting"

type slot = {
  domain : int;
  mutable state : state;
  mutable task : string;  (* "" when idle *)
  mutable ctx : string option;
  mutable task_started_us : float;
  mutable last_beat_us : float;
  mutable stuck_reported : bool;
}

let slots : slot list ref = ref []
let slots_mutex = Mutex.create ()

let slot_key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          domain = (Domain.self () :> int);
          state = Idle;
          task = "";
          ctx = None;
          task_started_us = 0.0;
          last_beat_us = Sink.now_us ();
          stuck_reported = false;
        }
      in
      Mutex.lock slots_mutex;
      slots := s :: !slots;
      Mutex.unlock slots_mutex;
      s)

let my_slot () = Domain.DLS.get slot_key

let emit_recovered s =
  Event.emit "health.task_recovered"
    [
      ("task", Event.Str s.task);
      ("domain", Event.Int s.domain);
      ( "age_ms",
        Event.Float ((Sink.now_us () -. s.task_started_us) /. 1000.) );
    ]

let task_begin name =
  let s = my_slot () in
  let now = Sink.now_us () in
  s.state <- Working;
  s.task <- name;
  s.ctx <- Sink.current_ctx ();
  s.task_started_us <- now;
  s.last_beat_us <- now;
  s.stuck_reported <- false

let beat () =
  let s = my_slot () in
  s.last_beat_us <- Sink.now_us ();
  s.state <- Working;
  match Sink.current_ctx () with None -> () | Some _ as ctx -> s.ctx <- ctx

let waiting () =
  let s = my_slot () in
  if s.stuck_reported then emit_recovered s;
  s.state <- Waiting;
  s.last_beat_us <- Sink.now_us ();
  s.stuck_reported <- false

let task_end () =
  let s = my_slot () in
  if s.stuck_reported then emit_recovered s;
  s.state <- Idle;
  s.task <- "";
  s.ctx <- None;
  s.last_beat_us <- Sink.now_us ();
  s.stuck_reported <- false

type heartbeat = {
  hdomain : int;
  hstate : string;  (* idle | working | waiting *)
  htask : string option;
  hctx : string option;
  beat_age_s : float;
  task_age_s : float;
}

let heartbeats () =
  Mutex.lock slots_mutex;
  let ss = !slots in
  Mutex.unlock slots_mutex;
  let now = Sink.now_us () in
  ss
  |> List.map (fun s ->
         {
           hdomain = s.domain;
           hstate = state_to_string s.state;
           htask = (if s.task = "" then None else Some s.task);
           hctx = s.ctx;
           beat_age_s = Float.max 0.0 ((now -. s.last_beat_us) /. 1e6);
           task_age_s =
             (* a slot beating outside a named task (a serve session
                between requests) has no task start to age against *)
             (if s.state = Idle || s.task_started_us = 0.0 then 0.0
              else Float.max 0.0 ((now -. s.task_started_us) /. 1e6));
         })
  |> List.sort (fun a b -> compare a.hdomain b.hdomain)

(* --- watchdog ------------------------------------------------------------ *)

let default_task_budget_s = 30.0
let budget_us = Atomic.make (int_of_float (default_task_budget_s *. 1e6))

(* a stuck task this many budgets old stops being "degraded" and makes
   the whole process unhealthy *)
let unhealthy_factor = 10.0

let set_task_budget_s s =
  if s <= 0.0 then invalid_arg "Health.set_task_budget_s: budget must be > 0";
  Atomic.set budget_us (int_of_float (s *. 1e6))

let task_budget_s () = float_of_int (Atomic.get budget_us) /. 1e6

type stuck = {
  sdomain : int;
  stask : string;
  sctx : string option;
  sage_s : float;
}

let stuck_hook : (stuck -> unit) option ref = ref None
let set_stuck_hook h = stuck_hook := h

(* Working slots whose last beat is older than the budget. [report]
   additionally emits the one-per-incident event and fires the hook. *)
let scan_stuck ~report =
  let now = Sink.now_us () in
  let budget = float_of_int (Atomic.get budget_us) in
  Mutex.lock slots_mutex;
  let ss = !slots in
  Mutex.unlock slots_mutex;
  List.filter_map
    (fun s ->
      if s.state <> Working || now -. s.last_beat_us <= budget then None
      else begin
        let st =
          {
            sdomain = s.domain;
            stask = s.task;
            sctx = s.ctx;
            sage_s = (now -. s.last_beat_us) /. 1e6;
          }
        in
        if report && not s.stuck_reported then begin
          s.stuck_reported <- true;
          Counter.incr c_stuck;
          Event.emit ~level:Event.Warn "health.stuck_task"
            ([
               ("task", Event.Str st.stask);
               ("domain", Event.Int st.sdomain);
               ("age_ms", Event.Float (st.sage_s *. 1000.));
             ]
            @
            match st.sctx with
            | Some req -> [ ("req", Event.Str req) ]
            | None -> []);
          match !stuck_hook with None -> () | Some h -> h st
        end;
        Some st
      end)
    ss

let check () =
  Counter.incr c_checks;
  scan_stuck ~report:true

(* --- saturation meters and probes ---------------------------------------- *)

type meter = {
  mname : string;
  fill : unit -> float;
  degraded_at : float;
  unhealthy_at : float;
}

let meter_registry : meter list ref = ref []
let probe_registry : (string * (unit -> status)) list ref = ref []
let registry_mutex = Mutex.create ()

let register_meter ?(degraded_at = 0.8) ?(unhealthy_at = 1.5) name fill =
  Mutex.lock registry_mutex;
  meter_registry :=
    { mname = name; fill; degraded_at; unhealthy_at }
    :: List.filter (fun m -> m.mname <> name) !meter_registry;
  Mutex.unlock registry_mutex

let register_probe name probe =
  Mutex.lock registry_mutex;
  probe_registry :=
    (name, probe) :: List.remove_assoc name !probe_registry;
  Mutex.unlock registry_mutex

let meters () =
  Mutex.lock registry_mutex;
  let ms = !meter_registry in
  Mutex.unlock registry_mutex;
  ms
  |> List.map (fun m -> (m.mname, try m.fill () with _ -> nan))
  |> List.sort compare

(* --- composite status ---------------------------------------------------- *)

(* Liveness: are the domains making progress? Only the heartbeat/stuck
   evidence counts; saturation cannot make a process un-live. *)
let liveness () =
  let budget = task_budget_s () in
  List.fold_left
    (fun acc st ->
      let s =
        if st.sage_s > unhealthy_factor *. budget then
          Unhealthy
            (Printf.sprintf "task %s on domain %d wedged for %.1fs" st.stask
               st.sdomain st.sage_s)
        else
          Degraded
            (Printf.sprintf "stuck task %s on domain %d (%.1fs over budget)"
               st.stask st.sdomain (st.sage_s -. budget))
      in
      worst acc s)
    Ok
    (scan_stuck ~report:false)

(* Readiness: liveness plus every saturation meter and registered probe.
   This is the admission-control signal Serve.Dispatch consults. *)
let status () =
  let meter_status =
    Mutex.lock registry_mutex;
    let ms = !meter_registry in
    Mutex.unlock registry_mutex;
    List.fold_left
      (fun acc m ->
        let fill = try m.fill () with _ -> nan in
        let s =
          if Float.is_nan fill then Ok
          else if fill >= m.unhealthy_at then
            Unhealthy (Printf.sprintf "%s saturated (%.0f%%)" m.mname (100. *. fill))
          else if fill >= m.degraded_at then
            Degraded
              (Printf.sprintf "%s near capacity (%.0f%%)" m.mname (100. *. fill))
          else Ok
        in
        worst acc s)
      Ok ms
  in
  let probe_status =
    Mutex.lock registry_mutex;
    let ps = !probe_registry in
    Mutex.unlock registry_mutex;
    List.fold_left
      (fun acc (name, probe) ->
        let s = try probe () with _ -> Degraded (name ^ " probe failed") in
        worst acc s)
      Ok ps
  in
  let s = worst (liveness ()) (worst meter_status probe_status) in
  Gauge.set g_status (float_of_int (severity s));
  s

(* --- health-frame rendering ---------------------------------------------- *)

(* Line-based, one k=v token stream per repeated line kind, so a scraper
   (schedtool top) needs no JSON parser. *)
let render_lines () =
  let s = status () in
  let live = liveness () in
  let status_lines =
    [ "status " ^ status_to_string s ]
    @ (match status_reason s with
      | Some r -> [ "reason " ^ r ]
      | None -> [])
    @ [ "liveness " ^ status_to_string live ]
    @ (match status_reason live with
      | Some r when status_reason s <> Some r -> [ "liveness_reason " ^ r ]
      | _ -> [])
    @ [ Printf.sprintf "task_budget_s %g" (task_budget_s ()) ]
  in
  let meter_lines =
    List.map
      (fun (name, fill) -> Printf.sprintf "meter name=%s fill=%.3f" name fill)
      (meters ())
  in
  let heartbeat_lines =
    List.map
      (fun h ->
        Printf.sprintf
          "heartbeat domain=%d state=%s task=%s req=%s beat_age_s=%.3f \
           task_age_s=%.3f"
          h.hdomain h.hstate
          (Option.value ~default:"-" h.htask)
          (Option.value ~default:"-" h.hctx)
          h.beat_age_s h.task_age_s)
      (heartbeats ())
  in
  status_lines @ meter_lines @ heartbeat_lines

(* --- test support -------------------------------------------------------- *)

let reset () =
  Mutex.lock registry_mutex;
  meter_registry := [];
  probe_registry := [];
  Mutex.unlock registry_mutex;
  stuck_hook := None;
  Atomic.set budget_us (int_of_float (default_task_budget_s *. 1e6));
  Mutex.lock slots_mutex;
  let ss = !slots in
  Mutex.unlock slots_mutex;
  let now = Sink.now_us () in
  List.iter
    (fun s ->
      s.state <- Idle;
      s.task <- "";
      s.ctx <- None;
      s.stuck_reported <- false;
      s.last_beat_us <- now)
    ss
