(** Liveness, readiness and saturation signals for a serving process.

    Each domain owns a heartbeat slot; workers mark the unit of work
    they are executing and a watchdog flags slots whose heartbeat is
    older than a configurable task budget. Composite status folds the
    stuck-task evidence together with registered saturation meters and
    custom probes into the lattice [Ok < Degraded < Unhealthy]. *)

type status = Ok | Degraded of string | Unhealthy of string

val status_to_string : status -> string
(** ["ok"], ["degraded"] or ["unhealthy"]. *)

val status_reason : status -> string option
(** The carried reason, [None] for [Ok]. *)

val worst : status -> status -> status
(** Join in the severity lattice: the more severe of the two. *)

(** {1 Heartbeats} *)

val task_begin : string -> unit
(** Mark the calling domain as working on the named task. Captures the
    ambient {!Sink.current_ctx} request id for watchdog attribution. *)

val beat : unit -> unit
(** Refresh the calling domain's heartbeat mid-task (and re-capture the
    ambient request id). A beating task is never considered stuck. *)

val waiting : unit -> unit
(** Mark the calling domain as blocked on external input (e.g. a serve
    session parked in [read]). Waiting slots are exempt from the
    watchdog. Emits [health.task_recovered] if the slot was reported
    stuck. *)

val task_end : unit -> unit
(** Mark the calling domain idle. Emits [health.task_recovered] if the
    slot was reported stuck. *)

type heartbeat = {
  hdomain : int;
  hstate : string;  (** ["idle"], ["working"] or ["waiting"] *)
  htask : string option;
  hctx : string option;  (** ambient request id, if any *)
  beat_age_s : float;
  task_age_s : float;
}

val heartbeats : unit -> heartbeat list
(** Snapshot of every domain's slot, sorted by domain id. *)

(** {1 Watchdog} *)

val set_task_budget_s : float -> unit
(** Beat-age budget before a working task counts as stuck (default 30s).
    Raises [Invalid_argument] when not positive. *)

val task_budget_s : unit -> float

type stuck = {
  sdomain : int;
  stask : string;
  sctx : string option;
  sage_s : float;  (** seconds since the last beat *)
}

val set_stuck_hook : (stuck -> unit) option -> unit
(** Hook fired once per stuck incident from {!check} — the server uses
    it to trigger a rate-bounded flight-recorder dump. *)

val check : unit -> stuck list
(** Watchdog pass: returns currently stuck tasks, emitting exactly one
    [health.stuck_task] event (and firing the hook) per incident.
    Increments the [health.checks] counter. *)

(** {1 Saturation meters and probes} *)

val register_meter :
  ?degraded_at:float -> ?unhealthy_at:float -> string -> (unit -> float) -> unit
(** Register (replacing any meter of the same name) a saturation meter:
    a fill-factor in [0, inf) where crossing [degraded_at] (default 0.8)
    degrades readiness and [unhealthy_at] (default 1.5) makes the
    process unhealthy. Use infinite thresholds for display-only meters. *)

val register_probe : string -> (unit -> status) -> unit
(** Register (replacing by name) a custom readiness probe. *)

val meters : unit -> (string * float) list
(** Current fill factor of every registered meter, sorted by name. *)

(** {1 Composite status} *)

val liveness : unit -> status
(** Stuck-task evidence only: [Degraded] when a task exceeds its budget,
    [Unhealthy] when it is an order of magnitude past it. *)

val status : unit -> status
(** Readiness: the worst of {!liveness}, every meter and every probe.
    Updates the [health.status] gauge (0=ok, 1=degraded, 2=unhealthy). *)

val render_lines : unit -> string list
(** Line-based health snapshot (status, meters, heartbeats) used as the
    [health v1] frame payload; repeated lines carry [k=v] tokens. *)

val reset : unit -> unit
(** Test support: clear meters, probes and the stuck hook, restore the
    default budget, and force every slot back to idle. *)
