(* Log-bucketed histograms with per-domain sharded cells.

   Bucket i >= 1 covers (ratio^(i-1), ratio^i]; bucket 0 holds values
   <= 1 and the last bucket overflows to +inf. Recording touches only
   the calling domain's shard (a Domain.DLS slot), so the hot path is a
   few array writes and never contends with other domains; [merged]
   folds every shard at read time. Shards of terminated domains stay
   registered so their observations survive a pool shutdown, mirroring
   Sink's buffer registry. *)

let default_ratio = 1.25

(* Upper bound on representable values: 1e12 us is ~11.5 days, 1e12
   nodes is far beyond any solve; everything above lands in the overflow
   bucket. *)
let max_tracked = 1e12

type exemplar = { e_trace : string; e_value : float; e_ts_us : float }

type shard = {
  counts : int array;
  mutable sum : float;
  mutable max_value : float;
  (* last traced observation per bucket: a bounded reservoir (one slot
     per bucket per shard) linking a bucket to the trace id that landed
     in it most recently — enough for a p99 bucket in the exposition to
     name an explainable trace. Only observations made under an ambient
     Sink context record one. *)
  exemplars : exemplar option array;
}

type t = {
  name : string;
  ratio : float;
  log_ratio : float;
  nbuckets : int;  (* includes bucket 0 and the overflow bucket *)
  shards : shard list ref;
  shards_mutex : Mutex.t;
  key : shard Domain.DLS.key;
}

type snapshot = {
  sname : string;
  sratio : float;
  count : int;
  sum : float;
  max_value : float;
  buckets : (float * int) list;
  exemplars : (float * exemplar) list;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let nbuckets_for ratio =
  (* bucket 0, enough log buckets to reach max_tracked, one overflow *)
  2 + int_of_float (Float.ceil (log max_tracked /. log ratio))

let make ?(ratio = default_ratio) name =
  if ratio <= 1.0 then invalid_arg "Histogram.make: ratio must be > 1";
  Mutex.lock registry_mutex;
  let t =
    match Hashtbl.find_opt registry name with
    | Some t -> t
    | None ->
        let nbuckets = nbuckets_for ratio in
        let shards = ref [] in
        let shards_mutex = Mutex.create () in
        let key =
          Domain.DLS.new_key (fun () ->
              let s =
                {
                  counts = Array.make nbuckets 0;
                  sum = 0.0;
                  max_value = neg_infinity;
                  exemplars = Array.make nbuckets None;
                }
              in
              Mutex.lock shards_mutex;
              shards := s :: !shards;
              Mutex.unlock shards_mutex;
              s)
        in
        let t =
          { name; ratio; log_ratio = log ratio; nbuckets; shards; shards_mutex; key }
        in
        Hashtbl.add registry name t;
        t
  in
  Mutex.unlock registry_mutex;
  t

let name t = t.name
let ratio t = t.ratio

(* Index of the bucket covering [v]: 0 for v <= 1 (and non-finite junk),
   the overflow bucket beyond [max_tracked]. *)
let bucket_index t v =
  if not (Float.is_finite v) || v <= 1.0 then if v > 1.0 then t.nbuckets - 1 else 0
  else
    let i = int_of_float (Float.ceil (log v /. t.log_ratio)) in
    if i < 1 then 1 else if i > t.nbuckets - 1 then t.nbuckets - 1 else i

let upper_bound t i =
  if i = 0 then 1.0
  else if i >= t.nbuckets - 1 then infinity
  else t.ratio ** float_of_int i

let observe t v =
  let s = Domain.DLS.get t.key in
  let i = bucket_index t v in
  s.counts.(i) <- s.counts.(i) + 1;
  s.sum <- s.sum +. v;
  if v > s.max_value then s.max_value <- v;
  (match Sink.current_ctx () with
  | None -> ()
  | Some trace ->
      s.exemplars.(i) <-
        Some { e_trace = trace; e_value = v; e_ts_us = Sink.now_us () })

let merged t =
  Mutex.lock t.shards_mutex;
  let shards = !(t.shards) in
  Mutex.unlock t.shards_mutex;
  let counts = Array.make t.nbuckets 0 in
  let exemplars = Array.make t.nbuckets None in
  let sum = ref 0.0 and max_value = ref neg_infinity in
  List.iter
    (fun s ->
      Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) s.counts;
      Array.iteri
        (fun i e ->
          (* newest observation wins across shards *)
          match (e, exemplars.(i)) with
          | None, _ -> ()
          | Some x, Some y when y.e_ts_us >= x.e_ts_us -> ()
          | (Some _ as x), _ -> exemplars.(i) <- x)
        s.exemplars;
      sum := !sum +. s.sum;
      if s.max_value > !max_value then max_value := s.max_value)
    shards;
  let count = Array.fold_left ( + ) 0 counts in
  let buckets = ref [] and exlist = ref [] in
  for i = t.nbuckets - 1 downto 0 do
    if counts.(i) > 0 then buckets := (upper_bound t i, counts.(i)) :: !buckets;
    (match exemplars.(i) with
    | Some e -> exlist := (upper_bound t i, e) :: !exlist
    | None -> ())
  done;
  {
    sname = t.name;
    sratio = t.ratio;
    count;
    sum = !sum;
    max_value = (if count = 0 then nan else !max_value);
    buckets = !buckets;
    exemplars = !exlist;
  }

let find name =
  Mutex.lock registry_mutex;
  let r = Hashtbl.find_opt registry name in
  Mutex.unlock registry_mutex;
  r

let snapshot ?(include_empty = false) () =
  Mutex.lock registry_mutex;
  let ts = Hashtbl.fold (fun _ t acc -> t :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.filter_map
    (fun t ->
      let s = merged t in
      if s.count = 0 && not include_empty then None else Some s)
    ts
  |> List.sort (fun a b -> String.compare a.sname b.sname)

let quantile s q =
  if s.count = 0 then invalid_arg "Histogram.quantile: empty histogram";
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q outside [0, 1]";
  (* rank of the order statistic we report, 1-based *)
  let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int s.count))) in
  let rec go seen = function
    | [] -> s.max_value (* unreachable: ranks are <= count *)
    | (ub, c) :: rest ->
        if seen + c >= rank then
          (* the overflow bucket has no finite upper bound; the tracked
             maximum is the tightest statement we can make there *)
          if ub = infinity then s.max_value else ub
        else go (seen + c) rest
  in
  go 0 s.buckets

let reset t =
  Mutex.lock t.shards_mutex;
  List.iter
    (fun s ->
      Array.fill s.counts 0 t.nbuckets 0;
      Array.fill s.exemplars 0 t.nbuckets None;
      s.sum <- 0.0;
      s.max_value <- neg_infinity)
    !(t.shards);
  Mutex.unlock t.shards_mutex

let reset_all () =
  Mutex.lock registry_mutex;
  let ts = Hashtbl.fold (fun _ t acc -> t :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.iter reset ts
