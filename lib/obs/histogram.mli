(** Log-bucketed histograms with bounded relative error and per-domain
    sharded cells.

    A histogram's buckets grow geometrically: bucket 0 holds values
    [<= 1], bucket [i >= 1] covers [(ratio^(i-1), ratio^i]], and a final
    bucket overflows to [+inf] (values beyond ~1e12 land there).
    {!quantile} reports the upper bound of the bucket containing the
    requested order statistic, so for values in (1, 1e12) the estimate
    [e] of a true quantile [v] satisfies [v <= e < ratio * v] — the
    relative error is bounded by the bucket ratio.

    Recording is contention-free across {!Parallel.Pool} worker domains:
    each domain owns a private shard (a [Domain.DLS] slot holding one
    bucket-count array), and {!observe} touches only that shard.
    {!merged} folds every shard at read time; shards of terminated
    domains stay registered, so their observations survive a pool
    shutdown. Merging while other domains record is safe (word-sized
    writes cannot tear) but may observe a shard mid-update, so a live
    scrape is approximate to within the in-flight observations. *)

type t

val default_ratio : float
(** Bucket growth factor used when [make] gets no [?ratio]: 1.25, i.e.
    quantile estimates within 25% of the truth. *)

val make : ?ratio:float -> string -> t
(** Intern the histogram named [name], creating it on first use. The
    [ratio] (> 1) is fixed by whichever call creates the histogram;
    later [make]s of the same name return the existing histogram and
    ignore their [ratio]. *)

val name : t -> string
val ratio : t -> float

val observe : t -> float -> unit
(** Record one value into the calling domain's shard. Non-finite values
    count toward [count] but land in the extreme buckets ([nan] and
    [-inf] in bucket 0, [+inf] in the overflow bucket). When an ambient
    {!Sink} context (trace/request id) is set, the observation also
    replaces the bucket's exemplar — a bounded reservoir of one slot per
    bucket per shard, so tracing adds no allocation growth. *)

type exemplar = {
  e_trace : string;  (** trace/request id ambient at observation *)
  e_value : float;  (** the observed value *)
  e_ts_us : float;  (** absolute observation time, microseconds *)
}

type snapshot = {
  sname : string;
  sratio : float;
  count : int;  (** total observations across all shards *)
  sum : float;  (** sum of all observed values *)
  max_value : float;  (** exact maximum observed; [nan] when empty *)
  buckets : (float * int) list;
      (** nonempty buckets, ascending [(upper_bound, count)]; the
          overflow bucket's upper bound is [infinity] *)
  exemplars : (float * exemplar) list;
      (** buckets' latest traced observations, ascending by upper bound;
          across shards the newest timestamp wins *)
}

val merged : t -> snapshot
(** Fold every domain's shard into one snapshot. *)

val snapshot : ?include_empty:bool -> unit -> snapshot list
(** Merged snapshots of every registered histogram that has at least one
    observation, sorted by name. With [~include_empty:true], zero-count
    histograms are included too (the exposition layer wants them so a
    registered series never vanishes from a scrape). *)

val quantile : snapshot -> float -> float
(** [quantile s q] for [q] in [[0, 1]]: the upper bound of the bucket
    holding the [ceil (q * count)]-th smallest observation (the exact
    tracked maximum for the overflow bucket). Raises [Invalid_argument]
    on an empty snapshot or [q] outside [[0, 1]]. *)

val find : string -> t option
(** Look up a histogram by name without creating it. *)

val reset : t -> unit
(** Zero every shard of one histogram. Do not call while other domains
    are recording into it. *)

val reset_all : unit -> unit
(** {!reset} every registered histogram (tests). *)
