(* Labeled counter families: one metric name, one label key, one atomic
   cell per label value — e.g. serve.requests{status="ok"}. Cells are
   interned like Counter's, so instrumented layers resolve their cell
   once at module init and the hot path is a single atomic add. *)

type cell = { metric : string; label_value : string; v : int Atomic.t }

type family = {
  fname : string;
  label : string;
  cells : (string, cell) Hashtbl.t;
  mutex : Mutex.t;
}

type sample = {
  metric : string;
  label : string;
  label_value : string;
  value : int;
}

let registry : (string, family) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let family name ~label =
  Mutex.lock registry_mutex;
  let f =
    match Hashtbl.find_opt registry name with
    | Some f ->
        if f.label <> label then begin
          Mutex.unlock registry_mutex;
          invalid_arg
            (Printf.sprintf
               "Labeled.family: %S already registered with label %S (asked for %S)"
               name f.label label)
        end;
        f
    | None ->
        let f =
          { fname = name; label; cells = Hashtbl.create 8; mutex = Mutex.create () }
        in
        Hashtbl.add registry name f;
        f
  in
  Mutex.unlock registry_mutex;
  f

let name (f : family) = f.fname
let label (f : family) = f.label

let cell f label_value =
  Mutex.lock f.mutex;
  let c =
    match Hashtbl.find_opt f.cells label_value with
    | Some c -> c
    | None ->
        let c = { metric = f.fname; label_value; v = Atomic.make 0 } in
        Hashtbl.add f.cells label_value c;
        c
  in
  Mutex.unlock f.mutex;
  c

let incr c = ignore (Atomic.fetch_and_add c.v 1)
let add c n = if n <> 0 then ignore (Atomic.fetch_and_add c.v n)
let value c = Atomic.get c.v

let snapshot () =
  Mutex.lock registry_mutex;
  let families = Hashtbl.fold (fun _ f acc -> f :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.concat_map
    (fun f ->
      Mutex.lock f.mutex;
      let cells = Hashtbl.fold (fun _ c acc -> c :: acc) f.cells [] in
      Mutex.unlock f.mutex;
      List.map
        (fun (c : cell) ->
          {
            metric = f.fname;
            label = f.label;
            label_value = c.label_value;
            value = Atomic.get c.v;
          })
        cells)
    families
  |> List.sort (fun a b ->
         match String.compare a.metric b.metric with
         | 0 -> String.compare a.label_value b.label_value
         | n -> n)

let reset_all () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ f ->
      Mutex.lock f.mutex;
      Hashtbl.iter (fun _ c -> Atomic.set c.v 0) f.cells;
      Mutex.unlock f.mutex)
    registry;
  Mutex.unlock registry_mutex
