(** Labeled counter families, e.g. [serve.requests{status="ok"}].

    A family is one metric name with one label key; each distinct label
    value gets its own [Atomic]-backed cell, interned like
    {!Counter}'s — instrumented layers resolve their {!cell} once at
    module init, so bumping is a single atomic add from any
    [Parallel.Pool] domain. The exposition layer ({!Expo}) renders
    families as Prometheus labeled series and the JSON snapshot groups
    them per metric. *)

type family
(** One metric name + label key, interned by metric name. *)

type cell
(** One (metric, label value) counter. *)

type sample = {
  metric : string;
  label : string;
  label_value : string;
  value : int;
}

val family : string -> label:string -> family
(** Intern the family [name] with the given label key. Raises
    [Invalid_argument] if [name] is already registered with a different
    label key. *)

val name : family -> string
val label : family -> string

val cell : family -> string -> cell
(** Intern the cell for one label value, creating it at zero. *)

val incr : cell -> unit
val add : cell -> int -> unit
val value : cell -> int

val snapshot : unit -> sample list
(** Every cell of every family, sorted by metric name then label
    value. Cells are included even at zero, so a family registered with
    its expected label values always exposes a complete series. *)

val reset_all : unit -> unit
