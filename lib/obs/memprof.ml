(* GC and allocation profiling. Gauges mirror Gc.quick_stat so the
   Prometheus/JSON exposition shows heap pressure next to the request
   counters; allocation deltas come from Gc.allocated_bytes, which
   counts per-domain minor allocations (monotonic, survives
   collections) and is the cheapest honest "bytes allocated by this
   request" signal OCaml offers. *)

let minor_words = Gauge.make "gc.minor_words"
let major_words = Gauge.make "gc.major_words"
let promoted_words = Gauge.make "gc.promoted_words"
let heap_words = Gauge.make "gc.heap_words"
let compactions = Gauge.make "gc.compactions"
let minor_collections = Gauge.make "gc.minor_collections"
let major_collections = Gauge.make "gc.major_collections"

let sample () =
  let s = Gc.quick_stat () in
  (* quick_stat's cross-domain aggregates only refresh at major-GC
     boundaries, so a short-lived or quiet process reads 0 there;
     Gc.minor_words is the calling domain's live allocation counter and
     is always current — take the larger of the two views *)
  Gauge.set minor_words (Float.max s.Gc.minor_words (Gc.minor_words ()));
  Gauge.set major_words s.Gc.major_words;
  Gauge.set promoted_words s.Gc.promoted_words;
  Gauge.set heap_words (float_of_int s.Gc.heap_words);
  Gauge.set compactions (float_of_int s.Gc.compactions);
  Gauge.set minor_collections (float_of_int s.Gc.minor_collections);
  Gauge.set major_collections (float_of_int s.Gc.major_collections)

let allocated_bytes = Gc.allocated_bytes

(* [with_alloc f] runs [f ()] and returns its result with the bytes
   the calling domain allocated during the call. *)
let with_alloc f =
  let before = Gc.allocated_bytes () in
  let x = f () in
  (x, Gc.allocated_bytes () -. before)
