(* GC and allocation profiling. Gauges mirror Gc.quick_stat so the
   Prometheus/JSON exposition shows heap pressure next to the request
   counters; allocation deltas come from Gc.allocated_bytes, which
   counts per-domain minor allocations (monotonic, survives
   collections) and is the cheapest honest "bytes allocated by this
   request" signal OCaml offers. *)

let minor_words = Gauge.make "gc.minor_words"
let major_words = Gauge.make "gc.major_words"
let promoted_words = Gauge.make "gc.promoted_words"
let heap_words = Gauge.make "gc.heap_words"
let compactions = Gauge.make "gc.compactions"
let minor_collections = Gauge.make "gc.minor_collections"
let major_collections = Gauge.make "gc.major_collections"

let sample () =
  let s = Gc.quick_stat () in
  (* quick_stat's cross-domain aggregates only refresh at major-GC
     boundaries, so a short-lived or quiet process reads 0 there;
     Gc.minor_words is the calling domain's live allocation counter and
     is always current — take the larger of the two views *)
  Gauge.set minor_words (Float.max s.Gc.minor_words (Gc.minor_words ()));
  Gauge.set major_words s.Gc.major_words;
  Gauge.set promoted_words s.Gc.promoted_words;
  Gauge.set heap_words (float_of_int s.Gc.heap_words);
  Gauge.set compactions (float_of_int s.Gc.compactions);
  Gauge.set minor_collections (float_of_int s.Gc.minor_collections);
  Gauge.set major_collections (float_of_int s.Gc.major_collections)

let allocated_bytes = Gc.allocated_bytes

(* [with_alloc f] runs [f ()] and returns its result with the bytes
   the calling domain allocated during the call. *)
let with_alloc f =
  let before = Gc.allocated_bytes () in
  let x = f () in
  (x, Gc.allocated_bytes () -. before)

(* --- Gc.Memprof ownership ------------------------------------------
   Gc.Memprof admits exactly one active profile per process, so every
   would-be user (Profile's allocation engine today, a future leak
   detector tomorrow) must claim it through one door. The owner string
   names the claimant so a second claim fails with who holds it rather
   than an opaque Gc failure. On runtimes where Memprof is not wired
   up for multicore (5.1.x raises Failure at start), the claim reports
   Error instead of raising, so callers degrade gracefully. *)

let sampler_mutex = Mutex.create ()
let sampler_owner_ref = ref None

let word_bytes = float_of_int (Sys.word_size / 8)

let start_sampler ~owner ~sampling_rate ~callback =
  Mutex.lock sampler_mutex;
  let result =
    match !sampler_owner_ref with
    | Some holder ->
        Error (Printf.sprintf "Gc.Memprof already claimed by %s" holder)
    | None -> (
        let sample (a : Gc.Memprof.allocation) =
          (* Memprof samples each allocated word with probability
             [sampling_rate]; n_samples / rate is an unbiased estimate
             of the allocation's size in words. *)
          let bytes =
            float_of_int a.Gc.Memprof.n_samples /. sampling_rate *. word_bytes
          in
          callback ~bytes ~callstack:a.Gc.Memprof.callstack;
          None
        in
        match
          Gc.Memprof.start ~sampling_rate
            { Gc.Memprof.null_tracker with
              alloc_minor = sample;
              alloc_major = sample;
            }
        with
        | _profile ->
            sampler_owner_ref := Some owner;
            Ok ()
        | exception Failure msg -> Error ("Gc.Memprof unavailable: " ^ msg))
  in
  Mutex.unlock sampler_mutex;
  result

let stop_sampler () =
  Mutex.lock sampler_mutex;
  (match !sampler_owner_ref with
  | None -> ()
  | Some _ ->
      (try Gc.Memprof.stop () with Failure _ -> ());
      sampler_owner_ref := None);
  Mutex.unlock sampler_mutex

let sampler_owner () =
  Mutex.lock sampler_mutex;
  let o = !sampler_owner_ref in
  Mutex.unlock sampler_mutex;
  o
