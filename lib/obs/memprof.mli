(** GC and allocation profiling.

    [sample] refreshes a set of [gc.*] gauges from [Gc.quick_stat] so
    the exposition ([Expo], [schedtool metrics]) shows heap pressure;
    allocation deltas from [Gc.allocated_bytes] give bytes-allocated
    per request or per phase. *)

val minor_words : Gauge.t
val major_words : Gauge.t
val promoted_words : Gauge.t
val heap_words : Gauge.t
val compactions : Gauge.t
val minor_collections : Gauge.t
val major_collections : Gauge.t

val sample : unit -> unit
(** Refresh every [gc.*] gauge from [Gc.quick_stat] (cheap: no heap
    walk). Called on span boundaries by [Span.with_alloc] and before
    each exposition render. *)

val allocated_bytes : unit -> float
(** Bytes allocated by the calling domain since it started (monotonic;
    from [Gc.allocated_bytes]). *)

val with_alloc : (unit -> 'a) -> 'a * float
(** [with_alloc f] runs [f ()], returning its result and the bytes the
    calling domain allocated during the call. *)
