(** GC and allocation profiling.

    [sample] refreshes a set of [gc.*] gauges from [Gc.quick_stat] so
    the exposition ([Expo], [schedtool metrics]) shows heap pressure;
    allocation deltas from [Gc.allocated_bytes] give bytes-allocated
    per request or per phase. *)

val minor_words : Gauge.t
val major_words : Gauge.t
val promoted_words : Gauge.t
val heap_words : Gauge.t
val compactions : Gauge.t
val minor_collections : Gauge.t
val major_collections : Gauge.t

val sample : unit -> unit
(** Refresh every [gc.*] gauge from [Gc.quick_stat] (cheap: no heap
    walk). Called on span boundaries by [Span.with_alloc] and before
    each exposition render. *)

val allocated_bytes : unit -> float
(** Bytes allocated by the calling domain since it started (monotonic;
    from [Gc.allocated_bytes]). *)

val with_alloc : (unit -> 'a) -> 'a * float
(** [with_alloc f] runs [f ()], returning its result and the bytes the
    calling domain allocated during the call. *)

(** {2 Gc.Memprof ownership}

    [Gc.Memprof] admits exactly one active profile per process. Any
    module that wants sampled allocation callbacks (e.g. [Profile]'s
    allocation engine) claims the slot here instead of calling
    [Gc.Memprof.start] directly, so two users can never double-install
    the sampler. *)

val start_sampler :
  owner:string ->
  sampling_rate:float ->
  callback:(bytes:float -> callstack:Printexc.raw_backtrace -> unit) ->
  (unit, string) result
(** Claim the process-wide [Gc.Memprof] slot and start sampling.
    [callback] receives, for each sampled allocation, an unbiased
    estimate of its size in bytes ([n_samples / sampling_rate] words)
    and the allocation site's callstack; it may run on any domain.
    Returns [Error] naming the current holder when the slot is taken,
    or describing the runtime limitation where [Gc.Memprof.start] is
    unavailable (OCaml 5.1 multicore raises [Failure]). *)

val stop_sampler : unit -> unit
(** Stop the active sampler and release the slot. No-op when idle. *)

val sampler_owner : unit -> string option
(** Name passed by the current holder, if any. *)
