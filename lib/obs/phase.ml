(* Phase attribution: completed spans as records in bounded per-domain
   rings. Unlike Sink's buffers (off by default, unbounded, one traced
   run) the phase recorder is always on at bounded cost, like Event's
   flight recorder: each domain owns a fixed-capacity ring that newer
   records overwrite, so a long-lived server can answer "where did that
   request spend its time" for the recent past without ever growing.
   A record is written once, when its span closes (Span.phase), so the
   hot path is two clock reads plus one ring slot write and never takes
   a lock. *)

type record = {
  name : string;
  detail : string;  (* "" when the phase carries no annotation *)
  ctx : string option;
  id : int;
  parent : int option;
  start_us : float;
  dur_us : float;
  alloc_bytes : float;
  domain : int;
  seq : int;  (* per-domain emission index, breaks timestamp ties *)
}

let default_capacity = 4096

let dummy =
  {
    name = "";
    detail = "";
    ctx = None;
    id = -1;
    parent = None;
    start_us = 0.0;
    dur_us = 0.0;
    alloc_bytes = 0.0;
    domain = -1;
    seq = -1;
  }

type ring = { mutable slots : record array; mutable next : int }

let capacity = Atomic.make default_capacity

(* Rings of terminated domains stay registered so their records survive
   a pool shutdown, mirroring Sink and Event. *)
let registry : ring list ref = ref []
let registry_mutex = Mutex.create ()

let ring_key =
  Domain.DLS.new_key (fun () ->
      let r = { slots = Array.make (Atomic.get capacity) dummy; next = 0 } in
      Mutex.lock registry_mutex;
      registry := r :: !registry;
      Mutex.unlock registry_mutex;
      r)

let set_capacity n =
  if n < 1 then invalid_arg "Phase.set_capacity: capacity must be >= 1";
  Atomic.set capacity n;
  Mutex.lock registry_mutex;
  List.iter
    (fun r ->
      r.slots <- Array.make n dummy;
      r.next <- 0)
    !registry;
  Mutex.unlock registry_mutex

let clear () =
  Mutex.lock registry_mutex;
  List.iter
    (fun r ->
      Array.fill r.slots 0 (Array.length r.slots) dummy;
      r.next <- 0)
    !registry;
  Mutex.unlock registry_mutex

let push ~name ~detail ~id ~parent ~start_us ~dur_us ~alloc_bytes () =
  let r = Domain.DLS.get ring_key in
  let rec_ =
    {
      name;
      detail;
      ctx = Sink.current_ctx ();
      id;
      parent;
      start_us;
      dur_us;
      alloc_bytes;
      domain = (Domain.self () :> int);
      seq = r.next;
    }
  in
  let cap = Array.length r.slots in
  r.slots.(r.next mod cap) <- rec_;
  r.next <- r.next + 1

let ring_records r =
  let cap = Array.length r.slots in
  let n = min r.next cap in
  List.init n (fun i -> r.slots.((r.next - n + i) mod cap))

let snapshot () =
  Mutex.lock registry_mutex;
  let rings = !registry in
  Mutex.unlock registry_mutex;
  List.concat_map ring_records rings
  |> List.stable_sort (fun a b ->
         match Float.compare a.start_us b.start_us with
         (* ids are allocated when a span opens, from one monotone
            counter, so ascending id is global open order — it puts a
            parent before its children even when the clock cannot
            separate their starts *)
         | 0 -> compare a.id b.id
         | n -> n)

let recent ?ctx () =
  match ctx with
  | None -> snapshot ()
  | Some c -> List.filter (fun r -> r.ctx = Some c) (snapshot ())

(* Depth of a record in its trace's parent-link forest: roots (no parent,
   or parent evicted from the ring) are 0. Cycles cannot occur — ids are
   allocated from a monotone counter and parents always precede
   children — but a missing parent must not loop, hence the option fold. *)
let depth records r =
  let by_id = Hashtbl.create (List.length records) in
  List.iter (fun (x : record) -> Hashtbl.replace by_id x.id x) records;
  let rec go d r =
    match r.parent with
    | None -> d
    | Some p -> (
        match Hashtbl.find_opt by_id p with
        | Some parent when parent.id <> r.id -> go (d + 1) parent
        | _ -> d)
  in
  go 0 r
