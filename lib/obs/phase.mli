(** Phase attribution: completed spans in bounded per-domain rings.

    The phase recorder is the always-on counterpart of {!Sink}'s traced
    spans, built like {!Event}'s flight recorder: each domain owns a
    fixed-capacity ring of completed-span records that newer records
    overwrite, so a long-lived server retains the phase trees of recent
    requests — enough to answer an [explain v1] frame — at bounded cost
    and without a lock on the hot path. Records are written by
    [Span.phase] when a span closes and carry real span ids plus parent
    links, so one request's records reassemble into a tree. *)

type record = {
  name : string;
  detail : string;  (** phase annotation, e.g. [guess=42 feasible=true]; [""] when none *)
  ctx : string option;  (** ambient trace/request id at close *)
  id : int;  (** process-unique span id ({!Sink.new_span_id}) *)
  parent : int option;  (** enclosing span's id; [None] for a root *)
  start_us : float;  (** absolute start, microseconds since the epoch *)
  dur_us : float;  (** wall time of the span *)
  alloc_bytes : float;  (** bytes allocated by the owning domain inside *)
  domain : int;
  seq : int;  (** per-domain emission (close) index *)
}

val default_capacity : int
(** Ring slots per domain at startup (4096). *)

val set_capacity : int -> unit
(** Resize every domain's ring, discarding retained records. Call only
    at quiescent points. Raises [Invalid_argument] when [n < 1]. *)

val push :
  name:string -> detail:string -> id:int -> parent:int option ->
  start_us:float -> dur_us:float -> alloc_bytes:float -> unit -> unit
(** Record one completed span on the calling domain's ring, stamping the
    ambient {!Sink.current_ctx}. Called by [Span.phase]; exposed for
    tests and external instrumentation. *)

val snapshot : unit -> record list
(** All retained records across every domain's ring, ordered by start
    time (start-time ties broken by span id, i.e. open order). *)

val recent : ?ctx:string -> unit -> record list
(** [snapshot] filtered to one trace/request id. *)

val depth : record list -> record -> int
(** Distance from [r] to its root through parent links, within the given
    record set; records whose parent was evicted count as roots. *)

val clear : unit -> unit
(** Drop all retained records in every ring (tests). *)
