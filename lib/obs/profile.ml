(* Continuous sampling profiler. Two engines share one sample store:

     Cpu    ITIMER_PROF fires SIGPROF every 1/hz seconds of CPU time;
            the handler captures [Printexc.get_callstack] for whichever
            domain the signal lands on. Weight 1.0 per sample, so a
            frame's aggregate weight approximates its CPU share.
     Alloc  [Gc.Memprof] (claimed through [Memprof.start_sampler] so
            the gc gauges and any future user compose) delivers the
            allocation site's callstack with an unbiased byte estimate
            as the weight.

   Samples land in per-domain ring buffers registered in a lock-free
   list (the [Event] idiom, minus the mutex: the SIGPROF handler may
   run on a domain whose ring is not yet initialised, and a DLS
   initialiser that took a lock could deadlock against a reader holding
   it — registration is a CAS push instead). Merging happens at read
   time in [samples]/[aggregate]; the handler only ever touches its own
   domain's ring, a few atomics, and DLS refs, all async-signal-safe at
   the OCaml level because handlers run at safepoints.

   Overhead guard: when the health gauge reports Unhealthy (severity
   >= 2, see [Health]), samples are dropped at the door and counted in
   [obs.profile.dropped] — a struggling process sheds its profiler
   first. *)

type mode = Cpu | Alloc

let mode_to_string = function Cpu -> "cpu" | Alloc -> "alloc"

let mode_of_string = function
  | "cpu" -> Ok Cpu
  | "alloc" -> Ok Alloc
  | s -> Error (Printf.sprintf "unknown profile mode %S (want cpu|alloc)" s)

type format = Collapsed | Json

let format_to_string = function Collapsed -> "collapsed" | Json -> "json"

let format_of_string = function
  | "collapsed" -> Ok Collapsed
  | "json" -> Ok Json
  | s -> Error (Printf.sprintf "unknown profile format %S (want collapsed|json)" s)

let default_cpu_hz = 99.0
let default_alloc_rate = 1e-4
let max_depth = 64

(* --- sample store -------------------------------------------------- *)

type sample = {
  bt : Printexc.raw_backtrace;
  weight : float;
  ctx : string option;
}

type ring = { mutable slots : sample array; mutable next : int }

let default_capacity = 8192
let capacity = Atomic.make default_capacity
let empty_bt = Printexc.get_callstack 0
let dummy = { bt = empty_bt; weight = 0.0; ctx = None }

(* Lock-free ring registry: rings are only ever added (a domain's ring
   outlives the domain so late reads still see its samples). *)
let registry : ring list Atomic.t = Atomic.make []

let rec register r =
  let old = Atomic.get registry in
  if not (Atomic.compare_and_set registry old (r :: old)) then register r

let ring_key : ring Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let r = { slots = Array.make (Atomic.get capacity) dummy; next = 0 } in
      register r;
      r)

let set_capacity n =
  if n < 1 then invalid_arg "Profile.set_capacity";
  Atomic.set capacity n;
  (* resize-and-clear, as in [Event.set_capacity]: only sound at
     quiescent points (startup flags, tests) *)
  List.iter
    (fun r ->
      r.slots <- Array.make n dummy;
      r.next <- 0)
    (Atomic.get registry)

let clear () =
  List.iter (fun r -> r.next <- 0) (Atomic.get registry)

(* --- counters and pause guard -------------------------------------- *)

let c_samples = Counter.make "obs.profile.samples"
let c_dropped = Counter.make "obs.profile.dropped"
let c_overruns = Counter.make "obs.profile.overruns"

(* Interned: the same gauge [Health.status] refreshes with its severity
   (0 ok, 1 degraded, 2 unhealthy). Reading a gauge is one atomic load,
   cheap enough for the signal handler; calling [Health.status] there
   would run checks and take locks. *)
let g_health = Gauge.make "health.status"
let paused () = Gauge.value g_health >= 2.0

let record ?bt weight =
  if paused () then Counter.incr c_dropped
  else begin
    let r = Domain.DLS.get ring_key in
    let cap = Array.length r.slots in
    if r.next >= cap then Counter.incr c_overruns;
    let bt =
      match bt with Some b -> b | None -> Printexc.get_callstack max_depth
    in
    r.slots.(r.next mod cap) <- { bt; weight; ctx = Sink.current_ctx () };
    r.next <- r.next + 1;
    Counter.incr c_samples
  end

(* --- engines ------------------------------------------------------- *)

type engine = {
  e_mode : mode;
  e_rate : float; (* hz for Cpu, sampling rate for Alloc *)
  e_started_us : float;
  e_prev : Sys.signal_behavior; (* restored on stop (Cpu only) *)
}

let state_mutex = Mutex.create ()
let current : engine option ref = ref None

let on_sigprof (_signum : int) = record 1.0

let locked f =
  Mutex.lock state_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock state_mutex) f

let start ?rate mode =
  locked (fun () ->
      match !current with
      | Some e ->
          Error
            (Printf.sprintf "profiler already running (mode=%s)"
               (mode_to_string e.e_mode))
      | None -> (
          match mode with
          | Cpu ->
              let hz = Option.value ~default:default_cpu_hz rate in
              if not (hz > 0.0 && hz <= 10_000.0) then
                Error (Printf.sprintf "cpu rate %g out of range (0, 10000] hz" hz)
              else begin
                clear ();
                let prev =
                  Sys.signal Sys.sigprof (Sys.Signal_handle on_sigprof)
                in
                let interval = 1.0 /. hz in
                ignore
                  (Unix.setitimer Unix.ITIMER_PROF
                     { Unix.it_interval = interval; it_value = interval });
                current :=
                  Some
                    {
                      e_mode = Cpu;
                      e_rate = hz;
                      e_started_us = Sink.now_us ();
                      e_prev = prev;
                    };
                Ok ()
              end
          | Alloc -> (
              let sr = Option.value ~default:default_alloc_rate rate in
              if not (sr > 0.0 && sr <= 1.0) then
                Error
                  (Printf.sprintf "alloc sampling rate %g out of range (0, 1]"
                     sr)
              else
                match
                  Memprof.start_sampler ~owner:"obs.profile.alloc"
                    ~sampling_rate:sr ~callback:(fun ~bytes ~callstack ->
                      record ~bt:callstack bytes)
                with
                | Error _ as e -> e
                | Ok () ->
                    clear ();
                    current :=
                      Some
                        {
                          e_mode = Alloc;
                          e_rate = sr;
                          e_started_us = Sink.now_us ();
                          e_prev = Sys.Signal_default;
                        };
                    Ok ())))

let stop () =
  locked (fun () ->
      match !current with
      | None -> ()
      | Some e ->
          (match e.e_mode with
          | Cpu ->
              ignore
                (Unix.setitimer Unix.ITIMER_PROF
                   { Unix.it_interval = 0.0; it_value = 0.0 });
              Sys.set_signal Sys.sigprof e.e_prev
          | Alloc -> Memprof.stop_sampler ());
          current := None)

let running () =
  locked (fun () -> Option.map (fun e -> e.e_mode) !current)

(* --- status -------------------------------------------------------- *)

type stat = {
  s_mode : mode option;
  s_rate : float;
  s_started_us : float;
  s_samples : int;
  s_dropped : int;
  s_overruns : int;
  s_retained : int;
  s_rings : int;
}

let stat () =
  let e = locked (fun () -> !current) in
  let rings = Atomic.get registry in
  let retained =
    List.fold_left
      (fun acc r -> acc + min r.next (Array.length r.slots))
      0 rings
  in
  {
    s_mode = Option.map (fun e -> e.e_mode) e;
    s_rate = (match e with Some e -> e.e_rate | None -> 0.0);
    s_started_us = (match e with Some e -> e.e_started_us | None -> 0.0);
    s_samples = Counter.value c_samples;
    s_dropped = Counter.value c_dropped;
    s_overruns = Counter.value c_overruns;
    s_retained = retained;
    s_rings = List.length rings;
  }

let status_lines () =
  let s = stat () in
  [
    Printf.sprintf "engine mode=%s running=%b rate=%g"
      (match s.s_mode with Some m -> mode_to_string m | None -> "-")
      (s.s_mode <> None) s.s_rate;
    Printf.sprintf "totals samples=%d dropped=%d overruns=%d retained=%d rings=%d"
      s.s_samples s.s_dropped s.s_overruns s.s_retained s.s_rings;
  ]

(* --- symbolization and aggregation --------------------------------- *)

(* Frame names feed the collapsed format ("a;b;c weight"), so the two
   separators must never appear inside a frame. *)
let sanitize_frame name =
  String.map
    (fun c -> match c with ';' | ' ' | '\t' | '\n' | '\r' -> '_' | c -> c)
    name

let frame_name slot =
  match Printexc.Slot.name slot with
  | Some n -> sanitize_frame n
  | None -> (
      match Printexc.Slot.location slot with
      | Some l ->
          sanitize_frame
            (Printf.sprintf "%s:%d" l.Printexc.filename l.Printexc.line_number)
      | None -> "?")

(* The profiler's own frames (record, the SIGPROF closure) sit innermost
   on every CPU sample; strip them so flamegraph leaves are user code. *)
let internal_frame name =
  let has_prefix p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  has_prefix "Obs.Profile." || has_prefix "Obs__Profile."
  || has_prefix "Stdlib.Printexc" || has_prefix "Stdlib__Printexc"

(* Root-first frame list for one raw backtrace. *)
let stack_of_backtrace bt =
  match Printexc.backtrace_slots bt with
  | None -> [ "?" ]
  | Some slots ->
      (* slots are innermost-first; skip leading internal frames, then
         reverse into root-first order *)
      let n = Array.length slots in
      let first = ref 0 in
      while !first < n && internal_frame (frame_name slots.(!first)) do
        incr first
      done;
      if !first >= n then [ "?" ]
      else
        let kept = n - !first in
        List.init kept (fun i -> frame_name slots.(n - 1 - i))

let samples ?ctx () =
  let rings = Atomic.get registry in
  List.concat_map
    (fun r ->
      let cap = Array.length r.slots in
      let next = r.next in
      let n = min next cap in
      List.filter_map
        (fun i ->
          let s = r.slots.((next - n + i) mod cap) in
          match ctx with
          | Some want when s.ctx <> Some want -> None
          | _ -> Some (stack_of_backtrace s.bt, s.weight))
        (List.init n Fun.id))
    rings

(* Pure fold from weighted stacks to collapsed lines, sorted by stack
   string — the order samples arrive in (ring order, domain order)
   cannot show in the output, which the merge-invariance test relies
   on. *)
let collapse stacks =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (frames, w) ->
      let key =
        match frames with [] -> "?" | fs -> String.concat ";" fs
      in
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (prev +. w))
    stacks;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let aggregate ?ctx () = collapse (samples ?ctx ())

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render ?ctx fmt =
  let collapsed = aggregate ?ctx () in
  let buf = Buffer.create 4096 in
  (match fmt with
  | Collapsed ->
      List.iter
        (fun (stack, w) -> Buffer.add_string buf (Printf.sprintf "%s %.0f\n" stack w))
        collapsed
  | Json ->
      List.iter
        (fun (stack, w) ->
          Buffer.add_string buf
            (Printf.sprintf "{\"stack\": \"%s\", \"weight\": %.0f}\n"
               (json_escape stack) w))
        collapsed);
  Buffer.contents buf
