(** Continuous sampling profiler: CPU and allocation engines feeding
    per-domain sample rings, aggregated into collapsed-stack form
    ([a;b;c weight]) with ambient request/trace-id attribution from
    [Sink].

    The CPU engine arms [ITIMER_PROF]; every 1/hz seconds of process
    CPU time, SIGPROF lands on some domain and the handler records
    that domain's callstack (weight 1.0). The allocation engine claims
    [Gc.Memprof] through {!Memprof.start_sampler} and records each
    sampled allocation's callstack weighted by its estimated size in
    bytes. At most one engine runs at a time.

    Overhead guard: while the [health.status] gauge reports Unhealthy
    (severity >= 2), incoming samples are dropped and counted in
    [obs.profile.dropped] — a struggling process sheds its profiler
    first. [obs.profile.samples] counts recorded samples and
    [obs.profile.overruns] ring-slot overwrites. *)

type mode = Cpu | Alloc

val mode_to_string : mode -> string
val mode_of_string : string -> (mode, string) result

type format = Collapsed | Json

val format_to_string : format -> string
val format_of_string : string -> (format, string) result

val default_cpu_hz : float
(** 99 Hz — the conventional off-beat rate that avoids lockstep with
    10 ms schedulers. *)

val default_alloc_rate : float
(** 1e-4: sample one allocated word in ten thousand. *)

val default_capacity : int
(** Sample slots per domain ring (8192). *)

val set_capacity : int -> unit
(** Resize every ring and drop retained samples. Not concurrency-safe:
    call at quiescent points (startup flags, tests). Raises
    [Invalid_argument] when the capacity is < 1. *)

val clear : unit -> unit
(** Drop retained samples in every ring (counters are unaffected). *)

val start : ?rate:float -> mode -> (unit, string) result
(** Start an engine, clearing retained samples first. [rate] is the
    timer frequency in Hz for [Cpu] (default {!default_cpu_hz}) and
    the per-word sampling probability for [Alloc] (default
    {!default_alloc_rate}). [Error] when an engine is already running,
    the rate is out of range, or (alloc) the runtime's [Gc.Memprof] is
    unavailable or claimed by another user. *)

val stop : unit -> unit
(** Disarm the running engine, if any; retained samples survive so a
    final {!aggregate} can follow. Idempotent. *)

val running : unit -> mode option

val record : ?bt:Printexc.raw_backtrace -> float -> unit
(** Record one sample on the calling domain's ring: [bt] (default: the
    caller's stack) weighted by the argument, tagged with the ambient
    [Sink] context. Exposed for tests; engines call it internally. *)

type stat = {
  s_mode : mode option;  (** running engine, if any *)
  s_rate : float;  (** its rate (0 when idle) *)
  s_started_us : float;  (** engine start time ([Sink.now_us]) *)
  s_samples : int;  (** obs.profile.samples *)
  s_dropped : int;  (** obs.profile.dropped *)
  s_overruns : int;  (** obs.profile.overruns *)
  s_retained : int;  (** samples currently held across rings *)
  s_rings : int;  (** registered per-domain rings *)
}

val stat : unit -> stat

val status_lines : unit -> string list
(** Two [key value...] lines (engine …, totals …) used by the admin
    frame and CLI. *)

val samples : ?ctx:string -> unit -> (string list * float) list
(** Symbolized samples merged from every ring, each a root-first frame
    list with its weight; [ctx] keeps only samples recorded under that
    request/trace id. Frame names are sanitized (no [';'] or spaces). *)

val collapse : (string list * float) list -> (string * float) list
(** Pure fold into collapsed-stack lines: frames joined with [';'],
    weights summed per distinct stack, sorted by stack string —
    independent of sample order, so merging shards in any order yields
    identical output. *)

val aggregate : ?ctx:string -> unit -> (string * float) list
(** [collapse (samples ?ctx ())]. *)

val render : ?ctx:string -> format -> string
(** Render {!aggregate}: [Collapsed] gives one [stack weight] line per
    entry; [Json] one [{"stack": …, "weight": …}] object per line. *)
