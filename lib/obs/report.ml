let to_table () =
  let table = Stats.Table.create [ "kind"; "metric"; "value" ] in
  List.iter
    (fun (name, v) ->
      if v <> 0 then
        Stats.Table.add_row table [ "counter"; name; string_of_int v ])
    (Counter.snapshot ());
  List.iter
    (fun (s : Labeled.sample) ->
      Stats.Table.add_row table
        [
          "counter";
          Printf.sprintf "%s{%s=%S}" s.Labeled.metric s.Labeled.label
            s.Labeled.label_value;
          string_of_int s.Labeled.value;
        ])
    (Labeled.snapshot ());
  List.iter
    (fun (name, v) ->
      Stats.Table.add_row table [ "gauge"; name; Printf.sprintf "%.3f" v ])
    (Gauge.snapshot ());
  List.iter
    (fun (h : Histogram.snapshot) ->
      Stats.Table.add_row table
        [
          "histogram";
          h.Histogram.sname;
          Printf.sprintf "n=%d p50=%g p90=%g p99=%g max=%g" h.Histogram.count
            (Histogram.quantile h 0.5) (Histogram.quantile h 0.9)
            (Histogram.quantile h 0.99) h.Histogram.max_value;
        ])
    (Histogram.snapshot ());
  List.iter
    (fun (s : Span.summary) ->
      Stats.Table.add_row table
        [
          "span";
          s.name;
          Printf.sprintf "%d call%s, %.3f s" s.count
            (if s.count = 1 then "" else "s")
            s.total_s;
        ])
    (Span.summarize (Sink.events ()));
  table

let delta_table ~before =
  let table = Stats.Table.create [ "counter"; "delta" ] in
  List.iter
    (fun (name, d) ->
      Stats.Table.add_row table [ name; Printf.sprintf "%+d" d ])
    (Counter.delta ~before ~after:(Counter.snapshot ()));
  table

let print () = Stats.Table.print (to_table ())
