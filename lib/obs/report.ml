let filtered_table ?(include_zero = false) keep =
  let table = Stats.Table.create [ "kind"; "metric"; "value" ] in
  List.iter
    (fun (name, v) ->
      if (include_zero || v <> 0) && keep name then
        Stats.Table.add_row table [ "counter"; name; string_of_int v ])
    (Counter.snapshot ());
  List.iter
    (fun (s : Labeled.sample) ->
      if keep s.Labeled.metric then
        Stats.Table.add_row table
          [
            "counter";
            Printf.sprintf "%s{%s=%S}" s.Labeled.metric s.Labeled.label
              s.Labeled.label_value;
            string_of_int s.Labeled.value;
          ])
    (Labeled.snapshot ());
  List.iter
    (fun (name, v) ->
      if keep name then
        Stats.Table.add_row table [ "gauge"; name; Printf.sprintf "%.3f" v ])
    (Gauge.snapshot ());
  List.iter
    (fun (h : Histogram.snapshot) ->
      if keep h.Histogram.sname then
        Stats.Table.add_row table
          [
            "histogram";
            h.Histogram.sname;
            Printf.sprintf "n=%d p50=%g p90=%g p99=%g max=%g" h.Histogram.count
              (Histogram.quantile h 0.5) (Histogram.quantile h 0.9)
              (Histogram.quantile h 0.99) h.Histogram.max_value;
          ])
    (Histogram.snapshot ());
  List.iter
    (fun (s : Span.summary) ->
      if keep s.Span.name then
        Stats.Table.add_row table
          [
            "span";
            s.name;
            Printf.sprintf "%d call%s, %.3f s" s.count
              (if s.count = 1 then "" else "s")
              s.total_s;
          ])
    (Span.summarize (Sink.events ()));
  table

let to_table () = filtered_table (fun _ -> true)

(* a focused footer wants its zeros: "check.violations 0" is the
   healthy-run signal, not noise *)
let prefix_table ~prefix =
  filtered_table ~include_zero:true (fun name ->
      String.starts_with ~prefix name)

let delta_table ~before =
  let table = Stats.Table.create [ "counter"; "delta" ] in
  List.iter
    (fun (name, d) ->
      Stats.Table.add_row table [ name; Printf.sprintf "%+d" d ])
    (Counter.delta ~before ~after:(Counter.snapshot ()));
  table

let print () = Stats.Table.print (to_table ())
