(** Plain-text metrics summaries on top of {!Stats.Table}. *)

val to_table : unit -> Stats.Table.t
(** Snapshot of every nonzero counter, every labeled-counter cell, every
    set gauge, every nonempty histogram (count, p50/p90/p99, max) and
    per-name span aggregates (count and total seconds), as a
    three-column [kind | metric | value] table. *)

val prefix_table : prefix:string -> Stats.Table.t
(** {!to_table} restricted to metrics whose name starts with [prefix]
    (e.g. ["check."]) — the always-on footer a subsystem prints about
    itself without dragging every other family along. Unlike
    {!to_table}, zero-valued counters are kept: a focused footer's zeros
    (["check.violations 0"]) are the healthy-run signal. *)

val delta_table : before:(string * int) list -> Stats.Table.t
(** Counters that moved since the [before] snapshot (from
    {!Counter.snapshot}), as a [counter | delta] table. The experiment
    runner prints this as its per-experiment metrics footer. *)

val print : unit -> unit
(** [to_table] to stdout. *)
