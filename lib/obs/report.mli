(** Plain-text metrics summaries on top of {!Stats.Table}. *)

val to_table : unit -> Stats.Table.t
(** Snapshot of every nonzero counter, every labeled-counter cell, every
    set gauge, every nonempty histogram (count, p50/p90/p99, max) and
    per-name span aggregates (count and total seconds), as a
    three-column [kind | metric | value] table. *)

val delta_table : before:(string * int) list -> Stats.Table.t
(** Counters that moved since the [before] snapshot (from
    {!Counter.snapshot}), as a [counter | delta] table. The experiment
    runner prints this as its per-experiment metrics footer. *)

val print : unit -> unit
(** [to_table] to stdout. *)
