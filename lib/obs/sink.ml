type phase = Begin | End | Instant

type event = {
  name : string;
  phase : phase;
  ts_us : float;
  domain : int;
  ctx : string option;
  alloc_bytes : float option;
  span : int option;
  parent : int option;
}

let on = Atomic.make false
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let now_us () = Unix.gettimeofday () *. 1e6

(* Ambient per-domain context (e.g. a request id): every event records
   the context current on its domain, so trace consumers can group the
   spans of one request even when many requests interleave across
   domains. *)
let ctx_key : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_ctx () = !(Domain.DLS.get ctx_key)

let with_ctx ctx f =
  let cell = Domain.DLS.get ctx_key in
  let saved = !cell in
  cell := Some ctx;
  Fun.protect ~finally:(fun () -> cell := saved) f

(* Span identity: process-unique ids allocated from one atomic counter,
   plus a per-domain ambient "innermost open span" slot so a newly
   opened span can link to its parent without threading ids through
   every call site. The slot is maintained by Span.phase and reinstalled
   across Parallel.Pool submission, so parent links survive the hop to a
   worker domain. *)
let next_span_id = Atomic.make 1
let new_span_id () = Atomic.fetch_and_add next_span_id 1

let span_key : int option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_span () = !(Domain.DLS.get span_key)

let with_span_id id f =
  let cell = Domain.DLS.get span_key in
  let saved = !cell in
  cell := Some id;
  Fun.protect ~finally:(fun () -> cell := saved) f

(* One buffer per domain, created lazily; only the owning domain pushes,
   so emission is lock-free. The registry of buffers is mutex-protected
   and keeps buffers of terminated domains alive so their events survive
   a pool shutdown. *)
let registry : event list ref list ref = ref []
let registry_mutex = Mutex.create ()

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let buf = ref [] in
      Mutex.lock registry_mutex;
      registry := buf :: !registry;
      Mutex.unlock registry_mutex;
      buf)

let emit ?alloc ?span ?parent ~name ~phase () =
  if Atomic.get on then begin
    let buf = Domain.DLS.get buffer_key in
    buf :=
      {
        name;
        phase;
        ts_us = now_us ();
        domain = (Domain.self () :> int);
        ctx = current_ctx ();
        alloc_bytes = alloc;
        span;
        parent;
      }
      :: !buf
  end

let events () =
  Mutex.lock registry_mutex;
  let buffers = !registry in
  Mutex.unlock registry_mutex;
  (* buffers prepend, so reverse each one to chronological order before
     the merge; the stable sort then keeps same-timestamp events of one
     domain in emission order *)
  List.concat_map (fun buf -> List.rev !buf) buffers
  |> List.stable_sort (fun a b -> Float.compare a.ts_us b.ts_us)

let clear () =
  Mutex.lock registry_mutex;
  List.iter (fun buf -> buf := []) !registry;
  Mutex.unlock registry_mutex
