(** Global recording switch and per-domain event buffers.

    The sink is the single gate for all span/trace recording: when
    disabled (the default) [emit] is a single atomic load and no
    allocation, so instrumented hot paths cost nothing measurable.
    Counters ({!Counter}) are deliberately {e not} gated — they are plain
    atomic adds, flushed in batches by the instrumented layers.

    Events are buffered per domain (a [Domain.DLS] slot that registers
    itself in a global list on first use), so recording never takes a
    lock on the hot path. Merging ([events]) and [clear] walk every
    domain's buffer and must only be called from quiescent points — after
    [Parallel.Pool] work has settled, as the CLI and the test suite do. *)

type phase = Begin | End | Instant

type event = {
  name : string;
  phase : phase;
  ts_us : float;  (** absolute timestamp, microseconds since the epoch *)
  domain : int;  (** id of the recording domain *)
  ctx : string option;  (** ambient context (trace/request id) at emission *)
  alloc_bytes : float option;
      (** bytes allocated inside the span, attached to its End event by
          {!Span.with_alloc}; rendered as an [alloc_b] arg in the trace *)
  span : int option;
      (** span id of the scope this event opens or closes; rendered as a
          [sid] arg in the trace *)
  parent : int option;
      (** span id of the enclosing scope at emission (parent link);
          rendered as a [psid] arg in the trace *)
}

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val now_us : unit -> float
(** Wall-clock microseconds (the timestamp base used for all events). *)

val emit :
  ?alloc:float -> ?span:int -> ?parent:int ->
  name:string -> phase:phase -> unit -> unit
(** Record one event on the calling domain's buffer; no-op when the sink
    is disabled. [alloc] attaches an allocation delta (bytes); [span] and
    [parent] attach span identity (see {!new_span_id}). *)

val with_ctx : string -> (unit -> 'a) -> 'a
(** [with_ctx id f] runs [f] with the calling domain's ambient context
    set to [id]; every event emitted inside records it (rendered as a
    [req] arg in the Chrome trace, so Perfetto can group one request's
    spans across interleaved sessions). Contexts nest — the previous
    context is restored even if [f] raises — and cost one domain-local
    write whether or not the sink is enabled. *)

val current_ctx : unit -> string option
(** The calling domain's ambient context, if any. *)

val new_span_id : unit -> int
(** Allocate a process-unique span id (atomic counter, never reused). *)

val with_span_id : int -> (unit -> 'a) -> 'a
(** [with_span_id id f] runs [f] with the calling domain's ambient span
    set to [id]: spans opened inside link to [id] as their parent. Nests
    and restores like {!with_ctx}; maintained by [Span.phase] and
    reinstalled across [Parallel.Pool] submission. *)

val current_span : unit -> int option
(** The calling domain's innermost open span id, if any. *)

val events : unit -> event list
(** All recorded events across every domain, in timestamp order. *)

val clear : unit -> unit
(** Drop all buffered events (every domain). *)
