(* Declarative service-level objectives with multi-window burn rates.

   An objective maps existing registries onto a (good, total) pair:
   availability counts label values of a Labeled counter family as good,
   latency counts histogram observations at or under a threshold as
   good. [sample] appends a timestamped (good, total) reading to a
   bounded ring per objective; [reports] differences the newest reading
   against the reading just outside each window to get the windowed
   success ratio, and turns it into a burn rate:

     burn = (1 - ratio) / (1 - target)

   i.e. the speed at which the error budget is being spent — 1.0 burns
   the budget exactly at the objective boundary, >1 exhausts it early.
   The classic multi-window alerting setup reads a short window (fast
   detection) alongside a long one (noise suppression). *)

type kind =
  | Availability of { family : string; good_values : string list }
  | Latency of { histogram : string; threshold_us : float }

(* ring of (ts_us, good, total) readings, oldest overwritten *)
type ring = {
  ts : float array;
  good : float array;
  total : float array;
  mutable len : int;
  mutable head : int;  (* next write position *)
}

type objective = { oname : string; target : float; kind : kind; ring : ring }

let ring_capacity = 4096

let make_ring () =
  {
    ts = Array.make ring_capacity 0.0;
    good = Array.make ring_capacity 0.0;
    total = Array.make ring_capacity 0.0;
    len = 0;
    head = 0;
  }

let registry : objective list ref = ref []
let mutex = Mutex.create ()

let windows = [ ("5m", 300.0); ("1h", 3600.0) ]

let register ~name ~target kind =
  if target <= 0.0 || target >= 1.0 then
    invalid_arg "Slo.register: target must be in (0, 1)";
  Mutex.lock mutex;
  registry :=
    !registry
    |> List.filter (fun o -> o.oname <> name)
    |> List.cons { oname = name; target; kind; ring = make_ring () };
  Mutex.unlock mutex

let clear () =
  Mutex.lock mutex;
  registry := [];
  Mutex.unlock mutex

(* Current cumulative (good, total) for an objective, read straight from
   the live registries. *)
let read_kind = function
  | Availability { family; good_values } ->
      List.fold_left
        (fun (good, total) (s : Labeled.sample) ->
          if s.metric <> family then (good, total)
          else
            let v = float_of_int s.value in
            ( (if List.mem s.label_value good_values then good +. v else good),
              total +. v ))
        (0.0, 0.0) (Labeled.snapshot ())
  | Latency { histogram; threshold_us } -> (
      match Histogram.find histogram with
      | None -> (0.0, 0.0)
      | Some h ->
          let s = Histogram.merged h in
          let good =
            List.fold_left
              (fun acc (ub, n) ->
                if ub <= threshold_us then acc + n else acc)
              0 s.Histogram.buckets
          in
          (float_of_int good, float_of_int s.Histogram.count))

let push ring ts good total =
  ring.ts.(ring.head) <- ts;
  ring.good.(ring.head) <- good;
  ring.total.(ring.head) <- total;
  ring.head <- (ring.head + 1) mod ring_capacity;
  if ring.len < ring_capacity then ring.len <- ring.len + 1

let sample () =
  let now = Sink.now_us () in
  Mutex.lock mutex;
  let os = !registry in
  Mutex.unlock mutex;
  List.iter
    (fun o ->
      let good, total = read_kind o.kind in
      Mutex.lock mutex;
      push o.ring now good total;
      Mutex.unlock mutex)
    os

(* i-th newest reading, 0 = most recent *)
let nth_newest ring i =
  let idx = (ring.head - 1 - i + (2 * ring_capacity)) mod ring_capacity in
  (ring.ts.(idx), ring.good.(idx), ring.total.(idx))

type report = {
  rname : string;
  rtarget : float;
  window : string;
  span_s : float;  (** actual time between the two readings differenced *)
  good : float;
  total : float;
  ratio : float;  (** 1.0 when the window saw no traffic *)
  burn : float;  (** error-budget burn rate; 0.0 with no traffic *)
}

let report_of o (wname, wspan) =
  Mutex.lock mutex;
  let r = o.ring in
  let result =
    if r.len < 2 then
      { rname = o.oname; rtarget = o.target; window = wname; span_s = 0.0;
        good = 0.0; total = 0.0; ratio = 1.0; burn = 0.0 }
    else begin
      let newest_ts, newest_good, newest_total = nth_newest r 0 in
      let horizon = newest_ts -. (wspan *. 1e6) in
      (* oldest reading still inside the window, else the oldest held *)
      let base = ref (nth_newest r (r.len - 1)) in
      (try
         for i = r.len - 1 downto 1 do
           let ((ts, _, _) as reading) = nth_newest r i in
           if ts >= horizon then begin
             base := reading;
             raise Exit
           end
         done
       with Exit -> ());
      let base_ts, base_good, base_total = !base in
      let good = Float.max 0.0 (newest_good -. base_good) in
      let total = Float.max 0.0 (newest_total -. base_total) in
      let ratio = if total <= 0.0 then 1.0 else good /. total in
      let burn = if total <= 0.0 then 0.0 else (1.0 -. ratio) /. (1.0 -. o.target) in
      {
        rname = o.oname;
        rtarget = o.target;
        window = wname;
        span_s = (newest_ts -. base_ts) /. 1e6;
        good;
        total;
        ratio;
        burn;
      }
    end
  in
  Mutex.unlock mutex;
  result

let reports () =
  Mutex.lock mutex;
  let os = List.sort (fun a b -> compare a.oname b.oname) !registry in
  Mutex.unlock mutex;
  List.concat_map (fun o -> List.map (report_of o) windows) os

let render_lines () =
  List.map
    (fun r ->
      Printf.sprintf
        "slo name=%s window=%s target=%.4f span_s=%.1f good=%.0f total=%.0f \
         ratio=%.4f burn=%.2f"
        r.rname r.window r.rtarget r.span_s r.good r.total r.ratio r.burn)
    (reports ())
