(** Declarative service-level objectives with multi-window burn rates.

    An objective targets a success ratio over existing registries — a
    {!Labeled} counter family (availability) or a {!Histogram}
    (latency under a threshold). {!sample} records periodic cumulative
    (good, total) readings; {!reports} differences them over sliding
    windows (5m and 1h) and computes the error-budget burn rate
    [(1 - ratio) / (1 - target)]: 1.0 spends the budget exactly at the
    objective boundary, larger values exhaust it proportionally faster. *)

type kind =
  | Availability of { family : string; good_values : string list }
      (** good = cells of [family] whose label value is listed *)
  | Latency of { histogram : string; threshold_us : float }
      (** good = observations in buckets at or under the threshold *)

val register : name:string -> target:float -> kind -> unit
(** Register an objective (replacing any of the same name, which resets
    its history). [target] must be in (0, 1), e.g. 0.99. *)

val clear : unit -> unit

val windows : (string * float) list
(** The sliding windows reported per objective: label and span in
    seconds — [("5m", 300.); ("1h", 3600.)]. *)

val sample : unit -> unit
(** Append one timestamped cumulative reading per objective (bounded
    ring, oldest overwritten). Call periodically — the server's
    watchdog ticker does — and before reading {!reports}. *)

type report = {
  rname : string;
  rtarget : float;
  window : string;
  span_s : float;  (** actual span between the readings differenced *)
  good : float;
  total : float;
  ratio : float;  (** windowed success ratio; 1.0 with no traffic *)
  burn : float;  (** error-budget burn rate; 0.0 with no traffic *)
}

val reports : unit -> report list
(** One report per objective per window, objectives sorted by name.
    Needs at least two samples to difference; before that, reports are
    all-zero with [ratio = 1.0]. *)

val render_lines : unit -> string list
(** [slo k=v ...] lines for the [health v1] frame payload. *)
