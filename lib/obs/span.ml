let with_span name f =
  if not (Sink.enabled ()) then f ()
  else begin
    Sink.emit ~name ~phase:Sink.Begin ();
    Fun.protect ~finally:(fun () -> Sink.emit ~name ~phase:Sink.End ()) f
  end

(* Like with_span, but the End event carries the bytes the calling
   domain allocated inside the span, and GC gauges are refreshed on
   exit so the exposition tracks span boundaries. When the sink is
   disabled this is exactly f () — the allocation counter is not read. *)
let with_alloc name f =
  if not (Sink.enabled ()) then f ()
  else begin
    Sink.emit ~name ~phase:Sink.Begin ();
    let before = Gc.allocated_bytes () in
    Fun.protect
      ~finally:(fun () ->
        let alloc = Gc.allocated_bytes () -. before in
        Memprof.sample ();
        Sink.emit ~alloc ~name ~phase:Sink.End ())
      f
  end

(* A phase is a span with identity: it allocates a process-unique span
   id, links to the innermost enclosing phase, records a completed-span
   record in the always-on Phase ring (with wall time and the calling
   domain's allocation delta), and — when the sink is enabled — also
   emits Begin/End events carrying the ids so Chrome traces show the
   same tree. The always-on cost is two clock reads, two allocation
   counter reads and one ring write; there are no counters and no
   locks. *)
let phase ?(detail = "") ?result_detail name f =
  let parent = Sink.current_span () in
  let id = Sink.new_span_id () in
  let sink_on = Sink.enabled () in
  if sink_on then Sink.emit ~span:id ?parent ~name ~phase:Sink.Begin ();
  let before = Gc.allocated_bytes () in
  let start = Sink.now_us () in
  let finish detail =
    let dur = Sink.now_us () -. start in
    let alloc = Gc.allocated_bytes () -. before in
    Phase.push ~name ~detail ~id ~parent ~start_us:start ~dur_us:dur
      ~alloc_bytes:alloc ();
    if sink_on then Sink.emit ~alloc ~span:id ?parent ~name ~phase:Sink.End ()
  in
  match Sink.with_span_id id f with
  | v ->
      let detail =
        match result_detail with Some g -> g v | None -> detail
      in
      finish detail;
      v
  | exception e ->
      finish detail;
      raise e

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = with_span name f in
  (r, Unix.gettimeofday () -. t0)

let instant name = Sink.emit ~name ~phase:Sink.Instant ()

type summary = { name : string; count : int; total_s : float }

let summarize events =
  let totals : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  let stacks : (int, (string * float) list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Sink.event) ->
      match e.phase with
      | Sink.Begin ->
          let stack =
            Option.value ~default:[] (Hashtbl.find_opt stacks e.domain)
          in
          Hashtbl.replace stacks e.domain ((e.name, e.ts_us) :: stack)
      | Sink.End -> (
          match Hashtbl.find_opt stacks e.domain with
          | Some ((name, t0) :: rest) when name = e.name ->
              Hashtbl.replace stacks e.domain rest;
              let count, total =
                Option.value ~default:(0, 0.0) (Hashtbl.find_opt totals name)
              in
              Hashtbl.replace totals name (count + 1, total +. (e.ts_us -. t0))
          | _ -> () (* unbalanced End: drop *))
      | Sink.Instant -> ())
    events;
  Hashtbl.fold
    (fun name (count, total) acc ->
      { name; count; total_s = total /. 1e6 } :: acc)
    totals []
  |> List.sort (fun a b -> String.compare a.name b.name)
