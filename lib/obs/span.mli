(** Nestable timed scopes.

    A span is a Begin/End event pair on the calling domain's buffer;
    nesting is implied by event order per domain, exactly the model of
    the Chrome trace-event format that {!Trace} emits. When the sink is
    disabled, [with_span] is one atomic load plus the call to [f]. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], bracketing it with Begin/End events when
    the sink is enabled. The End event is emitted even if [f] raises. *)

val with_alloc : string -> (unit -> 'a) -> 'a
(** [with_span] that also attaches the bytes allocated by the calling
    domain inside the span to the End event (an [alloc_b] arg in the
    Chrome trace) and refreshes the [gc.*] gauges ({!Memprof.sample})
    on exit. When the sink is disabled this is exactly [f ()]. *)

val phase :
  ?detail:string -> ?result_detail:('a -> string) -> string ->
  (unit -> 'a) -> 'a
(** [phase name f] is a span with identity: it allocates a span id
    ({!Sink.new_span_id}), links to the innermost enclosing phase as its
    parent, runs [f] with that id ambient (so nested phases chain), and
    on exit — normal or raising — records a completed-span record with
    wall time and the calling domain's allocation delta in the always-on
    {!Phase} ring. When the sink is enabled it additionally emits
    Begin/End events carrying the ids ([sid]/[psid] trace args).
    [detail] annotates the record; [result_detail], when given, is
    applied to [f]'s result to compute the annotation instead (e.g. a
    probe's feasibility verdict) — on an exception [detail] is used. *)

val timed : string -> (unit -> 'a) -> 'a * float
(** [timed name f] is [with_span name f] that additionally measures and
    returns the elapsed wall-clock seconds — measured whether or not the
    sink is enabled, so callers can rely on it for reporting. *)

val instant : string -> unit
(** Record a zero-duration instant event (a vertical mark in the trace
    viewer); no-op when the sink is disabled. *)

type summary = { name : string; count : int; total_s : float }
(** Aggregate of all completed spans of one name. *)

val summarize : Sink.event list -> summary list
(** Pair Begin/End events per domain (unbalanced events are dropped) and
    aggregate count and total duration per span name, sorted by name.
    Durations of nested same-name spans both count, as in a flame graph. *)
