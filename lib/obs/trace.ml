let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string () =
  let events = Sink.events () in
  let t0 = match events with [] -> 0.0 | e :: _ -> e.Sink.ts_us in
  let buf = Buffer.create (256 + (96 * List.length events)) in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i (e : Sink.event) ->
      if i > 0 then Buffer.add_char buf ',';
      let ph, extra =
        match e.phase with
        | Sink.Begin -> ("B", "")
        | Sink.End -> ("E", "")
        | Sink.Instant -> ("i", ",\"s\":\"t\"")
      in
      let args =
        let parts =
          (match e.ctx with
          | None -> []
          | Some ctx -> [ Printf.sprintf "\"req\":\"%s\"" (escape ctx) ])
          @ (match e.span with
            | None -> []
            | Some id -> [ Printf.sprintf "\"sid\":%d" id ])
          @ (match e.parent with
            | None -> []
            | Some id -> [ Printf.sprintf "\"psid\":%d" id ])
          @
          match e.alloc_bytes with
          | None -> []
          | Some b -> [ Printf.sprintf "\"alloc_b\":%.0f" b ]
        in
        match parts with
        | [] -> ""
        | parts ->
            Printf.sprintf ",\"args\":{%s}" (String.concat "," parts)
      in
      Printf.bprintf buf
        "\n{\"name\":\"%s\",\"cat\":\"obs\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d%s%s}"
        (escape e.name) ph (e.ts_us -. t0) e.domain extra args)
    events;
  (* t0_us anchors the relative timestamps to the wall clock, so traces
     from different processes (a loadgen client and the server that
     answered it) can be re-based onto one timeline by [merge_strings].
     Chrome/Perfetto ignore unknown top-level keys. *)
  Printf.bprintf buf "\n],\"t0_us\":%.3f,\"displayTimeUnit\":\"ms\"}\n" t0;
  Buffer.contents buf

let to_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ()))

(* --- validation: a minimal JSON reader, enough to self-check the sink
   format without an external dependency. --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some ('b' | 'f') -> Buffer.add_char buf ' '; advance ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              (* keep the raw escape; validation only needs structure *)
              Buffer.add_string buf (String.sub s !pos 4);
              pos := !pos + 4
          | _ -> fail "bad escape");
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let validate_string text =
  match parse_json text with
  | exception Bad msg -> Error msg
  | Obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Arr events) -> (
          (* per-(pid,tid) stacks: every E must close the innermost open
             B on its own process track — merged multi-process traces
             reuse tids across pids *)
          let stacks : (int * int, string list) Hashtbl.t = Hashtbl.create 8 in
          let check_event ev =
            match ev with
            | Obj f -> (
                let str k =
                  match List.assoc_opt k f with
                  | Some (Str s) -> Ok s
                  | _ -> Error (Printf.sprintf "missing string key %S" k)
                in
                let num k =
                  match List.assoc_opt k f with
                  | Some (Num v) -> Ok v
                  | _ -> Error (Printf.sprintf "missing numeric key %S" k)
                in
                match (str "name", str "ph", num "ts", num "pid", num "tid") with
                | Ok name, Ok ph, Ok _, Ok pid, Ok tid -> (
                    let track = (int_of_float pid, int_of_float tid) in
                    let stack =
                      Option.value ~default:[] (Hashtbl.find_opt stacks track)
                    in
                    match ph with
                    | "B" ->
                        Hashtbl.replace stacks track (name :: stack);
                        Ok ()
                    | "E" -> (
                        match stack with
                        | top :: rest when top = name ->
                            Hashtbl.replace stacks track rest;
                            Ok ()
                        | top :: _ ->
                            Error
                              (Printf.sprintf
                                 "E %S does not close innermost B %S on tid %d"
                                 name top (snd track))
                        | [] ->
                            Error
                              (Printf.sprintf "E %S with no open B on tid %d"
                                 name (snd track)))
                    | "i" | "I" | "M" -> Ok ()
                    | other -> Error (Printf.sprintf "unknown phase %S" other))
                | Error e, _, _, _, _
                | _, Error e, _, _, _
                | _, _, Error e, _, _
                | _, _, _, Error e, _
                | _, _, _, _, Error e ->
                    Error e)
            | _ -> Error "trace event is not an object"
          in
          let rec all = function
            | [] -> Ok ()
            | ev :: rest -> (
                match check_event ev with Ok () -> all rest | Error _ as e -> e)
          in
          match all events with
          | Error e -> Error e
          | Ok () ->
              let unclosed =
                Hashtbl.fold (fun _ stack acc -> acc + List.length stack) stacks 0
              in
              if unclosed > 0 then
                Error (Printf.sprintf "%d B event(s) without matching E" unclosed)
              else Ok (List.length events))
      | Some _ -> Error "traceEvents is not an array"
      | None -> Error "no traceEvents key")
  | _ -> Error "top-level JSON value is not an object"

(* --- merge: combine traces from several processes (a loadgen client
   and the server that answered it) onto one timeline. Each input's
   [t0_us] anchor rebases its relative timestamps against the earliest
   anchor, and each input gets its own [pid] (with a [process_name]
   metadata record) so its domains render as separate tracks. --- *)

let rec write_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Printf.bprintf buf "%.0f" v
      else Printf.bprintf buf "%.3f" v
  | Str s -> Printf.bprintf buf "\"%s\"" (escape s)
  | Arr l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write_json buf v)
        l;
      Buffer.add_char buf ']'
  | Obj l ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Printf.bprintf buf "\"%s\":" (escape k);
          write_json buf v)
        l;
      Buffer.add_char buf '}'

let merge_strings inputs =
  let parse (label, text) =
    match parse_json text with
    | Obj fields -> (
        match List.assoc_opt "traceEvents" fields with
        | Some (Arr events) ->
            let t0 =
              match List.assoc_opt "t0_us" fields with
              | Some (Num v) -> v
              | _ -> 0.0
            in
            (label, t0, events)
        | Some _ -> raise (Bad (label ^ ": traceEvents is not an array"))
        | None -> raise (Bad (label ^ ": no traceEvents key")))
    | _ -> raise (Bad (label ^ ": top-level JSON value is not an object"))
    | exception Bad msg -> raise (Bad (label ^ ": " ^ msg))
  in
  match List.map parse inputs with
  | exception Bad msg -> Error msg
  | [] -> Error "nothing to merge"
  | parts ->
      let base =
        List.fold_left (fun acc (_, t0, _) -> Float.min acc t0) infinity parts
      in
      let base = if Float.is_finite base then base else 0.0 in
      let buf = Buffer.create 4096 in
      Buffer.add_string buf "{\"traceEvents\":[";
      let first = ref true in
      let emit ev =
        if !first then first := false else Buffer.add_char buf ',';
        Buffer.add_char buf '\n';
        write_json buf ev
      in
      List.iteri
        (fun i (label, t0, events) ->
          let pid = float_of_int (i + 1) in
          emit
            (Obj
               [
                 ("name", Str "process_name");
                 ("ph", Str "M");
                 ("pid", Num pid);
                 ("tid", Num 0.0);
                 ("ts", Num 0.0);
                 ("args", Obj [ ("name", Str label) ]);
               ]);
          List.iter
            (fun ev ->
              match ev with
              | Obj fields ->
                  emit
                    (Obj
                       (List.map
                          (fun (k, v) ->
                            match (k, v) with
                            | "ts", Num ts -> (k, Num (ts +. t0 -. base))
                            | "pid", _ -> (k, Num pid)
                            | _ -> (k, v))
                          fields))
              | other -> emit other)
            events)
        parts;
      Printf.bprintf buf "\n],\"t0_us\":%.3f,\"displayTimeUnit\":\"ms\"}\n" base;
      Ok (Buffer.contents buf)

let merge_files paths =
  let read path =
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (Filename.basename path, text)
  in
  match List.map read paths with
  | exception Sys_error msg -> Error msg
  | inputs -> merge_strings inputs

(* Structural JSON check for a single value (no trace-shape rules);
   Event's JSON-lines dumps are validated with this. *)
let check_json text =
  match parse_json text with
  | exception Bad msg -> Error msg
  | _ -> Ok ()

let validate_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  validate_string text
