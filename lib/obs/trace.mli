(** Chrome trace-event export of the sink's recorded events.

    The emitted JSON loads directly in [chrome://tracing] and in Perfetto
    (legacy trace-event format): one [B]/[E]/[i] record per event, with
    the recording domain as [tid] so concurrent pool work renders as
    parallel tracks. Timestamps are microseconds relative to the first
    recorded event. *)

val to_string : unit -> string
(** Serialize everything recorded so far. *)

val to_file : string -> unit
(** [to_string] written to a file (truncates an existing file). *)

val validate_string : string -> (int, string) result
(** Self-check of the sink format used by the golden tests and the
    [@obs-smoke] alias: parses the JSON with a minimal scanner, checks
    the [traceEvents] array and the required keys of each record, and
    verifies that Begin/End events pair up per [tid]. Returns the number
    of trace events on success. *)

val validate_file : string -> (int, string) result

val merge_strings : (string * string) list -> (string, string) result
(** [merge_strings [(label, text); ...]] combines several Chrome trace
    files — typically a loadgen client's trace and the server trace that
    answered it — onto one timeline. Each input's [t0_us] wall-clock
    anchor (written by {!to_string}) rebases its relative timestamps
    against the earliest anchor; each input is assigned its own [pid]
    (input order, starting at 1) and a [process_name] metadata record
    naming it [label], so spans from both processes line up on real time
    but render as separate process tracks. Inputs without an anchor keep
    their timestamps ([t0_us = 0]). *)

val merge_files : string list -> (string, string) result
(** {!merge_strings} over files, labelled by basename. *)

val check_json : string -> (unit, string) result
(** Structural check that [text] is one well-formed JSON value (no
    trace-shape rules) — used to validate {!Event} JSON-lines dumps in
    tests without an external JSON dependency. *)
