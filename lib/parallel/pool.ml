let c_tasks = Obs.Counter.make "pool.tasks"
let c_queue_wait_us = Obs.Counter.make "pool.queue_wait_us"
let c_task_run_us = Obs.Counter.make "pool.task_run_us"
let c_rejected = Obs.Counter.make "pool.rejected_submissions"
let c_task_errors = Obs.Counter.make "pool.task_errors"
let g_busy = Obs.Gauge.make "pool.busy_fraction"
let g_queue_depth = Obs.Gauge.make "pool.queue_depth"
let g_capacity = Obs.Gauge.make "pool.capacity"
let h_queue_wait = Obs.Histogram.make "pool.queue_wait_latency_us"

type task = Task of { f : unit -> unit; enqueued_us : float } | Quit

(* Tasks run on worker domains, whose DLS slots know nothing about the
   submitter's ambient trace context; without this capture a span emitted
   inside a pooled task would lose its request id and parent link. The
   capture happens on the submitting domain, the reinstall on whichever
   domain executes the task. *)
let capture_obs_ctx f =
  let ctx = Obs.Sink.current_ctx () in
  let span = Obs.Sink.current_span () in
  fun () ->
    let f =
      match span with
      | None -> f
      | Some id -> fun () -> Obs.Sink.with_span_id id f
    in
    match ctx with None -> f () | Some c -> Obs.Sink.with_ctx c f

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  idle : Condition.t;
  queue : task Queue.t;
  mutable workers : unit Domain.t list;
  size : int;
  mutable alive : bool;
  (* queued-or-running [Task]s; guarded by [mutex]. [wait_idle] blocks on
     [idle] until this drops to zero. *)
  mutable in_flight : int;
  created_us : float;
  (* per-domain busy time; slot 0 is the submitting domain, slots 1..n-1
     the workers. Each slot is written only by its owning domain and read
     after the workers are joined, so plain floats suffice. *)
  busy_us : float array;
}

(* call with [pool.mutex] held *)
let note_queue_depth pool =
  Obs.Gauge.set g_queue_depth (float_of_int (Queue.length pool.queue))

(* Run one dequeued task on [slot], accounting queue wait and runtime.
   The heartbeat marks let Obs.Health's watchdog catch a wedged task. *)
let execute pool slot f enqueued_us =
  let start = Obs.Sink.now_us () in
  Obs.Counter.add c_queue_wait_us (int_of_float (start -. enqueued_us));
  Obs.Histogram.observe h_queue_wait (start -. enqueued_us);
  Obs.Health.task_begin "pool.task";
  Fun.protect
    ~finally:(fun () ->
      Obs.Health.task_end ();
      let stop = Obs.Sink.now_us () in
      Obs.Counter.add c_task_run_us (int_of_float (stop -. start));
      Obs.Counter.incr c_tasks;
      pool.busy_us.(slot) <- pool.busy_us.(slot) +. (stop -. start);
      Mutex.lock pool.mutex;
      pool.in_flight <- pool.in_flight - 1;
      if pool.in_flight = 0 then Condition.broadcast pool.idle;
      Mutex.unlock pool.mutex)
    (fun () -> Obs.Span.with_span "pool.task" f)

let worker_loop pool slot =
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue do
      Condition.wait pool.nonempty pool.mutex
    done;
    let task = Queue.pop pool.queue in
    note_queue_depth pool;
    Mutex.unlock pool.mutex;
    match task with
    | Quit -> ()
    | Task { f; enqueued_us } ->
        execute pool slot f enqueued_us;
        loop ()
  in
  loop ()

let create n =
  if n < 1 then invalid_arg "Pool.create: need at least one domain";
  let pool =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      workers = [];
      size = n;
      alive = true;
      in_flight = 0;
      created_us = Obs.Sink.now_us ();
      busy_us = Array.make n 0.0;
    }
  in
  Obs.Gauge.set g_capacity (float_of_int n);
  Obs.Gauge.set g_queue_depth 0.0;
  pool.workers <-
    List.init (n - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let size t = t.size

(* Steal one task if available; returns false when the queue is empty. *)
let try_run_one t =
  Mutex.lock t.mutex;
  let task = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  note_queue_depth t;
  Mutex.unlock t.mutex;
  match task with
  | Some (Task { f; enqueued_us }) ->
      execute t 0 f enqueued_us;
      true
  | Some Quit ->
      (* only shutdown enqueues Quit, and run never overlaps shutdown;
         put it back for a worker *)
      Mutex.lock t.mutex;
      Queue.push Quit t.queue;
      Condition.signal t.nonempty;
      Mutex.unlock t.mutex;
      false
  | None -> false

let check_alive t what =
  if not t.alive then begin
    Obs.Counter.incr c_rejected;
    let depth =
      Mutex.lock t.mutex;
      let d = Queue.length t.queue in
      Mutex.unlock t.mutex;
      d
    in
    Obs.Event.emit ~level:Obs.Event.Warn "pool.rejected"
      [ ("op", Obs.Event.Str what); ("queue_depth", Obs.Event.Int depth) ];
    invalid_arg
      (Printf.sprintf
         "Pool.%s: submission rejected, pool (%d domains, queue depth %d) \
          was already shut down"
         what t.size depth)
  end

let run t thunks =
  check_alive t "run";
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  let results = Array.make n None in
  let remaining = Atomic.make n in
  let enqueued_us = Obs.Sink.now_us () in
  Mutex.lock t.mutex;
  t.in_flight <- t.in_flight + n;
  Array.iteri
    (fun i thunk ->
      let run_one () =
        let outcome =
          match thunk () with
          | v -> Ok v
          | exception e -> Error e
        in
        results.(i) <- Some outcome;
        Atomic.decr remaining
      in
      Queue.push (Task { f = capture_obs_ctx run_one; enqueued_us }) t.queue)
    thunks;
  note_queue_depth t;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  (* The caller helps drain the queue, then spins briefly for stragglers
     executing on workers. *)
  while try_run_one t do
    ()
  done;
  while Atomic.get remaining > 0 do
    Domain.cpu_relax ()
  done;
  Array.to_list
    (Array.map
       (fun cell ->
         match cell with
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false)
       results)

let map t f xs = run t (List.map (fun x () -> f x) xs)

let submit t f =
  check_alive t "submit";
  (* A fire-and-forget task has nobody to re-raise to; an escaping
     exception would silently kill the worker domain, so swallow it into
     a counter instead. *)
  let f =
    capture_obs_ctx (fun () ->
        try f ()
        with e ->
          Obs.Counter.incr c_task_errors;
          Obs.Event.emit ~level:Obs.Event.Warn "pool.task_error"
            [ ("exn", Obs.Event.Str (Printexc.to_string e)) ])
  in
  let enqueued_us = Obs.Sink.now_us () in
  Mutex.lock t.mutex;
  t.in_flight <- t.in_flight + 1;
  Queue.push (Task { f; enqueued_us }) t.queue;
  note_queue_depth t;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex;
  (* No workers to pick the task up on a single-domain pool: run it now on
     the caller, preserving fire-and-forget semantics observationally. *)
  if t.workers = [] then
    while try_run_one t do
      ()
    done

let wait_idle t =
  Mutex.lock t.mutex;
  while t.in_flight > 0 do
    Condition.wait t.idle t.mutex
  done;
  Mutex.unlock t.mutex

let domain_busy_s t = Array.map (fun us -> us /. 1e6) t.busy_us

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Mutex.lock t.mutex;
    List.iter (fun _ -> Queue.push Quit t.queue) t.workers;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- [];
    let lifetime = Obs.Sink.now_us () -. t.created_us in
    if lifetime > 0.0 then begin
      let busy = Array.fold_left ( +. ) 0.0 t.busy_us in
      Obs.Gauge.set g_busy (busy /. (lifetime *. float_of_int t.size))
    end
  end

let default_jobs () = min 8 (Domain.recommended_domain_count ())
