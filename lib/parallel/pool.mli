(** Fixed-size domain pool for coarse-grained parallelism (OCaml 5
    domains).

    Used to run the independent experiments of the reproduction suite in
    parallel: each experiment derives its own RNG from its id, so results
    are bit-identical regardless of scheduling. The pool is deliberately
    simple — a mutex-protected task queue drained by worker domains, with
    the submitting domain joining the work while it waits — which is all
    the harness needs.

    Tasks must not themselves submit to the same pool (no nesting), and
    anything they share must be thread-safe.

    The pool feeds the [obs] layer: counters [pool.tasks],
    [pool.queue_wait_us], [pool.task_run_us] and
    [pool.rejected_submissions] accumulate across all pools, tasks run
    inside a ["pool.task"] span when tracing is enabled, and [shutdown]
    publishes the pool's aggregate busy fraction to the
    [pool.busy_fraction] gauge. The live queue length and pool size are
    mirrored into the [pool.queue_depth] and [pool.capacity] gauges
    (last pool wins — servers run exactly one), and every task is
    bracketed by [Obs.Health] heartbeat marks so the watchdog can flag a
    wedged task.

    The submitter's ambient trace context ([Obs.Sink.current_ctx]) and
    innermost open span id ([Obs.Sink.current_span]) are captured at
    submission and reinstalled on the executing domain, so spans and
    events emitted inside a pooled task stay attributed to the request
    that spawned the task. *)

type t

val create : int -> t
(** [create n] spawns [n - 1] worker domains ([n >= 1]; [create 1] is a
    valid pool that runs everything on the caller). Raises
    [Invalid_argument] if [n < 1]. *)

val size : t -> int
(** Total parallelism including the calling domain. *)

val run : t -> (unit -> 'a) list -> 'a list
(** Execute all thunks, in parallel, returning results in input order.
    The first task exception (in input order) is re-raised after all
    tasks have settled. A submission to a shut-down pool bumps the
    [pool.rejected_submissions] counter and raises [Invalid_argument]
    with the pool size and queue depth in the message. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list

val submit : t -> (unit -> unit) -> unit
(** Fire-and-forget: enqueue one task and return immediately. Used by the
    serving layer to handle client sessions concurrently. An exception
    escaping the task is swallowed into the [pool.task_errors] counter
    (there is no caller to re-raise to). On a single-domain pool the task
    runs synchronously on the caller before [submit] returns. Raises
    [Invalid_argument] like {!run} if the pool was shut down. *)

val wait_idle : t -> unit
(** Block until every queued or running task (from {!run} or {!submit})
    has finished. With concurrent submitters this is only a momentary
    truth; servers call it after they stop accepting work to drain
    in-flight sessions before {!shutdown}. *)

val domain_busy_s : t -> float array
(** Per-domain cumulative task runtime in seconds (slot 0 is the
    submitting domain, slots 1.. the workers). Only meaningful at a
    quiescent point — between [run] calls or after [shutdown]. *)

val shutdown : t -> unit
(** Terminate the workers. Idempotent; the pool is unusable afterwards. *)

val default_jobs : unit -> int
(** A sensible parallelism level: [Domain.recommended_domain_count],
    capped at 8. *)
