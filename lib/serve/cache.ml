let c_hits = Obs.Counter.make "serve.cache_hits"
let c_misses = Obs.Counter.make "serve.cache_misses"
let c_evictions = Obs.Counter.make "serve.cache_evictions"
let h_lookup_us = Obs.Histogram.make "serve.cache.lookup_latency_us"
let g_size = Obs.Gauge.make "serve.cache_size"

type 'a entry = {
  value : 'a;
  mutable stamp : int;
  created_us : float;
  mutable hits : int;
}

type 'a t = {
  mutex : Mutex.t;
  capacity : int;
  table : (string, 'a entry) Hashtbl.t;
  (* access order, oldest first; stale pairs (whose stamp no longer
     matches the table entry) are skipped during eviction *)
  order : (string * int) Queue.t;
  mutable tick : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    capacity;
    table = Hashtbl.create (2 * capacity);
    order = Queue.create ();
    tick = 0;
  }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let length t = locked t (fun () -> Hashtbl.length t.table)

let touch t key entry =
  t.tick <- t.tick + 1;
  entry.stamp <- t.tick;
  Queue.push (key, t.tick) t.order

let find t key =
  Obs.Span.with_span "serve.cache.lookup" @@ fun () ->
  let t0 = Obs.Sink.now_us () in
  let result =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some entry ->
            Obs.Counter.incr c_hits;
            entry.hits <- entry.hits + 1;
            touch t key entry;
            Some entry.value
        | None ->
            Obs.Counter.incr c_misses;
            None)
  in
  Obs.Histogram.observe h_lookup_us (Obs.Sink.now_us () -. t0);
  result

let evict_one t =
  (* Pop until a queue pair still describes a live entry's most recent
     access; that entry is the LRU. *)
  let rec go () =
    match Queue.take_opt t.order with
    | None -> ()
    | Some (key, stamp) -> (
        match Hashtbl.find_opt t.table key with
        | Some entry when entry.stamp = stamp ->
            Hashtbl.remove t.table key;
            Obs.Counter.incr c_evictions;
            Obs.Event.emit "serve.cache.evict"
              [
                ( "age_s",
                  Obs.Event.Float
                    ((Obs.Sink.now_us () -. entry.created_us) /. 1e6) );
                ("hits", Obs.Event.Int entry.hits);
              ]
        | Some _ | None -> go ())
  in
  go ()

let put t key value =
  locked t (fun () ->
      let entry =
        { value; stamp = 0; created_us = Obs.Sink.now_us (); hits = 0 }
      in
      Hashtbl.replace t.table key entry;
      touch t key entry;
      if Hashtbl.length t.table > t.capacity then evict_one t;
      Obs.Gauge.set g_size (float_of_int (Hashtbl.length t.table)))
