(** Size-bounded LRU result cache, keyed by canonical instance text.

    Thread-safe: the server handles sessions concurrently on a
    {!Parallel.Pool}, so every operation takes an internal mutex. Recency
    is tracked with a lazily-pruned access queue, which keeps [find] and
    [put] amortized O(1) without a hand-rolled linked list.

    Feeds the obs layer: [serve.cache_hits], [serve.cache_misses] and
    [serve.cache_evictions] accumulate across all caches, the
    [serve.cache_size] gauge tracks the occupancy after the most recent
    [put], and each eviction records a [serve.cache.evict] flight-recorder
    event carrying the evicted entry's age (seconds) and hit count. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Number of live entries (<= capacity). *)

val find : 'a t -> string -> 'a option
(** Lookup, refreshing the entry's recency on a hit. Bumps
    [serve.cache_hits] or [serve.cache_misses]. *)

val put : 'a t -> string -> 'a -> unit
(** Insert or overwrite, evicting the least-recently-used entry when over
    capacity (bumping [serve.cache_evictions]). *)
