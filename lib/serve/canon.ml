module I = Core.Instance

type t = {
  instance : Core.Instance.t;
  job_perm : int array;
  machine_perm : int array;
  class_perm : int array;
}

(* Build the instance obtained by relabeling: new index [x] is old index
   [perm.(x)] for jobs, machines and classes alike. *)
let relabel inst ~job_perm ~machine_perm ~class_perm =
  let n = I.num_jobs inst and m = I.num_machines inst in
  let kk = I.num_classes inst in
  let class_rank = Array.make kk 0 in
  Array.iteri (fun kn ko -> class_rank.(ko) <- kn) class_perm;
  let sizes = Array.init n (fun jn -> inst.I.sizes.(job_perm.(jn))) in
  let job_class =
    Array.init n (fun jn -> class_rank.(inst.I.job_class.(job_perm.(jn))))
  in
  let setups = Array.init kk (fun kn -> inst.I.setups.(class_perm.(kn))) in
  let pick_matrix mat cols col_perm =
    Array.init m (fun i ->
        let row = mat.(machine_perm.(i)) in
        Array.init cols (fun c -> row.(col_perm.(c))))
  in
  match inst.I.env with
  | I.Identical -> I.identical ~num_machines:m ~sizes ~job_class ~setups
  | I.Uniform speeds ->
      let speeds = Array.init m (fun i -> speeds.(machine_perm.(i))) in
      I.uniform ~speeds ~sizes ~job_class ~setups
  | I.Restricted eligible ->
      I.restricted ~eligible:(pick_matrix eligible n job_perm) ~sizes
        ~job_class ~setups
  | I.Unrelated p ->
      let setup_matrix =
        Option.map
          (fun s -> pick_matrix s kk class_perm)
          inst.I.setup_matrix
      in
      I.unrelated ?setup_matrix ~p:(pick_matrix p n job_perm) ~job_class
        ~setups ()

(* --- color refinement ---------------------------------------------------

   Jobs, machines and classes each carry an integer color; one round
   recomputes every entity's signature from its own scalar data and the
   multiset of (neighbor color, edge weight) pairs, then replaces colors
   by the dense rank of the signatures. Signatures are built from
   isomorphism-invariant inputs only, so by induction the final colors are
   invariant under relabeling. Including the entity's previous color in
   its signature makes each round a refinement of the last, so the loop
   reaches a fixpoint after at most n + m + K rounds. *)

let rank_signatures sigs =
  let sorted = Array.copy sigs in
  Array.sort compare sorted;
  let tbl = Hashtbl.create (Array.length sigs) in
  let next = ref 0 in
  Array.iter
    (fun s ->
      if not (Hashtbl.mem tbl s) then begin
        Hashtbl.add tbl s !next;
        incr next
      end)
    sorted;
  Array.map (Hashtbl.find tbl) sigs

let refine inst =
  let n = I.num_jobs inst and m = I.num_machines inst in
  let kk = I.num_classes inst in
  let jc = ref (Array.make n 0) in
  let mc = ref (Array.make m 0) in
  let kc = ref (Array.make kk 0) in
  let stable = ref false in
  let rounds = ref 0 in
  while (not !stable) && !rounds <= n + m + kk do
    incr rounds;
    let jc0 = !jc and mc0 = !mc and kc0 = !kc in
    let job_sigs =
      Array.init n (fun j ->
          let by_machine =
            List.sort compare
              (List.init m (fun i -> (mc0.(i), I.ptime inst i j)))
          in
          (jc0.(j), kc0.(inst.I.job_class.(j)), inst.I.sizes.(j), by_machine))
    in
    let machine_sigs =
      Array.init m (fun i ->
          let by_job =
            List.sort compare (List.init n (fun j -> (jc0.(j), I.ptime inst i j)))
          in
          let by_class =
            List.sort compare
              (List.init kk (fun k -> (kc0.(k), I.setup_time inst i k)))
          in
          (mc0.(i), I.speed inst i, by_job, by_class))
    in
    let class_sigs =
      Array.init kk (fun k ->
          let members =
            List.sort compare
              (List.filter_map
                 (fun j ->
                   if inst.I.job_class.(j) = k then Some jc0.(j) else None)
                 (List.init n Fun.id))
          in
          let by_machine =
            List.sort compare
              (List.init m (fun i -> (mc0.(i), I.setup_time inst i k)))
          in
          (kc0.(k), inst.I.setups.(k), members, by_machine))
    in
    jc := rank_signatures job_sigs;
    mc := rank_signatures machine_sigs;
    kc := rank_signatures class_sigs;
    stable := !jc = jc0 && !mc = mc0 && !kc = kc0
  done;
  (!jc, !mc, !kc)

let sort_by_color colors =
  let idx = Array.init (Array.length colors) Fun.id in
  Array.sort
    (fun a b ->
      match compare colors.(a) colors.(b) with 0 -> compare a b | c -> c)
    idx;
  idx

let canonicalize inst =
  let jc, mc, kc = refine inst in
  let job_perm = sort_by_color jc in
  let machine_perm = sort_by_color mc in
  let class_perm = sort_by_color kc in
  let instance = relabel inst ~job_perm ~machine_perm ~class_perm in
  { instance; job_perm; machine_perm; class_perm }

let key inst = Core.Instance_io.to_string (canonicalize inst).instance

(* Cheap relabeling-invariant fingerprint, consulted before full color
   refinement: every per-entity term is built from label-independent
   data (sizes, effective processing/setup times, speeds) and folded
   with commutative integer sums over all jobs/machines/classes, so any
   permutation of the three index spaces leaves the hash unchanged.
   Collisions are harmless (they only cost a canonicalization); what
   matters is that relabelings can never produce different hashes. *)
let prehash inst =
  let n = I.num_jobs inst and m = I.num_machines inst in
  let kk = I.num_classes inst in
  let env_tag =
    match inst.I.env with
    | I.Identical -> 0
    | I.Uniform _ -> 1
    | I.Restricted _ -> 2
    | I.Unrelated _ -> 3
  in
  let job_sum = ref 0 in
  for j = 0 to n - 1 do
    let pt = ref 0 in
    for i = 0 to m - 1 do
      pt := !pt + Hashtbl.hash (I.ptime inst i j)
    done;
    job_sum :=
      !job_sum
      + Hashtbl.hash
          (inst.I.sizes.(j), inst.I.setups.(inst.I.job_class.(j)), !pt)
  done;
  let machine_sum = ref 0 in
  for i = 0 to m - 1 do
    let pt = ref 0 in
    for j = 0 to n - 1 do
      pt := !pt + Hashtbl.hash (I.ptime inst i j)
    done;
    let su = ref 0 in
    for k = 0 to kk - 1 do
      su := !su + Hashtbl.hash (I.setup_time inst i k)
    done;
    machine_sum := !machine_sum + Hashtbl.hash (I.speed inst i, !pt, !su)
  done;
  let class_sum = ref 0 in
  for k = 0 to kk - 1 do
    class_sum :=
      !class_sum
      + Hashtbl.hash
          ( inst.I.setups.(k),
            I.class_size inst k,
            List.length (I.jobs_of_class inst k) )
  done;
  Hashtbl.hash (env_tag, n, m, kk, !job_sum, !machine_sum, !class_sum)

let assignment_to_canonical t assignment =
  let n = Array.length t.job_perm in
  let m = Array.length t.machine_perm in
  if Array.length assignment <> n then
    invalid_arg
      (Printf.sprintf "Canon.assignment_to_canonical: %d entries for %d jobs"
         (Array.length assignment) n);
  let machine_rank = Array.make m 0 in
  Array.iteri (fun inew iold -> machine_rank.(iold) <- inew) t.machine_perm;
  Array.init n (fun jc -> machine_rank.(assignment.(t.job_perm.(jc))))

let assignment_to_original t assignment =
  let n = Array.length t.job_perm in
  if Array.length assignment <> n then
    invalid_arg
      (Printf.sprintf
         "Canon.assignment_to_original: %d entries for %d jobs"
         (Array.length assignment) n);
  let out = Array.make n (-1) in
  for jc = 0 to n - 1 do
    out.(t.job_perm.(jc)) <- t.machine_perm.(assignment.(jc))
  done;
  out

let shuffle rng inst =
  relabel inst
    ~job_perm:(Workloads.Rng.permutation rng (I.num_jobs inst))
    ~machine_perm:(Workloads.Rng.permutation rng (I.num_machines inst))
    ~class_perm:(Workloads.Rng.permutation rng (I.num_classes inst))
