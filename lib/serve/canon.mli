(** Instance canonicalization for the result cache.

    Two requests that differ only by a relabeling of jobs, machines or
    setup classes describe the same scheduling problem; the cache must
    serve the second from the first's result. [canonicalize] computes a
    normal form — a color-refinement pass over the effective
    processing/setup times assigns each job, machine and class an
    isomorphism-invariant rank, and entities are reordered by rank — plus
    the permutations needed to translate a cached canonical schedule back
    into the request's original labeling.

    Entities that remain tied after refinement have identical refined
    signatures; for the instance families produced by {!Workloads.Gen}
    (and any instance without non-trivially isomorphic substructures) such
    ties are true symmetries, so any tie order yields the same normal
    form and relabeled instances canonicalize identically. *)

type t = {
  instance : Core.Instance.t;  (** the canonical form *)
  job_perm : int array;  (** [job_perm.(jc)] = original index of canonical job [jc] *)
  machine_perm : int array;
  class_perm : int array;
}

val canonicalize : Core.Instance.t -> t

val key : Core.Instance.t -> string
(** Cache key: the canonical form serialized with {!Core.Instance_io}.
    Relabelings of the same instance map to equal keys. *)

val assignment_to_original : t -> int array -> int array
(** [assignment_to_original t a] translates an assignment over the
    canonical instance (canonical job -> canonical machine) into one over
    the original instance. Raises [Invalid_argument] on a length
    mismatch. *)

val assignment_to_canonical : t -> int array -> int array
(** Inverse of {!assignment_to_original}: translate an assignment over
    the original instance into the canonical labeling — used to store a
    schedule that was computed without canonicalizing first. Raises
    [Invalid_argument] on a length mismatch. *)

val prehash : Core.Instance.t -> int
(** Cheap relabeling-invariant fingerprint (commutative sums of
    per-entity hashes; O(nm + mK) with no sorting or refinement
    rounds). Relabelings of an instance always collide; unrelated
    instances may (harmlessly) collide too. The server consults a set of
    seen pre-hashes before running full color refinement: an unseen
    pre-hash proves the result cache cannot hold the instance, so the
    lookup-side canonicalization is skipped entirely. *)

val shuffle : Workloads.Rng.t -> Core.Instance.t -> Core.Instance.t
(** A uniformly random relabeling of jobs, machines and classes — the
    same problem in a different presentation. Used by the loadgen client
    and the canonicalization property tests. *)
