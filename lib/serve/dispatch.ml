let c_degraded = Obs.Counter.make "serve.dispatch.degraded"
let c_heavy = Obs.Counter.make "serve.dispatch.heavy_runs"
let c_fast_only = Obs.Counter.make "serve.dispatch.fast_only"
let c_shed = Obs.Counter.make "serve.dispatch.shed"

type outcome = {
  result : Algos.Common.result;
  solver : string;
  degraded : bool;
}

let solvers = [ "auto"; "greedy"; "lpt"; "portfolio"; "exact" ]

(* Cheap near-linear heuristics; [By_class] list scheduling is the
   strongest variant, the others occasionally win. Environment-restricted
   candidates are skipped. *)
let fast_candidates =
  [
    ("greedy", fun t -> Algos.List_scheduling.schedule t);
    ( "greedy-by-class",
      Algos.List_scheduling.schedule ~order:Algos.List_scheduling.By_class );
    ("lpt", Algos.Lpt.schedule);
    ("batch-lpt", Algos.Batch_lpt.schedule);
  ]

let best_of attempts =
  match attempts with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun ((_, (b : Algos.Common.result)) as acc)
                ((_, (r : Algos.Common.result)) as cand) ->
             if r.Algos.Common.makespan < b.Algos.Common.makespan then cand
             else acc)
           first rest)

let run_applicable candidates t =
  List.filter_map
    (fun (name, algo) ->
      match algo t with
      | r -> Some (name, r)
      | exception Invalid_argument _ -> None)
    candidates

let fast_path t = best_of (run_applicable fast_candidates t)

(* Node budget for branch and bound under a wall-clock budget: a
   conservative nodes-per-millisecond estimate so a nearly-expired
   deadline still yields a (possibly suboptimal) incumbent quickly. *)
let exact_node_limit remaining_ms =
  match remaining_ms with
  | None -> 2_000_000
  | Some ms -> max 10_000 (min 2_000_000 (int_of_float (ms *. 20_000.)))

let run_heavy ~hint ~remaining_ms ~seed t =
  match hint with
  | "exact" ->
      let outcome =
        Algos.Exact.solve ~node_limit:(exact_node_limit remaining_ms) t
      in
      let name = if outcome.Algos.Exact.optimal then "exact" else "exact-budgeted" in
      Some (name, outcome.Algos.Exact.result)
  | "portfolio" ->
      let report = Algos.Portfolio.run ~seed t in
      Some
        ( "portfolio:" ^ report.Algos.Portfolio.winner,
          report.Algos.Portfolio.best )
  | _ -> None

(* The [auto] policy by instance size: exact ground truth is realistic up
   to ~12 jobs, the full portfolio up to a couple hundred, beyond that
   the fast path is the only thing that holds up under load. *)
let auto_hint t =
  let n = Core.Instance.num_jobs t in
  if n <= 12 then Some "exact" else if n <= 200 then Some "portfolio" else None

(* One flight-recorder event per dispatch, recording which policy path
   fired — the causal evidence a slow-request dump needs. *)
let decision ?(shed = false) ~hint ~solver ~heavy ~degraded ~remaining_ms () =
  Obs.Event.emit "serve.dispatch.decision"
    ([
       ("hint", Obs.Event.Str hint);
       ("solver", Obs.Event.Str solver);
       ("heavy", Obs.Event.Bool heavy);
       ("degraded", Obs.Event.Bool degraded);
     ]
    @ (if shed then [ ("shed", Obs.Event.Bool true) ] else [])
    @
    match remaining_ms with
    | None -> []
    | Some ms -> [ ("remaining_ms", Obs.Event.Float ms) ])

let solve ?deadline_ms ?(hint = "auto") ?(seed = 1)
    ?(pressure = fun () -> false) t =
  Obs.Span.phase ~detail:("hint=" ^ hint)
    ~result_detail:(function
      | Ok o -> Printf.sprintf "hint=%s solver=%s" hint o.solver
      | Error _ -> Printf.sprintf "hint=%s error" hint)
    "serve.dispatch"
  @@ fun () ->
  if not (List.mem hint solvers) then
    Error
      (Printf.sprintf "unknown solver %S (expected one of: %s)" hint
         (String.concat ", " solvers))
  else
    let start_us = Obs.Sink.now_us () in
    let remaining_ms () =
      Option.map
        (fun d -> d -. ((Obs.Sink.now_us () -. start_us) /. 1000.))
        deadline_ms
    in
    match hint with
    | "greedy" | "lpt" -> (
        let only = List.filter (fun (n, _) -> n = hint) fast_candidates in
        match run_applicable only t with
        | [ (name, result) ] ->
            decision ~hint ~solver:name ~heavy:false ~degraded:false
              ~remaining_ms:(remaining_ms ()) ();
            Ok { result; solver = name; degraded = false }
        | _ ->
            Error
              (Printf.sprintf "solver %S does not apply to this instance" hint))
    | _ -> (
        match fast_path t with
        | None -> Error "no solver applies: some job is eligible nowhere"
        | exception Invalid_argument msg -> Error msg
        | Some (fast_name, fast_result) -> (
            let heavy_hint =
              match hint with "auto" -> auto_hint t | h -> Some h
            in
            match heavy_hint with
            | None ->
                Obs.Counter.incr c_fast_only;
                decision ~hint ~solver:fast_name ~heavy:false ~degraded:false
                  ~remaining_ms:(remaining_ms ()) ();
                Ok { result = fast_result; solver = fast_name; degraded = false }
            | Some heavy -> (
                let remaining = remaining_ms () in
                (* Admission control: when the process reports pressure
                   (saturated pool/cache or a stuck task), shed the heavy
                   tier pre-emptively — before deadline pressure — and
                   answer degraded from the fast path. *)
                let shed = pressure () in
                (* A heavy solver that cannot possibly finish inside the
                   budget would blow the deadline, not merely use it up:
                   exact adapts via its node limit down to ~2ms, the
                   portfolio runs unthrottled and needs real headroom. *)
                let floor_ms =
                  match heavy with "portfolio" -> 10.0 | _ -> 2.0
                in
                let expired =
                  match remaining with
                  | Some ms -> ms < floor_ms
                  | None -> false
                in
                if expired || shed then begin
                  if shed then Obs.Counter.incr c_shed
                  else Obs.Counter.incr c_degraded;
                  decision ~shed ~hint ~solver:fast_name ~heavy:false
                    ~degraded:true ~remaining_ms:remaining ();
                  Ok { result = fast_result; solver = fast_name; degraded = true }
                end
                else begin
                  Obs.Counter.incr c_heavy;
                  match run_heavy ~hint:heavy ~remaining_ms:remaining ~seed t with
                  | None -> assert false (* heavy is "exact" or "portfolio" *)
                  | exception Invalid_argument msg -> Error msg
                  | Some (heavy_name, heavy_result) ->
                      let name, result =
                        if
                          heavy_result.Algos.Common.makespan
                          <= fast_result.Algos.Common.makespan
                        then (heavy_name, heavy_result)
                        else (fast_name, fast_result)
                      in
                      decision ~hint ~solver:name ~heavy:true ~degraded:false
                        ~remaining_ms:(remaining_ms ()) ();
                      Ok { result; solver = name; degraded = false }
                end)))
