(** Deadline-aware solver selection over the algorithm portfolio.

    A request names a solver (or [auto]) and optionally a time budget in
    milliseconds. Dispatch always computes the near-linear fast path first
    (setup-aware list scheduling, plus the LPT variants where the
    environment admits them), then — budget permitting — runs the
    intended heavier solver and returns whichever schedule is better. If
    the remaining budget is below the heavy solver's minimum useful
    runtime by the time it would start (it could then only blow the
    deadline, not meet it), it is skipped and the fast-path result is
    returned with [degraded = true]; for the exact
    branch-and-bound solver the remaining budget additionally scales the
    node limit.

    Admission control: a [pressure] callback (the server wires it to
    [Obs.Health.status]) is consulted before the heavy tier runs; under
    pressure the heavy solver is shed pre-emptively — even with budget
    to spare — and the fast-path result is returned degraded, bumping
    [serve.dispatch.shed] instead of [serve.dispatch.degraded].

    Counters: [serve.dispatch.degraded], [serve.dispatch.heavy_runs],
    [serve.dispatch.fast_only], [serve.dispatch.shed]. *)

type outcome = {
  result : Algos.Common.result;
  solver : string;  (** the solver that produced [result] *)
  degraded : bool;
      (** true iff the heavy solver was skipped and the fast path
          answered — because the deadline left no useful budget, or
          because [pressure] shed it *)
}

val solvers : string list
(** Accepted solver hints: [auto], [greedy], [lpt], [portfolio],
    [exact]. *)

val solve :
  ?deadline_ms:float -> ?hint:string -> ?seed:int ->
  ?pressure:(unit -> bool) -> Core.Instance.t ->
  (outcome, string) result
(** [pressure] defaults to [fun () -> false] (no admission control).
    [Error] covers unknown hints, hints inapplicable to the instance's
    environment, and instances with a nowhere-eligible job — all the
    cases the server must answer with a structured error response. *)
