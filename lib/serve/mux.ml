(* Readiness-driven multiplexed transport: one event loop owns every
   socket (listeners and connections, all non-blocking), feeds received
   bytes to Proto.Incremental, and queues parsed requests through a
   bounded admission queue onto the server's pool. Replies come back
   through a completion queue + wake pipe and are written in arrival
   order per connection (pipelining-safe). The loop itself never blocks
   on a peer: a slow client only fills its own output buffer. *)

type admission = Admitted | Shed_queue_full | Shed_pressure | Shed_deadline

type config = {
  max_pending : int;
  max_connections : int;
}

let default_config =
  {
    max_pending = 64;
    (* [Unix.select] caps descriptor values at FD_SETSIZE (1024 on
       Linux); 1008 client sockets leave room for stdio, listeners, the
       wake pipe and a few log files *)
    max_connections = 1008;
  }

(* Per-connection state. [slots] keeps one cell per frame received, in
   arrival order; a response may be computed out of order (inline sheds
   finish before pooled solves) but is only serialized once every
   earlier slot has been written, so pipelined clients read replies in
   request order. *)
type conn = {
  fd : Unix.file_descr;
  parser : Proto.Incremental.t;
  slots : Proto.response option ref Queue.t;
  out : Buffer.t;
  mutable out_off : int;
  mutable eof : bool;  (* peer closed its write side; drain then close *)
  mutable closed : bool;
}

(* One admitted request waiting for a pool slot; [wenq_us] dates the
   wait so dispatch can charge queue time against the request's own
   deadline. *)
type work = {
  wconn : conn;
  wslot : Proto.response option ref;
  wincoming : Proto.incoming;
  wenq_us : float;
}

type metrics = {
  c_accepted : Obs.Counter.t;
  c_closed : Obs.Counter.t;
  c_conn_rejected : Obs.Counter.t;
  c_wakeups : Obs.Counter.t;
  adm_admitted : Obs.Labeled.cell;
  adm_shed_queue_full : Obs.Labeled.cell;
  adm_shed_pressure : Obs.Labeled.cell;
  adm_shed_deadline : Obs.Labeled.cell;
  g_connections : Obs.Gauge.t;
  g_queue_depth : Obs.Gauge.t;
  g_queue_peak : Obs.Gauge.t;
  h_queue_wait_us : Obs.Histogram.t;
}

type t = {
  server : Server.t;
  config : config;
  mutable listeners : (Unix.file_descr * string option) list;
      (* fd, unix path to unlink on exit *)
  conns : (Unix.file_descr, conn) Hashtbl.t;
  pending : work Queue.t;
  mutable inflight : int;
  max_inflight : int;  (* pool workers available beyond the loop's domain *)
  completed : (work * Proto.response) Queue.t;
  completed_mutex : Mutex.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stopping : bool Atomic.t;
  m : metrics;
}

(* Metrics are created per-mux (not at module load) so processes that
   never start the mux — plain [schedtool metrics], the legacy blocking
   transport — do not grow serve.mux.* series in their expositions. *)
let make_metrics () =
  let admission = Obs.Labeled.family "serve.mux.admission" ~label:"outcome" in
  {
    c_accepted = Obs.Counter.make "serve.mux.accepted";
    c_closed = Obs.Counter.make "serve.mux.closed";
    c_conn_rejected = Obs.Counter.make "serve.mux.conn_rejected";
    c_wakeups = Obs.Counter.make "serve.mux.wakeups";
    adm_admitted = Obs.Labeled.cell admission "admitted";
    adm_shed_queue_full = Obs.Labeled.cell admission "shed_queue_full";
    adm_shed_pressure = Obs.Labeled.cell admission "shed_pressure";
    adm_shed_deadline = Obs.Labeled.cell admission "shed_deadline";
    g_connections = Obs.Gauge.make "serve.mux.connections";
    g_queue_depth = Obs.Gauge.make "serve.mux.queue_depth";
    g_queue_peak = Obs.Gauge.make "serve.mux.queue_peak";
    h_queue_wait_us = Obs.Histogram.make "serve.mux.queue_wait_us";
  }

let create ?(config = default_config) server =
  if config.max_pending < 1 then
    invalid_arg "Mux.create: max_pending must be >= 1";
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      server;
      config;
      listeners = [];
      conns = Hashtbl.create 64;
      pending = Queue.create ();
      inflight = 0;
      max_inflight = max 0 (Parallel.Pool.size (Server.pool server) - 1);
      completed = Queue.create ();
      completed_mutex = Mutex.create ();
      wake_r;
      wake_w;
      stopping = Atomic.make false;
      m = make_metrics ();
    }
  in
  (* admission-queue fill is this transport's saturation signal; the
     health lattice in turn throttles admission (see [capacity]) *)
  Obs.Health.register_meter "mux.queue" (fun () ->
      Obs.Gauge.value t.m.g_queue_depth /. float_of_int config.max_pending);
  Obs.Slo.register ~name:"mux-admission" ~target:0.99
    (Obs.Slo.Availability
       { family = "serve.mux.admission"; good_values = [ "admitted" ] });
  t

let listen_backlog = 128

let add_tcp t ~host ~port =
  let addr =
    match Unix.getaddrinfo host (string_of_int port)
            [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
    with
    | { Unix.ai_addr; _ } :: _ -> ai_addr
    | [] -> raise (Unix.Unix_error (Unix.EADDRNOTAVAIL, "getaddrinfo", host))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd addr;
  Unix.listen fd listen_backlog;
  Unix.set_nonblock fd;
  t.listeners <- (fd, None) :: t.listeners;
  Unix.getsockname fd

let add_unix t ~path =
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd listen_backlog;
  Unix.set_nonblock fd;
  t.listeners <- (fd, Some path) :: t.listeners

let wake t =
  try ignore (Unix.write_substring t.wake_w "x" 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) ->
    ()

let stop t =
  Atomic.set t.stopping true;
  wake t

(* --- output path -------------------------------------------------------- *)

let close_conn t conn =
  if not conn.closed then begin
    conn.closed <- true;
    Hashtbl.remove t.conns conn.fd;
    Obs.Counter.incr t.m.c_closed;
    Obs.Gauge.set t.m.g_connections (float_of_int (Hashtbl.length t.conns));
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Opportunistic non-blocking write of whatever is buffered; leftovers
   keep the fd in the select write set. *)
let try_write t conn =
  if not conn.closed then begin
    let len = Buffer.length conn.out in
    (try
       while conn.out_off < Buffer.length conn.out do
         let off = conn.out_off in
         let chunk = min 65536 (Buffer.length conn.out - off) in
         let s = Buffer.sub conn.out off chunk in
         let n = Unix.write_substring conn.fd s 0 chunk in
         conn.out_off <- conn.out_off + n
       done
     with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        close_conn t conn);
    if (not conn.closed) && conn.out_off >= len && conn.out_off > 0 then begin
      Buffer.clear conn.out;
      conn.out_off <- 0
    end;
    (* a drained peer is done once every reply is out *)
    if
      (not conn.closed)
      && conn.eof
      && Queue.is_empty conn.slots
      && Buffer.length conn.out = 0
    then close_conn t conn
  end

(* Serialize every response that is ready *in order*: stop at the first
   slot still pending so pipelined replies never overtake each other. *)
let pump t conn =
  let advanced = ref false in
  let rec drain () =
    match Queue.peek_opt conn.slots with
    | Some { contents = Some response } ->
        ignore (Queue.pop conn.slots);
        Buffer.add_string conn.out (Proto.response_to_string response);
        advanced := true;
        drain ()
    | Some { contents = None } | None -> ()
  in
  drain ();
  if !advanced then try_write t conn

(* --- admission + dispatch ---------------------------------------------- *)

let set_queue_depth t =
  let d = float_of_int (Queue.length t.pending) in
  Obs.Gauge.set t.m.g_queue_depth d;
  Obs.Gauge.set_max t.m.g_queue_peak d

(* Effective admission capacity under the health lattice: a degraded
   process halves the queue it is willing to hold, an unhealthy one
   stops queueing entirely (every pooled request is shed until the
   meters recover). *)
let capacity t =
  match Obs.Health.status () with
  | Obs.Health.Ok -> t.config.max_pending
  | Obs.Health.Degraded _ -> max 1 (t.config.max_pending / 2)
  | Obs.Health.Unhealthy _ -> 0

(* Shedding strips the solver budget instead of refusing service: the
   request is answered inline on the loop through the same dispatch
   path with deadline 0, which yields the near-linear fast path and a
   [degraded] reply — or the cached result when one exists, which costs
   nothing and is better than degrading. *)
let shed_response t (incoming : Proto.incoming) =
  match incoming with
  | Proto.Solve req ->
      Server.handle_incoming t.server
        (Proto.Solve { req with Proto.deadline_ms = Some 0.0 })
  | Proto.Session ({ op = Proto.S_resolve _; _ } as sreq) ->
      Server.handle_incoming t.server
        (Proto.Session
           { sreq with Proto.op = Proto.S_resolve { deadline_ms = Some 0.0 } })
  | Proto.Session _ as s ->
      (* session mutations are O(delta) bookkeeping — cheap enough to
         run inline rather than fail the lifecycle under load *)
      Server.handle_incoming t.server s
  | Proto.Profile _ ->
      Proto.Error "overloaded: profile frame shed (retry when healthy)"
  | Proto.Stats _ | Proto.Events _ | Proto.Health | Proto.Explain _ ->
      (* admin frames are never queued, so never shed *)
      assert false

let record_admission t outcome =
  Obs.Labeled.incr
    (match outcome with
    | Admitted -> t.m.adm_admitted
    | Shed_queue_full -> t.m.adm_shed_queue_full
    | Shed_pressure -> t.m.adm_shed_pressure
    | Shed_deadline -> t.m.adm_shed_deadline)

(* Run one admitted request. On a multi-domain pool the work goes to a
   worker and the reply returns through the completion queue; a
   single-domain pool would run the task inline on [submit] anyway, so
   skip the queue and fill the slot directly. *)
let dispatch t (work : work) =
  let now = Obs.Sink.now_us () in
  Obs.Histogram.observe t.m.h_queue_wait_us (now -. work.wenq_us);
  (* deadline-aware: budget spent waiting in the admission queue is
     subtracted from the request's own deadline; a request that
     out-waited its deadline is shed rather than solved late *)
  let incoming =
    match work.wincoming with
    | Proto.Solve ({ deadline_ms = Some d; _ } as req) ->
        let remaining = d -. ((now -. work.wenq_us) /. 1000.) in
        if remaining <= 0.0 then None
        else Some (Proto.Solve { req with Proto.deadline_ms = Some remaining })
    | other -> Some other
  in
  match incoming with
  | None ->
      record_admission t Shed_deadline;
      work.wslot := Some (shed_response t work.wincoming);
      pump t work.wconn
  | Some incoming ->
      if t.max_inflight = 0 then begin
        work.wslot := Some (Server.handle_incoming t.server incoming);
        pump t work.wconn
      end
      else begin
        t.inflight <- t.inflight + 1;
        Parallel.Pool.submit (Server.pool t.server) (fun () ->
            let response =
              try Server.handle_incoming t.server incoming
              with exn ->
                Proto.Error
                  (Printf.sprintf "internal error: %s" (Printexc.to_string exn))
            in
            Mutex.lock t.completed_mutex;
            Queue.push (work, response) t.completed;
            Mutex.unlock t.completed_mutex;
            wake t)
      end

let dispatch_pending t =
  let budget () = t.max_inflight = 0 || t.inflight < t.max_inflight in
  while (not (Queue.is_empty t.pending)) && budget () do
    let work = Queue.pop t.pending in
    set_queue_depth t;
    if not work.wconn.closed then dispatch t work
  done

(* One parsed frame: admin frames answer inline (they read process-wide
   registries and cost microseconds); solver-bound frames pass admission
   control. *)
let admit t conn (incoming : Proto.incoming) =
  let slot = ref None in
  Queue.push slot conn.slots;
  match incoming with
  | Proto.Stats _ | Proto.Events _ | Proto.Health | Proto.Explain _ ->
      slot := Some (Server.handle_incoming t.server incoming);
      pump t conn
  | Proto.Solve _ | Proto.Session _ | Proto.Profile _ ->
      let depth = Queue.length t.pending in
      let cap = capacity t in
      if depth >= cap then begin
        record_admission t
          (if depth >= t.config.max_pending then Shed_queue_full
           else Shed_pressure);
        slot := Some (shed_response t incoming);
        pump t conn
      end
      else begin
        record_admission t Admitted;
        Queue.push
          { wconn = conn; wslot = slot; wincoming = incoming;
            wenq_us = Obs.Sink.now_us () }
          t.pending;
        set_queue_depth t;
        dispatch_pending t
      end

let process_frames t conn =
  let rec loop () =
    if not conn.closed then
      match Proto.Incremental.next_frame conn.parser with
      | None -> ()
      | Some frame ->
          (match Proto.incoming_of_frame frame with
          | Ok incoming -> admit t conn incoming
          | Error msg ->
              let slot = ref (Some (Server.protocol_error msg)) in
              Queue.push slot conn.slots;
              pump t conn);
          loop ()
  in
  loop ()

(* --- input path --------------------------------------------------------- *)

let read_chunk = Bytes.create 65536

let handle_readable t conn =
  if not conn.closed then begin
    match Unix.read conn.fd read_chunk 0 (Bytes.length read_chunk) with
    | 0 ->
        (* peer finished sending: flush the tail, answer any pipelined
           frames already buffered, then fail a frame cut mid-body the
           same way the channel path does *)
        conn.eof <- true;
        Proto.Incremental.finish conn.parser;
        process_frames t conn;
        if Proto.Incremental.in_frame conn.parser then begin
          let slot =
            ref (Some (Server.protocol_error Proto.Incremental.truncated_error))
          in
          Queue.push slot conn.slots
        end;
        pump t conn;
        try_write t conn
    | n ->
        Proto.Incremental.feed conn.parser (Bytes.sub_string read_chunk 0 n);
        process_frames t conn
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> close_conn t conn
  end

let accept_ready t lfd =
  let rec loop () =
    match Unix.accept ~cloexec:true lfd with
    | fd, _addr ->
        if Hashtbl.length t.conns >= t.config.max_connections then begin
          Obs.Counter.incr t.m.c_conn_rejected;
          (try Unix.close fd with Unix.Unix_error _ -> ())
        end
        else begin
          Unix.set_nonblock fd;
          (match Unix.getsockname fd with
          | Unix.ADDR_INET _ -> (
              (* pipelined frames are small; Nagle only adds latency *)
              try Unix.setsockopt fd Unix.TCP_NODELAY true
              with Unix.Unix_error _ -> ())
          | Unix.ADDR_UNIX _ -> ()
          | exception Unix.Unix_error _ -> ());
          let conn =
            {
              fd;
              parser = Proto.Incremental.create ();
              slots = Queue.create ();
              out = Buffer.create 256;
              out_off = 0;
              eof = false;
              closed = false;
            }
          in
          Hashtbl.replace t.conns fd conn;
          Obs.Counter.incr t.m.c_accepted;
          Obs.Gauge.set t.m.g_connections
            (float_of_int (Hashtbl.length t.conns));
          loop ()
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EBADF), _, _) -> ()
  in
  loop ()

let drain_wake t =
  let buf = Bytes.create 64 in
  let rec loop () =
    match Unix.read t.wake_r buf 0 (Bytes.length buf) with
    | n when n > 0 -> loop ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

let drain_completed t =
  Mutex.lock t.completed_mutex;
  let batch = Queue.create () in
  Queue.transfer t.completed batch;
  Mutex.unlock t.completed_mutex;
  Queue.iter
    (fun ((work : work), response) ->
      t.inflight <- t.inflight - 1;
      Obs.Counter.incr t.m.c_wakeups;
      work.wslot := Some response;
      if not work.wconn.closed then pump t work.wconn)
    batch

(* --- the loop ----------------------------------------------------------- *)

let run t =
  if t.listeners = [] then invalid_arg "Mux.run: no listeners";
  let cleanup () =
    List.iter
      (fun (fd, path) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        match path with
        | Some p -> ( try Sys.remove p with Sys_error _ -> ())
        | None -> ())
      t.listeners;
    t.listeners <- [];
    let remaining = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    List.iter (fun c -> close_conn t c) remaining
  in
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      let reads = ref [ t.wake_r ] in
      List.iter (fun (fd, _) -> reads := fd :: !reads) t.listeners;
      let writes = ref [] in
      Hashtbl.iter
        (fun fd conn ->
          if not conn.eof then reads := fd :: !reads;
          if Buffer.length conn.out > conn.out_off then
            writes := fd :: !writes)
        t.conns;
      (* the loop is about to park in select; a quiet server is waiting,
         not wedged *)
      Obs.Health.waiting ();
      match Unix.select !reads !writes [] 0.5 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready_r, ready_w, _ ->
          Obs.Health.beat ();
          List.iter
            (fun fd ->
              if fd = t.wake_r then drain_wake t
              else if List.mem_assoc fd t.listeners then accept_ready t fd
              else
                match Hashtbl.find_opt t.conns fd with
                | Some conn -> handle_readable t conn
                | None -> ())
            ready_r;
          drain_completed t;
          dispatch_pending t;
          List.iter
            (fun fd ->
              match Hashtbl.find_opt t.conns fd with
              | Some conn -> try_write t conn
              | None -> ())
            ready_w;
          loop ()
    end
  in
  Fun.protect ~finally:cleanup loop
