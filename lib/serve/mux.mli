(** Multiplexed transport: one readiness-driven event loop
    ([Unix.select] over non-blocking sockets) owns every listener and
    connection, so socket I/O never ties up a solver worker and a slow
    or idle client costs one fd plus its buffers — not a pool slot.

    Bytes are fed to {!Proto.Incremental} as they arrive, so requests
    may be pipelined: every frame gets a response slot in arrival order
    and replies are serialized strictly in that order, even when a later
    frame (an inline shed, an admin frame) finishes first.

    Admission control: solver-bound frames (solve, session, profile)
    enter a bounded pending queue drained onto the server's
    {!Parallel.Pool}; admin frames (stats, events, health, explain)
    answer inline. The queue bound tightens with the {!Obs.Health}
    status lattice — full capacity when [Ok], half when [Degraded],
    zero when [Unhealthy] — and an over-capacity frame is {e shed}: it
    is answered immediately through the same dispatch path with a zero
    deadline, i.e. the near-linear fast path and a [degraded] reply
    (or the cached result, when the instance is already cached).
    Requests that out-wait their own deadline in the queue are shed the
    same way at dispatch time.

    Observability (created per-mux, so non-mux processes do not carry
    the series): counters [serve.mux.accepted] / [serve.mux.closed] /
    [serve.mux.conn_rejected] / [serve.mux.wakeups]; the labeled family
    [serve.mux.admission{outcome=admitted|shed_queue_full|shed_pressure
    |shed_deadline}]; gauges [serve.mux.connections] /
    [serve.mux.queue_depth] / [serve.mux.queue_peak] (high-water mark);
    the [serve.mux.queue_wait_us] histogram; a [mux.queue] health meter
    (queue fill); and a [mux-admission] availability SLO (99%
    admitted). *)

type config = {
  max_pending : int;
      (** pending-queue bound at full health (default 64); halved when
          degraded, zero when unhealthy *)
  max_connections : int;
      (** accepted-socket cap (default 1008 — [Unix.select] limits
          descriptor values to [FD_SETSIZE], 1024 on Linux); further
          accepts are closed immediately and counted in
          [serve.mux.conn_rejected] *)
}

val default_config : config

type t

val create : ?config:config -> Server.t -> t
(** Wrap a server in a mux transport and register its health meter and
    SLO. Raises [Invalid_argument] if [max_pending < 1]. *)

val add_tcp : t -> host:string -> port:int -> Unix.sockaddr
(** Bind and listen on a TCP address (IPv4; [SO_REUSEADDR]; client
    sockets get [TCP_NODELAY]). Returns the bound address — with port 0
    the kernel picks a free port, and the returned address carries it.
    Raises [Unix.Unix_error] if the address cannot be bound. *)

val add_unix : t -> path:string -> unit
(** Bind and listen on a Unix-domain socket at [path] (replacing a
    stale socket file; removed again when {!run} returns). *)

val run : t -> unit
(** Run the event loop until {!stop}: accept, read, parse, admit,
    dispatch, write. Call after at least one [add_*]; raises
    [Invalid_argument] with no listeners. Closes listeners and any
    remaining connections on the way out. *)

val stop : t -> unit
(** Make {!run} return. Safe from a signal handler or another domain. *)
