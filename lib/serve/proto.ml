let version = 1

(* Client-propagated trace context (W3C-traceparent-flavored, but line
   oriented like the rest of the protocol): a trace id the server adopts
   as its ambient request context, plus optionally the client's span id
   so server-side roots link back to the client's phase tree. *)
type trace_ctx = { tid : string; parent : int option }

type request = {
  solver : string option;
  deadline_ms : float option;
  trace : trace_ctx option;
  instance : Core.Instance.t;
}

type reply = {
  solver : string;
  cache_hit : bool;
  degraded : bool;
  makespan : float;
  elapsed_us : int;
  assignment : int array;
  trace : string option;
}

type stats_format = Prometheus | Json

type session_op =
  | S_create of Core.Instance.t
  | S_add_jobs of Core.Instance.new_job list
  | S_drop_jobs of int list
  | S_resolve of { deadline_ms : float option }
  | S_close

type session_request = { sid : string; op : session_op; trace : trace_ctx option }

type session_reply = {
  sid : string;
  op : string;
  generation : int;
  jobs : int;
  mode : string option;
  solve : reply option;
  trace : string option;
}

(* Profile frames drive the in-process sampling profiler ([Obs.Profile])
   over the admin stream: inspect it, toggle an engine, or run a whole
   windowed capture in one round trip. *)
type profile_action = P_status | P_start | P_stop | P_capture of float

type profile_request = {
  paction : profile_action;
  pmode : Obs.Profile.mode;
  prate : float option; (* hz (cpu) or sampling rate (alloc) *)
  pformat : Obs.Profile.format;
  pfilter : string option; (* keep only samples under this trace id *)
}

type response =
  | Reply of reply
  | Stats_reply of { format : stats_format; body : string }
  | Events_reply of { body : string }
  | Health_reply of { body : string }
  | Explain_reply of { body : string }
  | Session_reply of session_reply
  | Profile_reply of { body : string }
  | Error of string

(* Admin frames ride the same stream as solve requests; a session is a
   sequence of either. *)
type incoming =
  | Solve of request
  | Stats of stats_format
  | Events of { count : int option; min_level : Obs.Event.level }
  | Health
  | Explain of string
  | Session of session_request
  | Profile of profile_request

let request_header = Printf.sprintf "request v%d" version
let stats_header = Printf.sprintf "stats v%d" version
let events_header = Printf.sprintf "events v%d" version
let health_header = Printf.sprintf "health v%d" version
let explain_header = Printf.sprintf "explain v%d" version
let session_header = Printf.sprintf "session v%d" version
let profile_header = Printf.sprintf "profile v%d" version
let response_header = Printf.sprintf "response v%d" version

let session_op_name = function
  | S_create _ -> "create"
  | S_add_jobs _ -> "add-jobs"
  | S_drop_jobs _ -> "drop-jobs"
  | S_resolve _ -> "resolve"
  | S_close -> "close"

let stats_format_to_string = function
  | Prometheus -> "prometheus"
  | Json -> "json"

let stats_format_of_string = function
  | "prometheus" -> Some Prometheus
  | "json" -> Some Json
  | _ -> None

let float_to_text x =
  if x = infinity then "inf" else Printf.sprintf "%.17g" x

(* --- frame reading ------------------------------------------------------ *)

let input_line_opt ic = try Some (String.trim (input_line ic)) with End_of_file -> None

(* First non-blank line, or None at EOF. *)
let rec read_header ic =
  match input_line_opt ic with
  | None -> None
  | Some "" -> read_header ic
  | Some line -> Some line

(* Body lines of the current frame, up to (excluding) the [end]
   terminator. [Error] if the stream ends mid-frame. *)
let read_body ic =
  let rec go acc =
    match input_line_opt ic with
    | None -> Result.Error "truncated frame: missing \"end\" terminator"
    | Some "end" -> Ok (List.rev acc)
    | Some line -> go (line :: acc)
  in
  go []

(* Skip the rest of a frame whose header was unacceptable, so the session
   can resynchronize on the next frame. *)
let drain_frame ic = ignore (read_body ic)

(* --- requests ----------------------------------------------------------- *)

let split_first line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

(* Session and trace ids travel on single lines of both directions, so
   keep them boring: short and made of unambiguous characters. *)
let check_id ~what id =
  let ok_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
    | _ -> false
  in
  if id = "" then Result.Error (Printf.sprintf "%s: must not be empty" what)
  else if String.length id > 64 then
    Result.Error (Printf.sprintf "%s: must be at most 64 characters" what)
  else if not (String.for_all ok_char id) then
    Result.Error
      (Printf.sprintf "%s: %S has characters outside [A-Za-z0-9._-]" what id)
  else Ok id

(* [trace <id>] or [trace <id>/<parent-span>]: the optional suffix is
   the client's open span id; the server-side root phase records it as
   its parent so the merged trace chains across the process boundary. *)
let parse_trace v =
  let ( let* ) = Result.bind in
  match String.index_opt v '/' with
  | None ->
      let* tid = check_id ~what:"trace" v in
      Ok { tid; parent = None }
  | Some i -> (
      let* tid = check_id ~what:"trace" (String.sub v 0 i) in
      let p = String.sub v (i + 1) (String.length v - i - 1) in
      match int_of_string_opt p with
      | Some s when s >= 0 -> Ok { tid; parent = Some s }
      | Some _ | None ->
          Result.Error
            (Printf.sprintf "trace: parent span %S must be an integer >= 0" p))

let trace_to_text { tid; parent } =
  match parent with None -> tid | Some p -> Printf.sprintf "%s/%d" tid p

let parse_request body =
  let solver = ref None in
  let deadline_ms = ref None in
  let trace = ref None in
  let rec fields = function
    | [] -> Result.Error "request has no instance block"
    | line :: rest -> (
        match split_first line with
        | "instance", "" ->
            let text = String.concat "\n" rest in
            Result.map_error Core.Instance_io.error_to_string
              (Result.map
                 (fun instance ->
                   {
                     solver = !solver;
                     deadline_ms = !deadline_ms;
                     trace = !trace;
                     instance;
                   })
                 (Core.Instance_io.of_string_result text))
        | "solver", v when v <> "" ->
            solver := Some v;
            fields rest
        | "trace", v -> (
            match parse_trace v with
            | Ok tc ->
                trace := Some tc;
                fields rest
            | Result.Error _ as e -> e)
        | "deadline_ms", v -> (
            match float_of_string_opt v with
            | Some d when d >= 0.0 ->
                deadline_ms := Some d;
                fields rest
            | Some _ | None ->
                Result.Error
                  (Printf.sprintf "deadline_ms: expected a number >= 0, got %S" v)
        )
        | "", _ -> fields rest
        | key, _ ->
            Result.Error (Printf.sprintf "unknown request field %S" key))
  in
  fields body

(* A stats frame's body is an optional [format prometheus|json] field. *)
let parse_stats body =
  let rec fields format = function
    | [] -> Ok (Stats format)
    | line :: rest -> (
        match split_first line with
        | "format", v -> (
            match stats_format_of_string v with
            | Some f -> fields f rest
            | None ->
                Result.Error
                  (Printf.sprintf "format: expected prometheus|json, got %S" v))
        | "", _ -> fields format rest
        | key, _ -> Result.Error (Printf.sprintf "unknown stats field %S" key))
  in
  fields Prometheus body

(* An events frame's body is an optional [count N] cap and an optional
   [level debug|info|warn|error] floor. *)
let parse_events body =
  let rec fields count min_level = function
    | [] -> Ok (Events { count; min_level })
    | line :: rest -> (
        match split_first line with
        | "count", v -> (
            match int_of_string_opt v with
            | Some n when n >= 1 -> fields (Some n) min_level rest
            | Some _ | None ->
                Result.Error
                  (Printf.sprintf "count: expected an integer >= 1, got %S" v))
        | "level", v -> (
            match Obs.Event.level_of_string v with
            | Some l -> fields count l rest
            | None ->
                Result.Error
                  (Printf.sprintf
                     "level: expected debug|info|warn|error, got %S" v))
        | "", _ -> fields count min_level rest
        | key, _ -> Result.Error (Printf.sprintf "unknown events field %S" key)
      )
  in
  fields None Obs.Event.Debug body

(* A health frame has no fields (yet); reject junk so a future field is
   not silently ignored by old servers. *)
let parse_health body =
  let rec fields = function
    | [] -> Ok Health
    | line :: rest -> (
        match split_first line with
        | "", _ -> fields rest
        | key, _ -> Result.Error (Printf.sprintf "unknown health field %S" key))
  in
  fields body

let check_sid sid = check_id ~what:"id" sid

(* An explain frame's body is a mandatory [id <trace-id>] field naming
   the trace/request whose phase tree the server should render. *)
let parse_explain body =
  let id = ref None in
  let rec fields = function
    | [] -> (
        match !id with
        | Some i -> Ok (Explain i)
        | None -> Result.Error "explain frame missing id")
    | line :: rest -> (
        match split_first line with
        | "id", v -> (
            match check_id ~what:"id" v with
            | Ok i ->
                id := Some i;
                fields rest
            | Result.Error _ as e -> e)
        | "", _ -> fields rest
        | key, _ -> Result.Error (Printf.sprintf "unknown explain field %S" key))
  in
  fields body

(* A profile frame's body: an optional [action status|start|stop|capture],
   [seconds F] (window length; implies capture when no action is given),
   [mode cpu|alloc], [rate F], [format collapsed|json], and [id
   <trace-id>] to keep only one request's samples. *)
let parse_profile body =
  let action = ref None in
  let seconds = ref None in
  let mode = ref Obs.Profile.Cpu in
  let rate = ref None in
  let format = ref Obs.Profile.Collapsed in
  let filter = ref None in
  let rec fields = function
    | [] -> (
        let paction =
          match (!action, !seconds) with
          | Some a, _ -> Ok a
          | None, Some s -> Ok (P_capture s)
          | None, None -> Ok P_status
        in
        match paction with
        | Result.Error _ as e -> e
        | Ok (P_capture _) when !seconds = None ->
            Result.Error "capture requires a seconds field"
        | Ok paction ->
            let paction =
              (* a seconds field upgrades a plain capture marker *)
              match (paction, !seconds) with
              | P_capture _, Some s -> P_capture s
              | a, _ -> a
            in
            Ok
              (Profile
                 {
                   paction;
                   pmode = !mode;
                   prate = !rate;
                   pformat = !format;
                   pfilter = !filter;
                 }))
    | line :: rest -> (
        match split_first line with
        | "action", v -> (
            match v with
            | "status" -> action := Some P_status; fields rest
            | "start" -> action := Some P_start; fields rest
            | "stop" -> action := Some P_stop; fields rest
            | "capture" -> action := Some (P_capture 0.0); fields rest
            | v ->
                Result.Error
                  (Printf.sprintf
                     "action: expected status|start|stop|capture, got %S" v))
        | "seconds", v -> (
            match float_of_string_opt v with
            | Some s when s > 0.0 && s <= 600.0 ->
                seconds := Some s;
                fields rest
            | Some _ | None ->
                Result.Error
                  (Printf.sprintf "seconds: expected 0 < s <= 600, got %S" v))
        | "mode", v -> (
            match Obs.Profile.mode_of_string v with
            | Ok m -> mode := m; fields rest
            | Result.Error e -> Result.Error e)
        | "rate", v -> (
            match float_of_string_opt v with
            | Some r when r > 0.0 -> rate := Some r; fields rest
            | Some _ | None ->
                Result.Error
                  (Printf.sprintf "rate: expected a number > 0, got %S" v))
        | "format", v -> (
            match Obs.Profile.format_of_string v with
            | Ok f -> format := f; fields rest
            | Result.Error e -> Result.Error e)
        | "id", v -> (
            match check_id ~what:"id" v with
            | Ok i -> filter := Some i; fields rest
            | Result.Error _ as e -> e)
        | "", _ -> fields rest
        | key, _ -> Result.Error (Printf.sprintf "unknown profile field %S" key))
  in
  fields body

let float_of_text s =
  match s with "inf" -> Some infinity | _ -> float_of_string_opt s

(* One [job] line of an add-jobs frame: space-separated [key=value]
   tokens — [size=5 class=1], optionally [ptimes=1,2,inf] (unrelated) or
   [eligible=1,0,1] (restricted). *)
let parse_job_spec rest =
  let ( let* ) = Result.bind in
  let tokens = String.split_on_char ' ' rest |> List.filter (( <> ) "") in
  let parse_floats v =
    let parts = String.split_on_char ',' v in
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | s :: rest -> (
          match float_of_text s with
          | Some x -> go (x :: acc) rest
          | None ->
              Result.Error (Printf.sprintf "job: ptimes entry %S not a number" s))
    in
    go [] parts
  in
  let parse_bools v =
    let parts = String.split_on_char ',' v in
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | "1" :: rest -> go (true :: acc) rest
      | "0" :: rest -> go (false :: acc) rest
      | s :: _ ->
          Result.Error
            (Printf.sprintf "job: eligible entry %S must be 0 or 1" s)
    in
    go [] parts
  in
  let rec fields size cls ptimes eligible = function
    | [] -> (
        match (size, cls) with
        | Some nsize, Some nclass ->
            Ok
              {
                Core.Instance.nsize;
                nclass;
                nptimes = ptimes;
                neligible = eligible;
              }
        | None, _ -> Result.Error "job: missing size=..."
        | _, None -> Result.Error "job: missing class=...")
    | tok :: rest -> (
        match String.index_opt tok '=' with
        | None ->
            Result.Error (Printf.sprintf "job: expected key=value, got %S" tok)
        | Some i -> (
            let k = String.sub tok 0 i in
            let v = String.sub tok (i + 1) (String.length tok - i - 1) in
            match k with
            | "size" -> (
                match float_of_text v with
                | Some x when x >= 0.0 && x < infinity ->
                    fields (Some x) cls ptimes eligible rest
                | Some _ | None ->
                    Result.Error
                      (Printf.sprintf
                         "job: size must be a finite number >= 0, got %S" v))
            | "class" -> (
                match int_of_string_opt v with
                | Some k when k >= 0 -> fields size (Some k) ptimes eligible rest
                | Some _ | None ->
                    Result.Error
                      (Printf.sprintf
                         "job: class must be an integer >= 0, got %S" v))
            | "ptimes" ->
                let* p = parse_floats v in
                fields size cls (Some p) eligible rest
            | "eligible" ->
                let* e = parse_bools v in
                fields size cls ptimes (Some e) rest
            | _ -> Result.Error (Printf.sprintf "job: unknown key %S" k)))
  in
  fields None None None None tokens

(* A session frame: [op] and [id] fields followed by the op's payload —
   an [instance] block (create), [job] lines (add-jobs), [jobs] index
   lines (drop-jobs) or an optional [deadline_ms] (resolve). *)
let parse_session body =
  let ( let* ) = Result.bind in
  let op = ref None in
  let sid = ref None in
  let deadline_ms = ref None in
  let added = ref [] in
  let dropped = ref [] in
  let instance = ref None in
  let trace = ref None in
  let rec fields = function
    | [] -> Ok ()
    | line :: rest -> (
        match split_first line with
        | "op", v when v <> "" ->
            op := Some v;
            fields rest
        | "id", v ->
            let* id = check_sid v in
            sid := Some id;
            fields rest
        | "trace", v ->
            let* tc = parse_trace v in
            trace := Some tc;
            fields rest
        | "instance", "" ->
            let text = String.concat "\n" rest in
            let* t =
              Result.map_error Core.Instance_io.error_to_string
                (Core.Instance_io.of_string_result text)
            in
            instance := Some t;
            Ok ()
        | "job", v ->
            let* j = parse_job_spec v in
            added := j :: !added;
            fields rest
        | "jobs", v ->
            let words =
              String.split_on_char ' ' v |> List.filter (( <> ) "")
            in
            let* ids =
              try
                Ok
                  (List.map
                     (fun w ->
                       match int_of_string_opt w with
                       | Some i when i >= 0 -> i
                       | _ -> failwith w)
                     words)
              with Failure w ->
                Result.Error
                  (Printf.sprintf "jobs: expected integers >= 0, got %S" w)
            in
            dropped := !dropped @ ids;
            fields rest
        | "deadline_ms", v -> (
            match float_of_text v with
            | Some d when d >= 0.0 ->
                deadline_ms := Some d;
                fields rest
            | Some _ | None ->
                Result.Error
                  (Printf.sprintf "deadline_ms: expected a number >= 0, got %S"
                     v))
        | "", _ -> fields rest
        | key, _ -> Result.Error (Printf.sprintf "unknown session field %S" key)
        )
  in
  let* () = fields body in
  let* sid =
    match !sid with
    | Some s -> Ok s
    | None -> Result.Error "session frame missing id"
  in
  let no_payload op_name =
    if !instance <> None then
      Result.Error (Printf.sprintf "%s takes no instance block" op_name)
    else if !added <> [] then
      Result.Error (Printf.sprintf "%s takes no job lines" op_name)
    else if !dropped <> [] then
      Result.Error (Printf.sprintf "%s takes no jobs line" op_name)
    else Ok ()
  in
  let* op =
    match !op with
    | None -> Result.Error "session frame missing op"
    | Some "create" -> (
        match !instance with
        | Some t when !added = [] && !dropped = [] -> Ok (S_create t)
        | Some _ -> Result.Error "create takes only an instance block"
        | None -> Result.Error "create needs an instance block")
    | Some "add-jobs" -> (
        match List.rev !added with
        | [] -> Result.Error "add-jobs needs at least one job line"
        | js when !instance = None && !dropped = [] -> Ok (S_add_jobs js)
        | _ -> Result.Error "add-jobs takes only job lines")
    | Some "drop-jobs" -> (
        match !dropped with
        | [] -> Result.Error "drop-jobs needs a jobs line"
        | ids when !instance = None && !added = [] -> Ok (S_drop_jobs ids)
        | _ -> Result.Error "drop-jobs takes only jobs lines")
    | Some "resolve" ->
        let* () = no_payload "resolve" in
        Ok (S_resolve { deadline_ms = !deadline_ms })
    | Some "close" ->
        let* () = no_payload "close" in
        Ok S_close
    | Some v ->
        Result.Error
          (Printf.sprintf
             "op: expected create|add-jobs|drop-jobs|resolve|close, got %S" v)
  in
  Ok (Session { sid; op; trace = !trace })

(* --- frames ------------------------------------------------------------- *)

(* One assembled frame, transport-agnostic: the header line plus the body
   lines up to (excluding) the [end] terminator. The channel readers and
   the incremental parser both reduce to this before dispatching on the
   header, so every transport shares one parse path. *)
type frame = { fheader : string; fbody : string list }

let bad_request_header header =
  Printf.sprintf
    "bad request header %S (expected %S, %S, %S, %S, %S, %S or %S)" header
    request_header stats_header events_header health_header explain_header
    session_header profile_header

let known_incoming_header header =
  header = request_header || header = stats_header || header = events_header
  || header = health_header || header = explain_header
  || header = session_header || header = profile_header

let incoming_of_frame { fheader = header; fbody = body } =
  if header = request_header then
    Result.map (fun req -> Solve req) (parse_request body)
  else if header = stats_header then parse_stats body
  else if header = events_header then parse_events body
  else if header = health_header then parse_health body
  else if header = explain_header then parse_explain body
  else if header = session_header then parse_session body
  else if header = profile_header then parse_profile body
  else Result.Error (bad_request_header header)

let read_incoming ic =
  match read_header ic with
  | None -> Ok None
  | Some header when known_incoming_header header -> (
      match read_body ic with
      | Result.Error _ as e -> e
      | Ok body -> (
          match incoming_of_frame { fheader = header; fbody = body } with
          | Ok incoming -> Ok (Some incoming)
          | Result.Error _ as e -> e))
  | Some header ->
      drain_frame ic;
      Result.Error (bad_request_header header)

(* --- incremental parsing ------------------------------------------------- *)

(* Readiness-driven transports (the mux event loop) own raw byte
   buffers, not channels: bytes arrive in arbitrary chunks, possibly
   splitting a line — or the [payload] marker — anywhere. The
   incremental parser accumulates bytes, re-assembles the same
   trimmed-line stream [input_line]+[String.trim] would produce, and
   yields whole frames for {!incoming_of_frame}/{!response_of_frame},
   so decode and resync behavior are identical to the channel path by
   construction. *)
module Incremental = struct
  type t = {
    mutable data : Bytes.t;
    mutable len : int;  (* valid bytes in [data] *)
    mutable pos : int;  (* consumed prefix *)
    (* open frame: header line + body lines so far (reversed) *)
    mutable cur : (string * string list) option;
  }

  let create () = { data = Bytes.create 4096; len = 0; pos = 0; cur = None }

  let feed t s =
    let n = String.length s in
    (* reclaim the consumed prefix before growing the buffer *)
    if t.pos > 0 && t.len + n > Bytes.length t.data then begin
      Bytes.blit t.data t.pos t.data 0 (t.len - t.pos);
      t.len <- t.len - t.pos;
      t.pos <- 0
    end;
    if t.len + n > Bytes.length t.data then begin
      let cap = ref (max 8 (2 * Bytes.length t.data)) in
      while t.len + n > !cap do
        cap := 2 * !cap
      done;
      let data = Bytes.create !cap in
      Bytes.blit t.data 0 data 0 t.len;
      t.data <- data
    end;
    Bytes.blit_string s 0 t.data t.len n;
    t.len <- t.len + n

  (* matches the channel path: a stream that ends without a trailing
     newline still delivers its tail bytes as one final line *)
  let finish t = if t.len > t.pos then feed t "\n"

  let in_frame t = t.cur <> None
  let buffered t = t.len - t.pos

  let next_line t =
    let rec find i =
      if i >= t.len then None
      else if Bytes.get t.data i = '\n' then Some i
      else find (i + 1)
    in
    match find t.pos with
    | None -> None
    | Some i ->
        let line = Bytes.sub_string t.data t.pos (i - t.pos) in
        t.pos <- i + 1;
        Some (String.trim line)

  let rec next_frame t =
    match next_line t with
    | None -> None
    | Some line -> (
        match t.cur with
        | None ->
            (* blank lines between frames are ignored, like read_header *)
            if line = "" then next_frame t
            else begin
              t.cur <- Some (line, []);
              next_frame t
            end
        | Some (header, lines) ->
            if line = "end" then begin
              t.cur <- None;
              Some { fheader = header; fbody = List.rev lines }
            end
            else begin
              t.cur <- Some (header, line :: lines);
              next_frame t
            end)

  let truncated_error = "truncated frame: missing \"end\" terminator"
end

let read_request ic =
  match read_incoming ic with
  | Ok None -> Ok None
  | Ok (Some (Solve req)) -> Ok (Some req)
  | Ok (Some (Stats _)) ->
      Result.Error
        (Printf.sprintf "unexpected %S frame (expected %S)" stats_header
           request_header)
  | Ok (Some (Events _)) ->
      Result.Error
        (Printf.sprintf "unexpected %S frame (expected %S)" events_header
           request_header)
  | Ok (Some Health) ->
      Result.Error
        (Printf.sprintf "unexpected %S frame (expected %S)" health_header
           request_header)
  | Ok (Some (Explain _)) ->
      Result.Error
        (Printf.sprintf "unexpected %S frame (expected %S)" explain_header
           request_header)
  | Ok (Some (Session _)) ->
      Result.Error
        (Printf.sprintf "unexpected %S frame (expected %S)" session_header
           request_header)
  | Ok (Some (Profile _)) ->
      Result.Error
        (Printf.sprintf "unexpected %S frame (expected %S)" profile_header
           request_header)
  | Result.Error _ as e -> e

let write_request oc (req : request) =
  output_string oc request_header;
  output_char oc '\n';
  Option.iter (fun s -> Printf.fprintf oc "solver %s\n" s) req.solver;
  Option.iter
    (fun d -> Printf.fprintf oc "deadline_ms %s\n" (float_to_text d))
    req.deadline_ms;
  Option.iter
    (fun tc -> Printf.fprintf oc "trace %s\n" (trace_to_text tc))
    req.trace;
  output_string oc "instance\n";
  output_string oc (Core.Instance_io.to_string req.instance);
  output_string oc "end\n";
  flush oc

let write_stats_request oc format =
  output_string oc stats_header;
  output_char oc '\n';
  Printf.fprintf oc "format %s\n" (stats_format_to_string format);
  output_string oc "end\n";
  flush oc

let write_events_request ?count ?level oc =
  output_string oc events_header;
  output_char oc '\n';
  Option.iter (fun n -> Printf.fprintf oc "count %d\n" n) count;
  Option.iter
    (fun l -> Printf.fprintf oc "level %s\n" (Obs.Event.level_to_string l))
    level;
  output_string oc "end\n";
  flush oc

let write_health_request oc =
  output_string oc health_header;
  output_char oc '\n';
  output_string oc "end\n";
  flush oc

let profile_action_name = function
  | P_status -> "status"
  | P_start -> "start"
  | P_stop -> "stop"
  | P_capture _ -> "capture"

let write_profile_request oc (pr : profile_request) =
  output_string oc profile_header;
  output_char oc '\n';
  Printf.fprintf oc "action %s\n" (profile_action_name pr.paction);
  (match pr.paction with
  | P_capture s -> Printf.fprintf oc "seconds %s\n" (float_to_text s)
  | P_status | P_start | P_stop -> ());
  Printf.fprintf oc "mode %s\n" (Obs.Profile.mode_to_string pr.pmode);
  Option.iter (fun r -> Printf.fprintf oc "rate %s\n" (float_to_text r)) pr.prate;
  Printf.fprintf oc "format %s\n" (Obs.Profile.format_to_string pr.pformat);
  Option.iter (fun i -> Printf.fprintf oc "id %s\n" i) pr.pfilter;
  output_string oc "end\n";
  flush oc

let write_explain_request oc id =
  output_string oc explain_header;
  output_char oc '\n';
  Printf.fprintf oc "id %s\n" id;
  output_string oc "end\n";
  flush oc

let bools_to_text e =
  String.concat "," (List.map (fun b -> if b then "1" else "0") (Array.to_list e))

let floats_to_text p =
  String.concat "," (List.map float_to_text (Array.to_list p))

let write_session_request oc (r : session_request) =
  output_string oc session_header;
  output_char oc '\n';
  Printf.fprintf oc "op %s\n" (session_op_name r.op);
  Printf.fprintf oc "id %s\n" r.sid;
  Option.iter
    (fun tc -> Printf.fprintf oc "trace %s\n" (trace_to_text tc))
    r.trace;
  (match r.op with
  | S_create instance ->
      output_string oc "instance\n";
      output_string oc (Core.Instance_io.to_string instance)
  | S_add_jobs jobs ->
      List.iter
        (fun (j : Core.Instance.new_job) ->
          Printf.fprintf oc "job size=%s class=%d" (float_to_text j.nsize)
            j.nclass;
          Option.iter
            (fun p -> Printf.fprintf oc " ptimes=%s" (floats_to_text p))
            j.nptimes;
          Option.iter
            (fun e -> Printf.fprintf oc " eligible=%s" (bools_to_text e))
            j.neligible;
          output_char oc '\n')
        jobs
  | S_drop_jobs ids ->
      output_string oc "jobs";
      List.iter (fun i -> Printf.fprintf oc " %d" i) ids;
      output_char oc '\n'
  | S_resolve { deadline_ms } ->
      Option.iter
        (fun d -> Printf.fprintf oc "deadline_ms %s\n" (float_to_text d))
        deadline_ms
  | S_close -> ());
  output_string oc "end\n";
  flush oc

(* --- responses ---------------------------------------------------------- *)

let response_to_string response =
  let buf = Buffer.create 256 in
  Buffer.add_string buf response_header;
  Buffer.add_char buf '\n';
  let payload body =
    Buffer.add_string buf "payload\n";
    Buffer.add_string buf body;
    if body <> "" && body.[String.length body - 1] <> '\n' then
      Buffer.add_char buf '\n'
  in
  (match response with
  | Error message ->
      Buffer.add_string buf "status error\n";
      (* the message must stay a single line to preserve framing *)
      let message =
        String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) message
      in
      Printf.bprintf buf "error %s\n" message
  | Stats_reply { format; body } ->
      Buffer.add_string buf "status stats\n";
      Printf.bprintf buf "format %s\n" (stats_format_to_string format);
      (* the payload is raw exposition text: its lines never consist of
         the bare word "end" (Prometheus lines carry a space, JSON lines
         punctuation), so the frame terminator stays unambiguous *)
      payload body
  | Events_reply { body } ->
      Buffer.add_string buf "status events\n";
      (* each payload line is a JSON object starting with '{', never the
         bare frame terminator *)
      payload body
  | Health_reply { body } ->
      Buffer.add_string buf "status health\n";
      (* each payload line starts with a known key (status, meter, slo,
         heartbeat, ...) followed by a space, never the bare "end" *)
      payload body
  | Explain_reply { body } ->
      Buffer.add_string buf "status explain\n";
      (* each payload line starts with a known key ([trace] or [phase])
         followed by a space, never the bare "end" *)
      payload body
  | Profile_reply { body } ->
      Buffer.add_string buf "status profile\n";
      (* each payload line carries a space (collapsed lines are "stack
         weight", status lines "key k=v ...", JSON objects punctuation),
         never the bare "end" terminator *)
      payload body
  | Session_reply s ->
      Buffer.add_string buf "status session\n";
      Printf.bprintf buf "id %s\n" s.sid;
      Printf.bprintf buf "op %s\n" s.op;
      (* one trace line per response: the echo lives on the session
         record, the embedded solve reply (when present) rides along *)
      Option.iter (fun tr -> Printf.bprintf buf "trace %s\n" tr) s.trace;
      Printf.bprintf buf "generation %d\n" s.generation;
      Printf.bprintf buf "jobs %d\n" s.jobs;
      Option.iter (fun m -> Printf.bprintf buf "mode %s\n" m) s.mode;
      Option.iter
        (fun (r : reply) ->
          Printf.bprintf buf "solver %s\n" r.solver;
          Printf.bprintf buf "cache %s\n" (if r.cache_hit then "hit" else "miss");
          Printf.bprintf buf "degraded %b\n" r.degraded;
          Printf.bprintf buf "makespan %g\n" r.makespan;
          Printf.bprintf buf "elapsed_us %d\n" r.elapsed_us;
          Buffer.add_string buf "assignment";
          Array.iter (fun i -> Printf.bprintf buf " %d" i) r.assignment;
          Buffer.add_char buf '\n')
        s.solve
  | Reply r ->
      Buffer.add_string buf "status ok\n";
      Option.iter (fun tr -> Printf.bprintf buf "trace %s\n" tr) r.trace;
      Printf.bprintf buf "solver %s\n" r.solver;
      Printf.bprintf buf "cache %s\n" (if r.cache_hit then "hit" else "miss");
      Printf.bprintf buf "degraded %b\n" r.degraded;
      Printf.bprintf buf "makespan %g\n" r.makespan;
      Printf.bprintf buf "elapsed_us %d\n" r.elapsed_us;
      Buffer.add_string buf "assignment";
      Array.iter (fun i -> Printf.bprintf buf " %d" i) r.assignment;
      Buffer.add_char buf '\n');
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let write_response oc response =
  output_string oc (response_to_string response);
  flush oc

let parse_reply fields =
  let find key = List.assoc_opt key fields in
  let require key =
    match find key with
    | Some v -> Ok v
    | None -> Result.Error (Printf.sprintf "response missing field %S" key)
  in
  let ( let* ) = Result.bind in
  let* solver = require "solver" in
  let* cache = require "cache" in
  let* cache_hit =
    match cache with
    | "hit" -> Ok true
    | "miss" -> Ok false
    | v -> Result.Error (Printf.sprintf "cache: expected hit|miss, got %S" v)
  in
  let* degraded_s = require "degraded" in
  let* degraded =
    match bool_of_string_opt degraded_s with
    | Some b -> Ok b
    | None ->
        Result.Error (Printf.sprintf "degraded: expected a bool, got %S" degraded_s)
  in
  let* makespan_s = require "makespan" in
  let* makespan =
    match float_of_string_opt makespan_s with
    | Some x -> Ok x
    | None ->
        Result.Error (Printf.sprintf "makespan: expected a number, got %S" makespan_s)
  in
  let* elapsed_s = require "elapsed_us" in
  let* elapsed_us =
    match int_of_string_opt elapsed_s with
    | Some x -> Ok x
    | None ->
        Result.Error
          (Printf.sprintf "elapsed_us: expected an integer, got %S" elapsed_s)
  in
  let* assignment_s = require "assignment" in
  let* assignment =
    let words =
      String.split_on_char ' ' assignment_s |> List.filter (( <> ) "")
    in
    try Ok (Array.of_list (List.map int_of_string words))
    with Failure _ -> Result.Error "assignment: expected integers"
  in
  let trace = find "trace" in
  Ok { solver; cache_hit; degraded; makespan; elapsed_us; assignment; trace }

let bad_response_header header =
  Printf.sprintf "bad response header %S (expected %S)" header response_header

(* the payload is every line after the marker, verbatim; the writer
   guarantees a trailing newline, restored here so bodies roundtrip *)
let payload_after_marker body =
  let rec after = function
    | [] -> None
    | "payload" :: rest -> Some rest
    | _ :: rest -> after rest
  in
  match after body with
  | None -> None
  | Some [] -> Some ""
  | Some ls -> Some (String.concat "\n" ls ^ "\n")

let response_of_frame { fheader = header; fbody = body } =
  if header <> response_header then Result.Error (bad_response_header header)
  else
    let fields = List.map split_first body in
    match List.assoc_opt "status" fields with
    | Some "error" ->
        Ok
          (Error
             (Option.value ~default:"unspecified error"
                (List.assoc_opt "error" fields)))
    | Some "ok" -> (
        match parse_reply fields with
        | Ok r -> Ok (Reply r)
        | Result.Error e -> Result.Error e)
    | Some "stats" -> (
        let format =
          Option.bind (List.assoc_opt "format" fields) stats_format_of_string
        in
        match format with
        | None -> Result.Error "stats response missing format"
        | Some format -> (
            (* the payload is every line after the marker, verbatim *)
            match payload_after_marker body with
            | None -> Result.Error "stats response missing payload"
            | Some body -> Ok (Stats_reply { format; body })))
    | Some "events" -> (
        match payload_after_marker body with
        | None -> Result.Error "events response missing payload"
        | Some body -> Ok (Events_reply { body }))
    | Some "health" -> (
        match payload_after_marker body with
        | None -> Result.Error "health response missing payload"
        | Some body -> Ok (Health_reply { body }))
    | Some "explain" -> (
        match payload_after_marker body with
        | None -> Result.Error "explain response missing payload"
        | Some body -> Ok (Explain_reply { body }))
    | Some "profile" -> (
        match payload_after_marker body with
        | None -> Result.Error "profile response missing payload"
        | Some body -> Ok (Profile_reply { body }))
    | Some "session" ->
        let ( let* ) = Result.bind in
        let require key =
          match List.assoc_opt key fields with
          | Some v -> Ok v
          | None ->
              Result.Error
                (Printf.sprintf "session response missing field %S" key)
        in
        let int_field key =
          let* v = require key in
          match int_of_string_opt v with
          | Some x -> Ok x
          | None ->
              Result.Error
                (Printf.sprintf "%s: expected an integer, got %S" key v)
        in
        let* sid = require "id" in
        let* op = require "op" in
        let* generation = int_field "generation" in
        let* jobs = int_field "jobs" in
        let mode = List.assoc_opt "mode" fields in
        let trace = List.assoc_opt "trace" fields in
        let* solve =
          if mode = None then Ok None
          else
            let* r = parse_reply fields in
            Ok (Some r)
        in
        Ok (Session_reply { sid; op; generation; jobs; mode; solve; trace })
    | Some v -> Result.Error (Printf.sprintf "unknown status %S" v)
    | None -> Result.Error "response missing status"

let read_response ic =
  match read_header ic with
  | None -> Ok None
  | Some header when header = response_header -> (
      match read_body ic with
      | Result.Error _ as e -> e
      | Ok body -> (
          match response_of_frame { fheader = header; fbody = body } with
          | Ok response -> Ok (Some response)
          | Result.Error _ as e -> e))
  | Some header ->
      drain_frame ic;
      Result.Error (bad_response_header header)
