(** Versioned, line-delimited request/response wire format.

    A session is a sequence of requests on one byte stream; the server
    answers each with exactly one response. Both directions are plain
    text, one field per line, framed by a versioned header line and a
    bare [end] terminator, so sessions are scriptable with a heredoc and
    cram-testable. Protocol version: {!version}.

    Request:
    {v
    request v1
    solver auto            # optional: auto|greedy|lpt|portfolio|exact
    deadline_ms 50         # optional time budget
    trace lg7.3/12         # optional client trace id [/parent span id]
    instance               # starts the inline instance block
    env uniform            # ... Core.Instance_io text ...
    end
    v}

    Response (success; [trace] echoes the id the request was served
    under — the client's propagated id, or a server-minted [r<N>]):
    {v
    response v1
    status ok
    trace lg7.3
    solver exact
    cache hit              # hit|miss
    degraded false
    makespan 117.06
    elapsed_us 1834
    assignment 0 1 1 0 2 1
    end
    v}

    Response (error — malformed requests never crash the session):
    {v
    response v1
    status error
    error line 4: setups: expected 2 values, got 1
    end
    v}

    Admin frame — ask the server for its live metrics, answered in-band
    on the same stream:
    {v
    stats v1
    format prometheus      # optional: prometheus|json (default prometheus)
    end
    v}

    answered with the exposition text after a [payload] marker (the
    payload's lines are Prometheus or JSON exposition and therefore
    never the bare frame terminator):
    {v
    response v1
    status stats
    format prometheus
    payload
    # TYPE serve_requests counter
    serve_requests{status="ok"} 41
    ...
    end
    v}

    A second admin frame asks for the flight recorder's retained events
    ({!Obs.Event}), newest last, as JSON lines after the [payload]
    marker (each line starts with ['{'], so the [end] terminator stays
    unambiguous):
    {v
    events v1
    count 50               # optional: keep only the last N events
    level info             # optional floor: debug|info|warn|error
    end
    v}

    answered with:
    {v
    response v1
    status events
    payload
    {"ts_us":...,"level":"info","name":"serve.request","req":"r3",...}
    ...
    end
    v}

    A third admin frame asks for the server's composite health: status
    lattice, saturation meters, SLO burn rates and per-domain heartbeat
    ages ({!Obs.Health} / {!Obs.Slo}). The frame has no fields:
    {v
    health v1
    end
    v}

    answered with a line-oriented payload — [status]/[liveness] lines
    plus repeated [meter]/[slo]/[heartbeat] lines of [k=v] tokens, each
    starting with a known key and a space so the [end] terminator stays
    unambiguous:
    {v
    response v1
    status health
    payload
    status ok
    liveness ok
    task_budget_s 30
    uptime_s 12.4
    meter name=pool.queue fill=0.000
    slo name=availability window=5m target=0.9900 ... burn=0.00
    heartbeat domain=0 state=waiting task=pool.task req=- ...
    end
    v}

    An explain frame asks for the phase tree of one recent request by
    its trace/request id (answered from {!Obs.Phase}'s bounded rings, so
    only the recent past is explainable):
    {v
    explain v1
    id lg7.3
    end
    v}

    answered with one [phase] line per retained phase after a [trace]
    header line (k=v tokens; [detail] last since it may contain spaces):
    {v
    response v1
    status explain
    payload
    trace id=lg7.3 spans=9
    phase depth=0 name=serve.request dur_us=1834.2 alloc_b=8864 start_us=... detail=
    phase depth=1 name=serve.dispatch dur_us=1702.0 ...
    end
    v}

    A further frame kind drives long-lived {e scheduling sessions}: a
    client creates a session from an instance, streams job
    additions/removals, and asks for a fresh schedule after each delta
    (answered by incremental repair server-side; see [Serve.Session]).
    All five ops share the header and the [op]/[id] fields:
    {v
    session v1
    op create              # create|add-jobs|drop-jobs|resolve|close
    id build-7             # client-chosen, [A-Za-z0-9._-]{1,64}
    instance               # create only: inline Instance_io block
    env uniform
    ...
    end
    v}

    [add-jobs] carries one [job] line per new job — [size=]/[class=]
    key=value tokens, plus [ptimes=p1,p2,...] (unrelated environment
    only; [inf] allowed) or [eligible=1,0,...] (restricted only):
    {v
    session v1
    op add-jobs
    id build-7
    job size=5 class=1
    job size=2 class=0
    end
    v}

    [drop-jobs] carries the current job indices to remove ([jobs 3 7]);
    surviving jobs are renumbered to stay dense, in increasing order.
    [resolve] takes an optional [deadline_ms] (a budget for the full
    re-solve when repair drifted too far); [close] has no payload.
    Every op is answered with [status session] echoing [id]/[op] plus
    the session's [generation] (mutation counter) and [jobs] count;
    [resolve] replies additionally carry a [mode]
    ([repair|fallback|full|cache] — how the schedule was obtained) and
    the usual solve-reply fields:
    {v
    response v1
    status session
    id build-7
    op resolve
    generation 3
    jobs 12
    mode repair
    solver incremental-repair
    cache miss
    degraded false
    makespan 117.06
    elapsed_us 210
    assignment 0 1 1 0 2 1 ...
    end
    v}

    A profile frame drives the in-process sampling profiler
    ({!Obs.Profile}) over the same stream: [action status|start|stop]
    inspects or toggles an engine, while a [seconds] field (action
    [capture], or no action at all) runs a whole windowed capture —
    start, sample for the window, aggregate, stop — in one round trip:
    {v
    profile v1
    action capture
    seconds 5
    mode cpu               # cpu|alloc, default cpu
    rate 99                # hz (cpu) / sampling rate (alloc); optional
    format collapsed       # collapsed|json, default collapsed
    id lg1.3               # optional: keep only this request's samples
    end
    v}

    answered with [status profile] and a payload of collapsed-stack
    lines ([frame;frame;frame weight]) or JSON objects; [status]/
    [start]/[stop] answers carry the profiler's [engine]/[totals]
    status lines instead (stop additionally returns the retained
    samples of the engine it disarmed):
    {v
    response v1
    status profile
    payload
    Schedtool.solve;Serve__Dispatch.run;Algos__Exact.solve 41
    end
    v}

    Blank lines between requests are ignored; [#] comments are allowed
    inside the instance block (they are part of the [Instance_io]
    format). *)

val version : int

type trace_ctx = { tid : string; parent : int option }
(** Client-propagated trace context, carried by an optional
    [trace <id>[/<parent-span>]] field on solve and session frames
    (W3C-traceparent-flavored). [tid] uses the session-id charset
    ([A-Za-z0-9._-]{1,64}); [parent] is the client's open span id, which
    the server installs as the parent link of its root phase so merged
    traces chain across the process boundary. The server adopts [tid] as
    its ambient request context (instead of minting [r<N>]) and every
    reply echoes the adopted id on a [trace] line. *)

type request = {
  solver : string option;
  deadline_ms : float option;
  trace : trace_ctx option;
  instance : Core.Instance.t;
}

type reply = {
  solver : string;
  cache_hit : bool;
  degraded : bool;
  makespan : float;
  elapsed_us : int;
  assignment : int array;
  trace : string option;
      (** the trace/request id the server served this under — the
          client's id when one was propagated, a minted [r<N>] otherwise *)
}

type stats_format = Prometheus | Json

(** One mutation or query of a scheduling session. *)
type session_op =
  | S_create of Core.Instance.t  (** open a session on a base instance *)
  | S_add_jobs of Core.Instance.new_job list
      (** append jobs (classes must already exist) *)
  | S_drop_jobs of int list  (** remove jobs by current index *)
  | S_resolve of { deadline_ms : float option }
      (** produce a schedule of the current instance; the deadline only
          applies when the server falls back to a full solve *)
  | S_close  (** discard the session *)

type session_request = {
  sid : string;
  op : session_op;
  trace : trace_ctx option;  (** see {!trace_ctx}; tags the lifecycle *)
}

type session_reply = {
  sid : string;
  op : string;  (** echo of the request's op name *)
  generation : int;  (** mutations applied since create *)
  jobs : int;  (** current number of jobs *)
  mode : string option;
      (** resolve only: [repair|fallback|full|cache] — how the schedule
          was obtained *)
  solve : reply option;  (** resolve only: the schedule itself *)
  trace : string option;  (** the trace id the op was served under *)
}

type profile_action =
  | P_status  (** report engine state and sample totals *)
  | P_start  (** arm an engine (error if one is running) *)
  | P_stop  (** disarm and return the retained samples *)
  | P_capture of float
      (** start, sample for this many seconds, aggregate, stop — one
          round trip *)

type profile_request = {
  paction : profile_action;
  pmode : Obs.Profile.mode;  (** engine: CPU timer or Gc.Memprof *)
  prate : float option;
      (** hz for cpu, per-word sampling rate for alloc; engine default
          when absent *)
  pformat : Obs.Profile.format;  (** payload rendering *)
  pfilter : string option;
      (** keep only samples recorded under this trace/request id *)
}

type response =
  | Reply of reply
  | Stats_reply of { format : stats_format; body : string }
      (** exposition text from {!Obs.Expo}, answered to a stats frame *)
  | Events_reply of { body : string }
      (** flight-recorder events as JSON lines, answered to an events
          frame *)
  | Health_reply of { body : string }
      (** line-oriented health snapshot (status, meters, SLO burn rates,
          heartbeats), answered to a health frame *)
  | Explain_reply of { body : string }
      (** one request's phase tree as line-oriented records, answered to
          an explain frame: a [trace id=... spans=N] header line, then
          one [phase depth=... name=... dur_us=... alloc_b=...
          start_us=... detail=...] line per retained phase, in start
          order *)
  | Session_reply of session_reply
      (** acknowledgement of a session op (with the schedule, for
          resolve) *)
  | Profile_reply of { body : string }
      (** profiler payload, answered to a profile frame: collapsed-stack
          or JSON-object lines for capture/stop, [engine]/[totals]
          status lines for status/start *)
  | Error of string

type incoming =
  | Solve of request
  | Stats of stats_format
  | Events of { count : int option; min_level : Obs.Event.level }
      (** [count]: keep only the last N events; [min_level]: severity
          floor, defaults to [Debug] (everything retained) *)
  | Health  (** composite health/SLO snapshot request (no fields) *)
  | Explain of string
      (** phase-tree request for one trace/request id still retained in
          the phase recorder ({!Obs.Phase}) *)
  | Session of session_request  (** a session op (see {!session_op}) *)
  | Profile of profile_request
      (** a profiler action (see {!profile_action}) *)
(** One frame of a session: a solve request or an admin frame. *)

val session_op_name : session_op -> string
(** Wire name of an op: [create], [add-jobs], [drop-jobs], [resolve] or
    [close]. *)

type frame = { fheader : string; fbody : string list }
(** One assembled frame, transport-agnostic: the header line plus the
    body lines up to (excluding) the [end] terminator. The channel
    readers and {!Incremental} both reduce to this before dispatching on
    the header, so every transport shares one parse path. *)

val incoming_of_frame : frame -> (incoming, string) result
(** Decode an assembled frame as a request/admin frame; [Error] on an
    unknown header or a malformed body. *)

val response_of_frame : frame -> (response, string) result
(** Decode an assembled frame as a response; [Error] on a header other
    than [response v1] or a malformed body. *)

val response_to_string : response -> string
(** Serialize a response to its exact wire bytes (the bytes
    {!write_response} writes), for transports that own their output
    buffers. *)

(** Incremental frame assembly for readiness-driven transports (the mux
    event loop): bytes arrive in arbitrary chunks, possibly splitting a
    line — or the [payload] marker — anywhere. The parser accumulates
    bytes and re-assembles the same trimmed-line stream
    [input_line]+[String.trim] would produce, so decode and resync
    behavior are identical to the channel path by construction. *)
module Incremental : sig
  type t

  val create : unit -> t

  val feed : t -> string -> unit
  (** Append a chunk of received bytes (any split is fine). *)

  val next_frame : t -> frame option
  (** Pop the next complete frame, if the buffer holds one. Call in a
      loop after each {!feed} — one chunk can complete several pipelined
      frames. *)

  val finish : t -> unit
  (** Signal end-of-stream: a tail without a trailing newline is
      delivered as a final line, matching [input_line]. *)

  val in_frame : t -> bool
  (** A frame header has been read but its [end] terminator has not —
      after {!finish} + a draining {!next_frame} loop, this means the
      stream was cut mid-frame ({!truncated_error}). *)

  val buffered : t -> int
  (** Bytes received but not yet consumed into frames. *)

  val truncated_error : string
  (** The channel path's message for a frame cut before [end]. *)
end

val read_incoming : in_channel -> (incoming option, string) result
(** Read one frame of either kind. [Ok None] is clean end-of-stream (no
    frame started); [Error] is a malformed frame — the stream is
    consumed up to the frame's [end] terminator (or EOF) so the session
    can continue with the next frame. *)

val read_request : in_channel -> (request option, string) result
(** {!read_incoming} restricted to solve requests; a stats frame is an
    error. Semantics otherwise identical. *)

val write_request : out_channel -> request -> unit
(** Client side; flushes. *)

val write_stats_request : out_channel -> stats_format -> unit
(** Client side: emit a [stats v1] admin frame; flushes. *)

val write_events_request :
  ?count:int -> ?level:Obs.Event.level -> out_channel -> unit
(** Client side: emit an [events v1] admin frame; flushes. *)

val write_health_request : out_channel -> unit
(** Client side: emit a [health v1] admin frame; flushes. *)

val write_explain_request : out_channel -> string -> unit
(** Client side: emit an [explain v1] admin frame asking for the phase
    tree of one trace/request id; flushes. *)

val write_session_request : out_channel -> session_request -> unit
(** Client side: emit a [session v1] frame; flushes. *)

val write_profile_request : out_channel -> profile_request -> unit
(** Client side: emit a [profile v1] admin frame; flushes. *)

val write_response : out_channel -> response -> unit
(** Server side; flushes. *)

val read_response : in_channel -> (response option, string) result
(** Client side; [Ok None] on clean end-of-stream. *)
