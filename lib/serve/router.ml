(* Shard router: a thin frame-level proxy that consistent-hashes each
   request onto one of N backend server processes, so repeated (and
   relabeled — the key is Canon.prehash, which is relabeling-invariant)
   instances keep landing on the shard that already cached them. The
   router does no solving and keeps no schedule state: it forwards one
   frame, relays one response, in order, per client connection. *)

module Ring = struct
  (* Classic consistent hashing: every backend owns [vnodes] points on
     a hash circle; a key belongs to the first point clockwise from its
     own hash. Adding or removing one backend only remaps the keys in
     the arcs it owned (~1/N of the space), so a resized fleet keeps
     most of its cache affinity. *)
  type t = { points : (int * int) array (* (point, backend), sorted *) }

  let make ?(vnodes = 128) n =
    if n < 1 then invalid_arg "Router.Ring.make: need at least one backend";
    if vnodes < 1 then invalid_arg "Router.Ring.make: vnodes must be >= 1";
    let points =
      Array.init (n * vnodes) (fun i ->
          let backend = i / vnodes and replica = i mod vnodes in
          (Hashtbl.hash (backend, replica, "ring"), backend))
    in
    Array.sort compare points;
    { points }

  let shard t key =
    let h = Hashtbl.hash key in
    let points = t.points in
    let n = Array.length points in
    (* first point >= h; wrap to the first point past the top *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst points.(mid) < h then lo := mid + 1 else hi := mid
    done;
    snd points.(if !lo = n then 0 else !lo)
end

type t = {
  backends : string array;
  ring : Ring.t;
  pool : Parallel.Pool.t;
  stopping : bool Atomic.t;
  mutable listen_fd : Unix.file_descr option;
  mutable listen_path : string option;  (* unix path to unlink on exit *)
  fwd_cells : Obs.Labeled.cell array;
  c_backend_errors : Obs.Counter.t;
}

let create ?(vnodes = 128) ?(jobs = 4) backends =
  if backends = [] then invalid_arg "Router.create: need at least one backend";
  let backends = Array.of_list backends in
  (* per-create like the mux metrics: only router processes carry the
     serve.router.* series *)
  let family = Obs.Labeled.family "serve.router.forwarded" ~label:"backend" in
  {
    backends;
    ring = Ring.make ~vnodes (Array.length backends);
    pool = Parallel.Pool.create (max 1 jobs);
    stopping = Atomic.make false;
    listen_fd = None;
    listen_path = None;
    fwd_cells =
      Array.mapi (fun i _ -> Obs.Labeled.cell family (string_of_int i)) backends;
    c_backend_errors = Obs.Counter.make "serve.router.backend_errors";
  }

let backend_count t = Array.length t.backends

(* Solves shard by the relabeling-invariant instance fingerprint;
   session frames pin a session's whole lifecycle to one shard by its
   id (the state lives there); admin frames have no affinity and go to
   shard 0 — scrape each backend directly for its own metrics. *)
let shard_of_incoming t (incoming : Proto.incoming) =
  match incoming with
  | Proto.Solve req -> Ring.shard t.ring (Canon.prehash req.Proto.instance)
  | Proto.Session sreq -> Ring.shard t.ring ("session", sreq.Proto.sid)
  | Proto.Stats _ | Proto.Events _ | Proto.Health | Proto.Explain _
  | Proto.Profile _ ->
      0

let write_incoming oc (incoming : Proto.incoming) =
  match incoming with
  | Proto.Solve req -> Proto.write_request oc req
  | Proto.Stats format -> Proto.write_stats_request oc format
  | Proto.Events { count; min_level } ->
      Proto.write_events_request ?count ~level:min_level oc
  | Proto.Health -> Proto.write_health_request oc
  | Proto.Explain id -> Proto.write_explain_request oc id
  | Proto.Session sreq -> Proto.write_session_request oc sreq
  | Proto.Profile pr -> Proto.write_profile_request oc pr

type backend_conn = {
  bfd : Unix.file_descr;
  bic : in_channel;
  boc : out_channel;
}

let connect_backend target =
  match Scrape.resolve target with
  | Error _ as e -> e
  | Ok (domain, addr) -> (
      match
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        (try
           Unix.connect fd addr;
           if domain = Unix.PF_INET then Unix.setsockopt fd Unix.TCP_NODELAY true
         with e ->
           Unix.close fd;
           raise e);
        fd
      with
      | exception Unix.Unix_error (err, _, _) ->
          Error
            (Printf.sprintf "backend %s: %s" target (Unix.error_message err))
      | fd ->
          Ok
            {
              bfd = fd;
              bic = Unix.in_channel_of_descr fd;
              boc = Unix.out_channel_of_descr fd;
            })

(* One client session: read frames, forward each to its shard over a
   lazily-opened per-client backend connection (so backend replies can
   never interleave across clients), relay the response verbatim. A
   backend failure degrades to an error reply and drops that backend
   connection; the client session survives. *)
let handle_client t client =
  let ic = Unix.in_channel_of_descr client in
  let oc = Unix.out_channel_of_descr client in
  let conns = Array.make (Array.length t.backends) None in
  let drop_backend i =
    match conns.(i) with
    | Some b ->
        conns.(i) <- None;
        (try Unix.close b.bfd with Unix.Unix_error _ -> ())
    | None -> ()
  in
  let backend i =
    match conns.(i) with
    | Some b -> Ok b
    | None -> (
        match connect_backend t.backends.(i) with
        | Error _ as e -> e
        | Ok b ->
            conns.(i) <- Some b;
            Ok b)
  in
  let forward i incoming =
    match backend i with
    | Error msg ->
        Obs.Counter.incr t.c_backend_errors;
        Proto.Error msg
    | Ok b -> (
        match
          write_incoming b.boc incoming;
          Proto.read_response b.bic
        with
        | Ok (Some response) ->
            Obs.Labeled.incr t.fwd_cells.(i);
            response
        | Ok None ->
            drop_backend i;
            Obs.Counter.incr t.c_backend_errors;
            Proto.Error
              (Printf.sprintf "backend %s closed the connection" t.backends.(i))
        | Error msg | (exception Sys_error msg) ->
            drop_backend i;
            Obs.Counter.incr t.c_backend_errors;
            Proto.Error (Printf.sprintf "backend %s: %s" t.backends.(i) msg))
  in
  let respond response =
    Proto.write_response oc response;
    Obs.Health.waiting ()
  in
  let rec loop () =
    match Proto.read_incoming ic with
    | Ok None -> ()
    | Ok (Some incoming) ->
        respond (forward (shard_of_incoming t incoming) incoming);
        loop ()
    | Error msg ->
        respond (Proto.Error msg);
        loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iteri (fun i _ -> drop_backend i) conns;
      (try flush oc with Sys_error _ -> ());
      try Unix.close client with Unix.Unix_error _ -> ())
    loop

let bind_unix t ~path =
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 128;
  t.listen_fd <- Some fd;
  t.listen_path <- Some path

let bind_tcp t ~host ~port =
  let addr =
    match Unix.getaddrinfo host (string_of_int port)
            [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
    with
    | { Unix.ai_addr; _ } :: _ -> ai_addr
    | [] -> raise (Unix.Unix_error (Unix.EADDRNOTAVAIL, "getaddrinfo", host))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd addr;
  Unix.listen fd 128;
  t.listen_fd <- Some fd;
  Unix.getsockname fd

let run t =
  let fd =
    match t.listen_fd with
    | Some fd -> fd
    | None -> invalid_arg "Router.run: bind a listener first"
  in
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then
      match Unix.accept ~cloexec:true fd with
      | client, _ ->
          Parallel.Pool.submit t.pool (fun () -> handle_client t client);
          accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception
          Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
        ->
          ()
  in
  Fun.protect
    ~finally:(fun () ->
      t.listen_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      match t.listen_path with
      | Some path -> (
          t.listen_path <- None;
          try Sys.remove path with Sys_error _ -> ())
      | None -> ())
    accept_loop

let stop t =
  Atomic.set t.stopping true;
  match t.listen_fd with
  | None -> ()
  | Some fd -> (
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())

let shutdown t =
  stop t;
  Parallel.Pool.wait_idle t.pool;
  Parallel.Pool.shutdown t.pool
