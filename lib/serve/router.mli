(** Shard router: a frame-level proxy that consistent-hashes requests
    across N backend server processes for cache affinity.

    Solve frames shard by {!Canon.prehash} of their instance — the
    fingerprint is relabeling-invariant, so permuted replays of an
    instance reach the shard whose result cache already holds it.
    Session frames shard by session id (the session's state lives on
    one backend); admin frames (stats/events/health/explain/profile)
    have no affinity and go to shard 0 — scrape backends directly for
    their own metrics.

    Each client connection is served by a pool task that opens its own
    lazily-connected backend sockets (Unix paths or [HOST:PORT]), so
    responses relay in request order and backends never interleave
    replies across clients. A backend failure is answered with a
    [status error] reply and that backend connection is dropped and
    re-dialed on next use; the client session survives.

    Metrics (created per-{!create}): the labeled family
    [serve.router.forwarded{backend="<index>"}] and the
    [serve.router.backend_errors] counter. *)

(** The pure consistent-hash ring, exposed for determinism/balance
    tests. *)
module Ring : sig
  type t

  val make : ?vnodes:int -> int -> t
  (** [make n] builds a ring over backends [0..n-1] with [vnodes]
      points each (default 128). Deterministic: same [n] and [vnodes],
      same ring. Raises [Invalid_argument] if [n < 1] or [vnodes < 1]. *)

  val shard : t -> 'a -> int
  (** Map any key (hashed with [Hashtbl.hash]) to a backend index.
      Removing one backend from a ring only remaps the keys it owned
      (~1/n of the space). *)
end

type t

val create : ?vnodes:int -> ?jobs:int -> string list -> t
(** [create backends] builds a router over the given backend targets
    (Unix socket paths or [HOST:PORT], see {!Scrape.resolve}) with its
    own [jobs]-sized pool (default 4) for client sessions. Raises
    [Invalid_argument] on an empty backend list. *)

val backend_count : t -> int

val shard_of_incoming : t -> Proto.incoming -> int
(** The backend index a frame routes to (exposed for tests). *)

val bind_unix : t -> path:string -> unit
(** Bind the router's listener to a Unix-domain socket (replacing a
    stale socket file; removed when {!run} returns). *)

val bind_tcp : t -> host:string -> port:int -> Unix.sockaddr
(** Bind the router's listener to a TCP address ([SO_REUSEADDR]);
    returns the bound address (port 0 picks a free port). *)

val run : t -> unit
(** Accept and serve client connections until {!stop}; call after one
    of the [bind_*]. Raises [Invalid_argument] with no listener. *)

val stop : t -> unit
(** Make {!run} return; safe from a signal handler. *)

val shutdown : t -> unit
(** {!stop}, drain in-flight client sessions, shut the pool down. *)
