(* Client-side scraping of a live server socket, shared by `schedtool
   top` and `schedtool metrics --watch`: admin-frame fetches plus the
   pure text-wrangling both need — a Prometheus text parser (the repo
   deliberately has no JSON parser dependency), snapshot diffing, and
   histogram-delta quantiles for "latency over the last refresh". *)

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

(* A target is HOST:PORT (TCP) when it ends in a colon-separated port
   number, a Unix-domain socket path otherwise — so every client-side
   command (`metrics --watch`, `top`, `profile`, `loadgen`) reaches TCP
   servers through the same --socket-style argument. *)
let resolve target =
  let tcp =
    match String.rindex_opt target ':' with
    | None -> None
    | Some i -> (
        let host = String.sub target 0 i in
        let port = String.sub target (i + 1) (String.length target - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p < 65536 && host <> "" -> Some (host, p)
        | Some _ | None -> None)
  in
  match tcp with
  | None -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX target)
  | Some (host, port) -> (
      match
        Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
      with
      | { Unix.ai_addr; _ } :: _ -> Ok (Unix.PF_INET, ai_addr)
      | [] -> Error (Printf.sprintf "cannot resolve %s" target)
      | exception Not_found -> Error (Printf.sprintf "cannot resolve %s" target))

let connect target =
  match resolve target with
  | Error _ as e -> e
  | Ok (domain, addr) -> (
      match
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        (try
           Unix.connect fd addr;
           if domain = Unix.PF_INET then Unix.setsockopt fd Unix.TCP_NODELAY true
         with e ->
           Unix.close fd;
           raise e);
        fd
      with
      | exception Unix.Unix_error (err, _, _) ->
          Error
            (Printf.sprintf "cannot connect to %s: %s" target
               (Unix.error_message err))
      | fd ->
          Ok
            {
              fd;
              ic = Unix.in_channel_of_descr fd;
              oc = Unix.out_channel_of_descr fd;
            })

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let fetch_stats conn =
  Proto.write_stats_request conn.oc Proto.Prometheus;
  match Proto.read_response conn.ic with
  | Ok (Some (Proto.Stats_reply { body; _ })) -> Ok body
  | Ok (Some (Proto.Error msg)) -> Error msg
  | Ok _ -> Error "unexpected response to stats frame"
  | Error msg -> Error msg

let fetch_health conn =
  Proto.write_health_request conn.oc;
  match Proto.read_response conn.ic with
  | Ok (Some (Proto.Health_reply { body })) -> Ok body
  | Ok (Some (Proto.Error msg)) -> Error msg
  | Ok _ -> Error "unexpected response to health frame"
  | Error msg -> Error msg

let fetch_events ?count ?level conn =
  Proto.write_events_request ?count ?level conn.oc;
  match Proto.read_response conn.ic with
  | Ok (Some (Proto.Events_reply { body })) -> Ok body
  | Ok (Some (Proto.Error msg)) -> Error msg
  | Ok _ -> Error "unexpected response to events frame"
  | Error msg -> Error msg

let exchange_profile conn (pr : Proto.profile_request) =
  Proto.write_profile_request conn.oc pr;
  match Proto.read_response conn.ic with
  | Ok (Some (Proto.Profile_reply { body })) -> Ok body
  | Ok (Some (Proto.Error msg)) -> Error msg
  | Ok _ -> Error "unexpected response to profile frame"
  | Error msg -> Error msg

let fetch_profile ?(seconds = 1.0) ?(mode = Obs.Profile.Cpu) ?rate conn =
  exchange_profile conn
    {
      Proto.paction = Proto.P_capture seconds;
      pmode = mode;
      prate = rate;
      pformat = Obs.Profile.Collapsed;
      pfilter = None;
    }

(* --- Prometheus text parsing --------------------------------------------- *)

(* One series per line: `name 12` or `name{label="v"} 34.5`. The name
   key keeps its label block verbatim, so labeled series stay distinct.
   Comment (#) and malformed lines are skipped — a scraper must survive
   a server newer than itself. *)
let parse_prometheus text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           (* the value is everything after the last space; label values
              never contain spaces in our exposition *)
           match String.rindex_opt line ' ' with
           | None -> None
           | Some i ->
               let name = String.sub line 0 i in
               let v =
                 String.sub line (i + 1) (String.length line - i - 1)
               in
               let v =
                 match v with
                 | "+Inf" -> Some infinity
                 | "-Inf" -> Some neg_infinity
                 | "NaN" -> Some nan
                 | v -> float_of_string_opt v
               in
               Option.map (fun v -> (String.trim name, v)) v)

let value series name = List.assoc_opt name series

(* --- snapshot diffing ----------------------------------------------------- *)

type delta = { dname : string; current : float; d : float }

(* Series of [after] with the change since [before]; a series absent
   from [before] counts its full value as change (first scrape of a
   fresh counter). Order follows [after]. *)
let diff ~before ~after =
  List.map
    (fun (name, v) ->
      let prev = Option.value ~default:0.0 (value before name) in
      { dname = name; current = v; d = v -. prev })
    after

let changed ds = List.filter (fun d -> d.d <> 0.0) ds

(* --- histogram helpers ---------------------------------------------------- *)

(* Cumulative (upper_bound, count) points of `<metric>_bucket{le="..."}`
   series, ascending by bound. *)
let buckets series metric =
  let prefix = metric ^ "_bucket{le=\"" in
  let plen = String.length prefix in
  series
  |> List.filter_map (fun (name, v) ->
         if
           String.length name > plen + 2
           && String.sub name 0 plen = prefix
           && String.sub name (String.length name - 2) 2 = "\"}"
         then
           let le = String.sub name plen (String.length name - plen - 2) in
           let le =
             match le with "+Inf" -> Some infinity | le -> float_of_string_opt le
           in
           Option.map (fun le -> (le, v)) le
         else None)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Quantile over cumulative bucket points: the upper bound of the bucket
   holding the q-th order statistic. None when the points hold no
   observations. *)
let quantile_of_buckets points q =
  match List.rev points with
  | [] -> None
  | (_, total) :: _ when total <= 0.0 -> None
  | (_, total) :: _ ->
      let rank = Float.max 1.0 (Float.round (q *. total)) in
      let rec go = function
        | [] -> None
        | (ub, c) :: rest -> if c >= rank then Some ub else go rest
      in
      go points

(* Bucket points for the observations made *between* two scrapes:
   per-bound difference of the cumulative counts. *)
let delta_buckets ~before ~after metric =
  let b = buckets before metric in
  List.map
    (fun (ub, c) ->
      let prev =
        Option.value ~default:0.0 (List.assoc_opt ub b)
      in
      (ub, Float.max 0.0 (c -. prev)))
    (buckets after metric)

(* --- health payload parsing ----------------------------------------------- *)

(* A health payload line is `key rest`; repeated kinds (meter, slo,
   heartbeat) carry k=v tokens in [rest]. *)
let health_lines body =
  String.split_on_char '\n' body
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None
         else
           match String.index_opt line ' ' with
           | None -> Some (line, "")
           | Some i ->
               Some
                 ( String.sub line 0 i,
                   String.sub line (i + 1) (String.length line - i - 1) ))

let kv_fields rest =
  String.split_on_char ' ' rest
  |> List.filter_map (fun tok ->
         match String.index_opt tok '=' with
         | None -> None
         | Some i ->
             Some
               ( String.sub tok 0 i,
                 String.sub tok (i + 1) (String.length tok - i - 1) ))

(* --- profile hotspots ----------------------------------------------------- *)

(* Rank frames by *self* weight — the weight of the collapsed stacks
   they terminate — as a fraction of the payload's total. Leaf weight,
   not cumulative, so a hot inner loop outranks its callers. *)
let top_self_frames ?(limit = 5) body =
  let entries = Obs.Flame.parse_collapsed body in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 entries in
  if total <= 0.0 then []
  else begin
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (stack, w) ->
        let leaf =
          match String.rindex_opt stack ';' with
          | None -> stack
          | Some i -> String.sub stack (i + 1) (String.length stack - i - 1)
        in
        Hashtbl.replace tbl leaf
          (w +. Option.value ~default:0.0 (Hashtbl.find_opt tbl leaf)))
      entries;
    Hashtbl.fold (fun name w acc -> (name, w /. total) :: acc) tbl []
    |> List.sort (fun (na, a) (nb, b) ->
           match compare b a with 0 -> compare na nb | c -> c)
    |> List.filteri (fun i _ -> i < limit)
  end

(* --- event source ranking ------------------------------------------------- *)

let find_sub ~sub s =
  let slen = String.length s and sublen = String.length sub in
  let rec go i =
    if i + sublen > slen then None
    else if String.sub s i sublen = sub then Some i
    else go (i + 1)
  in
  if sublen = 0 then None else go 0

(* Count event names in an events-frame payload (JSON lines) without a
   JSON parser: every line carries exactly one `"name":"..."` pair
   (field order is fixed by Event.to_json_line). *)
let top_event_names ?(limit = 5) body =
  let tbl = Hashtbl.create 16 in
  let marker = "\"name\":\"" in
  let mlen = String.length marker in
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         match find_sub ~sub:marker line with
         | None -> ()
         | Some i -> (
             match String.index_from_opt line (i + mlen) '"' with
             | None -> ()
             | Some j ->
                 let name = String.sub line (i + mlen) (j - i - mlen) in
                 Hashtbl.replace tbl name
                   (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name))));
  Hashtbl.fold (fun name n acc -> (name, n) :: acc) tbl []
  |> List.sort (fun (na, a) (nb, b) ->
         match compare b a with 0 -> compare na nb | c -> c)
  |> List.filteri (fun i _ -> i < limit)
