(** Client-side scraping of a live server socket.

    The admin-frame fetches plus the pure text-wrangling shared by
    [schedtool top] and [schedtool metrics --watch]: a Prometheus text
    parser (the project carries no JSON parser dependency), snapshot
    diffing, histogram-delta quantiles, and the [health v1] payload's
    line/[k=v] structure. *)

type conn

val resolve : string -> (Unix.socket_domain * Unix.sockaddr, string) result
(** Interpret a target string: [HOST:PORT] (with a numeric port and a
    nonempty host) resolves to a TCP address, anything else is a
    Unix-domain socket path. Shared with the shard router's backend
    addressing. *)

val connect : string -> (conn, string) result
(** Connect to a Unix-domain socket path or a TCP [HOST:PORT] target
    (see {!resolve}; TCP connections get [TCP_NODELAY]). *)

val close : conn -> unit

val fetch_stats : conn -> (string, string) result
(** One [stats v1] round-trip; the Prometheus exposition text. *)

val fetch_health : conn -> (string, string) result
(** One [health v1] round-trip; the line-oriented health payload. *)

val fetch_events :
  ?count:int -> ?level:Obs.Event.level -> conn -> (string, string) result
(** One [events v1] round-trip; flight-recorder events as JSON lines. *)

val exchange_profile : conn -> Proto.profile_request -> (string, string) result
(** One [profile v1] round-trip of any action; the reply payload
    (collapsed stacks, JSON lines, or status lines — see
    {!Proto.profile_action}). A capture blocks for its window. *)

val fetch_profile :
  ?seconds:float ->
  ?mode:Obs.Profile.mode ->
  ?rate:float ->
  conn ->
  (string, string) result
(** One windowed capture (default 1 s, CPU engine): the collapsed-stack
    payload. Blocks for the window; [Error] when an engine is already
    running server-side. *)

(** {1 Prometheus text} *)

val parse_prometheus : string -> (string * float) list
(** Series in exposition order. The series name keeps its label block
    verbatim ([serve_requests{status="ok"}]), so labeled series stay
    distinct; comments and unparsable lines are skipped. *)

val value : (string * float) list -> string -> float option

(** {1 Snapshot diffing} *)

type delta = { dname : string; current : float; d : float }

val diff :
  before:(string * float) list -> after:(string * float) list -> delta list
(** Each series of [after] with its change since [before]; series absent
    from [before] count their full value. Order follows [after]. *)

val changed : delta list -> delta list
(** Only the deltas with a nonzero change. *)

(** {1 Histogram helpers} *)

val buckets : (string * float) list -> string -> (float * float) list
(** Cumulative [(upper_bound, count)] points of the metric's
    [_bucket{le="..."}] series, ascending ([+Inf] maps to [infinity]). *)

val quantile_of_buckets : (float * float) list -> float -> float option
(** Upper bound of the bucket holding the [q]-th order statistic;
    [None] when the points hold no observations. *)

val delta_buckets :
  before:(string * float) list ->
  after:(string * float) list ->
  string ->
  (float * float) list
(** Bucket points for the observations made between two scrapes. *)

(** {1 Health payload} *)

val health_lines : string -> (string * string) list
(** Each nonempty payload line as [(key, rest)]; repeated kinds (meter,
    slo, heartbeat) appear once per line. *)

val kv_fields : string -> (string * string) list
(** The [k=v] tokens of one repeated line's [rest]. *)

(** {1 Profile hotspots} *)

val top_self_frames : ?limit:int -> string -> (string * float) list
(** The hottest frames of a collapsed-stack payload by {e self} weight
    (the weight of stacks they terminate) as a fraction of total,
    descending (ties alphabetical); at most [limit] (default 5). *)

(** {1 Event sources} *)

val top_event_names : ?limit:int -> string -> (string * int) list
(** The most frequent event names in an events payload, descending by
    count (ties alphabetical); at most [limit] (default 5). *)
