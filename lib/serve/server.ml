(* One labeled family instead of parallel ad-hoc counters: every request
   lands in exactly one status cell, so the series sum is the request
   count and the exposition layer renders them as
   serve_requests{status="..."}. *)
let requests = Obs.Labeled.family "serve.requests" ~label:"status"
let c_req_ok = Obs.Labeled.cell requests "ok"
let c_req_error = Obs.Labeled.cell requests "error"
let c_req_degraded = Obs.Labeled.cell requests "degraded"
let c_errors = Obs.Counter.make "serve.request_errors"
let h_latency_us = Obs.Histogram.make "serve.request_latency_us"
let h_alloc_bytes = Obs.Histogram.make "serve.request_alloc_bytes"
let c_dumps = Obs.Counter.make "serve.recorder_dumps"
let c_dumps_suppressed = Obs.Counter.make "serve.recorder_dumps_suppressed"

(* Pre-hash filter outcomes: a hit means the cheap fingerprint was seen
   before and the full canonicalization ran; a miss proved the cache
   could not hold the instance and skipped it. *)
let c_prehash_hits = Obs.Counter.make "serve.canon.prehash_hits"
let c_prehash_misses = Obs.Counter.make "serve.canon.prehash_misses"

(* Process-wide request ids, threaded through the spans of a request
   (serve.request -> serve.cache.lookup -> serve.dispatch -> solver) as
   the ambient Sink context, so a Chrome trace of a concurrent socket
   run can be grouped/filtered by request. *)
let req_seq = Atomic.make 0
let next_request_id () = Printf.sprintf "r%d" (Atomic.fetch_and_add req_seq 1)

type config = {
  cache_capacity : int;
  default_deadline_ms : float option;
  jobs : int;
  slow_ms : float option;
  dump_channel : out_channel option;
  dump_min_interval_s : float;
  task_budget_s : float;
  watchdog_interval_s : float option;
  session : Session.config;
  prehash_cap : int;
}

let default_config =
  {
    cache_capacity = 128;
    default_deadline_ms = None;
    jobs = Parallel.Pool.default_jobs ();
    slow_ms = None;
    dump_channel = None;
    dump_min_interval_s = 1.0;
    task_budget_s = 30.0;
    (* the ticker is opt-in: tests and the bench harness create servers
       by the dozen and a background sampler would make their counter
       deltas nondeterministic; [schedtool serve] turns it on *)
    watchdog_interval_s = None;
    session = Session.default_config;
    prehash_cap = 65_536;
  }

(* Cached results live in canonical labeling; each hit is translated back
   through the requesting instance's own permutations. Session resolves
   share the LRU (their keys carry a "session:" prefix), so both
   populations live under one budget. *)
type cached = Session.cached = {
  makespan : float;
  assignment : int array;
  solver : string;
}

type t = {
  config : config;
  cache : cached Cache.t;
  sessions : Session.t;
  pool : Parallel.Pool.t;
  stopping : bool Atomic.t;
  mutable listen_fd : Unix.file_descr option;
  (* dump rate bound: sessions run concurrently on the pool, so the
     last-dump stamp is mutex-guarded *)
  dump_mutex : Mutex.t;
  mutable last_dump_us : float;
  mutable ticker : unit Domain.t option;
  created_us : float;
  (* fingerprints of every instance ever stored in the cache: a
     pre-hash absent here proves the cache cannot hold the incoming
     instance, so the lookup-side canonicalization is skipped *)
  prehash_mutex : Mutex.t;
  mutable prehash_cur : (int, unit) Hashtbl.t;
  mutable prehash_prev : (int, unit) Hashtbl.t;
}

(* Bounding the fingerprint set generationally: fingerprints live in two
   half-cap tables; when the current one fills, it becomes the previous
   generation and a fresh table takes over, so an overflow retires only
   the older half of the working set instead of dropping all of it at
   once. A retired fingerprint of a still-cached entry costs a re-solve
   of later relabelings — wasted work at worst, never wrong answers (the
   skip path still solves and replies correctly). *)
let c_prehash_rotations = Obs.Counter.make "serve.canon.prehash_rotations"

let prehash_seen t ph =
  Mutex.lock t.prehash_mutex;
  let seen = Hashtbl.mem t.prehash_cur ph || Hashtbl.mem t.prehash_prev ph in
  Mutex.unlock t.prehash_mutex;
  seen

let record_prehash t ph =
  Mutex.lock t.prehash_mutex;
  let half = max 1 (t.config.prehash_cap / 2) in
  if Hashtbl.length t.prehash_cur >= half
     && not (Hashtbl.mem t.prehash_cur ph)
  then begin
    Obs.Counter.incr c_prehash_rotations;
    t.prehash_prev <- t.prehash_cur;
    t.prehash_cur <- Hashtbl.create (min half 256)
  end;
  (* recording always lands in the current generation, so a fingerprint
     that keeps being cached keeps surviving rotations *)
  Hashtbl.replace t.prehash_cur ph ();
  Mutex.unlock t.prehash_mutex

(* Rate-bounded flight-recorder dump shared by the slow-request path and
   the watchdog's stuck-task hook: one dump per [dump_min_interval_s],
   so a failure storm (or a watchdog firing every tick) cannot turn the
   dump log into the bottleneck. [header] must be a single JSON line. *)
let rate_limited_dump t ~ctx ~header =
  match t.config.dump_channel with
  | None -> ()
  | Some oc ->
      Mutex.lock t.dump_mutex;
      let now = Obs.Sink.now_us () in
      let allowed =
        now -. t.last_dump_us >= t.config.dump_min_interval_s *. 1e6
      in
      if allowed then t.last_dump_us <- now;
      Mutex.unlock t.dump_mutex;
      if not allowed then Obs.Counter.incr c_dumps_suppressed
      else begin
        Obs.Counter.incr c_dumps;
        output_string oc header;
        output_char oc '\n';
        Obs.Event.dump_jsonl ?ctx oc
      end

(* Snapshot the flight recorder's slice for one finished request.
   Triggered by latency over [slow_ms] or a non-ok status. *)
let maybe_dump t ~req_id ~status ~latency_us =
  let slow =
    match t.config.slow_ms with
    | Some threshold -> latency_us /. 1000. > threshold
    | None -> false
  in
  if slow || status <> "ok" then
    rate_limited_dump t ~ctx:(Some req_id)
      ~header:
        (Printf.sprintf
           "{\"dump\":\"slow-request\",\"req\":\"%s\",\"status\":\"%s\",\"latency_ms\":%.3f}"
           req_id status (latency_us /. 1000.))

(* The watchdog's view of a stuck task, routed into the same dump file
   with the stuck request's flight-recorder slice when its id is known. *)
let dump_stuck t (st : Obs.Health.stuck) =
  rate_limited_dump t ~ctx:st.Obs.Health.sctx
    ~header:
      (Printf.sprintf
         "{\"dump\":\"stuck-task\",\"task\":\"%s\",\"domain\":%d,\"age_ms\":%.0f%s}"
         st.Obs.Health.stask st.Obs.Health.sdomain
         (st.Obs.Health.sage_s *. 1000.)
         (match st.Obs.Health.sctx with
         | Some req -> Printf.sprintf ",\"req\":\"%s\"" req
         | None -> ""))

(* Saturation meters and SLO objectives for this server process. Meters
   read process-global state (registration replaces by name, so the
   latest server wins — a process runs one). *)
let g_pool_queue_depth = Obs.Gauge.make "pool.queue_depth"
let g_pool_capacity = Obs.Gauge.make "pool.capacity"
let g_heap_words = Obs.Gauge.make "gc.heap_words"

let register_health t =
  Obs.Health.set_task_budget_s t.config.task_budget_s;
  Obs.Health.set_stuck_hook (Some (dump_stuck t));
  (* queue fill relative to an 8x-capacity backlog: a short burst beyond
     the pool size is normal, a deep standing queue is saturation *)
  Obs.Health.register_meter "pool.queue" (fun () ->
      let cap = Float.max 1.0 (Obs.Gauge.value g_pool_capacity) in
      Obs.Gauge.value g_pool_queue_depth /. (8.0 *. cap));
  (* a full LRU is steady-state, not an incident: display-only *)
  Obs.Health.register_meter ~degraded_at:infinity ~unhealthy_at:infinity
    "cache" (fun () ->
      float_of_int (Cache.length t.cache)
      /. float_of_int (Cache.capacity t.cache));
  (* major heap footprint against a 4 GiB soft limit *)
  Obs.Health.register_meter "gc.heap" (fun () ->
      Obs.Gauge.value g_heap_words *. 8.0 /. 4e9);
  (* session-table fill: a full registry rejects creates, so nearing the
     cap is saturation in the health sense *)
  Obs.Health.register_meter "sessions" (fun () ->
      float_of_int (Session.count t.sessions)
      /. float_of_int (Session.capacity t.sessions));
  let latency_threshold_us =
    match t.config.default_deadline_ms with
    | Some d -> d *. 1000.
    | None -> 250_000.0
  in
  Obs.Slo.register ~name:"availability" ~target:0.99
    (Obs.Slo.Availability
       { family = "serve.requests"; good_values = [ "ok"; "degraded" ] });
  Obs.Slo.register ~name:"latency" ~target:0.99
    (Obs.Slo.Latency
       {
         histogram = "serve.request_latency_us";
         threshold_us = latency_threshold_us;
       })

(* One background tick: watchdog pass, idle-session sweep, SLO/GC
   sampling, and a status refresh so the health.status gauge tracks
   reality between scrapes. *)
let tick t =
  ignore (Obs.Health.check ());
  ignore (Session.evict_idle t.sessions);
  Obs.Memprof.sample ();
  Obs.Slo.sample ();
  ignore (Obs.Health.status ())

let create config =
  let t =
    {
      config;
      cache = Cache.create ~capacity:config.cache_capacity;
      sessions = Session.create config.session;
      pool = Parallel.Pool.create config.jobs;
      stopping = Atomic.make false;
      listen_fd = None;
      dump_mutex = Mutex.create ();
      last_dump_us = neg_infinity;
      ticker = None;
      created_us = Obs.Sink.now_us ();
      prehash_mutex = Mutex.create ();
      prehash_cur = Hashtbl.create 256;
      prehash_prev = Hashtbl.create 0;
    }
  in
  register_health t;
  (match config.watchdog_interval_s with
  | Some interval when interval > 0.0 ->
      t.ticker <-
        Some
          (Domain.spawn (fun () ->
               let rec loop () =
                 if not (Atomic.get t.stopping) then begin
                   Unix.sleepf interval;
                   tick t;
                   loop ()
                 end
               in
               loop ()))
  | Some _ | None -> ());
  t

(* A request that propagated a trace id is served under it (the client
   already owns the name); anything else gets a minted r<N>. The
   client's open span id, when sent, parents the server-side root phase
   so a merged client+server trace chains across the hop. *)
let adopt_trace trace =
  match (trace : Proto.trace_ctx option) with
  | Some tc -> (tc.Proto.tid, tc.Proto.parent)
  | None -> (next_request_id (), None)

let with_parent_span parent f =
  match parent with Some p -> Obs.Sink.with_span_id p f | None -> f ()

let handle_request t (req : Proto.request) =
  let req_id, parent_span = adopt_trace req.Proto.trace in
  Obs.Sink.with_ctx req_id @@ fun () ->
  with_parent_span parent_span @@ fun () ->
  Obs.Span.phase "serve.request" @@ fun () ->
  (* stamp the heartbeat inside the ctx so the watchdog can attribute a
     wedged domain to this request id *)
  Obs.Health.beat ();
  let start_us = Obs.Sink.now_us () in
  let alloc0 = Obs.Memprof.allocated_bytes () in
  Obs.Event.emit "serve.request"
    ([ ("hint", Obs.Event.Str (Option.value ~default:"auto" req.solver)) ]
    @
    match req.deadline_ms with
    | Some d -> [ ("deadline_ms", Obs.Event.Float d) ]
    | None -> []);
  let elapsed_us () = int_of_float (Obs.Sink.now_us () -. start_us) in
  let finish response =
    let latency_us = Obs.Sink.now_us () -. start_us in
    let alloc = Obs.Memprof.allocated_bytes () -. alloc0 in
    Obs.Histogram.observe h_latency_us latency_us;
    Obs.Histogram.observe h_alloc_bytes alloc;
    Obs.Memprof.sample ();
    let status =
      match response with
      | Proto.Error _ ->
          Obs.Labeled.incr c_req_error;
          Obs.Counter.incr c_errors;
          "error"
      | Proto.Reply r when r.Proto.degraded ->
          Obs.Labeled.incr c_req_degraded;
          "degraded"
      | Proto.Reply _ | Proto.Stats_reply _ | Proto.Events_reply _
      | Proto.Health_reply _ | Proto.Explain_reply _ | Proto.Session_reply _
      | Proto.Profile_reply _ ->
          Obs.Labeled.incr c_req_ok;
          "ok"
    in
    Obs.Event.emit "serve.request.done"
      ([
         ("status", Obs.Event.Str status);
         ("elapsed_us", Obs.Event.Int (elapsed_us ()));
         ("alloc_b", Obs.Event.Float alloc);
       ]
      @
      match response with
      | Proto.Reply r ->
          [
            ("solver", Obs.Event.Str r.Proto.solver);
            ("cache", Obs.Event.Str (if r.Proto.cache_hit then "hit" else "miss"));
            ("makespan", Obs.Event.Float r.Proto.makespan);
          ]
      | _ -> []);
    maybe_dump t ~req_id ~status ~latency_us;
    response
  in
  let deadline_ms =
    match req.deadline_ms with
    | Some _ as d -> d
    | None -> t.config.default_deadline_ms
  in
  let pressure () =
    match Obs.Health.status () with
    | Obs.Health.Ok -> false
    | Obs.Health.Degraded _ | Obs.Health.Unhealthy _ -> true
  in
  finish
  @@
  let ph = Canon.prehash req.instance in
  if not (prehash_seen t ph) then begin
    (* Unseen fingerprint: nothing with this pre-hash was ever cached,
       and relabelings always share a pre-hash, so the cache provably
       has no entry for this instance — skip the lookup-side
       canonicalization and solve the original labeling directly. The
       result is stored under its canonical key so relabeled twins
       (whose pre-hash is now seen) hit it. *)
    Obs.Counter.incr c_prehash_misses;
    match
      Dispatch.solve ?deadline_ms ?hint:req.solver ~pressure req.instance
    with
    | Error msg -> Proto.Error msg
    | Ok outcome ->
        let result = outcome.Dispatch.result in
        let assignment =
          Core.Schedule.assignment result.Algos.Common.schedule
        in
        (if not outcome.Dispatch.degraded then
           match Canon.canonicalize req.instance with
           | exception Invalid_argument _ -> ()
           | canon ->
               Cache.put t.cache
                 (Core.Instance_io.to_string canon.Canon.instance)
                 {
                   makespan = result.Algos.Common.makespan;
                   assignment = Canon.assignment_to_canonical canon assignment;
                   solver = outcome.Dispatch.solver;
                 };
               record_prehash t ph);
        Proto.Reply
          {
            solver = outcome.Dispatch.solver;
            cache_hit = false;
            degraded = outcome.Dispatch.degraded;
            makespan = result.Algos.Common.makespan;
            elapsed_us = elapsed_us ();
            assignment;
            trace = Some req_id;
          }
  end
  else begin
    Obs.Counter.incr c_prehash_hits;
    match Canon.canonicalize req.instance with
    | exception Invalid_argument msg -> Proto.Error msg
    | canon -> (
        let key = Core.Instance_io.to_string canon.Canon.instance in
        match Cache.find t.cache key with
        | Some hit ->
            Proto.Reply
              {
                solver = hit.solver;
                cache_hit = true;
                degraded = false;
                makespan = hit.makespan;
                elapsed_us = elapsed_us ();
                assignment = Canon.assignment_to_original canon hit.assignment;
                trace = Some req_id;
              }
        | None -> (
            match
              Dispatch.solve ?deadline_ms ?hint:req.solver ~pressure
                canon.Canon.instance
            with
            | Error msg -> Proto.Error msg
            | Ok outcome ->
                let result = outcome.Dispatch.result in
                let assignment =
                  Core.Schedule.assignment result.Algos.Common.schedule
                in
                if not outcome.Dispatch.degraded then begin
                  Cache.put t.cache key
                    {
                      makespan = result.Algos.Common.makespan;
                      assignment;
                      solver = outcome.Dispatch.solver;
                    };
                  record_prehash t ph
                end;
                Proto.Reply
                  {
                    solver = outcome.Dispatch.solver;
                    cache_hit = false;
                    degraded = outcome.Dispatch.degraded;
                    makespan = result.Algos.Common.makespan;
                    elapsed_us = elapsed_us ();
                    assignment = Canon.assignment_to_original canon assignment;
                    trace = Some req_id;
                  }))
  end

(* Stats frames answer from the process-wide registries; they are admin
   traffic, deliberately outside the request counters and the latency
   histogram so scraping does not perturb what it measures. *)
let handle_stats format =
  Obs.Memprof.sample ();
  let body =
    match (format : Proto.stats_format) with
    | Proto.Prometheus -> Obs.Expo.prometheus ()
    | Proto.Json -> Obs.Expo.json ()
  in
  Proto.Stats_reply { format; body }

(* Events frames answer from the flight recorder; like stats they are
   admin traffic, outside the request counters. *)
let handle_events ?count ~min_level () =
  let buf = Buffer.create 512 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Obs.Event.to_json_line e);
      Buffer.add_char buf '\n')
    (Obs.Event.recent ?count ~min_level ());
  Proto.Events_reply { body = Buffer.contents buf }

(* Health frames answer with a fresh snapshot: a watchdog pass, an SLO
   sample (so burn rates are current even without the ticker), then the
   rendered status/meter/slo/heartbeat lines. Admin traffic, outside the
   request counters. *)
let handle_health t =
  Obs.Memprof.sample ();
  Obs.Slo.sample ();
  ignore (Obs.Health.check ());
  let buf = Buffer.create 512 in
  let add line =
    Buffer.add_string buf line;
    Buffer.add_char buf '\n'
  in
  List.iter add (Obs.Health.render_lines ());
  add
    (Printf.sprintf "uptime_s %.1f"
       ((Obs.Sink.now_us () -. t.created_us) /. 1e6));
  List.iter add (Obs.Slo.render_lines ());
  Proto.Health_reply { body = Buffer.contents buf }

(* Explain frames answer from the phase recorder's bounded rings: the
   request must still be retained (recent enough) to be explainable.
   Line-oriented k=v records, [detail] last because it may contain
   spaces; every line starts with a known key so the [end] terminator
   stays unambiguous. *)
let handle_explain id =
  match Obs.Phase.recent ~ctx:id () with
  | [] ->
      Proto.Error
        (Printf.sprintf
           "no phases retained for trace %S (unknown id, or evicted from the \
            phase recorder)"
           id)
  | records ->
      let buf = Buffer.create 512 in
      Printf.bprintf buf "trace id=%s spans=%d\n" id (List.length records);
      List.iter
        (fun (r : Obs.Phase.record) ->
          Printf.bprintf buf
            "phase depth=%d sid=%d psid=%s name=%s dur_us=%.1f alloc_b=%.0f \
             start_us=%.1f detail=%s\n"
            (Obs.Phase.depth records r)
            r.Obs.Phase.id
            (match r.Obs.Phase.parent with
            | Some p -> string_of_int p
            | None -> "-")
            r.Obs.Phase.name r.Obs.Phase.dur_us r.Obs.Phase.alloc_bytes
            r.Obs.Phase.start_us r.Obs.Phase.detail)
        records;
      Proto.Explain_reply { body = Buffer.contents buf }

(* Session frames carry their own serve.session.* metrics (and a phase
   with the ambient request id for traces); they stay outside the
   serve.requests family, whose cells mean one-shot solve traffic. *)
let handle_session t (sreq : Proto.session_request) =
  let req_id, parent_span = adopt_trace sreq.Proto.trace in
  Obs.Sink.with_ctx req_id @@ fun () ->
  with_parent_span parent_span @@ fun () ->
  Obs.Span.phase ~detail:("sid=" ^ sreq.Proto.sid) "serve.session"
  @@ fun () ->
  Obs.Health.beat ();
  let pressure () =
    match Obs.Health.status () with
    | Obs.Health.Ok -> false
    | Obs.Health.Degraded _ | Obs.Health.Unhealthy _ -> true
  in
  match
    Session.handle t.sessions ~cache:t.cache
      ~default_deadline_ms:t.config.default_deadline_ms ~pressure sreq
  with
  | Proto.Session_reply s ->
      (* stamp the served-under trace id on the ack and on the embedded
         solve reply so clients can join either against explain *)
      Proto.Session_reply
        {
          s with
          trace = Some req_id;
          solve =
            Option.map
              (fun (r : Proto.reply) -> { r with Proto.trace = Some req_id })
              s.Proto.solve;
        }
  | other -> other

(* Profile frames drive [Obs.Profile] in-band. The engines are
   process-wide, so a capture sees every domain's work, not just this
   worker's; the capture window parks this worker in [sleepf]
   (health-marked as waiting, not wedged) while the rest of the pool
   keeps solving — which is exactly the traffic being profiled. *)
let handle_profile (pr : Proto.profile_request) =
  let status_body () =
    String.concat "\n" (Obs.Profile.status_lines ()) ^ "\n"
  in
  let rendered () =
    Obs.Profile.render ?ctx:pr.Proto.pfilter pr.Proto.pformat
  in
  match pr.Proto.paction with
  | Proto.P_status -> Proto.Profile_reply { body = status_body () }
  | Proto.P_start -> (
      match Obs.Profile.start ?rate:pr.Proto.prate pr.Proto.pmode with
      | Ok () -> Proto.Profile_reply { body = status_body () }
      | Error msg -> Proto.Error msg)
  | Proto.P_stop ->
      if Obs.Profile.running () = None then Proto.Error "profiler not running"
      else begin
        (* render before disarming so the rings are not cleared by a
           future start between the two steps *)
        let body = rendered () in
        Obs.Profile.stop ();
        Proto.Profile_reply { body }
      end
  | Proto.P_capture seconds -> (
      match Obs.Profile.start ?rate:pr.Proto.prate pr.Proto.pmode with
      | Error msg -> Proto.Error msg
      | Ok () ->
          Obs.Health.waiting ();
          Unix.sleepf seconds;
          Obs.Health.beat ();
          let body = rendered () in
          Obs.Profile.stop ();
          Proto.Profile_reply { body })

(* One incoming frame, one response — the dispatch shared by every
   transport (blocking channels here, the mux event loop's parsed
   frames). Solve and session frames carry their own heartbeats inside
   their request context; admin frames beat here. *)
let handle_incoming t (incoming : Proto.incoming) =
  match incoming with
  | Proto.Solve req -> handle_request t req
  | Proto.Stats format ->
      Obs.Health.beat ();
      handle_stats format
  | Proto.Events { count; min_level } ->
      Obs.Health.beat ();
      handle_events ?count ~min_level ()
  | Proto.Health ->
      Obs.Health.beat ();
      handle_health t
  | Proto.Explain id ->
      Obs.Health.beat ();
      handle_explain id
  | Proto.Session sreq -> handle_session t sreq
  | Proto.Profile pr ->
      Obs.Health.beat ();
      handle_profile pr

(* A frame that failed to parse still gets exactly one response; it
   counts as an error in the request family like any other failure. *)
let protocol_error msg =
  Obs.Counter.incr c_errors;
  Obs.Labeled.incr c_req_error;
  Proto.Error msg

let pool t = t.pool

let serve_channels t ic oc =
  let respond response =
    Proto.write_response oc response;
    (* the session is about to park in [read_incoming]; a blocked read
       is not a wedged task *)
    Obs.Health.waiting ()
  in
  let rec loop () =
    match Proto.read_incoming ic with
    | Ok None -> ()
    | Ok (Some incoming) ->
        respond (handle_incoming t incoming);
        loop ()
    | Error msg ->
        respond (protocol_error msg);
        loop ()
  in
  loop ()

let run_stdio t = serve_channels t stdin stdout

let handle_connection t client =
  let ic = Unix.in_channel_of_descr client in
  let oc = Unix.out_channel_of_descr client in
  Fun.protect
    ~finally:(fun () ->
      (try flush oc with Sys_error _ -> ());
      try Unix.close client with Unix.Unix_error _ -> ())
    (fun () -> serve_channels t ic oc)

let listen t ~path =
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  t.listen_fd <- Some fd;
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then
      match Unix.accept fd with
      | client, _ ->
          Parallel.Pool.submit t.pool (fun () -> handle_connection t client);
          accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception
          Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
        ->
          (* [stop] shut the listening socket down under us *)
          ()
  in
  Fun.protect
    ~finally:(fun () ->
      t.listen_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    accept_loop

let stop t =
  Atomic.set t.stopping true;
  match t.listen_fd with
  | None -> ()
  | Some fd -> (
      (* shutdown (not close) wakes a blocked accept on every platform we
         care about; listen's own cleanup closes the descriptor *)
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())

let shutdown t =
  stop t;
  (* the ticker re-checks [stopping] after each sleep, so joining waits
     at most one interval *)
  (match t.ticker with
  | Some d ->
      Domain.join d;
      t.ticker <- None
  | None -> ());
  Obs.Health.set_stuck_hook None;
  Parallel.Pool.wait_idle t.pool;
  Parallel.Pool.shutdown t.pool
