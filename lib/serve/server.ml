(* One labeled family instead of parallel ad-hoc counters: every request
   lands in exactly one status cell, so the series sum is the request
   count and the exposition layer renders them as
   serve_requests{status="..."}. *)
let requests = Obs.Labeled.family "serve.requests" ~label:"status"
let c_req_ok = Obs.Labeled.cell requests "ok"
let c_req_error = Obs.Labeled.cell requests "error"
let c_req_degraded = Obs.Labeled.cell requests "degraded"
let c_errors = Obs.Counter.make "serve.request_errors"
let h_latency_us = Obs.Histogram.make "serve.request_latency_us"
let h_alloc_bytes = Obs.Histogram.make "serve.request_alloc_bytes"
let c_dumps = Obs.Counter.make "serve.recorder_dumps"
let c_dumps_suppressed = Obs.Counter.make "serve.recorder_dumps_suppressed"

(* Process-wide request ids, threaded through the spans of a request
   (serve.request -> serve.cache.lookup -> serve.dispatch -> solver) as
   the ambient Sink context, so a Chrome trace of a concurrent socket
   run can be grouped/filtered by request. *)
let req_seq = Atomic.make 0
let next_request_id () = Printf.sprintf "r%d" (Atomic.fetch_and_add req_seq 1)

type config = {
  cache_capacity : int;
  default_deadline_ms : float option;
  jobs : int;
  slow_ms : float option;
  dump_channel : out_channel option;
  dump_min_interval_s : float;
}

let default_config =
  {
    cache_capacity = 128;
    default_deadline_ms = None;
    jobs = Parallel.Pool.default_jobs ();
    slow_ms = None;
    dump_channel = None;
    dump_min_interval_s = 1.0;
  }

(* Cached results live in canonical labeling; each hit is translated back
   through the requesting instance's own permutations. *)
type cached = { makespan : float; assignment : int array; solver : string }

type t = {
  config : config;
  cache : cached Cache.t;
  pool : Parallel.Pool.t;
  stopping : bool Atomic.t;
  mutable listen_fd : Unix.file_descr option;
  (* dump rate bound: sessions run concurrently on the pool, so the
     last-dump stamp is mutex-guarded *)
  dump_mutex : Mutex.t;
  mutable last_dump_us : float;
}

let create config =
  {
    config;
    cache = Cache.create ~capacity:config.cache_capacity;
    pool = Parallel.Pool.create config.jobs;
    stopping = Atomic.make false;
    listen_fd = None;
    dump_mutex = Mutex.create ();
    last_dump_us = neg_infinity;
  }

(* Snapshot the flight recorder's slice for one finished request and
   write it (JSON lines, header line first) to the configured dump
   channel. Triggered by latency over [slow_ms] or a non-ok status;
   bounded to one dump per [dump_min_interval_s] so a failure storm
   cannot turn the slow-request log into the bottleneck. *)
let maybe_dump t ~req_id ~status ~latency_us =
  match t.config.dump_channel with
  | None -> ()
  | Some oc ->
      let slow =
        match t.config.slow_ms with
        | Some threshold -> latency_us /. 1000. > threshold
        | None -> false
      in
      if slow || status <> "ok" then begin
        Mutex.lock t.dump_mutex;
        let now = Obs.Sink.now_us () in
        let allowed =
          now -. t.last_dump_us >= t.config.dump_min_interval_s *. 1e6
        in
        if allowed then t.last_dump_us <- now;
        Mutex.unlock t.dump_mutex;
        if not allowed then Obs.Counter.incr c_dumps_suppressed
        else begin
          Obs.Counter.incr c_dumps;
          Printf.fprintf oc
            "{\"dump\":\"slow-request\",\"req\":\"%s\",\"status\":\"%s\",\"latency_ms\":%.3f}\n"
            req_id status (latency_us /. 1000.);
          Obs.Event.dump_jsonl ~ctx:req_id oc
        end
      end

let handle_request t (req : Proto.request) =
  let req_id = next_request_id () in
  Obs.Sink.with_ctx req_id @@ fun () ->
  Obs.Span.with_alloc "serve.request" @@ fun () ->
  let start_us = Obs.Sink.now_us () in
  let alloc0 = Obs.Memprof.allocated_bytes () in
  Obs.Event.emit "serve.request"
    ([ ("hint", Obs.Event.Str (Option.value ~default:"auto" req.solver)) ]
    @
    match req.deadline_ms with
    | Some d -> [ ("deadline_ms", Obs.Event.Float d) ]
    | None -> []);
  let elapsed_us () = int_of_float (Obs.Sink.now_us () -. start_us) in
  let finish response =
    let latency_us = Obs.Sink.now_us () -. start_us in
    let alloc = Obs.Memprof.allocated_bytes () -. alloc0 in
    Obs.Histogram.observe h_latency_us latency_us;
    Obs.Histogram.observe h_alloc_bytes alloc;
    Obs.Memprof.sample ();
    let status =
      match response with
      | Proto.Error _ ->
          Obs.Labeled.incr c_req_error;
          Obs.Counter.incr c_errors;
          "error"
      | Proto.Reply r when r.Proto.degraded ->
          Obs.Labeled.incr c_req_degraded;
          "degraded"
      | Proto.Reply _ | Proto.Stats_reply _ | Proto.Events_reply _ ->
          Obs.Labeled.incr c_req_ok;
          "ok"
    in
    Obs.Event.emit "serve.request.done"
      ([
         ("status", Obs.Event.Str status);
         ("elapsed_us", Obs.Event.Int (elapsed_us ()));
         ("alloc_b", Obs.Event.Float alloc);
       ]
      @
      match response with
      | Proto.Reply r ->
          [
            ("solver", Obs.Event.Str r.Proto.solver);
            ("cache", Obs.Event.Str (if r.Proto.cache_hit then "hit" else "miss"));
            ("makespan", Obs.Event.Float r.Proto.makespan);
          ]
      | _ -> []);
    maybe_dump t ~req_id ~status ~latency_us;
    response
  in
  finish
  @@
  match Canon.canonicalize req.instance with
  | exception Invalid_argument msg -> Proto.Error msg
  | canon -> (
      let key = Core.Instance_io.to_string canon.Canon.instance in
      match Cache.find t.cache key with
      | Some hit ->
          Proto.Reply
            {
              solver = hit.solver;
              cache_hit = true;
              degraded = false;
              makespan = hit.makespan;
              elapsed_us = elapsed_us ();
              assignment = Canon.assignment_to_original canon hit.assignment;
            }
      | None -> (
          let deadline_ms =
            match req.deadline_ms with
            | Some _ as d -> d
            | None -> t.config.default_deadline_ms
          in
          match
            Dispatch.solve ?deadline_ms ?hint:req.solver canon.Canon.instance
          with
          | Error msg -> Proto.Error msg
          | Ok outcome ->
              let result = outcome.Dispatch.result in
              let assignment =
                Core.Schedule.assignment result.Algos.Common.schedule
              in
              if not outcome.Dispatch.degraded then
                Cache.put t.cache key
                  {
                    makespan = result.Algos.Common.makespan;
                    assignment;
                    solver = outcome.Dispatch.solver;
                  };
              Proto.Reply
                {
                  solver = outcome.Dispatch.solver;
                  cache_hit = false;
                  degraded = outcome.Dispatch.degraded;
                  makespan = result.Algos.Common.makespan;
                  elapsed_us = elapsed_us ();
                  assignment = Canon.assignment_to_original canon assignment;
                }))

(* Stats frames answer from the process-wide registries; they are admin
   traffic, deliberately outside the request counters and the latency
   histogram so scraping does not perturb what it measures. *)
let handle_stats format =
  Obs.Memprof.sample ();
  let body =
    match (format : Proto.stats_format) with
    | Proto.Prometheus -> Obs.Expo.prometheus ()
    | Proto.Json -> Obs.Expo.json ()
  in
  Proto.Stats_reply { format; body }

(* Events frames answer from the flight recorder; like stats they are
   admin traffic, outside the request counters. *)
let handle_events ?count ~min_level () =
  let buf = Buffer.create 512 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Obs.Event.to_json_line e);
      Buffer.add_char buf '\n')
    (Obs.Event.recent ?count ~min_level ());
  Proto.Events_reply { body = Buffer.contents buf }

let serve_channels t ic oc =
  let rec loop () =
    match Proto.read_incoming ic with
    | Ok None -> ()
    | Ok (Some (Proto.Solve req)) ->
        Proto.write_response oc (handle_request t req);
        loop ()
    | Ok (Some (Proto.Stats format)) ->
        Proto.write_response oc (handle_stats format);
        loop ()
    | Ok (Some (Proto.Events { count; min_level })) ->
        Proto.write_response oc (handle_events ?count ~min_level ());
        loop ()
    | Error msg ->
        Obs.Counter.incr c_errors;
        Obs.Labeled.incr c_req_error;
        Proto.write_response oc (Proto.Error msg);
        loop ()
  in
  loop ()

let run_stdio t = serve_channels t stdin stdout

let handle_connection t client =
  let ic = Unix.in_channel_of_descr client in
  let oc = Unix.out_channel_of_descr client in
  Fun.protect
    ~finally:(fun () ->
      (try flush oc with Sys_error _ -> ());
      try Unix.close client with Unix.Unix_error _ -> ())
    (fun () -> serve_channels t ic oc)

let listen t ~path =
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  t.listen_fd <- Some fd;
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then
      match Unix.accept fd with
      | client, _ ->
          Parallel.Pool.submit t.pool (fun () -> handle_connection t client);
          accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception
          Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
        ->
          (* [stop] shut the listening socket down under us *)
          ()
  in
  Fun.protect
    ~finally:(fun () ->
      t.listen_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    accept_loop

let stop t =
  Atomic.set t.stopping true;
  match t.listen_fd with
  | None -> ()
  | Some fd -> (
      (* shutdown (not close) wakes a blocked accept on every platform we
         care about; listen's own cleanup closes the descriptor *)
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())

let shutdown t =
  stop t;
  Parallel.Pool.wait_idle t.pool;
  Parallel.Pool.shutdown t.pool
