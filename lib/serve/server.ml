(* One labeled family instead of parallel ad-hoc counters: every request
   lands in exactly one status cell, so the series sum is the request
   count and the exposition layer renders them as
   serve_requests{status="..."}. *)
let requests = Obs.Labeled.family "serve.requests" ~label:"status"
let c_req_ok = Obs.Labeled.cell requests "ok"
let c_req_error = Obs.Labeled.cell requests "error"
let c_req_degraded = Obs.Labeled.cell requests "degraded"
let c_errors = Obs.Counter.make "serve.request_errors"
let h_latency_us = Obs.Histogram.make "serve.request_latency_us"

(* Process-wide request ids, threaded through the spans of a request
   (serve.request -> serve.cache.lookup -> serve.dispatch -> solver) as
   the ambient Sink context, so a Chrome trace of a concurrent socket
   run can be grouped/filtered by request. *)
let req_seq = Atomic.make 0
let next_request_id () = Printf.sprintf "r%d" (Atomic.fetch_and_add req_seq 1)

type config = {
  cache_capacity : int;
  default_deadline_ms : float option;
  jobs : int;
}

let default_config =
  {
    cache_capacity = 128;
    default_deadline_ms = None;
    jobs = Parallel.Pool.default_jobs ();
  }

(* Cached results live in canonical labeling; each hit is translated back
   through the requesting instance's own permutations. *)
type cached = { makespan : float; assignment : int array; solver : string }

type t = {
  config : config;
  cache : cached Cache.t;
  pool : Parallel.Pool.t;
  stopping : bool Atomic.t;
  mutable listen_fd : Unix.file_descr option;
}

let create config =
  {
    config;
    cache = Cache.create ~capacity:config.cache_capacity;
    pool = Parallel.Pool.create config.jobs;
    stopping = Atomic.make false;
    listen_fd = None;
  }

let handle_request t (req : Proto.request) =
  Obs.Sink.with_ctx (next_request_id ()) @@ fun () ->
  Obs.Span.with_span "serve.request" @@ fun () ->
  let start_us = Obs.Sink.now_us () in
  let elapsed_us () = int_of_float (Obs.Sink.now_us () -. start_us) in
  let finish response =
    Obs.Histogram.observe h_latency_us (Obs.Sink.now_us () -. start_us);
    (match response with
    | Proto.Error _ ->
        Obs.Labeled.incr c_req_error;
        Obs.Counter.incr c_errors
    | Proto.Reply r when r.Proto.degraded -> Obs.Labeled.incr c_req_degraded
    | Proto.Reply _ | Proto.Stats_reply _ -> Obs.Labeled.incr c_req_ok);
    response
  in
  finish
  @@
  match Canon.canonicalize req.instance with
  | exception Invalid_argument msg -> Proto.Error msg
  | canon -> (
      let key = Core.Instance_io.to_string canon.Canon.instance in
      match Cache.find t.cache key with
      | Some hit ->
          Proto.Reply
            {
              solver = hit.solver;
              cache_hit = true;
              degraded = false;
              makespan = hit.makespan;
              elapsed_us = elapsed_us ();
              assignment = Canon.assignment_to_original canon hit.assignment;
            }
      | None -> (
          let deadline_ms =
            match req.deadline_ms with
            | Some _ as d -> d
            | None -> t.config.default_deadline_ms
          in
          match
            Dispatch.solve ?deadline_ms ?hint:req.solver canon.Canon.instance
          with
          | Error msg -> Proto.Error msg
          | Ok outcome ->
              let result = outcome.Dispatch.result in
              let assignment =
                Core.Schedule.assignment result.Algos.Common.schedule
              in
              if not outcome.Dispatch.degraded then
                Cache.put t.cache key
                  {
                    makespan = result.Algos.Common.makespan;
                    assignment;
                    solver = outcome.Dispatch.solver;
                  };
              Proto.Reply
                {
                  solver = outcome.Dispatch.solver;
                  cache_hit = false;
                  degraded = outcome.Dispatch.degraded;
                  makespan = result.Algos.Common.makespan;
                  elapsed_us = elapsed_us ();
                  assignment = Canon.assignment_to_original canon assignment;
                }))

(* Stats frames answer from the process-wide registries; they are admin
   traffic, deliberately outside the request counters and the latency
   histogram so scraping does not perturb what it measures. *)
let handle_stats format =
  let body =
    match (format : Proto.stats_format) with
    | Proto.Prometheus -> Obs.Expo.prometheus ()
    | Proto.Json -> Obs.Expo.json ()
  in
  Proto.Stats_reply { format; body }

let serve_channels t ic oc =
  let rec loop () =
    match Proto.read_incoming ic with
    | Ok None -> ()
    | Ok (Some (Proto.Solve req)) ->
        Proto.write_response oc (handle_request t req);
        loop ()
    | Ok (Some (Proto.Stats format)) ->
        Proto.write_response oc (handle_stats format);
        loop ()
    | Error msg ->
        Obs.Counter.incr c_errors;
        Obs.Labeled.incr c_req_error;
        Proto.write_response oc (Proto.Error msg);
        loop ()
  in
  loop ()

let run_stdio t = serve_channels t stdin stdout

let handle_connection t client =
  let ic = Unix.in_channel_of_descr client in
  let oc = Unix.out_channel_of_descr client in
  Fun.protect
    ~finally:(fun () ->
      (try flush oc with Sys_error _ -> ());
      try Unix.close client with Unix.Unix_error _ -> ())
    (fun () -> serve_channels t ic oc)

let listen t ~path =
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  t.listen_fd <- Some fd;
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then
      match Unix.accept fd with
      | client, _ ->
          Parallel.Pool.submit t.pool (fun () -> handle_connection t client);
          accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception
          Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
        ->
          (* [stop] shut the listening socket down under us *)
          ()
  in
  Fun.protect
    ~finally:(fun () ->
      t.listen_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    accept_loop

let stop t =
  Atomic.set t.stopping true;
  match t.listen_fd with
  | None -> ()
  | Some fd -> (
      (* shutdown (not close) wakes a blocked accept on every platform we
         care about; listen's own cleanup closes the descriptor *)
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())

let shutdown t =
  stop t;
  Parallel.Pool.wait_idle t.pool;
  Parallel.Pool.shutdown t.pool
