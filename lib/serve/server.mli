(** Long-lived scheduling service: session loop, cache wiring, transports.

    One server owns a canonicalizing result {!Cache} and a
    {!Parallel.Pool}. A session is a {!Proto} request/response stream;
    {!serve_channels} runs one session to end-of-stream and never lets a
    malformed request kill it. Two transports: stdio (single session,
    sequential — deterministic and cram-testable) and a Unix-domain
    socket (one session per connection, handled concurrently on the
    pool).

    Per-request observability: a [serve.request] span brackets each
    request and carries a process-unique request id as the ambient
    {!Obs.Sink} context (so do the nested cache/dispatch/solver spans —
    Chrome traces group by the [req] arg); the labeled family
    [serve.requests{status="ok"|"error"|"degraded"}] counts every
    response exactly once; [serve.request_errors] keeps the flat error
    count; request latency lands in the [serve.request_latency_us]
    histogram; and the cache and dispatch layers contribute their own
    counters, spans and histograms. A [stats v1] admin frame is answered
    in-band with the {!Obs.Expo} exposition (Prometheus or JSON) of all
    of the above — admin traffic stays outside the request metrics.

    Flight recorder: every request records [serve.request] /
    [serve.request.done] events in {!Obs.Event} under its request id,
    alongside the dispatch-decision and solver events of the layers it
    calls; bytes allocated per request land in the
    [serve.request_alloc_bytes] histogram and the [gc.*] gauges are
    refreshed on every response. When [dump_channel] is set, a request
    that finishes slow (over [slow_ms]) or non-ok ([error]/[degraded])
    dumps its recorder slice as JSON lines — one header line, then the
    request's events — rate-bounded by [dump_min_interval_s]
    (suppressed dumps count in [serve.recorder_dumps_suppressed]). An
    [events v1] admin frame is answered with the recorder's retained
    events.

    Health & SLO: {!create} registers this server's saturation meters
    (pool queue fill, cache fill, heap footprint) and SLO objectives
    (99% availability over [serve.requests], 99% of requests under the
    default deadline) with {!Obs.Health} / {!Obs.Slo}, points the
    watchdog's stuck-task hook at the same rate-bounded dump channel
    (header [{"dump":"stuck-task",...}]), and — when
    [watchdog_interval_s] is set — spawns a ticker domain that runs the
    watchdog, samples the SLO rings and GC gauges, and refreshes the
    [health.status] gauge every interval. Session loops mark their
    domain [waiting] while parked in [read] so only genuinely wedged
    tasks trip the watchdog. A [health v1] admin frame is answered with
    the composite status, meters, burn rates and per-domain heartbeat
    ages; {!handle_request} passes [Obs.Health.status] to
    {!Dispatch.solve} as the [pressure] signal, so a non-[Ok] status
    sheds the heavy solver tier pre-emptively ([serve.dispatch.shed]).

    Sessions: [session v1] frames route into the server's
    {!Session} registry — create/mutate/resolve/close long-lived
    scheduling sessions whose resolves repair the previous schedule
    incrementally instead of re-solving from scratch. Session resolves
    share the server's result cache (under ["session:"]-prefixed
    delta-aware keys) and the registry's fill feeds a [sessions]
    saturation meter; the watchdog ticker sweeps idle sessions. Session
    frames carry their own [serve.session.*] metrics and stay outside
    the [serve.requests] family.

    Profiling: [profile v1] frames drive the in-process sampling
    profiler ({!Obs.Profile}) in-band — status, start/stop, or a whole
    windowed capture ([seconds N]) answered with collapsed stacks. The
    engines are process-wide, so a capture sees every pool domain's
    work; the worker serving the frame parks in the capture window
    marked [waiting] while the rest of the pool keeps solving. Like the
    other admin frames, profile traffic stays outside the request
    metrics. *)

type config = {
  cache_capacity : int;  (** LRU entries kept (default 128) *)
  default_deadline_ms : float option;
      (** budget applied when a request names none (default: none) *)
  jobs : int;  (** pool domains for concurrent socket sessions *)
  slow_ms : float option;
      (** latency threshold for a slow-request dump; [None] (default)
          disables the slow trigger (non-ok responses still dump when
          [dump_channel] is set) *)
  dump_channel : out_channel option;
      (** where recorder dumps go; [None] (default) disables dumping *)
  dump_min_interval_s : float;
      (** at most one dump per this many seconds (default 1.0) *)
  task_budget_s : float;
      (** heartbeat age before a working task counts as stuck
          (default 30.0) *)
  watchdog_interval_s : float option;
      (** period of the background watchdog/SLO-sampling ticker; [None]
          (default) disables it — tests and benches want deterministic
          counters, [schedtool serve] turns it on. The ticker also sweeps
          idle sessions ({!Session.evict_idle}) *)
  session : Session.config;
      (** session-registry knobs: live-session cap, idle timeout,
          repair-drift fallback ratio, polish budget *)
  prehash_cap : int;
      (** fingerprint-set bound (default 65536): fingerprints live in two
          half-cap generations; filling the current one retires the
          older half ([serve.canon.prehash_rotations]) instead of
          dropping the whole set *)
}

val default_config : config

type t

val create : config -> t

val handle_request : t -> Proto.request -> Proto.response
(** The transport-independent core: fingerprint ({!Canon.prehash}),
    canonicalize, consult the cache, and on a miss dispatch under the
    request's deadline and cache the result (degraded results are not
    cached — a later request without deadline pressure deserves the real
    solver). An instance whose relabeling-invariant pre-hash was never
    stored provably cannot be cached, so the lookup-side canonicalization
    is skipped and the original labeling is solved directly
    ([serve.canon.prehash_misses]; seen pre-hashes count in
    [serve.canon.prehash_hits]). Cached schedules are translated back
    through the request's labeling. Used directly by the bench
    harness. *)

val handle_incoming : t -> Proto.incoming -> Proto.response
(** Dispatch one parsed frame of any kind to its handler — the shared
    core of every transport ({!serve_channels} and the mux event loop).
    Admin frames stamp a health heartbeat here; solve/session frames
    carry their own inside their request context. *)

val protocol_error : string -> Proto.response
(** The response for a frame that failed to parse: counts the failure in
    the request-error metrics and returns the [status error] reply. *)

val pool : t -> Parallel.Pool.t
(** The server's worker pool, for transports that submit work
    themselves (the mux event loop). *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Run one session until end-of-stream: read requests, write exactly one
    response each; protocol errors produce [status error] responses and
    the session continues. *)

val run_stdio : t -> unit
(** [serve_channels] over stdin/stdout. *)

val listen : t -> path:string -> unit
(** Bind a Unix-domain socket at [path] (replacing a stale socket file)
    and accept connections until {!stop}; each connection's session runs
    as a pool task. Removes the socket file on exit. Raises
    [Unix.Unix_error] if the path cannot be bound. *)

val stop : t -> unit
(** Make {!listen} return: safe to call from a signal handler or another
    domain. In-flight sessions keep running; callers then use
    {!shutdown} to drain them. *)

val shutdown : t -> unit
(** {!stop}, wait for in-flight sessions to finish, and shut the pool
    down. Idempotent. *)
