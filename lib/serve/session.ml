(* Long-lived scheduling sessions: a client creates a session from a base
   instance, streams job additions/removals, and asks for a fresh schedule
   after each delta. Resolves repair the previous schedule incrementally
   (Algos.Incremental) and only fall back to a full Dispatch.solve when
   the repaired makespan drifts past a configurable ratio of the
   certified lower bound. *)

module I = Core.Instance

let c_created = Obs.Counter.make "serve.session.created"
let c_closed = Obs.Counter.make "serve.session.closed"
let c_evicted = Obs.Counter.make "serve.session.evicted"
let c_rejected = Obs.Counter.make "serve.session.rejected"
let c_mutations = Obs.Counter.make "serve.session.mutations"
let c_resolves = Obs.Counter.make "serve.session.resolves"
let c_repairs = Obs.Counter.make "serve.session.repairs"
let c_fallbacks = Obs.Counter.make "serve.session.fallbacks"

(* One cell per way a resolve obtained its schedule; the series sum is
   the resolve count, rendered as serve_session_resolve{mode="..."}. *)
let resolve_modes = Obs.Labeled.family "serve.session.resolve" ~label:"mode"
let h_repair_us = Obs.Histogram.make "serve.session.repair_latency_us"
let g_count = Obs.Gauge.make "serve.session.count"

type cached = { makespan : float; assignment : int array; solver : string }

type config = {
  max_sessions : int;
  idle_timeout_s : float option;
  fallback_ratio : float;
  polish_steps : int;
}

let default_config =
  {
    max_sessions = 64;
    idle_timeout_s = None;
    fallback_ratio = 2.0;
    polish_steps = 64;
  }

type session = {
  sid : string;
  (* digest of the base instance's canonical key: relabelings of the
     same base share it, but the delta digest below is seeded from the
     raw presentation, so delta-cache keys never collide across
     presentations (mutation indices are presentation-relative) *)
  base_digest : string;
  mutable instance : I.t;
  mutable delta_digest : string;
  mutable generation : int;
  (* last schedule in the current labeling; the repair seed *)
  mutable seed : int array option;
  mutable last_used_us : float;
}

type t = {
  config : config;
  mutex : Mutex.t;
  sessions : (string, session) Hashtbl.t;
}

let create config =
  if config.max_sessions < 1 then
    invalid_arg "Session: max_sessions must be >= 1";
  if not (config.fallback_ratio >= 1.0) then
    invalid_arg "Session: fallback_ratio must be >= 1";
  {
    config;
    mutex = Mutex.create ();
    sessions = Hashtbl.create 16;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let update_gauge t =
  Obs.Gauge.set g_count (float_of_int (Hashtbl.length t.sessions))

let count t = locked t (fun () -> Hashtbl.length t.sessions)
let capacity t = t.config.max_sessions

let expired t s ~now =
  match t.config.idle_timeout_s with
  | Some limit -> now -. s.last_used_us > limit *. 1e6
  | None -> false

(* Must be called with the mutex held. *)
let evict t s ~now =
  Hashtbl.remove t.sessions s.sid;
  Obs.Counter.incr c_evicted;
  update_gauge t;
  Obs.Event.emit "serve.session.evict"
    [
      ("sid", Obs.Event.Str s.sid);
      ("idle_s", Obs.Event.Float ((now -. s.last_used_us) /. 1e6));
      ("generation", Obs.Event.Int s.generation);
    ]

let evict_idle t =
  let now = Obs.Sink.now_us () in
  locked t (fun () ->
      let dead =
        Hashtbl.fold
          (fun _ s acc -> if expired t s ~now then s :: acc else acc)
          t.sessions []
      in
      List.iter (fun s -> evict t s ~now) dead;
      List.length dead)

(* --- delta digests ------------------------------------------------------

   The delta-cache key of a resolve is (base canonical-key digest, delta
   digest). The delta digest starts from the raw base text and folds in a
   canonical rendering of every mutation, so two sessions reach the same
   key iff they started from the same presentation and applied the same
   mutation sequence — exactly when their current instances and job
   labelings agree. *)

let fold_digest prev text = Digest.to_hex (Digest.string (prev ^ "\n" ^ text))

let add_text jobs =
  String.concat ";"
    (List.map
       (fun (j : I.new_job) ->
         Printf.sprintf "add %.17g %d %s %s" j.nsize j.nclass
           (match j.nptimes with
           | None -> "-"
           | Some p ->
               String.concat ","
                 (List.map (Printf.sprintf "%.17g") (Array.to_list p)))
           (match j.neligible with
           | None -> "-"
           | Some e ->
               String.concat ","
                 (List.map (fun b -> if b then "1" else "0") (Array.to_list e))))
       jobs)

let drop_text ids = "drop " ^ String.concat "," (List.map string_of_int ids)
let cache_key s = Printf.sprintf "session:%s:%s" s.base_digest s.delta_digest

(* --- op handling -------------------------------------------------------- *)

(* [trace] is stamped by the server (Server.handle_session), which owns
   the adopted request context; session logic never sees it. *)
let session_reply ?mode ?solve (s : session) op =
  Proto.Session_reply
    {
      Proto.sid = s.sid;
      op = Proto.session_op_name op;
      generation = s.generation;
      jobs = I.num_jobs s.instance;
      mode;
      solve;
      trace = None;
    }

let handle_create t sid instance =
  let now = Obs.Sink.now_us () in
  locked t (fun () ->
      (* make room lazily before rejecting: expired sessions only
         occupy their slot until the next access or watchdog tick *)
      if Hashtbl.length t.sessions >= t.config.max_sessions then begin
        let dead =
          Hashtbl.fold
            (fun _ s acc -> if expired t s ~now then s :: acc else acc)
            t.sessions []
        in
        List.iter (fun s -> evict t s ~now) dead
      end;
      if Hashtbl.mem t.sessions sid then
        Proto.Error (Printf.sprintf "session %S already exists" sid)
      else if Hashtbl.length t.sessions >= t.config.max_sessions then begin
        Obs.Counter.incr c_rejected;
        Proto.Error
          (Printf.sprintf "session table full (%d sessions)"
             t.config.max_sessions)
      end
      else begin
        let text = Core.Instance_io.to_string instance in
        let s =
          {
            sid;
            base_digest = Digest.to_hex (Digest.string (Canon.key instance));
            instance;
            delta_digest = Digest.to_hex (Digest.string text);
            generation = 0;
            seed = None;
            last_used_us = now;
          }
        in
        Hashtbl.add t.sessions sid s;
        Obs.Counter.incr c_created;
        update_gauge t;
        Obs.Event.emit "serve.session.create"
          [
            ("sid", Obs.Event.Str sid);
            ("jobs", Obs.Event.Int (I.num_jobs instance));
          ];
        session_reply s (Proto.S_create instance)
      end)

(* Look a session up, expiring it lazily if the idle timeout has passed
   (so cram tests and tickerless servers still observe eviction). Must
   be called with the mutex held. *)
let find_live t sid ~now =
  match Hashtbl.find_opt t.sessions sid with
  | None -> Result.Error (Printf.sprintf "unknown session id %S" sid)
  | Some s when expired t s ~now ->
      evict t s ~now;
      Result.Error
        (Printf.sprintf "unknown session id %S (evicted after %gs idle timeout)"
           sid
           (Option.value ~default:0.0 t.config.idle_timeout_s))
  | Some s ->
      s.last_used_us <- now;
      Ok s

let handle_add t sid jobs =
  let now = Obs.Sink.now_us () in
  locked t (fun () ->
      match find_live t sid ~now with
      | Result.Error msg -> Proto.Error msg
      | Ok s -> (
          match I.append_jobs s.instance jobs with
          | exception Invalid_argument msg -> Proto.Error msg
          | instance ->
              s.instance <- instance;
              s.seed <-
                Option.map
                  (fun seed ->
                    Array.append seed
                      (Array.make (List.length jobs) (-1)))
                  s.seed;
              s.generation <- s.generation + 1;
              s.delta_digest <- fold_digest s.delta_digest (add_text jobs);
              Obs.Counter.incr c_mutations;
              session_reply s (Proto.S_add_jobs jobs)))

let handle_drop t sid ids =
  let now = Obs.Sink.now_us () in
  locked t (fun () ->
      match find_live t sid ~now with
      | Result.Error msg -> Proto.Error msg
      | Ok s -> (
          let ids = List.sort_uniq compare ids in
          let n = I.num_jobs s.instance in
          match List.find_opt (fun j -> j < 0 || j >= n) ids with
          | Some j ->
              Proto.Error
                (Printf.sprintf "drop-jobs: job %d out of range (%d jobs)" j n)
          | None -> (
              let dropped = Array.make n false in
              List.iter (fun j -> dropped.(j) <- true) ids;
              let keep = ref [] in
              for j = n - 1 downto 0 do
                if not dropped.(j) then keep := j :: !keep
              done;
              match !keep with
              | [] -> Proto.Error "drop-jobs would leave the session empty"
              | keep ->
                  s.instance <- I.induced s.instance keep;
                  s.seed <-
                    Option.map
                      (fun seed ->
                        Array.of_list (List.map (fun j -> seed.(j)) keep))
                      s.seed;
                  s.generation <- s.generation + 1;
                  s.delta_digest <- fold_digest s.delta_digest (drop_text ids);
                  Obs.Counter.incr c_mutations;
                  session_reply s (Proto.S_drop_jobs ids))))

let handle_close t sid =
  let now = Obs.Sink.now_us () in
  locked t (fun () ->
      match find_live t sid ~now with
      | Result.Error msg -> Proto.Error msg
      | Ok s ->
          let reply = session_reply s Proto.S_close in
          Hashtbl.remove t.sessions sid;
          Obs.Counter.incr c_closed;
          update_gauge t;
          Obs.Event.emit "serve.session.close"
            [
              ("sid", Obs.Event.Str sid);
              ("generation", Obs.Event.Int s.generation);
            ];
          reply)

(* Resolve: delta cache, then repair (with LB-drift fallback), then full
   solve for a session without a previous schedule. The registry mutex
   is released while solving; the seed update is discarded if a
   concurrent mutation moved the generation meanwhile. *)
let handle_resolve t ~cache ~deadline_ms ~pressure sid =
  let start_us = Obs.Sink.now_us () in
  let snapshot =
    locked t (fun () ->
        match find_live t sid ~now:start_us with
        | Result.Error msg -> Result.Error msg
        | Ok s -> Ok (s, s.instance, s.seed, s.generation, cache_key s))
  in
  match snapshot with
  | Result.Error msg -> Proto.Error msg
  | Ok (s, instance, seed, generation, key) -> (
      let solved =
        match Cache.find cache key with
        | Some hit -> Ok (`Cache, hit.solver, false, hit.makespan, hit.assignment)
        | None -> (
            match seed with
            | Some seed ->
                let t0 = Obs.Sink.now_us () in
                let rep =
                  Algos.Incremental.repair
                    ~polish_steps:t.config.polish_steps instance ~seed
                in
                Obs.Histogram.observe h_repair_us (Obs.Sink.now_us () -. t0);
                Obs.Counter.incr c_repairs;
                let repaired = rep.Algos.Incremental.result in
                let lb = Core.Bounds.lower_bound instance in
                let drifted =
                  repaired.Algos.Common.makespan
                  > t.config.fallback_ratio *. lb
                in
                let assignment r =
                  Core.Schedule.assignment r.Algos.Common.schedule
                in
                if not drifted then
                  Ok
                    ( `Repair,
                      "incremental-repair",
                      false,
                      repaired.Algos.Common.makespan,
                      assignment repaired )
                else begin
                  Obs.Counter.incr c_fallbacks;
                  match Dispatch.solve ?deadline_ms ~pressure instance with
                  | Ok o
                    when o.Dispatch.result.Algos.Common.makespan
                         <= repaired.Algos.Common.makespan ->
                      Ok
                        ( `Fallback,
                          o.Dispatch.solver,
                          o.Dispatch.degraded,
                          o.Dispatch.result.Algos.Common.makespan,
                          assignment o.Dispatch.result )
                  | Ok _ | Error _ ->
                      (* the full solve lost (deadline pressure) or
                         refused: the repaired schedule is still valid *)
                      Ok
                        ( `Fallback,
                          "incremental-repair",
                          false,
                          repaired.Algos.Common.makespan,
                          assignment repaired )
                end
            | None -> (
                match Dispatch.solve ?deadline_ms ~pressure instance with
                | Ok o ->
                    Ok
                      ( `Full,
                        o.Dispatch.solver,
                        o.Dispatch.degraded,
                        o.Dispatch.result.Algos.Common.makespan,
                        Core.Schedule.assignment
                          o.Dispatch.result.Algos.Common.schedule )
                | Error msg -> Result.Error msg))
      in
      match solved with
      | Result.Error msg -> Proto.Error msg
      | Ok (mode, solver, degraded, makespan, assignment) ->
          let mode_name =
            match mode with
            | `Cache -> "cache"
            | `Repair -> "repair"
            | `Fallback -> "fallback"
            | `Full -> "full"
          in
          Obs.Counter.incr c_resolves;
          Obs.Labeled.incr (Obs.Labeled.cell resolve_modes mode_name);
          if mode <> `Cache && not degraded then
            Cache.put cache key { makespan; assignment; solver };
          let elapsed_us =
            int_of_float (Obs.Sink.now_us () -. start_us)
          in
          Obs.Event.emit "serve.session.resolve"
            [
              ("sid", Obs.Event.Str sid);
              ("mode", Obs.Event.Str mode_name);
              ("makespan", Obs.Event.Float makespan);
              ("elapsed_us", Obs.Event.Int elapsed_us);
            ];
          locked t (fun () ->
              (* only adopt the schedule as the next repair seed if no
                 mutation raced this solve *)
              if s.generation = generation then s.seed <- Some assignment);
          (* reply from the snapshot: a racing mutation must not make the
             reply disagree with the schedule it carries *)
          Proto.Session_reply
            {
              Proto.sid;
              op = "resolve";
              generation;
              jobs = I.num_jobs instance;
              mode = Some mode_name;
              solve =
                Some
                  {
                    Proto.solver;
                    cache_hit = (mode = `Cache);
                    degraded;
                    makespan;
                    elapsed_us;
                    assignment;
                    trace = None;
                  };
              trace = None;
            })

let handle t ~cache ~default_deadline_ms ~pressure
    (req : Proto.session_request) =
  match req.Proto.op with
  | Proto.S_create instance -> handle_create t req.Proto.sid instance
  | Proto.S_add_jobs jobs -> handle_add t req.Proto.sid jobs
  | Proto.S_drop_jobs ids -> handle_drop t req.Proto.sid ids
  | Proto.S_resolve { deadline_ms } ->
      let deadline_ms =
        match deadline_ms with
        | Some _ as d -> d
        | None -> default_deadline_ms
      in
      handle_resolve t ~cache ~deadline_ms ~pressure req.Proto.sid
  | Proto.S_close -> handle_close t req.Proto.sid
