(** Registry of long-lived scheduling sessions.

    A session holds a mutable instance, the schedule of its last resolve
    and a generation counter; clients mutate it with [add-jobs] /
    [drop-jobs] frames ({!Proto.session_op}) and ask for a fresh
    schedule with [resolve]. Resolves are answered, in order of
    preference:

    - {e cache}: the delta-aware result cache hits. Entries are keyed on
      (digest of the base instance's canonical key, delta digest); the
      delta digest folds the raw base text and every mutation, so a key
      hit guarantees an identical current instance in an identical
      labeling — repeated mutation patterns (including replayed ones)
      are answered without solving.
    - {e repair}: {!Algos.Incremental.repair} re-places the delta
      against the previous schedule and polishes, as long as the
      repaired makespan stays within [fallback_ratio] times the
      certified {!Core.Bounds.lower_bound}.
    - {e fallback}: repair drifted past the ratio — a full
      {!Dispatch.solve} runs under the resolve's deadline (keeping the
      repaired schedule if the full solve does worse under pressure).
    - {e full}: the session has no previous schedule (first resolve).

    Sessions expire after [idle_timeout_s] of inactivity: lazily on next
    access, and in bulk via {!evict_idle} (wired into the server's
    watchdog ticker). The registry holds at most [max_sessions] live
    sessions; create evicts expired sessions first and then rejects.

    Observability: [serve.session.created/closed/evicted/rejected/
    mutations/resolves/repairs/fallbacks] counters, the
    [serve.session.resolve{mode=...}] labeled family, the
    [serve.session.repair_latency_us] histogram, the
    [serve.session.count] gauge (feeding the server's session saturation
    meter) and [serve.session.create/close/evict/resolve] flight-recorder
    events.

    Thread-safe; the registry mutex is released while a resolve solves,
    and the solved schedule is only adopted as the next repair seed if no
    concurrent mutation raced it. *)

type cached = { makespan : float; assignment : int array; solver : string }
(** Cached resolve/solve results; shared with the server's canonical
    result cache so both populations live under one LRU budget. *)

type config = {
  max_sessions : int;  (** live-session cap (default 64) *)
  idle_timeout_s : float option;
      (** evict sessions idle this long; [None] (default) disables *)
  fallback_ratio : float;
      (** full re-solve when repaired makespan exceeds this multiple of
          the certified lower bound (default 2.0; must be >= 1) *)
  polish_steps : int;
      (** local-search budget of each repair (default 64) *)
}

val default_config : config

type t

val create : config -> t
(** Raises [Invalid_argument] if [max_sessions < 1] or
    [fallback_ratio < 1]. *)

val count : t -> int
(** Live sessions (including not-yet-collected expired ones). *)

val capacity : t -> int
(** The configured [max_sessions]. *)

val evict_idle : t -> int
(** Evict every session past the idle timeout; returns how many. *)

val handle :
  t ->
  cache:cached Cache.t ->
  default_deadline_ms:float option ->
  pressure:(unit -> bool) ->
  Proto.session_request ->
  Proto.response
(** Execute one session op. Always returns a {!Proto.Session_reply} or a
    {!Proto.Error} (unknown/expired id, duplicate create, table full,
    malformed mutation) — never raises on bad client input. [deadline_ms]
    of a resolve defaults to [default_deadline_ms]; [pressure] is threaded
    into {!Dispatch.solve} for full solves and fallbacks. *)
