type t = { universe : int; sets : int array array }

let make ~universe ~sets =
  if universe <= 0 then invalid_arg "Cover: empty universe";
  let sets =
    Array.map
      (fun s ->
        Array.iter
          (fun e ->
            if e < 0 || e >= universe then
              invalid_arg "Cover: element out of range")
          s;
        let sorted = Array.copy s in
        Array.sort compare sorted;
        let dedup = ref [] in
        Array.iter
          (fun e ->
            match !dedup with
            | e' :: _ when e' = e -> ()
            | _ -> dedup := e :: !dedup)
          sorted;
        Array.of_list (List.rev !dedup))
      sets
  in
  let covered = Array.make universe false in
  Array.iter (fun s -> Array.iter (fun e -> covered.(e) <- true) s) sets;
  if not (Array.for_all Fun.id covered) then
    invalid_arg "Cover: sets do not cover the universe";
  { universe; sets }

let num_sets t = Array.length t.sets

let covers t chosen =
  let covered = Array.make t.universe false in
  List.iter (fun s -> Array.iter (fun e -> covered.(e) <- true) t.sets.(s)) chosen;
  Array.for_all Fun.id covered

let c_greedy_rounds = Obs.Counter.make "setcover.greedy_rounds"

let greedy t =
  Obs.Span.with_span "setcover.greedy" @@ fun () ->
  let covered = Array.make t.universe false in
  let remaining = ref t.universe in
  let rounds = ref 0 in
  let chosen = ref [] in
  while !remaining > 0 do
    incr rounds;
    let best = ref (-1) and best_gain = ref 0 in
    Array.iteri
      (fun s elems ->
        let gain =
          Array.fold_left
            (fun acc e -> if covered.(e) then acc else acc + 1)
            0 elems
        in
        if gain > !best_gain then begin
          best := s;
          best_gain := gain
        end)
      t.sets;
    (* make guarantees full coverage, so a positive-gain set exists *)
    assert (!best >= 0);
    chosen := !best :: !chosen;
    Array.iter
      (fun e ->
        if not covered.(e) then begin
          covered.(e) <- true;
          decr remaining
        end)
      t.sets.(!best)
  done;
  Obs.Counter.add c_greedy_rounds !rounds;
  List.rev !chosen

let exact t =
  let m = num_sets t in
  (* Branch on the lowest-index uncovered element: one of the sets
     containing it must be chosen. *)
  let sets_of_element = Array.make t.universe [] in
  Array.iteri
    (fun s elems ->
      Array.iter (fun e -> sets_of_element.(e) <- s :: sets_of_element.(e)) elems)
    t.sets;
  let best = ref (greedy t) in
  let best_size = ref (List.length !best) in
  let covered = Array.make t.universe 0 in
  let rec branch chosen size =
    if size + 1 <= !best_size then begin
      match Array.to_list covered |> List.find_index (fun c -> c = 0) with
      | None ->
          if size < !best_size then begin
            best := chosen;
            best_size := size
          end
      | Some e ->
          List.iter
            (fun s ->
              Array.iter (fun e' -> covered.(e') <- covered.(e') + 1) t.sets.(s);
              branch (s :: chosen) (size + 1);
              Array.iter (fun e' -> covered.(e') <- covered.(e') - 1) t.sets.(s))
            sets_of_element.(e)
    end
  in
  ignore m;
  branch [] 0;
  List.sort compare !best

let lp_value t =
  let m = Lp.create () in
  let z =
    Array.init (num_sets t) (fun s ->
        Lp.add_var ~obj:1.0 m (Printf.sprintf "z%d" s))
  in
  for e = 0 to t.universe - 1 do
    let terms = ref [] in
    Array.iteri
      (fun s elems -> if Array.exists (fun e' -> e' = e) elems then terms := (1.0, z.(s)) :: !terms)
      t.sets;
    Lp.add_constraint m !terms Lp.Ge 1.0
  done;
  match Lp.solve m with
  | Lp.Optimal sol ->
      (Lp.objective_value sol, Array.map (fun v -> Lp.value sol v) z)
  | Lp.Infeasible | Lp.Unbounded | Lp.Aborted ->
      (* [make] guarantees coverage, so the LP is feasible and bounded. *)
      assert false

let gap_instance d =
  if d < 2 then invalid_arg "Cover.gap_instance: need d >= 2";
  if d > 20 then invalid_arg "Cover.gap_instance: d too large";
  let n = (1 lsl d) - 1 in
  (* element x (1-based bit pattern) is in set y iff <x, y> = 1 over F_2 *)
  let dot x y =
    let rec popcount v acc = if v = 0 then acc else popcount (v lsr 1) (acc + (v land 1)) in
    popcount (x land y) 0 land 1
  in
  let sets =
    Array.init n (fun yi ->
        let y = yi + 1 in
        let elems = ref [] in
        for xi = n - 1 downto 0 do
          if dot (xi + 1) y = 1 then elems := xi :: !elems
        done;
        Array.of_list !elems)
  in
  make ~universe:n ~sets
