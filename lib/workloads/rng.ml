type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state gamma;
  mix t.state

let split t =
  let s = int64 t in
  { state = mix s }

let split_n t k =
  if k < 0 then invalid_arg "Rng.split_n: negative count";
  (* explicit loop: Array.init's evaluation order is unspecified, and the
     children must come off the parent in index order for determinism *)
  let children = Array.make k t in
  for i = 0 to k - 1 do
    children.(i) <- split t
  done;
  children

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible because
     bounds are tiny compared to 2^62. The shift by 2 keeps the value
     within OCaml's 63-bit native int range (always non-negative). *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t =
  (* 53 random mantissa bits *)
  let bits = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bits *. (1.0 /. 9007199254740992.0)

let float_range t lo hi = lo +. ((hi -. lo) *. float t)

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
