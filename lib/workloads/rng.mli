(** Deterministic pseudo-random numbers (SplitMix64).

    Own implementation so that every experiment in the repository is
    reproducible from a single integer seed, independent of the stdlib's
    [Random] evolution across OCaml versions. SplitMix64 passes BigCrush
    and is trivially splittable, which keeps parallel workload generation
    deterministic. *)

type t

val create : int -> t
(** Seed a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** A statistically independent generator derived from (and advancing)
    [t].

    Stream independence: the child is seeded with a mixed 64-bit draw of
    the parent, so parent and child walk SplitMix64 orbits whose starting
    points are uniform over the full [2^64] state space. Two streams
    collide only if one's state walk lands on the other's start, a
    birthday-bound event of probability about [d^2 / 2^64] for [d] draws
    per stream — negligible for any workload in this repository. This is
    what makes per-worker generators on {!Parallel.Pool} domains safe:
    split once per worker {e before} dispatch and each domain owns a
    non-overlapping stream, deterministically. *)

val split_n : t -> int -> t array
(** [split_n t k] is [k] independent generators, each obtained by
    {!split} in order (the parent advances [k] times). Deterministic:
    equal parent states yield equal families. Raises [Invalid_argument]
    if [k < 0]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float
(** Uniform in [[0, 1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [[lo, hi)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** A uniform random permutation of [[0, n)]. *)
