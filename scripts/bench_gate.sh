#!/bin/sh
# bench_gate.sh — regression gates for the serving-layer benchmarks.
#
# Two gates over the same fresh run vs the committed BENCH_serve.json:
#
#   counters  HARD.  The per-record counter deltas (solver nodes, cache
#             hits, health checks, ...) are deterministic by
#             construction — fixed seeds, fixed iteration counts, no
#             background ticker — so any drift is a behaviour change,
#             not noise. Every baseline counter must match the fresh
#             value exactly, and a fresh counter absent from the
#             baseline fails too (new work on a hot path should be a
#             deliberate baseline update).
#
#   timings   WARN-ONLY.  ns_per_iter and latency percentiles compared
#             by ratio. Timings on shared CI hardware are noisy, so a
#             fresh value more than TOLERANCE times its baseline only
#             warns — the printout catches order-of-magnitude
#             regressions (a dropped cache, an accidental O(n^2)), a
#             human decides.
#
# A third gate needs no baseline at all:
#
#   profile-overhead  HARD.  Compares the two cache-hit records *within*
#             the fresh run — "serve cache hit n=12" vs its twin
#             measured with the 99 Hz CPU profiler armed. Both loops run
#             seconds apart on the same hardware, so the comparison
#             survives slow shared runners. Fails when the profiled
#             exact p50 exceeds base_p50 * (1 + PROFILE_TOLERANCE_PCT%)
#             + PROFILE_SLACK_US (absolute slack absorbs timer
#             granularity on a ~100 us loop).
#
# Usage:  scripts/bench_gate.sh [--counters|--timings|--profile-overhead|--all] [baseline.json]
#   TOLERANCE=3.0   ratio above which a timing warns (default 3.0)
#   PROFILE_TOLERANCE_PCT=3  profiled-p50 overhead bound in percent
#   PROFILE_SLACK_US=5       absolute slack added to the bound
#   SKIP_RUN=1      compare an existing $BENCH_SERVE_OUT instead of
#                   re-running the harness
set -eu

cd "$(dirname "$0")/.."

MODE=all
case "${1:-}" in
  --counters) MODE=counters; shift ;;
  --timings)  MODE=timings;  shift ;;
  --profile-overhead) MODE=profile; shift ;;
  --all)      MODE=all;      shift ;;
esac

BASELINE="${1:-BENCH_serve.json}"
TOLERANCE="${TOLERANCE:-3.0}"
FRESH="${BENCH_SERVE_OUT:-$(mktemp /tmp/bench_serve.XXXXXX.json)}"

if [ "$MODE" != "profile" ]; then
  [ -f "$BASELINE" ] || { echo "bench_gate: baseline $BASELINE not found" >&2; exit 2; }
fi

if [ "${SKIP_RUN:-0}" != "1" ]; then
  echo "bench_gate: running bench harness (BENCH_SERVE_OUT=$FRESH)"
  BENCH_SERVE_OUT="$FRESH" dune exec bench/main.exe >/dev/null
fi

[ -f "$FRESH" ] || { echo "bench_gate: fresh results $FRESH not found" >&2; exit 2; }

# Flatten one records file into "name<TAB>metric<TAB>value" timing lines.
# The JSON is the flat shape Obs.Expo.bench_records_json writes: one
# record object per line, numeric fields only where we look.
flatten_timings() {
  awk '
    /"name":/ {
      line = $0
      name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
      npi = line
      if (sub(/.*"ns_per_iter": /, "", npi)) {
        sub(/[,}].*/, "", npi)
        printf "%s\tns_per_iter\t%s\n", name, npi
      }
      if (match(line, /"percentiles": \{[^}]*\}/)) {
        ps = substr(line, RSTART, RLENGTH)
        sub(/.*\{/, "", ps); sub(/\}.*/, "", ps)
        n = split(ps, kv, /, /)
        for (i = 1; i <= n; i++) {
          split(kv[i], pair, /": /)
          key = pair[1]; gsub(/.*"/, "", key)
          printf "%s\t%s\t%s\n", name, key, pair[2]
        }
      }
    }
  ' "$1"
}

# Flatten counter deltas into the same "name<TAB>counter<TAB>value" shape.
flatten_counters() {
  awk '
    /"name":/ {
      line = $0
      name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
      if (match(line, /"counters": \{[^}]*\}/)) {
        cs = substr(line, RSTART, RLENGTH)
        sub(/.*\{/, "", cs); sub(/\}.*/, "", cs)
        if (cs != "") {
          n = split(cs, kv, /, /)
          for (i = 1; i <= n; i++) {
            split(kv[i], pair, /": /)
            key = pair[1]; gsub(/.*"/, "", key)
            printf "%s\t%s\t%s\n", name, key, pair[2]
          }
        }
      }
    }
  ' "$1"
}

base_flat=$(mktemp /tmp/bench_gate_base.XXXXXX)
fresh_flat=$(mktemp /tmp/bench_gate_fresh.XXXXXX)
trap 'rm -f "$base_flat" "$fresh_flat"' EXIT

overall=0

# --- counter gate (hard) ----------------------------------------------------
if [ "$MODE" = "counters" ] || [ "$MODE" = "all" ]; then
  flatten_counters "$BASELINE" > "$base_flat"
  flatten_counters "$FRESH" > "$fresh_flat"
  fail=0
  while IFS="$(printf '\t')" read -r name metric base; do
    fresh=$(awk -F'\t' -v n="$name" -v m="$metric" \
              '$1 == n && $2 == m { print $3 }' "$fresh_flat")
    if [ -z "$fresh" ]; then
      echo "bench_gate: FAIL $name / $metric: baseline $base, missing from fresh run"
      fail=1
    elif [ "$fresh" != "$base" ]; then
      echo "bench_gate: FAIL $name / $metric: baseline $base, fresh $fresh (counter drift)"
      fail=1
    else
      echo "bench_gate: ok   $name / $metric: $base"
    fi
  done < "$base_flat"
  while IFS="$(printf '\t')" read -r name metric fresh; do
    base=$(awk -F'\t' -v n="$name" -v m="$metric" \
             '$1 == n && $2 == m { print $3 }' "$base_flat")
    if [ -z "$base" ]; then
      echo "bench_gate: FAIL $name / $metric: fresh $fresh, not in baseline (new counter on a hot path)"
      fail=1
    fi
  done < "$fresh_flat"
  if [ "$fail" != "0" ]; then
    echo "bench_gate: counters FAILED (exact match vs $BASELINE required)"
    overall=1
  else
    echo "bench_gate: counters OK (exact match vs $BASELINE)"
  fi
fi

# --- profiler overhead gate (hard, within the fresh run) --------------------
if [ "$MODE" = "profile" ] || [ "$MODE" = "all" ]; then
  PROFILE_TOLERANCE_PCT="${PROFILE_TOLERANCE_PCT:-3}"
  PROFILE_SLACK_US="${PROFILE_SLACK_US:-5}"
  flatten_timings "$FRESH" > "$fresh_flat"
  base_p50=$(awk -F'\t' '$1 == "serve cache hit n=12" && $2 == "p50_us" { print $3 }' "$fresh_flat")
  prof_p50=$(awk -F'\t' '$1 == "serve cache hit n=12 profiled 99hz" && $2 == "p50_us" { print $3 }' "$fresh_flat")
  if [ -z "$base_p50" ] || [ -z "$prof_p50" ]; then
    echo "bench_gate: FAIL profile overhead: cache-hit p50 records missing from fresh run"
    overall=1
  else
    verdict=$(awk -v b="$base_p50" -v p="$prof_p50" \
                  -v tol="$PROFILE_TOLERANCE_PCT" -v slack="$PROFILE_SLACK_US" 'BEGIN {
      bound = b * (1 + tol / 100.0) + slack
      printf "%s %.1f %.1f", (p <= bound ? "ok" : "FAIL"), bound, 100 * (p - b) / b
    }')
    status=${verdict%% *}
    rest=${verdict#* }
    bound=${rest%% *}
    pct=${rest#* }
    printf 'bench_gate: %-4s profile overhead: p50 %s us -> %s us (%s%%, bound %s us)\n' \
      "$status" "$base_p50" "$prof_p50" "$pct" "$bound"
    if [ "$status" = "FAIL" ]; then
      echo "bench_gate: profile overhead FAILED (99 Hz CPU engine must cost <= ${PROFILE_TOLERANCE_PCT}% p50 + ${PROFILE_SLACK_US} us)"
      overall=1
    else
      echo "bench_gate: profile overhead OK (within ${PROFILE_TOLERANCE_PCT}% + ${PROFILE_SLACK_US} us)"
    fi
  fi
fi

# --- timing gate (warn-only) ------------------------------------------------
if [ "$MODE" = "timings" ] || [ "$MODE" = "all" ]; then
  flatten_timings "$BASELINE" > "$base_flat"
  flatten_timings "$FRESH" > "$fresh_flat"
  warn=0
  while IFS="$(printf '\t')" read -r name metric base; do
    fresh=$(awk -F'\t' -v n="$name" -v m="$metric" \
              '$1 == n && $2 == m { print $3 }' "$fresh_flat")
    if [ -z "$fresh" ]; then
      echo "bench_gate: WARN $name / $metric (in baseline, not in fresh run)"
      warn=1
      continue
    fi
    verdict=$(awk -v b="$base" -v f="$fresh" -v tol="$TOLERANCE" 'BEGIN {
      if (b <= 0) { print "ok skip"; exit }
      r = f / b
      printf "%s %.2f", (r > tol ? "WARN" : "ok"), r
    }')
    status=${verdict%% *}
    ratio=${verdict#* }
    printf 'bench_gate: %-4s %s / %s: baseline %s, fresh %s (x%s)\n' \
      "$status" "$name" "$metric" "$base" "$fresh" "$ratio"
    [ "$status" = "WARN" ] && warn=1
  done < "$base_flat"
  if [ "$warn" != "0" ]; then
    echo "bench_gate: timings have WARNINGS (tolerance x$TOLERANCE vs $BASELINE) — not failing"
  else
    echo "bench_gate: timings OK (all within x$TOLERANCE of $BASELINE)"
  fi
fi

exit $overall
