#!/bin/sh
# bench_gate.sh — regression gate for the serving-layer benchmarks.
#
# Runs the bench harness with BENCH_SERVE_OUT pointed at a scratch file
# and compares the fresh ns_per_iter and latency percentiles per record
# against the committed BENCH_serve.json baseline. A fresh value more
# than TOLERANCE times its baseline fails the gate; faster-than-baseline
# never fails. Timings on shared CI hardware are noisy, so the default
# tolerance is deliberately loose — the gate catches order-of-magnitude
# regressions (a dropped cache, an accidental O(n^2)), not percent-level
# drift.
#
# Usage:  scripts/bench_gate.sh [baseline.json]
#   TOLERANCE=3.0   ratio above which a metric fails (default 3.0)
#   SKIP_RUN=1      compare an existing $BENCH_SERVE_OUT instead of
#                   re-running the harness
set -eu

cd "$(dirname "$0")/.."

BASELINE="${1:-BENCH_serve.json}"
TOLERANCE="${TOLERANCE:-3.0}"
FRESH="${BENCH_SERVE_OUT:-$(mktemp /tmp/bench_serve.XXXXXX.json)}"

[ -f "$BASELINE" ] || { echo "bench_gate: baseline $BASELINE not found" >&2; exit 2; }

if [ "${SKIP_RUN:-0}" != "1" ]; then
  echo "bench_gate: running bench harness (BENCH_SERVE_OUT=$FRESH)"
  BENCH_SERVE_OUT="$FRESH" dune exec bench/main.exe >/dev/null
fi

[ -f "$FRESH" ] || { echo "bench_gate: fresh results $FRESH not found" >&2; exit 2; }

# Flatten one records file into "name<TAB>metric<TAB>value" lines. The
# JSON is the flat shape Obs.Expo.bench_records_json writes: one record
# object per line, numeric fields only where we look.
flatten() {
  awk '
    /"name":/ {
      line = $0
      name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
      npi = line
      if (sub(/.*"ns_per_iter": /, "", npi)) {
        sub(/[,}].*/, "", npi)
        printf "%s\tns_per_iter\t%s\n", name, npi
      }
      if (match(line, /"percentiles": \{[^}]*\}/)) {
        ps = substr(line, RSTART, RLENGTH)
        sub(/.*\{/, "", ps); sub(/\}.*/, "", ps)
        n = split(ps, kv, /, /)
        for (i = 1; i <= n; i++) {
          split(kv[i], pair, /": /)
          key = pair[1]; gsub(/.*"/, "", key)
          printf "%s\t%s\t%s\n", name, key, pair[2]
        }
      }
    }
  ' "$1"
}

base_flat=$(mktemp /tmp/bench_gate_base.XXXXXX)
fresh_flat=$(mktemp /tmp/bench_gate_fresh.XXXXXX)
trap 'rm -f "$base_flat" "$fresh_flat"' EXIT
flatten "$BASELINE" > "$base_flat"
flatten "$FRESH" > "$fresh_flat"

fail=0
while IFS="$(printf '\t')" read -r name metric base; do
  fresh=$(awk -F'\t' -v n="$name" -v m="$metric" \
            '$1 == n && $2 == m { print $3 }' "$fresh_flat")
  if [ -z "$fresh" ]; then
    echo "bench_gate: MISSING  $name / $metric (in baseline, not in fresh run)"
    fail=1
    continue
  fi
  verdict=$(awk -v b="$base" -v f="$fresh" -v tol="$TOLERANCE" 'BEGIN {
    if (b <= 0) { print "ok skip"; exit }
    r = f / b
    printf "%s %.2f", (r > tol ? "FAIL" : "ok"), r
  }')
  status=${verdict%% *}
  ratio=${verdict#* }
  printf 'bench_gate: %-4s %s / %s: baseline %s, fresh %s (x%s)\n' \
    "$status" "$name" "$metric" "$base" "$fresh" "$ratio"
  [ "$status" = "FAIL" ] && fail=1
done < "$base_flat"

if [ "$fail" != "0" ]; then
  echo "bench_gate: FAILED (tolerance x$TOLERANCE vs $BASELINE)"
  exit 1
fi
echo "bench_gate: OK (all metrics within x$TOLERANCE of $BASELINE)"
