(* End-to-end smoke of lib/check, run as part of `dune runtest` via the
   @check-smoke alias:

   1. replay every committed reproducer in test/corpus (a regression
      there means a historical bug is back);
   2. a deterministic clean fuzz burst over all four environments must
      find zero violations;
   3. the checker must still be able to catch bugs: a deliberately
      broken algorithm (Props.mutant) is fuzzed, must be caught, must
      shrink to a handful of jobs, and its written reproducer must
      replay from disk. *)

let failures = ref 0

let check name ok =
  if ok then Printf.printf "ok   %s\n" name
  else begin
    incr failures;
    Printf.printf "FAIL %s\n" name
  end

let replay_committed_corpus () =
  let entries = Check.Corpus.load_dir "corpus" in
  check "committed corpus is not empty" (entries <> []);
  List.iter
    (fun (path, loaded) ->
      match loaded with
      | Error msg ->
          check (Printf.sprintf "load %s (%s)" path msg) false
      | Ok entry ->
          let vs = Check.Corpus.replay entry in
          List.iter
            (fun v -> Printf.printf "     %s\n" (Check.Violation.to_string v))
            vs;
          check (Printf.sprintf "replay %s" (Filename.basename path)) (vs = []))
    entries

let clean_fuzz_burst () =
  let cfg =
    { Check.Driver.default with budget = Check.Driver.Cases 120; seed = 20260805 }
  in
  let s = Check.Driver.run cfg in
  List.iter
    (fun (f : Check.Driver.failure) ->
      List.iter
        (fun v -> Printf.printf "     %s\n" (Check.Violation.to_string v))
        f.Check.Driver.violations)
    s.Check.Driver.failures;
  check
    (Printf.sprintf "clean fuzz burst (%d cases, %d violations)"
       s.Check.Driver.cases s.Check.Driver.violations)
    (s.Check.Driver.cases = 120 && s.Check.Driver.violations = 0)

let mutant_is_caught () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "check-smoke-corpus" in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  let registry = Check.Props.mutant :: Check.Props.registry () in
  let cfg =
    {
      Check.Driver.default with
      budget = Check.Driver.Cases 40;
      seed = 77;
      algo_filter = [ "mutant-stack" ];
      corpus_dir = Some dir;
    }
  in
  let s = Check.Driver.run ~registry cfg in
  check "mutant caught" (s.Check.Driver.failures <> []);
  check "every failure shrunk to <= 6 jobs"
    (List.for_all
       (fun (f : Check.Driver.failure) ->
         Core.Instance.num_jobs f.Check.Driver.shrunk <= 6)
       s.Check.Driver.failures);
  let entries = Check.Corpus.load_dir dir in
  check "reproducers written" (entries <> []);
  check "reproducers replay from the corpus"
    (List.for_all
       (fun (_, loaded) ->
         match loaded with
         | Error _ -> false
         | Ok entry -> Check.Corpus.replay ~registry entry <> [])
       entries);
  (* the corpus writes and shrink steps must have surfaced in check.* *)
  let counter name =
    match Obs.Counter.find name with
    | Some c -> Obs.Counter.value c
    | None -> 0
  in
  check "check.cases counted" (counter "check.cases" > 0);
  check "check.violations counted" (counter "check.violations" > 0);
  check "check.shrink_steps counted" (counter "check.shrink_steps" > 0);
  check "check.corpus_writes counted" (counter "check.corpus_writes" > 0)

let () =
  replay_committed_corpus ();
  clean_fuzz_burst ();
  mutant_is_caught ();
  if !failures > 0 then begin
    Printf.printf "%d check(s) failed\n" !failures;
    exit 1
  end;
  print_endline "check smoke passed"
