Generate a deterministic identical-machines instance:

  $ schedtool gen --env identical -n 4 -m 2 -k 2 --seed 3
  # setup-scheduling instance
  env identical
  machines 2
  classes 2
  setups 15 34
  jobs 4
  sizes 12 70 62 8
  job_class 0 1 0 1

Bounds on a generated instance:

  $ schedtool gen --env uniform -n 6 -m 2 -k 2 --seed 5 -o inst.txt
  wrote inst.txt
  $ schedtool bounds inst.txt
  job bound      57.4173
  volume bound   102.009
  lower bound    102.009
  naive upper    244.72
  LP lower bound 102.009 (7 LP solves)

Exact solve and verification roundtrip:

  $ schedtool solve --algo exact --save best.sched inst.txt
  makespan 117.064
  wrote best.sched
  $ schedtool verify inst.txt best.sched | head -3
  valid schedule
  makespan 117.064 (lower bound 102.009)
  setups paid: 3

Comparing algorithms:

  $ schedtool compare --exact inst.txt
  lower bound 102.009
  
  algorithm      makespan  setups
  -------------  --------  ------
  greedy          131.001       4
  lpt             131.001       4
  oblivious-lpt       123       2
  ptas eps=1/2    158.873       2
  rounding            162       2
  exact           117.064       3

Error handling:

  $ schedtool solve --algo bogus inst.txt
  schedtool: unknown algorithm "bogus"
  [124]
  $ schedtool gen --env martian
  schedtool: unknown environment "martian"
  [124]

CSV experiment export:

  $ schedtool experiments --csv E4 | head -3
  d,N=m,K,n jobs,frac UB,integral LB,greedy sched,certified gap,ln n + ln m
  2,3,3,9,1.500,2.000,3,1.333,3.296
  3,7,7,49,1.750,3.000,4,1.714,5.838

Observability: --stats prints the solve's nodes/optimality and the solver
counter deltas on stderr, keeping stdout machine-readable; --trace writes
a Chrome trace-event file (wall time is nondeterministic, so it is
filtered out). Checked in two invocations so stdout and stderr stay
deterministic:

  $ schedtool solve --algo exact --stats --trace trace.json inst.txt 2>/dev/null
  makespan 117.064
  $ schedtool solve --algo exact --stats --trace trace.json inst.txt 2>&1 >/dev/null | grep -v "wall time"
  nodes explored 23
  optimal yes
  
  counter                        delta
  -----------------------------  -----
  algos.exact.incumbent_updates     +4
  algos.exact.nodes                +23
  
  wrote trace trace.json


  $ grep -c '"ph":"B"' trace.json
  3
  $ grep -c '"ph":"E"' trace.json
  3

An unwritable trace path is a CLI error, not a crash (stderr only, so
the message ordering is deterministic):

  $ schedtool solve --algo exact --trace /nonexistent/t.json inst.txt 2>&1 >/dev/null
  schedtool: cannot write trace: /nonexistent/t.json: No such file or directory
  [124]

Portfolio solve:

  $ schedtool solve -a portfolio inst.txt
  winner: greedy-longest
    greedy-longest     123
    greedy             131.001
    lpt-placeholders   131.001
    batch-lpt          123
    ptas               158.873
    rounding           162
  makespan 123
