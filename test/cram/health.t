The health v1 admin frame over a stdio session. The payload is
line-oriented — fixed keys plus repeated meter/slo/heartbeat lines
carrying k=v tokens — so scrapers (schedtool top) need no JSON parser.
Nothing is stuck and no meter is saturated in a fresh server, so the
composite status and liveness are both ok; fills, ages and burn rates
vary, so value-bearing lines are pattern-checked.

  $ printf 'health v1\nend\n' | schedtool serve --stdio > out.txt
  $ grep -vE '^(meter|slo|heartbeat|uptime_s) ' out.txt
  response v1
  status health
  payload
  status ok
  liveness ok
  task_budget_s 30
  end

The server registers three saturation meters (pool queue fill, cache
fill, heap footprint) and two SLO objectives (availability, latency)
reported over a 5m and a 1h burn-rate window:

  $ grep -oE '^meter name=[a-z.]+' out.txt | sort
  meter name=cache
  meter name=gc.heap
  meter name=pool.queue
  meter name=sessions
  $ grep -oE '^slo name=[a-z]+ window=[0-9a-z]+' out.txt | sort
  slo name=availability window=1h
  slo name=availability window=5m
  slo name=latency window=1h
  slo name=latency window=5m
  $ grep -c '^uptime_s ' out.txt
  1

Only the session's own domain has heartbeat history (pool workers
register on their first task), and every heartbeat line carries the
full field set:

  $ grep -cE '^heartbeat domain=[0-9]+ state=(idle|working|waiting) task=[^ ]+ req=[^ ]+ beat_age_s=[0-9.]+ task_age_s=[0-9.]+$' out.txt
  1

The watchdog budget is configurable per server:

  $ printf 'health v1\nend\n' | schedtool serve --stdio --task-budget 5 \
  >   | grep '^task_budget_s'
  task_budget_s 5
