Admin surface against a live socket: start a server, drive it with
loadgen, then scrape metrics and flight-recorder events over the same
socket. The server's banner goes to a log so the session stays quiet.

  $ schedtool gen --env uniform -n 10 -m 3 -k 3 --seed 5 -o inst.txt
  wrote inst.txt
  $ schedtool serve --socket live.sock > server.log 2>&1 & pid=$!
  $ for i in $(seq 200); do [ -S live.sock ] && break; sleep 0.05; done

Four permuted replays of one instance: the first misses, the rest hit
the canonicalizing cache (latency is wall time and therefore filtered):

  $ schedtool loadgen --socket live.sock -n 4 --permute --seed 3 inst.txt \
  >   | grep -v 'latency us'
  requests  4
  hits      3
  misses    1
  errors    0
  degraded  0
  last makespan 109.175

`schedtool metrics --socket` scrapes the server's exposition in-band:
the four requests are in the labeled counter and each one left a sample
in the per-request allocation histogram; the GC gauges ride along
(values depend on heap state, so only their presence is checked):

  $ schedtool metrics --socket live.sock \
  >   | grep -E 'serve_requests\{|serve_request_alloc_bytes_count'
  serve_requests{status="degraded"} 0
  serve_requests{status="error"} 0
  serve_requests{status="ok"} 4
  serve_request_alloc_bytes_count 4
  $ schedtool metrics --socket live.sock | grep -cE '^gc_'
  7

`schedtool events` fetches the flight recorder's retained events as
JSON lines — the whole request lifecycle is there, down to the dispatch
decision and the exact solver (timestamps vary, so only names):

  $ schedtool events --socket live.sock -n 50 --level info \
  >   | grep -o '"name":"[^"]*"' | sort -u
  "name":"algos.exact.solve"
  "name":"serve.dispatch.decision"
  "name":"serve.request"
  "name":"serve.request.done"

`schedtool top --once` renders one plain-text dashboard frame over the
same socket: composite health, SLO burn rates, request totals, latency
percentiles, saturation meters, per-domain heartbeats and the busiest
event sources (values vary, so stable lines and shapes are checked):

  $ schedtool top --socket live.sock --once > top.txt
  $ grep -E '^(health|liveness) ' top.txt
  health ok
  liveness ok
  $ grep -c '^slo availability ' top.txt
  2
  $ grep -c '^slo latency ' top.txt
  2
  $ grep '^requests ' top.txt
  requests ok=4 degraded=0 error=0 total=4
  $ grep -c '^latency p50=' top.txt
  1
  $ grep -c '^meters ' top.txt
  1
  $ [ "$(grep -c '^domain ' top.txt)" -ge 1 ] && echo have-heartbeats
  have-heartbeats
  $ grep -o 'serve.request.done=[0-9]*' top.txt
  serve.request.done=4

The events frame's filters apply server-side: a severity floor drops
the info-level lifecycle events (this healthy run has nothing at warn
or above), and a count keeps only the newest lines:

  $ schedtool events --socket live.sock --level warn
  $ schedtool events --socket live.sock -n 2 | grep -c '"name":'
  2
  $ schedtool events --socket live.sock -n 2 | tail -1 | grep -o '"name":"serve.request.done"'
  "name":"serve.request.done"

`schedtool metrics --watch` re-scrapes on an interval and prints only
the series that changed between scrapes; the first scrape is the
baseline:

  $ schedtool metrics --socket live.sock --watch 0.2 --scrapes 2 \
  >   | grep -c '^scrape '
  2

  $ kill $pid 2>/dev/null
  $ wait $pid 2>/dev/null || true

Watch mode needs a live socket to diff against:

  $ schedtool metrics --watch 1
  schedtool: --watch requires --socket
  [124]

With no server at the socket, loadgen fails loudly instead of reporting
an all-error run as success:

  $ schedtool loadgen --socket missing.sock -n 2 inst.txt
  schedtool: cannot connect to missing.sock: No such file or directory
  [124]
