Multiplexed TCP serving: one readiness-driven event loop owns every
socket, feeds bytes to the incremental frame parser, and dispatches
solves onto the worker pool behind a bounded admission queue.

  $ schedtool gen --env uniform -n 10 -m 3 -k 3 --seed 5 -o inst.txt
  wrote inst.txt

Bind an ephemeral port; the stderr banner carries the kernel-chosen
address:

  $ schedtool serve --tcp 127.0.0.1:0 > server.log 2>&1 & pid=$!
  $ for i in $(seq 200); do grep -q 'serving on' server.log 2>/dev/null && break; sleep 0.05; done
  $ addr=$(grep -o 'serving on [0-9.:]*' server.log | head -1 | awk '{print $3}')

TCP round-trip: loadgen accepts HOST:PORT through the same --socket
argument, and the canonicalizing cache behaves exactly like the
blocking transport (latency is wall time and therefore filtered):

  $ schedtool loadgen --socket "$addr" -n 4 --permute --seed 3 inst.txt \
  >   | grep -v 'latency us'
  requests  4
  hits      3
  misses    1
  errors    0
  degraded  0
  last makespan 109.175

A pipelined burst on one connection: every request is written before
any response is read; replies come back in request order, all served
from the now-warm cache:

  $ schedtool loadgen --socket "$addr" -n 6 --pipeline inst.txt \
  >   | grep -v 'latency us'
  requests  6
  hits      6
  misses    0
  errors    0
  degraded  0
  last makespan 109.175

The admin surface scrapes over TCP too, and the mux exports its own
counters and gauges (two loadgen connections plus this scrape's):

  $ schedtool metrics --socket "$addr" \
  >   | grep -E '^serve_mux_(accepted|conn_rejected|connections|queue_depth) '
  serve_mux_accepted 3
  serve_mux_conn_rejected 0
  serve_mux_connections 1
  serve_mux_queue_depth 0

  $ kill $pid 2>/dev/null
  $ wait $pid 2>/dev/null || true

Overload: one pool worker (-j 2) and a queue of 4. A pipelined burst of
9 identical requests lands while the first (a ~100ms exact solve) is
still running: 1 misses, 4 queue behind it (and hit the cache it
fills), 4 overflow the queue and are shed with degraded fast-path
replies — every frame answered, none dropped:

  $ schedtool gen --env uniform -n 20 -m 5 -k 4 --seed 7 -o hard.txt
  wrote hard.txt
  $ schedtool serve --tcp 127.0.0.1:0 -j 2 --max-pending 4 > server2.log 2>&1 & pid=$!
  $ for i in $(seq 200); do grep -q 'serving on' server2.log 2>/dev/null && break; sleep 0.05; done
  $ addr=$(grep -o 'serving on [0-9.:]*' server2.log | head -1 | awk '{print $3}')
  $ schedtool loadgen --socket "$addr" -n 9 --pipeline --solver exact hard.txt \
  >   | grep -vE 'latency us|last makespan'
  requests  9
  hits      4
  misses    5
  errors    0
  degraded  4

The queue stayed bounded (high-water mark = --max-pending) and the
admission ledger accounts for every solver-bound frame:

  $ schedtool metrics --socket "$addr" | grep -E '^serve_mux_queue_(depth|peak) '
  serve_mux_queue_depth 0
  serve_mux_queue_peak 4
  $ schedtool metrics --socket "$addr" | grep -E '^serve_mux_admission'
  serve_mux_admission{outcome="admitted"} 5
  serve_mux_admission{outcome="shed_deadline"} 0
  serve_mux_admission{outcome="shed_pressure"} 0
  serve_mux_admission{outcome="shed_queue_full"} 4

A held-open slow client (partial frame, never completed) occupies one
connection while a full burst on other connections is served untouched:

  $ schedtool loadgen --socket "$addr" --connections 2 --hold-open \
  >   --hold-seconds 30 inst.txt > hold.log 2>&1 & hpid=$!
  $ for i in $(seq 200); do grep -q 'holding' hold.log 2>/dev/null && break; sleep 0.05; done
  $ schedtool loadgen --socket "$addr" -n 6 --connections 3 inst.txt \
  >   | grep -v 'latency us'
  connections 3
  requests  6
  hits      5
  misses    1
  errors    0
  degraded  0
  last makespan 109.175
  $ kill $hpid 2>/dev/null
  $ wait $hpid 2>/dev/null || true
  $ kill $pid 2>/dev/null
  $ wait $pid 2>/dev/null || true

Shard routing: a router consistent-hashes frames across two backend
servers by the relabeling-invariant instance fingerprint, so permuted
replays keep their shard affinity (and its warm cache) through the
proxy:

  $ schedtool serve --socket b0.sock > b0.log 2>&1 & bpid0=$!
  $ schedtool serve --socket b1.sock > b1.log 2>&1 & bpid1=$!
  $ for i in $(seq 200); do [ -S b0.sock ] && [ -S b1.sock ] && break; sleep 0.05; done
  $ schedtool serve --router --backends b0.sock,b1.sock --socket router.sock \
  >   > router.log 2>&1 & rpid=$!
  $ for i in $(seq 200); do [ -S router.sock ] && break; sleep 0.05; done
  $ schedtool loadgen --socket router.sock -n 4 --permute --seed 3 inst.txt \
  >   | grep -v 'latency us'
  requests  4
  hits      3
  misses    1
  errors    0
  degraded  0
  last makespan 109.175

Admin frames have no shard affinity and pin to backend 0, whose
exposition answers through the router:

  $ schedtool metrics --socket router.sock | grep -c '^serve_requests{'
  3
  $ kill $rpid $bpid0 $bpid1 2>/dev/null
  $ wait 2>/dev/null || true
