Continuous profiling: a live serve socket answers profile v1 frames —
status, engine toggles, and whole windowed captures rendered as
collapsed stacks or a flamegraph SVG — while the pool keeps serving.

  $ schedtool gen --env uniform -n 40 -m 4 -k 4 --seed 7 -o inst.txt
  wrote inst.txt
  $ schedtool serve --socket live.sock -j 4 > server.log 2>&1 & pid=$!
  $ for i in $(seq 200); do [ -S live.sock ] && break; sleep 0.05; done

A fresh server has no engine armed and empty rings, so the status
frame is fully deterministic:

  $ schedtool profile --socket live.sock --action status
  engine mode=- running=false rate=0
  totals samples=0 dropped=0 overruns=0 retained=0 rings=0

Windowed capture under load: session loadgen keeps the pool solving
while the capture window is open, so the collapsed stacks name the
solver's own modules, not just transport plumbing:

  $ schedtool loadgen --socket live.sock --sessions 2000 --mutations 6 \
  >   inst.txt > loadgen.out 2>&1 & lgpid=$!
  $ schedtool profile --socket live.sock --seconds 3 -o prof.collapsed
  wrote prof.collapsed
  $ [ -s prof.collapsed ] && echo non-empty
  non-empty

Every payload line is root-first `frame;frame;... weight`:

  $ awk 'NF < 2 { bad = 1 } END { print (bad ? "malformed" : "well-formed") }' prof.collapsed
  well-formed
  $ [ $(grep -cE 'Algos__|Lp__' prof.collapsed) -ge 1 ] && echo have-solver-frames
  have-solver-frames

The same capture renders straight to a self-contained flamegraph SVG
(no external tooling):

  $ schedtool profile --socket live.sock --seconds 1 \
  >   -o prof2.collapsed --svg flame.svg
  wrote prof2.collapsed
  wrote flame.svg
  $ grep -c '^<?xml' flame.svg
  1
  $ grep -o '</svg>' flame.svg
  </svg>
  $ [ $(grep -c '<rect' flame.svg) -ge 2 ] && echo have-rects
  have-rects

`schedtool top --hotspots` folds a short live capture into the
refresh loop and shows the hottest frames by self time:

  $ schedtool top --socket live.sock --once --hotspots 0.5 > top.out
  $ grep -c '^hotspots' top.out
  1

The engines are exclusive: arming one refuses a second, and stop
disarms (start echoes the engine line; the totals line varies with
earlier captures' sample counts):

  $ schedtool profile --socket live.sock --action start | head -1
  engine mode=cpu running=true rate=99
  $ schedtool profile --socket live.sock --seconds 1 2>&1
  schedtool: profiler already running (mode=cpu)
  [124]
  $ schedtool profile --socket live.sock --action stop > /dev/null
  $ schedtool profile --socket live.sock --action status | head -1
  engine mode=- running=false rate=0

  $ kill $lgpid 2>/dev/null; wait $lgpid 2>/dev/null || true
  $ kill -INT $pid
  $ wait $pid 2>/dev/null || true
