Smoke test for the serving layer: one stdio session answering a cold
solve, a cache hit on a relabeled copy of the same instance, and a
malformed request — all without crashing. The sample frames live in
examples/requests/; elapsed_us is wall time and therefore filtered.

  $ samples=../../examples/requests
  $ cat $samples/solve.txt $samples/permuted.txt $samples/malformed.txt \
  >   | schedtool serve --stdio | grep -v elapsed_us
  response v1
  status ok
  trace r0
  solver exact
  cache miss
  degraded false
  makespan 112
  assignment 1 0 1 0
  end
  response v1
  status ok
  trace r1
  solver exact
  cache hit
  degraded false
  makespan 112
  assignment 0 1 0 1
  end
  response v1
  status error
  error line 6: sizes: value 2 is -62, must be >= 0
  end

A frame with an unknown header is drained and answered with an error,
and the session keeps going — the next frame still gets served:

  $ { printf 'request v9\njunk\nend\n'; cat $samples/solve.txt; } \
  >   | schedtool serve --stdio | grep -v elapsed_us
  response v1
  status error
  error bad request header "request v9" (expected "request v1", "stats v1", "events v1", "health v1", "explain v1", "session v1" or "profile v1")
  end
  response v1
  status ok
  trace r0
  solver exact
  cache miss
  degraded false
  makespan 112
  assignment 1 0 1 0
  end

A stats admin frame is answered in-band with the server's live metrics
as Prometheus exposition: the solve that preceded it shows up in the
labeled request counter and the latency histogram (bucket bounds and
sums are timing-dependent, so only the stable lines are kept):

  $ cat $samples/solve.txt $samples/stats.txt \
  >   | schedtool serve --stdio \
  >   | grep -E 'status stats|^format|serve_requests\{|latency_us_(count|bucket\{le="\+Inf"\})'
  status stats
  format prometheus
  serve_requests{status="degraded"} 0
  serve_requests{status="error"} 0
  serve_requests{status="ok"} 1
  algos_portfolio_candidate_latency_us_bucket{le="+Inf"} 0
  algos_portfolio_candidate_latency_us_count 0
  pool_queue_wait_latency_us_bucket{le="+Inf"} 0
  pool_queue_wait_latency_us_count 0
  serve_cache_lookup_latency_us_bucket{le="+Inf"} 0
  serve_cache_lookup_latency_us_count 0
  serve_request_latency_us_bucket{le="+Inf"} 1
  serve_request_latency_us_count 1
  serve_session_repair_latency_us_bucket{le="+Inf"} 0
  serve_session_repair_latency_us_count 0

The same session also profiled the request's allocations — one sample in
the per-request allocation histogram — and refreshed the GC gauges
(values are heap-state dependent, so only names are checked; note that
quick_stat's cross-domain aggregates lag until a major collection, so
asserting nonzero values here would be flaky):

  $ cat $samples/solve.txt $samples/stats.txt \
  >   | schedtool serve --stdio \
  >   | grep -E 'alloc_bytes_(count|bucket\{le="\+Inf"\})'
  serve_request_alloc_bytes_bucket{le="+Inf"} 1
  serve_request_alloc_bytes_count 1
  $ cat $samples/solve.txt $samples/stats.txt \
  >   | schedtool serve --stdio | grep -oE '^gc_[a-z_]+' | sort
  gc_compactions
  gc_heap_words
  gc_major_collections
  gc_major_words
  gc_minor_collections
  gc_minor_words
  gc_promoted_words

An events admin frame answers with the flight recorder's retained
events as JSON lines; the preceding solve's full lifecycle is there
(timestamps vary, so only the event names are kept):

  $ { cat $samples/solve.txt; printf 'events v1\nlevel info\nend\n'; } \
  >   | schedtool serve --stdio | grep -o '"name":"[^"]*"'
  "name":"serve.request"
  "name":"algos.exact.solve"
  "name":"serve.dispatch.decision"
  "name":"serve.request.done"

With a slow threshold of 0 and a slow-request log, the solve dumps its
recorder slice: a header line naming the trigger, then the request's
events, every line tagged with the request id:

  $ cat $samples/solve.txt \
  >   | schedtool serve --stdio --slow-ms 0 --slow-log dump.jsonl >/dev/null
  $ head -1 dump.jsonl | grep -o '"dump":"[^"]*"'
  "dump":"slow-request"
  $ grep -o '"name":"[^"]*"' dump.jsonl | sort
  "name":"algos.exact.solve"
  "name":"serve.dispatch.decision"
  "name":"serve.request"
  "name":"serve.request.done"
  $ grep -c '"req":"r0"' dump.jsonl
  5
  $ wc -l < dump.jsonl
  5

`schedtool metrics` renders the same exposition for the current process:
with no serving traffic the labeled cells exist but sit at zero (the
request counters are resolved when the server module loads):

  $ schedtool metrics | grep 'serve_requests{'
  serve_requests{status="degraded"} 0
  serve_requests{status="error"} 0
  serve_requests{status="ok"} 0

A zero deadline on a large instance degrades to list scheduling instead
of timing out; the reply is flagged so callers can tell:

  $ schedtool gen --env uniform -n 150 -m 8 -k 6 --seed 7 -o big.txt
  wrote big.txt
  $ { printf 'request v1\ndeadline_ms 0\ninstance\n'; cat big.txt; echo end; } \
  >   | schedtool serve --stdio | grep -E 'status|degraded|solver'
  status ok
  solver greedy
  degraded true
