Smoke test for the serving layer: one stdio session answering a cold
solve, a cache hit on a relabeled copy of the same instance, and a
malformed request — all without crashing. The sample frames live in
examples/requests/; elapsed_us is wall time and therefore filtered.

  $ samples=../../examples/requests
  $ cat $samples/solve.txt $samples/permuted.txt $samples/malformed.txt \
  >   | schedtool serve --stdio | grep -v elapsed_us
  response v1
  status ok
  solver exact
  cache miss
  degraded false
  makespan 112
  assignment 1 0 1 0
  end
  response v1
  status ok
  solver exact
  cache hit
  degraded false
  makespan 112
  assignment 0 1 0 1
  end
  response v1
  status error
  error line 6: sizes: value 2 is -62, must be >= 0
  end

A frame with an unknown header is drained and answered with an error,
and the session keeps going — the next frame still gets served:

  $ { printf 'request v9\njunk\nend\n'; cat $samples/solve.txt; } \
  >   | schedtool serve --stdio | grep -v elapsed_us
  response v1
  status error
  error bad request header "request v9" (expected "request v1" or "stats v1")
  end
  response v1
  status ok
  solver exact
  cache miss
  degraded false
  makespan 112
  assignment 1 0 1 0
  end

A stats admin frame is answered in-band with the server's live metrics
as Prometheus exposition: the solve that preceded it shows up in the
labeled request counter and the latency histogram (bucket bounds and
sums are timing-dependent, so only the stable lines are kept):

  $ cat $samples/solve.txt $samples/stats.txt \
  >   | schedtool serve --stdio \
  >   | grep -E 'status stats|^format|serve_requests\{|latency_us_(count|bucket\{le="\+Inf"\})'
  status stats
  format prometheus
  serve_requests{status="degraded"} 0
  serve_requests{status="error"} 0
  serve_requests{status="ok"} 1
  serve_cache_lookup_latency_us_bucket{le="+Inf"} 1
  serve_cache_lookup_latency_us_count 1
  serve_request_latency_us_bucket{le="+Inf"} 1
  serve_request_latency_us_count 1

`schedtool metrics` renders the same exposition for the current process:
with no serving traffic the labeled cells exist but sit at zero (the
request counters are resolved when the server module loads):

  $ schedtool metrics | grep 'serve_requests{'
  serve_requests{status="degraded"} 0
  serve_requests{status="error"} 0
  serve_requests{status="ok"} 0

A zero deadline on a large instance degrades to list scheduling instead
of timing out; the reply is flagged so callers can tell:

  $ schedtool gen --env uniform -n 150 -m 8 -k 6 --seed 7 -o big.txt
  wrote big.txt
  $ { printf 'request v1\ndeadline_ms 0\ninstance\n'; cat big.txt; echo end; } \
  >   | schedtool serve --stdio | grep -E 'status|degraded|solver'
  status ok
  solver greedy
  degraded true
