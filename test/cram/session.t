Smoke test for the session subsystem: one stdio stream carrying a full
session lifecycle — create, an exact first resolve, a job addition
repaired incrementally, a job removal repaired incrementally, close.
The sample frames live in examples/requests/session.txt; elapsed_us is
wall time and therefore filtered.

  $ samples=../../examples/requests
  $ cat $samples/session.txt | schedtool serve --stdio | grep -v elapsed_us
  response v1
  status session
  id demo
  op create
  trace r0
  generation 0
  jobs 12
  end
  response v1
  status session
  id demo
  op resolve
  trace r1
  generation 0
  jobs 12
  mode full
  solver exact
  cache miss
  degraded false
  makespan 81.9587
  assignment 1 0 1 1 3 2 0 3 0 0 0 0
  end
  response v1
  status session
  id demo
  op add-jobs
  trace r2
  generation 1
  jobs 13
  end
  response v1
  status session
  id demo
  op resolve
  trace r3
  generation 1
  jobs 13
  mode repair
  solver incremental-repair
  cache miss
  degraded false
  makespan 85.9305
  assignment 1 0 1 1 0 2 3 3 0 0 3 0 0
  end
  response v1
  status session
  id demo
  op drop-jobs
  trace r4
  generation 2
  jobs 12
  end
  response v1
  status session
  id demo
  op resolve
  trace r5
  generation 2
  jobs 12
  mode repair
  solver incremental-repair
  cache miss
  degraded false
  makespan 75.2747
  assignment 1 1 1 0 2 1 3 0 3 0 0 0
  end
  response v1
  status session
  id demo
  op close
  trace r6
  generation 2
  jobs 12
  end

Malformed session frames are drained and answered with an error, and
the stream keeps going; ops on an id that was never created (or was
already closed) error without killing the session loop:

  $ { printf 'session v1\nop explode\nid x\nend\n'; \
  >   printf 'session v1\nop resolve\nid ghost\nend\n'; \
  >   printf 'session v1\nop close\nid ghost\nend\n'; } \
  >   | schedtool serve --stdio | grep -v elapsed_us
  response v1
  status error
  error op: expected create|add-jobs|drop-jobs|resolve|close, got "explode"
  end
  response v1
  status error
  error unknown session id "ghost"
  end
  response v1
  status error
  error unknown session id "ghost"
  end

Creating the same id twice is rejected; the first session stays live:

  $ inst='instance\nenv identical\nmachines 2\nclasses 1\nsetups 5\njobs 2\nsizes 3 4\njob_class 0 0\n'
  $ { printf "session v1\nop create\nid dup\n$inst"; echo end; \
  >   printf "session v1\nop create\nid dup\n$inst"; echo end; \
  >   printf 'session v1\nop close\nid dup\nend\n'; } \
  >   | schedtool serve --stdio | grep -E 'status|^error|^op'
  status session
  op create
  status error
  error session "dup" already exists
  status session
  op close

With a zero idle timeout (and the background sweeper disabled so the
lazy path answers), the very next op finds the session expired and
says why:

  $ { printf "session v1\nop create\nid brief\n$inst"; echo end; \
  >   printf 'session v1\nop resolve\nid brief\nend\n'; } \
  >   | schedtool serve --stdio --session-idle-timeout 0 --watchdog-interval 0 \
  >   | grep -v elapsed_us
  response v1
  status session
  id brief
  op create
  trace r0
  generation 0
  jobs 2
  end
  response v1
  status error
  error unknown session id "brief" (evicted after 0s idle timeout)
  end
