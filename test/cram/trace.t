End-to-end request tracing: a loadgen client mints trace ids and
records its own spans, the server adopts each id as its ambient
context, and both processes' Chrome traces merge onto one timeline.

  $ schedtool gen --env uniform -n 16 -m 3 -k 3 --seed 5 -o inst.txt
  wrote inst.txt
  $ schedtool serve --socket live.sock --trace server-trace.json > server.log 2>&1 & pid=$!
  $ for i in $(seq 200); do [ -S live.sock ] && break; sleep 0.05; done

The client sends one trace id per request (lg<seed>.<i>) on the wire;
the server echoes the id it served under on every reply, so a zero
error count also means every echo matched what the client minted
(mismatches would print a trace-echo line and a counter):

  $ schedtool loadgen --socket live.sock -n 3 --json lg.json \
  >   --trace client-trace.json inst.txt > loadgen.out 2>&1
  $ grep -E '^(requests|errors|trace-echo)' loadgen.out
  requests  3
  errors    0
  $ grep 'wrote trace' loadgen.out
  wrote trace client-trace.json

The JSON record joins the run to its slowest request's trace id — the
first request, which missed the cache and paid for the real solve:

  $ grep -o '"trace_ids": {"slowest": "[^"]*"}' lg.json
  "trace_ids": {"slowest": "lg1.1"}

`schedtool explain` renders that id's phase tree from the server's
always-on phase recorder: the root request span, the dispatch below
it, and the solver's own phases — binary-search probes annotated with
their guess and verdict, LP solves with their iteration counts
(durations vary, so the shape is checked):

  $ schedtool explain lg1.1 --socket live.sock > explain.txt
  $ sed -n 1p explain.txt | grep -o 'trace id=lg1.1'
  trace id=lg1.1
  $ awk '{print $1}' explain.txt | sed -n 2,3p
  serve.request
  serve.dispatch
  $ [ $(grep -c 'core\.binary_search\.probe' explain.txt) -ge 3 ] && echo have-probes
  have-probes
  $ grep -q 'guess=.*feasible' explain.txt && echo have-verdicts
  have-verdicts
  $ grep -q 'lp\.simplex\.solve' explain.txt && echo have-lp
  have-lp

Only the recent past is explainable — an unknown id is a loud error:

  $ schedtool explain nope --socket live.sock 2>&1 | grep -c 'nope'
  1

Latency histograms carry OpenMetrics exemplars referencing the trace
ids that landed in each bucket, so a slow bucket links straight to an
explainable request:

  $ [ $(schedtool metrics --socket live.sock | grep -c 'trace_id="lg1\.') -ge 1 ] \
  >   && echo have-exemplars
  have-exemplars

Stopping the server flushes its trace; `schedtool trace merge` rebases
both files' wall-clock anchors onto one timeline, giving each process
its own named track, and the merged file still self-validates:

  $ kill -INT $pid
  $ wait $pid 2>/dev/null || true
  $ grep 'wrote trace' server.log
  wrote trace server-trace.json
  $ schedtool trace merge client-trace.json server-trace.json -o merged.json
  merged 2 file(s) into merged.json
  $ schedtool trace validate merged.json | grep -o '^ok'
  ok
  $ grep -c 'process_name' merged.json
  2
